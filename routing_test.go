package jqos_test

import (
	"testing"
	"time"

	"jqos"
	"jqos/internal/core"
	"jqos/internal/dataset"
	"jqos/internal/routing"
)

// buildDiamond wires the 4-DC diamond used by the reroute tests:
//
//	       dc2
//	  15ms/   \15ms        primary dc1→dc4: 30 ms (via dc2)
//	dc1        dc4         backup  dc1→dc4: 50 ms (via dc3)
//	  25ms\   /25ms
//	       dc3
//
// src hangs off dc1 (5 ms), dst off dc4 (8 ms). No host pair has a direct
// Internet path — everything rides the overlay.
func buildDiamond(t *testing.T, seed int64, cfg jqos.Config) (*jqos.Deployment, [4]jqos.NodeID, jqos.NodeID, jqos.NodeID) {
	t.Helper()
	d := jqos.NewDeploymentWithConfig(seed, cfg)
	dc1 := d.AddDC("dc1", dataset.RegionUSEast)
	dc2 := d.AddDC("dc2", dataset.RegionUSWest)
	dc3 := d.AddDC("dc3", dataset.RegionEU)
	dc4 := d.AddDC("dc4", dataset.RegionAsia)
	d.ConnectDCs(dc1, dc2, 15*time.Millisecond)
	d.ConnectDCs(dc2, dc4, 15*time.Millisecond)
	d.ConnectDCs(dc1, dc3, 25*time.Millisecond)
	d.ConnectDCs(dc3, dc4, 25*time.Millisecond)
	src := d.AddHost(dc1, 5*time.Millisecond)
	dst := d.AddHost(dc4, 8*time.Millisecond)
	return d, [4]jqos.NodeID{dc1, dc2, dc3, dc4}, src, dst
}

// TestSparseOverlayMultiHopForwarding is what the seed could not do at
// all: register a flow between DCs with no direct inter-DC link. Service
// selection must see the routed latency and the data plane must cross two
// overlay hops.
func TestSparseOverlayMultiHopForwarding(t *testing.T) {
	// Line: dc1 —20ms— dc2 —20ms— dc3; src@dc1, dst@dc3, no direct path.
	d := jqos.NewDeployment(60)
	dc1 := d.AddDC("a", dataset.RegionUSEast)
	dc2 := d.AddDC("b", dataset.RegionUSWest)
	dc3 := d.AddDC("c", dataset.RegionEU)
	d.ConnectDCs(dc1, dc2, 20*time.Millisecond)
	d.ConnectDCs(dc2, dc3, 20*time.Millisecond)
	src := d.AddHost(dc1, 5*time.Millisecond)
	dst := d.AddHost(dc3, 8*time.Millisecond)

	// Prediction uses the routed 40 ms dc1→dc3 latency.
	if x, ok := d.Topology().InterDC(dc1, dc3); !ok || x != 40*time.Millisecond {
		t.Fatalf("routed InterDC = %v %v, want 40ms", x, ok)
	}
	// With no direct path, only forwarding can serve the flow; selection
	// must find it on its own.
	f, err := d.Register(src, dst, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if f.Service() != jqos.ServiceForwarding {
		t.Fatalf("selected %v, want forwarding", f.Service())
	}
	var lats []time.Duration
	d.Host(dst).SetDeliveryHandler(func(del core.Delivery) {
		lats = append(lats, del.At-del.Packet.Sent)
	})
	const n = 100
	for i := 0; i < n; i++ {
		at := time.Duration(i) * 5 * time.Millisecond
		d.Sim().At(at, func() { f.Send([]byte("sparse")) })
	}
	d.Run(5 * time.Second)
	if f.Metrics().Delivered != n {
		t.Fatalf("delivered %d of %d", f.Metrics().Delivered, n)
	}
	// Two overlay hops: 5 + 20 + 20 + 8 = 53 ms (+ jitter).
	for _, lat := range lats {
		if lat < 52*time.Millisecond || lat > 60*time.Millisecond {
			t.Fatalf("multi-hop latency = %v, want ~53ms", lat)
		}
	}
	if f.Metrics().OnTime != n {
		t.Errorf("on-time %d of %d", f.Metrics().OnTime, n)
	}
}

// TestRerouteAcrossLinkFailure is the acceptance scenario: a forwarding
// flow crosses ≥2 overlay hops; the primary inter-DC link fails mid-flow;
// the monitor detects it, the controller reroutes via the alternate path,
// and packets keep arriving within budget — without sender involvement.
func TestRerouteAcrossLinkFailure(t *testing.T) {
	cfg := jqos.DefaultConfig()
	cfg.UpgradeInterval = 0
	cfg.Monitor.ProbeInterval = 100 * time.Millisecond
	d, dcs, src, dst := buildDiamond(t, 61, cfg)

	budget := 300 * time.Millisecond
	f, err := d.Register(src, dst, budget, jqos.WithService(jqos.ServiceForwarding))
	if err != nil {
		t.Fatal(err)
	}
	type arrival struct {
		seq core.Seq
		lat time.Duration
	}
	var got []arrival
	sent := make(map[core.Seq]time.Duration)
	d.Host(dst).SetDeliveryHandler(func(del core.Delivery) {
		got = append(got, arrival{del.Packet.ID.Seq, del.At - del.Packet.Sent})
	})

	const n = 800 // 4 s of traffic at 5 ms spacing
	failAt := 1500 * time.Millisecond
	for i := 0; i < n; i++ {
		at := time.Duration(i) * 5 * time.Millisecond
		d.Sim().At(at, func() { sent[f.Send([]byte("reroute me"))] = at })
	}
	d.Sim().At(failAt, func() { d.Link(dcs[1], dcs[3]).Disconnect() }) // dc2—dc4 dies
	d.Run(10 * time.Second)

	// The link must be observed down and routes must have moved.
	if h, ok := d.LinkHealth(dcs[1], dcs[3]); !ok || h.State != routing.LinkDown {
		t.Fatalf("link health = %+v %v, want down", h, ok)
	}
	st := d.Snapshot().Routing
	if st.LinkFailures == 0 || st.Reroutes == 0 || st.RouteChanges == 0 {
		t.Fatalf("no reroute recorded: %+v", st)
	}
	if via, ok := d.Routing().NextHop(dcs[0], dcs[3]); !ok || via != dcs[2] {
		t.Errorf("dc1→dc4 via %v, want dc3", via)
	}

	// Every packet sent after the monitor converged (detection needs
	// FailAfter probes + timeout; 1 s is generous at 100 ms probes) must
	// arrive within budget via the alternate path.
	converged := failAt + time.Second
	delivered := make(map[core.Seq]time.Duration)
	for _, a := range got {
		delivered[a.seq] = a.lat
	}
	late, missing := 0, 0
	for seq, at := range sent {
		if at <= converged {
			continue
		}
		lat, ok := delivered[seq]
		if !ok {
			missing++
			continue
		}
		if lat > budget {
			late++
		}
	}
	if missing != 0 || late != 0 {
		t.Errorf("after convergence: %d missing, %d late", missing, late)
	}
	// Post-failure deliveries ride dc1→dc3→dc4: 5+25+25+8 ≈ 63 ms.
	var post []time.Duration
	for seq, at := range sent {
		if at > converged {
			if lat, ok := delivered[seq]; ok {
				post = append(post, lat)
			}
		}
	}
	if len(post) == 0 {
		t.Fatal("no post-failure deliveries")
	}
	for _, lat := range post {
		if lat < 61*time.Millisecond || lat > 70*time.Millisecond {
			t.Fatalf("post-failure latency %v, want ~63ms (alternate path)", lat)
		}
	}
	// The detection gap is bounded: most of the flow still arrived.
	if miss := n - len(delivered); miss > 200 {
		t.Errorf("%d of %d packets lost to the failure window", miss, n)
	}
}

// TestRerouteRecovery restores the failed link and checks traffic moves
// back to the primary path.
func TestRerouteRecovery(t *testing.T) {
	cfg := jqos.DefaultConfig()
	cfg.UpgradeInterval = 0
	cfg.Monitor.ProbeInterval = 100 * time.Millisecond
	d, dcs, src, dst := buildDiamond(t, 62, cfg)
	f, err := d.Register(src, dst, 300*time.Millisecond, jqos.WithService(jqos.ServiceForwarding))
	if err != nil {
		t.Fatal(err)
	}
	var last time.Duration
	d.Host(dst).SetDeliveryHandler(func(del core.Delivery) { last = del.At - del.Packet.Sent })
	const n = 1200 // 6 s of traffic
	for i := 0; i < n; i++ {
		at := time.Duration(i) * 5 * time.Millisecond
		d.Sim().At(at, func() { f.Send([]byte("x")) })
	}
	d.Sim().At(1500*time.Millisecond, func() { d.Link(dcs[1], dcs[3]).Disconnect() })
	d.Sim().At(3500*time.Millisecond, func() {
		d.Link(dcs[1], dcs[3]).Set(15*time.Millisecond, 0)
	})
	d.Run(12 * time.Second)
	st := d.Snapshot().Routing
	if st.LinkFailures == 0 || st.LinkRecoveries == 0 {
		t.Fatalf("failure/recovery not observed: %+v", st)
	}
	if h, _ := d.LinkHealth(dcs[1], dcs[3]); h.State != routing.LinkUp {
		t.Errorf("link state = %v after repair", h.State)
	}
	if via, ok := d.Routing().NextHop(dcs[0], dcs[3]); !ok || via != dcs[1] {
		t.Errorf("dc1→dc4 via %v after recovery, want dc2", via)
	}
	// Final packets ride the restored 30 ms primary again (~43 ms e2e).
	if last < 42*time.Millisecond || last > 50*time.Millisecond {
		t.Errorf("final latency %v, want ~43ms (primary path)", last)
	}
}

// TestDegradedLinkShiftsSelection: SetLinkQuality slows the primary link;
// the monitor degrades it and routed latency (hence PredictDelay and new
// registrations) follows.
func TestDegradedLinkQualityShiftsRoutes(t *testing.T) {
	cfg := jqos.DefaultConfig()
	cfg.UpgradeInterval = 0
	cfg.Monitor.ProbeInterval = 100 * time.Millisecond
	d, dcs, src, dst := buildDiamond(t, 63, cfg)
	f, err := d.Register(src, dst, time.Second, jqos.WithService(jqos.ServiceForwarding))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1200; i++ {
		at := time.Duration(i) * 5 * time.Millisecond
		d.Sim().At(at, func() { f.Send([]byte("x")) })
	}
	// Slow dc2—dc4 from 15 ms to 120 ms: still up, but the backup path
	// (50 ms) is now far better.
	d.Sim().At(time.Second, func() {
		d.Link(dcs[1], dcs[3]).Set(120*time.Millisecond, 0)
	})
	d.Run(12 * time.Second)
	st := d.Snapshot().Routing
	if st.LinkDegrades == 0 && st.RouteChanges == 0 {
		t.Fatalf("degradation never moved routes: %+v", st)
	}
	if via, ok := d.Routing().NextHop(dcs[0], dcs[3]); !ok || via != dcs[2] {
		t.Errorf("dc1→dc4 via %v, want dc3 (degraded primary)", via)
	}
	// Routed latency tracks the detour.
	if x, ok := d.Topology().InterDC(dcs[0], dcs[3]); !ok || x < 45*time.Millisecond {
		t.Errorf("routed latency = %v %v, want ≥50ms-ish", x, ok)
	}
}

// TestRoutingStatsSurface sanity-checks the deployment-level accessors.
// It deliberately stays on the deprecated RoutingStats poll so the
// compatibility shim over Snapshot().Routing keeps test coverage.
func TestRoutingStatsSurface(t *testing.T) {
	d, dcs, _, _ := buildDiamond(t, 64, jqos.DefaultConfig())
	st := d.RoutingStats()
	if st.Recomputes == 0 || st.Pushes == 0 {
		t.Errorf("setup produced no control-plane activity: %+v", st)
	}
	ps := d.Routing().Paths(dcs[0], dcs[3], 2)
	if len(ps) != 2 {
		t.Fatalf("got %d paths", len(ps))
	}
	if ps[0].Cost != 30*time.Millisecond || ps[1].Cost != 50*time.Millisecond {
		t.Errorf("path costs = %v / %v", ps[0].Cost, ps[1].Cost)
	}
	if _, ok := d.LinkHealth(dcs[0], dcs[1]); !ok {
		t.Error("tracked link has no health")
	}
}
