package jqos_test

import (
	"testing"
	"time"

	"jqos"
	"jqos/internal/core"
	"jqos/internal/dataset"
	"jqos/internal/netem"
	"jqos/internal/routing"
)

// buildTriangle: dc1—dc3 direct (20 ms, the cheapest 1-hop a→c route)
// with a dc1—dc2—dc3 2-hop alternate (10+10 ms), fast probing, and one
// cheapest-pinned RepinOnHeal flow riding the direct link.
func buildTriangle(t *testing.T, seed int64) (*jqos.Deployment, [3]jqos.NodeID, *jqos.Flow) {
	t.Helper()
	cfg := jqos.DefaultConfig()
	cfg.UpgradeInterval = 0
	cfg.Monitor.ProbeInterval = 100 * time.Millisecond
	cfg.Monitor.ProbeTimeout = 50 * time.Millisecond
	d := jqos.NewDeploymentWithConfig(seed, cfg)
	dc1 := d.AddDC("a", dataset.RegionUSEast)
	dc2 := d.AddDC("b", dataset.RegionUSWest)
	dc3 := d.AddDC("c", dataset.RegionEU)
	d.ConnectDCs(dc1, dc2, 10*time.Millisecond)
	d.ConnectDCs(dc2, dc3, 10*time.Millisecond)
	d.ConnectDCs(dc1, dc3, 20*time.Millisecond)
	src := d.AddHost(dc1, 5*time.Millisecond)
	dst := d.AddHost(dc3, 8*time.Millisecond)
	d.SetDirectPath(src, dst, netem.FixedDelay(40*time.Millisecond), nil)
	f, err := d.RegisterFlow(jqos.FlowSpec{
		Src: src, Dst: dst, Budget: 300 * time.Millisecond,
		Service: jqos.ServiceForwarding, ServiceFixed: true,
		Path:        jqos.PathPolicy{Kind: jqos.PathCheapest},
		RepinOnHeal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := f.Path(); len(p) != 2 || p[0] != dc1 || p[1] != dc3 {
		t.Fatalf("cheapest pin resolved to %v, want the direct dc1→dc3 hop", p)
	}
	return d, [3]jqos.NodeID{dc1, dc2, dc3}, f
}

// TestRapidFlapLeavesNoResidue is the regression guard for the
// pin/watch/repin state machine under link flapping: cycles faster than
// the probe hysteresis (which must be absorbed without any route
// change) followed by slow cycles (which must fail over and repin on
// heal). At every cycle boundary the flow holds exactly one pin and no
// controller watch — never both, never neither, never a double pin —
// and after the last heal it is back on the preferred link with no
// RepinOnHeal parking entry left behind.
func TestRapidFlapLeavesNoResidue(t *testing.T) {
	d, dcs, f := buildTriangle(t, 60)
	dc1, dc3 := dcs[0], dcs[2]

	// Background traffic across the whole test window.
	for at := time.Duration(0); at < 12*time.Second; at += 10 * time.Millisecond {
		at := at
		d.Sim().At(at, func() { f.Send(make([]byte, 200)) })
	}

	checkExactlyOnePin := func(cycle string) {
		t.Helper()
		ctrl := d.Routing()
		if n := ctrl.PinnedCount(); n != 1 {
			t.Fatalf("%s: %d pins, want exactly 1", cycle, n)
		}
		if n := ctrl.WatchedCount(); n != 0 {
			t.Fatalf("%s: %d controller watches alongside a live pin", cycle, n)
		}
	}

	// Six rapid cycles: 40 ms down / 260 ms up. Even at the suspicious
	// fast cadence (25 ms rounds) a 40 ms outage fits at most two probes,
	// so the 3-strike hysteresis must absorb the flaps without any route
	// change; the long up phase lets the loss streak reset between cycles.
	for i := 0; i < 6; i++ {
		d.Link(dc1, dc3).Disconnect()
		d.Run(40 * time.Millisecond)
		d.Link(dc1, dc3).Reconnect()
		d.Run(260 * time.Millisecond)
		checkExactlyOnePin("rapid cycle")
	}
	if p := f.Path(); len(p) != 2 {
		t.Fatalf("sub-hysteresis flaps moved the flow off its pin: %v", p)
	}

	// Three slow cycles: 1 s down (failure detected, pin fails over to
	// dc1→dc2→dc3), 1.5 s up (recovery detected, RepinOnHeal returns it).
	for i := 0; i < 3; i++ {
		d.Link(dc1, dc3).Disconnect()
		d.Run(time.Second)
		checkExactlyOnePin("slow cycle (down)")
		d.Link(dc1, dc3).Reconnect()
		d.Run(1500 * time.Millisecond)
		checkExactlyOnePin("slow cycle (up)")
	}

	d.Run(2 * time.Second)
	if p := f.Path(); len(p) != 2 || p[0] != dc1 || p[1] != dc3 {
		t.Errorf("after final heal, path = %v, want repinned to direct dc1→dc3", p)
	}
	if n := d.RepinWatchCount(); n != 0 {
		t.Errorf("%d repin-on-heal entries still parked after repin", n)
	}
	if m := f.Metrics(); m.Delivered == 0 {
		t.Error("no traffic delivered across the flap sequence")
	}

	f.Close()
	d.RunUntilQuiet()
	ctrl := d.Routing()
	if ctrl.PinnedCount() != 0 || ctrl.WatchedCount() != 0 || d.RepinWatchCount() != 0 {
		t.Errorf("residue after Close: %d pins, %d watches, %d repin entries",
			ctrl.PinnedCount(), ctrl.WatchedCount(), d.RepinWatchCount())
	}
}

// TestOneWayPartitionDetected: a fault that kills only one direction of
// a link must still fail the link — probes cross it one way and their
// answers the other, so the monitor sees 100% probe loss whichever
// direction carries the fault — and the one-way reconnect must heal it.
func TestOneWayPartitionDetected(t *testing.T) {
	for name, cut := range map[string]func(d *jqos.Deployment, a, b core.NodeID){
		"forward": func(d *jqos.Deployment, a, b core.NodeID) { d.Link(a, b).DisconnectOneWay() },
		"reverse": func(d *jqos.Deployment, a, b core.NodeID) { d.Link(b, a).DisconnectOneWay() },
	} {
		t.Run(name, func(t *testing.T) {
			d, dcs, f := buildTriangle(t, 61)
			dc1, dc3 := dcs[0], dcs[2]
			cut(d, dc1, dc3)
			d.Run(2 * time.Second)
			if h, ok := d.LinkHealth(dc1, dc3); !ok || h.State != routing.LinkDown {
				t.Fatalf("half-dead link health = %+v (ok=%v), want down", h, ok)
			}
			// The cheapest pin failed over to the surviving 2-hop route.
			if p := f.Path(); len(p) != 3 {
				t.Fatalf("flow still on the half-dead link: %v", p)
			}
			// Heal only the direction that was cut.
			if name == "forward" {
				d.Link(dc1, dc3).ReconnectOneWay()
			} else {
				d.Link(dc3, dc1).ReconnectOneWay()
			}
			d.Run(2 * time.Second)
			if h, ok := d.LinkHealth(dc1, dc3); !ok || h.State == routing.LinkDown {
				t.Fatalf("link health = %+v (ok=%v) after one-way heal, want recovered", h, ok)
			}
			if p := f.Path(); len(p) != 2 {
				t.Errorf("RepinOnHeal did not return the flow to the healed link: %v", p)
			}
		})
	}
}

// TestAsymmetricDegradeRaisesRTT: Link.SetOneWay on one direction
// must show up in the monitor's round-trip estimate (probes pay the
// extra one-way latency) without taking the link down.
func TestAsymmetricDegradeRaisesRTT(t *testing.T) {
	d, dcs, _ := buildTriangle(t, 62)
	dc1, dc3 := dcs[0], dcs[2]
	d.Run(2 * time.Second)
	h0, ok := d.LinkHealth(dc1, dc3)
	if !ok || h0.RTT == 0 {
		t.Fatalf("no baseline RTT estimate: %+v", h0)
	}
	d.Link(dc1, dc3).SetOneWay(120*time.Millisecond, 0)
	d.Run(3 * time.Second)
	h1, ok := d.LinkHealth(dc1, dc3)
	if !ok {
		t.Fatal("link health vanished")
	}
	if h1.State == routing.LinkDown {
		t.Fatalf("loss-free one-way degrade took the link down: %+v", h1)
	}
	// One direction went 20 ms → ~120 ms, so the round trip gained
	// ~100 ms; the EWMA should have absorbed most of it by now.
	if h1.RTT < h0.RTT+60*time.Millisecond {
		t.Errorf("RTT estimate %v after one-way degrade (baseline %v), want ≥ baseline+60ms", h1.RTT, h0.RTT)
	}
}
