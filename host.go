package jqos

import (
	"time"

	"jqos/internal/core"
	"jqos/internal/recovery"
	"jqos/internal/wire"
)

// Host is one emulated endpoint. It plays both roles: flows registered
// from it send packets, and a per-flow recovery engine handles everything
// that arrives — data, recovered packets, parity for local decode,
// cooperative-recovery requests, and verification probes.
type Host struct {
	d  *Deployment
	id core.NodeID
	dc core.NodeID

	receivers map[core.FlowID]*recovery.Receiver
	onDeliver func(core.Delivery)
	arm       uint64
	drop      uint64

	// unsol lists receivers created for flow IDs the deployment never
	// allocated (forged or external packets), in least-recently-used
	// order: creating one past maxUnsolicitedReceivers evicts the front.
	// Without the cap, a sender forging fresh IDs ≥ nextFlow would grow
	// the receiver map without bound — these entries have no Flow.Close
	// to free them. Legitimately allocated flows never enter the list,
	// and an unsolicited ID that a later registration adopts leaves it
	// (dropReceiver), so mid-join laziness is untouched.
	unsol []core.FlowID
}

// maxUnsolicitedReceivers bounds per-host receiver state for flow IDs
// the deployment never allocated. Generous enough for every legitimate
// lazy-creation pattern (a burst of external flows joining at once),
// small enough that forged-ID floods stay O(1) per host.
const maxUnsolicitedReceivers = 32

func newHost(d *Deployment, id, dc core.NodeID) *Host {
	return &Host{
		d:         d,
		id:        id,
		dc:        dc,
		receivers: make(map[core.FlowID]*recovery.Receiver),
	}
}

// ID returns the host's node identity.
func (h *Host) ID() core.NodeID { return h.id }

// DC returns the host's nearby data center.
func (h *Host) DC() core.NodeID { return h.dc }

// SetDeliveryHandler installs a callback invoked for every packet the host
// surfaces to the application (direct or recovered).
func (h *Host) SetDeliveryHandler(fn func(core.Delivery)) { h.onDeliver = fn }

// Receiver returns the recovery engine for a flow (nil if none yet).
func (h *Host) Receiver(flow core.FlowID) *recovery.Receiver { return h.receivers[flow] }

// ensureReceiver creates the flow's recovery engine on first contact.
// Unsolicited flows (multicast members, mid-join, even forged IDs the
// deployment never allocated) get defaults derived from the deployment
// config. Closed flows — allocated IDs the deployment no longer tracks —
// get nil instead of state: a late in-flight packet must not resurrect
// a receiver that Flow.Close just freed, or churning short-lived flows
// leaks one receiver per flow. Callers drop the packet on nil.
func (h *Host) ensureReceiver(flow core.FlowID, rtt time.Duration, svc core.Service) *recovery.Receiver {
	if r, ok := h.receivers[flow]; ok {
		h.refreshUnsolicited(flow)
		return r
	}
	if _, live := h.d.flows[flow]; !live {
		if flow < h.d.nextFlow {
			return nil
		}
		// Never-allocated (forged/external) IDs keep the historic lazy
		// contract but are NOT indexed in recvHosts — they have no
		// Flow.Close to free the entry, and an attacker-corrupted Flow
		// field must not grow a deployment-wide map. An LRU cap bounds
		// them per host instead.
		if len(h.unsol) >= maxUnsolicitedReceivers {
			evict := h.unsol[0]
			h.unsol = append(h.unsol[:0], h.unsol[1:]...)
			delete(h.receivers, evict)
		}
		h.unsol = append(h.unsol, flow)
	} else {
		// Index live flows' state for teardown: Flow.Close frees
		// exactly the hosts that ever built a receiver for it.
		h.d.recvHosts[flow] = append(h.d.recvHosts[flow], h.id)
	}
	if rtt <= 0 {
		rtt = 100 * time.Millisecond
		if f, ok := h.d.flows[flow]; ok {
			if y := h.d.topo.Direct(f.src, h.id); y > 0 {
				rtt = 2 * y
			}
		}
	}
	retry := h.d.cfg.NACKRetry
	if retry == 0 {
		// Auto: a quarter RTT balances fast escalation to cooperative
		// recovery against NACK duplication.
		retry = rtt / 4
	} else if retry < 0 {
		retry = 0 // explicit opt-out
	}
	cfg := recovery.Config{
		Self:         h.id,
		DC:           h.dc,
		Service:      svc,
		SmallTimeout: h.d.cfg.SmallTimeout,
		RTT:          rtt,
		NACKRetry:    retry,
		MaxNACKs:     h.d.cfg.MaxNACKs,
		SingleTimer:  h.d.cfg.SingleTimer,
	}
	r := recovery.New(cfg)
	h.receivers[flow] = r
	return r
}

// dropReceiver frees a closed flow's recovery engine. Armed timer events
// self-cancel: the sweep only walks receivers still in the map. A
// previously-unsolicited ID leaves the LRU list too — registration
// adopting a mid-join receiver must not leave a stale entry whose later
// eviction would delete the legitimate flow's fresh state.
func (h *Host) dropReceiver(flow core.FlowID) {
	delete(h.receivers, flow)
	for i, id := range h.unsol {
		if id == flow {
			h.unsol = append(h.unsol[:i], h.unsol[i+1:]...)
			break
		}
	}
}

// refreshUnsolicited keeps the LRU honest on a receiver-map hit. A
// still-unsolicited entry moves to the LRU back (recently used). An
// entry whose ID a registration has since allocated is PROMOTED out of
// the list entirely and indexed in recvHosts — the flow is live now, so
// its receiver must be evict-proof and must be freed by Flow.Close like
// any other (the registration itself only reset receivers on its OWN
// destinations; a host that met the ID pre-allocation and serves it
// mid-join is exactly this path). A no-op for ordinary flows: the list
// is empty unless forged/external IDs exist, so the scan costs nothing
// in the common case and at most maxUnsolicitedReceivers comparisons
// otherwise.
func (h *Host) refreshUnsolicited(flow core.FlowID) {
	for i, id := range h.unsol {
		if id != flow {
			continue
		}
		if _, live := h.d.flows[flow]; live {
			h.unsol = append(h.unsol[:i], h.unsol[i+1:]...)
			h.d.recvHosts[flow] = append(h.d.recvHosts[flow], h.id)
		} else {
			copy(h.unsol[i:], h.unsol[i+1:])
			h.unsol[len(h.unsol)-1] = flow
		}
		return
	}
}

// ReceiverCount returns how many per-flow recovery engines the host
// currently holds (diagnostics; bounded-state tests read it).
func (h *Host) ReceiverCount() int { return len(h.receivers) }

// UnsolicitedReceivers returns how many of those belong to flow IDs the
// deployment never allocated — capped at maxUnsolicitedReceivers.
func (h *Host) UnsolicitedReceivers() int { return len(h.unsol) }

// Dropped counts datagrams the host could not parse.
func (h *Host) Dropped() uint64 { return h.drop }

// transmit sends emits, relaying through the host's DC when it has no
// direct link to the target (helpers answering a remote DC2, for example).
func (h *Host) transmit(emits []core.Emit) {
	for _, em := range emits {
		switch {
		case h.d.net.HasRoute(h.id, em.To):
			h.d.net.Send(h.id, em.To, em.Msg)
		case h.d.net.HasRoute(h.id, h.dc):
			h.d.net.Send(h.id, h.dc, em.Msg)
		default:
			h.drop++
		}
	}
}

// handle is the host's network receive entry point.
func (h *Host) handle(from, to core.NodeID, data []byte) {
	now := h.d.sim.Now()
	var hdr wire.Header
	body, err := wire.SplitMessage(&hdr, data)
	if err != nil {
		h.drop++
		return
	}
	var res recovery.Result
	switch hdr.Type {
	case wire.TypeData:
		svc := hdr.Service
		if svc == core.ServiceInternet {
			svc = core.ServiceCoding
		}
		r := h.ensureReceiver(hdr.Flow, 0, svc)
		if r == nil {
			return // late packet of a closed flow
		}
		res = r.OnData(now, &hdr, body)
	case wire.TypeRecovered, wire.TypePullResp:
		r := h.ensureReceiver(hdr.Flow, 0, hdr.Service)
		if r == nil {
			return
		}
		res = r.OnRecovered(now, &hdr, body)
	case wire.TypeCoded:
		var meta wire.Coded
		shard, err := meta.Unmarshal(body)
		if err != nil || len(meta.Sources) == 0 {
			h.drop++
			return
		}
		r := h.ensureReceiver(meta.Sources[0].Flow, 0, core.ServiceCoding)
		if r == nil {
			return
		}
		res = r.OnCoded(now, &hdr, &meta, shard)
	case wire.TypeCoopReq:
		var ref wire.CoopRef
		if _, err := ref.Unmarshal(body); err != nil {
			h.drop++
			return
		}
		if r, ok := h.receivers[hdr.Flow]; ok {
			res = r.OnCoopReq(now, &hdr, &ref)
		}
	case wire.TypeVerify:
		if r, ok := h.receivers[hdr.Flow]; ok {
			res = r.OnVerify(now, &hdr)
		}
	default:
		h.drop++
		return
	}
	h.process(now, res)
	h.armTimer()
}

// process transmits emits and surfaces deliveries.
func (h *Host) process(now core.Time, res recovery.Result) {
	h.transmit(res.Emits)
	for _, del := range res.Deliveries {
		if f, ok := h.d.flows[del.Packet.ID.Flow]; ok {
			f.recordDelivery(del)
		}
		if h.onDeliver != nil {
			h.onDeliver(del)
		}
	}
}

// PullFlow asks the host's DC cache for every packet of flow after seq —
// the mobility rendezvous drain (Figure 3e). Responses arrive as ordinary
// recovered deliveries.
func (h *Host) PullFlow(flow core.FlowID, after core.Seq) {
	hdr := wire.Header{
		Type:    wire.TypePull,
		Service: core.ServiceCaching,
		Flags:   wire.FlagDrain,
		Flow:    flow,
		Seq:     after,
		TS:      h.d.sim.Now(),
		Src:     h.id,
		Dst:     h.dc,
	}
	h.d.noteActivity()
	if h.ensureReceiver(flow, 0, core.ServiceCaching) == nil {
		return // closed flow: nobody left to process the responses
	}
	h.transmit([]core.Emit{{To: h.dc, Msg: wire.AppendMessage(nil, &hdr, nil)}})
	h.armTimer()
}

// armTimer schedules the earliest receiver deadline (generation-guarded,
// like DCNode).
func (h *Host) armTimer() {
	var min core.Time
	found := false
	for _, r := range h.receivers {
		if dl, ok := r.NextDeadline(); ok && (!found || dl < min) {
			min, found = dl, true
		}
	}
	if !found {
		return
	}
	h.arm++
	gen := h.arm
	now := h.d.sim.Now()
	if min < now {
		min = now
	}
	h.d.sim.At(min, func() {
		if h.arm != gen {
			return
		}
		t := h.d.sim.Now()
		for _, r := range h.receivers {
			h.process(t, r.OnTimer(t))
		}
		h.armTimer()
	})
}
