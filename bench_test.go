// Benchmarks, one per paper table/figure (regenerating each artifact in
// quick mode) plus end-to-end hot paths of the framework. Run with:
//
//	go test -bench=. -benchmem
//
// The figure benches measure how long regenerating an experiment takes;
// the framework benches measure packets/second through the full coding
// service on the emulator.
package jqos_test

import (
	"fmt"
	"testing"
	"time"

	"jqos"
	"jqos/internal/dataset"
	"jqos/internal/experiments"
	"jqos/internal/netem"
	"jqos/internal/overlay"
)

// benchExperiment regenerates one experiment per iteration (quick mode).
func benchExperiment(b *testing.B, id string) {
	e, err := experiments.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(experiments.Options{Seed: int64(i + 1), Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7aFeasibility(b *testing.B)   { benchExperiment(b, "7a") }
func BenchmarkFig7bRecoveryDelay(b *testing.B) { benchExperiment(b, "7b") }
func BenchmarkFig7cDeltaCDF(b *testing.B)      { benchExperiment(b, "7c") }
func BenchmarkFig7dEras(b *testing.B)          { benchExperiment(b, "7d") }
func BenchmarkFig8aCRWAN(b *testing.B)         { benchExperiment(b, "8a") }
func BenchmarkFig8bEpisodes(b *testing.B)      { benchExperiment(b, "8b") }
func BenchmarkFig8cFECCompare(b *testing.B)    { benchExperiment(b, "8c") }
func BenchmarkFig8dRecoveryTime(b *testing.B)  { benchExperiment(b, "8d") }
func BenchmarkFig8eStragglers(b *testing.B)    { benchExperiment(b, "8e") }
func BenchmarkFig9aVideo(b *testing.B)         { benchExperiment(b, "9a") }
func BenchmarkFig9bTCP(b *testing.B)           { benchExperiment(b, "9b") }
func BenchmarkK20Overhead(b *testing.B)        { benchExperiment(b, "k20") }
func BenchmarkMobileFeasibility(b *testing.B)  { benchExperiment(b, "mobile") }

// BenchmarkFig10EncoderScaling is the real-throughput figure: it exists as
// an experiment too, but here each worker count is its own sub-benchmark
// so `-bench Fig10` prints the scaling series directly.
func BenchmarkFig10EncoderScaling(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads-%d", workers), func(b *testing.B) {
			benchPipeline(b, workers)
		})
	}
}

func benchPipeline(b *testing.B, workers int) {
	// Reuse the coding pipeline through the public deployment surface is
	// not possible (DC1 pipelines are an offline-scaling tool), so this
	// calls the experiment's underlying machinery via the figure run.
	// Measuring Submit throughput directly:
	payload := make([]byte, 512)
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	kpps := experiments.MeasurePipeline(workers, b.N, payload)
	b.ReportMetric(kpps, "Kpps")
}

// BenchmarkCostModel prices a deployment per iteration (§6.6 table).
func BenchmarkCostModel(b *testing.B) {
	m := overlay.DefaultCostModel
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fwd, cod := m.DeploymentCost(150, 1.0/16)
		if fwd < cod {
			b.Fatal("cost inversion")
		}
	}
}

// buildBenchWorld wires a 2-DC deployment with four coding flows.
func buildBenchWorld(b *testing.B, seed int64) (*jqos.Deployment, []*jqos.Flow) {
	b.Helper()
	cfg := jqos.DefaultConfig()
	cfg.UpgradeInterval = 0
	d := jqos.NewDeploymentWithConfig(seed, cfg)
	dc1 := d.AddDC("a", dataset.RegionUSEast)
	dc2 := d.AddDC("b", dataset.RegionEU)
	d.ConnectDCs(dc1, dc2, 40*time.Millisecond)
	var flows []*jqos.Flow
	for i := 0; i < 4; i++ {
		src := d.AddHost(dc1, 5*time.Millisecond)
		dst := d.AddHost(dc2, 8*time.Millisecond)
		d.SetDirectPath(src, dst, netem.FixedDelay(50*time.Millisecond), netem.Bernoulli{P: 0.01})
		f, err := d.Register(src, dst, time.Hour, jqos.WithService(jqos.ServiceCoding))
		if err != nil {
			b.Fatal(err)
		}
		flows = append(flows, f)
	}
	return d, flows
}

// BenchmarkEndToEndCodingService measures full-stack emulated throughput:
// send → duplicate → encode → (1% loss) → NACK → cooperative recovery →
// deliver, in packets per op.
func BenchmarkEndToEndCodingService(b *testing.B) {
	d, flows := buildBenchWorld(b, 1)
	payload := make([]byte, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := d.Now() + time.Duration(i%5)*time.Millisecond
		f := flows[i%len(flows)]
		d.Sim().At(at, func() { f.Send(payload) })
		if i%256 == 255 {
			d.Run(300 * time.Millisecond)
		}
	}
	d.Run(5 * time.Second)
}

// BenchmarkMarkovTimer compares receiver NACK load under the two-state
// model vs the single-timeout ablation (§6.4's "5× fewer NACKs").
func BenchmarkMarkovTimer(b *testing.B) {
	for _, mode := range []struct {
		name   string
		single bool
	}{{"two-state", false}, {"single-timeout", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := jqos.DefaultConfig()
			cfg.SingleTimer = mode.single
			cfg.UpgradeInterval = 0
			d := jqos.NewDeploymentWithConfig(9, cfg)
			dc1 := d.AddDC("a", dataset.RegionUSEast)
			dc2 := d.AddDC("b", dataset.RegionEU)
			d.ConnectDCs(dc1, dc2, 40*time.Millisecond)
			src := d.AddHost(dc1, 5*time.Millisecond)
			dst := d.AddHost(dc2, 8*time.Millisecond)
			d.SetDirectPath(src, dst, netem.FixedDelay(50*time.Millisecond), nil)
			f, err := d.Register(src, dst, time.Hour, jqos.WithService(jqos.ServiceCoding))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			// Bursty app: 5-packet bursts with 2 s gaps.
			for i := 0; i < b.N; i++ {
				at := d.Now() + time.Duration(i%5)*5*time.Millisecond
				d.Sim().At(at, func() { f.Send(make([]byte, 200)) })
				if i%5 == 4 {
					d.Run(2 * time.Second)
				}
			}
			d.Run(5 * time.Second)
			st := d.Host(dst).Receiver(f.ID()).Stats()
			b.ReportMetric(float64(st.NACKsSent())/float64(b.N), "nacks/pkt")
		})
	}
}

// BenchmarkRegisterFlow measures flow registration + teardown — the
// churn path workloads of millions of short-lived flows pay: service
// selection, path resolution, contract sizing, and Close's cleanup.
func BenchmarkRegisterFlow(b *testing.B) {
	cfg := jqos.DefaultConfig()
	cfg.UpgradeInterval = 0
	d := jqos.NewDeploymentWithConfig(5, cfg)
	dc1 := d.AddDC("a", dataset.RegionUSEast)
	dc2 := d.AddDC("b", dataset.RegionEU)
	d.ConnectDCs(dc1, dc2, 40*time.Millisecond)
	src := d.AddHost(dc1, 5*time.Millisecond)
	dst := d.AddHost(dc2, 8*time.Millisecond)
	d.SetDirectPath(src, dst, netem.FixedDelay(50*time.Millisecond), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := d.RegisterFlow(jqos.FlowSpec{Src: src, Dst: dst, Budget: 300 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}

// BenchmarkSnapshot measures building the unified telemetry snapshot of
// a live 2-DC, 4-flow deployment with traffic history.
func BenchmarkSnapshot(b *testing.B) {
	d, flows := buildBenchWorld(b, 6)
	payload := make([]byte, 512)
	for i := 0; i < 512; i++ {
		at := d.Now() + time.Duration(i%5)*time.Millisecond
		f := flows[i%len(flows)]
		d.Sim().At(at, func() { f.Send(payload) })
	}
	d.Run(2 * time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := d.Snapshot(); s.Totals.Sent == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// BenchmarkServiceSelection measures the §3.5 selection path.
func BenchmarkServiceSelection(b *testing.B) {
	d, _ := buildBenchWorld(b, 3)
	topo := d.Topology()
	hosts := topo.Hosts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, ok := topo.SelectService(hosts[0], hosts[1], 300*time.Millisecond, true)
		if !ok {
			b.Fatal("selection failed")
		}
	}
}
