package jqos_test

import (
	"testing"
	"time"

	"jqos"
	"jqos/internal/core"
)

// runHealthyReroute drives the make-before-break scenario on the
// diamond: a flow streams dc1→dc4 over the 30 ms primary (via dc2), and
// mid-stream the dc2—dc4 link's congestion weight inflates ×8 — a
// healthy path change (the link stays up at its real 15 ms), so there is
// no detection gap to excuse losses. The inflation is the nasty kind:
// dc1 moves its dc4 traffic to the 50 ms branch via dc3, AND dc2's own
// best route to dc4 flips to back through dc1 — so any in-flight packet
// re-resolved against dc2's NEW table bounces backward and arrives late
// and out of order. The epoch overlay (Config.RouteDrain > 0) instead
// finishes those packets on the table they departed under.
//
// Returns the in-order arrival count, total deliveries, and how many
// packets dc2 resolved against the retired epoch.
func runHealthyReroute(t *testing.T, drain time.Duration) (delivered int, inOrder bool, oldEpoch uint64) {
	t.Helper()
	cfg := jqos.DefaultConfig()
	cfg.UpgradeInterval = 0
	cfg.Monitor.ProbeInterval = 100 * time.Millisecond
	cfg.RouteDrain = drain
	d, dcs, src, dst := buildDiamond(t, 92, cfg)
	f, err := d.Register(src, dst, time.Second, jqos.WithService(jqos.ServiceForwarding))
	if err != nil {
		t.Fatal(err)
	}
	var seqs []core.Seq
	d.Host(dst).SetDeliveryHandler(func(del core.Delivery) {
		seqs = append(seqs, del.Packet.ID.Seq)
	})
	const n = 1000 // 2 s of traffic at 2 ms spacing
	for i := 0; i < n; i++ {
		at := time.Duration(i) * 2 * time.Millisecond
		d.Sim().At(at, func() { f.Send([]byte("hitless")) })
	}
	// Mid-stream: report dc2—dc4 near saturation. The M/M/1 inflation
	// prices it at ~8× latency, which moves both dc1's and dc2's tables
	// in one recompute — while the physical link keeps delivering.
	d.Sim().At(time.Second, func() { d.Routing().SetLinkUtilization(dcs[1], dcs[3], 0.95) })
	d.Run(10 * time.Second)

	// The reroute must actually have happened, and must have caught
	// packets in flight (otherwise the run proves nothing).
	if via, ok := d.Routing().NextHop(dcs[0], dcs[3]); !ok || via != dcs[2] {
		t.Fatalf("dc1→dc4 via %v %v, want dc3 (inflated primary)", via, ok)
	}
	st := d.Snapshot().Routing
	if st.CongestionReroutes == 0 {
		t.Fatalf("utilization report never rerouted: %+v", st)
	}
	if drain > 0 {
		if st.EpochAdvances == 0 {
			t.Fatalf("reroute advanced no table epoch: %+v", st)
		}
		if st.EpochRetires != st.EpochAdvances {
			t.Fatalf("drain windows leaked: %d advances, %d retires", st.EpochAdvances, st.EpochRetires)
		}
	}
	inOrder = true
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			inOrder = false
			break
		}
	}
	return len(seqs), inOrder, d.DC(dcs[1]).Forwarder().Stats().OldEpochResolves
}

// TestMakeBeforeBreakHealthyRerouteHitless: with the drain window on
// (the default), a mid-flow reroute on a healthy path change is hitless
// — zero packet loss, zero reordering — and the old-epoch counter proves
// in-flight traffic really was resolved against the retired table rather
// than the swap landing between packets by luck.
func TestMakeBeforeBreakHealthyRerouteHitless(t *testing.T) {
	delivered, inOrder, oldEpoch := runHealthyReroute(t, jqos.DefaultConfig().RouteDrain)
	if delivered != 1000 {
		t.Errorf("delivered %d of 1000 — reroute lost packets", delivered)
	}
	if !inOrder {
		t.Error("deliveries reordered across the reroute")
	}
	if oldEpoch == 0 {
		t.Error("no packet resolved against the old epoch — the swap never caught traffic in flight")
	}
}

// TestInPlaceSwapIsNotHitless is the control: RouteDrain = 0 selects the
// legacy in-place table swap, and the very same scenario must then show
// a hit (loss or reordering from packets re-resolved mid-path). If this
// starts passing cleanly, the scenario stopped exercising the hazard and
// the hitless test above is vacuous.
func TestInPlaceSwapIsNotHitless(t *testing.T) {
	delivered, inOrder, oldEpoch := runHealthyReroute(t, 0)
	if oldEpoch != 0 {
		t.Errorf("legacy swap resolved %d packets against an old epoch", oldEpoch)
	}
	if delivered == 1000 && inOrder {
		t.Error("in-place swap delivered everything in order — scenario no longer creates a hazard")
	}
}
