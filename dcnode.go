package jqos

import (
	"jqos/internal/cache"
	"jqos/internal/coding"
	"jqos/internal/core"
	"jqos/internal/forward"
	"jqos/internal/wire"
)

// DCNode is one emulated data center running all three J-QoS services:
// a forwarder, a packet cache, a CR-WAN encoder (DC1 role) and a CR-WAN
// recoverer (DC2 role). A single DC plays both roles — which one applies
// depends on whether it is nearest the sender or the receiver of a flow.
type DCNode struct {
	d    *Deployment
	id   core.NodeID
	fwd  *forward.Forwarder
	cch  *cache.Store
	enc  *coding.Encoder
	rec  *coding.Recoverer
	arm  uint64 // timer generation counter (stale-timer guard)
	drop uint64 // undecodable datagrams

	// egress holds the per-next-hop DRR schedulers when Config.Scheduler
	// enables weighted fair queueing (lazily built; nil entries and a nil
	// map mean nothing was ever scheduled toward that hop).
	egress map[core.NodeID]*egressQueue
}

func newDCNode(d *Deployment, id core.NodeID) *DCNode {
	enc, err := coding.NewEncoder(id, d.cfg.Encoder)
	if err != nil {
		panic("jqos: " + err.Error())
	}
	return &DCNode{
		d:   d,
		id:  id,
		fwd: forward.New(id),
		cch: cache.NewStore(d.cfg.CacheTTL, d.cfg.CacheBytes),
		enc: enc,
		rec: coding.NewRecoverer(id, d.cfg.Recoverer),
	}
}

// ID returns the DC's node identity.
func (n *DCNode) ID() core.NodeID { return n.id }

// Forwarder exposes the forwarding service (route/group installation).
func (n *DCNode) Forwarder() *forward.Forwarder { return n.fwd }

// Cache exposes the caching service store.
func (n *DCNode) Cache() *cache.Store { return n.cch }

// Encoder exposes the CR-WAN DC1 engine.
func (n *DCNode) Encoder() *coding.Encoder { return n.enc }

// Recoverer exposes the CR-WAN DC2 engine.
func (n *DCNode) Recoverer() *coding.Recoverer { return n.rec }

// Dropped counts datagrams the DC could not parse.
func (n *DCNode) Dropped() uint64 { return n.drop }

// transmit sends engine emits into the network. The pushed next-hop table
// outranks a direct link: on a healthy mesh both agree (the next hop to an
// adjacent DC IS that DC), but after a failure the controller has moved
// the route off the dead link while the link object still exists — so the
// table, not link presence, decides.
func (n *DCNode) transmit(emits []core.Emit) {
	for _, em := range emits {
		if via, ok := n.fwd.Route(em.To); ok && via != n.id && n.d.net.HasRoute(n.id, via) {
			n.send(via, em.Msg)
			continue
		}
		if n.d.net.HasRoute(n.id, em.To) {
			n.send(em.To, em.Msg)
			continue
		}
		// Last resort: relay via the recipient's nearest DC.
		if via, ok := n.d.topo.NearestDC(em.To); ok && via != n.id && n.d.net.HasRoute(n.id, via) {
			n.send(via, em.Msg)
			continue
		}
		n.drop++
	}
}

// transmitTagged is transmit with the hop re-resolution done against the
// table version named by the packet's epoch tag. The forwarder already
// picked each emit's hop under that version; re-resolving the hop through
// the CURRENT table here would defeat the make-before-break drain — after
// a reroute that flips this DC's route to the old hop backward, the
// lookup would bounce in-flight old-epoch traffic into a loop between
// the DCs on either side of the change until the epoch retires.
func (n *DCNode) transmitTagged(tag uint8, emits []core.Emit) {
	for _, em := range emits {
		if via, ok := n.fwd.RouteTagged(tag, em.To); ok && via != n.id && n.d.net.HasRoute(n.id, via) {
			n.send(via, em.Msg)
			continue
		}
		if n.d.net.HasRoute(n.id, em.To) {
			n.send(em.To, em.Msg)
			continue
		}
		// Last resort: relay via the recipient's nearest DC.
		if via, ok := n.d.topo.NearestDC(em.To); ok && via != n.id && n.d.net.HasRoute(n.id, via) {
			n.send(via, em.Msg)
			continue
		}
		n.drop++
	}
}

// send moves one data-plane message toward hop. Inter-DC hops pass
// through the per-link egress scheduler when Config.Scheduler enables it
// — data, coded parity, and cloud copies alike — so service classes
// share the link by weight instead of arrival order. DC→host egress and
// unclassifiable bytes ship unscheduled, and control probes bypass this
// path entirely (sendControl), so the scheduler and the telemetry behind
// it see data-plane bytes only. With scheduling disabled this is the
// legacy direct send, byte-for-byte.
func (n *DCNode) send(hop core.NodeID, msg []byte) {
	if n.d.cfg.Scheduler.Enabled() {
		if _, isDC := n.d.dcs[hop]; isDC && n.scheduledSend(hop, msg) {
			return
		}
	}
	n.putOnWire(hop, msg)
}

// putOnWire puts one message on the wire toward hop and feeds the egress
// telemetry: the forwarder's per-class counters and the per-link rate
// meters utilization-aware routing consumes (inter-DC hops only; the
// registry ignores DC→host egress). Unclassifiable bytes ship
// unaccounted, as before.
func (n *DCNode) putOnWire(hop core.NodeID, msg []byte) {
	if cls, ok := wire.PeekService(msg); ok {
		n.putOnWireClass(hop, cls, msg)
		return
	}
	n.d.net.Send(n.id, hop, msg)
}

// putOnWireClass is putOnWire for callers that already know the class —
// the scheduler pump dequeues (class, msg) pairs, so re-peeking the
// header per departure would be pure waste. Scheduled sends reach here
// on dequeue, not enqueue, so LinkLoad reflects what actually left the
// DC rather than what piled up behind the scheduler.
func (n *DCNode) putOnWireClass(hop core.NodeID, cls core.Service, msg []byte) {
	now := n.d.sim.Now()
	// Wire departure for a traced packet: opens the propagation leg the
	// next DC's arrival (or the delivery itself, for the final hop)
	// closes.
	n.d.tel.spanTx(msg, now)
	n.d.net.Send(n.id, hop, msg)
	n.fwd.NoteEgress(cls, len(msg))
	n.d.loadReg.Record(now, n.id, hop, cls, len(msg))
}

// handle is the DC's network receive entry point.
func (n *DCNode) handle(from, to core.NodeID, data []byte) {
	now := n.d.sim.Now()
	var hdr wire.Header
	body, err := wire.SplitMessage(&hdr, data)
	if err != nil {
		n.drop++
		return
	}
	// Point-to-point service messages addressed elsewhere are relayed
	// (e.g. a helper's CoopResp transiting its own DC toward DC2).
	relay := hdr.Dst != n.id
	switch hdr.Type {
	case wire.TypeProbe:
		n.onProbe(&hdr)
	case wire.TypeProbeAck:
		n.onProbeAck(now, &hdr)
	case wire.TypeData:
		if hdr.Flags&wire.FlagTraced != 0 {
			// DC arrival closes the open propagation leg; time spent
			// inside the DC until the next departure lands in SpanRelay.
			n.d.tel.spanRx(hdr.ID(), now)
		}
		n.onData(now, &hdr, body, data)
	case wire.TypeCoded:
		n.onCoded(now, &hdr, body, data)
	case wire.TypeNACK:
		if relay {
			n.transmit(n.fwd.Forward(hdr.Dst, data))
		} else {
			n.onNACK(now, &hdr)
		}
	case wire.TypePull:
		if relay {
			n.transmit(n.fwd.Forward(hdr.Dst, data))
		} else {
			n.onPull(now, &hdr)
		}
	case wire.TypeCoopResp:
		if relay {
			n.transmit(n.fwd.Forward(hdr.Dst, data))
		} else {
			n.onCoopResp(now, &hdr, body)
		}
	case wire.TypeVerifyResp:
		if relay {
			n.transmit(n.fwd.Forward(hdr.Dst, data))
		} else {
			n.transmit(n.rec.OnVerifyResp(now, &hdr))
		}
	case wire.TypeCongestion:
		// Backpressure signals ride the control channel end to end: a
		// transit DC relays them hop-by-hop via sendControl (never
		// through transmit, whose sends would queue behind the very
		// backlog being reported); the ingress DC dispatches to its
		// subscribed flows.
		if relay {
			n.relayControl(&hdr, data)
		} else if n.d.fb == nil || !n.d.fb.onCongestionMsg(n.id, data) {
			n.drop++
		}
	default:
		if relay {
			n.transmit(n.fwd.Forward(hdr.Dst, data))
		} else {
			n.drop++
		}
	}
	n.armTimer()
}

// relayControl forwards a control-plane message one hop toward its
// destination DC over the control channel: scheduler-bypassing and
// non-billable, like the probe traffic it shares the channel with.
func (n *DCNode) relayControl(hdr *wire.Header, raw []byte) {
	via, ok := n.fwd.Route(hdr.Dst)
	if !ok || via == n.id || !n.d.net.HasRoute(n.id, via) {
		n.drop++
		return
	}
	n.d.sendControl(n.id, via, raw)
}

// onData handles an application data copy.
//
//   - forwarding: relay toward the (possibly multicast) destination.
//   - caching: relay until this DC is the destination's nearest DC (or the
//     destination is a group homed here), then cache.
//   - coding: this DC is DC1 for the flow — feed the encoder; parity flows
//     to the receiver's DC2.
func (n *DCNode) onData(now core.Time, hdr *wire.Header, payload []byte, raw []byte) {
	switch hdr.Service {
	case core.ServiceForwarding:
		n.forwardData(hdr, raw)
	case core.ServiceCaching:
		if n.servesDst(hdr.Dst) {
			n.cch.Put(now, hdr.ID(), payload)
			return
		}
		n.forwardData(hdr, raw)
	case core.ServiceCoding:
		dc2, ok := n.d.topo.NearestDC(hdr.Dst)
		if !ok {
			n.drop++
			return
		}
		pol := n.d.flowPathPolicy(hdr.Flow)
		if dc2 == n.id {
			// Partial overlay: DC1 and DC2 are the same DC. The
			// encoder still runs; parity "transits" locally.
			emits := n.enc.OnDataPolicy(now, dc2, hdr.Dst, hdr.Flow, hdr.Seq, pol, payload)
			n.loopback(now, emits)
			return
		}
		// Cross-stream batches are policy-homogeneous (the encoder keys
		// them by the flow's path policy), so the parity each batch emits
		// follows the spec'd policy of EVERY flow in it — pinning by the
		// batch's first source flow, the same key transit DCs use, routes
		// the batch on that shared policy end to end.
		n.transmitCoded(n.enc.OnDataPolicy(now, dc2, hdr.Dst, hdr.Flow, hdr.Seq, pol, payload))
	default:
		// Internet-service data should never reach a DC; forward it on
		// so nothing silently vanishes.
		n.forwardData(hdr, raw)
	}
}

// forwardData relays a data message toward its destination, honoring the
// flow's pinned path if the controller installed one here. Multicast
// groups fan out with per-member destination rewriting, so downstream DCs
// route each copy as plain unicast (cloud multicast, Figure 3c).
func (n *DCNode) forwardData(hdr *wire.Header, raw []byte) {
	if n.fwd.IsGroup(hdr.Dst) {
		for _, m := range n.fwd.Group(hdr.Dst) {
			if m == n.id {
				continue
			}
			msg := append([]byte(nil), raw...)
			if err := wire.RewriteDst(msg, m); err != nil {
				n.drop++
				continue
			}
			n.transmit([]core.Emit{{To: m, Msg: msg}})
		}
		return
	}
	n.forwardVia(hdr.Flow, hdr.Dst, hdr.Flags, raw)
}

// pinnedSend sends msg over flow's pinned next hop toward to, if one is
// installed here and the link exists. The hop goes on the wire directly —
// transmit's table lookup must not re-resolve it, or the shared route to
// that DC would defeat the pin. Returns whether the copy left.
func (n *DCNode) pinnedSend(flow core.FlowID, to core.NodeID, msg []byte) bool {
	via, ok := n.fwd.FlowRoute(flow, to)
	if !ok || via == n.id || !n.d.net.HasRoute(n.id, via) {
		return false
	}
	n.send(via, msg)
	return true
}

// forwardVia relays raw toward dst, honoring the flow's pinned next hop
// before the shared tables. Packets carrying an epoch tag (stamped at
// ingress) resolve against the table version they entered the overlay
// under while the controller's make-before-break drain holds it live.
func (n *DCNode) forwardVia(flow core.FlowID, dst core.NodeID, flags uint16, raw []byte) {
	if n.pinnedSend(flow, dst, raw) {
		n.fwd.NotePinnedForward()
		return
	}
	if tag, ok := wire.EpochTag(flags); ok {
		n.transmitTagged(tag, n.fwd.ForwardTagged(tag, dst, raw))
		return
	}
	n.transmit(n.fwd.Forward(dst, raw))
}

// servesDst reports whether this DC is the egress DC for dst (its nearest
// DC, or a multicast group installed here).
func (n *DCNode) servesDst(dst core.NodeID) bool {
	if n.fwd.IsGroup(dst) {
		return true
	}
	near, ok := n.d.topo.NearestDC(dst)
	return ok && near == n.id
}

// loopback delivers emits addressed to this very node back into the
// engines without touching the network (partial-overlay coding, where
// DC1 and DC2 are the same DC); everything else leaves pin-aware.
func (n *DCNode) loopback(now core.Time, emits []core.Emit) {
	for _, em := range emits {
		if em.To == n.id {
			var hdr wire.Header
			body, err := wire.SplitMessage(&hdr, em.Msg)
			if err != nil {
				n.drop++
				continue
			}
			n.onCoded(now, &hdr, body, em.Msg)
		} else {
			n.transmitCoded([]core.Emit{em})
		}
	}
}

// transmitCoded sends encoder emits, pinning each coded packet by its
// batch's first source flow — keyed identically at ingress and transit,
// so a batch follows one flow's path policy end to end (cross-stream
// batches mix flows; the first source stands in for the whole batch).
func (n *DCNode) transmitCoded(emits []core.Emit) {
	if n.fwd.FlowRouteCount() == 0 {
		n.transmit(emits) // no pins here: skip the per-packet peek
		return
	}
	for _, em := range emits {
		var hdr wire.Header
		if body, err := wire.SplitMessage(&hdr, em.Msg); err == nil && hdr.Type == wire.TypeCoded {
			if flow, ok := wire.PeekCodedFlow(body); ok && n.pinnedSend(flow, em.To, em.Msg) {
				n.fwd.NotePinnedCopy()
				continue
			}
		}
		n.transmit([]core.Emit{em})
	}
}

// onCoded handles a parity packet: if addressed here, store it in the
// recoverer (DC2 role); otherwise forward it along — on the source flow's
// pinned path when one is installed (cross-stream batches mix flows; the
// batch's first source decides).
func (n *DCNode) onCoded(now core.Time, hdr *wire.Header, body []byte, raw []byte) {
	if hdr.Dst != n.id {
		if flow, ok := wire.PeekCodedFlow(body); ok {
			n.forwardVia(flow, hdr.Dst, hdr.Flags, raw)
			return
		}
		n.transmit(n.fwd.Forward(hdr.Dst, raw))
		return
	}
	var meta wire.Coded
	shard, err := meta.Unmarshal(body)
	if err != nil {
		n.drop++
		return
	}
	n.transmit(n.rec.OnCoded(now, hdr, &meta, shard))
}

// onNACK dispatches a loss report by requested service: the cache answers
// directly; coding goes through the recoverer.
func (n *DCNode) onNACK(now core.Time, hdr *wire.Header) {
	switch hdr.Service {
	case core.ServiceCaching:
		if payload, ok := n.cch.Get(now, hdr.ID()); ok {
			resp := wire.Header{
				Type:    wire.TypePullResp,
				Service: core.ServiceCaching,
				Flow:    hdr.Flow,
				Seq:     hdr.Seq,
				TS:      now,
				Src:     n.id,
				Dst:     hdr.Src,
			}
			n.transmit([]core.Emit{{To: hdr.Src, Msg: wire.AppendMessage(nil, &resp, payload)}})
		}
		// Cache miss: fail silently; the receiver's retry or give-up
		// horizon handles it.
	default:
		n.transmit(n.rec.OnNACK(now, hdr.Src, hdr.ID(), hdr.Flags))
	}
}

// onPull serves explicit cache pulls, including FlagDrain for the mobility
// rendezvous case: return every cached packet of the flow after Seq.
func (n *DCNode) onPull(now core.Time, hdr *wire.Header) {
	ids := []core.PacketID{hdr.ID()}
	if hdr.Flags&wire.FlagDrain != 0 {
		ids = n.cch.DrainFlow(now, hdr.Flow, hdr.Seq)
	}
	var emits []core.Emit
	for _, id := range ids {
		payload, ok := n.cch.Get(now, id)
		if !ok {
			continue
		}
		resp := wire.Header{
			Type:    wire.TypePullResp,
			Service: core.ServiceCaching,
			Flow:    id.Flow,
			Seq:     id.Seq,
			TS:      now,
			Src:     n.id,
			Dst:     hdr.Src,
		}
		emits = append(emits, core.Emit{To: hdr.Src, Msg: wire.AppendMessage(nil, &resp, payload)})
	}
	n.transmit(emits)
}

func (n *DCNode) onCoopResp(now core.Time, hdr *wire.Header, body []byte) {
	var ref wire.CoopRef
	payload, err := ref.Unmarshal(body)
	if err != nil {
		n.drop++
		return
	}
	n.transmit(n.rec.OnCoopResp(now, hdr, &ref, payload))
}

// armTimer (re)schedules the DC's engine timers. A generation counter
// invalidates superseded timer events.
func (n *DCNode) armTimer() {
	next, ok := n.nextDeadline()
	if !ok {
		return
	}
	n.arm++
	gen := n.arm
	now := n.d.sim.Now()
	if next < now {
		next = now
	}
	n.d.sim.At(next, func() {
		if n.arm != gen {
			return // superseded by a later arm
		}
		t := n.d.sim.Now()
		// Timer-flushed batches carry parity too: route them like the
		// batch-full flushes — through loopback, so a partial overlay's
		// self-addressed parity reaches the local recoverer instead of
		// being dropped, and pinned flows' parity stays on its path.
		n.loopback(t, n.enc.OnTimer(t))
		n.transmit(n.rec.OnTimer(t))
		n.armTimer()
	})
}

func (n *DCNode) nextDeadline() (core.Time, bool) {
	d1, ok1 := n.enc.NextDeadline()
	d2, ok2 := n.rec.NextDeadline()
	switch {
	case ok1 && ok2:
		if d1 < d2 {
			return d1, true
		}
		return d2, true
	case ok1:
		return d1, true
	case ok2:
		return d2, true
	default:
		return 0, false
	}
}
