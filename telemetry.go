package jqos

import (
	"sync/atomic"
	"time"

	"jqos/internal/core"
	"jqos/internal/load"
	"jqos/internal/telemetry"
	"jqos/internal/tenant"
	"jqos/internal/wire"
)

// SLOConfig configures the continuous SLO engine (re-exported from
// internal/telemetry; see TelemetryConfig.SLO): the on-time objective,
// the fast/slow burn-rate windows, the AtRisk/Violated burn thresholds,
// and the recovery hysteresis hold.
type SLOConfig = telemetry.SLOConfig

// TelemetryConfig tunes the deployment's observability plane (see the
// package docs' Observability section).
type TelemetryConfig struct {
	// TraceCapacity bounds the control-loop event ring in events. Zero
	// defaults to 4096; negative disables tracing entirely (recording
	// becomes a nil check, TraceEvents returns nil).
	TraceCapacity int
	// PublishInterval, when positive, builds and publishes a fresh
	// snapshot every interval of SIMULATED time while the deployment is
	// active (the publisher parks when traffic stops, like the probers,
	// so an idle event heap still drains). Zero disables periodic
	// publishing — Snapshot() still builds and publishes on demand,
	// which is what tests and experiments use; a live telemetry.Serve
	// endpoint wants the periodic feed.
	PublishInterval time.Duration
	// SLO configures the continuous SLO engine: rolling multi-window
	// on-time-fraction tracking per budgeted flow, per service class,
	// and per tenant, with Met/AtRisk/Violated states, hysteresis, and
	// trace events on every transition. Zero Objective disables it; the
	// evaluation ticker parks with traffic like the publisher.
	SLO telemetry.SLOConfig
}

// Delivery-latency histogram bounds (ms), latency/budget ratio bounds,
// pacer rate fraction bounds, and egress queue depth bounds (bytes).
// Fixed buckets keep Observe allocation-free on the hot paths.
var (
	latencyBoundsMs   = []float64{5, 10, 20, 40, 60, 80, 100, 150, 200, 300, 500, 1000}
	budgetRatioBounds = []float64{0.25, 0.5, 0.75, 1, 1.5, 2, 4, 8}
	pacerFracBounds   = []float64{0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1}
	queueDepthBounds  = []float64{1 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10}
)

// telemetryPlane is the deployment's observability glue: the metric
// registry (with the runtime's four standing histograms), the
// control-loop trace ring, the last published snapshot, and the parking
// periodic publisher. Snapshot BUILDING walks simulator-owned state and
// runs on the simulator goroutine only; the published *telemetry.Snapshot
// is immutable and read from anywhere (telemetry.Serve), and the ring
// carries its own lock.
type telemetryPlane struct {
	d    *Deployment
	reg  *telemetry.Registry
	ring *telemetry.Ring // nil when tracing is disabled

	latest atomic.Pointer[telemetry.Snapshot]

	latencyMs   *telemetry.Histogram
	budgetRatio *telemetry.Histogram
	pacerFrac   *telemetry.Histogram
	queueDepth  *telemetry.Histogram
	snapshots   *telemetry.Counter

	interval     time.Duration
	started      bool
	parked       bool
	idle         int
	lastActivity uint64
	roundFn      func()

	// Hop-level latency attribution (spans.go in internal/telemetry).
	// The collector is sim-goroutine-only; tracedFlows counts open flows
	// with TraceSampling set so snapshots can report Enabled.
	spans       *telemetry.SpanCollector
	tracedFlows int

	// Continuous SLO engine. slo carries defaults when Enabled; trackers
	// are created lazily on the first delivery (flow/class/tenant) and
	// evaluated by a parked ticker plus every snapshot build. The
	// degrade/recover counters increment exactly when the matching trace
	// event is recorded, so chaos accounting can reconcile them against
	// the ring's per-kind counts.
	slo         telemetry.SLOConfig
	sloFlows    map[core.FlowID]*sloFlowWatch
	sloClasses  [telemetry.NumClasses]*telemetry.SLOTracker
	sloTenants  map[core.TenantID]*telemetry.SLOTracker
	sloDegrades uint64
	sloRecovers uint64

	sloInterval time.Duration
	sloStarted  bool
	sloParked   bool
	sloIdle     int
	sloLastAct  uint64
	sloRoundFn  func()
}

// sloFlowWatch pairs a flow's SLO tracker with the blackhole-detection
// cursor: when Sent advances but Delivered does not for longer than
// max(2×budget, FastWindow), the stalled packets count as synthetic
// misses — a partitioned flow must burn, not freeze at its last state.
type sloFlowWatch struct {
	tr             *telemetry.SLOTracker
	lastSent       uint64
	lastDelivered  uint64
	lastDeliveryAt time.Duration
}

func newTelemetryPlane(d *Deployment, cfg TelemetryConfig) *telemetryPlane {
	p := &telemetryPlane{
		d:        d,
		reg:      telemetry.NewRegistry(),
		interval: cfg.PublishInterval,
	}
	if cfg.TraceCapacity >= 0 {
		cap := cfg.TraceCapacity
		if cap == 0 {
			cap = 4096
		}
		p.ring = telemetry.NewRing(cap)
	}
	p.latencyMs = p.reg.Histogram("jqos_delivery_latency_ms", "ms", latencyBoundsMs...)
	p.budgetRatio = p.reg.Histogram("jqos_delivery_budget_ratio", "ratio", budgetRatioBounds...)
	p.pacerFrac = p.reg.Histogram("jqos_pacer_rate_fraction", "ratio", pacerFracBounds...)
	p.queueDepth = p.reg.Histogram("jqos_egress_queue_depth_bytes", "bytes", queueDepthBounds...)
	p.snapshots = p.reg.Counter("jqos_snapshots_built_total")
	p.roundFn = p.round
	p.spans = telemetry.NewSpanCollector()
	if cfg.SLO.Enabled() {
		p.slo = cfg.SLO.WithDefaults()
		p.sloFlows = make(map[core.FlowID]*sloFlowWatch)
		p.sloTenants = make(map[core.TenantID]*telemetry.SLOTracker)
		p.sloInterval = p.slo.FastWindow / 4
		if p.sloInterval < time.Millisecond {
			p.sloInterval = time.Millisecond
		}
		p.sloRoundFn = p.sloRound
	}
	return p
}

// trace records one control-loop event, stamped with SIMULATED time (the
// determinism contract: same seed, byte-identical trace). Allocation-free
// (Event is a value; the ring preallocates).
func (d *Deployment) trace(e telemetry.Event) {
	p := d.tel
	if p.ring == nil {
		return
	}
	e.At = d.sim.Now()
	p.ring.Record(e)
}

// noteDelivery feeds the delivery histograms (latency, latency/budget).
func (p *telemetryPlane) noteDelivery(lat core.Time, budget time.Duration) {
	p.latencyMs.Observe(float64(lat) / float64(time.Millisecond))
	if budget > 0 {
		p.budgetRatio.Observe(float64(lat) / float64(budget))
	}
}

// notePacer feeds the pacer-rate histogram with rate/contract.
func (p *telemetryPlane) notePacer(rate, contract int64) {
	if contract > 0 {
		p.pacerFrac.Observe(float64(rate) / float64(contract))
	}
}

// noteQueueDepth samples an egress class queue's depth at a watermark
// transition (the edge is exactly when depth is interesting).
func (p *telemetryPlane) noteQueueDepth(depth int64) {
	p.queueDepth.Observe(float64(depth))
}

// wake (re)starts the parked periodic publisher; called per application
// send via noteActivity, so the publisher runs exactly while traffic
// flows. No-op without a PublishInterval.
func (p *telemetryPlane) wake() {
	p.sloWake()
	if p.interval <= 0 {
		return
	}
	p.idle = 0
	if !p.started {
		p.started = true
		p.d.sim.After(p.interval, p.roundFn)
		return
	}
	if p.parked {
		p.parked = false
		p.d.sim.After(p.interval, p.roundFn)
	}
}

// sloWake (re)starts the parked SLO evaluation ticker — same parking
// discipline as the publisher, at FastWindow/4 so a burn crossing is
// seen well inside one fast window.
func (p *telemetryPlane) sloWake() {
	if !p.slo.Enabled() {
		return
	}
	p.sloIdle = 0
	if !p.sloStarted {
		p.sloStarted = true
		p.d.sim.After(p.sloInterval, p.sloRoundFn)
		return
	}
	if p.sloParked {
		p.sloParked = false
		p.d.sim.After(p.sloInterval, p.sloRoundFn)
	}
}

// sloRound runs one SLO sweep and reschedules — or parks after two idle
// rounds. The sweep still runs on idle rounds: state can change (clear
// holds expiring, blackhole synthesis) with no new deliveries.
func (p *telemetryPlane) sloRound() {
	if act := p.d.activity; act == p.sloLastAct {
		p.sloIdle++
	} else {
		p.sloLastAct = act
		p.sloIdle = 0
	}
	p.sloSweep(time.Duration(p.d.sim.Now()))
	if p.sloIdle >= 2 && !p.sloElevated() {
		p.sloParked = true
		return
	}
	p.d.sim.After(p.sloInterval, p.sloRoundFn)
}

// sloElevated reports whether any tracker still sits above Met. The
// ticker must keep sweeping through idle stretches while one does:
// recovery takes two evaluations (one to start the clear hold, one to
// step down after it expires), and parking in between would latch a
// degraded state until the next explicit snapshot. Bounded: with no new
// observations the windows drain, every tracker steps down, and the
// ticker parks.
func (p *telemetryPlane) sloElevated() bool {
	for _, w := range p.sloFlows {
		if w.tr.State() != telemetry.SLOMet {
			return true
		}
	}
	for _, tr := range p.sloClasses {
		if tr != nil && tr.State() != telemetry.SLOMet {
			return true
		}
	}
	for _, tr := range p.sloTenants {
		if tr.State() != telemetry.SLOMet {
			return true
		}
	}
	return false
}

// observeDelivery closes the packet's hop trace (when its cloud copy was
// sampled), feeds the always-on late-delivery reservoir on a budget
// violation, and records the on-time observation into the flow's,
// class's, and tenant's SLO trackers. Called from recordDelivery — the
// first surfaced copy of each packet. Allocation-free when the flow is
// unsampled (integer Pending guard; the reservoir stores by value) and
// after the SLO trackers exist.
func (p *telemetryPlane) observeDelivery(f *Flow, del core.Delivery, lat core.Time) {
	at := time.Duration(del.At)
	budget := f.spec.Budget
	var rec telemetry.HopRecord
	sampled := false
	if p.spans.Pending() > 0 {
		rec, sampled = p.spans.Finish(del.Packet.ID, at,
			time.Duration(del.RecoveryDelay), budget, del.Via)
	}
	if budget > 0 && time.Duration(lat) > budget {
		if !sampled {
			// Unsampled late delivery: a skeleton record (no component
			// breakdown) still lands in the reservoir, so every budget
			// violation is inspectable even at low sampling rates.
			rec = telemetry.HopRecord{
				Flow: f.id, Seq: del.Packet.ID.Seq,
				SentAt: time.Duration(del.Packet.Sent), DeliveredAt: at,
				Total: time.Duration(lat), Budget: budget, Via: del.Via,
			}
		}
		p.spans.NoteLate(rec)
	}
	if !p.slo.Enabled() || budget <= 0 {
		return
	}
	onTime := time.Duration(lat) <= budget
	w := p.sloWatch(f)
	w.tr.Observe(at, onTime)
	w.lastSent = f.metrics.Sent
	w.lastDelivered = f.metrics.Delivered
	w.lastDeliveryAt = at
	p.sloClassTracker(f.service).Observe(at, onTime)
	if f.tenant != nil {
		p.sloTenantTracker(f.tenant.ID()).Observe(at, onTime)
	}
}

// sloWatch returns (creating on first use) the flow's SLO watch.
func (p *telemetryPlane) sloWatch(f *Flow) *sloFlowWatch {
	w := p.sloFlows[f.id]
	if w == nil {
		w = &sloFlowWatch{
			tr:             telemetry.NewSLOTracker(p.slo),
			lastSent:       f.metrics.Sent,
			lastDelivered:  f.metrics.Delivered,
			lastDeliveryAt: time.Duration(p.d.sim.Now()),
		}
		p.sloFlows[f.id] = w
	}
	return w
}

// sloClassTracker returns (creating on first use) the per-service-class
// tracker; classes aggregate every budgeted flow currently on them.
func (p *telemetryPlane) sloClassTracker(svc core.Service) *telemetry.SLOTracker {
	if p.sloClasses[svc] == nil {
		p.sloClasses[svc] = telemetry.NewSLOTracker(p.slo)
	}
	return p.sloClasses[svc]
}

// sloTenantTracker returns (creating on first use) a tenant's tracker.
func (p *telemetryPlane) sloTenantTracker(id core.TenantID) *telemetry.SLOTracker {
	tr := p.sloTenants[id]
	if tr == nil {
		tr = telemetry.NewSLOTracker(p.slo)
		p.sloTenants[id] = tr
	}
	return tr
}

// sloSweep synthesizes blackhole misses and evaluates every tracker,
// recording a trace event per state transition. Iteration order is
// deterministic (ascending flow ID, class index, registration-ordered
// tenants) — tracker maps are never ranged — so same-seed runs emit
// byte-identical traces. Simulator goroutine only.
func (p *telemetryPlane) sloSweep(now time.Duration) {
	if !p.slo.Enabled() {
		return
	}
	d := p.d
	for id := core.FlowID(1); id < d.nextFlow; id++ {
		f, ok := d.flows[id]
		if !ok || f.spec.Budget <= 0 {
			continue
		}
		w := p.sloWatch(f)
		m := f.metrics
		if m.Delivered != w.lastDelivered {
			// Deliveries advanced since the cursor (observeDelivery keeps
			// it current; this re-syncs after tracker re-creation).
			w.lastSent = m.Sent
			w.lastDelivered = m.Delivered
			w.lastDeliveryAt = now
		} else if m.Sent > w.lastSent {
			// Sends advance, deliveries don't: a blackholed flow never
			// reports misses through recordDelivery, so after a grace of
			// max(2×budget, FastWindow) the stalled packets count as
			// synthetic misses and the burn rate rises as it should.
			grace := 2 * f.spec.Budget
			if p.slo.FastWindow > grace {
				grace = p.slo.FastWindow
			}
			if now-w.lastDeliveryAt > grace {
				w.tr.ObserveMisses(now, int(m.Sent-w.lastSent))
				w.lastSent = m.Sent
			}
		}
		p.sloEval(w.tr, now, telemetry.Event{Flow: id})
	}
	for c := 0; c < telemetry.NumClasses; c++ {
		if tr := p.sloClasses[c]; tr != nil {
			p.sloEval(tr, now, telemetry.Event{Class: core.Service(c)})
		}
	}
	if len(p.sloTenants) > 0 {
		d.tenants.Each(func(t *tenant.Tenant) {
			if tr := p.sloTenants[t.ID()]; tr != nil {
				p.sloEval(tr, now, telemetry.Event{Tenant: t.ID()})
			}
		})
	}
}

// sloEval evaluates one tracker and records the transition, if any. The
// degrade/recover counters move in lockstep with the recorded events —
// the invariant chaos accounting checks.
func (p *telemetryPlane) sloEval(tr *telemetry.SLOTracker, now time.Duration, subj telemetry.Event) {
	trn, ok := tr.Eval(now)
	if !ok {
		return
	}
	subj.Reason = uint8(trn.To)
	subj.V1 = int64(trn.BurnFast * 1e6)
	subj.V2 = int64(trn.BurnSlow * 1e6)
	if trn.To > trn.From {
		subj.Kind = telemetry.KindSLODegrade
		p.sloDegrades++
	} else {
		subj.Kind = telemetry.KindSLORecover
		p.sloRecovers++
	}
	p.d.trace(subj)
}

// spanBegin opens a hop trace for a sampled cloud copy.
func (p *telemetryPlane) spanBegin(id core.PacketID, at core.Time) {
	p.spans.Begin(id, time.Duration(at))
}

// spanWait charges an ingress-side wait (admission shaping or pacer
// backpressure) to a pending trace.
func (p *telemetryPlane) spanWait(id core.PacketID, comp telemetry.SpanComponent, d core.Time) {
	p.spans.NoteWait(id, comp, time.Duration(d))
}

// spanDrop abandons a pending trace whose packet died before the wire.
func (p *telemetryPlane) spanDrop(id core.PacketID) { p.spans.Drop(id) }

// spanTxID marks a wire departure for a known-traced packet (ingress
// host, where the sender knows it just sampled).
func (p *telemetryPlane) spanTxID(id core.PacketID, at core.Time) {
	p.spans.NoteTx(id, time.Duration(at))
}

// spanTx marks a wire departure, identifying the packet from its encoded
// header; the integer Pending guard keeps the untraced fast path to one
// comparison before the header peek.
func (p *telemetryPlane) spanTx(msg []byte, at core.Time) {
	if p.spans.Pending() == 0 {
		return
	}
	if id, ok := wire.PeekTrace(msg); ok {
		p.spans.NoteTx(id, time.Duration(at))
	}
}

// spanRx marks a DC arrival for a traced packet (header already
// decoded by the caller).
func (p *telemetryPlane) spanRx(id core.PacketID, at core.Time) {
	if p.spans.Pending() == 0 {
		return
	}
	p.spans.NoteRx(id, time.Duration(at))
}

// spanQueue charges one DRR queue wait at (from, to, class).
func (p *telemetryPlane) spanQueue(msg []byte, from, to core.NodeID, class core.Service, wait core.Time) {
	if p.spans.Pending() == 0 {
		return
	}
	if id, ok := wire.PeekTrace(msg); ok {
		p.spans.NoteQueue(id, from, to, class, time.Duration(wait))
	}
}

// spanDropMsg abandons a pending trace identified from its encoded
// message (egress tail drop).
func (p *telemetryPlane) spanDropMsg(msg []byte) {
	if p.spans.Pending() == 0 {
		return
	}
	if id, ok := wire.PeekTrace(msg); ok {
		p.spans.Drop(id)
	}
}

// forgetFlow releases a closing flow's observability state: its spend
// profile (the (link, class) queue aggregates outlive flows) and its
// SLO watch. Class and tenant trackers persist — they aggregate across
// flow churn by design.
func (p *telemetryPlane) forgetFlow(f *Flow) {
	if f.traceEvery > 0 {
		p.tracedFlows--
	}
	p.spans.ForgetFlow(f.id)
	if p.sloFlows != nil {
		delete(p.sloFlows, f.id)
	}
}

// sloSnapshot assembles the SLO section of a snapshot, deterministically
// ordered like the sweep.
func (p *telemetryPlane) sloSnapshot(now time.Duration) telemetry.SLOSnapshot {
	s := telemetry.SLOSnapshot{
		Enabled:  p.slo.Enabled(),
		Degrades: p.sloDegrades,
		Recovers: p.sloRecovers,
	}
	if !s.Enabled {
		return s
	}
	s.Objective = p.slo.Objective
	s.FastWin = p.slo.FastWindow
	s.SlowWin = p.slo.SlowWindow
	d := p.d
	for id := core.FlowID(1); id < d.nextFlow; id++ {
		w, ok := p.sloFlows[id]
		if !ok {
			continue
		}
		e := sloEntry(w.tr, now)
		e.Flow = id
		s.Flows = append(s.Flows, e)
	}
	for c := 0; c < telemetry.NumClasses; c++ {
		tr := p.sloClasses[c]
		if tr == nil {
			continue
		}
		e := sloEntry(tr, now)
		e.Class = core.Service(c)
		s.Classes = append(s.Classes, e)
	}
	if len(p.sloTenants) > 0 {
		d.tenants.Each(func(t *tenant.Tenant) {
			tr := p.sloTenants[t.ID()]
			if tr == nil {
				return
			}
			e := sloEntry(tr, now)
			e.Tenant = t.ID()
			s.Tenants = append(s.Tenants, e)
		})
	}
	return s
}

func sloEntry(tr *telemetry.SLOTracker, now time.Duration) telemetry.SLOEntry {
	e := telemetry.SLOEntry{State: tr.State(), StateName: tr.State().String()}
	e.BurnFast, e.BurnSlow = tr.Burns(now)
	e.FastOK, e.FastMiss, e.SlowOK, e.SlowMiss = tr.Windows(now)
	return e
}

// round publishes one snapshot and reschedules — or parks after two idle
// rounds so the event heap can drain (the next send wakes it).
func (p *telemetryPlane) round() {
	if act := p.d.activity; act == p.lastActivity {
		p.idle++
	} else {
		p.lastActivity = act
		p.idle = 0
	}
	p.build()
	if p.idle >= 2 {
		p.parked = true
		return
	}
	p.d.sim.After(p.interval, p.roundFn)
}

// Snapshot builds, publishes, and returns one coherent view of the whole
// deployment: per-link load (with per-class rollups), per-queue scheduler
// state, per-flow delivery metrics, routing and feedback counters,
// aggregate totals, the metric registry, and trace occupancy — one call
// instead of polling LinkLoad / SchedStats / FeedbackStats / RoutingStats
// per subsystem. The timestamp is SIMULATED time.
//
// Snapshot must run on the simulator goroutine (it walks live engine
// state); concurrent readers use LatestSnapshot, which returns the
// immutable published result.
func (d *Deployment) Snapshot() *telemetry.Snapshot {
	return d.tel.build()
}

// LatestSnapshot returns the most recently published snapshot (explicit
// Snapshot call or periodic publisher), nil when none exists yet. Safe
// from any goroutine — this is telemetry.Serve's read path.
func (d *Deployment) LatestSnapshot() *telemetry.Snapshot {
	return d.tel.latest.Load()
}

// TraceEvents returns a copy of the buffered control-loop event trace,
// oldest first. Safe from any goroutine (the ring carries its own lock).
func (d *Deployment) TraceEvents() []telemetry.Event {
	if d.tel.ring == nil {
		return nil
	}
	return d.tel.ring.Events(nil)
}

// TraceSince returns up to max buffered trace events with Seq > seq
// (max ≤ 0 means all) — the tailing read telemetry.Serve's /trace uses.
func (d *Deployment) TraceSince(seq uint64, max int) []telemetry.Event {
	if d.tel.ring == nil {
		return nil
	}
	return d.tel.ring.Since(nil, seq, max)
}

// MetricsRegistry exposes the deployment's metric registry so
// applications can register their own counters, gauges, and histograms;
// they ride the same Snapshot and exposition surface as the runtime's.
func (d *Deployment) MetricsRegistry() *telemetry.Registry { return d.tel.reg }

// build assembles and publishes a snapshot. Simulator goroutine only.
func (p *telemetryPlane) build() *telemetry.Snapshot {
	d := p.d
	now := d.sim.Now()
	s := &telemetry.Snapshot{At: time.Duration(now)}

	// Links, in the registry's sorted pair order.
	for _, pr := range d.loadReg.Pairs() {
		ll, ok := d.loadReg.Load(now, pr[0], pr[1])
		if !ok {
			continue
		}
		ls := telemetry.LinkSnapshot{
			A: ll.A, B: ll.B,
			Capacity:    ll.Capacity,
			Utilization: ll.Utilization,
			AB:          dirSnap(ll.AB),
			BA:          dirSnap(ll.BA),
		}
		s.Links = append(s.Links, ls)
		s.Totals.LinkBytes += ll.AB.Bytes + ll.BA.Bytes
		for c := 0; c < telemetry.NumClasses; c++ {
			s.Totals.ClassBytes[c] += ll.AB.ClassBytes[c] + ll.BA.ClassBytes[c]
		}
	}

	// Egress schedulers, ascending (from, to). Node IDs are dense small
	// integers, so a range scan with map membership checks iterates
	// deterministically without sorting.
	for from := core.NodeID(1); from < d.nextNode; from++ {
		dc, ok := d.dcs[from]
		if !ok || dc.egress == nil {
			continue
		}
		for to := core.NodeID(1); to < d.nextNode; to++ {
			q, ok := dc.egress[to]
			if !ok {
				continue
			}
			st := q.drr.Stats()
			qs := telemetry.QueueSnapshot{
				From: from, To: to,
				Rounds:        st.Rounds,
				QueuedBytes:   st.QueuedBytes,
				QueuedPackets: st.QueuedPackets,
			}
			for c := range st.PerClass {
				cs := st.PerClass[c]
				qs.PerClass[c] = telemetry.ClassQueueSnapshot{
					EnqueuedBytes:   cs.EnqueuedBytes,
					EnqueuedPackets: cs.EnqueuedPackets,
					DequeuedBytes:   cs.DequeuedBytes,
					DequeuedPackets: cs.DequeuedPackets,
					DroppedBytes:    cs.DroppedBytes,
					DroppedPackets:  cs.DroppedPackets,
					QueuedBytes:     cs.QueuedBytes,
					QueuedPackets:   cs.QueuedPackets,
					State:           uint8(cs.State),
					StateChanges:    cs.StateChanges,
					FlowQueues:      cs.FlowQueues,
					VictimDrops:     cs.VictimDrops,
				}
			}
			s.Queues = append(s.Queues, qs)
		}
	}

	// Flows, ascending ID.
	for id := core.FlowID(1); id < d.nextFlow; id++ {
		f, ok := d.flows[id]
		if !ok {
			continue
		}
		fs := flowSnap(f)
		s.Flows = append(s.Flows, fs)
		t := &s.Totals
		t.Flows++
		t.Sent += fs.Sent
		t.SentBytes += fs.SentBytes
		t.Delivered += fs.Delivered
		t.Recovered += fs.Recovered
		t.OnTime += fs.OnTime
		t.AdmissionDropped += fs.AdmissionDropped
		t.AdmissionShaped += fs.AdmissionShaped
		t.EgressDropped += fs.EgressDropped
		t.PacedBytes += fs.PacedBytes
	}

	rt := d.ctrl.Stats()
	s.Routing = telemetry.RoutingSnapshot{
		Recomputes:            rt.Recomputes,
		IncrementalRecomputes: rt.IncrementalRecomputes,
		SourcesRecomputed:     rt.SourcesRecomputed,
		Pushes:                rt.Pushes,
		RouteChanges:          rt.RouteChanges,
		Reroutes:              rt.Reroutes,
		LinkFailures:          rt.LinkFailures,
		LinkRecoveries:        rt.LinkRecoveries,
		LinkDegrades:          rt.LinkDegrades,
		UtilizationUpdates:    rt.UtilizationUpdates,
		CongestionReroutes:    rt.CongestionReroutes,
		Unreachable:           rt.Unreachable,
		EpochAdvances:         rt.EpochAdvances,
		EpochRetires:          rt.EpochRetires,
	}

	fb := d.feedbackStats()
	s.Feedback = telemetry.FeedbackSnapshot{
		Enabled:          d.fb != nil,
		Transitions:      fb.Transitions,
		Batches:          fb.Batches,
		SignalsSent:      fb.SignalsSent,
		SignalsLocal:     fb.SignalsLocal,
		SignalsDropped:   fb.SignalsDropped,
		FlowSignals:      fb.FlowSignals,
		HotRefreshes:     fb.HotRefreshes,
		RateCuts:         fb.RateCuts,
		RateRecoveries:   fb.RateRecoveries,
		TenantCuts:       fb.TenantCuts,
		TenantRecoveries: fb.TenantRecoveries,
		PreemptiveMoves:  fb.PreemptiveMoves,
		SubscribedFlows:  fb.SubscribedFlows,
	}

	// Per-tenant slice: each rollup recomputed from the SAME member rows
	// this snapshot carries (s.Flows is ascending), so an auditor holding
	// only the snapshot reproduces every sum bit-exactly.
	if d.tenants.Len() > 0 {
		d.tenants.Each(func(t *tenant.Tenant) {
			s.Tenants = append(s.Tenants, tenantSnap(t, s.Flows))
		})
	}

	s.Totals.EgressBytes = d.TotalEgressBytes()
	s.Totals.CloudCostUSD = d.CloudCost()

	// SLO and attribution assemble BEFORE the trace stats: the sweep may
	// record transition events, and chaos accounting reconciles the
	// Degrades/Recovers counters against the ring's per-kind counts
	// within this one snapshot.
	p.sloSweep(time.Duration(now))
	s.SLO = p.sloSnapshot(time.Duration(now))
	s.Attribution = p.spans.Snapshot()
	s.Attribution.Enabled = p.tracedFlows > 0

	p.snapshots.Inc()
	s.Counters, s.Gauges, s.Histograms = p.reg.Collect()
	if p.ring != nil {
		s.Trace = p.ring.Stats()
	}

	p.latest.Store(s)
	return s
}

func dirSnap(dl load.DirLoad) telemetry.DirSnapshot {
	out := telemetry.DirSnapshot{
		Rate:     dl.Rate,
		Smoothed: dl.Smoothed,
		Peak:     dl.Peak,
		Bytes:    dl.Bytes,
		Packets:  dl.Packets,
	}
	for c := 0; c < telemetry.NumClasses; c++ {
		out.ClassRate[c] = dl.ByClass[c]
		out.ClassBytes[c] = dl.ClassBytes[c]
		out.ClassPackets[c] = dl.ClassPackets[c]
	}
	return out
}

func flowSnap(f *Flow) telemetry.FlowSnapshot {
	m := f.metrics
	fs := telemetry.FlowSnapshot{
		ID:               f.id,
		Src:              f.src,
		Dsts:             append([]core.NodeID(nil), f.dsts...),
		Service:          f.service,
		ServiceName:      f.service.String(),
		Budget:           f.spec.Budget,
		Path:             append([]core.NodeID(nil), f.activePath...),
		Sent:             m.Sent,
		SentBytes:        m.SentBytes,
		Delivered:        m.Delivered,
		Recovered:        m.Recovered,
		OnTime:           m.OnTime,
		AdmissionDropped: m.AdmissionDropped,
		AdmissionShaped:  m.AdmissionShaped,
		EgressDropped:    m.EgressDropped,
		PacedBytes:       m.PacedBytes,
		AdmissionRate:    f.AdmissionRate(),
		Throttled:        f.pacer != nil && f.pacer.Throttled(),
		ServiceChanges:   len(f.changes),
		Tenant:           f.spec.Tenant,
	}
	fs.CostPerGB = f.costPerGB(f.service)
	fs.EstCostUSD = float64(m.SentBytes) / 1e9 * fs.CostPerGB
	for svc, n := range m.ByService {
		if int(svc) < telemetry.NumClasses {
			fs.ByService[svc] = n
		}
	}
	if m.Latency.Len() > 0 {
		fs.LatencyMsMean = m.Latency.Mean()
		fs.LatencyMsP50 = m.Latency.Quantile(0.5)
		fs.LatencyMsP95 = m.Latency.Quantile(0.95)
	}
	return fs
}
