package jqos

import (
	"sync/atomic"
	"time"

	"jqos/internal/core"
	"jqos/internal/load"
	"jqos/internal/telemetry"
	"jqos/internal/tenant"
)

// TelemetryConfig tunes the deployment's observability plane (see the
// package docs' Observability section).
type TelemetryConfig struct {
	// TraceCapacity bounds the control-loop event ring in events. Zero
	// defaults to 4096; negative disables tracing entirely (recording
	// becomes a nil check, TraceEvents returns nil).
	TraceCapacity int
	// PublishInterval, when positive, builds and publishes a fresh
	// snapshot every interval of SIMULATED time while the deployment is
	// active (the publisher parks when traffic stops, like the probers,
	// so an idle event heap still drains). Zero disables periodic
	// publishing — Snapshot() still builds and publishes on demand,
	// which is what tests and experiments use; a live telemetry.Serve
	// endpoint wants the periodic feed.
	PublishInterval time.Duration
}

// Delivery-latency histogram bounds (ms), latency/budget ratio bounds,
// pacer rate fraction bounds, and egress queue depth bounds (bytes).
// Fixed buckets keep Observe allocation-free on the hot paths.
var (
	latencyBoundsMs   = []float64{5, 10, 20, 40, 60, 80, 100, 150, 200, 300, 500, 1000}
	budgetRatioBounds = []float64{0.25, 0.5, 0.75, 1, 1.5, 2, 4, 8}
	pacerFracBounds   = []float64{0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1}
	queueDepthBounds  = []float64{1 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10}
)

// telemetryPlane is the deployment's observability glue: the metric
// registry (with the runtime's four standing histograms), the
// control-loop trace ring, the last published snapshot, and the parking
// periodic publisher. Snapshot BUILDING walks simulator-owned state and
// runs on the simulator goroutine only; the published *telemetry.Snapshot
// is immutable and read from anywhere (telemetry.Serve), and the ring
// carries its own lock.
type telemetryPlane struct {
	d    *Deployment
	reg  *telemetry.Registry
	ring *telemetry.Ring // nil when tracing is disabled

	latest atomic.Pointer[telemetry.Snapshot]

	latencyMs   *telemetry.Histogram
	budgetRatio *telemetry.Histogram
	pacerFrac   *telemetry.Histogram
	queueDepth  *telemetry.Histogram
	snapshots   *telemetry.Counter

	interval     time.Duration
	started      bool
	parked       bool
	idle         int
	lastActivity uint64
	roundFn      func()
}

func newTelemetryPlane(d *Deployment, cfg TelemetryConfig) *telemetryPlane {
	p := &telemetryPlane{
		d:        d,
		reg:      telemetry.NewRegistry(),
		interval: cfg.PublishInterval,
	}
	if cfg.TraceCapacity >= 0 {
		cap := cfg.TraceCapacity
		if cap == 0 {
			cap = 4096
		}
		p.ring = telemetry.NewRing(cap)
	}
	p.latencyMs = p.reg.Histogram("jqos_delivery_latency_ms", "ms", latencyBoundsMs...)
	p.budgetRatio = p.reg.Histogram("jqos_delivery_budget_ratio", "ratio", budgetRatioBounds...)
	p.pacerFrac = p.reg.Histogram("jqos_pacer_rate_fraction", "ratio", pacerFracBounds...)
	p.queueDepth = p.reg.Histogram("jqos_egress_queue_depth_bytes", "bytes", queueDepthBounds...)
	p.snapshots = p.reg.Counter("jqos_snapshots_built_total")
	p.roundFn = p.round
	return p
}

// trace records one control-loop event, stamped with SIMULATED time (the
// determinism contract: same seed, byte-identical trace). Allocation-free
// (Event is a value; the ring preallocates).
func (d *Deployment) trace(e telemetry.Event) {
	p := d.tel
	if p.ring == nil {
		return
	}
	e.At = d.sim.Now()
	p.ring.Record(e)
}

// noteDelivery feeds the delivery histograms (latency, latency/budget).
func (p *telemetryPlane) noteDelivery(lat core.Time, budget time.Duration) {
	p.latencyMs.Observe(float64(lat) / float64(time.Millisecond))
	if budget > 0 {
		p.budgetRatio.Observe(float64(lat) / float64(budget))
	}
}

// notePacer feeds the pacer-rate histogram with rate/contract.
func (p *telemetryPlane) notePacer(rate, contract int64) {
	if contract > 0 {
		p.pacerFrac.Observe(float64(rate) / float64(contract))
	}
}

// noteQueueDepth samples an egress class queue's depth at a watermark
// transition (the edge is exactly when depth is interesting).
func (p *telemetryPlane) noteQueueDepth(depth int64) {
	p.queueDepth.Observe(float64(depth))
}

// wake (re)starts the parked periodic publisher; called per application
// send via noteActivity, so the publisher runs exactly while traffic
// flows. No-op without a PublishInterval.
func (p *telemetryPlane) wake() {
	if p.interval <= 0 {
		return
	}
	p.idle = 0
	if !p.started {
		p.started = true
		p.d.sim.After(p.interval, p.roundFn)
		return
	}
	if p.parked {
		p.parked = false
		p.d.sim.After(p.interval, p.roundFn)
	}
}

// round publishes one snapshot and reschedules — or parks after two idle
// rounds so the event heap can drain (the next send wakes it).
func (p *telemetryPlane) round() {
	if act := p.d.activity; act == p.lastActivity {
		p.idle++
	} else {
		p.lastActivity = act
		p.idle = 0
	}
	p.build()
	if p.idle >= 2 {
		p.parked = true
		return
	}
	p.d.sim.After(p.interval, p.roundFn)
}

// Snapshot builds, publishes, and returns one coherent view of the whole
// deployment: per-link load (with per-class rollups), per-queue scheduler
// state, per-flow delivery metrics, routing and feedback counters,
// aggregate totals, the metric registry, and trace occupancy — one call
// instead of polling LinkLoad / SchedStats / FeedbackStats / RoutingStats
// per subsystem. The timestamp is SIMULATED time.
//
// Snapshot must run on the simulator goroutine (it walks live engine
// state); concurrent readers use LatestSnapshot, which returns the
// immutable published result.
func (d *Deployment) Snapshot() *telemetry.Snapshot {
	return d.tel.build()
}

// LatestSnapshot returns the most recently published snapshot (explicit
// Snapshot call or periodic publisher), nil when none exists yet. Safe
// from any goroutine — this is telemetry.Serve's read path.
func (d *Deployment) LatestSnapshot() *telemetry.Snapshot {
	return d.tel.latest.Load()
}

// TraceEvents returns a copy of the buffered control-loop event trace,
// oldest first. Safe from any goroutine (the ring carries its own lock).
func (d *Deployment) TraceEvents() []telemetry.Event {
	if d.tel.ring == nil {
		return nil
	}
	return d.tel.ring.Events(nil)
}

// TraceSince returns up to max buffered trace events with Seq > seq
// (max ≤ 0 means all) — the tailing read telemetry.Serve's /trace uses.
func (d *Deployment) TraceSince(seq uint64, max int) []telemetry.Event {
	if d.tel.ring == nil {
		return nil
	}
	return d.tel.ring.Since(nil, seq, max)
}

// MetricsRegistry exposes the deployment's metric registry so
// applications can register their own counters, gauges, and histograms;
// they ride the same Snapshot and exposition surface as the runtime's.
func (d *Deployment) MetricsRegistry() *telemetry.Registry { return d.tel.reg }

// build assembles and publishes a snapshot. Simulator goroutine only.
func (p *telemetryPlane) build() *telemetry.Snapshot {
	d := p.d
	now := d.sim.Now()
	s := &telemetry.Snapshot{At: time.Duration(now)}

	// Links, in the registry's sorted pair order.
	for _, pr := range d.loadReg.Pairs() {
		ll, ok := d.loadReg.Load(now, pr[0], pr[1])
		if !ok {
			continue
		}
		ls := telemetry.LinkSnapshot{
			A: ll.A, B: ll.B,
			Capacity:    ll.Capacity,
			Utilization: ll.Utilization,
			AB:          dirSnap(ll.AB),
			BA:          dirSnap(ll.BA),
		}
		s.Links = append(s.Links, ls)
		s.Totals.LinkBytes += ll.AB.Bytes + ll.BA.Bytes
		for c := 0; c < telemetry.NumClasses; c++ {
			s.Totals.ClassBytes[c] += ll.AB.ClassBytes[c] + ll.BA.ClassBytes[c]
		}
	}

	// Egress schedulers, ascending (from, to). Node IDs are dense small
	// integers, so a range scan with map membership checks iterates
	// deterministically without sorting.
	for from := core.NodeID(1); from < d.nextNode; from++ {
		dc, ok := d.dcs[from]
		if !ok || dc.egress == nil {
			continue
		}
		for to := core.NodeID(1); to < d.nextNode; to++ {
			q, ok := dc.egress[to]
			if !ok {
				continue
			}
			st := q.drr.Stats()
			qs := telemetry.QueueSnapshot{
				From: from, To: to,
				Rounds:        st.Rounds,
				QueuedBytes:   st.QueuedBytes,
				QueuedPackets: st.QueuedPackets,
			}
			for c := range st.PerClass {
				cs := st.PerClass[c]
				qs.PerClass[c] = telemetry.ClassQueueSnapshot{
					EnqueuedBytes:   cs.EnqueuedBytes,
					EnqueuedPackets: cs.EnqueuedPackets,
					DequeuedBytes:   cs.DequeuedBytes,
					DequeuedPackets: cs.DequeuedPackets,
					DroppedBytes:    cs.DroppedBytes,
					DroppedPackets:  cs.DroppedPackets,
					QueuedBytes:     cs.QueuedBytes,
					QueuedPackets:   cs.QueuedPackets,
					State:           uint8(cs.State),
					StateChanges:    cs.StateChanges,
					FlowQueues:      cs.FlowQueues,
					VictimDrops:     cs.VictimDrops,
				}
			}
			s.Queues = append(s.Queues, qs)
		}
	}

	// Flows, ascending ID.
	for id := core.FlowID(1); id < d.nextFlow; id++ {
		f, ok := d.flows[id]
		if !ok {
			continue
		}
		fs := flowSnap(f)
		s.Flows = append(s.Flows, fs)
		t := &s.Totals
		t.Flows++
		t.Sent += fs.Sent
		t.SentBytes += fs.SentBytes
		t.Delivered += fs.Delivered
		t.Recovered += fs.Recovered
		t.OnTime += fs.OnTime
		t.AdmissionDropped += fs.AdmissionDropped
		t.AdmissionShaped += fs.AdmissionShaped
		t.EgressDropped += fs.EgressDropped
		t.PacedBytes += fs.PacedBytes
	}

	rt := d.ctrl.Stats()
	s.Routing = telemetry.RoutingSnapshot{
		Recomputes:            rt.Recomputes,
		IncrementalRecomputes: rt.IncrementalRecomputes,
		SourcesRecomputed:     rt.SourcesRecomputed,
		Pushes:                rt.Pushes,
		RouteChanges:          rt.RouteChanges,
		Reroutes:              rt.Reroutes,
		LinkFailures:          rt.LinkFailures,
		LinkRecoveries:        rt.LinkRecoveries,
		LinkDegrades:          rt.LinkDegrades,
		UtilizationUpdates:    rt.UtilizationUpdates,
		CongestionReroutes:    rt.CongestionReroutes,
		Unreachable:           rt.Unreachable,
		EpochAdvances:         rt.EpochAdvances,
		EpochRetires:          rt.EpochRetires,
	}

	fb := d.feedbackStats()
	s.Feedback = telemetry.FeedbackSnapshot{
		Enabled:          d.fb != nil,
		Transitions:      fb.Transitions,
		Batches:          fb.Batches,
		SignalsSent:      fb.SignalsSent,
		SignalsLocal:     fb.SignalsLocal,
		SignalsDropped:   fb.SignalsDropped,
		FlowSignals:      fb.FlowSignals,
		HotRefreshes:     fb.HotRefreshes,
		RateCuts:         fb.RateCuts,
		RateRecoveries:   fb.RateRecoveries,
		TenantCuts:       fb.TenantCuts,
		TenantRecoveries: fb.TenantRecoveries,
		PreemptiveMoves:  fb.PreemptiveMoves,
		SubscribedFlows:  fb.SubscribedFlows,
	}

	// Per-tenant slice: each rollup recomputed from the SAME member rows
	// this snapshot carries (s.Flows is ascending), so an auditor holding
	// only the snapshot reproduces every sum bit-exactly.
	if d.tenants.Len() > 0 {
		d.tenants.Each(func(t *tenant.Tenant) {
			s.Tenants = append(s.Tenants, tenantSnap(t, s.Flows))
		})
	}

	s.Totals.EgressBytes = d.TotalEgressBytes()
	s.Totals.CloudCostUSD = d.CloudCost()

	p.snapshots.Inc()
	s.Counters, s.Gauges, s.Histograms = p.reg.Collect()
	if p.ring != nil {
		s.Trace = p.ring.Stats()
	}

	p.latest.Store(s)
	return s
}

func dirSnap(dl load.DirLoad) telemetry.DirSnapshot {
	out := telemetry.DirSnapshot{
		Rate:     dl.Rate,
		Smoothed: dl.Smoothed,
		Peak:     dl.Peak,
		Bytes:    dl.Bytes,
		Packets:  dl.Packets,
	}
	for c := 0; c < telemetry.NumClasses; c++ {
		out.ClassRate[c] = dl.ByClass[c]
		out.ClassBytes[c] = dl.ClassBytes[c]
		out.ClassPackets[c] = dl.ClassPackets[c]
	}
	return out
}

func flowSnap(f *Flow) telemetry.FlowSnapshot {
	m := f.metrics
	fs := telemetry.FlowSnapshot{
		ID:               f.id,
		Src:              f.src,
		Dsts:             append([]core.NodeID(nil), f.dsts...),
		Service:          f.service,
		ServiceName:      f.service.String(),
		Budget:           f.spec.Budget,
		Path:             append([]core.NodeID(nil), f.activePath...),
		Sent:             m.Sent,
		SentBytes:        m.SentBytes,
		Delivered:        m.Delivered,
		Recovered:        m.Recovered,
		OnTime:           m.OnTime,
		AdmissionDropped: m.AdmissionDropped,
		AdmissionShaped:  m.AdmissionShaped,
		EgressDropped:    m.EgressDropped,
		PacedBytes:       m.PacedBytes,
		AdmissionRate:    f.AdmissionRate(),
		Throttled:        f.pacer != nil && f.pacer.Throttled(),
		ServiceChanges:   len(f.changes),
		Tenant:           f.spec.Tenant,
	}
	fs.CostPerGB = f.costPerGB(f.service)
	fs.EstCostUSD = float64(m.SentBytes) / 1e9 * fs.CostPerGB
	for svc, n := range m.ByService {
		if int(svc) < telemetry.NumClasses {
			fs.ByService[svc] = n
		}
	}
	if m.Latency.Len() > 0 {
		fs.LatencyMsMean = m.Latency.Mean()
		fs.LatencyMsP50 = m.Latency.Quantile(0.5)
		fs.LatencyMsP95 = m.Latency.Quantile(0.95)
	}
	return fs
}
