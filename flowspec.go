package jqos

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"time"

	"jqos/internal/core"
	"jqos/internal/feedback"
	"jqos/internal/load"
	"jqos/internal/overlay"
	"jqos/internal/routing"
	"jqos/internal/telemetry"
	"jqos/internal/tenant"
)

// PathPolicyKind selects how a flow's overlay path is chosen among the
// routing controller's k-alternate paths between its two DCs.
type PathPolicyKind uint8

const (
	// PathFastest follows the controller's shared next-hop tables (the
	// least-latency path, rerouted automatically on failures). This is
	// the default.
	PathFastest PathPolicyKind = iota
	// PathCheapest pins the flow to the fewest-hop path among the
	// controller's k-alternate paths (Config.KAltPaths; raise it to
	// widen the search) — each inter-DC hop is a billable egress event,
	// so fewest hops is cheapest under the egress price model. Latency
	// breaks ties. A cheaper path outside the k lowest-latency
	// alternates is not considered.
	PathCheapest
	// PathPinned pins the flow to the k-th alternate path (PathPolicy.
	// Alternate; 0 is the primary). When the pinned path dies the flow
	// re-resolves the policy against the surviving alternates.
	PathPinned
)

// String implements fmt.Stringer.
func (k PathPolicyKind) String() string {
	switch k {
	case PathFastest:
		return "fastest"
	case PathCheapest:
		return "cheapest"
	case PathPinned:
		return "pinned"
	default:
		return fmt.Sprintf("pathpolicy(%d)", uint8(k))
	}
}

// PathPolicy is a flow's declarative route preference over the overlay.
// It governs the flow's own data and cache traffic exactly, and its
// coded parity too: the encoder batches cross-stream coding by (egress
// DC, path policy), so a batch only ever mixes flows that declared the
// same policy and its parity rides that policy — a pinned flow's parity
// never strays onto a sibling's route.
type PathPolicy struct {
	Kind PathPolicyKind
	// Alternate indexes the controller's k-alternate paths for
	// PathPinned (0 = primary; clamped to the available alternates).
	Alternate int
}

// ServiceChangeReason says why the adaptation loop moved a flow.
type ServiceChangeReason uint8

const (
	// ReasonBudgetViolation: the recent delivery window fell below the
	// configured on-time fraction; the flow upgraded.
	ReasonBudgetViolation ServiceChangeReason = iota + 1
	// ReasonOverDelivery: the flow sustained over-delivery for the
	// hysteresis streak and stepped down to a cheaper service.
	ReasonOverDelivery
	// ReasonCongestion: a Hot backpressure signal on the flow's (link,
	// class) triggered a preemptive move off the building queue, before
	// any delivery window could miss (Config.Feedback).
	ReasonCongestion
	// ReasonCostViolation: the current service, priced at the flow's
	// observed loss rate, exceeded the spec's cost ceiling; the flow was
	// force-moved to a cheaper compliant tier.
	ReasonCostViolation
)

// String implements fmt.Stringer.
func (r ServiceChangeReason) String() string {
	switch r {
	case ReasonBudgetViolation:
		return "budget-violation"
	case ReasonOverDelivery:
		return "over-delivery"
	case ReasonCongestion:
		return "congestion"
	case ReasonCostViolation:
		return "cost-violation"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// ServiceChange records one adaptation transition of a flow.
type ServiceChange struct {
	At       time.Duration // virtual time of the change
	From, To Service
	Reason   ServiceChangeReason
}

// FlowObserver receives a flow's lifecycle events, replacing polling of
// Metrics(). Callbacks run synchronously inside the simulator (or
// transport) event that caused them — keep them short and do not call
// back into the deployment from them.
type FlowObserver interface {
	// OnServiceChange fires when the adaptation loop moves the flow to
	// a different service (either direction).
	OnServiceChange(f *Flow, change ServiceChange)
	// OnReroute fires when the flow's overlay path changes: a pinned
	// path died and was re-resolved, or (for PathFastest flows) the
	// controller moved the primary path. Either slice may be nil when
	// no path existed on that side.
	OnReroute(f *Flow, old, next []NodeID)
	// OnBudgetViolation fires when a delivery window misses the on-time
	// target, just before the resulting upgrade attempt.
	OnBudgetViolation(f *Flow, onTime float64, delivered uint64)
	// OnDelivery fires for sampled deliveries (every
	// FlowSpec.DeliverySample-th; never when DeliverySample is 0).
	OnDelivery(f *Flow, del Delivery)
	// OnAdmissionDrop fires when the flow's token-bucket contract
	// (FlowSpec.Rate) drops a packet's cloud copy — the packet exceeded
	// the contract and, with AdmissionShape, could not be delayed into
	// conformance either. The direct Internet copy, if any, was still
	// sent: admission polices cloud resources only.
	OnAdmissionDrop(f *Flow, seq Seq, size int)
	// OnEgressDrop fires when a DC egress scheduler's byte cap drops one
	// of the flow's packets from the tail of its class queue
	// (Config.Scheduler) — the class's share of the link could not absorb
	// the backlog. class is the service class of the dropped copy, size
	// its wire size. Direct Internet copies never pass the scheduler and
	// are never dropped by it.
	OnEgressDrop(f *Flow, class Service, size int)
	// OnCongestionSignal fires when the feedback plane delivers a
	// watermark transition for a (link, class) the flow traverses
	// (Config.Feedback) — before the flow's own reaction (pacer cut or
	// preemptive service move), so the observer sees cause then effect.
	OnCongestionSignal(f *Flow, sig CongestionSignal)
	// OnCostViolation fires when the flow's CURRENT service, priced at
	// its observed loss rate, exceeds the spec's cost ceiling —
	// just before the forced downgrade attempt (which fixed-service
	// flows skip; the telemetry still fires). costPerGB is the
	// offending price.
	OnCostViolation(f *Flow, svc Service, costPerGB float64)
}

// FlowEvents is a no-op FlowObserver for embedding, so observers
// implement only the events they care about.
type FlowEvents struct{}

// OnServiceChange implements FlowObserver.
func (FlowEvents) OnServiceChange(*Flow, ServiceChange) {}

// OnReroute implements FlowObserver.
func (FlowEvents) OnReroute(*Flow, []NodeID, []NodeID) {}

// OnBudgetViolation implements FlowObserver.
func (FlowEvents) OnBudgetViolation(*Flow, float64, uint64) {}

// OnDelivery implements FlowObserver.
func (FlowEvents) OnDelivery(*Flow, Delivery) {}

// OnAdmissionDrop implements FlowObserver.
func (FlowEvents) OnAdmissionDrop(*Flow, Seq, int) {}

// OnEgressDrop implements FlowObserver.
func (FlowEvents) OnEgressDrop(*Flow, Service, int) {}

// OnCongestionSignal implements FlowObserver.
func (FlowEvents) OnCongestionSignal(*Flow, CongestionSignal) {}

// OnCostViolation implements FlowObserver.
func (FlowEvents) OnCostViolation(*Flow, Service, float64) {}

// FlowSpec is the declarative registration intent of one application
// stream: where it goes, what latency it needs, what it may cost, which
// services and overlay paths are acceptable, and who hears about its
// lifecycle. The zero values mean "no constraint" everywhere except Src,
// Dst/Members, and Budget, which are required.
type FlowSpec struct {
	// Src is the sending host.
	Src NodeID
	// Dst is the unicast destination host. Leave zero for multicast.
	Dst NodeID
	// Group is the multicast group address (AllocGroupID + AddGroup);
	// required when Members is set. The cloud copy is addressed to it.
	Group NodeID
	// Members are the multicast destinations (direct copies go to each).
	Members []NodeID

	// Budget is the delivery-latency budget (required and positive,
	// except with ServiceFixed, where selection has nothing to fit and
	// a zero budget merely marks every delivery late in the metrics).
	Budget time.Duration

	// Tenant attributes the flow to a registered customer contract
	// (Deployment.RegisterTenant, which must run first). The flow's
	// cloud copies then draw from the tenant's aggregate admission
	// quota BEFORE the per-flow Rate contract, its egress spend counts
	// against the tenant's cost budget, and congestion on a bottleneck
	// shared with sibling flows paces the whole tenant as one. Zero
	// means untenanted — per-flow enforcement only.
	Tenant TenantID

	// Service pins the flow to one service when ServiceFixed is set:
	// selection is bypassed and the adaptation loop never changes the
	// service (the Observer still receives OnBudgetViolation telemetry).
	// This is what the deprecated WithService option maps to.
	Service      Service
	ServiceFixed bool

	// ServiceFloor / ServiceCeiling bound both initial selection and the
	// adaptation loop: the flow never runs below the floor or above the
	// ceiling. Zero ceiling means no ceiling (ServiceForwarding).
	ServiceFloor   Service
	ServiceCeiling Service

	// AllowInternet lets selection (and downgrades) use plain
	// best-effort Internet when it fits the budget; by default J-QoS
	// always provides a recovery service.
	AllowInternet bool

	// CostCeilingPerGB bounds the selected service's egress cost per GB
	// of application data under overlay.DefaultCostModel (see
	// overlay.CostModel.EgressPerAppGB). Zero = unbounded.
	CostCeilingPerGB float64

	// Path chooses the overlay route among the controller's k-alternate
	// paths (per-flow pinning). The zero value follows the shared
	// fastest-path tables.
	Path PathPolicy

	// RepinOnHeal returns the flow to the path its Path policy chose at
	// registration once that path's links are all healthy again. By
	// default a pinned flow that failed over onto a surviving alternate
	// stays parked there — correct for stability, wrong for cost when
	// the preferred path was the cheaper one. Requires a non-default
	// Path policy (PathFastest already follows the controller's best).
	RepinOnHeal bool

	// PathSwitch suppresses the direct-path copy when the forwarding
	// service is active (VIA-style full switch to the overlay).
	PathSwitch bool

	// Rate, when positive, is the flow's admission contract: its cloud
	// copies are policed at the ingress by a token bucket refilling at
	// Rate bytes/second with Burst bytes of depth. Packets exceeding the
	// contract lose their cloud copy (dropped, with
	// Observer.OnAdmissionDrop and FlowMetrics.AdmissionDropped) or —
	// with AdmissionShape — are delayed into conformance. The direct
	// Internet copy is never policed: admission governs cloud resources
	// only, so one greedy flow cannot starve the overlay (§2's judicious
	// use). Zero disables admission — the exact pre-contract behavior.
	//
	// A multicast flow's single cloud copy fans out to every member at
	// the egress DC, so admission charges it at wire size × member
	// count — one shared bucket polices the whole fan-out instead of
	// each destination riding unpoliced (the tenant quota charges the
	// same way).
	Rate int64
	// Burst is the admission token-bucket depth in bytes. Zero with a
	// positive Rate defaults to a quarter second of Rate, floored at one
	// 1500-byte MTU. Size it to at least the flow's largest packet
	// (payload + 40-byte header): a packet larger than the depth can
	// never conform and loses its cloud copy every time.
	Burst int64
	// AdmissionShape delays non-conformant cloud copies until the bucket
	// refills instead of dropping them (counted in
	// FlowMetrics.AdmissionShaped). The delay is bounded by the flow's
	// budget — a cloud copy that would leave later than the budget
	// cannot help and drops as if policed.
	AdmissionShape bool

	// Duplication selects which packets get a cloud copy (selective
	// duplication, §6.4). Nil duplicates everything.
	Duplication DuplicationPolicy

	// Observer receives lifecycle events; nil disables them.
	Observer FlowObserver
	// DeliverySample invokes Observer.OnDelivery every N-th delivery
	// (0 disables delivery sampling).
	DeliverySample uint64

	// TraceSampling enables hop-level latency attribution for this
	// flow: the fraction of cloud copies (in (0, 1]) stamped with the
	// wire-level trace flag so every choke point records where their
	// latency budget was spent (see Snapshot.Attribution). Rounded to
	// an every-Nth-packet stride for determinism; 0 disables sampling.
	// Budget-violating deliveries land in the late-delivery reservoir
	// regardless.
	TraceSampling float64
}

// RegisterFlow creates a flow from declarative intent: it validates the
// spec, picks the cheapest service satisfying budget, floor/ceiling, and
// cost ceiling (§3.5, cost-extended), resolves the path policy against
// the routing controller's k-alternates, seeds the receivers, and starts
// the bidirectional adaptation loop.
func (d *Deployment) RegisterFlow(spec FlowSpec) (*Flow, error) {
	if _, ok := d.hosts[spec.Src]; !ok {
		return nil, fmt.Errorf("jqos: source %v is not a host", spec.Src)
	}
	multicast := len(spec.Members) > 0
	var dsts []core.NodeID
	cloud := core.NodeID(spec.Dst)
	switch {
	case multicast:
		if spec.Group == 0 {
			return nil, fmt.Errorf("jqos: multicast flow needs a Group address (AllocGroupID + AddGroup)")
		}
		if spec.Dst != 0 {
			return nil, fmt.Errorf("jqos: Dst and Members are mutually exclusive (unicast destinations go in Members)")
		}
		dsts = append([]core.NodeID(nil), spec.Members...)
		cloud = spec.Group
	case spec.Group != 0:
		return nil, fmt.Errorf("jqos: multicast flow needs members")
	case spec.Dst == 0:
		return nil, fmt.Errorf("jqos: flow needs a destination")
	default:
		dsts = []core.NodeID{spec.Dst}
	}
	// A fixed service needs no budget to select against — the historical
	// forced-service API accepted budget 0 (OnTime accounting simply
	// counts everything late), and the shims must keep doing so.
	if spec.Budget <= 0 && !spec.ServiceFixed {
		return nil, fmt.Errorf("jqos: flow needs a positive latency budget, got %v", spec.Budget)
	}
	floor, ceiling := spec.ServiceFloor, spec.ServiceCeiling
	if ceiling == 0 {
		ceiling = core.ServiceForwarding
	}
	if floor > ceiling {
		return nil, fmt.Errorf("jqos: service floor %v above ceiling %v", floor, ceiling)
	}
	// Admission contract: normalize the burst default here so Spec()
	// reflects the effective contract.
	if spec.Rate < 0 {
		return nil, fmt.Errorf("jqos: negative admission Rate %d", spec.Rate)
	}
	if spec.Burst < 0 {
		return nil, fmt.Errorf("jqos: negative admission Burst %d", spec.Burst)
	}
	if spec.Rate == 0 && (spec.Burst != 0 || spec.AdmissionShape) {
		return nil, fmt.Errorf("jqos: Burst/AdmissionShape need a positive admission Rate contract")
	}
	if spec.TraceSampling < 0 || spec.TraceSampling > 1 {
		return nil, fmt.Errorf("jqos: TraceSampling %v outside [0, 1]", spec.TraceSampling)
	}
	// Sampling rate → deterministic every-Nth stride (≥ 1), so the same
	// seed always traces the same packets.
	var traceEvery uint64
	if spec.TraceSampling > 0 {
		traceEvery = uint64(math.Round(1 / spec.TraceSampling))
		if traceEvery == 0 {
			traceEvery = 1
		}
	}
	var bucket *load.Bucket
	if spec.Rate > 0 {
		bucket = load.NewBucket(spec.Rate, spec.Burst)
		spec.Burst = bucket.Burst()
	}
	// Tenancy: the contract must pre-exist — a typo'd tenant ID silently
	// escaping aggregate enforcement is exactly the evasion tenancy is
	// for. Membership is counted only after every later check passes.
	var tn *tenant.Tenant
	if spec.Tenant != 0 {
		t, ok := d.tenants.Get(spec.Tenant)
		if !ok {
			return nil, fmt.Errorf("jqos: tenant %v not registered (RegisterTenant before RegisterFlow)", spec.Tenant)
		}
		tn = t
	}
	if spec.RepinOnHeal && spec.Path.Kind == PathFastest {
		return nil, fmt.Errorf("jqos: RepinOnHeal needs a pinned path policy (PathCheapest or PathPinned) — PathFastest already follows the controller's best path")
	}
	// A non-default path policy must be resolvable now, not silently
	// dropped: the cloud destination needs a known home DC (for
	// multicast that means AddGroup before RegisterFlow). The chosen
	// path's latency also feeds service selection below — a flow pinned
	// to a slow alternate must not select against the fastest path.
	var policyPath *routing.Path
	var policyPathLat core.Time
	if spec.Path.Kind != PathFastest {
		home, homeOK := d.cloudHomeOf(multicast, cloud)
		if !homeOK {
			return nil, fmt.Errorf("jqos: path policy %v needs a resolvable cloud destination for %v (AddGroup before RegisterFlow)", spec.Path.Kind, cloud)
		}
		if dcA, ok := d.topo.NearestDC(spec.Src); ok && dcA != home {
			if p := d.choosePolicyPath(spec.Path, dcA, home); p != nil {
				policyPath = p
				// Price selection on the path's honest latency, not its
				// routing weight (Path.Cost is congestion-inflated).
				if lat, ok := d.ctrl.PathCost(p.Nodes); ok {
					policyPathLat = lat
				} else {
					policyPathLat = p.Cost
				}
			}
		}
	}
	svc := spec.Service
	if svc != core.ServiceInternet && !spec.ServiceFixed {
		return nil, fmt.Errorf("jqos: Service %v set without ServiceFixed — pin it with ServiceFixed, or bias selection with ServiceFloor", svc)
	}
	if spec.ServiceFixed {
		// Guard the zero-value trap: Service's zero value IS
		// ServiceInternet, so an accidental {ServiceFixed: true} would
		// silently strip all cloud recovery. Pinning to plain Internet
		// must be spelled out with AllowInternet.
		if svc == core.ServiceInternet && !spec.AllowInternet {
			return nil, fmt.Errorf("jqos: ServiceFixed with ServiceInternet needs AllowInternet (set Service explicitly to pin a recovery service)")
		}
		if svc < spec.ServiceFloor || (spec.ServiceCeiling != 0 && svc > spec.ServiceCeiling) {
			return nil, fmt.Errorf("jqos: fixed service %v outside floor/ceiling [%v, %v]", svc, spec.ServiceFloor, spec.ServiceCeiling)
		}
		if spec.CostCeilingPerGB > 0 {
			if per := d.costPerGB(svc); per > spec.CostCeilingPerGB {
				return nil, fmt.Errorf("jqos: fixed service %v costs $%.4f/GB, above the spec's $%.4f/GB ceiling", svc, per, spec.CostCeilingPerGB)
			}
		}
		floor, ceiling = svc, svc
	} else {
		// Select against the first destination (multicast members are
		// assumed latency-similar, as in the paper's hybrid multicast).
		// Internet eligibility uses the same every-member guard as the
		// downgrade loop; predictions use the policy path's latency.
		s, _, ok := d.topo.SelectServiceWith(spec.Src, dsts[0], overlay.ServicePolicy{
			Budget:           spec.Budget,
			RequireRecovery:  !spec.AllowInternet || !d.internetViable(spec.Src, dsts),
			Floor:            floor,
			Ceiling:          ceiling,
			CostCeilingPerGB: spec.CostCeilingPerGB,
			Alpha:            d.cfg.Encoder.Alpha(),
			PathLatency:      policyPathLat,
		})
		if !ok {
			return nil, fmt.Errorf("jqos: no service can meet budget %v for %v→%v under the spec's constraints",
				spec.Budget, spec.Src, dsts[0])
		}
		svc = s
	}
	// Scheduler-aware admission: under contention a class is guaranteed
	// only its weighted share of each link, so a Rate contract above the
	// class's share of the path's bottleneck capacity can never be
	// honored — reject it outright, or (with AdmissionShape, which
	// already declared "delay me into conformance") shape the contract
	// down to the honorable envelope. Burst is bounded by the class
	// queue's byte cap the same way: a conformant burst larger than the
	// queue would tail-drop at the egress no matter what the ingress
	// admitted.
	if bucket != nil && d.cfg.Scheduler.Enabled() {
		if share, queueCap, ok := d.admissionEnvelope(svc, spec.Src, multicast, cloud, policyPath); ok {
			reshaped := false
			if spec.Rate > share {
				if !spec.AdmissionShape {
					return nil, fmt.Errorf("jqos: admission Rate %d B/s exceeds the %v class's weighted share (%d B/s) of the path's bottleneck link — unhonorable under contention; lower Rate, raise the class weight or link capacity, or set AdmissionShape to accept the share",
						spec.Rate, svc, share)
				}
				spec.Rate = share
				reshaped = true
			}
			if queueCap > 0 && spec.Burst > queueCap {
				if !spec.AdmissionShape {
					return nil, fmt.Errorf("jqos: admission Burst %d B exceeds the %v class's egress queue cap (%d B) — a conformant burst that large tail-drops anyway; lower Burst, raise Scheduler.QueueBytes, or set AdmissionShape to accept the cap",
						spec.Burst, svc, queueCap)
				}
				spec.Burst = queueCap
				reshaped = true
			}
			if reshaped {
				bucket = load.NewBucket(spec.Rate, spec.Burst)
				spec.Burst = bucket.Burst()
			}
		}
	}
	// Store the spec normalized so Spec() reflects the effective policy:
	// defaulted ceiling, collapsed fixed range, owned member slice.
	spec.ServiceFloor, spec.ServiceCeiling = floor, ceiling
	if multicast {
		spec.Members = dsts
	}
	f := &Flow{
		id:         d.nextFlow,
		d:          d,
		src:        spec.Src,
		dsts:       dsts,
		cloud:      cloud,
		service:    svc,
		spec:       spec,
		bucket:     bucket,
		tenant:     tn,
		metrics:    newFlowMetrics(),
		dgNeed:     d.cfg.DowngradeAfter,
		traceEvery: traceEvery,
	}
	if d.fb != nil && bucket != nil {
		f.pacer = feedback.NewPacer(bucket, d.cfg.Feedback.Pacer)
	}
	d.nextFlow++
	d.flows[f.id] = f
	if traceEvery > 0 {
		d.tel.tracedFlows++
	}
	if tn != nil {
		tn.AddFlow()
	}

	// Pre-create receiver engines with the right RTT estimate so the
	// first loss is already covered. Any receiver already present under
	// this ID predates its allocation (a premature PullFlow or a forged
	// packet) — drop it so the flow starts on fresh, correctly
	// configured, teardown-indexed state instead of silently riding a
	// default-RTT zombie that Close could never free.
	for _, dst := range dsts {
		if h, ok := d.hosts[dst]; ok {
			h.dropReceiver(f.id)
			h.ensureReceiver(f.id, d.receiverRTT(spec.Src, dst), svc)
		}
	}

	// The policy path was already computed for selection above; hand it
	// to resolution so registration runs Yen's algorithm once, not twice.
	f.resolvePathWith(policyPath)
	if spec.RepinOnHeal && len(f.activePath) >= 2 {
		// Remember the policy's registration-time choice as the path to
		// return to after a failover, once it heals.
		f.preferredPath = append([]core.NodeID(nil), f.activePath...)
	}
	f.updateFeedbackSub()
	f.armAdaptTick()
	return f, nil
}

// admissionEnvelope computes the scheduler-aware admission bounds for a
// flow of class svc from src's DC to its cloud home: the class's
// weighted share of the path's bottleneck accounting capacity (the
// minimum across capacitated hops of capacity × weight ⁄ Σweights) and
// the per-class egress queue byte cap (0 when unbounded). policyPath
// overrides the primary route for pinned policies, so the contract is
// sized against the path the flow will actually ride. ok is false when
// nothing constrains the path — same-DC flows, no route, or no
// capacitated hop.
func (d *Deployment) admissionEnvelope(svc core.Service, src core.NodeID, multicast bool, cloud core.NodeID, policyPath *routing.Path) (share, queueCap int64, ok bool) {
	if svc == core.ServiceInternet {
		return 0, 0, false // no cloud copies: nothing to size
	}
	dcA, okA := d.topo.NearestDC(src)
	home, okB := d.cloudHomeOf(multicast, cloud)
	if !okA || !okB || dcA == home {
		return 0, 0, false
	}
	var nodes []core.NodeID
	if policyPath != nil {
		nodes = policyPath.Nodes
	} else if ps := d.ctrl.Paths(dcA, home, 1); len(ps) > 0 {
		nodes = ps[0].Nodes
	} else {
		return 0, 0, false
	}
	share, ok = d.classShareOnNodes(svc, nodes)
	if !ok {
		return 0, 0, false
	}
	if q := d.cfg.Scheduler.EffectiveQueueBytes(); q > 0 {
		queueCap = q
	}
	return share, queueCap, true
}

// classShareOnNodes returns svc's guaranteed share of the bottleneck
// capacitated hop along a DC path: min over capacitated links of
// capacity × weight ⁄ contended-weight. The denominator counts only
// the classes that can actually contend (the Internet queue idles;
// work-conservation hands its share back), so the guarantee is not
// understated. ok is false when no hop is capacitated.
func (d *Deployment) classShareOnNodes(svc core.Service, nodes []core.NodeID) (int64, bool) {
	w, tot := d.cfg.Scheduler.WeightOf(svc), d.cfg.Scheduler.ContendedWeight()
	bottleneck := int64(-1)
	for i := 0; i+1 < len(nodes); i++ {
		c := d.loadReg.Capacity(nodes[i], nodes[i+1])
		if c <= 0 {
			continue // uncapacitated hop: no constraint to size against
		}
		s := c * w / tot
		if bottleneck < 0 || s < bottleneck {
			bottleneck = s
		}
	}
	if bottleneck < 0 {
		return 0, false
	}
	if bottleneck < 1 {
		bottleneck = 1 // keep a clamped contract constructible
	}
	return bottleneck, true
}

// costPerGB returns the egress $/GB of a service under the deployment's
// coding overhead — the single basis every cost-ceiling check shares
// (registration validation and the adaptation loop must not diverge).
func (d *Deployment) costPerGB(svc core.Service) float64 {
	return overlay.DefaultCostModel.EgressPerAppGB(svc, d.cfg.Encoder.Alpha(), 0)
}

// internetViable reports whether plain best-effort Internet can reach
// every destination — without the cloud copy, one lacking a direct route
// receives nothing. Registration and the downgrade loop share this
// eligibility rule.
func (d *Deployment) internetViable(src core.NodeID, dsts []core.NodeID) bool {
	for _, dst := range dsts {
		if !d.net.HasRoute(src, dst) {
			return false
		}
	}
	return true
}

// choosePolicyPath returns the path a Cheapest/Pinned policy picks
// between two DCs against the controller's current alternates (nil when
// none exist or the policy is the default). Registration pricing and
// resolvePath share this choice.
func (d *Deployment) choosePolicyPath(p PathPolicy, dcA, dcB core.NodeID) *routing.Path {
	if p.Kind == PathFastest || dcA == dcB {
		return nil
	}
	alts := d.ctrl.Paths(dcA, dcB, 0)
	if len(alts) == 0 {
		return nil
	}
	if p.Kind == PathCheapest {
		return cheapestPath(alts)
	}
	i := p.Alternate
	if i < 0 {
		i = 0
	}
	if i >= len(alts) {
		i = len(alts) - 1
	}
	return &alts[i]
}

// flowPathPolicy folds a flow's declared PathPolicy into the opaque
// discriminator the encoder batches by: 0 for the default fastest-path
// (and for unknown flows — a DC1 may see data before registration state,
// and default-policy batching is always safe), else kind and alternate
// packed so distinct policies never share a cross-stream batch.
func (d *Deployment) flowPathPolicy(flow core.FlowID) uint32 {
	f, ok := d.flows[flow]
	if !ok || f.spec.Path.Kind == PathFastest {
		return 0
	}
	return uint32(f.spec.Path.Kind)<<16 | uint32(uint16(f.spec.Path.Alternate))
}

// receiverRTT seeds a receiver's loss-detection timer: twice the direct
// estimate when one exists (measured reality is trusted as-is); else
// twice the routed overlay latency — the old 2×Direct seed degenerated
// to zero when no direct path was installed — floored at 2× the small
// timeout so the fallback timer is never shorter than in-burst
// detection itself. Zero (nothing known) defers to the receiver's own
// default.
func (d *Deployment) receiverRTT(src, dst core.NodeID) time.Duration {
	if rtt := 2 * d.topo.Direct(src, dst); rtt > 0 {
		return rtt
	}
	var rtt time.Duration
	if ov, ok := d.topo.PredictDelay(core.ServiceForwarding, src, dst); ok {
		rtt = 2 * ov
	}
	if floor := 2 * d.cfg.SmallTimeout; rtt > 0 && rtt < floor {
		rtt = floor
	}
	return rtt
}

// cloudHomeOf resolves the DC a flow's cloud copies egress from: the
// multicast group's home, or the receiver's nearest DC. Registration
// pricing and runtime re-resolution share this rule.
func (d *Deployment) cloudHomeOf(multicast bool, cloud core.NodeID) (core.NodeID, bool) {
	if multicast {
		return d.ctrl.Home(cloud)
	}
	return d.topo.NearestDC(cloud)
}

func (f *Flow) cloudHome() (core.NodeID, bool) {
	return f.d.cloudHomeOf(len(f.spec.Members) > 0, f.cloud)
}

// resolvePath applies the spec's path policy against the controller's
// current alternates: PathFastest records and watches the primary;
// PathCheapest / PathPinned choose an alternate and pin the flow to it.
// Called at registration and whenever the controller reports the pinned
// path dead.
func (f *Flow) resolvePath() { f.resolvePathWith(nil) }

// resolvePathWith is resolvePath with an optional pre-computed policy
// path (registration passes the one it already priced selection on).
func (f *Flow) resolvePathWith(chosen *routing.Path) {
	d := f.d
	dcA, okA := d.topo.NearestDC(f.src)
	dcB, okB := f.cloudHome()
	if !okA || !okB || dcA == dcB {
		return
	}
	switch f.spec.Path.Kind {
	case PathFastest:
		// Watch unconditionally so Path() tracks the live primary even
		// without an observer (onFlowPath only fires the callback when
		// one listens); the watch's own SPF seeds the initial path.
		f.activePath = append([]core.NodeID(nil), d.ctrl.WatchFlow(f.id, dcA, dcB)...)
	case PathCheapest, PathPinned:
		if chosen == nil {
			chosen = d.choosePolicyPath(f.spec.Path, dcA, dcB)
		}
		if chosen == nil {
			// No path at all: unpin, and watch the pair so a future
			// recompute that brings a path back re-applies the policy
			// (onFlowPath re-enters resolvePath for pinned policies).
			d.ctrl.UnpinFlow(f.id)
			d.ctrl.WatchFlow(f.id, dcA, dcB)
			f.activePath = nil
			return
		}
		// An unchanged choice is a no-op: repin retries and routing churn
		// must not unpin/re-push the same entries every recompute.
		if cur, ok := d.ctrl.PinnedPath(f.id); ok && slices.Equal(cur, chosen.Nodes) {
			f.activePath = append(f.activePath[:0], chosen.Nodes...)
			return
		}
		d.ctrl.UnwatchFlow(f.id)
		d.ctrl.PinFlow(f.id, f.cloud, *chosen)
		f.activePath = append([]core.NodeID(nil), chosen.Nodes...)
	}
}

// cheapestPath picks the alternate with the fewest inter-DC hops (each
// hop bills one egress), breaking ties on latency then original order.
func cheapestPath(alts []routing.Path) *routing.Path {
	best := 0
	for i := 1; i < len(alts); i++ {
		switch {
		case len(alts[i].Nodes) < len(alts[best].Nodes):
			best = i
		case len(alts[i].Nodes) == len(alts[best].Nodes) && alts[i].Cost < alts[best].Cost:
			best = i
		}
	}
	return &alts[best]
}

// onFlowPath is the routing controller's notification hook: pinned paths
// that died re-resolve against the surviving alternates; watched flows
// record their new primary — except pinned-policy flows parked on a
// fallback watch (no path existed), which re-apply their policy now that
// one might. Observers hear all of it as OnReroute.
func (d *Deployment) onFlowPath(flow core.FlowID, old, next []core.NodeID, broken bool) {
	f, ok := d.flows[flow]
	if !ok {
		return
	}
	switch {
	case broken, f.spec.Path.Kind != PathFastest:
		f.resolvePath()
	default:
		f.activePath = append([]core.NodeID(nil), next...)
	}
	// The feedback registry keys on the links the flow traverses —
	// repair the subscription with the path, re-size the admission
	// contract against the new bottleneck, and note whether a
	// RepinOnHeal flow is now parked off its preferred route.
	f.updateFeedbackSub()
	f.resizeContract()
	f.noteRepinState()
	f.traceReroute(old)
	if f.spec.Observer != nil {
		// Copies: observers must not be able to mutate the flow's live
		// path state through the callback arguments.
		f.spec.Observer.OnReroute(f, append([]NodeID(nil), old...), f.Path())
	}
}

// traceReroute records one path change in the control-loop trace:
// the new path's endpoint DCs (zero when no path remains) and the
// old/new path lengths.
func (f *Flow) traceReroute(old []core.NodeID) {
	e := telemetry.Event{
		Kind: telemetry.KindReroute, Flow: f.id,
		V1: int64(len(old)), V2: int64(len(f.activePath)),
	}
	if len(f.activePath) >= 2 {
		e.LinkA = f.activePath[0]
		e.LinkB = f.activePath[len(f.activePath)-1]
	}
	f.d.trace(e)
}

// noteRepinState keeps the deployment's repin watch honest after any
// path (re)resolution: a RepinOnHeal flow parked off its preferred path
// is watched until it returns there.
func (f *Flow) noteRepinState() {
	if !f.spec.RepinOnHeal || len(f.preferredPath) == 0 || f.closed {
		return
	}
	if slices.Equal(f.activePath, f.preferredPath) {
		delete(f.d.repinWatch, f.id)
	} else {
		f.d.repinWatch[f.id] = f
	}
}

// onRecompute is the routing controller's post-recompute hook: every
// RepinOnHeal flow parked off its preferred path checks whether that
// path's links all came back, and if so re-applies its policy against
// the fresh alternates — returning to the cheaper route it registered
// on instead of riding the survivor forever. Deterministic order, and
// safe to pin from here (pinning pushes entries without recomputing).
func (d *Deployment) onRecompute() {
	if len(d.repinWatch) == 0 {
		return
	}
	ids := make([]core.FlowID, 0, len(d.repinWatch))
	for id := range d.repinWatch {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		f := d.repinWatch[id]
		// An OnReroute callback fired earlier in this loop may have
		// closed another watched flow (Close deletes its entry) — the
		// snapshot of ids can outlive the map's contents.
		if f == nil || f.closed {
			delete(d.repinWatch, id)
			continue
		}
		if _, ok := d.ctrl.PathCost(f.preferredPath); !ok {
			continue // a preferred link is still missing or down
		}
		old := f.Path()
		f.resolvePath()
		f.updateFeedbackSub()
		f.resizeContract()
		f.noteRepinState()
		if !slices.Equal(old, f.activePath) {
			f.traceReroute(old)
			if f.spec.Observer != nil {
				f.spec.Observer.OnReroute(f, old, f.Path())
			}
		}
	}
}
