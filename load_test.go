package jqos_test

import (
	"testing"
	"time"

	"jqos"
	"jqos/internal/core"
	"jqos/internal/dataset"
	"jqos/internal/netem"
)

// buildSquare wires the 4-DC square used by the congestion tests: two
// equal-latency two-hop paths between dc1 and dc4 (via dc2 and via dc3,
// 20 ms per link), with utilization accounting capacity on every link.
//
//	     dc2
//	 20ms/  \20ms
//	dc1      dc4     both dc1→dc4 paths cost 40 ms;
//	 20ms\  /20ms    deterministic tie-break picks via dc2
//	     dc3
func buildSquare(t *testing.T, seed int64, capacity int64) (*jqos.Deployment, [4]jqos.NodeID) {
	t.Helper()
	cfg := jqos.DefaultConfig()
	cfg.UpgradeInterval = 0
	cfg.Monitor.ProbeInterval = 0 // isolate the load feed from probing
	cfg.LinkCapacity = capacity
	d := jqos.NewDeploymentWithConfig(seed, cfg)
	dc1 := d.AddDC("dc1", dataset.RegionUSEast)
	dc2 := d.AddDC("dc2", dataset.RegionUSWest)
	dc3 := d.AddDC("dc3", dataset.RegionEU)
	dc4 := d.AddDC("dc4", dataset.RegionAsia)
	d.ConnectDCs(dc1, dc2, 20*time.Millisecond)
	d.ConnectDCs(dc2, dc4, 20*time.Millisecond)
	d.ConnectDCs(dc1, dc3, 20*time.Millisecond)
	d.ConnectDCs(dc3, dc4, 20*time.Millisecond)
	return d, [4]jqos.NodeID{dc1, dc2, dc3, dc4}
}

// TestCongestionShiftsNewPaths is the acceptance scenario: two overlay
// paths of equal latency; a pinned bulk flow saturates one; the load
// telemetry inflates its weight, the controller recomputes, and a newly
// registered flow rides the idle branch within budget — observable via
// Snapshot link rows and the congestion-reroute counter.
func TestCongestionShiftsNewPaths(t *testing.T) {
	d, dcs := buildSquare(t, 70, 1_000_000) // 1 MB/s accounting capacity
	bs := d.AddHost(dcs[0], 5*time.Millisecond)
	bd := d.AddHost(dcs[3], 8*time.Millisecond)

	// The bulk flow pins itself to the primary (via dc2) so it keeps
	// hammering that branch even after the shared tables move away.
	bulk, err := d.RegisterFlow(jqos.FlowSpec{
		Src: bs, Dst: bd, Budget: 500 * time.Millisecond,
		Service: jqos.ServiceForwarding, ServiceFixed: true,
		Path: jqos.PathPolicy{Kind: jqos.PathPinned, Alternate: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := bulk.Path(); len(got) != 3 || got[1] != dcs[1] {
		t.Fatalf("bulk pinned path = %v, want via dc2", got)
	}
	// ~1.04 MB/s of bulk: 1040-byte messages at 1 ms spacing for 4 s.
	for i := 0; i < 4000; i++ {
		at := time.Duration(i) * time.Millisecond
		d.Sim().At(at, func() { bulk.Send(make([]byte, 1000)) })
	}
	d.Run(2500 * time.Millisecond)

	snap := d.Snapshot()
	ll, ok := snap.Link(dcs[0], dcs[1])
	if !ok || ll.Utilization < 0.9 {
		t.Fatalf("hot link load = %+v %v, want utilization ≥ 0.9", ll, ok)
	}
	if ll.AB.ClassRate[jqos.ServiceForwarding] == 0 {
		t.Fatalf("per-class breakdown empty: %+v", ll.AB)
	}
	if cool, ok := snap.Link(dcs[0], dcs[2]); !ok || cool.Utilization > 0.1 {
		t.Fatalf("idle link reads hot: %+v", cool)
	}
	st := snap.Routing
	if st.UtilizationUpdates == 0 || st.CongestionReroutes == 0 {
		t.Fatalf("load feed never moved routes: %+v", st)
	}
	// The utilization-inflated weight is visible on the graph, and newly
	// computed paths avoid the hot branch.
	if l := d.Routing().Graph().Link(dcs[0], dcs[1]); l.Util < 0.9 || l.Congest <= 1 {
		t.Fatalf("link weight not inflated: util=%v congest=%v", l.Util, l.Congest)
	}
	if via, ok := d.Routing().NextHop(dcs[0], dcs[3]); !ok || via != dcs[2] {
		t.Fatalf("dc1→dc4 via %v, want dc3 (idle branch)", via)
	}
	// The path oracle prices dc1→dc4 at the idle branch's honest 40 ms,
	// so service selection for new flows is not poisoned by the hot link.
	if x, ok := d.Topology().InterDC(dcs[0], dcs[3]); !ok || x != 40*time.Millisecond {
		t.Fatalf("routed latency = %v %v, want 40ms", x, ok)
	}

	// A new interactive flow lands on the idle branch and meets a budget
	// the hot branch (160 ms inflated, and actually saturated) could not
	// be trusted with.
	is := d.AddHost(dcs[0], 5*time.Millisecond)
	id := d.AddHost(dcs[3], 8*time.Millisecond)
	inter, err := d.RegisterFlow(jqos.FlowSpec{
		Src: is, Dst: id, Budget: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := inter.Path(); len(got) != 3 || got[1] != dcs[2] {
		t.Fatalf("interactive path = %v, want via dc3", got)
	}
	var worst time.Duration
	d.Host(id).SetDeliveryHandler(func(del core.Delivery) {
		if lat := del.At - del.Packet.Sent; lat > worst {
			worst = lat
		}
	})
	const n = 200
	for i := 0; i < n; i++ {
		at := 2500*time.Millisecond + time.Duration(i)*5*time.Millisecond
		d.Sim().At(at, func() { inter.Send([]byte("interactive")) })
	}
	d.Run(5 * time.Second)
	m := inter.Metrics()
	if m.Delivered != n || m.OnTime != n {
		t.Fatalf("interactive delivered %d on-time %d of %d", m.Delivered, m.OnTime, n)
	}
	// 5 + 20 + 20 + 8 = 53 ms plus sub-ms jitter: nowhere near the
	// inflated branch's behavior.
	if worst < 50*time.Millisecond || worst > 62*time.Millisecond {
		t.Fatalf("interactive worst latency %v, want ~53ms via the idle branch", worst)
	}
}

// admissionWatcher counts contract drops via the observer surface.
type admissionWatcher struct {
	jqos.FlowEvents
	drops int
	bytes int
}

func (w *admissionWatcher) OnAdmissionDrop(_ *jqos.Flow, _ jqos.Seq, size int) {
	w.drops++
	w.bytes += size
}

func buildTwoDC(t *testing.T, seed int64) (*jqos.Deployment, jqos.NodeID, jqos.NodeID) {
	t.Helper()
	cfg := jqos.DefaultConfig()
	cfg.UpgradeInterval = 0
	d := jqos.NewDeploymentWithConfig(seed, cfg)
	dc1 := d.AddDC("a", dataset.RegionUSEast)
	dc2 := d.AddDC("b", dataset.RegionEU)
	d.ConnectDCs(dc1, dc2, 40*time.Millisecond)
	src := d.AddHost(dc1, 5*time.Millisecond)
	dst := d.AddHost(dc2, 8*time.Millisecond)
	d.SetDirectPath(src, dst, netem.FixedDelay(50*time.Millisecond), nil)
	return d, src, dst
}

// TestAdmissionPolicesCloudCopies: a flow exceeding its Rate contract
// loses the excess cloud copies (observer notified), while the direct
// Internet path still delivers everything — admission is judicious about
// cloud resources, not a packet filter.
func TestAdmissionPolicesCloudCopies(t *testing.T) {
	d, src, dst := buildTwoDC(t, 71)
	w := &admissionWatcher{}
	f, err := d.RegisterFlow(jqos.FlowSpec{
		Src: src, Dst: dst, Budget: 300 * time.Millisecond,
		Rate: 100_000, Burst: 2000, // 100 kB/s, two-packet burst
		Observer: w,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 100 packets of 1000 wire bytes in one burst: 2 conform, 98 drop.
	for i := 0; i < 100; i++ {
		f.Send(make([]byte, 1000-40))
	}
	d.Run(5 * time.Second)
	m := f.Metrics()
	if m.AdmissionDropped != 98 || m.AdmissionShaped != 0 {
		t.Fatalf("dropped %d shaped %d, want 98/0", m.AdmissionDropped, m.AdmissionShaped)
	}
	if w.drops != 98 || w.bytes != 98*1000 {
		t.Fatalf("observer saw %d drops / %d bytes", w.drops, w.bytes)
	}
	if m.Delivered != 100 {
		t.Fatalf("direct path delivered %d of 100", m.Delivered)
	}
}

// TestAdmissionShapesWithinBudget: with AdmissionShape the same burst is
// smoothed into conformance up to the budget horizon; only packets whose
// shaped departure would exceed the budget drop.
func TestAdmissionShapesWithinBudget(t *testing.T) {
	d, src, dst := buildTwoDC(t, 72)
	f, err := d.RegisterFlow(jqos.FlowSpec{
		Src: src, Dst: dst, Budget: 300 * time.Millisecond,
		Rate: 100_000, Burst: 2000, AdmissionShape: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		f.Send(make([]byte, 1000-40))
	}
	d.Run(5 * time.Second)
	m := f.Metrics()
	// 2 conform instantly; each further 1000-byte copy conforms 10 ms
	// later than the last. The shaping horizon is the 300 ms budget
	// minus the cloud path's predicted delay (~110 ms here) — a copy
	// held past that would arrive over budget and is dropped instead —
	// so roughly twenty fit.
	if m.AdmissionShaped < 15 || m.AdmissionShaped > 25 {
		t.Fatalf("shaped %d, want ~20", m.AdmissionShaped)
	}
	if m.AdmissionDropped != 98-m.AdmissionShaped {
		t.Fatalf("dropped %d with %d shaped", m.AdmissionDropped, m.AdmissionShaped)
	}
	if m.Delivered != 100 {
		t.Fatalf("direct path delivered %d of 100", m.Delivered)
	}
}

func TestAdmissionSpecValidation(t *testing.T) {
	d, src, dst := buildTwoDC(t, 73)
	if _, err := d.RegisterFlow(jqos.FlowSpec{
		Src: src, Dst: dst, Budget: time.Second, Rate: -1,
	}); err == nil {
		t.Fatal("negative Rate accepted")
	}
	if _, err := d.RegisterFlow(jqos.FlowSpec{
		Src: src, Dst: dst, Budget: time.Second, Burst: 1000,
	}); err == nil {
		t.Fatal("Burst without Rate accepted")
	}
	if _, err := d.RegisterFlow(jqos.FlowSpec{
		Src: src, Dst: dst, Budget: time.Second, Rate: 100_000, Burst: -1,
	}); err == nil {
		t.Fatal("negative Burst accepted")
	}
	if _, err := d.RegisterFlow(jqos.FlowSpec{
		Src: src, Dst: dst, Budget: time.Second, AdmissionShape: true,
	}); err == nil {
		t.Fatal("AdmissionShape without Rate accepted")
	}
	// Burst defaults are normalized into the spec.
	f, err := d.RegisterFlow(jqos.FlowSpec{
		Src: src, Dst: dst, Budget: time.Second, Rate: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Spec().Burst; got != 25_000 {
		t.Fatalf("normalized Burst = %d, want rate/4", got)
	}
}

// TestFlowClose: teardown unpins the flow from the controller, clears the
// per-flow forwarder entries, frees receiver recovery state, and turns
// Send into a no-op — and the simulator still drains.
func TestFlowClose(t *testing.T) {
	d, dcs := buildSquare(t, 74, 0)
	src := d.AddHost(dcs[0], 5*time.Millisecond)
	dst := d.AddHost(dcs[3], 8*time.Millisecond)
	f, err := d.RegisterFlow(jqos.FlowSpec{
		Src: src, Dst: dst, Budget: 300 * time.Millisecond,
		Service: jqos.ServiceForwarding, ServiceFixed: true,
		Path: jqos.PathPolicy{Kind: jqos.PathPinned, Alternate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		at := time.Duration(i) * 5 * time.Millisecond
		d.Sim().At(at, func() { f.Send([]byte("short-lived")) })
	}
	d.Run(time.Second)

	if _, ok := d.Routing().PinnedPath(f.ID()); !ok {
		t.Fatal("flow not pinned before close")
	}
	if d.Host(dst).Receiver(f.ID()) == nil {
		t.Fatal("no receiver state before close")
	}
	sentBefore := f.Metrics().Sent

	f.Close()
	if !f.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if _, ok := d.Routing().PinnedPath(f.ID()); ok {
		t.Fatal("pin survived close")
	}
	for _, dc := range dcs {
		if n := d.DC(dc).Forwarder().FlowRouteCount(); n != 0 {
			t.Fatalf("%d pinned forwarder entries survived close at %v", n, dc)
		}
	}
	if d.Host(dst).Receiver(f.ID()) != nil {
		t.Fatal("receiver state survived close")
	}
	for _, fl := range d.Flows() {
		if fl.ID() == f.ID() {
			t.Fatal("closed flow still listed")
		}
	}
	if seq := f.Send([]byte("late")); seq != 0 {
		t.Fatalf("Send on closed flow returned %v", seq)
	}
	if f.Metrics().Sent != sentBefore {
		t.Fatal("Send on closed flow still counted")
	}
	f.Close() // idempotent
	d.RunUntilQuiet()
}

// TestFlowCloseLatePacketsDoNotResurrectReceiver: closing a flow with
// packets still in flight must not let their arrival recreate the
// receiver state Close just freed — the churn path for short-lived
// flows.
func TestFlowCloseLatePacketsDoNotResurrectReceiver(t *testing.T) {
	d, src, dst := buildTwoDC(t, 76)
	f, err := d.RegisterFlow(jqos.FlowSpec{
		Src: src, Dst: dst, Budget: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Send and close before the 50 ms direct path delivers anything.
	f.Send([]byte("in flight"))
	f.Close()
	if d.Host(dst).Receiver(f.ID()) != nil {
		t.Fatal("receiver survived close")
	}
	d.RunUntilQuiet()
	if d.Host(dst).Receiver(f.ID()) != nil {
		t.Fatal("late in-flight packet resurrected the receiver")
	}
	if f.Metrics().Delivered != 0 {
		t.Fatalf("closed flow recorded %d deliveries", f.Metrics().Delivered)
	}
}

// TestObservedLossSeesRawLoss: the settled loss estimate must read the
// direct path's wire loss — what caching bills pull responses for —
// even while recovery repairs every packet (residual LossRate ~0).
func TestObservedLossSeesRawLoss(t *testing.T) {
	cfg := jqos.DefaultConfig()
	cfg.UpgradeInterval = time.Second // settle the estimate often
	d := jqos.NewDeploymentWithConfig(77, cfg)
	dc1 := d.AddDC("a", dataset.RegionUSEast)
	dc2 := d.AddDC("b", dataset.RegionEU)
	d.ConnectDCs(dc1, dc2, 40*time.Millisecond)
	src := d.AddHost(dc1, 5*time.Millisecond)
	dst := d.AddHost(dc2, 8*time.Millisecond)
	d.SetDirectPath(src, dst, netem.FixedDelay(50*time.Millisecond), netem.Bernoulli{P: 0.2})
	f, err := d.RegisterFlow(jqos.FlowSpec{
		Src: src, Dst: dst, Budget: time.Second,
		Service: jqos.ServiceCaching, ServiceFixed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		at := time.Duration(i) * 5 * time.Millisecond
		d.Sim().At(at, func() { f.Send(make([]byte, 200)) })
	}
	d.Run(15 * time.Second)
	m := f.Metrics()
	if m.LossRate() > 0.02 {
		t.Fatalf("recovery left residual loss %.3f — premise broken", m.LossRate())
	}
	if got := f.ObservedLoss(); got < 0.1 || got > 0.3 {
		t.Fatalf("observed loss = %.3f, want ~0.2 (raw wire loss, recovery notwithstanding)", got)
	}
}

// TestObservedLossNotMaskedByForwarding: on the forwarding service every
// packet is also duplicated over the overlay, so deliveries stay at 100%
// even on a lossy direct path — but the loss estimate must still read
// the wire loss (overlay-delivered copies are attributed to
// ServiceForwarding, not the direct path).
func TestObservedLossNotMaskedByForwarding(t *testing.T) {
	cfg := jqos.DefaultConfig()
	cfg.UpgradeInterval = time.Second
	d := jqos.NewDeploymentWithConfig(79, cfg)
	dc1 := d.AddDC("a", dataset.RegionUSEast)
	dc2 := d.AddDC("b", dataset.RegionEU)
	d.ConnectDCs(dc1, dc2, 40*time.Millisecond)
	src := d.AddHost(dc1, 5*time.Millisecond)
	dst := d.AddHost(dc2, 8*time.Millisecond)
	d.SetDirectPath(src, dst, netem.FixedDelay(50*time.Millisecond), netem.Bernoulli{P: 0.3})
	f, err := d.RegisterFlow(jqos.FlowSpec{
		Src: src, Dst: dst, Budget: time.Second,
		Service: jqos.ServiceForwarding, ServiceFixed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		at := time.Duration(i) * 5 * time.Millisecond
		d.Sim().At(at, func() { f.Send(make([]byte, 200)) })
	}
	d.Run(15 * time.Second)
	m := f.Metrics()
	if m.LossRate() > 0.01 {
		t.Fatalf("forwarding left residual loss %.3f — premise broken", m.LossRate())
	}
	if got := f.ObservedLoss(); got < 0.2 || got > 0.4 {
		t.Fatalf("observed loss = %.3f, want ~0.3 (wire loss masked by forwarded copies)", got)
	}
}

// TestLoadReporterDrainsLongWindows: with a meter window far longer than
// the report interval, traffic stopping must still deflate the hot link
// before the reporter parks — and the simulator must still drain.
func TestLoadReporterDrainsLongWindows(t *testing.T) {
	cfg := jqos.DefaultConfig()
	cfg.UpgradeInterval = 0
	cfg.Monitor.ProbeInterval = 0
	cfg.LinkCapacity = 1_000_000
	cfg.LoadWindow = 5 * time.Second // >> 2 × report interval
	d := jqos.NewDeploymentWithConfig(78, cfg)
	dc1 := d.AddDC("dc1", dataset.RegionUSEast)
	dc2 := d.AddDC("dc2", dataset.RegionUSWest)
	dc3 := d.AddDC("dc3", dataset.RegionEU)
	dc4 := d.AddDC("dc4", dataset.RegionAsia)
	d.ConnectDCs(dc1, dc2, 20*time.Millisecond)
	d.ConnectDCs(dc2, dc4, 20*time.Millisecond)
	d.ConnectDCs(dc1, dc3, 20*time.Millisecond)
	d.ConnectDCs(dc3, dc4, 20*time.Millisecond)
	bs := d.AddHost(dc1, 5*time.Millisecond)
	bd := d.AddHost(dc4, 8*time.Millisecond)
	bulk, err := d.RegisterFlow(jqos.FlowSpec{
		Src: bs, Dst: bd, Budget: 500 * time.Millisecond,
		Service: jqos.ServiceForwarding, ServiceFixed: true,
		Path: jqos.PathPolicy{Kind: jqos.PathPinned, Alternate: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate for longer than the window (so utilization actually
	// fills the 5 s meters), then silence.
	for i := 0; i < 6000; i++ {
		at := time.Duration(i) * time.Millisecond
		d.Sim().At(at, func() { bulk.Send(make([]byte, 1000)) })
	}
	d.Run(6 * time.Second)
	if l := d.Routing().Graph().Link(dc1, dc2); l.Congest <= 1 {
		t.Fatalf("hot link never inflated: %+v", l)
	}
	// The reporter must keep running past the idle threshold until the
	// 5 s window drains, deflate the link, and only then park.
	d.RunUntilQuiet()
	l := d.Routing().Graph().Link(dc1, dc2)
	if l.Congest != 1 {
		t.Fatalf("idle link still inflated ×%v after drain (util %v)", l.Congest, l.Util)
	}
}

// TestFlowCloseFreesEncoderState: a coding-service flow leaves per-flow
// queues in the DC1 encoder; Close must release them, or churn through
// short-lived flows grows every encoder without bound.
func TestFlowCloseFreesEncoderState(t *testing.T) {
	d, src, dst := buildTwoDC(t, 75)
	dc1 := d.Host(src).DC()
	f, err := d.RegisterFlow(jqos.FlowSpec{
		Src: src, Dst: dst, Budget: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Service() != jqos.ServiceCoding {
		t.Fatalf("selected %v, want coding", f.Service())
	}
	for i := 0; i < 20; i++ {
		at := time.Duration(i) * 5 * time.Millisecond
		d.Sim().At(at, func() { f.Send([]byte("coded")) })
	}
	d.Run(time.Second)
	if n := d.DC(dc1).Encoder().TrackedFlows(); n == 0 {
		t.Fatal("coding flow left no encoder state — test is vacuous")
	}
	f.Close()
	if n := d.DC(dc1).Encoder().TrackedFlows(); n != 0 {
		t.Fatalf("%d per-flow encoder entries survived close", n)
	}
	d.RunUntilQuiet()
}
