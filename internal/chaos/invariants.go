package chaos

import (
	"fmt"

	"jqos"
	"jqos/internal/telemetry"
)

// Violation is one failed invariant: which one, and enough detail to
// debug the failing seed without rerunning it.
type Violation struct {
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

// String implements fmt.Stringer.
func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

func violate(out []Violation, inv, format string, args ...any) []Violation {
	return append(out, Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
}

// CheckConverged asserts the routing plane recovered from the timeline:
// every ordered DC pair has a path again and the controller counts no
// unreachable destinations. Only meaningful after every partition has
// healed and the monitor has had time to re-probe (the runner's quiesce
// phase guarantees both).
func CheckConverged(d *jqos.Deployment) []Violation {
	var out []Violation
	ctrl := d.Routing()
	if n := ctrl.Stats().Unreachable; n != 0 {
		out = violate(out, "routing-converged", "%d (DC, destination) pairs unreachable after heal", n)
	}
	dcs := ctrl.Graph().Nodes()
	for _, a := range dcs {
		for _, b := range dcs {
			if a == b {
				continue
			}
			if _, ok := ctrl.PathLatency(a, b); !ok {
				out = violate(out, "routing-converged", "no path %v→%v after heal", a, b)
			}
		}
	}
	return out
}

// CheckQuiesced asserts the drained deployment carries no residual
// pressure: every egress class queue is empty and Clear, and no flow's
// pacer is still cut (a stranded pacer — one whose queues cooled but
// whose rate never recovered to contract — is exactly the bug the
// level-triggered Hot refresh exists to prevent).
func CheckQuiesced(s *telemetry.Snapshot) []Violation {
	var out []Violation
	for _, q := range s.Queues {
		if q.QueuedBytes != 0 || q.QueuedPackets != 0 {
			out = violate(out, "queues-drained", "queue %v→%v holds %d bytes / %d packets at quiesce",
				q.From, q.To, q.QueuedBytes, q.QueuedPackets)
		}
		for c, cs := range q.PerClass {
			if cs.State != 0 {
				out = violate(out, "queues-drained", "queue %v→%v class %d stuck in state %d at quiesce",
					q.From, q.To, c, cs.State)
			}
		}
	}
	for _, f := range s.Flows {
		if f.Throttled {
			out = violate(out, "no-stranded-pacer", "flow %d still cut below its contract (rate %d) at quiesce",
				f.ID, f.AdmissionRate)
		}
	}
	for _, t := range s.Tenants {
		if t.Throttled {
			out = violate(out, "no-stranded-pacer", "tenant %d (%s) aggregate pacer still cut (rate %d, %d hot links) at quiesce",
				t.ID, t.Name, t.PacerRate, t.HotLinks)
		}
	}
	return out
}

// CheckAccounting asserts the snapshot's cross-surface bookkeeping
// balances: per-class egress bytes sum to direction totals and to the
// deployment rollup, per-flow metric sums match the totals, and the
// trace ring's lifetime per-kind counts agree with the independently
// maintained flow and feedback counters. Valid only while every flow
// that ever ran is still open — closed flows leave the snapshot but not
// the trace — so the runner checks it before teardown.
func CheckAccounting(s *telemetry.Snapshot) []Violation {
	var out []Violation
	var linkBytes, classBytes uint64
	for _, l := range s.Links {
		for _, d := range []struct {
			name string
			dir  telemetry.DirSnapshot
		}{{"ab", l.AB}, {"ba", l.BA}} {
			dirName, dir := d.name, d.dir
			var sum uint64
			for _, n := range dir.ClassBytes {
				sum += n
			}
			if sum != dir.Bytes {
				out = violate(out, "accounting-balance", "link %v↔%v %s: class bytes sum %d != direction bytes %d",
					l.A, l.B, dirName, sum, dir.Bytes)
			}
		}
		linkBytes += l.AB.Bytes + l.BA.Bytes
	}
	for _, n := range s.Totals.ClassBytes {
		classBytes += n
	}
	if linkBytes != s.Totals.LinkBytes || classBytes != s.Totals.LinkBytes {
		out = violate(out, "accounting-balance", "totals: link dirs sum %d, class sum %d, LinkBytes %d",
			linkBytes, classBytes, s.Totals.LinkBytes)
	}

	var sent, delivered, egressDropped, admissionDropped uint64
	var serviceChanges uint64
	for _, f := range s.Flows {
		sent += f.Sent
		delivered += f.Delivered
		egressDropped += f.EgressDropped
		admissionDropped += f.AdmissionDropped
		serviceChanges += uint64(f.ServiceChanges)
	}
	if sent != s.Totals.Sent || delivered != s.Totals.Delivered ||
		egressDropped != s.Totals.EgressDropped || admissionDropped != s.Totals.AdmissionDropped {
		out = violate(out, "accounting-balance", "flow sums (%d/%d/%d/%d) != totals (%d/%d/%d/%d)",
			sent, delivered, egressDropped, admissionDropped,
			s.Totals.Sent, s.Totals.Delivered, s.Totals.EgressDropped, s.Totals.AdmissionDropped)
	}

	// Per-tenant rollups must partition the deployment: every tenant's
	// sums plus the untenanted flows' sums reproduce the flow totals
	// exactly — a flow counted under two tenants (or none) breaks the
	// balance in opposite directions.
	var tSent, tSentBytes, tDelivered, tEgressDropped, tAdmissionDropped uint64
	var quotaDropped, costViolations uint64
	for _, t := range s.Tenants {
		tSent += t.Sent
		tSentBytes += t.SentBytes
		tDelivered += t.Delivered
		tEgressDropped += t.EgressDropped
		tAdmissionDropped += t.AdmissionDropped
		quotaDropped += t.QuotaDropped
		costViolations += t.CostViolations
	}
	var sentBytes uint64
	for _, f := range s.Flows {
		if f.Tenant == 0 {
			tSent += f.Sent
			tSentBytes += f.SentBytes
			tDelivered += f.Delivered
			tEgressDropped += f.EgressDropped
			tAdmissionDropped += f.AdmissionDropped
		}
		sentBytes += f.SentBytes
	}
	if tSent != s.Totals.Sent || tSentBytes != sentBytes || tDelivered != s.Totals.Delivered ||
		tEgressDropped != s.Totals.EgressDropped || tAdmissionDropped != s.Totals.AdmissionDropped {
		out = violate(out, "tenant-rollup-balance",
			"tenant sums + untenanted flows (%d sent/%d bytes/%d delivered/%d egress/%d admission) != totals (%d/%d/%d/%d/%d)",
			tSent, tSentBytes, tDelivered, tEgressDropped, tAdmissionDropped,
			s.Totals.Sent, sentBytes, s.Totals.Delivered, s.Totals.EgressDropped, s.Totals.AdmissionDropped)
	}

	type kindCheck struct {
		kind    telemetry.Kind
		counter uint64
		name    string
	}
	fb := s.Feedback
	for _, kc := range []kindCheck{
		{telemetry.KindEgressDrop, egressDropped, "flow EgressDropped sum"},
		{telemetry.KindAdmissionDrop, admissionDropped, "flow AdmissionDropped sum"},
		{telemetry.KindServiceChange, serviceChanges, "flow ServiceChanges sum"},
		{telemetry.KindCongestionSignal, fb.FlowSignals, "FeedbackStats.FlowSignals"},
		{telemetry.KindPacerCut, fb.RateCuts, "FeedbackStats.RateCuts"},
		{telemetry.KindPacerRecover, fb.RateRecoveries, "FeedbackStats.RateRecoveries"},
		{telemetry.KindTenantQuotaDrop, quotaDropped, "tenant QuotaDropped sum"},
		{telemetry.KindTenantPacerCut, fb.TenantCuts, "FeedbackStats.TenantCuts"},
		{telemetry.KindTenantPacerRecover, fb.TenantRecoveries, "FeedbackStats.TenantRecoveries"},
		{telemetry.KindTenantCostViolation, costViolations, "tenant CostViolations sum"},
		{telemetry.KindSLODegrade, s.SLO.Degrades, "SLOSnapshot.Degrades"},
		{telemetry.KindSLORecover, s.SLO.Recovers, "SLOSnapshot.Recovers"},
	} {
		if got := s.Trace.ByKind[kc.kind]; got != kc.counter {
			out = violate(out, "trace-counters", "trace %v count %d != %s %d", kc.kind, got, kc.name, kc.counter)
		}
	}
	return out
}

// CheckTeardown asserts that closing every flow left nothing behind: no
// open flows, no receiver engines on any host, no feedback
// subscriptions, no routing pins or watches, and no RepinOnHeal parking
// entries. Run it after Flow.Close on every flow plus a final drain (a
// packet still in flight at close time may legitimately touch host
// state).
func CheckTeardown(d *jqos.Deployment) []Violation {
	var out []Violation
	if n := len(d.Flows()); n != 0 {
		out = violate(out, "no-leaked-state", "%d flows still open after teardown", n)
	}
	for _, id := range d.HostIDs() {
		h := d.Host(id)
		if n := h.ReceiverCount(); n != 0 {
			out = violate(out, "no-leaked-state", "host %v holds %d receiver engines (%d unsolicited) after teardown",
				id, n, h.UnsolicitedReceivers())
		}
	}
	if n := d.Snapshot().Feedback.SubscribedFlows; n != 0 {
		out = violate(out, "no-leaked-state", "%d feedback subscriptions after teardown", n)
	}
	if n := d.Routing().PinnedCount(); n != 0 {
		out = violate(out, "no-leaked-state", "%d routing pins after teardown", n)
	}
	if n := d.Routing().WatchedCount(); n != 0 {
		out = violate(out, "no-leaked-state", "%d routing watches after teardown", n)
	}
	if n := d.RepinWatchCount(); n != 0 {
		out = violate(out, "no-leaked-state", "%d repin-on-heal entries after teardown", n)
	}
	for _, id := range d.Tenants() {
		if n := d.TenantFlowCount(id); n != 0 {
			out = violate(out, "no-leaked-state", "tenant %d still counts %d member flows after teardown", id, n)
		}
	}
	return out
}
