package chaos

import (
	"sort"
	"time"

	"jqos/internal/core"
	"jqos/internal/telemetry"
)

// Verdict is one run's outcome: the seed and timeline that reproduce
// it, the violations found (empty = the run held every invariant), and
// headline activity counters so a soak's output shows the runs actually
// exercised the control loops.
type Verdict struct {
	Run        int         `json:"run"`
	Seed       int64       `json:"seed"`
	Steps      int         `json:"steps"`
	Timeline   string      `json:"timeline"`
	Violations []Violation `json:"violations,omitempty"`
	// Activity counters from the final pre-teardown snapshot.
	Delivered   uint64 `json:"delivered"`
	Reroutes    uint64 `json:"reroutes"`
	FlowSignals uint64 `json:"flow_signals"`
	RateCuts    uint64 `json:"rate_cuts"`
	// TenantCuts counts aggregate tenant-pacer cuts (one per delivered
	// signal per tenant); QuotaDrops sums tenant quota refusals.
	TenantCuts uint64 `json:"tenant_cuts"`
	QuotaDrops uint64 `json:"quota_drops"`
	// SLODegrades / SLORecovers count the continuous SLO engine's state
	// transitions across every tracker; SLOChecks counts the during-fault
	// sample points the slo-during-fault invariant actually asserted at.
	SLODegrades uint64 `json:"slo_degrades"`
	SLORecovers uint64 `json:"slo_recovers"`
	SLOChecks   int    `json:"slo_checks"`
	// Snapshot is the final pre-teardown snapshot, kept only for
	// failing runs (it is the debugging artifact the soak uploads).
	Snapshot *telemetry.Snapshot `json:"snapshot,omitempty"`
}

// OK reports whether the run held every invariant.
func (v Verdict) OK() bool { return len(v.Violations) == 0 }

// quiesce drains the event heap in bounded slices: the simulator must
// go quiet within budget virtual time or the run fails the
// event-loop-quiesce invariant (a pacer tick that never stops rearming,
// a prober that never parks — bugs a plain RunUntilQuiet would hang on).
func quiesce(w *World, budget time.Duration) bool {
	const slice = 250 * time.Millisecond
	for elapsed := time.Duration(0); elapsed < budget; elapsed += slice {
		if w.D.Sim().Pending() == 0 {
			return true
		}
		w.D.Run(slice)
	}
	return w.D.Sim().Pending() == 0
}

// RunScenario drives one scenario against a freshly built world:
// schedule the timeline and the traffic, run to the horizon, drain, and
// check every invariant — convergence, queue/pacer quiesce, and
// accounting on the final open-flows snapshot; then close every flow,
// drain again, and check teardown leaks. The world must be fresh
// (traffic not yet scheduled, clock at zero).
func RunScenario(w *World, sc Scenario, horizon time.Duration) (Verdict, error) {
	if h := sc.Horizon() + time.Second; h > horizon {
		horizon = h
	}
	v := Verdict{Seed: sc.Seed, Steps: len(sc.Steps), Timeline: sc.Timeline()}

	eng, err := Bind(w.D, sc)
	if err != nil {
		return v, err
	}
	eng.Schedule()
	w.ScheduleTraffic(horizon)
	scheduleSLOChecks(w, sc, horizon, &v)
	w.D.Run(horizon)

	// 60 s of virtual drain bounds every legitimate tail: probe
	// recovery bursts (~4 s), AIMD additive recovery to contract, NACK
	// retries, adaptation ticks parking.
	if !quiesce(w, 60*time.Second) {
		v.Violations = violate(v.Violations, "event-loop-quiesce",
			"%d events still pending 60s after traffic ended", w.D.Sim().Pending())
	}

	s := w.D.Snapshot()
	v.Delivered = s.Totals.Delivered
	v.Reroutes = s.Routing.Reroutes
	v.FlowSignals = s.Feedback.FlowSignals
	v.RateCuts = s.Feedback.RateCuts
	v.TenantCuts = s.Feedback.TenantCuts
	v.SLODegrades = s.SLO.Degrades
	v.SLORecovers = s.SLO.Recovers
	for _, t := range s.Tenants {
		v.QuotaDrops += t.QuotaDropped
	}
	v.Violations = append(v.Violations, CheckConverged(w.D)...)
	v.Violations = append(v.Violations, CheckQuiesced(s)...)
	v.Violations = append(v.Violations, CheckAccounting(s)...)

	for _, f := range w.Flows {
		f.Close()
	}
	if !quiesce(w, 10*time.Second) {
		v.Violations = violate(v.Violations, "event-loop-quiesce",
			"%d events still pending 10s after teardown", w.D.Sim().Pending())
	}
	v.Violations = append(v.Violations, CheckTeardown(w.D)...)

	if !v.OK() {
		v.Snapshot = s
	}
	return v, nil
}

// scheduleSLOChecks installs the slo-during-fault invariant: at sample
// points DURING the timeline where only degrade/bursty-loss faults are
// live — never mid-partition or mid-crash, and only once a settle period
// (slow window + clear hold + margin) has passed since a partition or
// crash was last active — the interactive flow's SLO state must not read
// Violated. Its direct host path is untouched by DC-link faults, so
// deliveries keep landing on time and a Violated reading there would
// mean the engine latched or leaked state. Partition windows are
// excluded because blackholing the overlay legitimately burns budget;
// degrade-only windows are exactly where a false alarm would page.
func scheduleSLOChecks(w *World, sc Scenario, horizon time.Duration, v *Verdict) {
	settle := worldSLO.SlowWindow + worldSLO.ClearHold + 500*time.Millisecond
	const step = 250 * time.Millisecond
	flow := w.Flows[0].ID()
	for _, at := range sloSamplePoints(sc, horizon, settle, step) {
		at := at
		w.D.Sim().At(at, func() {
			s := w.D.Snapshot()
			v.SLOChecks++
			if e, ok := s.SLO.Flow(flow); ok && e.State == telemetry.SLOViolated {
				v.Violations = violate(v.Violations, "slo-during-fault",
					"interactive flow SLO violated at %v in a degrade-only window (burn fast %.2f slow %.2f)",
					at, e.BurnFast, e.BurnSlow)
			}
		})
	}
}

// sloSamplePoints replays the timeline's fault intervals and returns the
// multiples of step in (0, horizon) that fall inside degrade-only
// windows: at least one degrade/bursty-loss live, no partition or DC
// crash live, and none was live within the trailing settle period.
// StepHeal clears both fault classes on its pair (it restores the base
// link shape); asymmetric heals are treated as full clears — that only
// shrinks the sampled set, never asserts inside an unhealed window.
func sloSamplePoints(sc Scenario, horizon, settle, step time.Duration) []time.Duration {
	type pair [2]core.NodeID
	norm := func(a, b core.NodeID) pair {
		if a > b {
			a, b = b, a
		}
		return pair{a, b}
	}
	steps := append([]Step(nil), sc.Steps...)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })

	degraded := map[pair]bool{}
	partitioned := map[pair]bool{}
	crashed := map[core.NodeID]bool{}
	lastBadEnd := time.Duration(-1) << 40 // "long before the run"
	anyLive := func(m map[pair]bool) bool {
		for _, on := range m {
			if on {
				return true
			}
		}
		return false
	}

	var pts []time.Duration
	i := 0
	for at := step; at < horizon; at += step {
		for i < len(steps) && steps[i].At <= at {
			st := steps[i]
			i++
			switch st.Kind {
			case StepDegrade, StepDegradeAsym, StepBurstyLoss:
				degraded[norm(st.A, st.B)] = true
			case StepPartition, StepPartitionAsym:
				partitioned[norm(st.A, st.B)] = true
			case StepHeal, StepHealAsym:
				k := norm(st.A, st.B)
				if partitioned[k] {
					partitioned[k] = false
					if st.At > lastBadEnd {
						lastBadEnd = st.At
					}
				}
				degraded[k] = false
			case StepCrashDC:
				crashed[st.A] = true
			case StepHealDC:
				if crashed[st.A] {
					delete(crashed, st.A)
					if st.At > lastBadEnd {
						lastBadEnd = st.At
					}
				}
			}
		}
		if len(crashed) > 0 || anyLive(partitioned) {
			continue
		}
		if !anyLive(degraded) {
			continue
		}
		if at-lastBadEnd < settle {
			continue
		}
		pts = append(pts, at)
	}
	return pts
}

// RunOne builds the canonical world for seed, fuzzes a timeline from
// the same seed, and runs it.
func RunOne(seed int64, p Profile) (Verdict, error) {
	w, err := BuildWorld(seed)
	if err != nil {
		return Verdict{Seed: seed}, err
	}
	if p.FullRecompute {
		w.D.Routing().SetIncrementalRecompute(false)
	}
	sc := Fuzz(seed, p, w.DCs, w.Links)
	return RunScenario(w, sc, p.withDefaults().Horizon)
}

// SoakOptions configures a multi-run soak.
type SoakOptions struct {
	// Runs is the number of seeded runs; run i uses seed Seed+i.
	Runs int
	Seed int64
	// Profile bounds each run's fuzzed timeline.
	Profile Profile
	// Log, when set, receives one line per run (the CLI's -v sink).
	Log func(format string, args ...any)
}

// Report aggregates a soak.
type Report struct {
	Runs int
	// Failures holds the failing verdicts (snapshot attached).
	Failures []Verdict
	// Err is the first world/bind error, if any (a harness bug, not an
	// invariant violation).
	Err error
	// Aggregate activity — a soak whose runs never rerouted or paced
	// anything is not testing what it claims to.
	Delivered   uint64
	Reroutes    uint64
	FlowSignals uint64
	RateCuts    uint64
	TenantCuts  uint64
	QuotaDrops  uint64
	// SLO engine aggregates: state transitions observed across runs and
	// the number of during-fault sample points asserted.
	SLODegrades uint64
	SLORecovers uint64
	SLOChecks   int
}

// OK reports whether every run completed and held every invariant.
func (r Report) OK() bool { return r.Err == nil && len(r.Failures) == 0 }

// Soak executes o.Runs seeded chaos runs and aggregates the verdicts.
func Soak(o SoakOptions) Report {
	rep := Report{Runs: o.Runs}
	for i := 0; i < o.Runs; i++ {
		seed := o.Seed + int64(i)
		v, err := RunOne(seed, o.Profile)
		v.Run = i
		if err != nil {
			rep.Err = err
			return rep
		}
		rep.Delivered += v.Delivered
		rep.Reroutes += v.Reroutes
		rep.FlowSignals += v.FlowSignals
		rep.RateCuts += v.RateCuts
		rep.TenantCuts += v.TenantCuts
		rep.QuotaDrops += v.QuotaDrops
		rep.SLODegrades += v.SLODegrades
		rep.SLORecovers += v.SLORecovers
		rep.SLOChecks += v.SLOChecks
		if !v.OK() {
			rep.Failures = append(rep.Failures, v)
		}
		if o.Log != nil {
			status := "ok"
			if !v.OK() {
				status = "FAIL"
			}
			o.Log("run %3d seed %-6d %s: %d steps, %d delivered, %d reroutes, %d signals, %d cuts, %d tenant cuts, %d quota drops, %d/%d slo transitions (%d checks)",
				i, seed, status, v.Steps, v.Delivered, v.Reroutes, v.FlowSignals, v.RateCuts, v.TenantCuts, v.QuotaDrops, v.SLODegrades, v.SLORecovers, v.SLOChecks)
			for _, viol := range v.Violations {
				o.Log("  violation: %v", viol)
			}
		}
	}
	return rep
}
