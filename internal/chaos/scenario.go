// Package chaos is the adversarial-network harness: it compiles
// declarative fault timelines (Scenario) into zero-allocation link-model
// swaps against a live jqos.Deployment (Engine), derives randomized but
// fully seeded timelines (Fuzz — same seed, byte-identical Timeline),
// and checks the system invariants that make five interlocking control
// loops trustworthy (invariants.go): routing reconverges after every
// heal, no pacer stays cut once its queues cool, the accounting
// balances, and Flow.Close leaves no receiver/registry/pin/watch state
// behind. cmd/jqos-chaos soaks N seeded runs and reports per-run
// verdicts; the experiments registry exposes the same soak as "chaos".
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"jqos/internal/core"
)

// StepKind enumerates the fault injections a Scenario can script.
type StepKind uint8

const (
	// StepDegrade reshapes the link A↔B in both directions to Latency
	// one-way delay and Loss random loss (Link.Set semantics).
	StepDegrade StepKind = iota
	// StepDegradeAsym reshapes only the A→B direction.
	StepDegradeAsym
	// StepPartition blackholes A↔B in both directions, keeping each
	// direction's current delay process (Link.Disconnect semantics).
	StepPartition
	// StepPartitionAsym blackholes only the A→B direction.
	StepPartitionAsym
	// StepHeal restores A↔B in both directions to the shape ConnectDCs
	// recorded (Link.Reconnect semantics).
	StepHeal
	// StepHealAsym restores only the A→B direction.
	StepHealAsym
	// StepBurstyLoss switches A↔B (both directions, independent chain
	// state) to Gilbert-Elliott loss targeting stationary rate Loss and
	// mean burst length MeanBurst packets; delay is left alone.
	StepBurstyLoss
	// StepCrashDC blackholes every inter-DC link of DC A in both
	// directions — the DC drops off the overlay.
	StepCrashDC
	// StepHealDC restores every inter-DC link of DC A.
	StepHealDC
)

// String implements fmt.Stringer (the Timeline vocabulary).
func (k StepKind) String() string {
	switch k {
	case StepDegrade:
		return "degrade"
	case StepDegradeAsym:
		return "degrade-asym"
	case StepPartition:
		return "partition"
	case StepPartitionAsym:
		return "partition-asym"
	case StepHeal:
		return "heal"
	case StepHealAsym:
		return "heal-asym"
	case StepBurstyLoss:
		return "bursty-loss"
	case StepCrashDC:
		return "crash-dc"
	case StepHealDC:
		return "heal-dc"
	default:
		return fmt.Sprintf("step(%d)", uint8(k))
	}
}

// Step is one timed fault injection. Which fields matter depends on
// Kind; unused fields must be zero (Timeline prints only the meaningful
// ones, so stray values would silently vanish from the reproduction
// record).
type Step struct {
	// At is the simulated time the step applies (relative to the run
	// start; must be ≥ the simulator's clock when the engine schedules).
	At time.Duration
	// A, B name the inter-DC link (B is ignored by StepCrashDC /
	// StepHealDC, which act on every link of A).
	A, B core.NodeID
	Kind StepKind
	// Latency is the one-way delay for the degrade kinds.
	Latency time.Duration
	// Loss is the random loss rate for the degrade kinds, and the
	// target stationary loss rate for StepBurstyLoss.
	Loss float64
	// MeanBurst is StepBurstyLoss's mean loss-burst length in packets.
	MeanBurst float64
}

// describe renders one timeline line. The format is part of the
// reproduction contract: Fuzz determinism is asserted byte-for-byte
// over these lines.
func (s Step) describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12v %v", s.At, s.Kind)
	switch s.Kind {
	case StepCrashDC, StepHealDC:
		fmt.Fprintf(&b, " dc%v", s.A)
	default:
		fmt.Fprintf(&b, " %v-%v", s.A, s.B)
	}
	switch s.Kind {
	case StepDegrade, StepDegradeAsym:
		fmt.Fprintf(&b, " lat=%v loss=%.4f", s.Latency, s.Loss)
	case StepBurstyLoss:
		fmt.Fprintf(&b, " rate=%.4f burst=%.1f", s.Loss, s.MeanBurst)
	}
	return b.String()
}

// Scenario is a named, ordered fault timeline.
type Scenario struct {
	Name  string
	Seed  int64 // the seed that derived it (0 for hand-written ones)
	Steps []Step
}

// Sort orders steps by time, stably (authoring order breaks ties — the
// engine applies same-timestamp steps in that order too).
func (sc *Scenario) Sort() {
	sort.SliceStable(sc.Steps, func(i, j int) bool { return sc.Steps[i].At < sc.Steps[j].At })
}

// Horizon returns the time of the last step (0 for an empty scenario).
func (sc Scenario) Horizon() time.Duration {
	var h time.Duration
	for _, s := range sc.Steps {
		if s.At > h {
			h = s.At
		}
	}
	return h
}

// Timeline renders the scenario as deterministic text — one header line
// plus one line per step. Two scenarios derived from the same seed must
// produce byte-identical timelines; a failing run's timeline is the
// whole reproduction recipe.
func (sc Scenario) Timeline() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %q seed=%d steps=%d\n", sc.Name, sc.Seed, len(sc.Steps))
	for _, s := range sc.Steps {
		b.WriteString(s.describe())
		b.WriteByte('\n')
	}
	return b.String()
}

// Flap expands into an explicit partition/heal square wave on the link
// a↔b: cycles repetitions of (partition at start+k·period, heal half a
// period later). Keeping the expansion explicit — rather than a
// stateful "flap" step — means the Timeline alone reproduces the run.
// Periods shorter than the probe fail/recover hysteresis are the
// interesting regime: the monitor sees the link half-detected in both
// directions at once.
func Flap(start time.Duration, a, b core.NodeID, period time.Duration, cycles int) []Step {
	steps := make([]Step, 0, 2*cycles)
	for k := 0; k < cycles; k++ {
		at := start + time.Duration(k)*period
		steps = append(steps,
			Step{At: at, Kind: StepPartition, A: a, B: b},
			Step{At: at + period/2, Kind: StepHeal, A: a, B: b},
		)
	}
	return steps
}
