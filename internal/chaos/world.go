package chaos

import (
	"fmt"
	"time"

	"jqos"
	"jqos/internal/core"
	"jqos/internal/dataset"
	"jqos/internal/netem"
)

// World is the canonical chaos deployment: a 4-DC overlay with alternate
// paths, a saturable scheduler+feedback data plane, and a flow mix that
// exercises every control loop — two contracted forwarding flows that
// together oversubscribe their class share (AIMD pacing), an adaptive
// flow (service moves), an interactive contracted flow (budget
// pressure), and a cheapest-pinned RepinOnHeal flow (pin failover and
// heal-repin). Fuzz scripts faults against its links; the invariants
// are checked after the timeline heals.
type World struct {
	D *jqos.Deployment
	// DCs are the four DC node IDs in creation order:
	// [0]=ingress, [1]=relay, [2]=egress, [3]=spur.
	DCs []core.NodeID
	// Links are the five inter-DC pairs in connection order.
	Links [][2]core.NodeID
	// Flows in registration order (interactive, greedy ×2, adaptive,
	// pinned).
	Flows []*jqos.Flow
	// Tenants are the two registered contracts: [0] owns the greedy
	// pair under a shared quota that binds (their combined contracts
	// oversubscribe it), [1] owns the interactive flow under an ample
	// quota and a generous cost ceiling (the budget loop runs without
	// firing).
	Tenants []core.TenantID

	horizonScheduled time.Duration
}

const (
	worldCapacity = 1_000_000 // 1 MB/s accounting + serialization per link
)

// worldSLO is the canonical world's SLO configuration. The runner's
// during-fault invariant derives its settle time from these windows, so
// they live here, next to the deployment they configure.
var worldSLO = jqos.SLOConfig{
	Objective:    0.9,
	FastWindow:   500 * time.Millisecond,
	SlowWindow:   2 * time.Second,
	AtRiskBurn:   2,
	ViolatedBurn: 4,
	MinSamples:   20,
	ClearHold:    500 * time.Millisecond,
}

// BuildWorld constructs the canonical world from one seed. Same seed →
// identical deployment (the simulator drives every random process).
func BuildWorld(seed int64) (*World, error) {
	cfg := jqos.DefaultConfig()
	cfg.LinkCapacity = worldCapacity
	cfg.Scheduler = jqos.SchedulerConfig{
		Weights: map[jqos.Service]int{
			jqos.ServiceForwarding: 8,
			jqos.ServiceCaching:    1,
		},
		QueueBytes: 32 << 10,
		// A shallow watermark band keeps Hot/cool transitions frequent —
		// more pacer cuts and recoveries per run for the invariants to
		// bite on.
		LowWatermark:  0.125,
		HighWatermark: 0.5,
	}
	cfg.Feedback.Enabled = true
	// Faster adaptation than the production default so an 8-second
	// fault window sees service moves, not just their absence.
	cfg.UpgradeInterval = time.Second
	// Continuous SLO engine, scaled to chaos horizons: windows short
	// enough that an 8-second timeline sees transitions, thresholds
	// standard SRE multi-window burn rates. Degrade/recover totals must
	// reconcile with the trace ring (CheckAccounting) and the
	// interactive flow's state feeds the during-fault invariant.
	cfg.Telemetry.SLO = worldSLO
	d := jqos.NewDeploymentWithConfig(seed, cfg)

	w := &World{D: d}
	a := d.AddDC("dc-a", dataset.RegionUSEast)
	b := d.AddDC("dc-b", dataset.RegionUSWest)
	c := d.AddDC("dc-c", dataset.RegionEU)
	e := d.AddDC("dc-d", dataset.RegionAsia)
	w.DCs = []core.NodeID{a, b, c, e}

	connect := func(x, y core.NodeID, lat time.Duration) {
		d.ConnectDCs(x, y, lat)
		d.Network().LinkBetween(x, y).Rate = worldCapacity
		d.Network().LinkBetween(y, x).Rate = worldCapacity
		w.Links = append(w.Links, [2]core.NodeID{x, y})
	}
	// a→c has a fast 2-hop route (a-b-c, 60 ms) and a slow direct
	// 1-hop alternate (70 ms): failures on either leg reroute. The spur
	// DC d hangs off two paths as well (c-d and the long a-d).
	connect(a, b, 30*time.Millisecond)
	connect(b, c, 30*time.Millisecond)
	connect(a, c, 70*time.Millisecond)
	connect(c, e, 20*time.Millisecond)
	connect(a, e, 90*time.Millisecond)

	addPair := func(atSrc, atDst core.NodeID, direct time.Duration) (core.NodeID, core.NodeID) {
		src := d.AddHost(atSrc, 5*time.Millisecond)
		dst := d.AddHost(atDst, 8*time.Millisecond)
		d.SetDirectPath(src, dst,
			netem.UniformJitter{Base: direct, Jitter: 2 * time.Millisecond},
			netem.NewGilbertElliott(0.01, 3))
		return src, dst
	}

	register := func(spec jqos.FlowSpec) error {
		f, err := d.RegisterFlow(spec)
		if err != nil {
			return err
		}
		w.Flows = append(w.Flows, f)
		return nil
	}

	// Two tenants so the per-tenant accounting rollups have something to
	// balance: the greedy pair shares one binding quota (800 kB/s under
	// their 1 MB/s combined contracts — standing tenant quota drops, and
	// Hot signals cut their aggregate pacer once per signal), while the
	// interactive flow's tenant never binds (ample quota, generous cost
	// ceiling — the budget loop runs every UpgradeInterval but never
	// fires). The adaptive and pinned flows stay untenanted, so the
	// rollup-balance invariant covers the mixed case.
	const tenantPair, tenantSolo = core.TenantID(1), core.TenantID(2)
	if err := d.RegisterTenant(jqos.TenantContract{
		ID: tenantPair, Name: "greedy-pair", Rate: 800_000, Burst: 32 << 10,
	}); err != nil {
		return nil, err
	}
	if err := d.RegisterTenant(jqos.TenantContract{
		ID: tenantSolo, Name: "interactive-solo", Rate: 400_000, Burst: 32 << 10,
		CostCeilingPerGB: 1000,
	}); err != nil {
		return nil, err
	}
	w.Tenants = []core.TenantID{tenantPair, tenantSolo}

	// Interactive contracted flow a→c: tight budget, modest contract.
	// Trace sampling on: chaos soaks double as attribution coverage —
	// the span collector's pending table churns under drops, reroutes,
	// and recovery while the invariants watch the books balance.
	is, id := addPair(a, c, 60*time.Millisecond)
	if err := register(jqos.FlowSpec{
		Src: is, Dst: id, Budget: 150 * time.Millisecond,
		Service: jqos.ServiceForwarding, ServiceFixed: true,
		Rate: 200_000, Burst: 16 << 10,
		Tenant:        tenantSolo,
		TraceSampling: 0.05,
	}); err != nil {
		return nil, err
	}
	// Two greedy contracted flows a→c. Each 500 kB/s contract fits the
	// forwarding class's share (8/9 of 1 MB/s) individually; together
	// with the interactive flow they oversubscribe it, so the shared
	// class queue runs Hot and the AIMD pacers work all run long.
	for i := 0; i < 2; i++ {
		gs, gd := addPair(a, c, 60*time.Millisecond)
		if err := register(jqos.FlowSpec{
			Src: gs, Dst: gd, Budget: 500 * time.Millisecond,
			Service: jqos.ServiceForwarding, ServiceFixed: true,
			Rate: 500_000, Burst: 16 << 10,
			Tenant: tenantPair,
		}); err != nil {
			return nil, err
		}
	}
	// Adaptive flow a→c: no contract, no fixed service — moves tiers on
	// budget violations and preemptively on congestion signals.
	as, ad := addPair(a, c, 60*time.Millisecond)
	if err := register(jqos.FlowSpec{
		Src: as, Dst: ad, Budget: 250 * time.Millisecond,
	}); err != nil {
		return nil, err
	}
	// Cheapest-pinned RepinOnHeal flow a→d: prefers the 1-hop a-d spur
	// (fewest egress events); when chaos cuts it the flow fails over to
	// a-c-d and must return once the spur heals.
	ps, pd := addPair(a, e, 80*time.Millisecond)
	if err := register(jqos.FlowSpec{
		Src: ps, Dst: pd, Budget: 400 * time.Millisecond,
		Service: jqos.ServiceForwarding, ServiceFixed: true,
		Path:        jqos.PathPolicy{Kind: jqos.PathCheapest},
		RepinOnHeal: true,
	}); err != nil {
		return nil, err
	}
	return w, nil
}

// ScheduleTraffic queues every flow's constant-bitrate workload over
// [0, horizon): interactive 100 kB/s, greedy 750 kB/s each (above their
// 500 kB/s contracts — standing admission pressure), adaptive 50 kB/s,
// pinned 100 kB/s. Call once, before running.
func (w *World) ScheduleTraffic(horizon time.Duration) {
	if w.horizonScheduled != 0 {
		panic(fmt.Sprintf("chaos: traffic already scheduled to %v", w.horizonScheduled))
	}
	w.horizonScheduled = horizon
	cbr := func(f *jqos.Flow, size int, every time.Duration) {
		for at := time.Duration(0); at < horizon; at += every {
			w.D.Sim().At(at, func() { f.Send(make([]byte, size)) })
		}
	}
	cbr(w.Flows[0], 400, 4*time.Millisecond)  // interactive
	cbr(w.Flows[1], 1500, 2*time.Millisecond) // greedy #1
	cbr(w.Flows[2], 1500, 2*time.Millisecond) // greedy #2
	cbr(w.Flows[3], 500, 10*time.Millisecond) // adaptive
	cbr(w.Flows[4], 500, 5*time.Millisecond)  // pinned
}
