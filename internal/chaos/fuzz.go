package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"jqos/internal/core"
)

// Profile bounds a fuzzed timeline.
type Profile struct {
	// Horizon is the end of the traffic/fault window. Heal-all lands
	// one second before it; random faults stop two seconds before it.
	// Default (and floor) 8 s.
	Horizon time.Duration
	// Faults is how many random fault events to inject (flaps count as
	// one event but expand to several steps). Default 5.
	Faults int
	// FullRecompute disables the controller's incremental SPF for the
	// run, so every health/utilization change recomputes all sources —
	// the A/B knob CI uses to hold both recompute paths to the same
	// invariants.
	FullRecompute bool
}

func (p Profile) withDefaults() Profile {
	if p.Horizon < 8*time.Second {
		p.Horizon = 8 * time.Second
	}
	if p.Faults <= 0 {
		p.Faults = 5
	}
	return p
}

// Fuzz derives a randomized fault timeline from a seed, against the
// given DCs and links (typically World.DCs / World.Links). The same
// (seed, profile, topology) produces a byte-identical Timeline — the
// generator draws from its own rand.Source and never consults the
// clock — so a failing seed is a complete reproduction recipe.
//
// Every generated timeline heals: crashed DCs get a timed heal-dc, and
// a final heal step restores every touched link one second before the
// horizon, so the post-run invariants (convergence, drained queues,
// recovered pacers) are legitimately checkable.
func Fuzz(seed int64, p Profile, dcs []core.NodeID, links [][2]core.NodeID) Scenario {
	p = p.withDefaults()
	r := rand.New(rand.NewSource(seed))
	sc := Scenario{Name: fmt.Sprintf("fuzz-%d", seed), Seed: seed}

	lo := 500 * time.Millisecond
	hi := p.Horizon - 2*time.Second
	healAt := p.Horizon - time.Second

	// touched tracks links needing the final heal, in first-touch order
	// (map iteration would scramble the timeline between runs).
	var touchedOrder [][2]core.NodeID
	touchedSet := make(map[[2]core.NodeID]bool)
	touch := func(l [2]core.NodeID) {
		if !touchedSet[l] {
			touchedSet[l] = true
			touchedOrder = append(touchedOrder, l)
		}
	}
	touchDC := func(dc core.NodeID) {
		for _, l := range links {
			if l[0] == dc || l[1] == dc {
				touch(l)
			}
		}
	}
	randAt := func() time.Duration {
		return (lo + time.Duration(r.Int63n(int64(hi-lo)))).Truncate(time.Millisecond)
	}
	randLink := func() [2]core.NodeID { return links[r.Intn(len(links))] }
	// orient returns the link's endpoints in a random order — the
	// asymmetric kinds degrade a random direction.
	orient := func(l [2]core.NodeID) (core.NodeID, core.NodeID) {
		if r.Intn(2) == 0 {
			return l[0], l[1]
		}
		return l[1], l[0]
	}

	for i := 0; i < p.Faults; i++ {
		at := randAt()
		switch roll := r.Intn(100); {
		case roll < 20: // symmetric degrade: 20–100 ms latency, ≤5% loss
			l := randLink()
			touch(l)
			sc.Steps = append(sc.Steps, Step{
				At: at, Kind: StepDegrade, A: l[0], B: l[1],
				Latency: (20 + time.Duration(r.Int63n(80))) * time.Millisecond,
				Loss:    r.Float64() * 0.05,
			})
		case roll < 32: // asymmetric degrade
			l := randLink()
			touch(l)
			a, b := orient(l)
			sc.Steps = append(sc.Steps, Step{
				At: at, Kind: StepDegradeAsym, A: a, B: b,
				Latency: (20 + time.Duration(r.Int63n(80))) * time.Millisecond,
				Loss:    r.Float64() * 0.05,
			})
		case roll < 47: // symmetric partition
			l := randLink()
			touch(l)
			sc.Steps = append(sc.Steps, Step{At: at, Kind: StepPartition, A: l[0], B: l[1]})
		case roll < 57: // asymmetric partition
			l := randLink()
			touch(l)
			a, b := orient(l)
			sc.Steps = append(sc.Steps, Step{At: at, Kind: StepPartitionAsym, A: a, B: b})
		case roll < 72: // bursty loss: 0.5–5% stationary, bursts of 2–8
			l := randLink()
			touch(l)
			sc.Steps = append(sc.Steps, Step{
				At: at, Kind: StepBurstyLoss, A: l[0], B: l[1],
				Loss:      0.005 + r.Float64()*0.045,
				MeanBurst: 2 + float64(r.Intn(7)),
			})
		case roll < 88: // flap faster than the probe hysteresis
			l := randLink()
			touch(l)
			period := (150 + time.Duration(r.Int63n(450))) * time.Millisecond
			cycles := 2 + r.Intn(3)
			for time.Duration(cycles)*period > hi-at && cycles > 1 {
				cycles--
			}
			sc.Steps = append(sc.Steps, Flap(at, l[0], l[1], period, cycles)...)
		default: // crash a DC, heal it 1–2 s later (bounded outage)
			dc := dcs[r.Intn(len(dcs))]
			touchDC(dc)
			healDC := at + time.Second + time.Duration(r.Int63n(int64(time.Second)))
			if healDC > healAt {
				healDC = healAt
			}
			sc.Steps = append(sc.Steps,
				Step{At: at, Kind: StepCrashDC, A: dc},
				Step{At: healDC, Kind: StepHealDC, A: dc})
		}
	}

	// Final heal-all: idempotent per-link restores in first-touch order.
	for _, l := range touchedOrder {
		sc.Steps = append(sc.Steps, Step{At: healAt, Kind: StepHeal, A: l[0], B: l[1]})
	}
	sc.Sort()
	return sc
}
