package chaos

import (
	"testing"
	"time"

	"jqos"
	"jqos/internal/dataset"
)

// BenchmarkChaosStep measures a compiled fault step being applied to a
// live deployment. Bind pre-resolves every step to direct link-model
// pointer swaps, so Apply must not allocate: a soak run injects
// thousands of steps and the injection path must never perturb the
// system it is measuring. The bench world disables probing and link
// capacities so NudgeFaultDetection has no probers or load reporter to
// wake — isolating the step-apply path itself.
func BenchmarkChaosStep(b *testing.B) {
	cfg := jqos.DefaultConfig()
	cfg.Monitor.ProbeInterval = 0
	d := jqos.NewDeploymentWithConfig(1, cfg)
	x := d.AddDC("dc-x", dataset.RegionUSEast)
	y := d.AddDC("dc-y", dataset.RegionEU)
	d.ConnectDCs(x, y, 30*time.Millisecond)

	eng, err := Bind(d, Scenario{Steps: []Step{
		{Kind: StepDegrade, A: x, B: y, Latency: 60 * time.Millisecond, Loss: 0.02},
		{Kind: StepHeal, A: x, B: y},
	}})
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Apply(i & 1)
	}
}
