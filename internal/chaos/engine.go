package chaos

import (
	"fmt"
	"time"

	"jqos"
	"jqos/internal/core"
	"jqos/internal/netem"
)

// linkOp is one compiled model swap on one directed emulated link. A nil
// delay leaves the current delay process alone; loss is always applied
// (nil means lossless — netem.Link treats it as NoLoss).
type linkOp struct {
	link  *netem.Link
	delay netem.DelayModel
	loss  netem.LossModel
}

// Engine is a Scenario compiled against one Deployment: every directed
// link resolved to its *netem.Link and every delay/loss model built up
// front, so applying a step at fault time is pure pointer swaps —
// 0 allocs/op (BenchmarkChaosStep gates it), which matters because
// injection must not perturb the timing-sensitive run it is measuring.
type Engine struct {
	d   *jqos.Deployment
	sc  Scenario
	ops [][]linkOp
}

// Bind compiles the scenario against the deployment. It validates every
// step eagerly — an unknown link or an unconnected pair in a heal step
// is a scripting bug better caught before the run than silently skipped
// halfway through it. The scenario is sorted by step time as a side
// effect.
func Bind(d *jqos.Deployment, sc Scenario) (*Engine, error) {
	sc.Sort()
	e := &Engine{d: d, sc: sc, ops: make([][]linkOp, len(sc.Steps))}
	for i, s := range sc.Steps {
		ops, err := e.compile(s)
		if err != nil {
			return nil, fmt.Errorf("chaos: step %d (%s): %w", i, s.describe(), err)
		}
		e.ops[i] = ops
	}
	return e, nil
}

// Scenario returns the bound (sorted) scenario.
func (e *Engine) Scenario() Scenario { return e.sc }

// dirLink resolves the directed emulated link a→b.
func (e *Engine) dirLink(a, b core.NodeID) (*netem.Link, error) {
	l := e.d.Network().LinkBetween(a, b)
	if l == nil {
		return nil, fmt.Errorf("no link %v→%v", a, b)
	}
	return l, nil
}

// pairOps builds one op per direction of a↔b with the given model
// builders (called once per direction — stateful loss chains must not
// be shared between links).
func (e *Engine) pairOps(a, b core.NodeID, delay func() netem.DelayModel, loss func() netem.LossModel) ([]linkOp, error) {
	var ops []linkOp
	for _, dir := range [][2]core.NodeID{{a, b}, {b, a}} {
		l, err := e.dirLink(dir[0], dir[1])
		if err != nil {
			return nil, err
		}
		op := linkOp{link: l, loss: loss()}
		if delay != nil {
			op.delay = delay()
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// shapeDelay mirrors ConnectDCs/Link.Set's delay family: base
// latency with 2% uniform jitter.
func shapeDelay(x time.Duration) netem.DelayModel {
	return netem.UniformJitter{Base: x, Jitter: x / 50}
}

// degradeLoss mirrors Link.Set: positive rates are Bernoulli,
// zero is lossless.
func degradeLoss(p float64) netem.LossModel {
	if p > 0 {
		return netem.Bernoulli{P: p}
	}
	return nil
}

// healShape looks up the latency ConnectDCs recorded for a↔b.
func (e *Engine) healShape(a, b core.NodeID) (time.Duration, error) {
	x, ok := e.d.LinkShape(a, b)
	if !ok {
		return 0, fmt.Errorf("DCs %v and %v were never connected", a, b)
	}
	return x, nil
}

func (e *Engine) compile(s Step) ([]linkOp, error) {
	switch s.Kind {
	case StepDegrade:
		return e.pairOps(s.A, s.B,
			func() netem.DelayModel { return shapeDelay(s.Latency) },
			func() netem.LossModel { return degradeLoss(s.Loss) })
	case StepDegradeAsym:
		l, err := e.dirLink(s.A, s.B)
		if err != nil {
			return nil, err
		}
		return []linkOp{{link: l, delay: shapeDelay(s.Latency), loss: degradeLoss(s.Loss)}}, nil
	case StepPartition:
		return e.pairOps(s.A, s.B, nil,
			func() netem.LossModel { return netem.Bernoulli{P: 1} })
	case StepPartitionAsym:
		l, err := e.dirLink(s.A, s.B)
		if err != nil {
			return nil, err
		}
		return []linkOp{{link: l, loss: netem.Bernoulli{P: 1}}}, nil
	case StepHeal:
		x, err := e.healShape(s.A, s.B)
		if err != nil {
			return nil, err
		}
		return e.pairOps(s.A, s.B,
			func() netem.DelayModel { return shapeDelay(x) },
			func() netem.LossModel { return nil })
	case StepHealAsym:
		x, err := e.healShape(s.A, s.B)
		if err != nil {
			return nil, err
		}
		l, err := e.dirLink(s.A, s.B)
		if err != nil {
			return nil, err
		}
		return []linkOp{{link: l, delay: shapeDelay(x), loss: nil}}, nil
	case StepBurstyLoss:
		return e.pairOps(s.A, s.B, nil,
			func() netem.LossModel { return netem.NewGilbertElliott(s.Loss, s.MeanBurst) })
	case StepCrashDC, StepHealDC:
		nbrs := e.d.Routing().Graph().Neighbors(s.A)
		if len(nbrs) == 0 {
			return nil, fmt.Errorf("DC %v has no inter-DC links", s.A)
		}
		var ops []linkOp
		for _, n := range nbrs {
			var (
				sub []linkOp
				err error
			)
			if s.Kind == StepCrashDC {
				sub, err = e.pairOps(s.A, n, nil,
					func() netem.LossModel { return netem.Bernoulli{P: 1} })
			} else {
				var x time.Duration
				x, err = e.healShape(s.A, n)
				if err == nil {
					sub, err = e.pairOps(s.A, n,
						func() netem.DelayModel { return shapeDelay(x) },
						func() netem.LossModel { return nil })
				}
			}
			if err != nil {
				return nil, err
			}
			ops = append(ops, sub...)
		}
		return ops, nil
	default:
		return nil, fmt.Errorf("unknown step kind %v", s.Kind)
	}
}

// Apply injects step i immediately: swap each compiled link's models and
// nudge fault detection. The loop body performs no allocation — the
// models and link pointers were built at Bind time.
func (e *Engine) Apply(i int) {
	for _, op := range e.ops[i] {
		if op.delay != nil {
			op.link.SetDelay(op.delay)
		}
		op.link.SetLoss(op.loss)
	}
	e.d.NudgeFaultDetection()
}

// Schedule queues every step on the deployment's simulator at its At
// time. Call before running; steps in the past panic (netem contract).
func (e *Engine) Schedule() {
	for i := range e.sc.Steps {
		i := i
		e.d.Sim().At(e.sc.Steps[i].At, func() { e.Apply(i) })
	}
}
