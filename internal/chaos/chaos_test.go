package chaos

import (
	"strings"
	"testing"
	"time"

	"jqos/internal/core"
)

// TestFuzzTimelineDeterminism: the same (seed, profile, topology) must
// produce a byte-identical timeline — the timeline is the reproduction
// recipe for a failing run — and different seeds must actually differ.
func TestFuzzTimelineDeterminism(t *testing.T) {
	w1, err := BuildWorld(9)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := BuildWorld(9)
	if err != nil {
		t.Fatal(err)
	}
	a := Fuzz(9, Profile{}, w1.DCs, w1.Links).Timeline()
	b := Fuzz(9, Profile{}, w2.DCs, w2.Links).Timeline()
	if a != b {
		t.Fatalf("same-seed timelines differ:\n%s\nvs\n%s", a, b)
	}
	if c := Fuzz(10, Profile{}, w1.DCs, w1.Links).Timeline(); c == a {
		t.Fatal("different seeds produced identical timelines")
	}
	if !strings.Contains(a, "seed=9") {
		t.Fatalf("timeline does not record its seed:\n%s", a)
	}
}

// TestRunDeterminism: two complete runs of the same seed must agree on
// every verdict counter — the simulator owns all randomness, so chaos
// runs are replayable end to end.
func TestRunDeterminism(t *testing.T) {
	run := func() Verdict {
		v, err := RunOne(3, Profile{})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	a, b := run(), run()
	if a.Timeline != b.Timeline {
		t.Errorf("timelines differ:\n%s\nvs\n%s", a.Timeline, b.Timeline)
	}
	if a.Delivered != b.Delivered || a.Reroutes != b.Reroutes ||
		a.FlowSignals != b.FlowSignals || a.RateCuts != b.RateCuts ||
		a.TenantCuts != b.TenantCuts || a.QuotaDrops != b.QuotaDrops {
		t.Errorf("same-seed verdicts differ: %+v vs %+v", a, b)
	}
}

// TestInvariantsHoldAcrossSeeds is the in-repo smoke soak: a handful of
// seeded fuzz runs must hold every invariant AND actually exercise the
// control loops (a run that never reroutes or paces is not a chaos
// test).
func TestInvariantsHoldAcrossSeeds(t *testing.T) {
	rep := Soak(SoakOptions{Runs: 6, Seed: 1, Log: t.Logf})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	for _, f := range rep.Failures {
		for _, viol := range f.Violations {
			t.Errorf("seed %d: %v", f.Seed, viol)
		}
	}
	if rep.Delivered == 0 || rep.FlowSignals == 0 || rep.RateCuts == 0 || rep.Reroutes == 0 ||
		rep.TenantCuts == 0 || rep.QuotaDrops == 0 {
		t.Errorf("soak exercised too little: %+v", rep)
	}
}

// TestBrokenInvariantDetected injects a deliberately unhealed failure —
// the spur DC stays crashed past the horizon — and requires the harness
// to detect it, report the violation against the right invariant, carry
// the reproducing seed, and attach the failure snapshot.
func TestBrokenInvariantDetected(t *testing.T) {
	const seed = 77
	w, err := BuildWorld(seed)
	if err != nil {
		t.Fatal(err)
	}
	spur := w.DCs[3]
	sc := Scenario{
		Name: "never-heals",
		Seed: seed,
		Steps: []Step{
			{At: 2 * time.Second, Kind: StepCrashDC, A: spur},
		},
	}
	v, err := RunScenario(w, sc, 8*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.OK() {
		t.Fatal("unhealed DC crash was not detected")
	}
	if v.Seed != seed {
		t.Errorf("verdict lost the reproducing seed: got %d", v.Seed)
	}
	var converged bool
	for _, viol := range v.Violations {
		if viol.Invariant == "routing-converged" {
			converged = true
		}
	}
	if !converged {
		t.Errorf("expected a routing-converged violation, got %v", v.Violations)
	}
	if v.Snapshot == nil {
		t.Error("failing verdict did not attach the final snapshot")
	}
	if !strings.Contains(v.Timeline, "crash-dc") {
		t.Errorf("timeline does not describe the injected fault:\n%s", v.Timeline)
	}
}

// TestBindValidation: scripting bugs (unknown links) must fail at Bind
// time, not be skipped mid-run.
func TestBindValidation(t *testing.T) {
	w, err := BuildWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Bind(w.D, Scenario{Steps: []Step{
		{Kind: StepPartition, A: core.NodeID(998), B: core.NodeID(999)},
	}})
	if err == nil {
		t.Fatal("Bind accepted a step on a nonexistent link")
	}
}

// TestFlapExpansion: the helper must expand to explicit alternating
// partition/heal pairs, fully reproducible from the timeline alone.
func TestFlapExpansion(t *testing.T) {
	steps := Flap(time.Second, 1, 2, 400*time.Millisecond, 3)
	if len(steps) != 6 {
		t.Fatalf("expected 6 steps, got %d", len(steps))
	}
	for i, s := range steps {
		wantKind := StepPartition
		if i%2 == 1 {
			wantKind = StepHeal
		}
		if s.Kind != wantKind {
			t.Errorf("step %d: kind %v, want %v", i, s.Kind, wantKind)
		}
	}
	if steps[2].At != 1400*time.Millisecond || steps[3].At != 1600*time.Millisecond {
		t.Errorf("unexpected cycle times: %v, %v", steps[2].At, steps[3].At)
	}
}
