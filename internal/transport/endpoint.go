// Package transport runs the J-QoS protocol engines over real UDP sockets:
// the same sans-IO cores that power the emulator (coding, cache, forward,
// recovery) driven by a wall-clock runtime. cmd/jqos-relay, cmd/jqos-send
// and cmd/jqos-recv are thin CLIs over this package — together they form
// the paper's prototype shape: endpoints duplicating traffic to a nearby
// relay, relays encoding across streams and answering NACKs (§5).
package transport

import (
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"jqos/internal/core"
	"jqos/internal/wire"
)

// MaxDatagram is the receive buffer size; J-QoS datagrams stay well under
// typical MTUs plus coded-packet metadata.
const MaxDatagram = 64 * 1024

// AddrBook maps overlay node IDs to UDP addresses. It is seeded statically
// (deployments are small) and can learn sender addresses from incoming
// traffic (NAT-friendly for the demo tools). Safe for concurrent use.
type AddrBook struct {
	mu    sync.RWMutex
	addrs map[core.NodeID]*net.UDPAddr
}

// NewAddrBook returns an empty book.
func NewAddrBook() *AddrBook {
	return &AddrBook{addrs: make(map[core.NodeID]*net.UDPAddr)}
}

// Set binds a node to an address.
func (b *AddrBook) Set(id core.NodeID, addr *net.UDPAddr) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.addrs[id] = addr
}

// Lookup resolves a node, or nil.
func (b *AddrBook) Lookup(id core.NodeID) *net.UDPAddr {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.addrs[id]
}

// Learn records the observed source address for a node if none is known
// (static entries win, so spoofed datagrams cannot re-point a peer).
func (b *AddrBook) Learn(id core.NodeID, addr *net.UDPAddr) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.addrs[id]; !ok {
		b.addrs[id] = addr
	}
}

// Nodes lists known node IDs (sorted, for diagnostics).
func (b *AddrBook) Nodes() []core.NodeID {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]core.NodeID, 0, len(b.addrs))
	for id := range b.addrs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ParseAddrBook parses "1=127.0.0.1:9001,2=127.0.0.1:9002" into a book.
func ParseAddrBook(spec string) (*AddrBook, error) {
	b := NewAddrBook()
	if strings.TrimSpace(spec) == "" {
		return b, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("transport: bad peer entry %q (want id=host:port)", part)
		}
		id, err := strconv.ParseUint(kv[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("transport: bad node id %q: %v", kv[0], err)
		}
		addr, err := net.ResolveUDPAddr("udp", kv[1])
		if err != nil {
			return nil, fmt.Errorf("transport: bad address %q: %v", kv[1], err)
		}
		b.Set(core.NodeID(id), addr)
	}
	return b, nil
}

// Endpoint is one UDP socket bound to an overlay node identity. It runs a
// receive loop and hands decoded messages to the owner, and transmits
// engine Emits by node ID.
type Endpoint struct {
	Self  core.NodeID
	Book  *AddrBook
	conn  *net.UDPConn
	epoch time.Time

	// Handler receives every decoded datagram. Called from the receive
	// goroutine; the payload aliases a reused buffer, so the handler
	// must copy anything it retains (engines already copy).
	Handler func(now core.Time, hdr *wire.Header, body []byte)

	// DropSend, if set, is consulted before each transmission; returning
	// true silently drops the datagram. Tests use it to inject loss on
	// real sockets.
	DropSend func(to core.NodeID, hdr *wire.Header) bool

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup

	stats struct {
		rx, tx, rxErr, noRoute uint64
	}
}

// NewEndpoint binds a UDP socket on listen ("host:port" or ":0").
func NewEndpoint(self core.NodeID, listen string, book *AddrBook) (*Endpoint, error) {
	addr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, err
	}
	if book == nil {
		book = NewAddrBook()
	}
	return &Endpoint{Self: self, Book: book, conn: conn, epoch: time.Now()}, nil
}

// LocalAddr returns the bound address (useful with ":0").
func (e *Endpoint) LocalAddr() *net.UDPAddr { return e.conn.LocalAddr().(*net.UDPAddr) }

// Now returns the endpoint's virtual time (since process epoch); all
// engines share this clock.
func (e *Endpoint) Now() core.Time { return core.Time(time.Since(e.epoch)) }

// Start launches the receive loop.
func (e *Endpoint) Start() {
	e.wg.Add(1)
	go e.receiveLoop()
}

// Close stops the endpoint and waits for the loop to exit.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	err := e.conn.Close()
	e.wg.Wait()
	return err
}

func (e *Endpoint) receiveLoop() {
	defer e.wg.Done()
	buf := make([]byte, MaxDatagram)
	var hdr wire.Header
	for {
		n, from, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		body, err := wire.SplitMessage(&hdr, buf[:n])
		if err != nil {
			e.mu.Lock()
			e.stats.rxErr++
			e.mu.Unlock()
			continue
		}
		e.Book.Learn(hdr.Src, from)
		e.mu.Lock()
		e.stats.rx++
		e.mu.Unlock()
		if e.Handler != nil {
			e.Handler(e.Now(), &hdr, body)
		}
	}
}

// Send transmits one wire-encoded message to a node.
func (e *Endpoint) Send(to core.NodeID, msg []byte) error {
	if e.DropSend != nil {
		var hdr wire.Header
		if _, err := hdr.Unmarshal(msg); err == nil && e.DropSend(to, &hdr) {
			return nil
		}
	}
	addr := e.Book.Lookup(to)
	if addr == nil {
		e.mu.Lock()
		e.stats.noRoute++
		e.mu.Unlock()
		return fmt.Errorf("transport: no address for %v", to)
	}
	_, err := e.conn.WriteToUDP(msg, addr)
	if err == nil {
		e.mu.Lock()
		e.stats.tx++
		e.mu.Unlock()
	}
	return err
}

// Transmit sends a batch of engine emits, dropping unroutable ones (the
// engines treat the network as best effort).
func (e *Endpoint) Transmit(emits []core.Emit) {
	for _, em := range emits {
		_ = e.Send(em.To, em.Msg)
	}
}

// Stats returns (received, transmitted, decode errors, unroutable).
func (e *Endpoint) Stats() (rx, tx, rxErr, noRoute uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats.rx, e.stats.tx, e.stats.rxErr, e.stats.noRoute
}
