package transport

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"jqos/internal/cache"
	"jqos/internal/coding"
	"jqos/internal/core"
	"jqos/internal/forward"
	"jqos/internal/wire"
)

// HostBinding tells a relay which DC serves an endpoint (the spatial
// grouping input for coding and the egress decision for caching).
type HostBinding struct {
	Host core.NodeID
	DC   core.NodeID
}

// ParseBindings parses "101@2,102@2" (host@dc).
func ParseBindings(spec string) ([]HostBinding, error) {
	var out []HostBinding
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "@", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("transport: bad binding %q (want host@dc)", part)
		}
		h, err1 := strconv.ParseUint(kv[0], 10, 32)
		d, err2 := strconv.ParseUint(kv[1], 10, 32)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("transport: bad binding %q", part)
		}
		out = append(out, HostBinding{Host: core.NodeID(h), DC: core.NodeID(d)})
	}
	return out, nil
}

// RelayConfig configures a Relay.
type RelayConfig struct {
	Encoder   coding.EncoderConfig
	Recoverer coding.RecovererConfig
	CacheTTL  time.Duration
}

// DefaultRelayConfig returns deployment defaults.
func DefaultRelayConfig() RelayConfig {
	return RelayConfig{
		Encoder:   coding.DefaultEncoderConfig(),
		Recoverer: coding.DefaultRecovererConfig(),
		CacheTTL:  2 * time.Second,
	}
}

// Relay is a J-QoS DC node on a real socket: forwarding, caching, and
// CR-WAN (both DC1 and DC2 roles), mirroring the emulator's DCNode
// dispatch. A mutex serializes the receive loop and the timer goroutine
// around the single-threaded engines.
type Relay struct {
	ep      *Endpoint
	mu      sync.Mutex
	fwd     *forward.Forwarder
	cch     *cache.Store
	enc     *coding.Encoder
	rec     *coding.Recoverer
	nearest map[core.NodeID]core.NodeID
	timer   *time.Timer
	done    chan struct{}
	closed  sync.Once
	drop    uint64
}

// NewRelay builds a relay on ep with the given host bindings.
func NewRelay(ep *Endpoint, cfg RelayConfig, bindings []HostBinding) (*Relay, error) {
	enc, err := coding.NewEncoder(ep.Self, cfg.Encoder)
	if err != nil {
		return nil, err
	}
	r := &Relay{
		ep:      ep,
		fwd:     forward.New(ep.Self),
		cch:     cache.NewStore(core.Time(cfg.CacheTTL), 0),
		enc:     enc,
		rec:     coding.NewRecoverer(ep.Self, cfg.Recoverer),
		nearest: make(map[core.NodeID]core.NodeID),
		timer:   time.NewTimer(time.Hour),
		done:    make(chan struct{}),
	}
	for _, b := range bindings {
		r.nearest[b.Host] = b.DC
		if b.DC != ep.Self {
			r.fwd.SetRoute(b.Host, b.DC)
		}
	}
	ep.Handler = r.handle
	return r, nil
}

// Forwarder exposes route/group installation.
func (r *Relay) Forwarder() *forward.Forwarder { return r.fwd }

// Start launches the socket loop and timer pump.
func (r *Relay) Start() {
	r.ep.Start()
	go r.timerLoop()
}

// Close shuts the relay down.
func (r *Relay) Close() error {
	r.closed.Do(func() { close(r.done) })
	return r.ep.Close()
}

// Stats returns engine counters for diagnostics.
func (r *Relay) Stats() (coding.EncoderStats, coding.RecovererStats, cache.Stats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.enc.Stats(), r.rec.Stats(), r.cch.Stats()
}

func (r *Relay) timerLoop() {
	for {
		select {
		case <-r.done:
			return
		case <-r.timer.C:
			r.mu.Lock()
			now := r.ep.Now()
			emits := append(r.enc.OnTimer(now), r.rec.OnTimer(now)...)
			r.rearmLocked()
			r.mu.Unlock()
			r.ep.Transmit(emits)
		}
	}
}

// rearmLocked resets the timer to the earliest engine deadline.
func (r *Relay) rearmLocked() {
	next, ok := r.nextDeadlineLocked()
	if !ok {
		r.timer.Reset(time.Hour)
		return
	}
	d := time.Duration(next - r.ep.Now())
	if d < 0 {
		d = 0
	}
	r.timer.Reset(d)
}

func (r *Relay) nextDeadlineLocked() (core.Time, bool) {
	d1, ok1 := r.enc.NextDeadline()
	d2, ok2 := r.rec.NextDeadline()
	switch {
	case ok1 && ok2:
		if d1 < d2 {
			return d1, true
		}
		return d2, true
	case ok1:
		return d1, true
	case ok2:
		return d2, true
	}
	return 0, false
}

// handle dispatches one datagram (called from the endpoint receive loop).
func (r *Relay) handle(now core.Time, hdr *wire.Header, body []byte) {
	raw := wire.AppendMessage(nil, hdr, body) // stable copy for relaying
	var emits []core.Emit
	r.mu.Lock()
	relay := hdr.Dst != r.ep.Self
	switch hdr.Type {
	case wire.TypeData:
		emits = r.onDataLocked(now, hdr, body, raw)
	case wire.TypeCoded:
		if relay {
			emits = r.fwd.Forward(hdr.Dst, raw)
		} else {
			var meta wire.Coded
			if shard, err := meta.Unmarshal(body); err == nil {
				emits = r.rec.OnCoded(now, hdr, &meta, shard)
			} else {
				r.drop++
			}
		}
	case wire.TypeNACK:
		if relay {
			emits = r.fwd.Forward(hdr.Dst, raw)
		} else {
			emits = r.onNACKLocked(now, hdr)
		}
	case wire.TypePull:
		if relay {
			emits = r.fwd.Forward(hdr.Dst, raw)
		} else {
			emits = r.onPullLocked(now, hdr)
		}
	case wire.TypeCoopResp:
		if relay {
			emits = r.fwd.Forward(hdr.Dst, raw)
		} else {
			var ref wire.CoopRef
			if payload, err := ref.Unmarshal(body); err == nil {
				emits = r.rec.OnCoopResp(now, hdr, &ref, payload)
			} else {
				r.drop++
			}
		}
	case wire.TypeVerifyResp:
		if relay {
			emits = r.fwd.Forward(hdr.Dst, raw)
		} else {
			emits = r.rec.OnVerifyResp(now, hdr)
		}
	default:
		if relay {
			emits = r.fwd.Forward(hdr.Dst, raw)
		} else {
			r.drop++
		}
	}
	r.rearmLocked()
	r.mu.Unlock()
	r.ep.Transmit(emits)
}

func (r *Relay) onDataLocked(now core.Time, hdr *wire.Header, payload, raw []byte) []core.Emit {
	switch hdr.Service {
	case core.ServiceCaching:
		if r.servesLocked(hdr.Dst) {
			r.cch.Put(now, hdr.ID(), payload)
			return nil
		}
		return r.fwd.Forward(hdr.Dst, raw)
	case core.ServiceCoding:
		dc2, ok := r.nearest[hdr.Dst]
		if !ok {
			r.drop++
			return nil
		}
		return r.enc.OnData(now, dc2, hdr.Dst, hdr.Flow, hdr.Seq, payload)
	default: // forwarding (and anything unknown moves along)
		return r.fwd.Forward(hdr.Dst, raw)
	}
}

func (r *Relay) servesLocked(dst core.NodeID) bool {
	if r.fwd.IsGroup(dst) {
		return true
	}
	return r.nearest[dst] == r.ep.Self
}

func (r *Relay) onNACKLocked(now core.Time, hdr *wire.Header) []core.Emit {
	if hdr.Service == core.ServiceCaching {
		if payload, ok := r.cch.Get(now, hdr.ID()); ok {
			resp := wire.Header{
				Type: wire.TypePullResp, Service: core.ServiceCaching,
				Flow: hdr.Flow, Seq: hdr.Seq, TS: now, Src: r.ep.Self, Dst: hdr.Src,
			}
			return []core.Emit{{To: hdr.Src, Msg: wire.AppendMessage(nil, &resp, payload)}}
		}
		return nil
	}
	return r.rec.OnNACK(now, hdr.Src, hdr.ID(), hdr.Flags)
}

func (r *Relay) onPullLocked(now core.Time, hdr *wire.Header) []core.Emit {
	ids := []core.PacketID{hdr.ID()}
	if hdr.Flags&wire.FlagDrain != 0 {
		ids = r.cch.DrainFlow(now, hdr.Flow, hdr.Seq)
	}
	var emits []core.Emit
	for _, id := range ids {
		payload, ok := r.cch.Get(now, id)
		if !ok {
			continue
		}
		resp := wire.Header{
			Type: wire.TypePullResp, Service: core.ServiceCaching,
			Flow: id.Flow, Seq: id.Seq, TS: now, Src: r.ep.Self, Dst: hdr.Src,
		}
		emits = append(emits, core.Emit{To: hdr.Src, Msg: wire.AppendMessage(nil, &resp, payload)})
	}
	return emits
}
