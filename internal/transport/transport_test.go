package transport

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jqos/internal/core"
	"jqos/internal/wire"
)

func TestParseAddrBook(t *testing.T) {
	b, err := ParseAddrBook("1=127.0.0.1:9001, 2=127.0.0.1:9002")
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Lookup(1); got == nil || got.Port != 9001 {
		t.Errorf("lookup 1 = %v", got)
	}
	if nodes := b.Nodes(); len(nodes) != 2 || nodes[0] != 1 {
		t.Errorf("nodes = %v", nodes)
	}
	if empty, err := ParseAddrBook("  "); err != nil || len(empty.Nodes()) != 0 {
		t.Errorf("empty spec: %v %v", empty, err)
	}
	for _, bad := range []string{"x", "a=127.0.0.1:1", "1=notanaddr:::"} {
		if _, err := ParseAddrBook(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestAddrBookLearnDoesNotOverride(t *testing.T) {
	b := NewAddrBook()
	static := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1000}
	b.Set(5, static)
	b.Learn(5, &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 2000})
	if b.Lookup(5).Port != 1000 {
		t.Error("Learn overrode a static entry")
	}
	b.Learn(6, &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 3000})
	if b.Lookup(6) == nil {
		t.Error("Learn did not record a new node")
	}
}

func TestParseBindings(t *testing.T) {
	bs, err := ParseBindings("101@2, 102@3")
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 || bs[0] != (HostBinding{101, 2}) || bs[1] != (HostBinding{102, 3}) {
		t.Errorf("bindings = %+v", bs)
	}
	if _, err := ParseBindings("101"); err == nil {
		t.Error("accepted binding without dc")
	}
	if _, err := ParseBindings("x@y"); err == nil {
		t.Error("accepted non-numeric binding")
	}
}

func TestEndpointRoundTrip(t *testing.T) {
	book := NewAddrBook()
	a, err := NewEndpoint(1, "127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewEndpoint(2, "127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	book.Set(1, a.LocalAddr())
	book.Set(2, b.LocalAddr())

	got := make(chan string, 1)
	b.Handler = func(now core.Time, hdr *wire.Header, body []byte) {
		if hdr.Type == wire.TypeData {
			got <- string(body)
		}
	}
	a.Start()
	b.Start()
	hdr := wire.Header{Type: wire.TypeData, Flow: 1, Seq: 1, Src: 1, Dst: 2}
	if err := a.Send(2, wire.AppendMessage(nil, &hdr, []byte("over the wire"))); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "over the wire" {
			t.Errorf("body = %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("datagram never arrived")
	}
	if err := a.Send(99, []byte("x")); err == nil {
		t.Error("send to unknown node succeeded")
	}
	rx, tx, _, noRoute := a.Stats()
	_ = rx
	if tx != 1 || noRoute != 1 {
		t.Errorf("a stats: tx=%d noRoute=%d", tx, noRoute)
	}
}

// TestLiveRecoveryOverUDP is the flagship transport test: a sender, two
// relays (DC1, DC2), three helper endpoints and a receiver on loopback
// UDP. The sender's direct datagrams to the receiver are partially
// dropped; CR-WAN over the relays repairs the stream on real sockets.
func TestLiveRecoveryOverUDP(t *testing.T) {
	book := NewAddrBook()
	mk := func(id core.NodeID) *Endpoint {
		ep, err := NewEndpoint(id, "127.0.0.1:0", book)
		if err != nil {
			t.Fatal(err)
		}
		book.Set(id, ep.LocalAddr())
		return ep
	}
	const (
		dc1    core.NodeID = 1
		dc2    core.NodeID = 2
		sender core.NodeID = 101
		rcvr   core.NodeID = 201
	)
	helpers := []core.NodeID{202, 203, 204}

	bindings := []HostBinding{{sender, dc1}, {rcvr, dc2}}
	for _, h := range helpers {
		bindings = append(bindings, HostBinding{h, dc2})
	}
	cfg := DefaultRelayConfig()
	cfg.Encoder.K = 4
	cfg.Encoder.CrossParity = 2
	cfg.Encoder.InBlock = 0
	cfg.Encoder.CrossTimeout = 20 * time.Millisecond

	r1, err := NewRelay(mk(dc1), cfg, bindings)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	r2, err := NewRelay(mk(dc2), cfg, bindings)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	r1.Start()
	r2.Start()

	// Receiver: count deliveries, mark recovered ones.
	var mu sync.Mutex
	gotSeq := map[core.Seq]bool{}
	recovered := 0
	rend := NewHostEnd(mk(rcvr), dc2, core.ServiceCoding, 60*time.Millisecond)
	rend.OnDeliver = func(del core.Delivery) {
		mu.Lock()
		gotSeq[del.Packet.ID.Seq] = true
		if del.Recovered {
			recovered++
		}
		mu.Unlock()
	}
	defer rend.Close()
	rend.Start()

	// Helpers: each runs its own flow so batches mix 4 flows.
	var hends []*HostEnd
	for _, h := range helpers {
		he := NewHostEnd(mk(h), dc2, core.ServiceCoding, 60*time.Millisecond)
		defer he.Close()
		he.Start()
		hends = append(hends, he)
	}

	// Sender: drop every 5th direct datagram to the receiver (loss is
	// injected at the sender socket — the wire itself is loopback).
	var sent atomic.Int64
	send := NewHostEnd(mk(sender), dc1, core.ServiceCoding, 60*time.Millisecond)
	send.ep_().DropSend = func(to core.NodeID, hdr *wire.Header) bool {
		return to == rcvr && hdr.Type == wire.TypeData && hdr.Seq%5 == 0
	}
	defer send.Close()
	send.Start()

	// Helper flows originate at the sender too (one process plays all
	// senders for simplicity; flows are what matters to the encoder).
	const packets = 50
	for seq := core.Seq(1); seq <= packets; seq++ {
		send.SendData(10, seq, rcvr, core.ServiceCoding, []byte("live-payload"))
		for fi, h := range helpers {
			send.SendData(core.FlowID(20+fi), seq, h, core.ServiceCoding, []byte("helper-payload"))
		}
		sent.Add(1)
		time.Sleep(4 * time.Millisecond)
	}

	// Wait for recovery to settle.
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(gotSeq)
		mu.Unlock()
		if n >= packets {
			break
		}
		select {
		case <-deadline:
			mu.Lock()
			t.Fatalf("only %d/%d delivered (recovered %d)", len(gotSeq), packets, recovered)
			mu.Unlock()
		case <-time.After(50 * time.Millisecond):
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if recovered == 0 {
		t.Error("no recoveries despite injected loss")
	}
	encStats, _, _ := r1.Stats()
	if encStats.CrossBatches == 0 {
		t.Error("relay encoded no batches")
	}
	_, recStats, _ := r2.Stats()
	if recStats.CoopRecovered == 0 {
		t.Errorf("no cooperative recoveries at DC2: %+v", recStats)
	}
}

// ep exposes the endpoint for test loss injection.
func (h *HostEnd) ep_() *Endpoint { return h.ep }
