package transport

import (
	"sync"
	"time"

	"jqos/internal/core"
	"jqos/internal/recovery"
	"jqos/internal/wire"
)

// HostEnd is an application endpoint on a real socket: it sends flows
// (duplicating copies toward DC1 per the selected service) and runs the
// receiver recovery engine for inbound flows.
type HostEnd struct {
	ep  *Endpoint
	dc  core.NodeID
	mu  sync.Mutex
	rcv *recovery.Receiver

	// OnDeliver receives every surfaced packet (may be called from the
	// receive or timer goroutine).
	OnDeliver func(core.Delivery)

	timer  *time.Timer
	done   chan struct{}
	closed sync.Once
}

// NewHostEnd builds an endpoint host whose nearby DC is dc.
func NewHostEnd(ep *Endpoint, dc core.NodeID, service core.Service, rtt time.Duration) *HostEnd {
	cfg := recovery.DefaultConfig(ep.Self, dc, core.Time(rtt))
	cfg.Service = service
	h := &HostEnd{
		ep:    ep,
		dc:    dc,
		rcv:   recovery.New(cfg),
		timer: time.NewTimer(time.Hour),
		done:  make(chan struct{}),
	}
	ep.Handler = h.handle
	return h
}

// Start launches the socket loop and the timer pump.
func (h *HostEnd) Start() {
	h.ep.Start()
	go h.timerLoop()
}

// Close shuts the host down.
func (h *HostEnd) Close() error {
	h.closed.Do(func() { close(h.done) })
	return h.ep.Close()
}

// ReceiverStats snapshots the recovery engine counters.
func (h *HostEnd) ReceiverStats() recovery.Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rcv.Stats()
}

// SetDropSend installs a send-side loss filter on the underlying socket —
// demos and tests use it to emulate a lossy direct path over loopback.
// Must be called before Start.
func (h *HostEnd) SetDropSend(fn func(to core.NodeID, hdr *wire.Header) bool) {
	h.ep.DropSend = fn
}

// SendData transmits one application packet: direct to dst, plus a copy to
// the DC when service uses the cloud.
func (h *HostEnd) SendData(flow core.FlowID, seq core.Seq, dst core.NodeID, service core.Service, payload []byte) {
	hdr := wire.Header{
		Type:    wire.TypeData,
		Service: service,
		Flow:    flow,
		Seq:     seq,
		TS:      h.ep.Now(),
		Src:     h.ep.Self,
		Dst:     dst,
	}
	msg := wire.AppendMessage(nil, &hdr, payload)
	_ = h.ep.Send(dst, msg)
	if service != core.ServiceInternet {
		hdr.Flags |= wire.FlagDup
		dup := wire.AppendMessage(nil, &hdr, payload)
		_ = h.ep.Send(h.dc, dup)
	}
}

// PullFlow drains the DC cache for a flow (mobility rendezvous).
func (h *HostEnd) PullFlow(flow core.FlowID, after core.Seq) {
	hdr := wire.Header{
		Type: wire.TypePull, Service: core.ServiceCaching, Flags: wire.FlagDrain,
		Flow: flow, Seq: after, TS: h.ep.Now(), Src: h.ep.Self, Dst: h.dc,
	}
	_ = h.ep.Send(h.dc, wire.AppendMessage(nil, &hdr, nil))
}

func (h *HostEnd) timerLoop() {
	for {
		select {
		case <-h.done:
			return
		case <-h.timer.C:
			h.mu.Lock()
			res := h.rcv.OnTimer(h.ep.Now())
			h.rearmLocked()
			h.mu.Unlock()
			h.dispatch(res)
		}
	}
}

func (h *HostEnd) rearmLocked() {
	dl, ok := h.rcv.NextDeadline()
	if !ok {
		h.timer.Reset(time.Hour)
		return
	}
	d := time.Duration(dl - h.ep.Now())
	if d < 0 {
		d = 0
	}
	h.timer.Reset(d)
}

func (h *HostEnd) dispatch(res recovery.Result) {
	h.ep.Transmit(res.Emits)
	if h.OnDeliver != nil {
		for _, del := range res.Deliveries {
			h.OnDeliver(del)
		}
	}
}

func (h *HostEnd) handle(now core.Time, hdr *wire.Header, body []byte) {
	h.mu.Lock()
	var res recovery.Result
	switch hdr.Type {
	case wire.TypeData:
		res = h.rcv.OnData(now, hdr, body)
	case wire.TypeRecovered, wire.TypePullResp:
		res = h.rcv.OnRecovered(now, hdr, body)
	case wire.TypeCoded:
		var meta wire.Coded
		if shard, err := meta.Unmarshal(body); err == nil {
			res = h.rcv.OnCoded(now, hdr, &meta, shard)
		}
	case wire.TypeCoopReq:
		var ref wire.CoopRef
		if _, err := ref.Unmarshal(body); err == nil {
			res = h.rcv.OnCoopReq(now, hdr, &ref)
		}
	case wire.TypeVerify:
		res = h.rcv.OnVerify(now, hdr)
	}
	h.rearmLocked()
	h.mu.Unlock()
	h.dispatch(res)
}
