// Package core holds the primitive types shared by every J-QoS module:
// node, flow and packet identities, the service enum, virtual time, and the
// packet unit that moves through the framework.
//
// The package is intentionally dependency-free so that substrates (emulator,
// coding engine, caches) can all import it without cycles.
package core

import (
	"fmt"
	"time"
)

// NodeID identifies a host or data center in an overlay deployment.
// IDs are assigned by the topology builder and are dense small integers,
// which lets components index per-node state with slices.
type NodeID uint32

// String implements fmt.Stringer.
func (n NodeID) String() string { return fmt.Sprintf("node%d", uint32(n)) }

// FlowID identifies one application stream (one sender/receiver pair and
// one registration). FlowIDs are globally unique within a deployment.
type FlowID uint64

// TenantID identifies one customer of the overlay — the unit that
// admission quotas, cost budgets, and aggregate pacing are enforced
// against. IDs are assigned by the operator at RegisterTenant; 0 is
// reserved as "untenanted" (a flow outside any tenant contract).
type TenantID uint64

// String implements fmt.Stringer.
func (t TenantID) String() string { return fmt.Sprintf("tenant%d", uint64(t)) }

// Seq is a per-flow packet sequence number. The first packet of a flow has
// sequence 1; 0 is reserved as "no packet".
type Seq uint64

// PacketID names one packet globally: the flow it belongs to plus its
// sequence number. PacketID is comparable and may be used as a map key
// (the gopacket Flow/Endpoint pattern).
type PacketID struct {
	Flow FlowID
	Seq  Seq
}

// String implements fmt.Stringer.
func (p PacketID) String() string { return fmt.Sprintf("%d/%d", p.Flow, p.Seq) }

// Service enumerates the J-QoS reliability services in increasing order of
// cost (§3 of the paper): coding is the cheapest recovery option, forwarding
// the most expensive. ServiceInternet means "best effort only" — no cloud
// assistance.
type Service uint8

const (
	// ServiceInternet uses only the direct best-effort path.
	ServiceInternet Service = iota
	// ServiceCoding is CR-WAN: coded packets cross the inter-DC path and
	// losses are repaired by cooperative recovery (§4). Cost factor α·c.
	ServiceCoding
	// ServiceCaching stores a copy of every packet at the DC near the
	// receiver and serves pulls on loss (§3.2). Cost factor c.
	ServiceCaching
	// ServiceForwarding relays every packet over the full cloud overlay
	// (§3.1). Cost factor 2c.
	ServiceForwarding
)

// String implements fmt.Stringer.
func (s Service) String() string {
	switch s {
	case ServiceInternet:
		return "internet"
	case ServiceCoding:
		return "coding"
	case ServiceCaching:
		return "caching"
	case ServiceForwarding:
		return "forwarding"
	default:
		return fmt.Sprintf("service(%d)", uint8(s))
	}
}

// Services lists all services from cheapest to most expensive cloud usage.
// Service selection (§3.5) walks this list and picks the first service whose
// predicted delivery latency meets the application budget.
var Services = []Service{ServiceInternet, ServiceCoding, ServiceCaching, ServiceForwarding}

// NumServices is the number of distinct services — the single source for
// per-service-class accounting array sizes (index by Service).
const NumServices = int(ServiceForwarding) + 1

// CostFactor returns the relative inter-DC egress cost of a service as a
// multiple of c, the cost of shipping one copy of the stream over one cloud
// egress (Figure 2). alpha is the coding overhead ratio (r+s).
func (s Service) CostFactor(alpha float64) float64 {
	switch s {
	case ServiceInternet:
		return 0
	case ServiceCoding:
		return alpha
	case ServiceCaching:
		return 1
	case ServiceForwarding:
		return 2
	default:
		return 0
	}
}

// Time is virtual time: the duration since the start of an experiment.
// Both the discrete-event emulator and the real-socket runtime express
// timestamps in this form, so protocol cores never touch the wall clock.
type Time = time.Duration

// Clock supplies the current virtual time to protocol cores that need to
// make their own timing decisions.
type Clock interface {
	Now() Time
}

// ClockFunc adapts a function to the Clock interface.
type ClockFunc func() Time

// Now implements Clock.
func (f ClockFunc) Now() Time { return f() }

// Packet is the unit of application data inside the framework: one
// transport segment intercepted below TCP/UDP (§5). Payload is owned by the
// packet once handed to the framework.
type Packet struct {
	ID      PacketID
	Src     NodeID
	Dst     NodeID
	Sent    Time // when the sender released it
	Payload []byte
}

// Size returns the wire size used for cost and bandwidth accounting:
// payload plus the J-QoS header overhead.
func (p *Packet) Size() int { return len(p.Payload) + HeaderOverhead }

// HeaderOverhead is the accounting size of the J-QoS encapsulation header.
// It mirrors wire.HeaderLen but is duplicated here as a plain constant so
// core does not depend on the wire package. A build-time assertion in the
// wire package keeps the two in sync.
const HeaderOverhead = 40

// Clone returns a deep copy of the packet (payload included). Protocol
// cores that must retain packets beyond the call that delivered them clone
// first, so callers keep ownership of their buffers (NoCopy-by-default).
func (p *Packet) Clone() *Packet {
	q := *p
	q.Payload = append([]byte(nil), p.Payload...)
	return &q
}

// Emit is a wire-encoded message a protocol core wants transmitted. Cores
// are sans-IO: they return Emits and the driving runtime (discrete-event
// simulator or UDP transport) moves the bytes. Msg is owned by the
// recipient of the Emit.
type Emit struct {
	To  NodeID
	Msg []byte
}

// Delivery is one application packet surfaced to the receiving endpoint,
// with provenance for the experiment accounting.
type Delivery struct {
	Packet    *Packet
	At        Time
	Recovered bool    // true if a J-QoS service repaired it
	Via       Service // which service produced it (ServiceInternet = direct)
	// RecoveryDelay is the time from loss detection (first NACK-worthy
	// evidence at the receiver) to delivery, for recovered packets. The
	// paper's recovery-time metric (Figures 7b, 8d) is measured on this
	// clock — the alternative, a source retransmission, costs ≥1 RTT
	// from the same moment.
	RecoveryDelay Time
}
