package core

import (
	"testing"
	"time"
)

func TestServiceStrings(t *testing.T) {
	want := map[Service]string{
		ServiceInternet:   "internet",
		ServiceCoding:     "coding",
		ServiceCaching:    "caching",
		ServiceForwarding: "forwarding",
	}
	for svc, name := range want {
		if svc.String() != name {
			t.Errorf("%d.String() = %q, want %q", svc, svc.String(), name)
		}
	}
	if s := Service(9).String(); s != "service(9)" {
		t.Errorf("unknown service string = %q", s)
	}
}

// TestServicesOrdering pins the §3.5 invariant the selection loop walks:
// Services lists every service exactly once, cheapest cloud usage first,
// starting from plain best-effort.
func TestServicesOrdering(t *testing.T) {
	if len(Services) != 4 {
		t.Fatalf("Services has %d entries", len(Services))
	}
	if Services[0] != ServiceInternet {
		t.Errorf("Services[0] = %v, want internet", Services[0])
	}
	seen := make(map[Service]bool)
	for _, alpha := range []float64{0.1, 0.25, 0.5, 0.99} {
		prev := -1.0
		for _, svc := range Services {
			c := svc.CostFactor(alpha)
			if c <= prev && svc != ServiceInternet {
				t.Errorf("alpha=%v: cost not strictly increasing at %v (%v after %v)",
					alpha, svc, c, prev)
			}
			prev = c
		}
	}
	for _, svc := range Services {
		if seen[svc] {
			t.Errorf("duplicate service %v", svc)
		}
		seen[svc] = true
	}
	if Service(200).CostFactor(0.5) != 0 {
		t.Error("unknown service has nonzero cost")
	}
}

func TestPacketIDRoundTrip(t *testing.T) {
	id := PacketID{Flow: 7, Seq: 42}
	if id.String() != "7/42" {
		t.Errorf("PacketID string = %q", id.String())
	}
	// Comparable and usable as a map key.
	m := map[PacketID]int{id: 1}
	if m[PacketID{Flow: 7, Seq: 42}] != 1 {
		t.Error("PacketID not comparable by value")
	}
	if NodeID(3).String() != "node3" {
		t.Errorf("NodeID string = %q", NodeID(3).String())
	}
}

func TestPacketSizeAndClone(t *testing.T) {
	p := &Packet{
		ID:      PacketID{Flow: 1, Seq: 2},
		Src:     1,
		Dst:     2,
		Sent:    5 * time.Millisecond,
		Payload: []byte("abc"),
	}
	if p.Size() != 3+HeaderOverhead {
		t.Errorf("Size = %d", p.Size())
	}
	q := p.Clone()
	q.Payload[0] = 'z'
	if p.Payload[0] != 'a' {
		t.Error("Clone shares payload storage")
	}
	if q.ID != p.ID || q.Sent != p.Sent {
		t.Error("Clone dropped fields")
	}
}

func TestClockFunc(t *testing.T) {
	now := Time(17)
	var c Clock = ClockFunc(func() Time { return now })
	if c.Now() != 17 {
		t.Errorf("ClockFunc.Now = %v", c.Now())
	}
}
