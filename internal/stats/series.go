package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) pair in a plotted series.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points, typically one CDF line in a figure.
type Series struct {
	Name   string
	Points []Point
}

// Append adds a point.
func (s *Series) Append(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// SortByX orders points by X ascending (stable on ties).
func (s *Series) SortByX() {
	sort.SliceStable(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
}

// YAt linearly interpolates the series at x. Points must be sorted by X.
// X values outside the series range clamp to the boundary Y values.
func (s *Series) YAt(x float64) float64 {
	pts := s.Points
	if len(pts) == 0 {
		return 0
	}
	if x <= pts[0].X {
		return pts[0].Y
	}
	if x >= pts[len(pts)-1].X {
		return pts[len(pts)-1].Y
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].X >= x })
	a, b := pts[i-1], pts[i]
	if b.X == a.X {
		return b.Y
	}
	frac := (x - a.X) / (b.X - a.X)
	return a.Y + frac*(b.Y-a.Y)
}

// XAtY returns the smallest x at which the series reaches y (useful for
// reading "95% of paths are below …" off a CDF). Points must be sorted and
// Y monotonically non-decreasing. Returns the final X if y is never reached.
func (s *Series) XAtY(y float64) float64 {
	for _, p := range s.Points {
		if p.Y >= y {
			return p.X
		}
	}
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].X
}

// Figure is a titled collection of series with axis labels — one paper
// figure. It renders to CSV (for external plotting) and ASCII (for the
// terminal harness).
type Figure struct {
	ID     string // e.g. "fig7a"
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	Series []Series
	// Notes carries headline observations printed under the plot and
	// recorded in EXPERIMENTS.md (e.g. "95% of paths ≤ 150 ms").
	Notes []string
}

// AddSeries appends a series to the figure.
func (f *Figure) AddSeries(s Series) { f.Series = append(f.Series, s) }

// AddNote appends a formatted headline note.
func (f *Figure) AddNote(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// WriteCSV emits the figure as long-form CSV: series,x,y — one row per
// point, with a header row. Long form keeps ragged series simple.
func (f *Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "series,%s,%s\n", csvEscape(f.XLabel), csvEscape(f.YLabel)); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", csvEscape(s.Name), p.X, p.Y); err != nil {
				return err
			}
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

var plotMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// ASCII renders the figure as a fixed-size character plot with axes,
// legend, and notes. Width and height are the plot-area dimensions in
// characters; sensible minimums are enforced.
func (f *Figure) ASCII(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, p := range s.Points {
			x := p.X
			if f.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	if math.IsInf(minX, 1) { // no points at all
		b.WriteString("(empty figure)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		mark := plotMarks[si%len(plotMarks)]
		for _, p := range s.Points {
			x := p.X
			if f.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			col := int((x - minX) / (maxX - minX) * float64(width-1))
			row := int((p.Y - minY) / (maxY - minY) * float64(height-1))
			grid[height-1-row][col] = mark
		}
	}
	for i, row := range grid {
		yTop := maxY - (maxY-minY)*float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%8.3g |%s|\n", yTop, string(row))
	}
	xl, xr := minX, maxX
	if f.LogX {
		xl, xr = math.Pow(10, minX), math.Pow(10, maxX)
	}
	fmt.Fprintf(&b, "%8s  %-*.4g%*.4g\n", "", width/2, xl, width-width/2, xr)
	axis := f.XLabel
	if f.LogX {
		axis += " (log)"
	}
	fmt.Fprintf(&b, "%8s  x: %s   y: %s\n", "", axis, f.YLabel)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "%8s  [%c] %s\n", "", plotMarks[si%len(plotMarks)], s.Name)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "%8s  note: %s\n", "", n)
	}
	return b.String()
}
