package stats

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	s := NewSample(4)
	s.AddAll(3, 1, 2, 4)
	if got := s.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := s.Max(); got != 4 {
		t.Errorf("Max = %v, want 4", got)
	}
	if got := s.Mean(); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := s.Sum(); got != 10 {
		t.Errorf("Sum = %v, want 10", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.Stddev() != 0 {
		t.Error("empty sample should report zeros")
	}
	if got := s.FractionBelow(10); got != 0 {
		t.Errorf("FractionBelow on empty = %v, want 0", got)
	}
	if sm := s.Summarize(); sm.N != 0 {
		t.Errorf("Summarize on empty: %+v", sm)
	}
	if cdf := s.CDF("e"); len(cdf.Points) != 0 {
		t.Errorf("CDF on empty has %d points", len(cdf.Points))
	}
}

func TestSampleRejectsNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(NaN) did not panic")
		}
	}()
	var s Sample
	s.Add(math.NaN())
}

func TestQuantileInterpolation(t *testing.T) {
	var s Sample
	s.AddAll(0, 10)
	cases := []struct{ q, want float64 }{
		{0, 0}, {0.25, 2.5}, {0.5, 5}, {0.75, 7.5}, {1, 10},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileSingleValue(t *testing.T) {
	var s Sample
	s.Add(7)
	if got := s.Quantile(0.9); got != 7 {
		t.Errorf("Quantile(0.9) = %v, want 7", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	var s Sample
	s.Add(1)
	for _, q := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", q)
				}
			}()
			s.Quantile(q)
		}()
	}
}

func TestQuantileOrderedProperty(t *testing.T) {
	// Property: quantiles are monotone in q and bounded by min/max.
	f := func(vals []float64, q1, q2 float64) bool {
		if len(vals) == 0 {
			return true
		}
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		a, b := s.Quantile(q1), s.Quantile(q2)
		return a <= b && a >= s.Min() && b <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFractionBelow(t *testing.T) {
	var s Sample
	s.AddAll(1, 2, 2, 3)
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := s.FractionBelow(c.x); got != c.want {
			t.Errorf("FractionBelow(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestCDFDistinctAndMonotone(t *testing.T) {
	var s Sample
	s.AddAll(5, 1, 5, 2, 2, 9)
	cdf := s.CDF("x")
	if len(cdf.Points) != 4 { // distinct values: 1 2 5 9
		t.Fatalf("CDF has %d points, want 4", len(cdf.Points))
	}
	if !sort.SliceIsSorted(cdf.Points, func(i, j int) bool { return cdf.Points[i].X < cdf.Points[j].X }) {
		t.Error("CDF x values not sorted")
	}
	last := cdf.Points[len(cdf.Points)-1]
	if last.Y != 1 {
		t.Errorf("final CDF y = %v, want 1", last.Y)
	}
	// y at x=2 must count both 2s and the 1: 3/6.
	if got := cdf.Points[1]; got.X != 2 || got.Y != 0.5 {
		t.Errorf("point[1] = %+v, want {2 0.5}", got)
	}
}

func TestCCDF(t *testing.T) {
	var s Sample
	s.AddAll(1, 2, 3, 4)
	ccdf := s.CCDF("x")
	if got := ccdf.Points[len(ccdf.Points)-1].Y; got != 0 {
		t.Errorf("final CCDF y = %v, want 0", got)
	}
	if got := ccdf.Points[0].Y; got != 0.75 {
		t.Errorf("first CCDF y = %v, want 0.75", got)
	}
}

func TestSeriesYAt(t *testing.T) {
	s := Series{Points: []Point{{0, 0}, {10, 1}}}
	if got := s.YAt(5); got != 0.5 {
		t.Errorf("YAt(5) = %v, want 0.5", got)
	}
	if got := s.YAt(-1); got != 0 {
		t.Errorf("YAt(-1) = %v, want 0 (clamp)", got)
	}
	if got := s.YAt(99); got != 1 {
		t.Errorf("YAt(99) = %v, want 1 (clamp)", got)
	}
	var empty Series
	if got := empty.YAt(1); got != 0 {
		t.Errorf("empty YAt = %v, want 0", got)
	}
}

func TestSeriesXAtY(t *testing.T) {
	s := Series{Points: []Point{{1, 0.2}, {2, 0.6}, {3, 1.0}}}
	if got := s.XAtY(0.5); got != 2 {
		t.Errorf("XAtY(0.5) = %v, want 2", got)
	}
	if got := s.XAtY(2); got != 3 {
		t.Errorf("XAtY(2) = %v, want last x", got)
	}
}

func TestFigureCSV(t *testing.T) {
	f := Figure{ID: "t", XLabel: "x,ms", YLabel: "cdf"}
	f.AddSeries(Series{Name: "a", Points: []Point{{1, 0.5}, {2, 1}}})
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "series,\"x,ms\",cdf\na,1,0.5\na,2,1\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestFigureASCII(t *testing.T) {
	f := Figure{ID: "fig", Title: "demo", XLabel: "ms", YLabel: "cdf"}
	var s Sample
	for i := 0; i < 100; i++ {
		s.Add(float64(i))
	}
	f.AddSeries(s.CDF("line"))
	f.AddNote("p95=%.0f", s.Quantile(0.95))
	out := f.ASCII(40, 10)
	for _, want := range []string{"fig — demo", "[*] line", "note: p95=94"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, out)
		}
	}
}

func TestFigureASCIIEmpty(t *testing.T) {
	f := Figure{ID: "e", Title: "empty"}
	if out := f.ASCII(40, 10); !strings.Contains(out, "empty figure") {
		t.Errorf("empty figure render: %q", out)
	}
}

func TestFigureASCIILogX(t *testing.T) {
	f := Figure{ID: "l", Title: "log", LogX: true, XLabel: "pct"}
	f.AddSeries(Series{Name: "s", Points: []Point{{10, 0.1}, {100, 0.5}, {10000, 1}}})
	out := f.ASCII(40, 8)
	if !strings.Contains(out, "(log)") {
		t.Errorf("log axis label missing:\n%s", out)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-5) // clamp low
	h.Add(99) // clamp high
	if h.Total() != 12 {
		t.Errorf("Total = %d, want 12", h.Total())
	}
	if h.Clamped() != 2 {
		t.Errorf("Clamped = %d, want 2", h.Clamped())
	}
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Errorf("clamped counts wrong: %v", h.Counts)
	}
	cdf := h.CDF("h")
	if got := cdf.Points[len(cdf.Points)-1].Y; got != 1 {
		t.Errorf("histogram CDF final y = %v", got)
	}
	if h.BucketMid(0) != 0.5 {
		t.Errorf("BucketMid(0) = %v", h.BucketMid(0))
	}
	if !strings.Contains(h.String(), "#") {
		t.Error("histogram String has no bars")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad histogram construction did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestSummaryAgainstKnownDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var s Sample
	for i := 0; i < 100000; i++ {
		s.Add(rng.Float64())
	}
	sm := s.Summarize()
	if math.Abs(sm.Median-0.5) > 0.01 || math.Abs(sm.P95-0.95) > 0.01 || math.Abs(sm.Mean-0.5) > 0.01 {
		t.Errorf("uniform sample summary off: %v", sm)
	}
	if !strings.Contains(sm.String(), "n=100000") {
		t.Errorf("summary string: %s", sm)
	}
	if sd := s.Stddev(); math.Abs(sd-math.Sqrt(1.0/12)) > 0.01 {
		t.Errorf("Stddev = %v, want ~0.2887", sd)
	}
}
