package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bucket counter over a closed range. Values outside
// the range are clamped into the first or last bucket so that totals always
// balance (the paper's figures never discard observations).
type Histogram struct {
	Lo, Hi  float64
	Counts  []uint64
	total   uint64
	clamped uint64
}

// NewHistogram creates a histogram over [lo, hi) with n equal buckets.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram needs at least one bucket")
	}
	if hi <= lo {
		panic("stats: histogram range is empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]uint64, n)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	n := len(h.Counts)
	idx := int(math.Floor((v - h.Lo) / (h.Hi - h.Lo) * float64(n)))
	if idx < 0 {
		idx = 0
		h.clamped++
	} else if idx >= n {
		idx = n - 1
		h.clamped++
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() uint64 { return h.total }

// Clamped returns how many observations fell outside [Lo, Hi).
func (h *Histogram) Clamped() uint64 { return h.clamped }

// BucketMid returns the midpoint value of bucket i.
func (h *Histogram) BucketMid(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// CDF converts the histogram into a cumulative series over bucket upper
// edges.
func (h *Histogram) CDF(name string) Series {
	s := Series{Name: name}
	if h.total == 0 {
		return s
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		s.Append(h.Lo+w*float64(i+1), float64(cum)/float64(h.total))
	}
	return s
}

// String renders a quick bar view, mostly for debugging and examples.
func (h *Histogram) String() string {
	var b strings.Builder
	max := uint64(1)
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	for i, c := range h.Counts {
		bar := int(float64(c) / float64(max) * 40)
		fmt.Fprintf(&b, "%10.4g %-40s %d\n", h.BucketMid(i), strings.Repeat("#", bar), c)
	}
	return b.String()
}
