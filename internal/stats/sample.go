// Package stats provides the small statistics toolkit used by every J-QoS
// experiment: sample collection, quantiles, CDF/CCDF extraction, histogram
// bucketing, and figure output (CSV and ASCII plots).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates float64 observations and answers order-statistics
// queries. The zero value is ready to use.
type Sample struct {
	data   []float64
	sorted bool
}

// NewSample returns a Sample pre-sized for n observations.
func NewSample(n int) *Sample {
	return &Sample{data: make([]float64, 0, n)}
}

// Add records one observation. NaNs are rejected with a panic: every J-QoS
// experiment is deterministic, so a NaN always indicates a programming error
// that should fail loudly rather than poison a CDF.
func (s *Sample) Add(v float64) {
	if math.IsNaN(v) {
		panic("stats: NaN observation")
	}
	s.data = append(s.data, v)
	s.sorted = false
}

// AddAll records a batch of observations.
func (s *Sample) AddAll(vs ...float64) {
	for _, v := range vs {
		s.Add(v)
	}
}

// AddDurationSeconds records a time observation in seconds. Most figures in
// the paper plot milliseconds; callers scale as needed.
func (s *Sample) AddDurationSeconds(sec float64) { s.Add(sec) }

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.data) }

// Values returns the observations in sorted order. The returned slice is
// owned by the Sample; callers must not modify it.
func (s *Sample) Values() []float64 {
	s.sort()
	return s.data
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.data)
		s.sorted = true
	}
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.data) == 0 {
		return 0
	}
	s.sort()
	return s.data[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.data) == 0 {
		return 0
	}
	s.sort()
	return s.data[len(s.data)-1]
}

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 {
	var t float64
	for _, v := range s.data {
		t += v
	}
	return t
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.data) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s.data))
}

// Stddev returns the population standard deviation, or 0 for fewer than two
// observations.
func (s *Sample) Stddev() float64 {
	n := len(s.data)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.data {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between order statistics (type-7 estimator, the same one used by R and
// NumPy's default). It panics on an empty sample or q outside [0, 1].
func (s *Sample) Quantile(q float64) float64 {
	if len(s.data) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of range", q))
	}
	s.sort()
	if len(s.data) == 1 {
		return s.data[0]
	}
	pos := q * float64(len(s.data)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.data[lo]
	}
	frac := pos - float64(lo)
	return s.data[lo]*(1-frac) + s.data[hi]*frac
}

// Median returns the 0.5 quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// FractionBelow returns the fraction of observations strictly less than or
// equal to x (the empirical CDF evaluated at x).
func (s *Sample) FractionBelow(x float64) float64 {
	if len(s.data) == 0 {
		return 0
	}
	s.sort()
	idx := sort.SearchFloat64s(s.data, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(s.data))
}

// CDF returns the empirical cumulative distribution as a Series: one point
// per distinct observation, with Y the cumulative fraction ≤ X.
func (s *Sample) CDF(name string) Series {
	s.sort()
	ser := Series{Name: name}
	n := len(s.data)
	if n == 0 {
		return ser
	}
	ser.Points = make([]Point, 0, n)
	for i := 0; i < n; i++ {
		// Emit only the last point of a run of equal values so the
		// CDF is a proper step function sampled at distinct x.
		if i+1 < n && s.data[i+1] == s.data[i] {
			continue
		}
		ser.Points = append(ser.Points, Point{X: s.data[i], Y: float64(i+1) / float64(n)})
	}
	return ser
}

// CCDF returns the complementary CDF (fraction of observations > X), the
// form used by Figure 8a in the paper.
func (s *Sample) CCDF(name string) Series {
	cdf := s.CDF(name)
	for i := range cdf.Points {
		cdf.Points[i].Y = 1 - cdf.Points[i].Y
	}
	return cdf
}

// Summary is a compact five-number-plus description of a sample.
type Summary struct {
	N                int
	Min, P25, Median float64
	P75, P90, P95    float64
	P99, Max, Mean   float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func (s *Sample) Summarize() Summary {
	if s.Len() == 0 {
		return Summary{}
	}
	return Summary{
		N:      s.Len(),
		Min:    s.Min(),
		P25:    s.Quantile(0.25),
		Median: s.Median(),
		P75:    s.Quantile(0.75),
		P90:    s.Quantile(0.90),
		P95:    s.Quantile(0.95),
		P99:    s.Quantile(0.99),
		Max:    s.Max(),
		Mean:   s.Mean(),
	}
}

// String implements fmt.Stringer.
func (sm Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g p50=%.3g p90=%.3g p95=%.3g p99=%.3g max=%.3g mean=%.3g",
		sm.N, sm.Min, sm.Median, sm.P90, sm.P95, sm.P99, sm.Max, sm.Mean)
}
