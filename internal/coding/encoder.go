// Package coding implements CR-WAN, the J-QoS coding service (§4): the DC1
// encoder that batches concurrent user streams and emits in-stream and
// cross-stream Reed-Solomon parity over the inter-DC path, and the DC2
// recovery engine that answers receiver NACKs via cached parity and the
// cooperative recovery protocol (§4.4).
package coding

import (
	"fmt"

	"jqos/internal/core"
	"jqos/internal/rs"
	"jqos/internal/wire"
)

// EncoderConfig carries the coding-plan parameters of §4.1–4.2.
type EncoderConfig struct {
	// K is the maximum number of flows combined in one cross-stream
	// batch (paper default k ≤ 10, deployment k = 6).
	K int
	// CrossParity is the number of cross-stream coded packets generated
	// per batch (r's numerator; paper default 2, for straggler
	// protection).
	CrossParity int
	// InBlock is the in-stream block size: one in-stream parity packet
	// per InBlock data packets of a flow (s = InParity/InBlock).
	// Zero disables in-stream coding (Skype case study runs s = 0).
	InBlock int
	// InParity is the number of parity packets per in-stream block
	// (usually 1).
	InParity int
	// CrossQueues is the number of concurrently open cross-stream
	// batches per destination DC (Algorithm 1's queue set).
	CrossQueues int
	// CrossTimeout bounds how long a cross-stream batch stays open
	// (the temporal constraint of §4.1).
	CrossTimeout core.Time
	// InTimeout bounds how long an in-stream block stays open.
	InTimeout core.Time
}

// DefaultEncoderConfig mirrors the PlanetLab deployment parameters
// (§6.2.1: r = 2/6, s = 1/5).
func DefaultEncoderConfig() EncoderConfig {
	return EncoderConfig{
		K:            6,
		CrossParity:  2,
		InBlock:      5,
		InParity:     1,
		CrossQueues:  4,
		CrossTimeout: 30e6, // 30ms in core.Time (nanoseconds)
		InTimeout:    50e6,
	}
}

func (c EncoderConfig) validate() error {
	if c.K < 1 || c.K > 200 {
		return fmt.Errorf("coding: K=%d out of range", c.K)
	}
	if c.CrossParity < 1 {
		return fmt.Errorf("coding: CrossParity=%d must be ≥1", c.CrossParity)
	}
	if c.InBlock < 0 || (c.InBlock > 0 && c.InParity < 1) {
		return fmt.Errorf("coding: in-stream config %d/%d invalid", c.InParity, c.InBlock)
	}
	if c.CrossQueues < 1 {
		return fmt.Errorf("coding: CrossQueues=%d must be ≥1", c.CrossQueues)
	}
	if c.CrossTimeout <= 0 || (c.InBlock > 0 && c.InTimeout <= 0) {
		return fmt.Errorf("coding: timeouts must be positive")
	}
	return nil
}

// Alpha returns the nominal coding overhead ratio r+s: cloud bytes per
// data byte.
func (c EncoderConfig) Alpha() float64 {
	a := float64(c.CrossParity) / float64(c.K)
	if c.InBlock > 0 {
		a += float64(c.InParity) / float64(c.InBlock)
	}
	return a
}

// EncoderStats counts the encoder's work.
type EncoderStats struct {
	DataPackets  uint64
	CrossBatches uint64
	InBatches    uint64
	CrossCoded   uint64
	InCoded      uint64
	Evicted      uint64 // single-flow queue clears (Algorithm 1 line 18)
	TimerFlushes uint64
	DataBytes    uint64
	CodedBytes   uint64
}

// Overhead returns observed coded/data byte ratio.
func (s EncoderStats) Overhead() float64 {
	if s.DataBytes == 0 {
		return 0
	}
	return float64(s.CodedBytes) / float64(s.DataBytes)
}

// srcPkt is one enqueued data packet copy.
type srcPkt struct {
	ref     wire.SourceRef
	payload []byte
}

type inQueue struct {
	flow     core.FlowID
	dc2      core.NodeID
	pkts     []srcPkt
	deadline core.Time
}

type crossQueue struct {
	pkts     []srcPkt
	flows    map[core.FlowID]bool
	deadline core.Time
	opened   core.Time
}

func (q *crossQueue) reset() {
	q.pkts = q.pkts[:0]
	for f := range q.flows {
		delete(q.flows, f)
	}
	q.deadline = 0
}

type crossSet struct {
	dc2 core.NodeID
	qs  []*crossQueue
}

// crossKey groups cross-stream batches: flows are coded together only
// when they share the egress DC (the spatial constraint) AND the path
// policy their parity should ride (policy-aware batching). A parity
// packet can only take one path, so a batch mixing a pinned flow with
// fastest-path flows would drag someone's parity off their policy;
// keying the queue set by (dc2, policy) keeps every batch
// policy-homogeneous and lets the batch's first source flow stand in
// for all of them at pinning time. policy is an opaque discriminator
// computed by the caller (0 = default fastest-path).
type crossKey struct {
	dc2    core.NodeID
	policy uint32
}

// Encoder is the DC1-side CR-WAN engine. It is a sans-IO state machine:
// feed it data packets and timer ticks, collect wire-encoded Emits bound
// for DC2. Not safe for concurrent use — the parallel pipeline (Figure 10)
// shards flows across independent Encoders instead of locking one.
type Encoder struct {
	cfg  EncoderConfig
	self core.NodeID

	inQs map[core.FlowID]*inQueue
	// cross is keyed by (dc2, path policy); crossKeys mirrors it in
	// ascending (dc2, policy) order so timer flushes emit
	// deterministically however many sets are live.
	cross     map[crossKey]*crossSet
	crossKeys []crossKey
	rrIdx     map[core.FlowID]int
	codecs    map[[2]int]*rs.Codec

	batchSeq uint64
	stats    EncoderStats
}

// NewEncoder builds a DC1 encoder with identity self.
func NewEncoder(self core.NodeID, cfg EncoderConfig) (*Encoder, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Encoder{
		cfg:    cfg,
		self:   self,
		inQs:   make(map[core.FlowID]*inQueue),
		cross:  make(map[crossKey]*crossSet),
		rrIdx:  make(map[core.FlowID]int),
		codecs: make(map[[2]int]*rs.Codec),
	}, nil
}

// Config returns the encoder's configuration.
func (e *Encoder) Config() EncoderConfig { return e.cfg }

// Stats returns a copy of the counters.
func (e *Encoder) Stats() EncoderStats { return e.stats }

// ForgetFlow drops the per-flow encoder state of a torn-down flow: its
// in-stream queue (pending packets are discarded — the receiver is gone)
// and its cross-queue round-robin cursor. Open cross-stream batches may
// still hold the flow's packets; they flush or expire on their own
// bounded timers, so nothing here grows with flow churn.
func (e *Encoder) ForgetFlow(flow core.FlowID) {
	delete(e.inQs, flow)
	delete(e.rrIdx, flow)
}

// TrackedFlows returns how many flows hold per-flow encoder state
// (diagnostics; flow teardown must drive it back down).
func (e *Encoder) TrackedFlows() int {
	n := len(e.inQs)
	if m := len(e.rrIdx); m > n {
		n = m
	}
	return n
}

// codec returns (building if needed) the RS codec for (k, m).
func (e *Encoder) codec(k, m int) *rs.Codec {
	key := [2]int{k, m}
	if c, ok := e.codecs[key]; ok {
		return c
	}
	c, err := rs.NewCodec(k, m)
	if err != nil {
		panic("coding: " + err.Error()) // bounded by config validation
	}
	e.codecs[key] = c
	return c
}

// OnData processes one data packet copy arriving from a sender: Algorithm 1.
// dc2 is the egress DC serving the flow's receiver (the spatial constraint:
// only flows sharing dc2 are coded together); receiver is the flow's
// endpoint, recorded in parity metadata for cooperative recovery.
// The payload is copied; the caller keeps ownership. Equivalent to
// OnDataPolicy with the default (fastest-path) policy discriminator.
func (e *Encoder) OnData(now core.Time, dc2, receiver core.NodeID, flow core.FlowID, seq core.Seq, payload []byte) []core.Emit {
	return e.OnDataPolicy(now, dc2, receiver, flow, seq, 0, payload)
}

// OnDataPolicy is OnData with an explicit path-policy discriminator:
// only flows whose parity should ride the same path policy share
// cross-stream batches (see crossKey). In-stream blocks are single-flow,
// so policy never splits them.
func (e *Encoder) OnDataPolicy(now core.Time, dc2, receiver core.NodeID, flow core.FlowID, seq core.Seq, policy uint32, payload []byte) []core.Emit {
	e.stats.DataPackets++
	e.stats.DataBytes += uint64(len(payload))
	ref := wire.SourceRef{Flow: flow, Seq: seq, Receiver: receiver}
	var emits []core.Emit

	// (1) In-stream coding (Algorithm 1 lines 1–5).
	if e.cfg.InBlock > 0 {
		q := e.inQs[flow]
		if q == nil {
			q = &inQueue{flow: flow, dc2: dc2}
			e.inQs[flow] = q
		}
		if len(q.pkts) == 0 {
			q.deadline = now + e.cfg.InTimeout
		}
		q.dc2 = dc2
		q.pkts = append(q.pkts, srcPkt{ref: ref, payload: append([]byte(nil), payload...)})
		if len(q.pkts) >= e.cfg.InBlock {
			emits = append(emits, e.flushIn(now, q)...)
		}
	}

	// (2) Cross-stream coding (Algorithm 1 lines 6–23).
	key := crossKey{dc2: dc2, policy: policy}
	set := e.cross[key]
	if set == nil {
		set = &crossSet{dc2: dc2, qs: make([]*crossQueue, e.cfg.CrossQueues)}
		for i := range set.qs {
			set.qs[i] = &crossQueue{flows: make(map[core.FlowID]bool)}
		}
		e.cross[key] = set
		e.insertCrossKey(key)
	}
	qi := e.rrIdx[flow] % e.cfg.CrossQueues
	e.rrIdx[flow] = (qi + 1) % e.cfg.CrossQueues
	q := set.qs[qi]
	initial := qi
	// Find a queue without a packet from this flow (lines 9–12).
	for q.flows[flow] {
		qi = (qi + 1) % e.cfg.CrossQueues
		q = set.qs[qi]
		if qi == initial {
			// Every queue holds this flow (lines 13–19): flush the
			// initial queue if it has cross-flow value, else discard.
			if len(q.pkts) > 1 {
				emits = append(emits, e.flushCross(now, dc2, q)...)
			} else {
				q.reset()
				e.stats.Evicted++
			}
			break
		}
	}
	if len(q.pkts) == 0 {
		q.deadline = now + e.cfg.CrossTimeout
		q.opened = now
	}
	q.flows[flow] = true
	q.pkts = append(q.pkts, srcPkt{ref: ref, payload: append([]byte(nil), payload...)})
	if len(q.pkts) >= e.cfg.K {
		emits = append(emits, e.flushCross(now, dc2, q)...)
	}
	return emits
}

// insertCrossKey keeps crossKeys sorted ascending by (dc2, policy) as
// new sets appear, so map-backed iteration stays deterministic.
func (e *Encoder) insertCrossKey(k crossKey) {
	i := 0
	for i < len(e.crossKeys) {
		c := e.crossKeys[i]
		if c.dc2 > k.dc2 || (c.dc2 == k.dc2 && c.policy > k.policy) {
			break
		}
		i++
	}
	e.crossKeys = append(e.crossKeys, crossKey{})
	copy(e.crossKeys[i+1:], e.crossKeys[i:])
	e.crossKeys[i] = k
}

// flushIn encodes an in-stream block and resets the queue.
func (e *Encoder) flushIn(now core.Time, q *inQueue) []core.Emit {
	if len(q.pkts) == 0 {
		return nil
	}
	emits := e.encodeBatch(now, q.dc2, q.pkts, wire.InStream, e.cfg.InParity)
	e.stats.InBatches++
	e.stats.InCoded += uint64(e.cfg.InParity)
	q.pkts = q.pkts[:0]
	q.deadline = 0
	return emits
}

// flushCross encodes a cross-stream batch and resets the queue.
func (e *Encoder) flushCross(now core.Time, dc2 core.NodeID, q *crossQueue) []core.Emit {
	if len(q.pkts) == 0 {
		return nil
	}
	emits := e.encodeBatch(now, dc2, q.pkts, wire.CrossStream, e.cfg.CrossParity)
	e.stats.CrossBatches++
	e.stats.CrossCoded += uint64(e.cfg.CrossParity)
	q.reset()
	return emits
}

// encodeBatch produces parity Emits for a batch of data packets.
func (e *Encoder) encodeBatch(now core.Time, dc2 core.NodeID, pkts []srcPkt, kind wire.CodedKind, parity int) []core.Emit {
	k := len(pkts)
	payloads := make([][]byte, k)
	sources := make([]wire.SourceRef, k)
	for i, p := range pkts {
		payloads[i] = p.payload
		sources[i] = p.ref
	}
	shards, shardLen, err := rs.PackBatch(payloads)
	if err != nil {
		panic("coding: " + err.Error()) // batch is non-empty by construction
	}
	codec := e.codec(k, parity)
	all := append(shards, make([][]byte, parity)...)
	for i := 0; i < parity; i++ {
		all[k+i] = make([]byte, shardLen)
	}
	if err := codec.Encode(all); err != nil {
		panic("coding: " + err.Error())
	}
	e.batchSeq++
	batch := e.batchSeq
	emits := make([]core.Emit, 0, parity)
	for i := 0; i < parity; i++ {
		meta := wire.Coded{
			Batch:    batch,
			Kind:     kind,
			K:        uint8(k),
			R:        uint8(parity),
			Index:    uint8(i),
			ShardLen: uint16(shardLen),
			Sources:  sources,
		}
		hdr := wire.Header{
			Type:    wire.TypeCoded,
			Service: core.ServiceCoding,
			TS:      now,
			Src:     e.self,
			Dst:     dc2,
		}
		payload := meta.AppendMarshal(nil, all[k+i])
		msg := wire.AppendMessage(nil, &hdr, payload)
		e.stats.CodedBytes += uint64(len(msg))
		emits = append(emits, core.Emit{To: dc2, Msg: msg})
	}
	return emits
}

// NextDeadline reports the earliest queue timeout, if any queue is open.
func (e *Encoder) NextDeadline() (core.Time, bool) {
	var min core.Time
	found := false
	consider := func(d core.Time) {
		if d == 0 {
			return
		}
		if !found || d < min {
			min, found = d, true
		}
	}
	for _, q := range e.inQs {
		if len(q.pkts) > 0 {
			consider(q.deadline)
		}
	}
	for _, set := range e.cross {
		for _, q := range set.qs {
			if len(q.pkts) > 0 {
				consider(q.deadline)
			}
		}
	}
	return min, found
}

// OnTimer flushes every queue whose deadline has passed ("On expiry of a
// queue timer, DC1 encodes all packets in the queue and sends them").
func (e *Encoder) OnTimer(now core.Time) []core.Emit {
	var emits []core.Emit
	for _, q := range e.inQs {
		if len(q.pkts) > 0 && q.deadline <= now {
			emits = append(emits, e.flushIn(now, q)...)
			e.stats.TimerFlushes++
		}
	}
	for _, k := range e.crossKeys {
		set := e.cross[k]
		for _, q := range set.qs {
			if len(q.pkts) > 0 && q.deadline <= now {
				emits = append(emits, e.flushCross(now, set.dc2, q)...)
				e.stats.TimerFlushes++
			}
		}
	}
	return emits
}

// Flush force-encodes everything still queued (end of experiment).
func (e *Encoder) Flush(now core.Time) []core.Emit {
	var emits []core.Emit
	for _, q := range e.inQs {
		emits = append(emits, e.flushIn(now, q)...)
	}
	for _, k := range e.crossKeys {
		set := e.cross[k]
		for _, q := range set.qs {
			emits = append(emits, e.flushCross(now, set.dc2, q)...)
		}
	}
	return emits
}
