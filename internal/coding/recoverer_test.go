package coding

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"jqos/internal/core"
	"jqos/internal/wire"
)

// harness builds an encoder+recoverer pair and ships parity between them.
type harness struct {
	t   *testing.T
	enc *Encoder
	rec *Recoverer
	// payloads remembers what each flow sent, keyed by packet.
	payloads map[core.PacketID][]byte
	// receivers maps flows to their receiving endpoints.
	receivers map[core.FlowID]core.NodeID
}

func newHarness(t *testing.T, cfg EncoderConfig) *harness {
	t.Helper()
	enc, err := NewEncoder(dc1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{
		t:         t,
		enc:       enc,
		rec:       NewRecoverer(dc2, DefaultRecovererConfig()),
		payloads:  make(map[core.PacketID][]byte),
		receivers: make(map[core.FlowID]core.NodeID),
	}
}

// send pushes a data packet through DC1 and relays parity to DC2.
func (h *harness) send(now core.Time, flow core.FlowID, seq core.Seq, receiver core.NodeID) []core.Emit {
	h.t.Helper()
	p := payloadFor(int(flow), int(seq))
	h.payloads[core.PacketID{Flow: flow, Seq: seq}] = p
	h.receivers[flow] = receiver
	var out []core.Emit
	for _, em := range h.enc.OnData(now, dc2, receiver, flow, seq, p) {
		out = append(out, h.deliverCoded(now, em)...)
	}
	return out
}

// deliverCoded feeds one encoder emit into the recoverer.
func (h *harness) deliverCoded(now core.Time, em core.Emit) []core.Emit {
	h.t.Helper()
	var hdr wire.Header
	body, err := wire.SplitMessage(&hdr, em.Msg)
	if err != nil {
		h.t.Fatal(err)
	}
	var meta wire.Coded
	shard, err := meta.Unmarshal(body)
	if err != nil {
		h.t.Fatal(err)
	}
	return h.rec.OnCoded(now, &hdr, &meta, shard)
}

// respondCoop answers every CoopReq in emits as the helpers would,
// except for receivers listed in silent (stragglers).
func (h *harness) respondCoop(now core.Time, emits []core.Emit, silent ...core.NodeID) []core.Emit {
	h.t.Helper()
	mute := map[core.NodeID]bool{}
	for _, s := range silent {
		mute[s] = true
	}
	var out []core.Emit
	for _, em := range emits {
		var hdr wire.Header
		body, err := wire.SplitMessage(&hdr, em.Msg)
		if err != nil {
			h.t.Fatal(err)
		}
		if hdr.Type != wire.TypeCoopReq || mute[em.To] {
			continue
		}
		var ref wire.CoopRef
		if _, err := ref.Unmarshal(body); err != nil {
			h.t.Fatal(err)
		}
		payload := h.payloads[hdr.ID()]
		if payload == nil {
			h.t.Fatalf("coop req for unknown packet %v", hdr.ID())
		}
		respHdr := wire.Header{
			Type: wire.TypeCoopResp, Service: core.ServiceCoding,
			Flow: hdr.Flow, Seq: hdr.Seq, TS: now, Src: em.To, Dst: dc2,
		}
		out = append(out, h.rec.OnCoopResp(now, &respHdr, &ref, payload)...)
	}
	return out
}

// findRecovered extracts TypeRecovered deliveries from emits.
func findRecovered(t *testing.T, emits []core.Emit) map[core.PacketID][]byte {
	t.Helper()
	got := map[core.PacketID][]byte{}
	for _, em := range emits {
		var hdr wire.Header
		body, err := wire.SplitMessage(&hdr, em.Msg)
		if err != nil {
			t.Fatal(err)
		}
		if hdr.Type == wire.TypeRecovered {
			got[hdr.ID()] = body
		}
	}
	return got
}

func countType(t *testing.T, emits []core.Emit, typ wire.MsgType) int {
	t.Helper()
	n := 0
	for _, em := range emits {
		var hdr wire.Header
		if _, err := wire.SplitMessage(&hdr, em.Msg); err != nil {
			t.Fatal(err)
		}
		if hdr.Type == typ {
			n++
		}
	}
	return n
}

func crossOnlyConfig() EncoderConfig {
	cfg := testConfig()
	cfg.InBlock = 0
	return cfg
}

func TestCooperativeRecoveryEndToEnd(t *testing.T) {
	h := newHarness(t, crossOnlyConfig())
	// Four flows to four distinct receivers fill a batch.
	var coded []core.Emit
	for f := 1; f <= 4; f++ {
		coded = append(coded, h.send(0, core.FlowID(f), 1, core.NodeID(100+f))...)
	}
	if h.rec.Batches() != 1 {
		t.Fatalf("batches = %d", h.rec.Batches())
	}
	// Receiver 101 lost flow 1 seq 1 and NACKs DC2.
	want := core.PacketID{Flow: 1, Seq: 1}
	emits := h.rec.OnNACK(time.Millisecond, 101, want, 0)
	if n := countType(t, emits, wire.TypeCoopReq); n != 3 {
		t.Fatalf("coop requests = %d, want 3", n)
	}
	for _, em := range emits {
		if em.To == 101 {
			t.Error("coop request sent to the requester")
		}
	}
	// Helpers respond; with r=2 parity cached, k−2 data already suffice,
	// but full response must also work.
	final := h.respondCoop(2*time.Millisecond, emits)
	got := findRecovered(t, final)
	if !bytes.Equal(got[want], h.payloads[want]) {
		t.Fatalf("recovered %q, want %q", got[want], h.payloads[want])
	}
	st := h.rec.Stats()
	if st.CoopStarted != 1 || st.CoopRecovered != 1 || st.NACKs != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestStragglerProtection(t *testing.T) {
	// r=2 parity means the recovery tolerates one silent helper (§4.4:
	// "DC2 may only require a few of the receivers to respond").
	h := newHarness(t, crossOnlyConfig())
	for f := 1; f <= 4; f++ {
		h.send(0, core.FlowID(f), 1, core.NodeID(100+f))
	}
	want := core.PacketID{Flow: 1, Seq: 1}
	reqs := h.rec.OnNACK(time.Millisecond, 101, want, 0)
	// Receiver 103 is a straggler and never answers. k=4, parity=2:
	// 2 data + 2 parity = 4 ≥ k → recoverable.
	final := h.respondCoop(2*time.Millisecond, reqs, 103)
	got := findRecovered(t, final)
	if !bytes.Equal(got[want], h.payloads[want]) {
		t.Fatalf("straggler recovery failed: %q", got[want])
	}
	if h.rec.Stats().StragglersSaved != 1 {
		t.Errorf("stragglers saved = %d", h.rec.Stats().StragglersSaved)
	}
}

func TestTooManyStragglersFailsSilently(t *testing.T) {
	h := newHarness(t, crossOnlyConfig())
	for f := 1; f <= 4; f++ {
		h.send(0, core.FlowID(f), 1, core.NodeID(100+f))
	}
	want := core.PacketID{Flow: 1, Seq: 1}
	reqs := h.rec.OnNACK(time.Millisecond, 101, want, 0)
	// Two of three helpers silent: 1 data + 2 parity = 3 < 4.
	final := h.respondCoop(2*time.Millisecond, reqs, 103, 104)
	if len(findRecovered(t, final)) != 0 {
		t.Fatal("recovered despite too many stragglers")
	}
	// Deadline passes → silent failure accounted.
	h.rec.OnTimer(time.Second)
	if h.rec.Stats().CoopFailed != 1 {
		t.Errorf("coop failed = %d", h.rec.Stats().CoopFailed)
	}
}

func TestInStreamServedFirst(t *testing.T) {
	cfg := testConfig() // InBlock=3
	h := newHarness(t, cfg)
	// One flow fills an in-stream block (3 pkts); cross queue stays open.
	for seq := 1; seq <= 3; seq++ {
		h.send(0, 7, core.Seq(seq), 101)
	}
	want := core.PacketID{Flow: 7, Seq: 2}
	emits := h.rec.OnNACK(time.Millisecond, 101, want, 0)
	// First NACK → in-stream parity forwarded to the receiver itself.
	if n := countType(t, emits, wire.TypeCoded); n != cfg.InParity {
		t.Fatalf("in-stream parity messages = %d", n)
	}
	for _, em := range emits {
		if em.To != 101 {
			t.Errorf("parity sent to %v, want receiver", em.To)
		}
	}
	if h.rec.Stats().InStreamServed != 1 {
		t.Errorf("stats: %+v", h.rec.Stats())
	}
	// No cross batch closed yet, so a repeat NACK falls back to
	// in-stream again rather than escalating into nothing.
	again := h.rec.OnNACK(2*time.Millisecond, 101, want, 0)
	if n := countType(t, again, wire.TypeCoded); n != cfg.InParity {
		t.Errorf("repeat NACK emitted %d parity messages", n)
	}
	if h.rec.Stats().InStreamServed != 2 {
		t.Errorf("stats after repeat: %+v", h.rec.Stats())
	}
}

func TestRepeatNACKEscalatesToCoop(t *testing.T) {
	cfg := testConfig() // in-stream AND cross-stream
	cfg.K = 3
	h := newHarness(t, cfg)
	// Three flows × 3 packets: fills in-stream blocks (per flow) and
	// three cross batches.
	for seq := 1; seq <= 3; seq++ {
		for f := 1; f <= 3; f++ {
			h.send(0, core.FlowID(f), core.Seq(seq), core.NodeID(100+f))
		}
	}
	want := core.PacketID{Flow: 1, Seq: 2}
	first := h.rec.OnNACK(time.Millisecond, 101, want, 0)
	if countType(t, first, wire.TypeCoded) == 0 || countType(t, first, wire.TypeCoopReq) != 0 {
		t.Fatalf("first NACK should be in-stream only")
	}
	second := h.rec.OnNACK(2*time.Millisecond, 101, want, 0)
	if countType(t, second, wire.TypeCoopReq) == 0 {
		t.Fatal("second NACK did not escalate to cooperative recovery")
	}
	final := h.respondCoop(3*time.Millisecond, second)
	got := findRecovered(t, final)
	if !bytes.Equal(got[want], h.payloads[want]) {
		t.Fatalf("escalated recovery failed")
	}
}

func TestSpeculativeNACKVerifiedAtParityArrival(t *testing.T) {
	// A NACK flagged WantVerify (speculative timer NACK) parks silently;
	// when parity arrives, DC2 probes the receiver BEFORE undertaking
	// recovery ("DC2 first checks with the receiver", §3.4).
	h := newHarness(t, crossOnlyConfig())
	want := core.PacketID{Flow: 1, Seq: 1}
	emits := h.rec.OnNACK(0, 101, want, wire.FlagWantVerify)
	if len(emits) != 0 {
		t.Fatalf("speculative NACK emitted immediately: %d", len(emits))
	}
	var woken []core.Emit
	for f := 1; f <= 4; f++ {
		woken = append(woken, h.send(time.Millisecond, core.FlowID(f), 1, core.NodeID(100+f))...)
	}
	if n := countType(t, woken, wire.TypeVerify); n != 1 {
		t.Fatalf("verify probes at parity arrival = %d", n)
	}
	if countType(t, woken, wire.TypeCoopReq) != 0 {
		t.Fatal("recovery started before verification")
	}
	// Receiver confirms the packet is still missing → recovery runs.
	resp := wire.Header{Type: wire.TypeVerifyResp, Flags: wire.FlagStillWanted,
		Flow: want.Flow, Seq: want.Seq, Src: 101, Dst: dc2}
	reqs := h.rec.OnVerifyResp(2*time.Millisecond, &resp)
	if countType(t, reqs, wire.TypeCoopReq) == 0 {
		t.Fatal("still-wanted verification did not start recovery")
	}
	final := h.respondCoop(3*time.Millisecond, reqs)
	if got := findRecovered(t, final); !bytes.Equal(got[want], h.payloads[want]) {
		t.Fatal("verified recovery failed")
	}
	if h.rec.Stats().Verifies != 1 || h.rec.Stats().PendingMatched != 1 {
		t.Errorf("stats: %+v", h.rec.Stats())
	}
}

func TestSpuriousNACKDroppedOnVerify(t *testing.T) {
	// The direct packet arrived while the NACK was parked: the receiver
	// answers the probe with not-wanted and no recovery is pushed.
	h := newHarness(t, crossOnlyConfig())
	want := core.PacketID{Flow: 1, Seq: 1}
	h.rec.OnNACK(0, 101, want, wire.FlagWantVerify)
	var woken []core.Emit
	for f := 1; f <= 4; f++ {
		woken = append(woken, h.send(time.Millisecond, core.FlowID(f), 1, core.NodeID(100+f))...)
	}
	if countType(t, woken, wire.TypeVerify) != 1 {
		t.Fatal("no probe at parity arrival")
	}
	resp := wire.Header{Type: wire.TypeVerifyResp, Flow: want.Flow, Seq: want.Seq, Src: 101, Dst: dc2}
	if out := h.rec.OnVerifyResp(2*time.Millisecond, &resp); len(out) != 0 {
		t.Fatal("spurious NACK still triggered recovery")
	}
	// The pending entry is gone: nothing left to resurrect.
	if _, dl := h.rec.NextDeadline(); !dl {
		t.Log("no pending state left (expected)")
	}
}

func TestHardEvidenceNACKRecoversWithoutProbe(t *testing.T) {
	// Gap/pump NACKs carry no WantVerify flag: parity arrival recovers
	// immediately, no probe round trip.
	h := newHarness(t, crossOnlyConfig())
	want := core.PacketID{Flow: 1, Seq: 1}
	h.rec.OnNACK(0, 101, want, 0)
	var woken []core.Emit
	for f := 1; f <= 4; f++ {
		woken = append(woken, h.send(time.Millisecond, core.FlowID(f), 1, core.NodeID(100+f))...)
	}
	if countType(t, woken, wire.TypeVerify) != 0 {
		t.Fatal("hard-evidence NACK was probed")
	}
	if countType(t, woken, wire.TypeCoopReq) == 0 {
		t.Fatal("parked NACK not woken by parity arrival")
	}
	final := h.respondCoop(2*time.Millisecond, woken)
	if got := findRecovered(t, final); !bytes.Equal(got[want], h.payloads[want]) {
		t.Fatal("late recovery failed")
	}
}

func TestPendingNACKExpires(t *testing.T) {
	cfg := DefaultRecovererConfig()
	cfg.PendingTTL = 100 * time.Millisecond
	rec := NewRecoverer(dc2, cfg)
	rec.OnNACK(0, 101, core.PacketID{Flow: 1, Seq: 1}, 0)
	rec.OnTimer(200 * time.Millisecond)
	st := rec.Stats()
	if st.PendingExpired != 1 || st.Unrecoverable != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestBatchTTLExpiry(t *testing.T) {
	h := newHarness(t, crossOnlyConfig())
	for f := 1; f <= 4; f++ {
		h.send(0, core.FlowID(f), 1, core.NodeID(100+f))
	}
	if h.rec.Batches() != 1 {
		t.Fatal("no batch stored")
	}
	h.rec.OnTimer(DefaultRecovererConfig().BatchTTL + time.Second)
	if h.rec.Batches() != 0 {
		t.Error("batch survived TTL")
	}
	// NACK after expiry parks (nothing covers it).
	emits := h.rec.OnNACK(3*time.Second, 101, core.PacketID{Flow: 1, Seq: 1}, 0)
	if countType(t, emits, wire.TypeCoopReq) != 0 {
		t.Error("recovery from expired batch")
	}
}

func TestDuplicateAndAlienCoopRespIgnored(t *testing.T) {
	h := newHarness(t, crossOnlyConfig())
	for f := 1; f <= 4; f++ {
		h.send(0, core.FlowID(f), 1, core.NodeID(100+f))
	}
	want := core.PacketID{Flow: 1, Seq: 1}
	reqs := h.rec.OnNACK(time.Millisecond, 101, want, 0)
	// Build one legitimate response, deliver it twice, plus one naming a
	// packet outside the batch.
	var hdr wire.Header
	if _, err := wire.SplitMessage(&hdr, reqs[0].Msg); err != nil {
		t.Fatal(err)
	}
	ref := wire.CoopRef{Batch: 1, Want: want}
	respHdr := wire.Header{Type: wire.TypeCoopResp, Flow: hdr.Flow, Seq: hdr.Seq, Src: 102, Dst: dc2}
	h.rec.OnCoopResp(2*time.Millisecond, &respHdr, &ref, h.payloads[hdr.ID()])
	h.rec.OnCoopResp(2*time.Millisecond, &respHdr, &ref, h.payloads[hdr.ID()])
	alienHdr := wire.Header{Type: wire.TypeCoopResp, Flow: 99, Seq: 99, Src: 102, Dst: dc2}
	h.rec.OnCoopResp(2*time.Millisecond, &alienHdr, &ref, []byte("alien"))
	if used := h.rec.Stats().CoopRespsUsed; used != 1 {
		t.Errorf("responses used = %d, want 1", used)
	}
	// Response for an unknown recovery is ignored too.
	ghostRef := wire.CoopRef{Batch: 42, Want: want}
	if out := h.rec.OnCoopResp(2*time.Millisecond, &respHdr, &ghostRef, []byte("x")); out != nil {
		t.Error("ghost recovery produced emits")
	}
}

func TestDuplicateParityIgnored(t *testing.T) {
	h := newHarness(t, crossOnlyConfig())
	var coded []core.Emit
	for f := 1; f <= 4; f++ {
		for _, em := range h.enc.OnData(0, dc2, core.NodeID(100+f), core.FlowID(f), 1, payloadFor(f, 1)) {
			coded = append(coded, em)
			h.payloads[core.PacketID{Flow: core.FlowID(f), Seq: 1}] = payloadFor(f, 1)
		}
	}
	if len(coded) != 2 {
		t.Fatalf("coded = %d", len(coded))
	}
	h.deliverCoded(0, coded[0])
	h.deliverCoded(0, coded[0]) // duplicate shard
	h.deliverCoded(0, coded[1])
	if st := h.rec.Stats(); st.CodedStored != 2 {
		t.Errorf("stored = %d, want 2", st.CodedStored)
	}
}

func TestSingleFlowBatchActsAsDuplication(t *testing.T) {
	// A timer-flushed single-packet batch (k=1, r=2): parity alone must
	// recover the packet, no helpers needed.
	cfg := crossOnlyConfig()
	h := newHarness(t, cfg)
	h.send(0, 1, 1, 101)
	var coded []core.Emit
	for _, em := range h.enc.OnTimer(cfg.CrossTimeout) {
		coded = append(coded, h.deliverCoded(cfg.CrossTimeout, em)...)
	}
	want := core.PacketID{Flow: 1, Seq: 1}
	emits := h.rec.OnNACK(cfg.CrossTimeout+time.Millisecond, 101, want, 0)
	got := findRecovered(t, emits)
	if !bytes.Equal(got[want], h.payloads[want]) {
		t.Fatalf("k=1 recovery failed: %v", got)
	}
	if countType(t, emits, wire.TypeCoopReq) != 0 {
		t.Error("k=1 recovery asked for helpers")
	}
}

func TestConcurrentRecoveriesSameBatch(t *testing.T) {
	// Two receivers lose different packets of the same batch; both must
	// recover independently.
	h := newHarness(t, crossOnlyConfig())
	for f := 1; f <= 4; f++ {
		h.send(0, core.FlowID(f), 1, core.NodeID(100+f))
	}
	w1 := core.PacketID{Flow: 1, Seq: 1}
	w2 := core.PacketID{Flow: 2, Seq: 1}
	reqs1 := h.rec.OnNACK(time.Millisecond, 101, w1, 0)
	reqs2 := h.rec.OnNACK(time.Millisecond, 102, w2, 0)
	// A repeat NACK for an in-flight recovery must not duplicate requests.
	if emits := h.rec.OnNACK(time.Millisecond, 101, w1, 0); countType(t, emits, wire.TypeCoopReq) != 0 {
		t.Error("duplicate recovery started while in flight")
	}
	final1 := h.respondCoop(2*time.Millisecond, reqs1)
	final2 := h.respondCoop(2*time.Millisecond, reqs2)
	if got := findRecovered(t, final1); !bytes.Equal(got[w1], h.payloads[w1]) {
		t.Error("first recovery failed")
	}
	if got := findRecovered(t, final2); !bytes.Equal(got[w2], h.payloads[w2]) {
		t.Error("second recovery failed")
	}
	// Immediately after completion, a racing retry NACK is absorbed by
	// the recently-recovered memory (no duplicate cooperative round)...
	if emits := h.rec.OnNACK(3*time.Millisecond, 101, w1, 0); countType(t, emits, wire.TypeCoopReq) != 0 {
		t.Error("racing retry NACK restarted a fresh recovery")
	}
	// ...but once that window passes, a fresh NACK may restart recovery
	// (the recovered packet could itself be lost on the access path).
	after := 3*time.Millisecond + DefaultRecovererConfig().RecoveryDeadline
	if emits := h.rec.OnNACK(after, 101, w1, 0); countType(t, emits, wire.TypeCoopReq) == 0 {
		t.Error("post-window NACK ignored")
	}
}

func TestRecovererConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero TTL config did not panic")
		}
	}()
	NewRecoverer(dc2, RecovererConfig{})
}

func TestRecovererStringer(t *testing.T) {
	rec := NewRecoverer(dc2, DefaultRecovererConfig())
	if s := rec.String(); !strings.Contains(s, "0 batches") {
		t.Errorf("String = %q", s)
	}
}

func TestNextDeadlineTracksState(t *testing.T) {
	h := newHarness(t, crossOnlyConfig())
	if _, ok := h.rec.NextDeadline(); ok {
		t.Error("deadline on empty recoverer")
	}
	for f := 1; f <= 4; f++ {
		h.send(0, core.FlowID(f), 1, core.NodeID(100+f))
	}
	dl, ok := h.rec.NextDeadline()
	if !ok || dl != DefaultRecovererConfig().BatchTTL {
		t.Errorf("deadline = %v %v", dl, ok)
	}
	h.rec.OnNACK(time.Millisecond, 101, core.PacketID{Flow: 1, Seq: 1}, 0)
	dl, ok = h.rec.NextDeadline()
	if !ok || dl != time.Millisecond+DefaultRecovererConfig().RecoveryDeadline {
		t.Errorf("recovery deadline = %v", dl)
	}
}
