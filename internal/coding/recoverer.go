package coding

import (
	"fmt"

	"jqos/internal/core"
	"jqos/internal/rs"
	"jqos/internal/wire"
)

// RecovererConfig tunes the DC2-side recovery engine.
type RecovererConfig struct {
	// BatchTTL is how long parity packets stay cached awaiting NACKs.
	BatchTTL core.Time
	// RecoveryDeadline bounds a cooperative recovery: if too few helper
	// responses arrive in time, the recovery fails silently (§4.4,
	// straggler cutoff).
	RecoveryDeadline core.Time
	// PendingTTL is how long an unmatched NACK waits for its parity to
	// arrive (the Δ wait of §6.1) before being dropped.
	PendingTTL core.Time
	// VerifyFirst enables the spurious-recovery check: a NACK arriving
	// before its parity triggers a TypeVerify probe to the receiver
	// instead of immediately parking (§3.4).
	VerifyFirst bool
}

// DefaultRecovererConfig returns deployment defaults.
func DefaultRecovererConfig() RecovererConfig {
	return RecovererConfig{
		BatchTTL:         2e9,   // 2s: covers paper's 1–3s outages plus pull latency
		RecoveryDeadline: 250e6, // 250ms helper budget
		PendingTTL:       500e6,
		VerifyFirst:      true,
	}
}

// RecovererStats counts recovery outcomes.
type RecovererStats struct {
	CodedStored     uint64
	NACKs           uint64
	InStreamServed  uint64 // NACKs answered with an in-stream parity packet
	CoopStarted     uint64
	CoopRecovered   uint64
	CoopFailed      uint64 // deadline passed without enough shards
	CoopReqsSent    uint64
	CoopRespsUsed   uint64
	StragglersSaved uint64 // recoveries that succeeded despite missing helpers
	Verifies        uint64
	PendingMatched  uint64 // parked NACKs satisfied by later parity
	PendingExpired  uint64
	Unrecoverable   uint64 // NACKs with no covering batch at all
}

// batchState is one coded batch cached at DC2.
type batchState struct {
	meta     wire.Coded // Sources/K/R/Kind (Index varies per shard)
	parity   map[int][]byte
	shardLen int
	expires  core.Time
}

type recoveryKey struct {
	batch uint64
	want  core.PacketID
}

// recoveryState is one cooperative recovery in flight.
type recoveryState struct {
	key       recoveryKey
	requester core.NodeID
	data      map[int][]byte // batch position -> packed data shard
	deadline  core.Time
	helpers   int // requests sent
	done      bool
}

type pendingNACK struct {
	id         core.PacketID
	requester  core.NodeID
	expires    core.Time
	wantVerify bool
	probed     bool
}

// Recoverer is the DC2-side CR-WAN engine: caches parity, answers NACKs,
// and runs cooperative recovery. Sans-IO like the Encoder.
type Recoverer struct {
	cfg  RecovererConfig
	self core.NodeID

	batches    map[uint64]*batchState
	byPacket   map[core.PacketID][]uint64
	recoveries map[recoveryKey]*recoveryState
	pending    map[core.PacketID]*pendingNACK
	// attempts tracks per-packet recovery escalation: first NACK gets the
	// cheap in-stream answer (when available), a repeat NACK escalates to
	// cooperative recovery.
	attempts map[core.PacketID]int
	// recent remembers freshly completed recoveries so retry NACKs that
	// raced the recovered packet do not trigger duplicate cooperative
	// rounds (and duplicate DC2 egress).
	recent map[core.PacketID]core.Time
	codecs map[[2]int]*rs.Codec
	stats  RecovererStats
}

// NewRecoverer builds the DC2 engine.
func NewRecoverer(self core.NodeID, cfg RecovererConfig) *Recoverer {
	if cfg.BatchTTL <= 0 || cfg.RecoveryDeadline <= 0 || cfg.PendingTTL <= 0 {
		panic("coding: recoverer TTLs must be positive")
	}
	return &Recoverer{
		cfg:        cfg,
		self:       self,
		batches:    make(map[uint64]*batchState),
		byPacket:   make(map[core.PacketID][]uint64),
		recoveries: make(map[recoveryKey]*recoveryState),
		pending:    make(map[core.PacketID]*pendingNACK),
		attempts:   make(map[core.PacketID]int),
		recent:     make(map[core.PacketID]core.Time),
		codecs:     make(map[[2]int]*rs.Codec),
	}
}

// Stats returns a copy of the counters.
func (r *Recoverer) Stats() RecovererStats { return r.stats }

// Batches returns the number of cached batches (for tests/metrics).
func (r *Recoverer) Batches() int { return len(r.batches) }

func (r *Recoverer) codec(k, m int) *rs.Codec {
	key := [2]int{k, m}
	if c, ok := r.codecs[key]; ok {
		return c
	}
	c, err := rs.NewCodec(k, m)
	if err != nil {
		panic("coding: " + err.Error())
	}
	r.codecs[key] = c
	return c
}

// OnCoded ingests a parity packet from DC1. If a parked NACK is covered by
// the new batch, recovery starts immediately ("delay in arrival of coded
// packets at DC2" is one of the paper's tail causes — parking hides it).
func (r *Recoverer) OnCoded(now core.Time, hdr *wire.Header, meta *wire.Coded, shard []byte) []core.Emit {
	b := r.batches[meta.Batch]
	if b == nil {
		b = &batchState{
			meta:     *meta,
			parity:   make(map[int][]byte),
			shardLen: len(shard),
		}
		b.meta.Sources = append([]wire.SourceRef(nil), meta.Sources...)
		r.batches[meta.Batch] = b
		for _, src := range b.meta.Sources {
			id := core.PacketID{Flow: src.Flow, Seq: src.Seq}
			r.byPacket[id] = append(r.byPacket[id], meta.Batch)
		}
	}
	b.expires = now + r.cfg.BatchTTL
	if _, dup := b.parity[int(meta.Index)]; !dup {
		b.parity[int(meta.Index)] = append([]byte(nil), shard...)
		r.stats.CodedStored++
	}
	// Wake any parked NACKs this batch can serve. Hard-evidence NACKs
	// recover immediately; speculative ones are verified first (the
	// direct packet may have arrived in the meantime).
	var emits []core.Emit
	for _, src := range b.meta.Sources {
		id := core.PacketID{Flow: src.Flow, Seq: src.Seq}
		if p, ok := r.pending[id]; ok {
			if p.wantVerify {
				if !p.probed {
					p.probed = true
					r.stats.Verifies++
					hdr := wire.Header{
						Type: wire.TypeVerify, Service: core.ServiceCoding,
						Flow: id.Flow, Seq: id.Seq, TS: now, Src: r.self, Dst: p.requester,
					}
					emits = append(emits, core.Emit{To: p.requester, Msg: wire.AppendMessage(nil, &hdr, nil)})
				}
				continue
			}
			delete(r.pending, id)
			r.stats.PendingMatched++
			emits = append(emits, r.recover(now, id, p.requester, 0)...)
		}
	}
	return emits
}

// OnNACK handles a receiver's loss report (§4.4 step 1). from is the
// requesting receiver.
func (r *Recoverer) OnNACK(now core.Time, from core.NodeID, id core.PacketID, flags uint16) []core.Emit {
	r.stats.NACKs++
	return r.recover(now, id, from, flags)
}

// recover picks the recovery type for one missing packet.
func (r *Recoverer) recover(now core.Time, id core.PacketID, from core.NodeID, flags uint16) []core.Emit {
	if until, ok := r.recent[id]; ok && until > now {
		return nil // just recovered; the repaired packet is in flight
	}
	attempt := r.attempts[id]
	r.attempts[id] = attempt + 1

	inB, crossB := r.coveringBatches(id)
	// First line of defense: in-stream parity, decodable locally by the
	// receiver (it holds the sibling data packets). Escalate past it on
	// a repeat NACK.
	if inB != nil && attempt == 0 {
		r.stats.InStreamServed++
		return r.sendParity(now, inB, from)
	}
	if crossB != nil {
		return r.startCoop(now, crossB, id, from)
	}
	if inB != nil {
		// Nothing but in-stream protection left; resend it.
		r.stats.InStreamServed++
		return r.sendParity(now, inB, from)
	}
	// No covering batch (yet). Park the NACK. Speculative NACKs (the
	// receiver flagged uncertainty) will be verified with the receiver
	// when their parity arrives — "DC2 first checks with the receiver
	// before undertaking the recovery" (§3.4) — so recoveries that a
	// direct arrival has since made moot are never pushed.
	if _, parked := r.pending[id]; !parked {
		r.pending[id] = &pendingNACK{
			id: id, requester: from, expires: now + r.cfg.PendingTTL,
			wantVerify: r.cfg.VerifyFirst && flags&wire.FlagWantVerify != 0,
		}
	}
	return nil
}

// coveringBatches finds the freshest in-stream and cross-stream batches
// that include id and still hold parity.
func (r *Recoverer) coveringBatches(id core.PacketID) (in, cross *batchState) {
	for _, bid := range r.byPacket[id] {
		b := r.batches[bid]
		if b == nil || len(b.parity) == 0 {
			continue
		}
		if b.meta.Kind == wire.InStream {
			in = b
		} else {
			cross = b
		}
	}
	return in, cross
}

// sendParity forwards a batch's parity shards to the receiver for local
// decode (in-stream recovery: latency y + 2δ, no helpers involved).
func (r *Recoverer) sendParity(now core.Time, b *batchState, to core.NodeID) []core.Emit {
	emits := make([]core.Emit, 0, len(b.parity))
	for idx, shard := range b.parity {
		meta := b.meta
		meta.Index = uint8(idx)
		meta.ShardLen = uint16(len(shard))
		hdr := wire.Header{
			Type: wire.TypeCoded, Service: core.ServiceCoding,
			TS: now, Src: r.self, Dst: to,
		}
		payload := meta.AppendMarshal(nil, shard)
		emits = append(emits, core.Emit{To: to, Msg: wire.AppendMessage(nil, &hdr, payload)})
	}
	return emits
}

// startCoop launches cooperative recovery (§4.4 step 2): ask every helper
// receiver in the batch for its data packet.
func (r *Recoverer) startCoop(now core.Time, b *batchState, id core.PacketID, from core.NodeID) []core.Emit {
	key := recoveryKey{batch: b.meta.Batch, want: id}
	if rec := r.recoveries[key]; rec != nil && !rec.done {
		return nil // already in flight
	}
	rec := &recoveryState{
		key:       key,
		requester: from,
		data:      make(map[int][]byte),
		deadline:  now + r.cfg.RecoveryDeadline,
	}
	r.recoveries[key] = rec
	r.stats.CoopStarted++
	var emits []core.Emit
	for _, src := range b.meta.Sources {
		sid := core.PacketID{Flow: src.Flow, Seq: src.Seq}
		if sid == id {
			continue // the missing packet itself
		}
		if src.Receiver == from {
			continue // the requester cannot help with its own path
		}
		ref := wire.CoopRef{Batch: b.meta.Batch, Want: id}
		hdr := wire.Header{
			Type: wire.TypeCoopReq, Service: core.ServiceCoding,
			Flow: src.Flow, Seq: src.Seq, TS: now, Src: r.self, Dst: src.Receiver,
		}
		msg := wire.AppendMessage(nil, &hdr, ref.AppendMarshal(nil, nil))
		emits = append(emits, core.Emit{To: src.Receiver, Msg: msg})
		rec.helpers++
		r.stats.CoopReqsSent++
	}
	// Degenerate batch (k=1 or no helpers): try to decode from parity
	// alone — with systematic RS this only works when parity count ≥ k.
	emits = append(emits, r.tryDecode(now, rec)...)
	return emits
}

// OnCoopResp ingests a helper's data packet (§4.4 step 3) and decodes when
// enough shards are present.
func (r *Recoverer) OnCoopResp(now core.Time, hdr *wire.Header, ref *wire.CoopRef, payload []byte) []core.Emit {
	key := recoveryKey{batch: ref.Batch, want: ref.Want}
	rec := r.recoveries[key]
	if rec == nil || rec.done {
		return nil
	}
	b := r.batches[ref.Batch]
	if b == nil {
		return nil
	}
	pos := b.sourcePos(hdr.ID())
	if pos < 0 {
		return nil // response names a packet outside the batch
	}
	if _, dup := rec.data[pos]; dup {
		return nil
	}
	shard := make([]byte, b.shardLen)
	if _, err := rs.Pack(payload, shard); err != nil {
		return nil // oversized/corrupt response; straggler handling covers it
	}
	rec.data[pos] = shard
	r.stats.CoopRespsUsed++
	return r.tryDecode(now, rec)
}

// sourcePos returns the batch position of a packet, or -1.
func (b *batchState) sourcePos(id core.PacketID) int {
	for i, src := range b.meta.Sources {
		if src.Flow == id.Flow && src.Seq == id.Seq {
			return i
		}
	}
	return -1
}

// tryDecode reconstructs and delivers the wanted packet once
// data+parity ≥ k.
func (r *Recoverer) tryDecode(now core.Time, rec *recoveryState) []core.Emit {
	b := r.batches[rec.key.batch]
	if b == nil || rec.done {
		return nil
	}
	k := int(b.meta.K)
	if len(rec.data)+len(b.parity) < k {
		return nil
	}
	shards := make([][]byte, k+int(b.meta.R))
	for pos, d := range rec.data {
		shards[pos] = d
	}
	for idx, p := range b.parity {
		if k+idx < len(shards) {
			shards[k+idx] = p
		}
	}
	codec := r.codec(k, int(b.meta.R))
	if err := codec.Reconstruct(shards); err != nil {
		return nil // not enough yet (or inconsistent sizes); wait for more
	}
	wantPos := b.sourcePos(rec.key.want)
	if wantPos < 0 {
		return nil
	}
	payload, err := rs.Unpack(shards[wantPos])
	if err != nil {
		return nil
	}
	rec.done = true
	r.recent[rec.key.want] = now + r.cfg.RecoveryDeadline
	r.stats.CoopRecovered++
	if len(rec.data) < rec.helpers {
		r.stats.StragglersSaved++
	}
	hdr := wire.Header{
		Type: wire.TypeRecovered, Service: core.ServiceCoding,
		Flow: rec.key.want.Flow, Seq: rec.key.want.Seq,
		TS: now, Src: r.self, Dst: rec.requester,
	}
	return []core.Emit{{To: rec.requester, Msg: wire.AppendMessage(nil, &hdr, payload)}}
}

// OnVerifyResp resolves a verify probe: a still-wanted packet proceeds to
// recovery; otherwise the parked NACK was spurious and is dropped.
func (r *Recoverer) OnVerifyResp(now core.Time, hdr *wire.Header) []core.Emit {
	id := hdr.ID()
	p, ok := r.pending[id]
	delete(r.pending, id)
	if hdr.Flags&wire.FlagStillWanted == 0 {
		delete(r.attempts, id)
		return nil
	}
	if !ok {
		return nil
	}
	r.stats.PendingMatched++
	return r.recover(now, id, p.requester, 0)
}

// NextDeadline reports the earliest engine timeout.
func (r *Recoverer) NextDeadline() (core.Time, bool) {
	var min core.Time
	found := false
	consider := func(d core.Time) {
		if !found || d < min {
			min, found = d, true
		}
	}
	for _, b := range r.batches {
		consider(b.expires)
	}
	for _, rec := range r.recoveries {
		if !rec.done {
			consider(rec.deadline)
		}
	}
	for _, p := range r.pending {
		consider(p.expires)
	}
	return min, found
}

// OnTimer expires batches, fails silent recoveries past deadline, and
// drops stale parked NACKs.
func (r *Recoverer) OnTimer(now core.Time) []core.Emit {
	for bid, b := range r.batches {
		if b.expires <= now {
			for _, src := range b.meta.Sources {
				id := core.PacketID{Flow: src.Flow, Seq: src.Seq}
				r.byPacket[id] = removeBatch(r.byPacket[id], bid)
				if len(r.byPacket[id]) == 0 {
					delete(r.byPacket, id)
					delete(r.attempts, id)
				}
			}
			delete(r.batches, bid)
		}
	}
	for key, rec := range r.recoveries {
		if rec.done || rec.deadline <= now {
			if !rec.done {
				r.stats.CoopFailed++
			}
			delete(r.recoveries, key)
		}
	}
	for id, p := range r.pending {
		if p.expires <= now {
			delete(r.pending, id)
			r.stats.PendingExpired++
			r.stats.Unrecoverable++
		}
	}
	for id, until := range r.recent {
		if until <= now {
			delete(r.recent, id)
		}
	}
	return nil
}

func removeBatch(s []uint64, bid uint64) []uint64 {
	for i, v := range s {
		if v == bid {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// String implements fmt.Stringer for debugging.
func (r *Recoverer) String() string {
	return fmt.Sprintf("recoverer(%v: %d batches, %d recoveries, %d pending)",
		r.self, len(r.batches), len(r.recoveries), len(r.pending))
}
