package coding

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"jqos/internal/core"
	"jqos/internal/rs"
	"jqos/internal/wire"
)

const (
	dc1 core.NodeID = 1
	dc2 core.NodeID = 2
)

func testConfig() EncoderConfig {
	cfg := DefaultEncoderConfig()
	cfg.K = 4
	cfg.CrossParity = 2
	cfg.InBlock = 3
	cfg.InParity = 1
	cfg.CrossQueues = 2
	cfg.CrossTimeout = 30 * time.Millisecond
	cfg.InTimeout = 50 * time.Millisecond
	return cfg
}

func mustEncoder(t *testing.T, cfg EncoderConfig) *Encoder {
	t.Helper()
	e, err := NewEncoder(dc1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// decodeEmit parses one coded emit into (header, meta, shard).
func decodeEmit(t *testing.T, em core.Emit) (wire.Header, wire.Coded, []byte) {
	t.Helper()
	var h wire.Header
	body, err := wire.SplitMessage(&h, em.Msg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != wire.TypeCoded {
		t.Fatalf("emit type = %v", h.Type)
	}
	var c wire.Coded
	shard, err := c.Unmarshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return h, c, shard
}

func payloadFor(flow, seq int) []byte {
	return []byte(fmt.Sprintf("flow-%d-seq-%d-payload", flow, seq))
}

func TestConfigValidation(t *testing.T) {
	bad := []EncoderConfig{
		{K: 0, CrossParity: 1, CrossQueues: 1, CrossTimeout: 1},
		{K: 201, CrossParity: 1, CrossQueues: 1, CrossTimeout: 1},
		{K: 4, CrossParity: 0, CrossQueues: 1, CrossTimeout: 1},
		{K: 4, CrossParity: 1, InBlock: 5, InParity: 0, CrossQueues: 1, CrossTimeout: 1, InTimeout: 1},
		{K: 4, CrossParity: 1, CrossQueues: 0, CrossTimeout: 1},
		{K: 4, CrossParity: 1, CrossQueues: 1, CrossTimeout: 0},
		{K: 4, CrossParity: 1, InBlock: 5, InParity: 1, CrossQueues: 1, CrossTimeout: 1, InTimeout: 0},
	}
	for i, cfg := range bad {
		if _, err := NewEncoder(dc1, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewEncoder(dc1, DefaultEncoderConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestAlpha(t *testing.T) {
	cfg := DefaultEncoderConfig() // r=2/6, s=1/5
	want := 2.0/6 + 1.0/5
	if a := cfg.Alpha(); a < want-1e-9 || a > want+1e-9 {
		t.Errorf("alpha = %v, want %v", a, want)
	}
	cfg.InBlock = 0
	if a := cfg.Alpha(); a != 2.0/6 {
		t.Errorf("alpha without in-stream = %v", a)
	}
}

func TestCrossBatchFillsAtK(t *testing.T) {
	cfg := testConfig()
	cfg.InBlock = 0 // cross only
	e := mustEncoder(t, cfg)
	var emits []core.Emit
	// K distinct flows, one packet each → exactly one batch of r=2.
	for f := 1; f <= cfg.K; f++ {
		emits = append(emits, e.OnData(0, dc2, core.NodeID(100+f), core.FlowID(f), 1, payloadFor(f, 1))...)
	}
	if len(emits) != cfg.CrossParity {
		t.Fatalf("emitted %d parity messages, want %d", len(emits), cfg.CrossParity)
	}
	h, meta, shard := decodeEmit(t, emits[0])
	if h.Dst != dc2 || h.Src != dc1 || h.Service != core.ServiceCoding {
		t.Errorf("header: %+v", h)
	}
	if meta.Kind != wire.CrossStream || int(meta.K) != cfg.K || int(meta.R) != cfg.CrossParity {
		t.Errorf("meta: %+v", meta)
	}
	if len(meta.Sources) != cfg.K {
		t.Fatalf("sources = %d", len(meta.Sources))
	}
	// Sources must be distinct flows with the right receivers.
	seen := map[core.FlowID]bool{}
	for _, s := range meta.Sources {
		if seen[s.Flow] {
			t.Errorf("flow %d repeated in batch", s.Flow)
		}
		seen[s.Flow] = true
		if s.Receiver != core.NodeID(100+int(s.Flow)) {
			t.Errorf("source receiver: %+v", s)
		}
	}
	if int(meta.ShardLen) != len(shard) {
		t.Errorf("shard len %d vs declared %d", len(shard), meta.ShardLen)
	}
	st := e.Stats()
	if st.CrossBatches != 1 || st.CrossCoded != 2 || st.DataPackets != uint64(cfg.K) {
		t.Errorf("stats: %+v", st)
	}
}

func TestCrossParityDecodes(t *testing.T) {
	// The parity the encoder emits must actually reconstruct a lost
	// packet: erase one source, rebuild from the other k-1 + parity.
	cfg := testConfig()
	cfg.InBlock = 0
	e := mustEncoder(t, cfg)
	payloads := map[core.FlowID][]byte{}
	var emits []core.Emit
	for f := 1; f <= cfg.K; f++ {
		p := payloadFor(f, 1)
		payloads[core.FlowID(f)] = p
		emits = append(emits, e.OnData(0, dc2, 100, core.FlowID(f), 1, p)...)
	}
	_, meta, shard0 := decodeEmit(t, emits[0])
	// Rebuild shards: lose source 2, keep the rest + parity 0.
	k := int(meta.K)
	shards := make([][]byte, k+int(meta.R))
	shardLen := int(meta.ShardLen)
	for i, src := range meta.Sources {
		if i == 2 {
			continue
		}
		buf := make([]byte, shardLen)
		if _, err := rs.Pack(payloads[src.Flow], buf); err != nil {
			t.Fatal(err)
		}
		shards[i] = buf
	}
	shards[k+int(meta.Index)] = shard0
	codec, _ := rs.NewCodec(k, int(meta.R))
	if err := codec.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	got, err := rs.Unpack(shards[2])
	if err != nil {
		t.Fatal(err)
	}
	if want := payloads[meta.Sources[2].Flow]; !bytes.Equal(got, want) {
		t.Errorf("reconstructed %q, want %q", got, want)
	}
}

func TestInStreamBlockFills(t *testing.T) {
	cfg := testConfig()
	e := mustEncoder(t, cfg)
	var inEmits []core.Emit
	for seq := 1; seq <= cfg.InBlock; seq++ {
		for _, em := range e.OnData(0, dc2, 100, 7, core.Seq(seq), payloadFor(7, seq)) {
			_, meta, _ := decodeEmit(t, em)
			if meta.Kind == wire.InStream {
				inEmits = append(inEmits, em)
			}
		}
	}
	if len(inEmits) != cfg.InParity {
		t.Fatalf("in-stream emits = %d, want %d", len(inEmits), cfg.InParity)
	}
	_, meta, _ := decodeEmit(t, inEmits[0])
	if int(meta.K) != cfg.InBlock || len(meta.Sources) != cfg.InBlock {
		t.Errorf("meta: %+v", meta)
	}
	for i, s := range meta.Sources {
		if s.Flow != 7 || int(s.Seq) != i+1 {
			t.Errorf("source %d: %+v", i, s)
		}
	}
}

func TestInStreamDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.InBlock = 0 // Skype case study: s = 0
	e := mustEncoder(t, cfg)
	for seq := 1; seq <= 20; seq++ {
		for _, em := range e.OnData(0, dc2, 100, 7, core.Seq(seq), payloadFor(7, seq)) {
			_, meta, _ := decodeEmit(t, em)
			if meta.Kind == wire.InStream {
				t.Fatal("in-stream parity with InBlock=0")
			}
		}
	}
	if e.Stats().InBatches != 0 {
		t.Error("in-stream batches counted")
	}
}

func TestSameFlowNeverSharesCrossQueue(t *testing.T) {
	// Two queues, one flow sending many packets: each queue may hold at
	// most one packet of the flow; the third packet forces eviction
	// (single-packet queue) per Algorithm 1 lines 13–19.
	cfg := testConfig()
	cfg.InBlock = 0
	cfg.CrossQueues = 2
	e := mustEncoder(t, cfg)
	var emits []core.Emit
	for seq := 1; seq <= 6; seq++ {
		emits = append(emits, e.OnData(0, dc2, 100, 7, core.Seq(seq), payloadFor(7, seq))...)
	}
	// Single flow can never fill a K=4 batch; everything is evictions.
	if len(emits) != 0 {
		t.Errorf("unexpected emits: %d", len(emits))
	}
	if e.Stats().Evicted == 0 {
		t.Error("no evictions recorded for single-flow overload")
	}
	// Verify the invariant directly on the internal queues.
	for _, set := range e.cross {
		for _, q := range set.qs {
			flows := map[core.FlowID]int{}
			for _, p := range q.pkts {
				flows[p.ref.Flow]++
				if flows[p.ref.Flow] > 1 {
					t.Fatal("queue holds two packets of one flow")
				}
			}
		}
	}
}

func TestAllQueuesHoldFlowFlushesOldest(t *testing.T) {
	// Fill both queues with ≥2 packets including flow 7 in each; the next
	// flow-7 packet must flush (not evict) the initial queue.
	cfg := testConfig()
	cfg.InBlock = 0
	cfg.CrossQueues = 2
	cfg.K = 4
	e := mustEncoder(t, cfg)
	var emits []core.Emit
	emits = append(emits, e.OnData(0, dc2, 100, 7, 1, payloadFor(7, 1))...) // q0
	emits = append(emits, e.OnData(0, dc2, 100, 8, 1, payloadFor(8, 1))...) // q? (rr for flow 8 starts at q0 → q0 has no 8 → q0)
	emits = append(emits, e.OnData(0, dc2, 100, 7, 2, payloadFor(7, 2))...) // q1
	emits = append(emits, e.OnData(0, dc2, 100, 9, 1, payloadFor(9, 1))...) // q0
	if len(emits) != 0 {
		t.Fatalf("premature emits: %d", len(emits))
	}
	// Now both queues contain flow 7 (q0: 7,8,9; q1: 7). Next flow-7
	// packet scans all queues, fails, and processes the initial queue.
	emits = e.OnData(0, dc2, 100, 7, 3, payloadFor(7, 3))
	if len(emits) != cfg.CrossParity && e.Stats().Evicted == 0 {
		t.Errorf("expected flush or eviction, emits=%d stats=%+v", len(emits), e.Stats())
	}
	if e.Stats().CrossBatches+e.Stats().Evicted == 0 {
		t.Error("neither flush nor eviction happened")
	}
}

func TestTimerFlush(t *testing.T) {
	cfg := testConfig()
	cfg.InBlock = 0
	e := mustEncoder(t, cfg)
	e.OnData(0, dc2, 100, 1, 1, payloadFor(1, 1))
	e.OnData(0, dc2, 100, 2, 1, payloadFor(2, 1))
	dl, ok := e.NextDeadline()
	if !ok || dl != cfg.CrossTimeout {
		t.Fatalf("deadline = %v %v, want %v", dl, ok, cfg.CrossTimeout)
	}
	if emits := e.OnTimer(cfg.CrossTimeout - 1); len(emits) != 0 {
		t.Errorf("early timer flushed %d", len(emits))
	}
	emits := e.OnTimer(cfg.CrossTimeout)
	if len(emits) != cfg.CrossParity {
		t.Fatalf("timer flush emitted %d", len(emits))
	}
	_, meta, _ := decodeEmit(t, emits[0])
	if int(meta.K) != 2 {
		t.Errorf("partial batch k = %d, want 2", meta.K)
	}
	if _, ok := e.NextDeadline(); ok {
		t.Error("deadline remains after flush")
	}
	if e.Stats().TimerFlushes == 0 {
		t.Error("timer flush not counted")
	}
}

func TestInStreamTimerFlush(t *testing.T) {
	cfg := testConfig()
	e := mustEncoder(t, cfg)
	e.OnData(0, dc2, 100, 7, 1, payloadFor(7, 1))
	// In queue (50ms) and cross queue (30ms) both open; earliest is cross.
	dl, ok := e.NextDeadline()
	if !ok || dl != cfg.CrossTimeout {
		t.Fatalf("deadline = %v", dl)
	}
	emits := e.OnTimer(cfg.InTimeout)
	// Cross flush (single pkt) + in flush (single pkt): both emit.
	kinds := map[wire.CodedKind]int{}
	for _, em := range emits {
		_, meta, _ := decodeEmit(t, em)
		kinds[meta.Kind]++
	}
	if kinds[wire.InStream] != cfg.InParity || kinds[wire.CrossStream] != cfg.CrossParity {
		t.Errorf("timer kinds: %v", kinds)
	}
}

func TestFlushDrainsEverything(t *testing.T) {
	cfg := testConfig()
	e := mustEncoder(t, cfg)
	e.OnData(0, dc2, 100, 1, 1, payloadFor(1, 1))
	e.OnData(0, 3, 100, 2, 1, payloadFor(2, 1)) // second DC2 group
	emits := e.Flush(time.Millisecond)
	if len(emits) == 0 {
		t.Fatal("flush emitted nothing")
	}
	if _, ok := e.NextDeadline(); ok {
		t.Error("queues remain after Flush")
	}
	// Spatial constraint: separate DC2s get separate batches.
	dsts := map[core.NodeID]bool{}
	for _, em := range emits {
		dsts[em.To] = true
	}
	if !dsts[dc2] || !dsts[3] {
		t.Errorf("flush destinations: %v", dsts)
	}
}

func TestSpatialGrouping(t *testing.T) {
	// Flows bound for different DC2s must never share a batch (§4.1).
	cfg := testConfig()
	cfg.InBlock = 0
	e := mustEncoder(t, cfg)
	var emits []core.Emit
	for f := 1; f <= cfg.K; f++ {
		d := dc2
		if f%2 == 0 {
			d = 3
		}
		emits = append(emits, e.OnData(0, d, 100, core.FlowID(f), 1, payloadFor(f, 1))...)
	}
	// Neither group reached K=4 alone (2 flows each) → no emits yet.
	if len(emits) != 0 {
		t.Fatalf("cross-DC batch leaked: %d emits", len(emits))
	}
	for _, em := range e.Flush(0) {
		hdr, meta, _ := decodeEmit(t, em)
		for _, s := range meta.Sources {
			wantDC := dc2
			if int(s.Flow)%2 == 0 {
				wantDC = 3
			}
			if hdr.Dst != wantDC {
				t.Errorf("flow %d parity sent to %v", s.Flow, hdr.Dst)
			}
		}
	}
}

func TestOverheadStat(t *testing.T) {
	cfg := testConfig()
	cfg.InBlock = 0
	e := mustEncoder(t, cfg)
	for f := 1; f <= cfg.K; f++ {
		e.OnData(0, dc2, 100, core.FlowID(f), 1, make([]byte, 512))
	}
	st := e.Stats()
	if st.Overhead() <= 0 {
		t.Error("overhead not tracked")
	}
	// r=2/4 → coded bytes ≈ half of data bytes (plus headers/meta).
	if st.Overhead() > 0.8 {
		t.Errorf("overhead = %v, unexpectedly high", st.Overhead())
	}
	if (EncoderStats{}).Overhead() != 0 {
		t.Error("zero stats overhead")
	}
}

func TestPayloadCopied(t *testing.T) {
	cfg := testConfig()
	cfg.InBlock = 0
	e := mustEncoder(t, cfg)
	buf := []byte("mutable payload")
	var emits []core.Emit
	emits = append(emits, e.OnData(0, dc2, 100, 1, 1, buf)...)
	buf[0] = 'X'
	for f := 2; f <= cfg.K; f++ {
		emits = append(emits, e.OnData(0, dc2, 100, core.FlowID(f), 1, payloadFor(f, 1))...)
	}
	// The batch fills at the K-th flow; reconstruct flow 1's packet from
	// parity and the others.
	emits = append(emits, e.Flush(0)...)
	if len(emits) == 0 {
		t.Fatal("no emits")
	}
	_, meta, shard := decodeEmit(t, emits[0])
	k := int(meta.K)
	shards := make([][]byte, k+int(meta.R))
	for i, src := range meta.Sources {
		if src.Flow == 1 {
			continue
		}
		b := make([]byte, int(meta.ShardLen))
		if _, err := rs.Pack(payloadFor(int(src.Flow), 1), b); err != nil {
			t.Fatal(err)
		}
		shards[i] = b
	}
	shards[k+int(meta.Index)] = shard
	codec, _ := rs.NewCodec(k, int(meta.R))
	if err := codec.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	got, _ := rs.Unpack(shards[0])
	if string(got) != "mutable payload" {
		t.Errorf("encoder aliased caller buffer: %q", got)
	}
}
