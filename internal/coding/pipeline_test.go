package coding

import (
	"sync"
	"testing"

	"jqos/internal/core"
	"jqos/internal/wire"
)

func TestPipelineEncodesAcrossWorkers(t *testing.T) {
	cfg := crossOnlyConfig()
	var mu sync.Mutex
	var emitted []core.Emit
	p, err := NewPipeline(dc1, cfg, 4, 64, func(es []core.Emit) {
		mu.Lock()
		emitted = append(emitted, es...)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Workers() != 4 {
		t.Fatalf("workers = %d", p.Workers())
	}
	// 32 flows × 8 packets; flows pin to workers by ID.
	for seq := 1; seq <= 8; seq++ {
		for f := 1; f <= 32; f++ {
			p.Submit(0, dc2, core.NodeID(100+f), core.FlowID(f), core.Seq(seq), payloadFor(f, seq))
		}
	}
	p.Close()
	if p.Emitted() == 0 || uint64(len(emitted)) != p.Emitted() {
		t.Fatalf("emitted = %d, sink saw %d", p.Emitted(), len(emitted))
	}
	st := p.Stats()
	if st.DataPackets != 32*8 {
		t.Errorf("data packets = %d", st.DataPackets)
	}
	// Flow pinning: every batch must contain flows from one worker only
	// (flow mod workers is constant within a batch).
	for _, em := range emitted {
		var hdr wire.Header
		body, err := wire.SplitMessage(&hdr, em.Msg)
		if err != nil {
			t.Fatal(err)
		}
		var meta wire.Coded
		if _, err := meta.Unmarshal(body); err != nil {
			t.Fatal(err)
		}
		if len(meta.Sources) == 0 {
			t.Fatal("empty batch")
		}
		w := uint64(meta.Sources[0].Flow) % 4
		for _, s := range meta.Sources {
			if uint64(s.Flow)%4 != w {
				t.Fatalf("batch mixes workers: %+v", meta.Sources)
			}
		}
	}
}

func TestPipelineTrySubmitBackpressure(t *testing.T) {
	// A single worker with a tiny queue and a slow sink must eventually
	// reject TrySubmit rather than block.
	block := make(chan struct{})
	p, err := NewPipeline(dc1, crossOnlyConfig(), 1, 1, func([]core.Emit) { <-block })
	if err != nil {
		t.Fatal(err)
	}
	rejected := false
	for f := 1; f <= 64 && !rejected; f++ {
		for seq := 1; seq <= 64 && !rejected; seq++ {
			rejected = !p.TrySubmit(0, dc2, 100, core.FlowID(f), core.Seq(seq), payloadFor(f, seq))
		}
	}
	close(block)
	p.Close()
	if !rejected || p.Dropped() == 0 {
		t.Errorf("no backpressure: dropped=%d", p.Dropped())
	}
}

func TestPipelineZeroWorkersClamped(t *testing.T) {
	p, err := NewPipeline(dc1, crossOnlyConfig(), 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Workers() != 1 {
		t.Errorf("workers = %d", p.Workers())
	}
	p.Submit(0, dc2, 100, 1, 1, []byte("x"))
	p.Close()
	if p.Stats().DataPackets != 1 {
		t.Error("packet lost")
	}
}

func TestPipelineBadConfig(t *testing.T) {
	if _, err := NewPipeline(dc1, EncoderConfig{}, 2, 8, nil); err == nil {
		t.Error("bad config accepted")
	}
}

func TestPipelineFlushOnClose(t *testing.T) {
	// Packets that never fill a batch must still be encoded at Close.
	var mu sync.Mutex
	count := 0
	p, err := NewPipeline(dc1, crossOnlyConfig(), 2, 8, func(es []core.Emit) {
		mu.Lock()
		count += len(es)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Submit(0, dc2, 100, 1, 1, []byte("lonely"))
	p.Close()
	if count == 0 {
		t.Error("open batch not flushed on Close")
	}
}
