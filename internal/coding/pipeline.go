package coding

import (
	"sync"
	"sync/atomic"

	"jqos/internal/core"
)

// Pipeline is the parallel DC1 encoding stage behind Figure 10: incoming
// flows are load-balanced across independent Encoder workers, and
// throughput scales linearly with the worker count because the workers
// share nothing. Each worker owns its own Encoder, input ring, and batch
// space (flows are pinned to workers, so cross-stream batches never span
// workers — exactly the paper's "load balance the streams to the different
// encoding threads").
type Pipeline struct {
	workers []*worker
	emitted atomic.Uint64
	dropped atomic.Uint64
	wg      sync.WaitGroup
}

type pktIn struct {
	now      core.Time
	dc2      core.NodeID
	receiver core.NodeID
	flow     core.FlowID
	seq      core.Seq
	payload  []byte
}

type worker struct {
	enc  *Encoder
	in   chan pktIn
	sink func([]core.Emit)
}

// NewPipeline starts n workers, each running an Encoder built from cfg.
// sink consumes the emitted parity messages; it is called from worker
// goroutines and must be safe for concurrent use (or nil to discard, as the
// throughput benchmark does).
func NewPipeline(self core.NodeID, cfg EncoderConfig, n int, queueLen int, sink func([]core.Emit)) (*Pipeline, error) {
	if n < 1 {
		n = 1
	}
	if queueLen < 1 {
		queueLen = 1024
	}
	p := &Pipeline{workers: make([]*worker, n)}
	for i := 0; i < n; i++ {
		enc, err := NewEncoder(self, cfg)
		if err != nil {
			return nil, err
		}
		w := &worker{enc: enc, in: make(chan pktIn, queueLen), sink: sink}
		p.workers[i] = w
		p.wg.Add(1)
		go p.run(w)
	}
	return p, nil
}

func (p *Pipeline) run(w *worker) {
	defer p.wg.Done()
	for in := range w.in {
		emits := w.enc.OnData(in.now, in.dc2, in.receiver, in.flow, in.seq, in.payload)
		if len(emits) > 0 {
			p.emitted.Add(uint64(len(emits)))
			if w.sink != nil {
				w.sink(emits)
			}
		}
	}
	// Drain any open batches on shutdown.
	emits := w.enc.Flush(0)
	if len(emits) > 0 {
		p.emitted.Add(uint64(len(emits)))
		if w.sink != nil {
			w.sink(emits)
		}
	}
}

// Workers returns the worker count.
func (p *Pipeline) Workers() int { return len(p.workers) }

// Submit hands one data packet to the pipeline. Flows are pinned to
// workers by flow ID, so per-flow ordering is preserved. Submit blocks when
// the worker's queue is full (back-pressure, matching the rate-limited
// senders of §6.6); use TrySubmit for drop-on-overload behaviour.
func (p *Pipeline) Submit(now core.Time, dc2, receiver core.NodeID, flow core.FlowID, seq core.Seq, payload []byte) {
	w := p.workers[uint64(flow)%uint64(len(p.workers))]
	w.in <- pktIn{now: now, dc2: dc2, receiver: receiver, flow: flow, seq: seq, payload: payload}
}

// TrySubmit is Submit without blocking; it reports false (and counts a
// drop) when the worker is saturated.
func (p *Pipeline) TrySubmit(now core.Time, dc2, receiver core.NodeID, flow core.FlowID, seq core.Seq, payload []byte) bool {
	w := p.workers[uint64(flow)%uint64(len(p.workers))]
	select {
	case w.in <- pktIn{now: now, dc2: dc2, receiver: receiver, flow: flow, seq: seq, payload: payload}:
		return true
	default:
		p.dropped.Add(1)
		return false
	}
}

// Close stops the workers and waits for them to drain.
func (p *Pipeline) Close() {
	for _, w := range p.workers {
		close(w.in)
	}
	p.wg.Wait()
}

// Emitted returns the total parity messages produced.
func (p *Pipeline) Emitted() uint64 { return p.emitted.Load() }

// Dropped returns packets rejected by TrySubmit.
func (p *Pipeline) Dropped() uint64 { return p.dropped.Load() }

// Stats sums the worker encoder stats.
func (p *Pipeline) Stats() EncoderStats {
	var t EncoderStats
	for _, w := range p.workers {
		s := w.enc.Stats()
		t.DataPackets += s.DataPackets
		t.CrossBatches += s.CrossBatches
		t.InBatches += s.InBatches
		t.CrossCoded += s.CrossCoded
		t.InCoded += s.InCoded
		t.Evicted += s.Evicted
		t.TimerFlushes += s.TimerFlushes
		t.DataBytes += s.DataBytes
		t.CodedBytes += s.CodedBytes
	}
	return t
}
