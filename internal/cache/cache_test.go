package cache

import (
	"bytes"
	"testing"
	"time"

	"jqos/internal/core"
)

func id(flow, seq uint64) core.PacketID {
	return core.PacketID{Flow: core.FlowID(flow), Seq: core.Seq(seq)}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := NewStore(time.Second, 0)
	s.Put(0, id(1, 1), []byte("alpha"))
	got, ok := s.Get(10*time.Millisecond, id(1, 1))
	if !ok || !bytes.Equal(got, []byte("alpha")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if s.Len() != 1 || s.Bytes() != 5 {
		t.Errorf("Len=%d Bytes=%d", s.Len(), s.Bytes())
	}
	st := s.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 0 || st.BytesHeld != 5 {
		t.Errorf("stats: %+v", st)
	}
}

func TestGetMiss(t *testing.T) {
	s := NewStore(time.Second, 0)
	if _, ok := s.Get(0, id(1, 1)); ok {
		t.Fatal("hit on empty cache")
	}
	if s.Stats().Misses != 1 {
		t.Errorf("misses = %d", s.Stats().Misses)
	}
}

func TestTTLExpiry(t *testing.T) {
	s := NewStore(100*time.Millisecond, 0)
	s.Put(0, id(1, 1), []byte("a"))
	s.Put(50*time.Millisecond, id(1, 2), []byte("b"))
	// At 100ms the first entry expires (TTL boundary is inclusive).
	if _, ok := s.Get(100*time.Millisecond, id(1, 1)); ok {
		t.Error("expired entry still served")
	}
	if _, ok := s.Get(100*time.Millisecond, id(1, 2)); !ok {
		t.Error("live entry dropped")
	}
	if s.Stats().Expired != 1 {
		t.Errorf("expired = %d", s.Stats().Expired)
	}
	if _, ok := s.Get(time.Hour, id(1, 2)); ok {
		t.Error("entry survived far beyond TTL")
	}
}

func TestPutRefreshesTTLAndPayload(t *testing.T) {
	s := NewStore(100*time.Millisecond, 0)
	s.Put(0, id(1, 1), []byte("old"))
	s.Put(90*time.Millisecond, id(1, 1), []byte("new-payload"))
	got, ok := s.Get(150*time.Millisecond, id(1, 1))
	if !ok || string(got) != "new-payload" {
		t.Fatalf("refreshed entry: %q %v", got, ok)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d after re-put", s.Len())
	}
	if s.Bytes() != uint64(len("new-payload")) {
		t.Errorf("Bytes = %d", s.Bytes())
	}
}

func TestPayloadIsCopied(t *testing.T) {
	s := NewStore(time.Second, 0)
	buf := []byte("mutable")
	s.Put(0, id(1, 1), buf)
	buf[0] = 'X'
	got, _ := s.Get(0, id(1, 1))
	if string(got) != "mutable" {
		t.Errorf("cache aliased caller buffer: %q", got)
	}
}

func TestByteBoundEviction(t *testing.T) {
	s := NewStore(time.Hour, 10)
	s.Put(0, id(1, 1), []byte("aaaa")) // 4
	s.Put(0, id(1, 2), []byte("bbbb")) // 8
	s.Put(0, id(1, 3), []byte("cccc")) // 12 → evict oldest
	if _, ok := s.Get(0, id(1, 1)); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, ok := s.Get(0, id(1, 3)); !ok {
		t.Error("newest entry evicted")
	}
	if s.Bytes() > 10 {
		t.Errorf("Bytes = %d over bound", s.Bytes())
	}
	if s.Stats().Evicted != 1 {
		t.Errorf("evicted = %d", s.Stats().Evicted)
	}
}

func TestOversizeSinglePacket(t *testing.T) {
	// A single packet larger than the bound: cache stores then evicts it
	// down to the FIFO floor — it must not loop forever.
	s := NewStore(time.Hour, 3)
	s.Put(0, id(1, 1), []byte("four"))
	if s.Len() != 0 {
		t.Errorf("oversize packet retained: len=%d", s.Len())
	}
}

func TestDrainFlow(t *testing.T) {
	s := NewStore(time.Hour, 0)
	for seq := uint64(1); seq <= 5; seq++ {
		s.Put(0, id(7, seq), []byte{byte(seq)})
	}
	s.Put(0, id(8, 1), []byte("other"))
	got := s.DrainFlow(0, 7, 2)
	if len(got) != 3 {
		t.Fatalf("drained %d, want 3", len(got))
	}
	for i, want := range []uint64{3, 4, 5} {
		if got[i] != id(7, want) {
			t.Errorf("drain[%d] = %v", i, got[i])
		}
	}
	// Draining leaves entries for other receivers.
	if again := s.DrainFlow(0, 7, 0); len(again) != 5 {
		t.Errorf("second drain = %d, want 5", len(again))
	}
	if none := s.DrainFlow(0, 99, 0); len(none) != 0 {
		t.Errorf("unknown flow drained %d", len(none))
	}
}

func TestDrainFlowSkipsExpired(t *testing.T) {
	s := NewStore(100*time.Millisecond, 0)
	s.Put(0, id(7, 1), []byte("a"))
	s.Put(80*time.Millisecond, id(7, 2), []byte("b"))
	got := s.DrainFlow(120*time.Millisecond, 7, 0)
	if len(got) != 1 || got[0] != id(7, 2) {
		t.Errorf("drain after expiry = %v", got)
	}
}

func TestFlowIndexCompaction(t *testing.T) {
	s := NewStore(50*time.Millisecond, 0)
	s.Put(0, id(7, 1), []byte("a"))
	s.Get(time.Second, id(7, 1)) // force expiry
	if len(s.flows) != 0 {
		t.Errorf("flow index leaked: %v", s.flows)
	}
}

func TestZeroTTLPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewStore(0) did not panic")
		}
	}()
	NewStore(0, 0)
}

func TestTTLAccessor(t *testing.T) {
	if NewStore(42*time.Millisecond, 0).TTL() != 42*time.Millisecond {
		t.Error("TTL accessor")
	}
}

func BenchmarkPutGet(b *testing.B) {
	s := NewStore(time.Second, 1<<20)
	payload := make([]byte, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now := core.Time(i) * time.Microsecond
		pid := id(1, uint64(i))
		s.Put(now, pid, payload)
		s.Get(now, pid)
	}
}
