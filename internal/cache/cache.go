// Package cache implements the J-QoS caching service (§3.2): short-term,
// in-memory storage of packets at a data center, indexed by packet identity,
// with TTL expiry and byte-bounded eviction. Receivers pull missing packets
// (loss recovery), disconnected receivers drain their flow's backlog
// (mobility/DTN rendezvous, Figure 3e), and hybrid multicast receivers
// repair from the cached copy (Figure 3d).
package cache

import (
	"container/list"

	"jqos/internal/core"
)

// Stats counts cache effectiveness for experiments.
type Stats struct {
	Puts      uint64
	Hits      uint64
	Misses    uint64
	Expired   uint64
	Evicted   uint64
	BytesHeld uint64
}

type entry struct {
	id      core.PacketID
	payload []byte
	expires core.Time
	elem    *list.Element // position in the expiry FIFO
}

// Store is the DC-side packet cache. The zero value is not usable; call
// NewStore. Store is not safe for concurrent use: in the simulator it runs
// single-goroutine, and the UDP runtime serializes access per relay loop.
type Store struct {
	ttl      core.Time
	maxBytes uint64

	items map[core.PacketID]*entry
	// flows indexes cached seqs per flow in insertion order, supporting
	// DrainFlow for the mobility rendezvous use case.
	flows map[core.FlowID][]core.Seq
	// fifo orders entries by expiry (constant TTL ⇒ insertion order).
	fifo  list.List
	bytes uint64
	stats Stats
}

// NewStore creates a cache holding packets for ttl, bounded to maxBytes of
// payload (0 = unbounded).
func NewStore(ttl core.Time, maxBytes uint64) *Store {
	if ttl <= 0 {
		panic("cache: TTL must be positive")
	}
	return &Store{
		ttl:      ttl,
		maxBytes: maxBytes,
		items:    make(map[core.PacketID]*entry),
		flows:    make(map[core.FlowID][]core.Seq),
	}
}

// TTL returns the configured packet lifetime.
func (s *Store) TTL() core.Time { return s.ttl }

// Len returns the number of cached packets.
func (s *Store) Len() int { return len(s.items) }

// Bytes returns the cached payload volume.
func (s *Store) Bytes() uint64 { return s.bytes }

// Stats returns a copy of the counters.
func (s *Store) Stats() Stats {
	st := s.stats
	st.BytesHeld = s.bytes
	return st
}

// Put caches a packet payload under id. The payload is copied. Re-putting
// an existing id refreshes the payload and its TTL (the paper's senders
// never reuse seqs, but retransmissions can race with duplication).
func (s *Store) Put(now core.Time, id core.PacketID, payload []byte) {
	s.expire(now)
	if e, ok := s.items[id]; ok {
		s.bytes -= uint64(len(e.payload))
		s.bytes += uint64(len(payload))
		e.payload = append(e.payload[:0], payload...)
		e.expires = now + s.ttl
		s.fifo.MoveToBack(e.elem)
	} else {
		e := &entry{id: id, payload: append([]byte(nil), payload...), expires: now + s.ttl}
		e.elem = s.fifo.PushBack(e)
		s.items[id] = e
		s.flows[id.Flow] = append(s.flows[id.Flow], id.Seq)
		s.bytes += uint64(len(payload))
	}
	s.stats.Puts++
	if s.maxBytes > 0 {
		for s.bytes > s.maxBytes && s.fifo.Len() > 0 {
			s.evictOldest()
		}
	}
}

// Get returns the cached payload for id, if present and unexpired. The
// returned slice is owned by the cache; callers must copy if they retain it
// beyond their call frame.
func (s *Store) Get(now core.Time, id core.PacketID) ([]byte, bool) {
	s.expire(now)
	e, ok := s.items[id]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	s.stats.Hits++
	return e.payload, true
}

// DrainFlow returns the cached packets of a flow with sequence > after, in
// sequence order — the mobility pull: a receiver coming online retrieves
// everything it missed (Figure 3e). Entries remain cached (multiple
// receivers may drain the same flow in a multicast).
func (s *Store) DrainFlow(now core.Time, flow core.FlowID, after core.Seq) []core.PacketID {
	s.expire(now)
	var out []core.PacketID
	for _, seq := range s.flows[flow] {
		if seq <= after {
			continue
		}
		id := core.PacketID{Flow: flow, Seq: seq}
		if _, ok := s.items[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// expire drops entries whose TTL passed.
func (s *Store) expire(now core.Time) {
	for s.fifo.Len() > 0 {
		e := s.fifo.Front().Value.(*entry)
		if e.expires > now {
			return
		}
		s.remove(e)
		s.stats.Expired++
	}
}

func (s *Store) evictOldest() {
	e := s.fifo.Front().Value.(*entry)
	s.remove(e)
	s.stats.Evicted++
}

func (s *Store) remove(e *entry) {
	s.fifo.Remove(e.elem)
	delete(s.items, e.id)
	s.bytes -= uint64(len(e.payload))
	// Compact the flow index lazily: drop the seq entry now to keep
	// DrainFlow linear in live entries.
	seqs := s.flows[e.id.Flow]
	for i, q := range seqs {
		if q == e.id.Seq {
			s.flows[e.id.Flow] = append(seqs[:i], seqs[i+1:]...)
			break
		}
	}
	if len(s.flows[e.id.Flow]) == 0 {
		delete(s.flows, e.id.Flow)
	}
}
