package forward

import (
	"strings"
	"testing"

	"jqos/internal/core"
)

func TestUnicastDefaultsToDirect(t *testing.T) {
	f := New(1)
	if f.Self() != 1 {
		t.Error("Self")
	}
	emits := f.Forward(9, []byte("m"))
	if len(emits) != 1 || emits[0].To != 9 {
		t.Fatalf("emits = %+v", emits)
	}
	st := f.Stats()
	if st.Unicast != 1 || st.Copies != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestExplicitRoute(t *testing.T) {
	f := New(1)
	f.SetRoute(9, 2) // via DC 2
	emits := f.Forward(9, nil)
	if len(emits) != 1 || emits[0].To != 2 {
		t.Fatalf("emits = %+v", emits)
	}
	f.DeleteRoute(9)
	if emits := f.Forward(9, nil); emits[0].To != 9 {
		t.Error("route not deleted")
	}
}

func TestMulticastFanOut(t *testing.T) {
	f := New(1)
	f.SetGroup(100, 30, 10, 20)
	if !f.IsGroup(100) || f.IsGroup(99) {
		t.Error("IsGroup")
	}
	if g := f.Group(100); len(g) != 3 || g[0] != 10 || g[2] != 30 {
		t.Errorf("group not sorted: %v", g)
	}
	msg := []byte("frame")
	emits := f.Forward(100, msg)
	if len(emits) != 3 {
		t.Fatalf("fan-out = %d", len(emits))
	}
	for i, want := range []core.NodeID{10, 20, 30} {
		if emits[i].To != want {
			t.Errorf("emit %d to %v", i, emits[i].To)
		}
		if &emits[i].Msg[0] != &msg[0] {
			t.Error("multicast should share message bytes")
		}
	}
	st := f.Stats()
	if st.Multicast != 1 || st.Copies != 3 {
		t.Errorf("stats: %+v", st)
	}
}

func TestSelfLoopSuppressed(t *testing.T) {
	f := New(1)
	f.SetRoute(9, 1) // misconfigured: route points at self
	emits := f.Forward(9, nil)
	if len(emits) != 0 {
		t.Fatalf("self-loop emitted: %+v", emits)
	}
	if f.Stats().NoRoute != 1 {
		t.Errorf("NoRoute = %d", f.Stats().NoRoute)
	}
}

func TestGroupWithSelfMember(t *testing.T) {
	f := New(1)
	f.SetGroup(100, 1, 2) // group includes this DC
	emits := f.Forward(100, nil)
	if len(emits) != 1 || emits[0].To != 2 {
		t.Errorf("emits = %+v", emits)
	}
}

func TestNextHops(t *testing.T) {
	f := New(1)
	f.SetGroup(100, 5, 6)
	f.SetRoute(7, 2)
	if h := f.NextHops(100); len(h) != 2 {
		t.Errorf("group hops: %v", h)
	}
	if h := f.NextHops(7); len(h) != 1 || h[0] != 2 {
		t.Errorf("routed hops: %v", h)
	}
	if h := f.NextHops(42); len(h) != 1 || h[0] != 42 {
		t.Errorf("default hops: %v", h)
	}
}

func TestSetGroupReplaces(t *testing.T) {
	f := New(1)
	f.SetGroup(100, 5, 6)
	f.SetGroup(100, 7)
	if g := f.Group(100); len(g) != 1 || g[0] != 7 {
		t.Errorf("group after replace: %v", g)
	}
}

func TestStringer(t *testing.T) {
	f := New(3)
	f.SetRoute(9, 2)
	f.SetGroup(100, 5)
	if s := f.String(); !strings.Contains(s, "1 routes") || !strings.Contains(s, "1 groups") {
		t.Errorf("String = %q", s)
	}
}

func TestFlowRoutes(t *testing.T) {
	f := New(1)
	f.SetRoute(9, 2)        // shared table: via DC 2
	f.SetFlowRoute(7, 9, 3) // flow 7 pinned via DC 3
	if via, ok := f.FlowRoute(7, 9); !ok || via != 3 {
		t.Fatalf("FlowRoute = %v %v", via, ok)
	}
	// Pins are scoped: other flows, and the same flow toward other
	// destinations, see no entry (and fall back to the shared table).
	if _, ok := f.FlowRoute(8, 9); ok {
		t.Error("pin leaked to another flow")
	}
	if _, ok := f.FlowRoute(7, 5); ok {
		t.Error("pin leaked to another destination")
	}
	if via, _ := f.Route(9); via != 2 {
		t.Error("shared table clobbered by the pin")
	}
	// Pinned data counts like a unicast Forward; pinned engine emits
	// count only the FlowPinned marker (their unpinned twins bypass the
	// forwarder entirely).
	f.NotePinnedForward()
	f.NotePinnedCopy()
	if st := f.Stats(); st.FlowPinned != 2 || st.Copies != 1 || st.Unicast != 1 {
		t.Errorf("stats: %+v", st)
	}
	f.DeleteFlowRoute(7, 9)
	if f.FlowRouteCount() != 0 {
		t.Error("flow route not deleted")
	}
	if _, ok := f.FlowRoute(7, 9); ok {
		t.Error("deleted pin still resolves")
	}
}
