// Package forward implements the J-QoS forwarding service (§3.1): next-hop
// routing over the small cloud overlay, unicast and multicast fan-out, and
// the duplication helpers behind multipath and partial-overlay use cases
// (Figure 3). Route decisions are centrally computed and pushed to each DC,
// matching the paper's "simple, centralized" model.
package forward

import (
	"fmt"
	"sort"

	"jqos/internal/core"
)

// NumClasses is the number of service classes in the per-class egress
// accounting (one per J-QoS service, indexed by core.Service).
const NumClasses = core.NumServices

// Stats counts forwarding activity.
type Stats struct {
	Unicast   uint64 // packets forwarded to a single next hop
	Multicast uint64 // packets fanned out to a group
	Copies    uint64 // total copies emitted
	NoRoute   uint64 // packets dropped for lack of a route
	// FlowPinned counts copies that followed a per-flow pinned next hop
	// instead of the shared table (path-pinned flows).
	FlowPinned uint64
	// OldEpochResolves counts packets resolved against the previous table
	// epoch during a make-before-break drain window — in-flight traffic
	// that would have been re-resolved (and possibly reordered or
	// blackholed) by an in-place table swap.
	OldEpochResolves uint64
	// ClassBytes / ClassPackets account every packet leaving this DC per
	// service class — the per-DC face of the load-telemetry layer (the
	// per-link breakdown lives in internal/load). The hosting runtime
	// reports sends via NoteEgress at the moment bytes hit the wire.
	ClassBytes   [NumClasses]uint64
	ClassPackets [NumClasses]uint64
}

// flowKey names one per-flow pinned entry: the flow plus the destination
// the pin applies to (pins are directional — reverse traffic of the same
// flow rides the shared tables).
type flowKey struct {
	flow core.FlowID
	dst  core.NodeID
}

// Forwarder is the forwarding state of one DC node.
type Forwarder struct {
	self core.NodeID
	// routes maps a destination to the next hop toward it. Destinations
	// without an entry are delivered directly (the overlay is small and
	// every DC can reach every endpoint it serves).
	routes map[core.NodeID]core.NodeID
	// flowRoutes maps (flow, destination) to a pinned next hop that
	// outranks the shared table — the routing controller pushes these for
	// flows with a path policy (Cheapest / Pinned-to-kth-alternate).
	flowRoutes map[flowKey]core.NodeID
	// groups maps a multicast group ID to its member endpoints.
	groups map[core.NodeID][]core.NodeID

	// Make-before-break state: epoch is the current table version
	// (announced by the controller via BeginEpoch); while prevLive,
	// prevRoutes overlays the OLD value of every entry the current epoch
	// changed (0 = the old table had no entry), so packets tagged with the
	// previous epoch keep resolving the routes they entered the overlay
	// under until the controller retires them. Only one previous version
	// is kept — a new BeginEpoch force-retires the older overlay.
	epoch      uint64
	prevLive   bool
	prevRoutes map[core.NodeID]core.NodeID

	stats Stats
}

// New creates a forwarder for the DC with identity self.
func New(self core.NodeID) *Forwarder {
	return &Forwarder{
		self:       self,
		routes:     make(map[core.NodeID]core.NodeID),
		flowRoutes: make(map[flowKey]core.NodeID),
		groups:     make(map[core.NodeID][]core.NodeID),
	}
}

// Self returns the forwarder's node identity.
func (f *Forwarder) Self() core.NodeID { return f.self }

// Stats returns a copy of the counters.
func (f *Forwarder) Stats() Stats { return f.stats }

// SetRoute installs next hop via for destination dst. via == dst means
// direct delivery.
func (f *Forwarder) SetRoute(dst, via core.NodeID) {
	f.saveOld(dst)
	f.routes[dst] = via
}

// DeleteRoute removes the route for dst.
func (f *Forwarder) DeleteRoute(dst core.NodeID) {
	f.saveOld(dst)
	delete(f.routes, dst)
}

// saveOld snapshots dst's pre-write value into the previous-epoch overlay
// (first write per entry per epoch wins — that IS the old table's value).
func (f *Forwarder) saveOld(dst core.NodeID) {
	if !f.prevLive {
		return
	}
	if _, saved := f.prevRoutes[dst]; saved {
		return
	}
	f.prevRoutes[dst] = f.routes[dst] // zero value = no prior entry
}

// BeginEpoch opens table version epoch (routing.EpochSink). From here
// until RetireEpoch, writes snapshot their previous values so old-epoch
// lookups still resolve. An un-retired older overlay is force-dropped:
// the drain window ended the moment its successor epoch opened.
func (f *Forwarder) BeginEpoch(epoch uint64) {
	if f.prevRoutes == nil {
		f.prevRoutes = make(map[core.NodeID]core.NodeID)
	} else {
		clear(f.prevRoutes)
	}
	f.epoch = epoch
	f.prevLive = true
}

// RetireEpoch drops the overlay protecting epoch's predecessor (no-op
// unless epoch is still current — a stale retire races a newer epoch
// that already force-dropped it).
func (f *Forwarder) RetireEpoch(epoch uint64) {
	if epoch != f.epoch || !f.prevLive {
		return
	}
	f.prevLive = false
	clear(f.prevRoutes)
}

// Epoch returns the current table version.
func (f *Forwarder) Epoch() uint64 { return f.epoch }

// EpochTag returns the current table version's 2-bit wire tag.
func (f *Forwarder) EpochTag() uint8 { return uint8(f.epoch & 3) }

// routePrev resolves dst against the previous table version: the saved
// old value for entries the current epoch changed, the (shared) current
// table for everything else.
func (f *Forwarder) routePrev(dst core.NodeID) (core.NodeID, bool) {
	if old, saved := f.prevRoutes[dst]; saved {
		if old == 0 {
			return 0, false
		}
		return old, true
	}
	return f.Route(dst)
}

// RouteTagged resolves dst against the table version carried by a
// packet's 2-bit epoch tag: the current table when the tag matches (or
// no older version is live), the previous version otherwise.
func (f *Forwarder) RouteTagged(tag uint8, dst core.NodeID) (core.NodeID, bool) {
	if !f.prevLive || tag == f.EpochTag() {
		return f.Route(dst)
	}
	return f.routePrev(dst)
}

// ForwardTagged is Forward resolved against the table version named by a
// packet's epoch tag. Multicast fan-out always uses the current group
// membership (groups are member sets, not hops — there is nothing to
// drain), so only unicast resolution consults the overlay.
func (f *Forwarder) ForwardTagged(tag uint8, dst core.NodeID, msg []byte) []core.Emit {
	if !f.prevLive || tag == f.EpochTag() {
		return f.Forward(dst, msg)
	}
	if _, isGroup := f.groups[dst]; isGroup {
		return f.Forward(dst, msg)
	}
	f.stats.OldEpochResolves++
	hop, ok := f.routePrev(dst)
	if !ok {
		hop = dst // no entry in the old table = direct delivery, as in NextHops
	}
	if hop == f.self {
		f.stats.NoRoute++
		return nil
	}
	f.stats.Unicast++
	f.stats.Copies++
	return []core.Emit{{To: hop, Msg: msg}}
}

// Route returns the installed next hop for dst, if any. Transmit paths use
// it to reach nodes this DC has no direct link to (multi-hop overlays).
func (f *Forwarder) Route(dst core.NodeID) (core.NodeID, bool) {
	via, ok := f.routes[dst]
	return via, ok
}

// SetFlowRoute pins the next hop for one flow's traffic toward dst,
// outranking the shared table. Routing controllers push these entries for
// flows with an explicit path policy.
func (f *Forwarder) SetFlowRoute(flow core.FlowID, dst, via core.NodeID) {
	f.flowRoutes[flowKey{flow, dst}] = via
}

// DeleteFlowRoute removes a pinned entry.
func (f *Forwarder) DeleteFlowRoute(flow core.FlowID, dst core.NodeID) {
	delete(f.flowRoutes, flowKey{flow, dst})
}

// FlowRoute returns the pinned next hop for (flow, dst), if any.
func (f *Forwarder) FlowRoute(flow core.FlowID, dst core.NodeID) (core.NodeID, bool) {
	via, ok := f.flowRoutes[flowKey{flow, dst}]
	return via, ok
}

// FlowRouteCount returns the number of pinned entries (diagnostics).
func (f *Forwarder) FlowRouteCount() int { return len(f.flowRoutes) }

// SetGroup installs (or replaces) a multicast group. Members are stored
// sorted so fan-out order is deterministic.
func (f *Forwarder) SetGroup(group core.NodeID, members ...core.NodeID) {
	ms := append([]core.NodeID(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	f.groups[group] = ms
}

// Group returns the members of a group (nil if unknown).
func (f *Forwarder) Group(group core.NodeID) []core.NodeID { return f.groups[group] }

// IsGroup reports whether dst names a multicast group on this DC.
func (f *Forwarder) IsGroup(dst core.NodeID) bool {
	_, ok := f.groups[dst]
	return ok
}

// NextHops resolves a destination into the set of nodes this DC should
// copy the packet to: the group members for a multicast destination, or the
// single next hop (defaulting to the destination itself) for unicast.
func (f *Forwarder) NextHops(dst core.NodeID) []core.NodeID {
	if members, ok := f.groups[dst]; ok {
		return members
	}
	if via, ok := f.routes[dst]; ok {
		return []core.NodeID{via}
	}
	return []core.NodeID{dst}
}

// Forward produces the Emits that relay one message toward dst. The
// message bytes are shared across copies (links never mutate payloads).
// Self-loops are dropped defensively: a route pointing back at this DC
// would otherwise ping-pong forever.
func (f *Forwarder) Forward(dst core.NodeID, msg []byte) []core.Emit {
	hops := f.NextHops(dst)
	out := make([]core.Emit, 0, len(hops))
	for _, h := range hops {
		if h == f.self {
			continue
		}
		out = append(out, core.Emit{To: h, Msg: msg})
	}
	switch {
	case len(out) == 0:
		f.stats.NoRoute++
	case f.IsGroup(dst):
		f.stats.Multicast++
	default:
		f.stats.Unicast++
	}
	f.stats.Copies += uint64(len(out))
	return out
}

// NoteEgress accounts one packet of n bytes leaving this DC in the given
// service class. Unknown classes go unaccounted rather than polluting a
// real bucket — the same policy wire.PeekService applies upstream.
func (f *Forwarder) NoteEgress(class core.Service, n int) {
	if int(class) >= NumClasses {
		return
	}
	f.stats.ClassBytes[class] += uint64(n)
	f.stats.ClassPackets[class]++
}

// NotePinnedForward counts one data copy relayed over a per-flow pinned
// hop — the pinned analogue of a unicast Forward, counted identically so
// per-DC copy totals compare across pinned and unpinned flows. The
// hosting DC resolves pins itself (FlowRoute) so the chosen hop is sent
// on the wire directly rather than re-resolved through the shared table,
// and calls this once the copy actually left.
func (f *Forwarder) NotePinnedForward() {
	f.stats.FlowPinned++
	f.stats.Unicast++
	f.stats.Copies++
}

// NotePinnedCopy counts one engine emit (coded parity) sent over a
// per-flow pinned hop. Only FlowPinned moves: unpinned engine emits
// bypass the forwarder entirely, so counting Copies here would make
// pinned and unpinned DCs report different totals for identical volume.
func (f *Forwarder) NotePinnedCopy() {
	f.stats.FlowPinned++
}

// String implements fmt.Stringer for debugging.
func (f *Forwarder) String() string {
	return fmt.Sprintf("forwarder(%v: %d routes, %d groups)", f.self, len(f.routes), len(f.groups))
}
