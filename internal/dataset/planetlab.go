package dataset

import (
	"math/rand"
	"sort"
	"time"

	"jqos/internal/core"
)

// sortFloat64s is a tiny indirection so dataset.go needn't import sort
// twice; kept here with the other ordering helpers.
func sortFloat64s(s []float64) { sort.Float64s(s) }

// LossProfile parameterizes a path's loss process as a mixture of the three
// episode classes of Figure 8b. The experiment layer materializes it into
// netem models (dataset stays measurement-shaped, not simulator-shaped).
type LossProfile struct {
	// PRandom is the per-packet probability of an isolated single loss.
	PRandom float64
	// PBurstStart is the per-packet probability of entering a
	// multi-packet loss episode; BurstMean is the episode's mean length
	// in packets (geometric, 2–14 packets per the paper's classifier).
	PBurstStart float64
	BurstMean   float64
	// OutagesPerHour is the rate of full outages; each lasts between
	// OutageMin and OutageMax (paper: 45% of paths see 1–3 s outages).
	OutagesPerHour float64
	OutageMin      core.Time
	OutageMax      core.Time
}

// HasOutages reports whether the profile schedules outages at all.
func (lp LossProfile) HasOutages() bool { return lp.OutagesPerHour > 0 }

// ExpectedLossRate estimates the stationary packet-loss fraction of the
// profile (ignoring outages, which dominate episode counts but are rare in
// packet terms at typical rates). Used by tests to verify calibration.
func (lp LossProfile) ExpectedLossRate() float64 {
	// Each burst start contributes BurstMean lost packets.
	return lp.PRandom + lp.PBurstStart*lp.BurstMean
}

// PLPath is one PlanetLab-like wide-area path in the CR-WAN deployment
// (§6.2): endpoint regions, segment latencies, and the path's loss profile.
type PLPath struct {
	ID        int
	SrcRegion Region
	DstRegion Region
	// OneWay is the direct Internet one-way latency (y).
	OneWay core.Time
	// DeltaS and DeltaR are the host↔DC one-way latencies.
	DeltaS, DeltaR core.Time
	// InterDC is the DC1→DC2 one-way latency (x).
	InterDC core.Time
	// Jitter is the body jitter of the direct path.
	Jitter core.Time
	// Loss is the wide-area loss profile of the direct path.
	Loss LossProfile
	// AccessLoss is the loss rate of the sender's shared first mile:
	// drops there kill both the direct packet and its cloud copy, which
	// is why the paper finds most unrecoverable losses on source access
	// paths (~98% of access losses, 90% single-packet).
	AccessLoss float64
}

// RTT returns the direct round trip.
func (p PLPath) RTT() core.Time { return 2 * p.OneWay }

// regionPairs lists the inter-continental pairs the deployment used, with
// one-way latency bands (in ms) for direct Internet and inter-DC segments.
var regionPairs = []struct {
	src, dst         Region
	directLo, dirHi  float64
	interLo, interHi float64
}{
	{RegionUSEast, RegionEU, 55, 70, 42, 48},
	{RegionUSWest, RegionEU, 70, 90, 62, 70},
	{RegionUSEast, RegionAsia, 90, 115, 80, 92},
	{RegionUSWest, RegionOceania, 75, 95, 68, 78},
	{RegionEU, RegionOceania, 140, 165, 125, 140},
	{RegionEU, RegionAsia, 95, 125, 88, 100},
	{RegionUSEast, RegionOceania, 95, 120, 88, 100},
	{RegionAsia, RegionOceania, 55, 80, 50, 62},
}

// GeneratePlanetLab synthesizes n CR-WAN deployment paths (the paper used
// 45). Loss calibration targets §6.2.2: rates up to 0.9%, 40% of paths
// above 0.1%, and 45% of paths with 1–3 s outages.
func GeneratePlanetLab(seed int64, n int) []PLPath {
	r := rand.New(rand.NewSource(seed))
	paths := make([]PLPath, n)
	for i := range paths {
		pair := regionPairs[i%len(regionPairs)]
		oneWay := ms(pair.directLo + r.Float64()*(pair.dirHi-pair.directLo))
		interDC := ms(pair.interLo + r.Float64()*(pair.interHi-pair.interLo))

		// δ values: PlanetLab nodes are campus-hosted, generally close
		// to a DC; EU receivers show the paper's 16–70 ms RTT spread
		// (8–35 ms one-way, mean ~14 ms).
		deltaS := ms(2 + r.ExpFloat64()*5)
		deltaR := ms(4 + r.ExpFloat64()*10)
		if deltaR > ms(35) {
			deltaR = ms(35)
		}

		// Loss: draw the total target rate, then split across classes.
		// 40% of paths exceed 0.1%; the rest sit below it.
		var target float64
		if r.Float64() < 0.40 {
			target = 0.001 + r.Float64()*0.008 // 0.1% – 0.9%
		} else {
			target = 0.0002 + r.Float64()*0.0008 // 0.02% – 0.1%
		}
		randShare := 0.3 + r.Float64()*0.4 // random vs burst split
		burstMean := 2 + r.Float64()*6     // 2–8 packets per episode
		lp := LossProfile{
			PRandom:     target * randShare,
			PBurstStart: target * (1 - randShare) / burstMean,
			BurstMean:   burstMean,
		}
		if r.Float64() < 0.45 {
			lp.OutagesPerHour = 0.5 + r.Float64()*1.5
			lp.OutageMin = time.Second
			lp.OutageMax = 3 * time.Second
		}
		paths[i] = PLPath{
			ID:         i,
			SrcRegion:  pair.src,
			DstRegion:  pair.dst,
			OneWay:     oneWay,
			DeltaS:     deltaS,
			DeltaR:     deltaR,
			InterDC:    interDC,
			Jitter:     ms(0.5 + r.Float64()*2),
			Loss:       lp,
			AccessLoss: target * (0.10 + r.Float64()*0.20),
		}
	}
	return paths
}

// PairName labels a path's region pair (used to group Figure 8d series).
func (p PLPath) PairName() string {
	return p.SrcRegion.String() + "→" + p.DstRegion.String()
}

// RegionGroup buckets the path into the coarse series of Figure 8d.
func (p PLPath) RegionGroup() string {
	in := func(r Region, set ...Region) bool {
		for _, s := range set {
			if r == s {
				return true
			}
		}
		return false
	}
	us := []Region{RegionUSEast, RegionUSWest}
	eu := []Region{RegionEU, RegionNorthEU}
	oc := []Region{RegionOceania}
	switch {
	case in(p.SrcRegion, us...) && in(p.DstRegion, eu...):
		return "US-EU"
	case in(p.SrcRegion, us...) && in(p.DstRegion, oc...):
		return "US-OC"
	case in(p.SrcRegion, eu...) && in(p.DstRegion, oc...):
		return "EU-OC"
	default:
		return "Other"
	}
}
