package dataset

import (
	"testing"
	"time"

	"jqos/internal/core"
	"jqos/internal/stats"
)

func TestGenerateFeasibilityCalibration(t *testing.T) {
	paths := GenerateFeasibility(1, 6250)
	if len(paths) != 6250 {
		t.Fatalf("got %d paths", len(paths))
	}
	var deltaR, direct, inter stats.Sample
	for _, p := range paths {
		deltaR.Add(float64(p.DeltaR) / float64(time.Millisecond))
		direct.Add(float64(p.Direct) / float64(time.Millisecond))
		inter.Add(float64(p.InterDC) / float64(time.Millisecond))
		if p.DeltaS <= 0 || p.DeltaR <= 0 || p.InterDC <= 0 || p.Direct <= 0 {
			t.Fatalf("non-positive latency in %+v", p)
		}
		if p.DeltaRMedian <= 0 {
			t.Fatal("median δR missing")
		}
	}
	// Paper calibration (Fig 7c): ~55% of δR below 10 ms, ~15% above 20 ms.
	if f := deltaR.FractionBelow(10); f < 0.50 || f > 0.60 {
		t.Errorf("fraction δR<10ms = %v, want ~0.55", f)
	}
	if f := 1 - deltaR.FractionBelow(20); f < 0.10 || f > 0.20 {
		t.Errorf("fraction δR>20ms = %v, want ~0.15", f)
	}
	// Inter-DC is tight (low jitter cloud WAN).
	if inter.Min() < 35 || inter.Max() > 47 {
		t.Errorf("interDC range [%v,%v]", inter.Min(), inter.Max())
	}
	// Internet one-way has a heavier tail than the overlay.
	if direct.Quantile(0.99) < 70 {
		t.Errorf("direct p99 = %v, want heavy tail", direct.Quantile(0.99))
	}
}

func TestFeasibilityDelayFormulas(t *testing.T) {
	p := FeasibilityPath{
		DeltaS:       5 * time.Millisecond,
		DeltaR:       10 * time.Millisecond,
		InterDC:      40 * time.Millisecond,
		Direct:       50 * time.Millisecond,
		DeltaRMedian: 8 * time.Millisecond,
	}
	if got := p.ForwardingDelay(); got != 55*time.Millisecond {
		t.Errorf("forwarding = %v", got)
	}
	// Δ = (5+40) − (50+10) < 0 → 0.
	if got := p.WaitDelta(); got != 0 {
		t.Errorf("Δ = %v, want 0", got)
	}
	if got := p.CachingDelay(); got != 70*time.Millisecond {
		t.Errorf("caching = %v", got)
	}
	if got := p.CodingDelay(); got != 86*time.Millisecond {
		t.Errorf("coding = %v", got)
	}
	if got := p.RTT(); got != 100*time.Millisecond {
		t.Errorf("RTT = %v", got)
	}
	// Now a path where the cloud copy lags: Δ > 0.
	p.Direct = 20 * time.Millisecond
	// Δ = 45 − 30 = 15ms.
	if got := p.WaitDelta(); got != 15*time.Millisecond {
		t.Errorf("Δ = %v, want 15ms", got)
	}
	if got := p.CachingDelay(); got != (20+20+15)*time.Millisecond {
		t.Errorf("caching with Δ = %v", got)
	}
}

func TestGenerateFeasibilityDeterminism(t *testing.T) {
	a := GenerateFeasibility(7, 100)
	b := GenerateFeasibility(7, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("path %d differs between identical seeds", i)
		}
	}
	c := GenerateFeasibility(8, 100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGenerateErasMonotone(t *testing.T) {
	eras := GenerateEras(3, 500)
	if len(eras) != 3 {
		t.Fatalf("eras = %d", len(eras))
	}
	if eras[0].Year != 2007 || eras[2].Year != 2018 {
		t.Errorf("era years: %d %d %d", eras[0].Year, eras[1].Year, eras[2].Year)
	}
	for h := 0; h < 500; h++ {
		ire, fra, now := eras[0].Deltas[h], eras[1].Deltas[h], eras[2].Deltas[h]
		if !(now < fra && fra < ire) {
			t.Fatalf("host %d not monotone: %v %v %v", h, ire, fra, now)
		}
	}
	// The newest era should have a sub-15ms median for North-EU hosts.
	var nowS stats.Sample
	for _, d := range eras[2].Deltas {
		nowS.Add(float64(d) / float64(time.Millisecond))
	}
	if m := nowS.Median(); m > 15 {
		t.Errorf("Now median δ = %vms", m)
	}
}

func TestGeneratePlanetLabCalibration(t *testing.T) {
	paths := GeneratePlanetLab(1, 45)
	if len(paths) != 45 {
		t.Fatalf("got %d paths", len(paths))
	}
	over01, outages := 0, 0
	for _, p := range paths {
		rate := p.Loss.ExpectedLossRate()
		if rate <= 0 || rate > 0.0095 {
			t.Errorf("path %d loss rate %v out of range", p.ID, rate)
		}
		if rate > 0.001 {
			over01++
		}
		if p.Loss.HasOutages() {
			outages++
			if p.Loss.OutageMin < time.Second || p.Loss.OutageMax > 3*time.Second {
				t.Errorf("path %d outage bounds %v–%v", p.ID, p.Loss.OutageMin, p.Loss.OutageMax)
			}
		}
		if p.OneWay < 50*time.Millisecond || p.OneWay > 170*time.Millisecond {
			t.Errorf("path %d one-way %v", p.ID, p.OneWay)
		}
		if p.AccessLoss <= 0 || p.AccessLoss > 0.35*rate {
			t.Errorf("path %d access loss %v vs rate %v", p.ID, p.AccessLoss, rate)
		}
		if p.RTT() != 2*p.OneWay {
			t.Error("RTT formula")
		}
	}
	// ~40% of paths above 0.1%, ~45% with outages (±generous slack for n=45).
	if f := float64(over01) / 45; f < 0.25 || f > 0.55 {
		t.Errorf("fraction >0.1%% = %v", f)
	}
	if f := float64(outages) / 45; f < 0.3 || f > 0.6 {
		t.Errorf("fraction with outages = %v", f)
	}
}

func TestPLPathRegionGroups(t *testing.T) {
	paths := GeneratePlanetLab(2, 45)
	groups := map[string]int{}
	for _, p := range paths {
		groups[p.RegionGroup()]++
		if p.PairName() == "" {
			t.Error("empty pair name")
		}
	}
	for _, g := range []string{"US-EU", "US-OC", "EU-OC"} {
		if groups[g] == 0 {
			t.Errorf("no paths in group %s (got %v)", g, groups)
		}
	}
}

func TestLossProfileExpectedRate(t *testing.T) {
	lp := LossProfile{PRandom: 0.001, PBurstStart: 0.0005, BurstMean: 4}
	if got := lp.ExpectedLossRate(); got != 0.003 {
		t.Errorf("expected rate = %v", got)
	}
	if lp.HasOutages() {
		t.Error("profile without outages reports HasOutages")
	}
}

func TestRegionStrings(t *testing.T) {
	for _, r := range AllRegions {
		if r.String() == "region?" {
			t.Errorf("region %d lacks a name", r)
		}
	}
	if Region(200).String() != "region?" {
		t.Error("unknown region string")
	}
}

func TestMedianTime(t *testing.T) {
	if medianTime(nil) != 0 {
		t.Error("median of empty")
	}
	got := medianTime([]float64{3e6, 1e6, 2e6})
	if got != core.Time(2*time.Millisecond) {
		t.Errorf("median = %v", got)
	}
}
