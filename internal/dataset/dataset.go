// Package dataset synthesizes the measurement datasets the paper collected
// from RIPE Atlas and PlanetLab. Real probes are unavailable offline, so
// each generator is calibrated to the quantiles the paper reports (see
// DESIGN.md §1 for the substitution argument):
//
//   - Figure 7 feasibility paths: 6250 US-East→EU paths with one-way
//     latencies for the direct Internet (y), inter-DC (x), and host↔DC (δ)
//     segments. Calibrated so 55% of EU δ < 10 ms and 15% > 20 ms, with a
//     heavy Internet tail.
//   - Historical δ eras (Figure 7d): Ireland 2007 → Frankfurt 2014 →
//     Stockholm 2018.
//   - PlanetLab-like CR-WAN paths (Figure 8): 45 inter-continental paths
//     with per-path loss processes mixing random, multi-packet, and outage
//     episodes (loss rates up to 0.9%, 40% of paths above 0.1%, 45% of
//     paths seeing 1–3 s outages).
//
// All generators are deterministic functions of their seed.
package dataset

import (
	"math/rand"
	"time"

	"jqos/internal/core"
)

// Region labels the geographic areas used across the evaluation.
type Region uint8

// Regions in the deployment (§6.2.1: DCs in US, EU, Asia, and OC).
const (
	RegionUSEast Region = iota
	RegionUSWest
	RegionEU
	RegionNorthEU
	RegionAsia
	RegionOceania
)

var regionNames = [...]string{"us-east", "us-west", "eu", "north-eu", "asia", "oceania"}

// String implements fmt.Stringer.
func (r Region) String() string {
	if int(r) < len(regionNames) {
		return regionNames[r]
	}
	return "region?"
}

// AllRegions lists every region.
var AllRegions = []Region{RegionUSEast, RegionUSWest, RegionEU, RegionNorthEU, RegionAsia, RegionOceania}

func ms(f float64) core.Time { return core.Time(f * float64(time.Millisecond)) }

// FeasibilityPath is one Figure-7 measurement: one-way latencies of every
// segment of a full overlay between a US-East sender and an EU receiver.
// All values are one-way (the paper halves measured RTTs).
type FeasibilityPath struct {
	ID int
	// DeltaS is sender → DC1 (δ_S).
	DeltaS core.Time
	// DeltaR is receiver → DC2 (δ_R).
	DeltaR core.Time
	// InterDC is DC1 → DC2 over the cloud WAN (x).
	InterDC core.Time
	// Direct is sender → receiver over the public Internet (y).
	Direct core.Time
	// DeltaRMedian is the median δ_R across all receivers — the
	// cooperative-recovery helpers' typical distance (used in the coding
	// delay formula y + 2δ_R + 2δ_median + Δ).
	DeltaRMedian core.Time
}

// RTT returns the direct-path round trip (2y).
func (p FeasibilityPath) RTT() core.Time { return 2 * p.Direct }

// WaitDelta returns Δ: the extra wait when the cloud copy reaches DC2 after
// the pull request could be served, i.e. max(0, (δS+x) − (y+δR)) (§6.1).
func (p FeasibilityPath) WaitDelta() core.Time {
	cloud := p.DeltaS + p.InterDC
	direct := p.Direct + p.DeltaR
	if cloud > direct {
		return cloud - direct
	}
	return 0
}

// ForwardingDelay returns the end-to-end delivery latency over the full
// overlay: x + δS + δR (Figure 2b).
func (p FeasibilityPath) ForwardingDelay() core.Time {
	return p.InterDC + p.DeltaS + p.DeltaR
}

// CachingDelay returns delivery latency when the packet is lost on the
// Internet and pulled from the nearby DC: y + 2δR + Δ (Figure 2c).
func (p FeasibilityPath) CachingDelay() core.Time {
	return p.Direct + 2*p.DeltaR + p.WaitDelta()
}

// CodingDelay returns delivery latency under cooperative recovery:
// y + 2δR + 2δ_median + Δ (Figure 2d, §6.1 methodology).
func (p FeasibilityPath) CodingDelay() core.Time {
	return p.Direct + 2*p.DeltaR + 2*p.DeltaRMedian + p.WaitDelta()
}

// sampleDeltaEU draws a receiver-to-DC one-way latency matching Figure 7c:
// 55% below 10 ms, 30% in 10–20 ms, 15% above 20 ms with an exponential
// tail.
func sampleDeltaEU(r *rand.Rand) core.Time {
	u := r.Float64()
	switch {
	case u < 0.55:
		return ms(1.5 + r.Float64()*8.5) // 1.5–10 ms
	case u < 0.85:
		return ms(10 + r.Float64()*10) // 10–20 ms
	default:
		return ms(20 + r.ExpFloat64()*9) // 20+ ms tail
	}
}

// sampleDeltaUS draws a PlanetLab-sender-to-DC latency: US hosts sit close
// to US-East DCs (well peered academic networks).
func sampleDeltaUS(r *rand.Rand) core.Time {
	return ms(2 + r.ExpFloat64()*6)
}

// GenerateFeasibility synthesizes n Figure-7 paths (the paper used 6250).
func GenerateFeasibility(seed int64, n int) []FeasibilityPath {
	r := rand.New(rand.NewSource(seed))
	paths := make([]FeasibilityPath, n)
	deltaRs := make([]float64, n)
	for i := range paths {
		deltaR := sampleDeltaEU(r)
		deltaRs[i] = float64(deltaR)
		// Transatlantic one-way: cloud WAN is tight around 38–44 ms;
		// the public Internet rides a similar geodesic (40–55 ms) but
		// with a heavy tail — ~8% of paths are persistently inflated
		// (the "consistently poor paths" VIA reroutes).
		interDC := ms(38 + r.Float64()*6)
		direct := ms(40 + r.Float64()*12)
		if r.Float64() < 0.05 {
			direct += ms(25 + r.ExpFloat64()*45)
		}
		paths[i] = FeasibilityPath{
			ID:      i,
			DeltaS:  sampleDeltaUS(r),
			DeltaR:  deltaR,
			InterDC: interDC,
			Direct:  direct,
		}
	}
	// Median δR feeds the coding-delay formula.
	med := medianTime(deltaRs)
	for i := range paths {
		paths[i].DeltaRMedian = med
	}
	return paths
}

func medianTime(vs []float64) core.Time {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	// insertion-free: use sort
	sortFloat64s(s)
	return core.Time(s[len(s)/2])
}

// Era is one generation of cloud presence for Figure 7d.
type Era struct {
	Name string
	Year int
	// Deltas holds each North-EU host's one-way latency to the era's
	// nearest DC.
	Deltas []core.Time
}

// GenerateEras synthesizes Figure 7d: the same North-EU host population
// measured against the nearest DC available in each era. Newer DCs are
// closer, so every host improves monotonically across eras.
func GenerateEras(seed int64, hosts int) []Era {
	r := rand.New(rand.NewSource(seed))
	eras := []Era{
		{Name: "Ireland (2007)", Year: 2007},
		{Name: "Frankfurt (2014)", Year: 2014},
		{Name: "Now", Year: 2018}, // Stockholm
	}
	for i := range eras {
		eras[i].Deltas = make([]core.Time, hosts)
	}
	for h := 0; h < hosts; h++ {
		// Host-specific access component (last mile, shared across eras).
		access := 1 + r.ExpFloat64()*2.5
		// Geographic component per era: Stockholm is in-region for
		// North-EU hosts, Frankfurt one hop south, Ireland across the
		// North Sea.
		stockholm := access + 2 + r.Float64()*6
		frankfurt := stockholm + 8 + r.Float64()*8
		ireland := frankfurt + 8 + r.Float64()*12
		eras[0].Deltas[h] = ms(ireland)
		eras[1].Deltas[h] = ms(frankfurt)
		eras[2].Deltas[h] = ms(stockholm)
	}
	return eras
}
