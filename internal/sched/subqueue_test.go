package sched

import (
	"testing"

	"jqos/internal/core"
)

func TestPerFlowSubqueueFairness(t *testing.T) {
	s := New(Config{
		Weights:       map[core.Service]int{core.ServiceForwarding: 1},
		QueueBytes:    -1,
		PerFlowQueues: true,
	})
	bulk, inter := core.FlowID(1), core.FlowID(2)
	// Bulk floods first; interactive arrives behind the whole backlog.
	for i := 0; i < 10; i++ {
		if !s.Enqueue(core.ServiceForwarding, bulk, make([]byte, 1000)) {
			t.Fatal("bulk enqueue rejected")
		}
	}
	for i := 0; i < 2; i++ {
		if !s.Enqueue(core.ServiceForwarding, inter, make([]byte, 200)) {
			t.Fatal("interactive enqueue rejected")
		}
	}
	// Under a single FIFO the interactive packets would drain 11th and
	// 12th; the nested flow DRR must interleave them near the front.
	var interServed []int
	for i := 0; i < 12; i++ {
		it, ok := s.Dequeue()
		if !ok {
			t.Fatalf("ran dry at %d", i)
		}
		if it.Flow == inter {
			interServed = append(interServed, i)
		}
	}
	if len(interServed) != 2 {
		t.Fatalf("interactive served %d times, want 2", len(interServed))
	}
	if interServed[1] > 4 {
		t.Fatalf("interactive packets served at positions %v — starved behind bulk", interServed)
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("residue after drain: %d pkts %d bytes", s.Len(), s.Bytes())
	}
	if fqs := s.Stats().PerClass[core.ServiceForwarding].FlowQueues; fqs != 0 {
		t.Fatalf("drained class still holds %d sub-queues", fqs)
	}
}

func TestPerFlowVictimDrop(t *testing.T) {
	s := New(Config{
		Weights:       map[core.Service]int{core.ServiceForwarding: 1},
		QueueBytes:    5000,
		PerFlowQueues: true,
	})
	bulk, inter := core.FlowID(1), core.FlowID(2)
	var victims []core.FlowID
	var victimBytes int64
	s.OnVictimDrop = func(class core.Service, flow core.FlowID, size int64) {
		victims = append(victims, flow)
		victimBytes += size
	}
	for i := 0; i < 5; i++ {
		if !s.Enqueue(core.ServiceForwarding, bulk, make([]byte, 1000)) {
			t.Fatal("bulk fill rejected")
		}
	}
	// The class sits at its cap. The interactive arrival must be
	// admitted by dropping the BULK tail, not rejected.
	if !s.Enqueue(core.ServiceForwarding, inter, make([]byte, 400)) {
		t.Fatal("interactive arrival rejected at cap — victim eviction did not run")
	}
	if len(victims) != 1 || victims[0] != bulk || victimBytes != 1000 {
		t.Fatalf("victims %v (%d bytes), want one 1000-byte drop from bulk", victims, victimBytes)
	}
	st := s.Stats().PerClass[core.ServiceForwarding]
	if st.VictimDrops != 1 || st.DroppedPackets != 1 {
		t.Fatalf("victim/dropped = %d/%d, want 1/1", st.VictimDrops, st.DroppedPackets)
	}
	if st.QueuedBytes != 4400 || st.QueuedPackets != 5 {
		t.Fatalf("depth %d bytes %d pkts after eviction", st.QueuedBytes, st.QueuedPackets)
	}

	// The bulk flow's OWN next arrival is the longest queue's — it is
	// rejected outright, no sibling pays.
	if s.Enqueue(core.ServiceForwarding, bulk, make([]byte, 1000)) {
		t.Fatal("bulk arrival admitted past cap with bulk itself the longest")
	}
	if len(victims) != 1 {
		t.Fatalf("bulk self-drop evicted a sibling: victims %v", victims)
	}
}

func TestPerFlowVictimDropKeepsOrder(t *testing.T) {
	s := New(Config{
		Weights:       map[core.Service]int{core.ServiceForwarding: 1},
		QueueBytes:    3000,
		PerFlowQueues: true,
	})
	bulk, inter := core.FlowID(1), core.FlowID(2)
	// Three distinguishable bulk packets; the victim drop must take the
	// TAIL (len 3), leaving 1 and 2 to deliver in order.
	for _, n := range []int{1, 2, 3} {
		s.Enqueue(core.ServiceForwarding, bulk, make([]byte, 1000)[:1000-n])
	}
	if !s.Enqueue(core.ServiceForwarding, inter, make([]byte, 900)) {
		t.Fatal("interactive rejected")
	}
	var bulkSizes []int
	for {
		it, ok := s.Dequeue()
		if !ok {
			break
		}
		if it.Flow == bulk {
			bulkSizes = append(bulkSizes, len(it.Msg))
		}
	}
	if len(bulkSizes) != 2 || bulkSizes[0] != 999 || bulkSizes[1] != 998 {
		t.Fatalf("bulk survivors %v, want [999 998] (tail dropped, order kept)", bulkSizes)
	}
}

func TestPerFlowClassWeightsStillHold(t *testing.T) {
	// Flow fairness nests INSIDE class weighting: with 3:1 weights and
	// both classes backlogged, dequeued bytes must still split ~3:1
	// whatever the per-class flow mix.
	s := New(Config{
		Weights: map[core.Service]int{
			core.ServiceForwarding: 3,
			core.ServiceCaching:    1,
		},
		QueueBytes:    -1,
		PerFlowQueues: true,
	})
	for i := 0; i < 300; i++ {
		s.Enqueue(core.ServiceForwarding, core.FlowID(1+i%3), make([]byte, 1000))
		s.Enqueue(core.ServiceCaching, core.FlowID(10+i%2), make([]byte, 1000))
	}
	var fwd, cache int
	for i := 0; i < 200; i++ {
		it, ok := s.Dequeue()
		if !ok {
			t.Fatal("ran dry")
		}
		if it.Class == core.ServiceForwarding {
			fwd++
		} else {
			cache++
		}
	}
	ratio := float64(fwd) / float64(cache)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("forwarding:caching = %d:%d (%.2f), want ~3", fwd, cache, ratio)
	}
}

func TestPerFlowSubqueueRecycling(t *testing.T) {
	s := New(Config{
		Weights:       map[core.Service]int{core.ServiceForwarding: 1},
		PerFlowQueues: true,
	})
	// Churn many distinct flows through; live sub-queue state must track
	// only the backlogged ones.
	for round := 0; round < 5; round++ {
		for f := core.FlowID(1); f <= 8; f++ {
			s.Enqueue(core.ServiceForwarding, f, make([]byte, 100))
		}
		if fqs := s.Stats().PerClass[core.ServiceForwarding].FlowQueues; fqs != 8 {
			t.Fatalf("round %d: %d sub-queues, want 8", round, fqs)
		}
		for {
			if _, ok := s.Dequeue(); !ok {
				break
			}
		}
		if fqs := s.Stats().PerClass[core.ServiceForwarding].FlowQueues; fqs != 0 {
			t.Fatalf("round %d: %d sub-queues after drain", round, fqs)
		}
	}
}

// BenchmarkSubqueueEnqueueDequeue gates the per-flow discipline's
// steady-state hot path at 0 allocs/op: sub-queues churn (created on
// enqueue, recycled on drain) every operation, exercising the free list
// and the map slot reuse.
func BenchmarkSubqueueEnqueueDequeue(b *testing.B) {
	s := New(Config{
		Weights: map[core.Service]int{
			core.ServiceForwarding: 8,
			core.ServiceCaching:    1,
		},
		PerFlowQueues: true,
	})
	payload := make([]byte, 1200)
	classes := [2]core.Service{core.ServiceForwarding, core.ServiceCaching}
	// Warm-up: grow rings, free lists, and map buckets past anything the
	// loop reaches.
	for i := 0; i < 64; i++ {
		s.Enqueue(classes[i%2], core.FlowID(1+i%4), payload)
	}
	for {
		if _, ok := s.Dequeue(); !ok {
			break
		}
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Enqueue(classes[i%2], core.FlowID(1+i%4), payload) {
			b.Fatal("enqueue rejected")
		}
		if _, ok := s.Dequeue(); !ok {
			b.Fatal("dequeue ran dry")
		}
	}
	if s.Len() != 0 {
		b.Fatal("backlog after balanced enqueue/dequeue")
	}
}
