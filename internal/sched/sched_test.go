package sched

import (
	"testing"

	"jqos/internal/core"
)

func msg(n int) []byte { return make([]byte, n) }

// drain dequeues everything, returning the class sequence.
func drain(s *DRR) []core.Service {
	var out []core.Service
	for {
		it, ok := s.Dequeue()
		if !ok {
			return out
		}
		out = append(out, it.Class)
	}
}

func TestDequeueEmpty(t *testing.T) {
	s := New(Config{Weights: map[core.Service]int{}})
	if _, ok := s.Dequeue(); ok {
		t.Fatal("dequeue from empty scheduler returned a packet")
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("empty scheduler reports len=%d bytes=%d", s.Len(), s.Bytes())
	}
}

func TestFIFOWithinClass(t *testing.T) {
	s := New(Config{Weights: map[core.Service]int{}})
	for i := 1; i <= 5; i++ {
		if !s.Enqueue(core.ServiceForwarding, core.FlowID(i), msg(100)) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	for i := 1; i <= 5; i++ {
		it, ok := s.Dequeue()
		if !ok || it.Flow != core.FlowID(i) {
			t.Fatalf("dequeue %d: got flow %d ok=%v", i, it.Flow, ok)
		}
	}
}

// TestWeightedShares backlogs two classes and checks dequeued bytes track
// the configured weights over a long drain.
func TestWeightedShares(t *testing.T) {
	s := New(Config{
		Weights: map[core.Service]int{
			core.ServiceForwarding: 4,
			core.ServiceCaching:    1,
		},
		QueueBytes: -1,
	})
	const n = 1000
	for i := 0; i < n; i++ {
		s.Enqueue(core.ServiceForwarding, 1, msg(1000))
		s.Enqueue(core.ServiceCaching, 2, msg(1000))
	}
	// Dequeue only half the backlog so both classes stay backlogged —
	// shares are only defined under contention.
	var fwd, cch int
	for i := 0; i < n; i++ {
		it, ok := s.Dequeue()
		if !ok {
			t.Fatal("scheduler ran dry mid-contention")
		}
		switch it.Class {
		case core.ServiceForwarding:
			fwd++
		case core.ServiceCaching:
			cch++
		}
	}
	ratio := float64(fwd) / float64(cch)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("weight-4:1 contention dequeued %d:%d (ratio %.2f), want ~4", fwd, cch, ratio)
	}
}

// TestWorkConserving: an idle high-weight class must not hold back the
// only backlogged one.
func TestWorkConserving(t *testing.T) {
	s := New(Config{Weights: map[core.Service]int{core.ServiceForwarding: 100}})
	for i := 0; i < 50; i++ {
		s.Enqueue(core.ServiceCaching, 1, msg(500))
	}
	got := drain(s)
	if len(got) != 50 {
		t.Fatalf("drained %d of 50 packets", len(got))
	}
	for _, c := range got {
		if c != core.ServiceCaching {
			t.Fatalf("unexpected class %v", c)
		}
	}
}

// TestOversizedPacketAccumulatesDeficit: a packet bigger than one
// quantum×weight grant must still dequeue after enough rounds.
func TestOversizedPacketAccumulatesDeficit(t *testing.T) {
	s := New(Config{
		Weights: map[core.Service]int{core.ServiceCoding: 1},
		Quantum: 100,
	})
	s.Enqueue(core.ServiceCoding, 7, msg(950)) // needs ~10 grants
	s.Enqueue(core.ServiceForwarding, 8, msg(50))
	got := drain(s)
	if len(got) != 2 {
		t.Fatalf("drained %d of 2", len(got))
	}
	st := s.Stats()
	if st.Rounds < 10 {
		t.Errorf("oversized packet dequeued after %d rounds, want ≥10", st.Rounds)
	}
}

func TestByteCapDropsFromTail(t *testing.T) {
	s := New(Config{
		Weights:    map[core.Service]int{},
		QueueBytes: 2500,
	})
	for i := 0; i < 5; i++ {
		s.Enqueue(core.ServiceCaching, 3, msg(1000))
	}
	st := s.Stats()
	c := st.PerClass[core.ServiceCaching]
	if c.EnqueuedPackets != 2 || c.DroppedPackets != 3 {
		t.Fatalf("cap 2500: enqueued=%d dropped=%d, want 2/3", c.EnqueuedPackets, c.DroppedPackets)
	}
	if c.DroppedBytes != 3000 {
		t.Errorf("dropped bytes = %d, want 3000", c.DroppedBytes)
	}
	// The cap is per class: another class still accepts.
	if !s.Enqueue(core.ServiceForwarding, 4, msg(1000)) {
		t.Error("sibling class rejected under another class's cap")
	}
	// Draining frees cap space.
	s.Dequeue()
	if !s.Enqueue(core.ServiceCaching, 3, msg(1000)) {
		t.Error("enqueue rejected after drain freed cap space")
	}
}

// TestOversizedPacketAdmittedWhenEmpty: the byte cap bounds backlog,
// not packet size — a message larger than the whole cap still traverses
// an idle queue instead of blackholing forever.
func TestOversizedPacketAdmittedWhenEmpty(t *testing.T) {
	s := New(Config{Weights: map[core.Service]int{}, QueueBytes: 1000})
	if !s.Enqueue(core.ServiceForwarding, 1, msg(5000)) {
		t.Fatal("oversized packet rejected by an empty queue")
	}
	// With the oversized packet in place, the backlog is over cap: the
	// next arrival drops.
	if s.Enqueue(core.ServiceForwarding, 1, msg(100)) {
		t.Fatal("arrival admitted over an above-cap backlog")
	}
	it, ok := s.Dequeue()
	if !ok || len(it.Msg) != 5000 {
		t.Fatalf("oversized packet not released: ok=%v len=%d", ok, len(it.Msg))
	}
	// Drained: the queue admits again.
	if !s.Enqueue(core.ServiceForwarding, 1, msg(100)) {
		t.Fatal("queue wedged after oversized packet drained")
	}
}

func TestUnknownClassRejected(t *testing.T) {
	s := New(Config{Weights: map[core.Service]int{}})
	if s.Enqueue(core.Service(250), 1, msg(10)) {
		t.Fatal("unknown class accepted")
	}
	if s.Len() != 0 {
		t.Fatal("unknown class entered a queue")
	}
}

func TestStatsAccounting(t *testing.T) {
	s := New(Config{Weights: map[core.Service]int{}})
	s.Enqueue(core.ServiceForwarding, 1, msg(100))
	s.Enqueue(core.ServiceForwarding, 1, msg(200))
	s.Enqueue(core.ServiceCaching, 2, msg(300))
	if s.Len() != 3 || s.Bytes() != 600 {
		t.Fatalf("queued len=%d bytes=%d, want 3/600", s.Len(), s.Bytes())
	}
	s.Dequeue()
	st := s.Stats()
	if st.QueuedPackets != 2 {
		t.Fatalf("after one dequeue queued=%d", st.QueuedPackets)
	}
	f := st.PerClass[core.ServiceForwarding]
	if f.EnqueuedBytes != 300 || f.EnqueuedPackets != 2 {
		t.Errorf("forwarding enqueued %d/%d, want 300/2", f.EnqueuedBytes, f.EnqueuedPackets)
	}
	drain(s)
	st = s.Stats()
	if st.QueuedPackets != 0 || st.QueuedBytes != 0 {
		t.Fatalf("post-drain depth %d/%d", st.QueuedPackets, st.QueuedBytes)
	}
	total := uint64(0)
	for _, c := range st.PerClass {
		total += c.DequeuedPackets
	}
	if total != 3 {
		t.Fatalf("dequeued %d of 3", total)
	}
}

// TestRingGrowthPreservesOrder pushes past several growth boundaries with
// interleaved pops so the ring wraps, then checks FIFO order survived.
func TestRingGrowthPreservesOrder(t *testing.T) {
	s := New(Config{Weights: map[core.Service]int{}, QueueBytes: -1})
	next := core.FlowID(1)
	want := core.FlowID(1)
	for step := 0; step < 200; step++ {
		for i := 0; i < 3; i++ {
			s.Enqueue(core.ServiceCoding, next, msg(10))
			next++
		}
		it, ok := s.Dequeue()
		if !ok || it.Flow != want {
			t.Fatalf("step %d: got flow %d ok=%v, want %d", step, it.Flow, ok, want)
		}
		want++
	}
	for {
		it, ok := s.Dequeue()
		if !ok {
			break
		}
		if it.Flow != want {
			t.Fatalf("drain: got flow %d, want %d", it.Flow, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained through flow %d, want %d", want-1, next-1)
	}
}

func TestDisabledConfig(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Fatal("zero config reads as enabled")
	}
	if !(Config{Weights: map[core.Service]int{}}).Enabled() {
		t.Fatal("empty-map config reads as disabled")
	}
}

// TestWatermarkHysteresis walks one class queue through the full state
// machine: Clear → Warm → Hot on the way up, and (hysteresis) Hot only
// cools after falling below the LOW watermark, Warm only clears below
// half of it.
func TestWatermarkHysteresis(t *testing.T) {
	// Cap 1000 → low 250, high 750 with the defaults.
	s := New(Config{Weights: map[core.Service]int{}, QueueBytes: 1000, Quantum: 1000})
	type flip struct {
		st    QueueState
		depth int64
	}
	var flips []flip
	s.OnStateChange = func(cls core.Service, st QueueState, depth int64) {
		if cls != core.ServiceCaching {
			t.Fatalf("transition on class %v", cls)
		}
		flips = append(flips, flip{st, depth})
	}
	enq := func(n int) {
		if !s.Enqueue(core.ServiceCaching, 1, msg(n)) {
			t.Fatalf("enqueue %d rejected at depth %d", n, s.Bytes())
		}
	}
	deq := func() {
		if _, ok := s.Dequeue(); !ok {
			t.Fatal("dequeue ran dry")
		}
	}

	enq(100) // 100: still Clear
	if s.State(core.ServiceCaching) != QueueClear {
		t.Fatalf("state at 100 = %v", s.State(core.ServiceCaching))
	}
	enq(200) // 300: past low → Warm
	if s.State(core.ServiceCaching) != QueueWarm {
		t.Fatalf("state at 300 = %v", s.State(core.ServiceCaching))
	}
	enq(200) // 500: inside the band → still Warm
	enq(300) // 800: past high → Hot
	if s.State(core.ServiceCaching) != QueueHot {
		t.Fatalf("state at 800 = %v", s.State(core.ServiceCaching))
	}
	deq() // 700: below high but above low → STAYS Hot (hysteresis)
	if s.State(core.ServiceCaching) != QueueHot {
		t.Fatalf("state at 700 = %v, want hot", s.State(core.ServiceCaching))
	}
	deq() // 500
	deq() // 300
	if s.State(core.ServiceCaching) != QueueHot {
		t.Fatalf("state at 300 = %v, want hot", s.State(core.ServiceCaching))
	}
	deq() // 0 ≤ low → empties: Clear
	if s.State(core.ServiceCaching) != QueueClear {
		t.Fatalf("state after drain = %v", s.State(core.ServiceCaching))
	}

	want := []flip{{QueueWarm, 300}, {QueueHot, 800}, {QueueClear, 0}}
	if len(flips) != len(want) {
		t.Fatalf("flips = %+v, want %+v", flips, want)
	}
	for i := range want {
		if flips[i] != want[i] {
			t.Fatalf("flip %d = %+v, want %+v", i, flips[i], want[i])
		}
	}
	if st := s.Stats().PerClass[core.ServiceCaching]; st.StateChanges != uint64(len(want)) || st.State != QueueClear {
		t.Fatalf("stats state=%v changes=%d", st.State, st.StateChanges)
	}
}

// TestWatermarkCoolsThroughWarm checks the downward path when the queue
// does not fully drain: Hot → Warm at the low watermark, Warm → Clear
// at half of it.
func TestWatermarkCoolsThroughWarm(t *testing.T) {
	s := New(Config{Weights: map[core.Service]int{}, QueueBytes: 1000, Quantum: 1000})
	for i := 0; i < 8; i++ {
		s.Enqueue(core.ServiceCoding, 1, msg(100)) // 800 → Hot
	}
	if s.State(core.ServiceCoding) != QueueHot {
		t.Fatalf("state = %v, want hot", s.State(core.ServiceCoding))
	}
	for i := 0; i < 6; i++ { // 200 ≤ low → Warm
		s.Dequeue()
	}
	if s.State(core.ServiceCoding) != QueueWarm {
		t.Fatalf("state at 200 = %v, want warm", s.State(core.ServiceCoding))
	}
	s.Dequeue() // 100 ≤ low/2 → Clear
	if s.State(core.ServiceCoding) != QueueClear {
		t.Fatalf("state at 100 = %v, want clear", s.State(core.ServiceCoding))
	}
}

// TestWatermarkConfig checks defaulting and clamping: custom fractions
// take effect, an inverted band is repaired, and an unbounded queue
// falls back to the default cap as its watermark basis.
func TestWatermarkConfig(t *testing.T) {
	s := New(Config{Weights: map[core.Service]int{}, QueueBytes: 1000,
		LowWatermark: 0.5, HighWatermark: 0.9})
	if s.low != 500 || s.high != 900 {
		t.Fatalf("custom watermarks = %d/%d, want 500/900", s.low, s.high)
	}
	s = New(Config{Weights: map[core.Service]int{}, QueueBytes: 1000,
		LowWatermark: 0.9, HighWatermark: 0.6})
	if s.low >= s.high {
		t.Fatalf("inverted band not repaired: %d/%d", s.low, s.high)
	}
	s = New(Config{Weights: map[core.Service]int{}, QueueBytes: -1})
	if s.low != DefaultQueueBytes/4 || s.high != DefaultQueueBytes*3/4 {
		t.Fatalf("unbounded basis = %d/%d", s.low, s.high)
	}
}

// TestConfigShareHelpers pins the admission-sizing helpers to the
// scheduler's own defaulting rules.
func TestConfigShareHelpers(t *testing.T) {
	cfg := Config{Weights: map[core.Service]int{
		core.ServiceForwarding: 8,
		core.ServiceCaching:    0, // clamps to 1
	}}
	if w := cfg.WeightOf(core.ServiceForwarding); w != 8 {
		t.Fatalf("WeightOf(fwd) = %d", w)
	}
	if w := cfg.WeightOf(core.ServiceCaching); w != 1 {
		t.Fatalf("WeightOf(caching) = %d, want clamp to 1", w)
	}
	if w := cfg.WeightOf(core.ServiceCoding); w != 1 {
		t.Fatalf("WeightOf(absent) = %d, want 1", w)
	}
	if tw := cfg.TotalWeight(); tw != 8+1+1+1 {
		t.Fatalf("TotalWeight = %d, want 11", tw)
	}
	// The Internet queue idles in steady state: the contention
	// denominator admission sizes against excludes its weight.
	if cw := cfg.ContendedWeight(); cw != 8+1+1 {
		t.Fatalf("ContendedWeight = %d, want 10", cw)
	}
	if q := (Config{}).EffectiveQueueBytes(); q != DefaultQueueBytes {
		t.Fatalf("EffectiveQueueBytes zero = %d", q)
	}
	if q := (Config{QueueBytes: 42}).EffectiveQueueBytes(); q != 42 {
		t.Fatalf("EffectiveQueueBytes explicit = %d", q)
	}
	if q := (Config{QueueBytes: -5}).EffectiveQueueBytes(); q != -1 {
		t.Fatalf("EffectiveQueueBytes unbounded = %d", q)
	}
}
