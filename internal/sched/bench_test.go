package sched

import (
	"testing"

	"jqos/internal/core"
)

// BenchmarkSchedEnqueueDequeue is the steady-state egress hot path: one
// enqueue plus one dequeue per packet, two classes contending. Every
// inter-DC packet pays this when scheduling is on, so it must stay
// allocation-free (the rings are pre-grown by the warm-up; growth is the
// only allocating path).
func BenchmarkSchedEnqueueDequeue(b *testing.B) {
	s := New(Config{
		Weights: map[core.Service]int{
			core.ServiceForwarding: 8,
			core.ServiceCaching:    1,
		},
	})
	payload := make([]byte, 1200)
	classes := [2]core.Service{core.ServiceForwarding, core.ServiceCaching}
	// Warm-up: grow both rings past any size the loop reaches.
	for i := 0; i < 64; i++ {
		s.Enqueue(classes[i%2], core.FlowID(i), payload)
	}
	for {
		if _, ok := s.Dequeue(); !ok {
			break
		}
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Enqueue(classes[i%2], core.FlowID(i), payload) {
			b.Fatal("enqueue rejected")
		}
		if _, ok := s.Dequeue(); !ok {
			b.Fatal("dequeue ran dry")
		}
	}
	if s.Len() != 0 {
		b.Fatal("backlog after balanced enqueue/dequeue")
	}
}

// BenchmarkSchedBacklogged measures dequeue under a standing multi-class
// backlog — the contended regime where DRR's round-robin actually cycles.
func BenchmarkSchedBacklogged(b *testing.B) {
	s := New(Config{
		Weights: map[core.Service]int{
			core.ServiceForwarding: 4,
			core.ServiceCoding:     2,
			core.ServiceCaching:    1,
		},
		QueueBytes: -1,
	})
	payload := make([]byte, 1200)
	for i := 0; i < 512; i++ {
		s.Enqueue(core.Service(1+i%3), core.FlowID(i), payload)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, ok := s.Dequeue()
		if !ok {
			b.Fatal("ran dry")
		}
		if !s.Enqueue(it.Class, it.Flow, it.Msg) {
			b.Fatal("refill rejected")
		}
	}
}
