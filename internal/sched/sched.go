// Package sched implements the per-class egress scheduler of a DC's
// inter-DC links: a deficit-round-robin (DRR) discipline over one queue
// per J-QoS service class, so interactive classes preempt bulk traffic
// INSIDE a link instead of only routing around it. The paper's judicious
// QoS promises interactive flows overlay resources ahead of bulk; per-link
// metering and congestion-aware routing (internal/load, PR 3) spread load
// across links, and this scheduler converts that into intra-link delay
// protection — the missing half of the guarantee when contending classes
// share a single egress.
//
// The scheduler is sans-IO, like the protocol engines: Enqueue accepts
// marshaled messages, Dequeue hands back the next message the discipline
// releases, and the hosting runtime (the emulator's egress pump, or a real
// socket writer) moves the bytes and paces dequeues at the link rate. The
// steady-state Enqueue/Dequeue path performs no allocation — every
// inter-DC packet pays it (see BenchmarkSchedEnqueueDequeue).
package sched

import "jqos/internal/core"

// NumClasses is the number of scheduled service classes — one queue per
// J-QoS service, indexed by core.Service.
const NumClasses = core.NumServices

// Defaults for zero-valued Config fields.
const (
	// DefaultQuantum is the per-weight-unit byte credit added to a class
	// queue each round. One MTU keeps DRR's O(1) guarantee: any packet up
	// to the quantum dequeues within one credit of its class.
	DefaultQuantum = 1500
	// DefaultQueueBytes caps each class queue when Config.QueueBytes is
	// zero. One MiB is ~1 s of a 1 MB/s link — past that, queueing delay
	// exceeds any interactive budget and dropping beats waiting.
	DefaultQueueBytes = 1 << 20
	// DefaultLowWatermark / DefaultHighWatermark are the queue-depth
	// fractions (of the byte cap) that bound the congestion hysteresis
	// band when Config leaves them zero. High sits well under 1.0 so a
	// Hot signal fires while there is still headroom to react before the
	// cap starts dropping from the tail.
	DefaultLowWatermark  = 0.25
	DefaultHighWatermark = 0.75
)

// QueueState classifies one class queue's depth against the configured
// watermarks — the raw signal of the congestion-feedback plane. The
// state machine is hysteretic: a queue turns Hot crossing the high
// watermark, but only cools back through Warm after falling below the
// low one, so a queue oscillating around one threshold does not spray
// transitions.
type QueueState uint8

const (
	// QueueClear: shallow backlog, senders may speed up.
	QueueClear QueueState = iota
	// QueueWarm: backlog building past the low watermark.
	QueueWarm
	// QueueHot: backlog past the high watermark — tail-drops are
	// imminent; senders should back off NOW.
	QueueHot
)

// String implements fmt.Stringer.
func (s QueueState) String() string {
	switch s {
	case QueueClear:
		return "clear"
	case QueueWarm:
		return "warm"
	case QueueHot:
		return "hot"
	default:
		return "queuestate(?)"
	}
}

// Config tunes one egress scheduler. The zero value (nil Weights)
// disables scheduling entirely: the hosting data plane bypasses the
// scheduler and sends FIFO, byte-for-byte the legacy behavior.
type Config struct {
	// Weights maps each service class to its DRR weight — the class's
	// relative share of link bytes under contention (work-conserving: an
	// idle class's share flows to the backlogged ones). Classes absent
	// from a non-nil map get weight 1; values below 1 are clamped to 1.
	// Nil disables egress scheduling.
	Weights map[core.Service]int
	// QueueBytes caps each class queue in bytes; an arrival that would
	// push a non-empty queue past the cap is dropped from the tail and
	// accounted per class (the hosting runtime surfaces the drop to the
	// owning flow). An empty queue always admits one packet, so the cap
	// bounds backlog without blackholing oversized messages. Zero means
	// DefaultQueueBytes; negative means unbounded.
	QueueBytes int64
	// Quantum is the byte credit per weight unit per DRR round. Zero
	// means DefaultQuantum. Keep it at least the largest packet size, or
	// an oversized packet needs several rounds to accumulate credit.
	Quantum int
	// LowWatermark / HighWatermark position the congestion-detection
	// band as fractions of the per-queue byte cap (an unbounded queue
	// uses DefaultQueueBytes as the basis). A class queue flips Hot at
	// the high watermark and cools back off below the low one (full
	// hysteresis; see QueueState). Zeros mean DefaultLowWatermark /
	// DefaultHighWatermark; values are clamped into (0, 1] with
	// low < high.
	LowWatermark  float64
	HighWatermark float64
	// PerFlowQueues nests a second deficit round-robin INSIDE each class
	// queue, one sub-queue per flow, so sibling flows of the same class
	// share the class's bytes fairly — one bulk flow cannot starve its
	// tenant-mates out of their common class. Each flow's sub-queue gets
	// one quantum of credit per flow-level round (flows are equal within
	// a class; the class weights arbitrate BETWEEN classes as before),
	// and on class byte-cap overflow the LONGEST sub-queue loses its
	// tail instead of the arrival being rejected (see DRR.OnVictimDrop),
	// so a polite flow's packet is never the one dropped for a greedy
	// sibling's backlog. Sub-queue state exists only while a flow has
	// packets queued — a drained sub-queue is recycled immediately, and
	// the steady-state path stays allocation-free
	// (BenchmarkSubqueueEnqueueDequeue). Off (the default) keeps the
	// single FIFO per class, byte-for-byte the previous discipline.
	PerFlowQueues bool
}

// Enabled reports whether the config turns scheduling on.
func (c Config) Enabled() bool { return c.Weights != nil }

// WeightOf returns the effective DRR weight of a class under this
// config: listed weights clamp up to 1, absent classes get 1 — exactly
// New's defaulting, exported so admission sizing prices the same shares
// the scheduler enforces.
func (c Config) WeightOf(class core.Service) int64 {
	if w, ok := c.Weights[class]; ok && w > 1 {
		return int64(w)
	}
	return 1
}

// TotalWeight sums the effective weights of all classes, the Internet
// queue included (it exists in the DRR — a relayed best-effort packet
// can transit a DC).
func (c Config) TotalWeight() int64 {
	var t int64
	for i := 0; i < NumClasses; i++ {
		t += c.WeightOf(core.Service(i))
	}
	return t
}

// ContendedWeight sums the effective weights of the classes that can
// actually sustain backlog at a DC egress — the cloud service classes.
// The Internet queue idles in steady state (Internet-service flows
// send no cloud copies), and work-conservation redistributes its
// share, so admission sizing divides by THIS sum: using TotalWeight
// would understate every class's guaranteed share and reject
// honorable contracts.
func (c Config) ContendedWeight() int64 {
	return c.TotalWeight() - c.WeightOf(core.ServiceInternet)
}

// EffectiveQueueBytes returns the per-class byte cap after defaulting:
// QueueBytes, DefaultQueueBytes for zero, or -1 for a negative
// (unbounded) configuration.
func (c Config) EffectiveQueueBytes() int64 {
	switch {
	case c.QueueBytes > 0:
		return c.QueueBytes
	case c.QueueBytes < 0:
		return -1
	default:
		return DefaultQueueBytes
	}
}

// Item is one scheduled message: the marshaled bytes plus the metadata
// the hosting runtime needs to account its departure (class) and to
// attribute drops (flow; 0 when the packet carries no single flow).
// Stamp is the caller's enqueue timestamp (EnqueueStamped), carried
// through to Dequeue so the runtime can attribute queue wait without a
// side table; plain Enqueue leaves it zero.
type Item struct {
	Class core.Service
	Flow  core.FlowID
	Msg   []byte
	Stamp core.Time
}

// ClassStats counts one class queue's activity.
type ClassStats struct {
	EnqueuedBytes   uint64
	EnqueuedPackets uint64
	DequeuedBytes   uint64
	DequeuedPackets uint64
	DroppedBytes    uint64
	DroppedPackets  uint64
	// QueuedBytes / QueuedPackets are the live queue depth.
	QueuedBytes   int64
	QueuedPackets int
	// State is the queue's current congestion classification against the
	// watermarks; StateChanges counts its transitions.
	State        QueueState
	StateChanges uint64
	// FlowQueues is the live per-flow sub-queue count (0 unless
	// Config.PerFlowQueues); VictimDrops counts packets dropped from the
	// longest sub-queue's tail to admit another flow's arrival (a subset
	// of DroppedPackets).
	FlowQueues  int
	VictimDrops uint64
}

// Stats is a scheduler snapshot: per-class counters plus totals.
type Stats struct {
	PerClass [NumClasses]ClassStats
	// Rounds counts deficit-credit grants — how often the round-robin
	// visited a backlogged class and topped up its deficit.
	Rounds uint64
	// QueuedBytes / QueuedPackets total the live backlog across classes.
	QueuedBytes   int64
	QueuedPackets int
}

// ring is a growable FIFO of Items. Growth doubles the backing slice
// (amortized; the steady state allocates nothing), and popped slots are
// zeroed so dequeued messages do not linger reachable.
type ring struct {
	items []Item
	head  int
	n     int
}

func (r *ring) push(it Item) {
	if r.n == len(r.items) {
		size := 2 * len(r.items)
		if size < 8 {
			size = 8
		}
		grown := make([]Item, size)
		for i := 0; i < r.n; i++ {
			grown[i] = r.items[(r.head+i)%len(r.items)]
		}
		r.items, r.head = grown, 0
	}
	r.items[(r.head+r.n)%len(r.items)] = it
	r.n++
}

func (r *ring) pop() Item {
	it := r.items[r.head]
	r.items[r.head] = Item{} // release the message reference
	r.head = (r.head + 1) % len(r.items)
	r.n--
	return it
}

func (r *ring) peekSize() int { return len(r.items[r.head].Msg) }

// popTail removes the most recent arrival — the victim-drop direction:
// a sub-queue past its fair share loses the packet that has waited
// least, preserving in-order delivery of what already queued.
func (r *ring) popTail() Item {
	i := (r.head + r.n - 1) % len(r.items)
	it := r.items[i]
	r.items[i] = Item{}
	r.n--
	return it
}

// flowQ is one flow's sub-queue inside a class: its own FIFO plus the
// flow-level DRR bookkeeping. Instances are recycled through a per-class
// free list the moment they drain, so churning flows reuse rings (and
// their grown backing arrays) instead of allocating.
type flowQ struct {
	flow     core.FlowID
	q        ring
	bytes    int64
	deficit  int64
	credited bool
}

// classFlows is one class's flow-level round-robin: the active
// (non-empty) sub-queues in service order, an index by flow, and the
// free list.
type classFlows struct {
	active []*flowQ
	rr     int // next sub-queue to visit
	idx    map[core.FlowID]*flowQ
	free   []*flowQ
}

// remove retires the drained sub-queue at active[i], preserving the
// round-robin position of the remaining flows.
func (cf *classFlows) remove(i int) {
	fq := cf.active[i]
	copy(cf.active[i:], cf.active[i+1:])
	cf.active[len(cf.active)-1] = nil
	cf.active = cf.active[:len(cf.active)-1]
	if cf.rr > i {
		cf.rr--
	}
	if cf.rr >= len(cf.active) {
		cf.rr = 0
	}
	delete(cf.idx, fq.flow)
	fq.flow, fq.bytes, fq.deficit, fq.credited = 0, 0, 0, false
	cf.free = append(cf.free, fq)
}

// DRR is one egress link's deficit-round-robin scheduler. Not safe for
// concurrent use — the hosting runtime is single-threaded (the emulator)
// or serializes per link.
type DRR struct {
	weights [NumClasses]int64
	quantum int64
	cap     int64 // per-queue byte cap; <0 unbounded
	// low / high are the watermark thresholds in bytes (see QueueState);
	// state holds each class queue's current classification.
	low, high int64
	state     [NumClasses]QueueState

	// OnStateChange, when set, fires on every watermark transition of a
	// class queue with the new state and the depth that caused it. It is
	// called from inside Enqueue/Dequeue on the egress hot path: keep it
	// allocation-free and do not call back into the scheduler.
	OnStateChange func(class core.Service, st QueueState, depth int64)

	// OnVictimDrop, when set, fires for every packet dropped from the
	// longest sub-queue's tail to make room for another flow's arrival
	// (Config.PerFlowQueues only) — the hosting runtime attributes the
	// drop to the VICTIM flow, which is not the flow Enqueue was called
	// for. Same hot-path rules as OnStateChange.
	OnVictimDrop func(class core.Service, flow core.FlowID, size int64)

	// perFlow switches each class from one FIFO to flow sub-queues.
	perFlow bool
	flows   [NumClasses]classFlows

	q       [NumClasses]ring
	deficit [NumClasses]int64
	// credited marks classes already granted their deficit for the
	// current visit; it resets when the round-robin moves on, so a class
	// revisited in a later round accumulates credit toward a packet
	// larger than one grant.
	credited [NumClasses]bool
	cur      int

	stats Stats
}

// New builds a scheduler from cfg (see Config for defaulting rules).
// Callers should only construct one when cfg.Enabled().
func New(cfg Config) *DRR {
	s := &DRR{quantum: DefaultQuantum, cap: DefaultQueueBytes}
	if cfg.Quantum > 0 {
		s.quantum = int64(cfg.Quantum)
	}
	if cfg.PerFlowQueues {
		s.perFlow = true
		for i := range s.flows {
			s.flows[i].idx = make(map[core.FlowID]*flowQ)
		}
	}
	switch {
	case cfg.QueueBytes > 0:
		s.cap = cfg.QueueBytes
	case cfg.QueueBytes < 0:
		s.cap = -1
	}
	for i := range s.weights {
		s.weights[i] = cfg.WeightOf(core.Service(i))
	}
	// Watermarks are sized off the byte cap (an unbounded queue still
	// signals, using the default cap as its basis — depth past ~1 MiB is
	// congestion whether or not anything ever drops).
	basis := s.cap
	if basis < 0 {
		basis = DefaultQueueBytes
	}
	lw, hw := cfg.LowWatermark, cfg.HighWatermark
	if lw <= 0 {
		lw = DefaultLowWatermark
	}
	if hw <= 0 {
		hw = DefaultHighWatermark
	}
	if hw > 1 {
		hw = 1
	}
	if lw >= hw {
		lw = hw / 2
	}
	s.low = int64(lw * float64(basis))
	if s.low < 1 {
		s.low = 1
	}
	s.high = int64(hw * float64(basis))
	if s.high <= s.low {
		s.high = s.low + 1
	}
	return s
}

// nextQueueState advances the hysteretic watermark state machine for a
// queue at the given depth. An empty queue is always Clear; heating
// crosses low then high; cooling from Hot requires falling below LOW
// (not merely high), and Warm only clears below half the low watermark.
func nextQueueState(cur QueueState, depth, low, high int64) QueueState {
	if depth <= 0 {
		return QueueClear
	}
	switch cur {
	case QueueHot:
		if depth <= low {
			return QueueWarm
		}
		return QueueHot
	case QueueWarm:
		if depth >= high {
			return QueueHot
		}
		if depth <= low/2 {
			return QueueClear
		}
		return QueueWarm
	default:
		if depth >= high {
			return QueueHot
		}
		if depth >= low {
			return QueueWarm
		}
		return QueueClear
	}
}

// noteDepth re-classifies one class queue after a depth change and
// surfaces the transition, if any. Allocation-free: a state compare per
// enqueue/dequeue, and the callback only on actual flips.
func (s *DRR) noteDepth(class core.Service) {
	c := &s.stats.PerClass[class]
	next := nextQueueState(s.state[class], c.QueuedBytes, s.low, s.high)
	if next == s.state[class] {
		return
	}
	s.state[class] = next
	c.State = next
	c.StateChanges++
	if s.OnStateChange != nil {
		s.OnStateChange(class, next, c.QueuedBytes)
	}
}

// State returns a class queue's current watermark classification.
func (s *DRR) State(class core.Service) QueueState {
	if int(class) >= NumClasses {
		return QueueClear
	}
	return s.state[class]
}

// Enqueue offers one marshaled message to its class queue. It reports
// whether the message was accepted; false means the class queue's byte
// cap rejected it (drop-from-tail — the arrival drops, queued packets
// keep their place) and the caller should surface the drop to the
// owning flow. An empty queue always admits, whatever the cap: the cap
// bounds BACKLOG, and rejecting a packet larger than the cap outright
// would blackhole it forever even on an idle link. Messages of unknown
// classes are rejected too, so a corrupt class index can never scribble
// past the queue array.
//
// Under Config.PerFlowQueues an over-cap arrival first tries to reclaim
// room from the LONGEST sibling sub-queue's tail (surfaced through
// OnVictimDrop); the arrival itself is only rejected when its own flow
// holds the longest backlog — the greedy flow pays for its own
// pressure, never a polite sibling.
func (s *DRR) Enqueue(class core.Service, flow core.FlowID, msg []byte) bool {
	return s.EnqueueStamped(class, flow, msg, 0)
}

// EnqueueStamped is Enqueue carrying the caller's clock reading through
// to the dequeued Item (Item.Stamp) — the hop-attribution layer computes
// queue wait as dequeue time minus it.
func (s *DRR) EnqueueStamped(class core.Service, flow core.FlowID, msg []byte, stamp core.Time) bool {
	if int(class) >= NumClasses {
		return false
	}
	c := &s.stats.PerClass[class]
	size := int64(len(msg))
	if s.cap >= 0 && c.QueuedPackets > 0 && c.QueuedBytes+size > s.cap {
		if !s.perFlow || !s.evictFor(class, flow, size) {
			c.DroppedBytes += uint64(size)
			c.DroppedPackets++
			return false
		}
	}
	if s.perFlow {
		cf := &s.flows[class]
		fq, ok := cf.idx[flow]
		if !ok {
			if n := len(cf.free); n > 0 {
				fq = cf.free[n-1]
				cf.free[n-1] = nil
				cf.free = cf.free[:n-1]
			} else {
				fq = &flowQ{}
			}
			fq.flow = flow
			cf.idx[flow] = fq
			cf.active = append(cf.active, fq)
			c.FlowQueues = len(cf.active)
		}
		fq.q.push(Item{Class: class, Flow: flow, Msg: msg, Stamp: stamp})
		fq.bytes += size
	} else {
		s.q[class].push(Item{Class: class, Flow: flow, Msg: msg, Stamp: stamp})
	}
	c.EnqueuedBytes += uint64(size)
	c.EnqueuedPackets++
	c.QueuedBytes += size
	c.QueuedPackets++
	s.stats.QueuedBytes += size
	s.stats.QueuedPackets++
	s.noteDepth(class)
	return true
}

// evictFor reclaims room for a size-byte arrival of flow by dropping
// packets from the tail of the longest sub-queue in the class. It
// returns false — nothing more reclaimed, caller rejects the arrival —
// as soon as the ARRIVING flow itself holds the longest backlog: the
// fair victim is then the arrival. Victim selection is deterministic
// (first-longest in round-robin order).
func (s *DRR) evictFor(class core.Service, flow core.FlowID, size int64) bool {
	c := &s.stats.PerClass[class]
	cf := &s.flows[class]
	for c.QueuedBytes+size > s.cap {
		vi := -1
		for i, fq := range cf.active {
			if vi < 0 || fq.bytes > cf.active[vi].bytes {
				vi = i
			}
		}
		if vi < 0 || cf.active[vi].flow == flow {
			return false
		}
		fq := cf.active[vi]
		it := fq.q.popTail()
		vsize := int64(len(it.Msg))
		fq.bytes -= vsize
		c.DroppedBytes += uint64(vsize)
		c.DroppedPackets++
		c.VictimDrops++
		c.QueuedBytes -= vsize
		c.QueuedPackets--
		s.stats.QueuedBytes -= vsize
		s.stats.QueuedPackets--
		if fq.q.n == 0 {
			cf.remove(vi)
			c.FlowQueues = len(cf.active)
		}
		if s.OnVictimDrop != nil {
			s.OnVictimDrop(class, it.Flow, vsize)
		}
	}
	return true
}

// Dequeue releases the next message under the DRR discipline: the
// round-robin grants each backlogged class quantum×weight bytes of
// deficit per visit and drains packets while the head fits the credit.
// Work-conserving — it returns a message whenever any queue is
// backlogged — and ok=false only when every queue is empty.
func (s *DRR) Dequeue() (Item, bool) {
	if s.stats.QueuedPackets == 0 {
		return Item{}, false
	}
	if s.perFlow {
		return s.dequeuePerFlow()
	}
	for {
		q := &s.q[s.cur]
		if q.n == 0 {
			// An emptied class forfeits unused credit — deficit must not
			// accumulate while idle, or a long-quiet class would burst
			// far past its share on return.
			s.deficit[s.cur] = 0
			s.credited[s.cur] = false
			s.cur = (s.cur + 1) % NumClasses
			continue
		}
		if !s.credited[s.cur] {
			s.deficit[s.cur] += s.quantum * s.weights[s.cur]
			s.credited[s.cur] = true
			s.stats.Rounds++
		}
		if size := int64(q.peekSize()); size <= s.deficit[s.cur] {
			s.deficit[s.cur] -= size
			it := q.pop()
			c := &s.stats.PerClass[s.cur]
			c.DequeuedBytes += uint64(size)
			c.DequeuedPackets++
			c.QueuedBytes -= size
			c.QueuedPackets--
			s.stats.QueuedBytes -= size
			s.stats.QueuedPackets--
			if q.n == 0 {
				s.deficit[s.cur] = 0
				s.credited[s.cur] = false
				s.cur = (s.cur + 1) % NumClasses
			}
			s.noteDepth(it.Class)
			return it, true
		}
		// Head larger than the accumulated credit: move on; the next
		// visit grants more (credited resets so the grant repeats).
		s.credited[s.cur] = false
		s.cur = (s.cur + 1) % NumClasses
	}
}

// dequeuePerFlow is Dequeue under Config.PerFlowQueues: the class-level
// round-robin is unchanged (quantum×weight credit per visit), but the
// class's head packet is chosen by a nested flow-level DRR — each
// sub-queue earns one quantum per flow-round, so sibling flows split
// the class's bytes evenly however unevenly they arrive.
func (s *DRR) dequeuePerFlow() (Item, bool) {
	for {
		c := &s.stats.PerClass[s.cur]
		if c.QueuedPackets == 0 {
			// An emptied class forfeits unused credit, as in the
			// single-FIFO discipline.
			s.deficit[s.cur] = 0
			s.credited[s.cur] = false
			s.cur = (s.cur + 1) % NumClasses
			continue
		}
		if !s.credited[s.cur] {
			s.deficit[s.cur] += s.quantum * s.weights[s.cur]
			s.credited[s.cur] = true
			s.stats.Rounds++
		}
		// Flow-level DRR selects the fair head: visit sub-queues
		// round-robin, granting one quantum per visit, until one's head
		// fits its credit. Terminates — credit accumulates across
		// visits, exactly like the class level.
		cf := &s.flows[s.cur]
		var fq *flowQ
		var size int64
		for {
			fq = cf.active[cf.rr]
			if !fq.credited {
				fq.deficit += s.quantum
				fq.credited = true
			}
			size = int64(fq.q.peekSize())
			if size <= fq.deficit {
				break
			}
			fq.credited = false
			cf.rr = (cf.rr + 1) % len(cf.active)
		}
		if size > s.deficit[s.cur] {
			// The fair head exceeds the class's credit: move on, the
			// next class-round grants more.
			s.credited[s.cur] = false
			s.cur = (s.cur + 1) % NumClasses
			continue
		}
		s.deficit[s.cur] -= size
		fq.deficit -= size
		it := fq.q.pop()
		fq.bytes -= size
		c.DequeuedBytes += uint64(size)
		c.DequeuedPackets++
		c.QueuedBytes -= size
		c.QueuedPackets--
		s.stats.QueuedBytes -= size
		s.stats.QueuedPackets--
		if fq.q.n == 0 {
			cf.remove(cf.rr)
			c.FlowQueues = len(cf.active)
		}
		if c.QueuedPackets == 0 {
			s.deficit[s.cur] = 0
			s.credited[s.cur] = false
			s.cur = (s.cur + 1) % NumClasses
		}
		s.noteDepth(it.Class)
		return it, true
	}
}

// Len returns the total queued packet count.
func (s *DRR) Len() int { return s.stats.QueuedPackets }

// Bytes returns the total queued byte count.
func (s *DRR) Bytes() int64 { return s.stats.QueuedBytes }

// Stats returns a snapshot of the counters.
func (s *DRR) Stats() Stats { return s.stats }
