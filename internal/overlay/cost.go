package overlay

import "jqos/internal/core"

// CostModel captures the cloud pricing structure J-QoS exploits (§4.4,
// §6.6): egress (outgoing) bandwidth is charged per GB, ingress is free,
// and compute is billed per thread-hour.
type CostModel struct {
	// EgressPerGB is the $/GB price of DC egress bandwidth.
	EgressPerGB float64
	// ComputePerThreadHour is the $/hour price of one encoding thread.
	ComputePerThreadHour float64
}

// DefaultCostModel mirrors the paper's back-of-the-envelope numbers
// (§6.6): a 2-node forwarding overlay moving ~101 GB/hour costs a minimum
// of $17.60/hour in bandwidth, giving ≈$0.087/GB, with general-purpose
// compute at $0.13/thread-hour.
var DefaultCostModel = CostModel{
	EgressPerGB:          17.60 / (2 * 101.25),
	ComputePerThreadHour: 0.13,
}

// BandwidthCostPerHour returns the hourly egress bill for a service
// carrying gbPerHour of application traffic. alpha is the coding overhead
// ratio (r, plus s if in-stream is enabled on the cloud path).
//
// Accounting per Figure 2:
//   - forwarding: egress at DC1 (to DC2) and at DC2 (to receiver) → 2c.
//   - caching: egress at DC1; DC2 egress only on loss — charged at
//     lossRate·c (the pull responses).
//   - coding: egress of coded packets at DC1 (α·c) plus — as the paper's
//     upper bound — α·c at DC2 if every coded packet ends up used in a
//     recovery delivery.
//   - internet: no cloud bytes at all.
func (m CostModel) BandwidthCostPerHour(svc core.Service, gbPerHour, alpha, lossRate float64) float64 {
	switch svc {
	case core.ServiceForwarding:
		return 2 * gbPerHour * m.EgressPerGB
	case core.ServiceCaching:
		return (1 + lossRate) * gbPerHour * m.EgressPerGB
	case core.ServiceCoding:
		return 2 * alpha * gbPerHour * m.EgressPerGB
	default:
		return 0
	}
}

// EgressPerAppGB returns the $/GB egress cost of shipping one GB of
// application data through a service — BandwidthCostPerHour at unit
// volume. Flow policies use it as the per-flow cost knob: a FlowSpec cost
// ceiling bounds this number.
func (m CostModel) EgressPerAppGB(svc core.Service, alpha, lossRate float64) float64 {
	return m.BandwidthCostPerHour(svc, 1, alpha, lossRate)
}

// TotalCostPerHour adds compute for the given number of encoding threads.
func (m CostModel) TotalCostPerHour(svc core.Service, gbPerHour, alpha, lossRate float64, threads int) float64 {
	c := m.BandwidthCostPerHour(svc, gbPerHour, alpha, lossRate)
	if svc != core.ServiceInternet {
		c += float64(threads) * m.ComputePerThreadHour
	}
	return c
}

// SkypeGBPerUserHour is the paper's per-user data volume for an HD call
// (1.5 Mb/s ≈ 0.675 GB/hour).
const SkypeGBPerUserHour = 0.675

// DeploymentCost reproduces the §6.6 scenario: nUsers concurrent calls
// through a 2-DC overlay, comparing forwarding against coding at the given
// rate. Returns ($/hour forwarding, $/hour coding).
func (m CostModel) DeploymentCost(nUsers int, alpha float64) (fwd, coding float64) {
	gb := float64(nUsers) * SkypeGBPerUserHour
	fwd = m.BandwidthCostPerHour(core.ServiceForwarding, gb, 0, 0)
	coding = m.BandwidthCostPerHour(core.ServiceCoding, gb, alpha, 0)
	return fwd, coding
}
