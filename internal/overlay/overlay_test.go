package overlay

import (
	"math"
	"testing"
	"time"

	"jqos/internal/core"
	"jqos/internal/dataset"
)

// buildTestTopology makes a 2-DC full overlay:
//
//	host 10 —5ms— DC1(1) —40ms— DC2(2) —10ms— host 20, direct 10→20 = 50ms.
func buildTestTopology() *Topology {
	t := NewTopology()
	t.AddDC(DC{ID: 1, Name: "us-east-1", Region: dataset.RegionUSEast})
	t.AddDC(DC{ID: 2, Name: "eu-west-1", Region: dataset.RegionEU})
	t.SetInterDC(1, 2, 40*time.Millisecond)
	t.AttachHost(10, 1, 5*time.Millisecond)
	t.AttachHost(20, 2, 10*time.Millisecond)
	t.SetDirect(10, 20, 50*time.Millisecond)
	return t
}

func TestTopologyAccessors(t *testing.T) {
	top := buildTestTopology()
	if !top.IsDC(1) || top.IsDC(10) {
		t.Error("IsDC wrong")
	}
	if dcs := top.DCs(); len(dcs) != 2 || dcs[0].Name != "us-east-1" {
		t.Errorf("DCs = %+v", dcs)
	}
	if dc, ok := top.NearestDC(10); !ok || dc != 1 {
		t.Errorf("NearestDC(10) = %v %v", dc, ok)
	}
	if _, ok := top.NearestDC(99); ok {
		t.Error("unknown host has a nearest DC")
	}
	if d, ok := top.Delta(20); !ok || d != 10*time.Millisecond {
		t.Errorf("Delta(20) = %v", d)
	}
	if x, ok := top.InterDC(1, 2); !ok || x != 40*time.Millisecond {
		t.Errorf("InterDC = %v", x)
	}
	if x, ok := top.InterDC(2, 1); !ok || x != 40*time.Millisecond {
		t.Errorf("InterDC reverse = %v", x)
	}
	if x, ok := top.InterDC(1, 1); !ok || x != 0 {
		t.Errorf("InterDC self = %v %v", x, ok)
	}
	if _, ok := top.InterDC(1, 99); ok {
		t.Error("unknown DC pair resolved")
	}
	if hosts := top.Hosts(); len(hosts) != 2 || hosts[0] != 10 || hosts[1] != 20 {
		t.Errorf("Hosts = %v", hosts)
	}
}

func TestAttachHostUnknownDCPanics(t *testing.T) {
	top := NewTopology()
	defer func() {
		if recover() == nil {
			t.Error("attach to unknown DC did not panic")
		}
	}()
	top.AttachHost(10, 1, time.Millisecond)
}

func TestDirectFallback(t *testing.T) {
	top := buildTestTopology()
	top.DefaultDirect = 77 * time.Millisecond
	if y := top.Direct(10, 20); y != 50*time.Millisecond {
		t.Errorf("known pair = %v", y)
	}
	if y := top.Direct(20, 10); y != 77*time.Millisecond {
		t.Errorf("unknown pair = %v, want default", y)
	}
}

func TestPredictDelayFormulas(t *testing.T) {
	top := buildTestTopology()
	top.MedianDelta = 8 * time.Millisecond
	// internet: y = 50.
	if d, ok := top.PredictDelay(core.ServiceInternet, 10, 20); !ok || d != 50*time.Millisecond {
		t.Errorf("internet = %v %v", d, ok)
	}
	// forwarding: 5+40+10 = 55.
	if d, ok := top.PredictDelay(core.ServiceForwarding, 10, 20); !ok || d != 55*time.Millisecond {
		t.Errorf("forwarding = %v %v", d, ok)
	}
	// Δ = (5+40)−(50+10) < 0 → 0; caching: 50+20 = 70.
	if d, ok := top.PredictDelay(core.ServiceCaching, 10, 20); !ok || d != 70*time.Millisecond {
		t.Errorf("caching = %v %v", d, ok)
	}
	// coding: 70 + 2·8 = 86.
	if d, ok := top.PredictDelay(core.ServiceCoding, 10, 20); !ok || d != 86*time.Millisecond {
		t.Errorf("coding = %v %v", d, ok)
	}
}

func TestPredictDelayWaitDelta(t *testing.T) {
	top := buildTestTopology()
	// Make the direct path fast so the cloud copy lags: y = 20ms.
	// Δ = (5+40) − (20+10) = 15ms; caching = 20+20+15 = 55.
	top.SetDirect(10, 20, 20*time.Millisecond)
	if d, ok := top.PredictDelay(core.ServiceCaching, 10, 20); !ok || d != 55*time.Millisecond {
		t.Errorf("caching with Δ = %v", d)
	}
}

func TestPredictDelayMedianDerived(t *testing.T) {
	top := buildTestTopology()
	// MedianDelta unset → derived from host deltas {5,10} → 10ms.
	d, ok := top.PredictDelay(core.ServiceCoding, 10, 20)
	if !ok || d != (70+20)*time.Millisecond {
		t.Errorf("coding with derived median = %v %v", d, ok)
	}
}

func TestPredictDelayMissingInputs(t *testing.T) {
	top := buildTestTopology()
	if _, ok := top.PredictDelay(core.ServiceForwarding, 99, 20); ok {
		t.Error("unattached src predicted")
	}
	if _, ok := top.PredictDelay(core.ServiceInternet, 20, 10); ok {
		t.Error("internet with no y estimate should be unknown")
	}
	if _, ok := top.PredictDelay(core.ServiceCaching, 20, 10); ok {
		t.Error("caching with no y estimate should be unknown")
	}
	top2 := NewTopology()
	top2.AddDC(DC{ID: 1})
	top2.AddDC(DC{ID: 2})
	top2.AttachHost(10, 1, time.Millisecond)
	top2.AttachHost(20, 2, time.Millisecond)
	top2.SetDirect(10, 20, time.Millisecond)
	if _, ok := top2.PredictDelay(core.ServiceForwarding, 10, 20); ok {
		t.Error("missing inter-DC latency predicted")
	}
}

// fakeOracle answers PathLatency from a fixed table; nodes list which IDs
// it claims to route.
type fakeOracle struct {
	nodes map[core.NodeID]bool
	paths map[[2]core.NodeID]core.Time
}

func (o *fakeOracle) PathLatency(a, b core.NodeID) (core.Time, bool) {
	if a == b {
		return 0, o.nodes[a]
	}
	x, ok := o.paths[[2]core.NodeID{a, b}]
	return x, ok
}

func TestInterDCDelegatesToOracle(t *testing.T) {
	top := buildTestTopology()
	top.AddDC(DC{ID: 3, Name: "ap-south"})
	// No SetInterDC(1,3): without an oracle the pair is unknown.
	if _, ok := top.InterDC(1, 3); ok {
		t.Fatal("oracle-less sparse pair resolved")
	}
	oracle := &fakeOracle{
		nodes: map[core.NodeID]bool{1: true, 2: true, 3: true},
		paths: map[[2]core.NodeID]core.Time{
			{1, 3}: 90 * time.Millisecond, // routed multi-hop
			{1, 2}: 35 * time.Millisecond, // faster than the 40ms static entry
		},
	}
	top.Oracle = oracle
	// Routed latency answers sparse pairs and overrides static entries.
	if x, ok := top.InterDC(1, 3); !ok || x != 90*time.Millisecond {
		t.Errorf("InterDC(1,3) = %v %v, want routed 90ms", x, ok)
	}
	if x, ok := top.InterDC(1, 2); !ok || x != 35*time.Millisecond {
		t.Errorf("InterDC(1,2) = %v %v, want routed 35ms", x, ok)
	}
	// Both DCs routed but no path → partitioned, NOT the static fallback.
	delete(oracle.paths, [2]core.NodeID{1, 2})
	if _, ok := top.InterDC(1, 2); ok {
		t.Error("partitioned pair fell back to the static entry")
	}
	// A pair the oracle does not route falls back to the static map.
	delete(oracle.nodes, 2)
	if x, ok := top.InterDC(1, 2); !ok || x != 40*time.Millisecond {
		t.Errorf("fallback InterDC(1,2) = %v %v, want static 40ms", x, ok)
	}
	// PredictDelay follows: forwarding over the routed path.
	top.AttachHost(30, 3, 7*time.Millisecond)
	top.Oracle = oracle
	if d, ok := top.PredictDelay(core.ServiceForwarding, 10, 30); !ok || d != (5+90+7)*time.Millisecond {
		t.Errorf("forwarding via oracle = %v %v, want 102ms", d, ok)
	}
}

func TestSelectServicePicksCheapest(t *testing.T) {
	top := buildTestTopology()
	top.MedianDelta = 8 * time.Millisecond
	// Delays: internet 50, coding 86, caching 70, forwarding 55.
	cases := []struct {
		budget  core.Time
		require bool
		want    core.Service
		ok      bool
	}{
		{200 * time.Millisecond, true, core.ServiceCoding, true},
		{80 * time.Millisecond, true, core.ServiceCaching, true},
		{60 * time.Millisecond, true, core.ServiceForwarding, true},
		{60 * time.Millisecond, false, core.ServiceInternet, true},
		{10 * time.Millisecond, true, 0, false},
	}
	for _, c := range cases {
		svc, d, ok := top.SelectService(10, 20, c.budget, c.require)
		if ok != c.ok || (ok && svc != c.want) {
			t.Errorf("budget %v require=%v: got %v (%v, ok=%v), want %v",
				c.budget, c.require, svc, d, ok, c.want)
		}
	}
}

func TestCostModelPaperNumbers(t *testing.T) {
	m := DefaultCostModel
	fwd, coding := m.DeploymentCost(150, 1.0/16)
	if math.Abs(fwd-17.60) > 0.01 {
		t.Errorf("forwarding cost = %v, want 17.60", fwd)
	}
	if math.Abs(coding-1.10) > 0.01 {
		t.Errorf("coding cost = %v, want 1.10", coding)
	}
	if ratio := fwd / coding; math.Abs(ratio-16) > 0.1 {
		t.Errorf("ratio = %v, want 16x", ratio)
	}
}

func TestBandwidthCostPerService(t *testing.T) {
	m := CostModel{EgressPerGB: 1}
	gb := 10.0
	if c := m.BandwidthCostPerHour(core.ServiceForwarding, gb, 0, 0); c != 20 {
		t.Errorf("forwarding = %v", c)
	}
	if c := m.BandwidthCostPerHour(core.ServiceCaching, gb, 0, 0.01); math.Abs(c-10.1) > 1e-9 {
		t.Errorf("caching = %v", c)
	}
	if c := m.BandwidthCostPerHour(core.ServiceCoding, gb, 0.25, 0); c != 5 {
		t.Errorf("coding = %v", c)
	}
	if c := m.BandwidthCostPerHour(core.ServiceInternet, gb, 0, 0); c != 0 {
		t.Errorf("internet = %v", c)
	}
}

func TestTotalCostAddsCompute(t *testing.T) {
	m := CostModel{EgressPerGB: 1, ComputePerThreadHour: 0.13}
	base := m.BandwidthCostPerHour(core.ServiceCoding, 10, 0.1, 0)
	tot := m.TotalCostPerHour(core.ServiceCoding, 10, 0.1, 0, 2)
	if math.Abs(tot-(base+0.26)) > 1e-9 {
		t.Errorf("total = %v", tot)
	}
	if c := m.TotalCostPerHour(core.ServiceInternet, 10, 0, 0, 4); c != 0 {
		t.Errorf("internet total = %v", c)
	}
}

func TestCostOrderingMatchesServiceOrder(t *testing.T) {
	// The framework's premise: coding < caching < forwarding for the
	// same traffic (α < 1).
	m := DefaultCostModel
	gb, alpha := 50.0, 0.2
	coding := m.BandwidthCostPerHour(core.ServiceCoding, gb, alpha, 0.01)
	caching := m.BandwidthCostPerHour(core.ServiceCaching, gb, alpha, 0.01)
	fwd := m.BandwidthCostPerHour(core.ServiceForwarding, gb, alpha, 0.01)
	if !(coding < caching && caching < fwd) {
		t.Errorf("cost ordering violated: %v %v %v", coding, caching, fwd)
	}
}

func TestSelectServiceWithFloorCeiling(t *testing.T) {
	top := buildTestTopology()
	top.MedianDelta = 8 * time.Millisecond
	// Delays: internet 50, coding 86, caching 70, forwarding 55.
	budget := 200 * time.Millisecond
	cases := []struct {
		name string
		pol  ServicePolicy
		want core.Service
		ok   bool
	}{
		{"unconstrained", ServicePolicy{Budget: budget, RequireRecovery: true},
			core.ServiceCoding, true},
		{"floor lifts past coding",
			ServicePolicy{Budget: budget, Floor: core.ServiceCaching},
			core.ServiceCaching, true},
		{"ceiling caps at caching",
			ServicePolicy{Budget: 60 * time.Millisecond, RequireRecovery: true,
				Ceiling: core.ServiceCaching},
			0, false},
		{"floor above ceiling finds nothing",
			ServicePolicy{Budget: budget, Floor: core.ServiceForwarding,
				Ceiling: core.ServiceCaching},
			0, false},
		{"internet allowed under no floor",
			ServicePolicy{Budget: budget}, core.ServiceInternet, true},
	}
	for _, c := range cases {
		svc, _, ok := top.SelectServiceWith(10, 20, c.pol)
		if ok != c.ok || (ok && svc != c.want) {
			t.Errorf("%s: got %v ok=%v, want %v ok=%v", c.name, svc, ok, c.want, c.ok)
		}
	}
}

func TestSelectServiceWithCostCeiling(t *testing.T) {
	top := buildTestTopology()
	top.MedianDelta = 8 * time.Millisecond
	m := DefaultCostModel
	alpha := 0.5
	// Per-GB prices: coding 2α·e, caching (1+loss)·e, forwarding 2e.
	codingGB := m.EgressPerAppGB(core.ServiceCoding, alpha, 0)
	fwdGB := m.EgressPerAppGB(core.ServiceForwarding, alpha, 0)
	if codingGB >= fwdGB {
		t.Fatalf("cost ordering broken: coding %v ≥ forwarding %v", codingGB, fwdGB)
	}
	// A 60 ms budget needs forwarding (55 ms), but a cost ceiling below
	// forwarding's price forbids it.
	pol := ServicePolicy{
		Budget: 60 * time.Millisecond, RequireRecovery: true,
		Alpha: alpha, CostCeilingPerGB: fwdGB * 0.9,
	}
	if svc, _, ok := top.SelectServiceWith(10, 20, pol); ok {
		t.Errorf("cost-capped selection returned %v", svc)
	}
	// Raising the ceiling admits forwarding again.
	pol.CostCeilingPerGB = fwdGB * 1.1
	if svc, _, ok := top.SelectServiceWith(10, 20, pol); !ok || svc != core.ServiceForwarding {
		t.Errorf("got %v ok=%v, want forwarding", svc, ok)
	}
	// A generous budget under a tight cost ceiling picks the cheapest
	// fitting service instead.
	pol = ServicePolicy{
		Budget: 200 * time.Millisecond, RequireRecovery: true,
		Alpha: alpha, CostCeilingPerGB: codingGB * 1.1,
	}
	if svc, _, ok := top.SelectServiceWith(10, 20, pol); !ok || svc != core.ServiceCoding {
		t.Errorf("got %v ok=%v, want coding", svc, ok)
	}
}
