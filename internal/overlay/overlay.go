// Package overlay models the cloud side of J-QoS: the data centers, the
// latency structure of a deployment (host↔DC δ, inter-DC x, direct path y),
// and the egress cost model used for judicious service selection (§2, §6.6).
package overlay

import (
	"fmt"
	"sort"

	"jqos/internal/core"
	"jqos/internal/dataset"
)

// DC describes one data center in the overlay.
type DC struct {
	ID     core.NodeID
	Name   string
	Region dataset.Region
}

// PathOracle resolves DC-to-DC latency through a routing control plane:
// the routed (possibly multi-hop) one-way latency between two DCs, with
// ok=false when no path currently exists. routing.Controller implements
// it; a Topology without an oracle falls back to its static inter-DC map
// (direct links only).
type PathOracle interface {
	PathLatency(a, b core.NodeID) (core.Time, bool)
}

// Topology is the latency map of a deployment: which DC is near each host,
// δ/x segment latencies, and (estimated, online-updated) direct-path
// latencies between host pairs. All latencies are one-way.
type Topology struct {
	dcs     map[core.NodeID]DC
	order   []core.NodeID // insertion order for deterministic iteration
	interDC map[[2]core.NodeID]core.Time
	nearest map[core.NodeID]core.NodeID
	delta   map[core.NodeID]core.Time
	direct  map[[2]core.NodeID]core.Time
	// Oracle, when set, answers InterDC with routed path latency — so
	// sparse (non-mesh) overlays predict delays and select services for
	// DC pairs with no direct link, and predictions track link health.
	Oracle PathOracle
	// DefaultDirect seeds the direct-path estimate for pairs that have
	// not communicated yet (§3.5: "initially assumed to be average
	// values"). Zero means unknown.
	DefaultDirect core.Time
	// MedianDelta is the typical helper distance used in the coding
	// delay prediction (cooperative recovery contacts other receivers
	// via their own δ). If zero it is derived from registered hosts.
	MedianDelta core.Time
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{
		dcs:     make(map[core.NodeID]DC),
		interDC: make(map[[2]core.NodeID]core.Time),
		nearest: make(map[core.NodeID]core.NodeID),
		delta:   make(map[core.NodeID]core.Time),
		direct:  make(map[[2]core.NodeID]core.Time),
	}
}

// AddDC registers a data center.
func (t *Topology) AddDC(dc DC) {
	if _, dup := t.dcs[dc.ID]; !dup {
		t.order = append(t.order, dc.ID)
	}
	t.dcs[dc.ID] = dc
}

// DCs returns all data centers in registration order.
func (t *Topology) DCs() []DC {
	out := make([]DC, 0, len(t.order))
	for _, id := range t.order {
		out = append(out, t.dcs[id])
	}
	return out
}

// IsDC reports whether id names a registered data center.
func (t *Topology) IsDC(id core.NodeID) bool {
	_, ok := t.dcs[id]
	return ok
}

// SetInterDC records the one-way latency between two DCs (both directions).
func (t *Topology) SetInterDC(a, b core.NodeID, x core.Time) {
	t.interDC[[2]core.NodeID{a, b}] = x
	t.interDC[[2]core.NodeID{b, a}] = x
}

// InterDC returns the one-way DC-to-DC latency, or (0, false) if unknown.
// Latency between a DC and itself is zero (partial overlays use one DC).
// With an Oracle installed the answer is the routed path latency (multi-hop
// when no direct link exists, rerouted when links fail); the static map is
// the fallback for oracle-less topologies.
func (t *Topology) InterDC(a, b core.NodeID) (core.Time, bool) {
	if a == b {
		return 0, true
	}
	if t.Oracle != nil {
		if x, ok := t.Oracle.PathLatency(a, b); ok {
			return x, true
		}
		// PathLatency(n, n) is (0, true) exactly when the oracle routes
		// n. If it routes both DCs yet found no path, the overlay is
		// genuinely partitioned — don't fall back to a stale static
		// entry and pretend the pair is reachable.
		_, aKnown := t.Oracle.PathLatency(a, a)
		_, bKnown := t.Oracle.PathLatency(b, b)
		if aKnown && bKnown {
			return 0, false
		}
	}
	x, ok := t.interDC[[2]core.NodeID{a, b}]
	return x, ok
}

// AttachHost binds a host to its nearest DC with one-way latency delta.
func (t *Topology) AttachHost(host, dc core.NodeID, delta core.Time) {
	if !t.IsDC(dc) {
		panic(fmt.Sprintf("overlay: attaching %v to unknown DC %v", host, dc))
	}
	t.nearest[host] = dc
	t.delta[host] = delta
}

// NearestDC returns the DC serving a host, or (0, false) for unknown hosts.
func (t *Topology) NearestDC(host core.NodeID) (core.NodeID, bool) {
	dc, ok := t.nearest[host]
	return dc, ok
}

// Delta returns the one-way host↔DC latency δ for a host.
func (t *Topology) Delta(host core.NodeID) (core.Time, bool) {
	d, ok := t.delta[host]
	return d, ok
}

// Hosts returns the IDs of all attached hosts (sorted, deterministic).
func (t *Topology) Hosts() []core.NodeID {
	out := make([]core.NodeID, 0, len(t.nearest))
	for h := range t.nearest {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetDirect records a measured/estimated one-way direct-path latency
// between two hosts. Updated online as delivery stats arrive (§3.5).
func (t *Topology) SetDirect(src, dst core.NodeID, y core.Time) {
	t.direct[[2]core.NodeID{src, dst}] = y
}

// Direct returns the current direct-path estimate for a host pair, falling
// back to DefaultDirect.
func (t *Topology) Direct(src, dst core.NodeID) core.Time {
	if y, ok := t.direct[[2]core.NodeID{src, dst}]; ok {
		return y
	}
	return t.DefaultDirect
}

// medianHostDelta computes the median δ across attached hosts.
func (t *Topology) medianHostDelta() core.Time {
	if len(t.delta) == 0 {
		return 0
	}
	ds := make([]core.Time, 0, len(t.delta))
	for _, d := range t.delta {
		ds = append(ds, d)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// PredictDelay estimates the end-to-end packet delivery latency of a
// service for the src→dst pair, using the formulas of §6.1:
//
//	internet:   y
//	forwarding: δS + x + δR
//	caching:    y + 2δR + Δ
//	coding:     y + 2δR + 2δ_median + Δ
//
// where Δ = max(0, (δS+x) − (y+δR)) is the wait for the cloud copy.
// The second return is false when the topology lacks the inputs (host not
// attached, no inter-DC entry).
func (t *Topology) PredictDelay(svc core.Service, src, dst core.NodeID) (core.Time, bool) {
	return t.predictDelay(svc, src, dst, 0, false)
}

// PredictDelayOnPath is PredictDelay with an explicit inter-DC latency x
// in place of the oracle's primary-path answer — the prediction a flow
// pinned to an alternate path must use, since its cloud traffic does not
// ride the fastest route.
func (t *Topology) PredictDelayOnPath(svc core.Service, src, dst core.NodeID, x core.Time) (core.Time, bool) {
	return t.predictDelay(svc, src, dst, x, true)
}

func (t *Topology) predictDelay(svc core.Service, src, dst core.NodeID, xOverride core.Time, haveX bool) (core.Time, bool) {
	y := t.Direct(src, dst)
	if svc == core.ServiceInternet {
		return y, y > 0
	}
	dc1, ok1 := t.NearestDC(src)
	dc2, ok2 := t.NearestDC(dst)
	if !ok1 || !ok2 {
		return 0, false
	}
	dS, _ := t.Delta(src)
	dR, _ := t.Delta(dst)
	x := xOverride
	if !haveX {
		var okX bool
		x, okX = t.InterDC(dc1, dc2)
		if !okX {
			return 0, false
		}
	}
	switch svc {
	case core.ServiceForwarding:
		return dS + x + dR, true
	case core.ServiceCaching, core.ServiceCoding:
		if y <= 0 {
			return 0, false
		}
		delta := core.Time(0)
		if cloud, direct := dS+x, y+dR; cloud > direct {
			delta = cloud - direct
		}
		d := y + 2*dR + delta
		if svc == core.ServiceCoding {
			med := t.MedianDelta
			if med == 0 {
				med = t.medianHostDelta()
			}
			d += 2 * med
		}
		return d, true
	default:
		return 0, false
	}
}

// SelectService returns the cheapest service whose predicted delivery
// latency fits the budget (§3.5). The Internet "service" qualifies only if
// the path's estimated loss allows it — lossy below-budget paths still need
// cloud recovery, which is the caller's policy; here Internet is skipped
// whenever requireRecovery is set.
func (t *Topology) SelectService(src, dst core.NodeID, budget core.Time, requireRecovery bool) (core.Service, core.Time, bool) {
	return t.SelectServiceWith(src, dst, ServicePolicy{
		Budget:          budget,
		RequireRecovery: requireRecovery,
	})
}

// ServicePolicy constrains SelectServiceWith beyond the plain latency
// budget: a service floor and ceiling, and an egress-dollar ceiling under
// a cost model — the declarative knobs a FlowSpec exposes.
type ServicePolicy struct {
	// Budget is the delivery-latency budget a service's prediction must
	// fit.
	Budget core.Time
	// RequireRecovery skips plain best-effort Internet even when it fits.
	RequireRecovery bool
	// Floor is the cheapest service selection may return.
	Floor core.Service
	// Ceiling is the most expensive service selection may return; the
	// zero value means no ceiling (ServiceForwarding).
	Ceiling core.Service
	// CostCeilingPerGB bounds the service's egress cost per GB of
	// application data (EgressPerAppGB under Cost). Zero = unbounded.
	CostCeilingPerGB float64
	// Cost is the price model for the ceiling check (zero value: the
	// package default).
	Cost CostModel
	// Alpha is the coding overhead ratio used in the cost estimate.
	Alpha float64
	// LossRate is the expected direct-path loss used in the caching cost
	// estimate (pull responses are billed egress).
	LossRate float64
	// PathLatency, when positive, replaces the oracle's inter-DC latency
	// in delay predictions — flows pinned to an alternate path select
	// against the latency of the path they will actually ride.
	PathLatency core.Time
}

// SelectServiceWith returns the cheapest service satisfying the policy:
// within [Floor, Ceiling], under the cost ceiling, and with a predicted
// delivery latency that fits the budget.
func (t *Topology) SelectServiceWith(src, dst core.NodeID, p ServicePolicy) (core.Service, core.Time, bool) {
	ceiling := p.Ceiling
	if ceiling == 0 {
		ceiling = core.ServiceForwarding
	}
	cost := p.Cost
	if cost == (CostModel{}) {
		cost = DefaultCostModel
	}
	for _, svc := range core.Services {
		if svc == core.ServiceInternet && p.RequireRecovery {
			continue
		}
		if svc < p.Floor || svc > ceiling {
			continue
		}
		if p.CostCeilingPerGB > 0 &&
			cost.EgressPerAppGB(svc, p.Alpha, p.LossRate) > p.CostCeilingPerGB {
			continue
		}
		d, ok := t.predictDelay(svc, src, dst, p.PathLatency, p.PathLatency > 0)
		if ok && d <= p.Budget {
			return svc, d, true
		}
	}
	return 0, 0, false
}
