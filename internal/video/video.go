// Package video models the Skype video-conferencing case study (§6.3):
// a CBR frame source (10–15 fps, 2–5 packets per frame), Skype's built-in
// per-frame FEC, and a frame-level PSNR scoring model that stands in for
// the VQMT objective quality tool. Figure 9a compares the PSNR
// distribution of a call under an Internet outage against the same call
// protected by the forwarding and coding services; what separates the
// curves is which frames survive, which this model captures.
package video

import (
	"math/rand"
	"time"

	"jqos/internal/core"
	"jqos/internal/stats"
)

// Config parameterizes a conference stream.
type Config struct {
	// FPS is the frame rate (paper: 10–15).
	FPS int
	// MinPackets/MaxPackets bound packets per frame (paper: 2–5).
	MinPackets, MaxPackets int
	// PacketSize is the payload bytes per packet.
	PacketSize int
	// FECTolerance is how many lost packets per frame Skype's own FEC
	// absorbs before the frame degrades (the paper disables J-QoS
	// in-stream coding because "Skype uses its own FEC techniques").
	FECTolerance int
	// PlayoutDeadline is how late a packet may arrive and still help
	// render its frame (interactive budget).
	PlayoutDeadline time.Duration

	// PSNR model (dB): healthy frames, partially-received frames, and
	// frozen/lost frames.
	GoodPSNR, GoodStd     float64
	PartialPSNR, PartStd  float64
	FrozenPSNR, FrozenStd float64
}

// DefaultConfig mirrors the testbed stream: 15 fps, ~0.6 Mb/s.
func DefaultConfig() Config {
	return Config{
		FPS:             15,
		MinPackets:      2,
		MaxPackets:      5,
		PacketSize:      1200,
		FECTolerance:    1,
		PlayoutDeadline: 250 * time.Millisecond,
		GoodPSNR:        42, GoodStd: 2.5,
		PartialPSNR: 29, PartStd: 3,
		FrozenPSNR: 20, FrozenStd: 1.5,
	}
}

// BitrateMbps returns the stream's nominal bitrate.
func (c Config) BitrateMbps() float64 {
	avg := float64(c.MinPackets+c.MaxPackets) / 2
	return avg * float64(c.PacketSize) * 8 * float64(c.FPS) / 1e6
}

// Frame is one generated video frame.
type Frame struct {
	ID      int
	SendAt  core.Time
	Packets int
}

// GenerateFrames produces the frame schedule for a call of the given
// duration, deterministically from rng.
func (c Config) GenerateFrames(rng *rand.Rand, duration time.Duration) []Frame {
	if c.FPS <= 0 {
		panic("video: FPS must be positive")
	}
	interval := time.Second / time.Duration(c.FPS)
	n := int(duration / interval)
	frames := make([]Frame, n)
	span := c.MaxPackets - c.MinPackets + 1
	for i := range frames {
		frames[i] = Frame{
			ID:      i,
			SendAt:  core.Time(i) * interval,
			Packets: c.MinPackets + rng.Intn(span),
		}
	}
	return frames
}

// Scorer accumulates packet arrivals and produces per-frame PSNR scores.
type Scorer struct {
	cfg     Config
	frames  []Frame
	arrived []int // on-time packets per frame
}

// NewScorer builds a scorer over a frame schedule.
func NewScorer(cfg Config, frames []Frame) *Scorer {
	return &Scorer{cfg: cfg, frames: frames, arrived: make([]int, len(frames))}
}

// OnPacket records one packet of a frame delivered at 'at' having been
// sent at 'sent'. Packets past the playout deadline are useless and
// ignored.
func (s *Scorer) OnPacket(frameID int, sent, at core.Time) {
	if frameID < 0 || frameID >= len(s.frames) {
		return
	}
	if at-sent > core.Time(s.cfg.PlayoutDeadline) {
		return
	}
	s.arrived[frameID]++
}

// FrameOutcome classifies one frame.
type FrameOutcome uint8

// Frame outcomes.
const (
	FrameGood FrameOutcome = iota
	FramePartial
	FrameFrozen
)

// Outcome classifies frame i under the FEC tolerance.
func (s *Scorer) Outcome(i int) FrameOutcome {
	need := s.frames[i].Packets - s.cfg.FECTolerance
	if need < 1 {
		need = 1
	}
	got := s.arrived[i]
	switch {
	case got >= need:
		return FrameGood
	case got > 0:
		return FramePartial
	default:
		return FrameFrozen
	}
}

// PSNRs scores every frame, drawing per-frame noise from rng. The result
// is the Figure 9a per-frame distribution.
func (s *Scorer) PSNRs(rng *rand.Rand) *stats.Sample {
	out := stats.NewSample(len(s.frames))
	for i := range s.frames {
		var mean, std float64
		switch s.Outcome(i) {
		case FrameGood:
			mean, std = s.cfg.GoodPSNR, s.cfg.GoodStd
		case FramePartial:
			mean, std = s.cfg.PartialPSNR, s.cfg.PartStd
		default:
			mean, std = s.cfg.FrozenPSNR, s.cfg.FrozenStd
		}
		v := mean + rng.NormFloat64()*std
		if v < 10 {
			v = 10
		}
		if v > 50 {
			v = 50
		}
		out.Add(v)
	}
	return out
}

// GoodFrameFraction reports the fraction of frames rendered at full
// quality — a scalar QoE headline next to the full CDF.
func (s *Scorer) GoodFrameFraction() float64 {
	if len(s.frames) == 0 {
		return 0
	}
	good := 0
	for i := range s.frames {
		if s.Outcome(i) == FrameGood {
			good++
		}
	}
	return float64(good) / float64(len(s.frames))
}
