package video

import (
	"math/rand"
	"testing"
	"time"

	"jqos/internal/core"
)

func TestGenerateFrames(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(1))
	frames := cfg.GenerateFrames(rng, 10*time.Second)
	if len(frames) != 150 { // 15 fps × 10 s
		t.Fatalf("frames = %d", len(frames))
	}
	for i, f := range frames {
		if f.ID != i {
			t.Fatalf("frame %d ID %d", i, f.ID)
		}
		if f.Packets < cfg.MinPackets || f.Packets > cfg.MaxPackets {
			t.Fatalf("frame %d has %d packets", i, f.Packets)
		}
		if i > 0 && f.SendAt <= frames[i-1].SendAt {
			t.Fatal("frames not time-ordered")
		}
	}
}

func TestGenerateFramesZeroFPSPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FPS=0 did not panic")
		}
	}()
	Config{}.GenerateFrames(rand.New(rand.NewSource(1)), time.Second)
}

func TestBitrate(t *testing.T) {
	cfg := DefaultConfig()
	// 3.5 avg pkts × 1200 B × 8 × 15 fps = 0.504 Mb/s.
	if b := cfg.BitrateMbps(); b < 0.4 || b > 0.7 {
		t.Errorf("bitrate = %v", b)
	}
}

func scorerWith(t *testing.T, deliverPerFrame func(f Frame) int) *Scorer {
	t.Helper()
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(2))
	frames := cfg.GenerateFrames(rng, 5*time.Second)
	sc := NewScorer(cfg, frames)
	for _, f := range frames {
		n := deliverPerFrame(f)
		for p := 0; p < n; p++ {
			sc.OnPacket(f.ID, f.SendAt, f.SendAt+10*time.Millisecond)
		}
	}
	return sc
}

func TestOutcomeClassification(t *testing.T) {
	// All packets: good. Missing one (within FEC tolerance): good.
	// Missing two: partial. Zero: frozen.
	full := scorerWith(t, func(f Frame) int { return f.Packets })
	if frac := full.GoodFrameFraction(); frac != 1 {
		t.Errorf("full delivery good fraction = %v", frac)
	}
	oneShort := scorerWith(t, func(f Frame) int { return f.Packets - 1 })
	if frac := oneShort.GoodFrameFraction(); frac != 1 {
		t.Errorf("FEC-covered fraction = %v", frac)
	}
	twoShort := scorerWith(t, func(f Frame) int {
		n := f.Packets - 2
		if n < 0 {
			n = 0
		}
		return n
	})
	if frac := twoShort.GoodFrameFraction(); frac != 0 {
		t.Errorf("two-short good fraction = %v", frac)
	}
	sawPartial, sawFrozen := false, false
	for i := range twoShort.frames {
		switch twoShort.Outcome(i) {
		case FramePartial:
			sawPartial = true
		case FrameFrozen:
			sawFrozen = true
		}
	}
	if !sawPartial || !sawFrozen {
		t.Errorf("outcome mix: partial=%v frozen=%v", sawPartial, sawFrozen)
	}
}

func TestLatePacketsIgnored(t *testing.T) {
	cfg := DefaultConfig()
	frames := []Frame{{ID: 0, SendAt: 0, Packets: 2}}
	sc := NewScorer(cfg, frames)
	late := core.Time(cfg.PlayoutDeadline) + time.Millisecond
	sc.OnPacket(0, 0, late)
	sc.OnPacket(0, 0, late)
	if sc.Outcome(0) != FrameFrozen {
		t.Error("late packets rendered the frame")
	}
	sc.OnPacket(0, 0, core.Time(cfg.PlayoutDeadline))
	if sc.Outcome(0) != FrameGood { // 1 of 2 + tolerance 1
		t.Error("on-time packet not counted")
	}
}

func TestOnPacketBounds(t *testing.T) {
	sc := NewScorer(DefaultConfig(), []Frame{{ID: 0, Packets: 2}})
	sc.OnPacket(-1, 0, 0)
	sc.OnPacket(5, 0, 0) // out of range: must not panic
}

func TestPSNRSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	good := scorerWith(t, func(f Frame) int { return f.Packets })
	frozen := scorerWith(t, func(Frame) int { return 0 })
	gs := good.PSNRs(rng)
	fs := frozen.PSNRs(rng)
	if gs.Median() < 38 || gs.Median() > 46 {
		t.Errorf("good median PSNR = %v", gs.Median())
	}
	if fs.Median() > 24 {
		t.Errorf("frozen median PSNR = %v", fs.Median())
	}
	if gs.Quantile(0.05) <= fs.Quantile(0.95) {
		t.Error("good and frozen PSNR distributions overlap heavily")
	}
	for _, v := range gs.Values() {
		if v < 10 || v > 50 {
			t.Fatalf("PSNR %v outside clamp", v)
		}
	}
}

func TestGoodFrameFractionEmpty(t *testing.T) {
	sc := NewScorer(DefaultConfig(), nil)
	if sc.GoodFrameFraction() != 0 {
		t.Error("empty scorer fraction")
	}
}
