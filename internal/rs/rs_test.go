package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFAxioms(t *testing.T) {
	// Spot-check field axioms exhaustively over the whole field.
	for a := 0; a < 256; a++ {
		ab := byte(a)
		if gfMul(ab, 1) != ab {
			t.Fatalf("%d·1 != %d", a, a)
		}
		if gfMul(ab, 0) != 0 {
			t.Fatalf("%d·0 != 0", a)
		}
		if gfAdd(ab, ab) != 0 {
			t.Fatalf("%d+%d != 0 (char 2)", a, a)
		}
		if a != 0 {
			if got := gfMul(ab, gfInv(ab)); got != 1 {
				t.Fatalf("%d·inv = %d, want 1", a, got)
			}
		}
	}
}

func TestGFMulCommutesAndAssociates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatalf("mul not commutative: %d %d", a, b)
		}
		if gfMul(gfMul(a, b), c) != gfMul(a, gfMul(b, c)) {
			t.Fatalf("mul not associative: %d %d %d", a, b, c)
		}
		// Distributivity.
		if gfMul(a, gfAdd(b, c)) != gfAdd(gfMul(a, b), gfMul(a, c)) {
			t.Fatalf("not distributive: %d %d %d", a, b, c)
		}
	}
}

func TestGFDivPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("gfDiv(x, 0) did not panic")
		}
	}()
	gfDiv(3, 0)
}

func TestGFDivIsInverseOfMul(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 1; b < 256; b++ {
			q := gfDiv(byte(a), byte(b))
			if gfMul(q, byte(b)) != byte(a) {
				t.Fatalf("(%d/%d)*%d = %d, want %d", a, b, b, gfMul(q, byte(b)), a)
			}
		}
	}
}

func TestMulSliceKernels(t *testing.T) {
	src := []byte{1, 2, 3, 255}
	dst := []byte{9, 9, 9, 9}
	mulSlice(0, src, dst)
	if !bytes.Equal(dst, []byte{9, 9, 9, 9}) {
		t.Error("mulSlice(0) should be a no-op")
	}
	mulSlice(1, src, dst)
	if !bytes.Equal(dst, []byte{8, 11, 10, 246}) {
		t.Errorf("mulSlice(1) = %v", dst)
	}
	setMulSlice(0, src, dst)
	if !bytes.Equal(dst, []byte{0, 0, 0, 0}) {
		t.Error("setMulSlice(0) should zero dst")
	}
	setMulSlice(1, src, dst)
	if !bytes.Equal(dst, src) {
		t.Error("setMulSlice(1) should copy")
	}
	setMulSlice(2, src, dst)
	for i := range src {
		if dst[i] != gfMul(2, src[i]) {
			t.Errorf("setMulSlice(2)[%d] = %d", i, dst[i])
		}
	}
}

func TestMulSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	mulSlice(3, make([]byte, 4), make([]byte, 5))
}

func TestMatrixInvertIdentity(t *testing.T) {
	id := identity(5)
	inv, err := id.invert()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inv.data, id.data) {
		t.Error("identity inverse != identity")
	}
}

func TestMatrixInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		m := vandermonde(n, n)
		inv, err := m.invert()
		if err != nil {
			t.Fatalf("vandermonde %dx%d singular: %v", n, n, err)
		}
		prod := m.mul(inv)
		if !bytes.Equal(prod.data, identity(n).data) {
			t.Fatalf("m·inv != I for n=%d", n)
		}
	}
}

func TestMatrixSingular(t *testing.T) {
	m := newMatrix(2, 2) // all zeros
	if _, err := m.invert(); err == nil {
		t.Fatal("zero matrix inverted")
	}
	nm := newMatrix(2, 3)
	if _, err := nm.invert(); err == nil {
		t.Fatal("non-square matrix inverted")
	}
}

func TestNewCodecParamValidation(t *testing.T) {
	for _, c := range []struct{ k, m int }{{0, 1}, {-1, 2}, {1, -1}, {200, 100}} {
		if _, err := NewCodec(c.k, c.m); !errors.Is(err, ErrInvalidParams) {
			t.Errorf("NewCodec(%d,%d) err = %v, want ErrInvalidParams", c.k, c.m, err)
		}
	}
	if _, err := NewCodec(1, 0); err != nil {
		t.Errorf("NewCodec(1,0): %v", err)
	}
	if c, err := NewCodec(4, 2); err != nil || c.DataShards() != 4 || c.ParityShards() != 2 || c.TotalShards() != 6 {
		t.Errorf("NewCodec(4,2) = %v, %v", c, err)
	}
}

func makeShards(t *testing.T, rng *rand.Rand, k, m, size int) ([][]byte, *Codec) {
	t.Helper()
	c, err := NewCodec(k, m)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, k+m)
	for i := range shards {
		shards[i] = make([]byte, size)
		if i < k {
			rng.Read(shards[i])
		}
	}
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	return shards, c
}

func TestEncodeSystematic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([][]byte, 4)
	orig := make([][]byte, 4)
	for i := range data {
		data[i] = make([]byte, 64)
		rng.Read(data[i])
		orig[i] = append([]byte(nil), data[i]...)
	}
	c, _ := NewCodec(4, 2)
	shards := append(data, make([]byte, 64), make([]byte, 64))
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if !bytes.Equal(shards[i], orig[i]) {
			t.Errorf("systematic encode modified data shard %d", i)
		}
	}
}

func TestReconstructAllErasurePatterns(t *testing.T) {
	// For a small code, erase every subset of shards of size ≤ m and
	// verify exact reconstruction — the core RS guarantee.
	const k, m, size = 4, 3, 33
	rng := rand.New(rand.NewSource(5))
	shards, c := makeShards(t, rng, k, m, size)
	want := make([][]byte, len(shards))
	for i := range shards {
		want[i] = append([]byte(nil), shards[i]...)
	}
	n := k + m
	for mask := 0; mask < 1<<n; mask++ {
		erased := 0
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				erased++
			}
		}
		if erased == 0 || erased > m {
			continue
		}
		work := make([][]byte, n)
		for i := range work {
			if mask&(1<<i) != 0 {
				work[i] = nil
			} else {
				work[i] = append([]byte(nil), want[i]...)
			}
		}
		if err := c.Reconstruct(work); err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		for i := range work {
			if !bytes.Equal(work[i], want[i]) {
				t.Fatalf("mask %b: shard %d mismatch", mask, i)
			}
		}
	}
}

func TestReconstructTooFewShards(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	shards, c := makeShards(t, rng, 4, 2, 16)
	shards[0], shards[1], shards[2] = nil, nil, nil // only 3 of 4+2 left
	if err := c.Reconstruct(shards); !errors.Is(err, ErrTooFewShards) {
		t.Fatalf("err = %v, want ErrTooFewShards", err)
	}
}

func TestReconstructSizeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	shards, c := makeShards(t, rng, 3, 2, 16)
	shards[1] = make([]byte, 8)
	if err := c.Reconstruct(shards); !errors.Is(err, ErrShardSize) {
		t.Fatalf("err = %v, want ErrShardSize", err)
	}
	if err := c.Reconstruct(shards[:3]); !errors.Is(err, ErrShardSize) {
		t.Fatalf("short slice err = %v, want ErrShardSize", err)
	}
}

func TestEncodeErrors(t *testing.T) {
	c, _ := NewCodec(2, 1)
	if err := c.Encode([][]byte{make([]byte, 4)}); !errors.Is(err, ErrShardSize) {
		t.Errorf("wrong count: %v", err)
	}
	if err := c.Encode([][]byte{make([]byte, 4), make([]byte, 5), make([]byte, 4)}); !errors.Is(err, ErrShardSize) {
		t.Errorf("uneven sizes: %v", err)
	}
	if err := c.Encode([][]byte{make([]byte, 4), nil, make([]byte, 4)}); !errors.Is(err, ErrShardSize) {
		t.Errorf("nil shard: %v", err)
	}
}

func TestEncodeParity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	shards, c := makeShards(t, rng, 5, 3, 48)
	for p := 0; p < 3; p++ {
		dst := make([]byte, 48)
		if err := c.EncodeParity(p, shards[:5], dst); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst, shards[5+p]) {
			t.Errorf("EncodeParity(%d) != Encode row", p)
		}
	}
	if err := c.EncodeParity(3, shards[:5], make([]byte, 48)); !errors.Is(err, ErrTooManyParity) {
		t.Errorf("out-of-range parity: %v", err)
	}
	if err := c.EncodeParity(0, shards[:4], make([]byte, 48)); !errors.Is(err, ErrShardSize) {
		t.Errorf("short data: %v", err)
	}
	if err := c.EncodeParity(0, shards[:5], make([]byte, 7)); !errors.Is(err, ErrShardSize) {
		t.Errorf("bad dst: %v", err)
	}
}

func TestZeroParityCodec(t *testing.T) {
	c, err := NewCodec(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	shards := [][]byte{{1}, {2}, {3}}
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructQuick(t *testing.T) {
	// Property: for random (k, m, erasures ≤ m), reconstruction is exact.
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(10)
		m := r.Intn(5)
		size := 1 + r.Intn(300)
		c, err := NewCodec(k, m)
		if err != nil {
			return false
		}
		shards := make([][]byte, k+m)
		for i := range shards {
			shards[i] = make([]byte, size)
			if i < k {
				r.Read(shards[i])
			}
		}
		if err := c.Encode(shards); err != nil {
			return false
		}
		want := make([][]byte, len(shards))
		for i := range shards {
			want[i] = append([]byte(nil), shards[i]...)
		}
		// Erase up to m random shards.
		for e := 0; e < m; e++ {
			shards[r.Intn(k+m)] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			return false
		}
		for i := range shards {
			if !bytes.Equal(shards[i], want[i]) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	payload := []byte("hello jqos")
	shard := make([]byte, PackedSize(len(payload))+7)
	if _, err := Pack(payload, shard); err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(shard)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("round trip = %q", got)
	}
	// Padding must be zero so parity over padded tails is stable.
	for i := PackedSize(len(payload)); i < len(shard); i++ {
		if shard[i] != 0 {
			t.Errorf("padding byte %d = %d", i, shard[i])
		}
	}
}

func TestPackErrors(t *testing.T) {
	if _, err := Pack(make([]byte, 10), make([]byte, 5)); err == nil {
		t.Error("small shard accepted")
	}
	if _, err := Pack(make([]byte, 70000), make([]byte, 70010)); err == nil {
		t.Error("oversize payload accepted")
	}
	if _, err := Unpack([]byte{1}); err == nil {
		t.Error("short shard unpacked")
	}
	if _, err := Unpack([]byte{0xFF, 0xFF, 0}); err == nil {
		t.Error("lying length unpacked")
	}
}

func TestPackBatch(t *testing.T) {
	payloads := [][]byte{[]byte("a"), []byte("bcdef"), []byte("")}
	shards, size, err := PackBatch(payloads)
	if err != nil {
		t.Fatal(err)
	}
	if size != PackedSize(5) {
		t.Errorf("size = %d, want %d", size, PackedSize(5))
	}
	for i, p := range payloads {
		got, err := Unpack(shards[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("shard %d = %q, want %q", i, got, p)
		}
	}
	if _, _, err := PackBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
}

func TestCodedRecoveryEndToEnd(t *testing.T) {
	// Simulates the CR-WAN use: pack variable-size packets from k flows,
	// generate r=2 parity, lose two packets, recover both.
	payloads := [][]byte{
		[]byte("flow-A packet 17"),
		[]byte("flow-B pkt"),
		[]byte("flow-C packet with a much longer body 0123456789"),
		[]byte("flow-D"),
	}
	shards, size, err := PackBatch(payloads)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewCodec(4, 2)
	all := append(shards, make([]byte, size), make([]byte, size))
	if err := c.Encode(all); err != nil {
		t.Fatal(err)
	}
	all[0], all[2] = nil, nil
	if err := c.Reconstruct(all); err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		got, err := Unpack(all[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("recovered %d = %q, want %q", i, got, p)
		}
	}
}

func BenchmarkEncodeK6R2_512B(b *testing.B) {
	benchmarkEncode(b, 6, 2, 512)
}

func BenchmarkEncodeK10R2_512B(b *testing.B) {
	benchmarkEncode(b, 10, 2, 512)
}

func BenchmarkEncodeK20R2_512B(b *testing.B) {
	benchmarkEncode(b, 20, 2, 512)
}

func benchmarkEncode(b *testing.B, k, m, size int) {
	c, err := NewCodec(k, m)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	shards := make([][]byte, k+m)
	for i := range shards {
		shards[i] = make([]byte, size)
		if i < k {
			rng.Read(shards[i])
		}
	}
	b.SetBytes(int64(k * size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructK6R2_512B(b *testing.B) {
	c, _ := NewCodec(6, 2)
	rng := rand.New(rand.NewSource(1))
	shards := make([][]byte, 8)
	for i := range shards {
		shards[i] = make([]byte, 512)
		if i < 6 {
			rng.Read(shards[i])
		}
	}
	if err := c.Encode(shards); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		work := make([][]byte, 8)
		copy(work, shards)
		work[1], work[3] = nil, nil
		b.StartTimer()
		if err := c.Reconstruct(work); err != nil {
			b.Fatal(err)
		}
	}
}
