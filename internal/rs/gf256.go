// Package rs implements systematic Reed-Solomon erasure coding over
// GF(2⁸), replacing the zfec library the paper's prototype used. The codec
// produces n-k parity shards for k data shards; any k of the n shards
// reconstruct the originals. CR-WAN uses it for both in-stream FEC and
// cross-stream coded packets (§4).
package rs

// GF(2⁸) arithmetic with the primitive polynomial x⁸+x⁴+x³+x²+1 (0x11D),
// the same field used by most storage erasure coders. Multiplication uses
// log/exp tables; a per-coefficient 256-entry row table accelerates the
// inner encode loops (mulSlice) without unsafe tricks.

const fieldSize = 256

var (
	expTable [2 * fieldSize]byte // exp[i] = α^i, doubled to skip a mod
	logTable [fieldSize]int
	// mulTable[a][b] = a·b. 64 KiB; built once at init. Keeping the full
	// table makes matrix inversion and slice kernels branch-free.
	mulTable [fieldSize][fieldSize]byte
)

func init() {
	x := 1
	for i := 0; i < fieldSize-1; i++ {
		expTable[i] = byte(x)
		logTable[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11D
		}
	}
	for i := fieldSize - 1; i < len(expTable); i++ {
		expTable[i] = expTable[i-(fieldSize-1)]
	}
	for a := 1; a < fieldSize; a++ {
		la := logTable[a]
		for b := 1; b < fieldSize; b++ {
			mulTable[a][b] = expTable[la+logTable[b]]
		}
	}
}

// gfAdd returns a+b in GF(2⁸) (carry-less: XOR).
func gfAdd(a, b byte) byte { return a ^ b }

// gfMul returns a·b in GF(2⁸).
func gfMul(a, b byte) byte { return mulTable[a][b] }

// gfDiv returns a/b in GF(2⁸). Division by zero panics: it can only arise
// from a singular decode matrix, which the decoder rules out beforehand.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("rs: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return expTable[logTable[a]-logTable[b]+(fieldSize-1)]
}

// gfInv returns the multiplicative inverse of a.
func gfInv(a byte) byte { return gfDiv(1, a) }

// gfExp returns α^n for n ≥ 0.
func gfExp(n int) byte {
	return expTable[n%(fieldSize-1)]
}

// mulSlice computes dst[i] ^= c·src[i] for all i (the fused
// multiply-accumulate at the heart of both encode and decode). dst and src
// must be the same length. c == 0 is a no-op; c == 1 is a pure XOR.
func mulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("rs: mulSlice length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		for i, s := range src {
			dst[i] ^= s
		}
	default:
		row := &mulTable[c]
		for i, s := range src {
			dst[i] ^= row[s]
		}
	}
}

// setMulSlice computes dst[i] = c·src[i] (overwrite form).
func setMulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("rs: setMulSlice length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
	case 1:
		copy(dst, src)
	default:
		row := &mulTable[c]
		for i, s := range src {
			dst[i] = row[s]
		}
	}
}
