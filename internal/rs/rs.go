package rs

import (
	"errors"
	"fmt"
)

// Codec is a systematic Reed-Solomon erasure codec with k data shards and
// m parity shards (n = k+m total). Any k of the n shards reconstruct the
// data. A Codec is immutable after construction and safe for concurrent
// use; CR-WAN's parallel encoder pipeline shares one Codec per (k, m).
type Codec struct {
	k, m int
	// parity holds the bottom m rows of the systematic generator matrix;
	// row i gives the coefficients of parity shard i over the data shards.
	parity matrix
}

// Errors returned by the codec.
var (
	ErrInvalidParams  = errors.New("rs: shard counts out of range")
	ErrTooFewShards   = errors.New("rs: not enough shards to reconstruct")
	ErrShardSize      = errors.New("rs: inconsistent shard sizes")
	ErrTooManyParity  = errors.New("rs: parity index out of range")
	ErrSingularDecode = errors.New("rs: decode matrix singular")
)

// NewCodec creates a codec for k data and m parity shards.
// 1 ≤ k, 0 ≤ m, k+m ≤ 256 (the field size bounds total shards).
func NewCodec(k, m int) (*Codec, error) {
	if k < 1 || m < 0 || k+m > fieldSize {
		return nil, fmt.Errorf("%w: k=%d m=%d", ErrInvalidParams, k, m)
	}
	c := &Codec{k: k, m: m}
	if m > 0 {
		sys := buildSystematic(k+m, k)
		c.parity = sys.subMatrix(k, k+m, 0, k)
	}
	return c, nil
}

// DataShards returns k.
func (c *Codec) DataShards() int { return c.k }

// ParityShards returns m.
func (c *Codec) ParityShards() int { return c.m }

// TotalShards returns k+m.
func (c *Codec) TotalShards() int { return c.k + c.m }

// Encode fills parity shards from data shards. shards must hold k+m slices
// of identical length; the first k are inputs, the last m are outputs and
// are overwritten in place (caller allocates, enabling buffer reuse in the
// encoder hot path).
func (c *Codec) Encode(shards [][]byte) error {
	if len(shards) != c.k+c.m {
		return fmt.Errorf("%w: got %d shards, want %d", ErrShardSize, len(shards), c.k+c.m)
	}
	size, err := checkShardSizes(shards, nil)
	if err != nil {
		return err
	}
	_ = size
	for p := 0; p < c.m; p++ {
		out := shards[c.k+p]
		row := c.parity.row(p)
		setMulSlice(row[0], shards[0], out)
		for d := 1; d < c.k; d++ {
			mulSlice(row[d], shards[d], out)
		}
	}
	return nil
}

// EncodeParity computes a single parity shard (index p in [0,m)) into dst.
// CR-WAN uses this to generate the r cross-stream coded packets of a batch
// one at a time as they are sent.
func (c *Codec) EncodeParity(p int, data [][]byte, dst []byte) error {
	if p < 0 || p >= c.m {
		return fmt.Errorf("%w: %d of %d", ErrTooManyParity, p, c.m)
	}
	if len(data) != c.k {
		return fmt.Errorf("%w: got %d data shards, want %d", ErrShardSize, len(data), c.k)
	}
	if _, err := checkShardSizes(data, dst); err != nil {
		return err
	}
	row := c.parity.row(p)
	setMulSlice(row[0], data[0], dst)
	for d := 1; d < c.k; d++ {
		mulSlice(row[d], data[d], dst)
	}
	return nil
}

// Reconstruct fills in missing shards. shards has length k+m; missing
// shards are nil and are allocated and filled on success. At least k shards
// must be present. Present shards are never modified.
func (c *Codec) Reconstruct(shards [][]byte) error {
	if len(shards) != c.k+c.m {
		return fmt.Errorf("%w: got %d shards, want %d", ErrShardSize, len(shards), c.k+c.m)
	}
	present := 0
	size := -1
	for _, s := range shards {
		if s == nil {
			continue
		}
		present++
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("%w: %d vs %d", ErrShardSize, len(s), size)
		}
	}
	if present < c.k {
		return fmt.Errorf("%w: %d present, need %d", ErrTooFewShards, present, c.k)
	}
	missingData := false
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			missingData = true
			break
		}
	}
	if missingData {
		if err := c.reconstructData(shards, size); err != nil {
			return err
		}
	}
	// With all data shards in hand, re-encode any missing parity.
	for p := 0; p < c.m; p++ {
		if shards[c.k+p] == nil {
			shards[c.k+p] = make([]byte, size)
			if err := c.EncodeParity(p, shards[:c.k], shards[c.k+p]); err != nil {
				return err
			}
		}
	}
	return nil
}

// reconstructData solves for the missing data shards using the first k
// available shards.
func (c *Codec) reconstructData(shards [][]byte, size int) error {
	// Build the k×k matrix whose rows are the generator rows of k
	// available shards, plus the corresponding shard data.
	sub := newMatrix(c.k, c.k)
	input := make([][]byte, c.k)
	got := 0
	for i := 0; i < c.k+c.m && got < c.k; i++ {
		if shards[i] == nil {
			continue
		}
		if i < c.k {
			sub.set(got, i, 1) // systematic row: identity
		} else {
			copy(sub.row(got), c.parity.row(i-c.k))
		}
		input[got] = shards[i]
		got++
	}
	inv, err := sub.invert()
	if err != nil {
		return ErrSingularDecode
	}
	for d := 0; d < c.k; d++ {
		if shards[d] != nil {
			continue
		}
		out := make([]byte, size)
		row := inv.row(d)
		setMulSlice(row[0], input[0], out)
		for j := 1; j < c.k; j++ {
			mulSlice(row[j], input[j], out)
		}
		shards[d] = out
	}
	return nil
}

// checkShardSizes verifies all shards (and the optional extra slice) share
// one length and that none are nil, returning the common size.
func checkShardSizes(shards [][]byte, extra []byte) (int, error) {
	if len(shards) == 0 {
		return 0, ErrShardSize
	}
	if shards[0] == nil {
		return 0, fmt.Errorf("%w: nil shard", ErrShardSize)
	}
	size := len(shards[0])
	for _, s := range shards[1:] {
		if s == nil || len(s) != size {
			return 0, fmt.Errorf("%w: want %d bytes per shard", ErrShardSize, size)
		}
	}
	if extra != nil && len(extra) != size {
		return 0, fmt.Errorf("%w: dst %d, want %d", ErrShardSize, len(extra), size)
	}
	return size, nil
}
