package rs

import "fmt"

// matrix is a dense row-major byte matrix over GF(2⁸).
type matrix struct {
	rows, cols int
	data       []byte
}

func newMatrix(rows, cols int) matrix {
	return matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

func (m matrix) at(r, c int) byte     { return m.data[r*m.cols+c] }
func (m matrix) set(r, c int, v byte) { m.data[r*m.cols+c] = v }
func (m matrix) row(r int) []byte     { return m.data[r*m.cols : (r+1)*m.cols] }

// identity returns the n×n identity matrix.
func identity(n int) matrix {
	m := newMatrix(n, n)
	for i := 0; i < n; i++ {
		m.set(i, i, 1)
	}
	return m
}

// vandermonde builds the rows×cols matrix with entry (r,c) = α^(r·c).
// Any cols×cols submatrix of a Vandermonde matrix with distinct generators
// is invertible, which is what makes RS decoding possible from any k shards.
func vandermonde(rows, cols int) matrix {
	m := newMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.set(r, c, gfExp(r*c))
		}
	}
	return m
}

// mul returns m·other.
func (m matrix) mul(other matrix) matrix {
	if m.cols != other.rows {
		panic(fmt.Sprintf("rs: matrix dim mismatch %dx%d · %dx%d", m.rows, m.cols, other.rows, other.cols))
	}
	out := newMatrix(m.rows, other.cols)
	for r := 0; r < m.rows; r++ {
		mrow := m.row(r)
		orow := out.row(r)
		for k, a := range mrow {
			if a == 0 {
				continue
			}
			mulSlice(a, other.row(k), orow)
		}
	}
	return out
}

// subMatrix returns rows [r0,r1) and cols [c0,c1) as a copy.
func (m matrix) subMatrix(r0, r1, c0, c1 int) matrix {
	out := newMatrix(r1-r0, c1-c0)
	for r := r0; r < r1; r++ {
		copy(out.row(r-r0), m.row(r)[c0:c1])
	}
	return out
}

// invert returns the inverse of a square matrix via Gauss-Jordan
// elimination with partial pivoting, or an error if the matrix is singular.
func (m matrix) invert() (matrix, error) {
	if m.rows != m.cols {
		return matrix{}, fmt.Errorf("rs: cannot invert %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	// work = [m | I]
	work := newMatrix(n, 2*n)
	for r := 0; r < n; r++ {
		copy(work.row(r)[:n], m.row(r))
		work.set(r, n+r, 1)
	}
	for col := 0; col < n; col++ {
		// Find a pivot row.
		pivot := -1
		for r := col; r < n; r++ {
			if work.at(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return matrix{}, fmt.Errorf("rs: singular matrix")
		}
		if pivot != col {
			pr, cr := work.row(pivot), work.row(col)
			for i := range pr {
				pr[i], cr[i] = cr[i], pr[i]
			}
		}
		// Scale pivot row to make the pivot 1.
		if v := work.at(col, col); v != 1 {
			inv := gfInv(v)
			row := work.row(col)
			for i := range row {
				row[i] = gfMul(row[i], inv)
			}
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			if f := work.at(r, col); f != 0 {
				mulSlice(f, work.row(col), work.row(r))
			}
		}
	}
	out := newMatrix(n, n)
	for r := 0; r < n; r++ {
		copy(out.row(r), work.row(r)[n:])
	}
	return out, nil
}

// buildSystematic converts a Vandermonde matrix into systematic form: the
// top k×k block becomes the identity, so data shards pass through encode
// unchanged and only parity rows require arithmetic.
func buildSystematic(n, k int) matrix {
	v := vandermonde(n, k)
	top := v.subMatrix(0, k, 0, k)
	topInv, err := top.invert()
	if err != nil {
		// Vandermonde top blocks are always invertible; reaching this
		// indicates field-table corruption, not a runtime condition.
		panic("rs: vandermonde top block not invertible: " + err.Error())
	}
	return v.mul(topInv)
}
