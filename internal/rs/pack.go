package rs

import (
	"encoding/binary"
	"fmt"
)

// Shard packing for variable-size packets.
//
// RS requires equal-size shards, but CR-WAN batches hold packets of varying
// length (§4.1). Each packet is packed into a shard as
//
//	[2-byte big-endian length][payload][zero padding]
//
// sized to the longest packet in the batch. Unpack recovers exact payloads,
// so a reconstructed shard round-trips to the original packet bytes.

// PackedSize returns the shard size needed for a payload of length n.
func PackedSize(n int) int { return n + 2 }

// Pack writes payload into shard (which must be ≥ len(payload)+2 bytes),
// zero-filling the tail, and returns shard.
func Pack(payload, shard []byte) ([]byte, error) {
	need := PackedSize(len(payload))
	if len(shard) < need {
		return nil, fmt.Errorf("rs: shard %d too small for payload %d", len(shard), len(payload))
	}
	if len(payload) > 0xFFFF {
		return nil, fmt.Errorf("rs: payload %d exceeds 64 KiB pack limit", len(payload))
	}
	binary.BigEndian.PutUint16(shard, uint16(len(payload)))
	copy(shard[2:], payload)
	for i := need; i < len(shard); i++ {
		shard[i] = 0
	}
	return shard, nil
}

// Unpack extracts the original payload from a packed shard. The returned
// slice aliases shard.
func Unpack(shard []byte) ([]byte, error) {
	if len(shard) < 2 {
		return nil, fmt.Errorf("rs: shard %d too short to unpack", len(shard))
	}
	n := int(binary.BigEndian.Uint16(shard))
	if n > len(shard)-2 {
		return nil, fmt.Errorf("rs: packed length %d exceeds shard %d", n, len(shard))
	}
	return shard[2 : 2+n], nil
}

// PackBatch packs payloads into equal-size shards sized to the longest
// payload, returning the shards and the shard size. Used by the cross-stream
// encoder when a batch closes.
func PackBatch(payloads [][]byte) ([][]byte, int, error) {
	if len(payloads) == 0 {
		return nil, 0, fmt.Errorf("rs: empty batch")
	}
	max := 0
	for _, p := range payloads {
		if len(p) > max {
			max = len(p)
		}
	}
	size := PackedSize(max)
	shards := make([][]byte, len(payloads))
	for i, p := range payloads {
		shards[i] = make([]byte, size)
		if _, err := Pack(p, shards[i]); err != nil {
			return nil, 0, err
		}
	}
	return shards, size, nil
}
