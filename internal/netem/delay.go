package netem

import (
	"math"
	"math/rand"
	"sort"

	"jqos/internal/core"
)

// DelayModel produces the one-way propagation delay for each packet.
type DelayModel interface {
	Delay(now core.Time, r *rand.Rand) core.Time
}

// FixedDelay is a constant one-way latency.
type FixedDelay core.Time

// Delay implements DelayModel.
func (d FixedDelay) Delay(core.Time, *rand.Rand) core.Time { return core.Time(d) }

// UniformJitter adds uniform jitter in [0, Jitter) to a base delay.
type UniformJitter struct {
	Base   core.Time
	Jitter core.Time
}

// Delay implements DelayModel.
func (u UniformJitter) Delay(_ core.Time, r *rand.Rand) core.Time {
	if u.Jitter <= 0 {
		return u.Base
	}
	return u.Base + core.Time(r.Int63n(int64(u.Jitter)))
}

// NormalJitter draws delay from a truncated normal: Base + N(0, Sigma),
// clamped to at least Floor. Internet paths show roughly lognormal delay;
// a clamped normal is close enough for the figures and cheaper to reason
// about.
type NormalJitter struct {
	Base  core.Time
	Sigma core.Time
	Floor core.Time
}

// Delay implements DelayModel.
func (n NormalJitter) Delay(_ core.Time, r *rand.Rand) core.Time {
	d := core.Time(float64(n.Base) + r.NormFloat64()*float64(n.Sigma))
	if d < n.Floor {
		d = n.Floor
	}
	return d
}

// HeavyTailJitter models the long tail of Internet delivery (Figure 7a's
// Internet curve): base delay plus, with probability PTail, an extra
// Pareto-distributed spike.
type HeavyTailJitter struct {
	Base   core.Time
	Sigma  core.Time // body jitter (normal)
	PTail  float64   // probability of a tail event
	TailLo core.Time // minimum tail inflation
	Alpha  float64   // Pareto shape; smaller = heavier (e.g. 1.5)
}

// Delay implements DelayModel.
func (h HeavyTailJitter) Delay(_ core.Time, r *rand.Rand) core.Time {
	d := float64(h.Base) + r.NormFloat64()*float64(h.Sigma)
	if r.Float64() < h.PTail {
		u := r.Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		alpha := h.Alpha
		if alpha <= 0 {
			alpha = 1.5
		}
		d += float64(h.TailLo) * math.Pow(u, -1/alpha)
	}
	if d < float64(h.Base)/2 {
		d = float64(h.Base) / 2
	}
	return core.Time(d)
}

// Empirical replays delays drawn uniformly from a sample set (e.g. a
// dataset-generated latency distribution).
type Empirical struct {
	Samples []core.Time
}

// NewEmpirical copies and sorts samples.
func NewEmpirical(samples []core.Time) *Empirical {
	s := append([]core.Time(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return &Empirical{Samples: s}
}

// Delay implements DelayModel.
func (e *Empirical) Delay(_ core.Time, r *rand.Rand) core.Time {
	if len(e.Samples) == 0 {
		return 0
	}
	return e.Samples[r.Intn(len(e.Samples))]
}

// Quantile returns the q-quantile of the sample set (nearest rank).
func (e *Empirical) Quantile(q float64) core.Time {
	if len(e.Samples) == 0 {
		return 0
	}
	idx := int(q * float64(len(e.Samples)-1))
	return e.Samples[idx]
}
