package netem

import (
	"fmt"

	"jqos/internal/core"
)

// Handler consumes datagrams addressed to a node. data is owned by the
// receiver once delivered (the network never retains or reuses it).
type Handler func(from, to core.NodeID, data []byte)

// linkKey identifies a directed edge.
type linkKey struct {
	from, to core.NodeID
}

// Network is a set of nodes joined by directed links, the fabric over which
// an emulated J-QoS deployment runs. It is not safe for concurrent use; the
// simulator is single-goroutine by design.
type Network struct {
	sim   *Simulator
	links map[linkKey]*Link
	nodes map[core.NodeID]Handler
	// Tap, if set, observes every accepted datagram at send time — used
	// by experiments for bandwidth accounting and by tests for tracing.
	Tap func(from, to core.NodeID, size int)
}

// NewNetwork creates an empty network on sim.
func NewNetwork(sim *Simulator) *Network {
	return &Network{
		sim:   sim,
		links: make(map[linkKey]*Link),
		nodes: make(map[core.NodeID]Handler),
	}
}

// Sim returns the simulator driving this network.
func (n *Network) Sim() *Simulator { return n.sim }

// AddNode registers a handler for a node ID. Re-registering replaces the
// handler (endpoints are built in stages during wiring).
func (n *Network) AddNode(id core.NodeID, h Handler) {
	n.nodes[id] = h
}

// Connect installs a unidirectional link from a to b, replacing any
// existing one.
func (n *Network) Connect(a, b core.NodeID, l *Link) {
	if l == nil {
		panic("netem: Connect with nil link")
	}
	n.links[linkKey{a, b}] = l
}

// ConnectBidirectional installs two independent links with the same models
// built by mk (called twice so each direction has independent state).
func (n *Network) ConnectBidirectional(a, b core.NodeID, mk func() *Link) {
	n.Connect(a, b, mk())
	n.Connect(b, a, mk())
}

// LinkBetween returns the directed link or nil.
func (n *Network) LinkBetween(a, b core.NodeID) *Link {
	return n.links[linkKey{a, b}]
}

// Send transmits one datagram. Unknown routes panic: topologies are static
// per experiment, so a missing link is a wiring bug, not a runtime
// condition. Sends to nodes with no registered handler are delivered to a
// no-op (packets can arrive for endpoints that already left — e.g. after a
// mobility hand-off).
func (n *Network) Send(from, to core.NodeID, data []byte) bool {
	l := n.links[linkKey{from, to}]
	if l == nil {
		panic(fmt.Sprintf("netem: no link %v -> %v", from, to))
	}
	ok := l.Send(len(data), func(core.Time) {
		if h := n.nodes[to]; h != nil {
			h(from, to, data)
		}
	})
	if ok && n.Tap != nil {
		n.Tap(from, to, len(data))
	}
	return ok
}

// HasRoute reports whether a directed link exists.
func (n *Network) HasRoute(from, to core.NodeID) bool {
	return n.links[linkKey{from, to}] != nil
}

// NodeHandler returns the registered handler for a node (nil if none) —
// diagnostics use it to wrap endpoints with classification shims.
func (n *Network) NodeHandler(id core.NodeID) Handler { return n.nodes[id] }
