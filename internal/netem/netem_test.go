package netem

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"jqos/internal/core"
)

func TestSimulatorOrdering(t *testing.T) {
	sim := NewSimulator(1)
	var order []int
	sim.At(30*time.Millisecond, func() { order = append(order, 3) })
	sim.At(10*time.Millisecond, func() { order = append(order, 1) })
	sim.At(20*time.Millisecond, func() { order = append(order, 2) })
	sim.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if sim.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v", sim.Now())
	}
	if sim.Steps() != 3 {
		t.Errorf("Steps = %d", sim.Steps())
	}
}

func TestSimulatorFIFOWithinTimestamp(t *testing.T) {
	sim := NewSimulator(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		sim.At(5*time.Millisecond, func() { order = append(order, i) })
	}
	sim.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestSimulatorNestedScheduling(t *testing.T) {
	sim := NewSimulator(1)
	var fired []core.Time
	sim.After(time.Millisecond, func() {
		fired = append(fired, sim.Now())
		sim.After(2*time.Millisecond, func() {
			fired = append(fired, sim.Now())
		})
	})
	sim.Run()
	if len(fired) != 2 || fired[0] != time.Millisecond || fired[1] != 3*time.Millisecond {
		t.Errorf("fired = %v", fired)
	}
}

func TestSimulatorPastPanics(t *testing.T) {
	sim := NewSimulator(1)
	sim.At(10*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		sim.At(5*time.Millisecond, func() {})
	})
	sim.Run()
}

func TestRunUntilAdvancesClock(t *testing.T) {
	sim := NewSimulator(1)
	ran := false
	sim.At(5*time.Millisecond, func() { ran = true })
	sim.RunUntil(3 * time.Millisecond)
	if ran || sim.Now() != 3*time.Millisecond {
		t.Errorf("early event ran=%v now=%v", ran, sim.Now())
	}
	if sim.Pending() != 1 {
		t.Errorf("Pending = %d", sim.Pending())
	}
	sim.RunFor(10 * time.Millisecond)
	if !ran || sim.Now() != 13*time.Millisecond {
		t.Errorf("ran=%v now=%v", ran, sim.Now())
	}
}

func TestSimulatorDeterminism(t *testing.T) {
	run := func() []int64 {
		sim := NewSimulator(99)
		link := NewLink(sim, UniformJitter{Base: 10 * time.Millisecond, Jitter: 5 * time.Millisecond}, Bernoulli{P: 0.3})
		var arrivals []int64
		for i := 0; i < 200; i++ {
			i := i
			sim.At(core.Time(i)*time.Millisecond, func() {
				link.Send(100, func(at core.Time) { arrivals = append(arrivals, int64(at)) })
			})
		}
		sim.Run()
		return arrivals
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	m := Bernoulli{P: 0.1}
	lost := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if m.Lose(0, r) {
			lost++
		}
	}
	if rate := float64(lost) / n; math.Abs(rate-0.1) > 0.005 {
		t.Errorf("loss rate = %v, want ~0.1", rate)
	}
}

func TestNoLoss(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	if (NoLoss{}).Lose(0, r) {
		t.Error("NoLoss lost a packet")
	}
}

func TestGoogleBurstProducesBursts(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := NewGoogleBurst()
	losses, bursts, run := 0, 0, 0
	const n = 500000
	maxBurst := 0
	for i := 0; i < n; i++ {
		if m.Lose(0, r) {
			losses++
			run++
			if run > maxBurst {
				maxBurst = run
			}
		} else {
			if run > 0 {
				bursts++
			}
			run = 0
		}
	}
	// Expected loss rate ≈ pFirst/(pFirst+ (1-pNext)) stationary ≈ 2%.
	rate := float64(losses) / n
	if rate < 0.01 || rate > 0.04 {
		t.Errorf("loss rate = %v", rate)
	}
	// Mean burst length should be ≈ 1/(1-pNext) = 2.
	mean := float64(losses) / float64(bursts)
	if mean < 1.7 || mean > 2.3 {
		t.Errorf("mean burst = %v, want ~2", mean)
	}
	if maxBurst < 4 {
		t.Errorf("max burst = %d, expected multi-packet bursts", maxBurst)
	}
}

func TestGilbertElliottStates(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	m := &GilbertElliott{PGoodToBad: 0.01, PBadToGood: 0.2, LossGood: 0, LossBad: 1}
	losses := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if m.Lose(0, r) {
			losses++
		}
	}
	// Stationary bad fraction = 0.01/(0.01+0.2) ≈ 4.8%.
	rate := float64(losses) / n
	if rate < 0.03 || rate > 0.07 {
		t.Errorf("bad-state loss fraction = %v", rate)
	}
}

func TestOutageSchedule(t *testing.T) {
	o := &OutageSchedule{}
	o.AddOutage(10*time.Second, 2*time.Second)
	o.AddOutage(1*time.Second, 1*time.Second)
	r := rand.New(rand.NewSource(1))
	cases := []struct {
		at   core.Time
		want bool
	}{
		{0, false},
		{1 * time.Second, true},
		{1999 * time.Millisecond, true},
		{2 * time.Second, false},
		{11 * time.Second, true},
		{12 * time.Second, false},
		{30 * time.Second, false},
	}
	for _, c := range cases {
		if got := o.Lose(c.at, r); got != c.want {
			t.Errorf("Lose(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestRandomOutages(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	o := RandomOutages(r, time.Hour, 1.0/60, time.Second, 3*time.Second)
	if len(o.Windows) == 0 {
		t.Fatal("no outages generated")
	}
	for i, w := range o.Windows {
		if d := w.To - w.From; d < time.Second || d > 3*time.Second {
			t.Errorf("window %d duration %v", i, d)
		}
		if i > 0 && w.From < o.Windows[i-1].From {
			t.Error("windows unsorted")
		}
	}
	if empty := RandomOutages(r, time.Hour, 0, time.Second, time.Second); len(empty.Windows) != 0 {
		t.Error("rate 0 produced outages")
	}
}

func TestComposite(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	o := &OutageSchedule{}
	o.AddOutage(0, time.Second)
	c := Composite{Bernoulli{P: 0}, o}
	if !c.Lose(500*time.Millisecond, r) {
		t.Error("composite missed outage")
	}
	if c.Lose(2*time.Second, r) {
		t.Error("composite lost outside outage")
	}
}

func TestDelayModels(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	if d := (FixedDelay(5 * time.Millisecond)).Delay(0, r); d != 5*time.Millisecond {
		t.Errorf("FixedDelay = %v", d)
	}
	u := UniformJitter{Base: 10 * time.Millisecond, Jitter: 5 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		d := u.Delay(0, r)
		if d < 10*time.Millisecond || d >= 15*time.Millisecond {
			t.Fatalf("UniformJitter out of range: %v", d)
		}
	}
	if d := (UniformJitter{Base: time.Millisecond}).Delay(0, r); d != time.Millisecond {
		t.Errorf("zero jitter = %v", d)
	}
	nj := NormalJitter{Base: 10 * time.Millisecond, Sigma: 2 * time.Millisecond, Floor: 9 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		if d := nj.Delay(0, r); d < 9*time.Millisecond {
			t.Fatalf("NormalJitter below floor: %v", d)
		}
	}
}

func TestHeavyTailJitter(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	h := HeavyTailJitter{Base: 50 * time.Millisecond, Sigma: 2 * time.Millisecond,
		PTail: 0.05, TailLo: 100 * time.Millisecond, Alpha: 1.5}
	tail := 0
	const n = 20000
	for i := 0; i < n; i++ {
		d := h.Delay(0, r)
		if d >= 140*time.Millisecond {
			tail++
		}
		if d < 25*time.Millisecond {
			t.Fatalf("delay below floor: %v", d)
		}
	}
	frac := float64(tail) / n
	if frac < 0.02 || frac > 0.09 {
		t.Errorf("tail fraction = %v, want ~0.05", frac)
	}
}

func TestEmpiricalDelay(t *testing.T) {
	samples := []core.Time{3 * time.Millisecond, 1 * time.Millisecond, 2 * time.Millisecond}
	e := NewEmpirical(samples)
	if e.Quantile(0) != time.Millisecond || e.Quantile(1) != 3*time.Millisecond {
		t.Errorf("quantiles: %v %v", e.Quantile(0), e.Quantile(1))
	}
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		d := e.Delay(0, r)
		if d < time.Millisecond || d > 3*time.Millisecond {
			t.Fatalf("empirical delay out of set: %v", d)
		}
	}
	var empty Empirical
	if empty.Delay(0, r) != 0 || empty.Quantile(0.5) != 0 {
		t.Error("empty empirical should return 0")
	}
}

func TestLinkDeliveryAndStats(t *testing.T) {
	sim := NewSimulator(10)
	link := NewLink(sim, FixedDelay(10*time.Millisecond), nil)
	var arrived core.Time
	ok := link.Send(500, func(at core.Time) { arrived = at })
	if !ok {
		t.Fatal("send rejected")
	}
	sim.Run()
	if arrived != 10*time.Millisecond {
		t.Errorf("arrived at %v", arrived)
	}
	st := link.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Bytes != 500 || st.LossRate() != 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestLinkLossAccounting(t *testing.T) {
	sim := NewSimulator(11)
	link := NewLink(sim, nil, Bernoulli{P: 1})
	if link.Send(100, func(core.Time) { t.Error("delivered through P=1 loss") }) {
		t.Error("send accepted")
	}
	sim.Run()
	st := link.Stats()
	if st.Lost != 1 || st.Delivered != 0 || st.LossRate() != 1 {
		t.Errorf("stats: %+v", st)
	}
	if (LinkStats{}).LossRate() != 0 {
		t.Error("zero stats loss rate")
	}
}

func TestLinkSerializationAndQueue(t *testing.T) {
	sim := NewSimulator(12)
	link := NewLink(sim, FixedDelay(0), nil)
	link.Rate = 1000 // bytes/sec → 1 ms per byte
	var arrivals []core.Time
	// Two 10-byte packets sent back to back: second must queue behind first.
	link.Send(10, func(at core.Time) { arrivals = append(arrivals, at) })
	link.Send(10, func(at core.Time) { arrivals = append(arrivals, at) })
	sim.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[0] != 10*time.Millisecond || arrivals[1] != 20*time.Millisecond {
		t.Errorf("serialization wrong: %v", arrivals)
	}
}

func TestLinkTailDrop(t *testing.T) {
	sim := NewSimulator(13)
	link := NewLink(sim, nil, nil)
	link.Rate = 1000
	link.MaxQueue = 15 * time.Millisecond
	accepted := 0
	for i := 0; i < 5; i++ { // each packet takes 10ms to serialize
		if link.Send(10, func(core.Time) {}) {
			accepted++
		}
	}
	sim.Run()
	// First departs at 10ms (wait 0), second waits 10, third would wait 20 > 15.
	if accepted != 2 {
		t.Errorf("accepted = %d, want 2", accepted)
	}
	if link.Stats().TailDrop != 3 {
		t.Errorf("tail drops = %d", link.Stats().TailDrop)
	}
}

func TestLinkSetLoss(t *testing.T) {
	sim := NewSimulator(14)
	link := NewLink(sim, nil, nil)
	link.SetLoss(Bernoulli{P: 1})
	if link.Send(1, func(core.Time) {}) {
		t.Error("send survived after SetLoss(P=1)")
	}
	link.SetLoss(nil)
	if !link.Send(1, func(core.Time) {}) {
		t.Error("send failed after SetLoss(nil)")
	}
	sim.Run()
}

func TestNetworkDelivery(t *testing.T) {
	sim := NewSimulator(15)
	net := NewNetwork(sim)
	if net.Sim() != sim {
		t.Error("Sim() mismatch")
	}
	var got []byte
	var gotFrom core.NodeID
	net.AddNode(1, nil)
	net.AddNode(2, func(from, to core.NodeID, data []byte) {
		gotFrom, got = from, data
	})
	net.Connect(1, 2, NewLink(sim, FixedDelay(time.Millisecond), nil))
	var taps int
	net.Tap = func(from, to core.NodeID, size int) { taps += size }
	if !net.Send(1, 2, []byte("hi")) {
		t.Fatal("send failed")
	}
	sim.Run()
	if string(got) != "hi" || gotFrom != 1 {
		t.Errorf("delivery: %q from %v", got, gotFrom)
	}
	if taps != 2 {
		t.Errorf("tap bytes = %d", taps)
	}
	if !net.HasRoute(1, 2) || net.HasRoute(2, 1) {
		t.Error("HasRoute wrong")
	}
	if net.LinkBetween(1, 2) == nil {
		t.Error("LinkBetween nil")
	}
}

func TestNetworkUnknownRoutePanics(t *testing.T) {
	sim := NewSimulator(16)
	net := NewNetwork(sim)
	defer func() {
		if recover() == nil {
			t.Error("send on missing link did not panic")
		}
	}()
	net.Send(1, 2, []byte("x"))
}

func TestNetworkNilLinkPanics(t *testing.T) {
	net := NewNetwork(NewSimulator(17))
	defer func() {
		if recover() == nil {
			t.Error("Connect(nil) did not panic")
		}
	}()
	net.Connect(1, 2, nil)
}

func TestNetworkDeliveryToUnregisteredNode(t *testing.T) {
	sim := NewSimulator(18)
	net := NewNetwork(sim)
	net.Connect(1, 9, NewLink(sim, nil, nil))
	if !net.Send(1, 9, []byte("into the void")) {
		t.Error("send to unregistered node rejected")
	}
	sim.Run() // must not panic
}

func TestConnectBidirectional(t *testing.T) {
	sim := NewSimulator(19)
	net := NewNetwork(sim)
	calls := 0
	net.ConnectBidirectional(1, 2, func() *Link {
		calls++
		return NewLink(sim, nil, nil)
	})
	if calls != 2 {
		t.Errorf("maker called %d times", calls)
	}
	if !net.HasRoute(1, 2) || !net.HasRoute(2, 1) {
		t.Error("bidirectional routes missing")
	}
	if net.LinkBetween(1, 2) == net.LinkBetween(2, 1) {
		t.Error("directions share a link")
	}
}

func BenchmarkSimulatorEventLoop(b *testing.B) {
	sim := NewSimulator(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.After(time.Microsecond, func() {})
		sim.RunFor(2 * time.Microsecond)
	}
}

func BenchmarkLinkSend(b *testing.B) {
	sim := NewSimulator(1)
	link := NewLink(sim, UniformJitter{Base: time.Millisecond, Jitter: time.Millisecond}, Bernoulli{P: 0.01})
	sink := func(core.Time) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		link.Send(512, sink)
		if i%1024 == 0 {
			sim.RunFor(10 * time.Millisecond)
		}
	}
	sim.Run()
}
