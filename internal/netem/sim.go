// Package netem is a deterministic discrete-event network emulator. It
// stands in for the paper's testbeds (PlanetLab paths, Emulab topologies,
// emulated WAN impairments): virtual time, an event heap, and links with
// configurable latency, jitter, bandwidth, and loss processes.
//
// Everything is seeded and single-goroutine, so experiment output is
// bit-stable across runs and machines.
package netem

import (
	"container/heap"
	"math/rand"

	"jqos/internal/core"
)

// event is one scheduled callback. seq breaks ties so that events scheduled
// earlier run earlier at equal timestamps (FIFO within a timestamp), which
// keeps runs deterministic.
type event struct {
	at  core.Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)         { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any           { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event         { return h[0] }
func (h *eventHeap) pop() event         { return heap.Pop(h).(event) }
func (h *eventHeap) push(e event)       { heap.Push(h, e) }
func (h eventHeap) empty() bool         { return len(h) == 0 }
func (h eventHeap) nextTime() core.Time { return h[0].at }

// Simulator owns virtual time and the pending event set.
type Simulator struct {
	now    core.Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand
	steps  uint64
}

// NewSimulator creates a simulator with its own seeded RNG.
func NewSimulator(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now implements core.Clock.
func (s *Simulator) Now() core.Time { return s.now }

// Rand returns the simulator's RNG. All stochastic models in a run draw
// from it (or from RNGs forked via Fork), keeping runs reproducible.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Fork returns a new RNG seeded from the simulator's RNG, for components
// that want their own stream without coupling to global draw order.
func (s *Simulator) Fork() *rand.Rand { return rand.New(rand.NewSource(s.rng.Int63())) }

// At schedules fn at absolute virtual time t. Scheduling in the past (t <
// Now) panics: it is always a logic error in an event-driven system.
func (s *Simulator) At(t core.Time, fn func()) {
	if t < s.now {
		panic("netem: scheduling event in the past")
	}
	s.seq++
	s.events.push(event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d after the current time.
func (s *Simulator) After(d core.Time, fn func()) { s.At(s.now+d, fn) }

// Steps reports how many events have executed, a cheap progress and
// runaway-loop diagnostic.
func (s *Simulator) Steps() uint64 { return s.steps }

// Run executes events until none remain.
func (s *Simulator) Run() {
	for !s.events.empty() {
		s.step()
	}
}

// RunUntil executes events with timestamps ≤ t, then advances the clock to
// exactly t (even if no event lands there).
func (s *Simulator) RunUntil(t core.Time) {
	for !s.events.empty() && s.events.nextTime() <= t {
		s.step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor runs for a span of virtual time from now.
func (s *Simulator) RunFor(d core.Time) { s.RunUntil(s.now + d) }

func (s *Simulator) step() {
	e := s.events.pop()
	s.now = e.at
	s.steps++
	e.fn()
}

// Pending reports the number of scheduled events, useful in tests to assert
// quiescence.
func (s *Simulator) Pending() int { return len(s.events) }
