package netem

import (
	"math/rand"
	"sort"

	"jqos/internal/core"
)

// LossModel decides, per packet, whether a link drops it. Implementations
// may keep state (burst models are Markovian), so a LossModel instance must
// not be shared between links.
type LossModel interface {
	// Lose reports whether the packet observed at virtual time now is
	// dropped.
	Lose(now core.Time, r *rand.Rand) bool
}

// NoLoss is the zero loss process.
type NoLoss struct{}

// Lose implements LossModel.
func (NoLoss) Lose(core.Time, *rand.Rand) bool { return false }

// Bernoulli drops each packet independently with probability P — the
// "random loss" class of Figure 8(b).
type Bernoulli struct {
	P float64
}

// Lose implements LossModel.
func (b Bernoulli) Lose(_ core.Time, r *rand.Rand) bool { return r.Float64() < b.P }

// GoogleBurst is the loss model from the Google web-latency study the paper
// adopts for its TCP experiment (§6.4): the first packet of a burst is lost
// with probability PFirst, and once losing, each subsequent packet is lost
// with probability PNext. Produces multi-packet episodes.
type GoogleBurst struct {
	PFirst float64 // paper: 0.01
	PNext  float64 // paper: 0.5
	inLoss bool
}

// NewGoogleBurst returns the model with the paper's parameters.
func NewGoogleBurst() *GoogleBurst { return &GoogleBurst{PFirst: 0.01, PNext: 0.5} }

// Lose implements LossModel.
func (g *GoogleBurst) Lose(_ core.Time, r *rand.Rand) bool {
	p := g.PFirst
	if g.inLoss {
		p = g.PNext
	}
	g.inLoss = r.Float64() < p
	return g.inLoss
}

// GilbertElliott is the classic two-state burst-loss channel: a Good state
// with loss LossG and a Bad state with loss LossB, with per-packet
// transition probabilities between them. Used to synthesize the
// multi-packet episode class on PlanetLab-like paths.
type GilbertElliott struct {
	PGoodToBad float64
	PBadToGood float64
	LossGood   float64
	LossBad    float64
	bad        bool
}

// NewGilbertElliott derives the two-state chain from operator targets
// instead of raw transition probabilities: a stationary loss rate
// (fraction of all packets lost, 0..1) and a mean loss-burst length in
// packets (≥1). The Bad state loses everything and the Good state is
// clean, so burst lengths are geometric with mean 1/PBadToGood and the
// stationary Bad-state probability equals the loss rate:
//
//	PBadToGood = 1/meanBurst
//	PGoodToBad = PBadToGood · lossRate/(1−lossRate)
//
// lossRate is clamped to [0, 0.9] (the chain needs Good-state dwell
// time) and meanBurst is floored at 1.
func NewGilbertElliott(lossRate, meanBurst float64) *GilbertElliott {
	if lossRate < 0 {
		lossRate = 0
	}
	if lossRate > 0.9 {
		lossRate = 0.9
	}
	if meanBurst < 1 {
		meanBurst = 1
	}
	pBG := 1 / meanBurst
	pGB := 0.0
	if lossRate > 0 {
		pGB = pBG * lossRate / (1 - lossRate)
		// A high loss rate with short bursts can demand PGoodToBad > 1;
		// cap it (the chain then re-enters Bad every packet and the
		// realized rate saturates below the target).
		if pGB > 1 {
			pGB = 1
		}
	}
	return &GilbertElliott{PGoodToBad: pGB, PBadToGood: pBG, LossBad: 1}
}

// Lose implements LossModel.
func (g *GilbertElliott) Lose(_ core.Time, r *rand.Rand) bool {
	if g.bad {
		if r.Float64() < g.PBadToGood {
			g.bad = false
		}
	} else if r.Float64() < g.PGoodToBad {
		g.bad = true
	}
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	return r.Float64() < p
}

// Window is a half-open interval of virtual time [From, To).
type Window struct {
	From, To core.Time
}

// Contains reports whether t falls in the window.
func (w Window) Contains(t core.Time) bool { return t >= w.From && t < w.To }

// OutageSchedule drops every packet inside its windows — the "outage"
// episode class (paper: 45% of paths see 1–3 s outages; the Skype case
// study uses a 30 s outage). Windows must be sorted and non-overlapping.
type OutageSchedule struct {
	Windows []Window
}

// AddOutage appends a window starting at from with the given duration.
func (o *OutageSchedule) AddOutage(from core.Time, dur core.Time) {
	o.Windows = append(o.Windows, Window{From: from, To: from + dur})
	sort.Slice(o.Windows, func(i, j int) bool { return o.Windows[i].From < o.Windows[j].From })
}

// Lose implements LossModel.
func (o *OutageSchedule) Lose(now core.Time, _ *rand.Rand) bool {
	// Binary search for the first window ending after now.
	i := sort.Search(len(o.Windows), func(i int) bool { return o.Windows[i].To > now })
	return i < len(o.Windows) && o.Windows[i].Contains(now)
}

// RandomOutages generates an OutageSchedule with outages arriving as a
// Poisson process of the given rate (events per simulated second) over
// [0, horizon), each lasting between minDur and maxDur (uniform).
func RandomOutages(r *rand.Rand, horizon core.Time, perSecond float64, minDur, maxDur core.Time) *OutageSchedule {
	o := &OutageSchedule{}
	if perSecond <= 0 {
		return o
	}
	t := core.Time(0)
	for {
		gapSec := r.ExpFloat64() / perSecond
		t += core.Time(gapSec * 1e9)
		if t >= horizon {
			return o
		}
		dur := minDur
		if maxDur > minDur {
			dur += core.Time(r.Int63n(int64(maxDur - minDur)))
		}
		o.AddOutage(t, dur)
	}
}

// Composite loses a packet if any component model loses it. All components
// observe every packet, so stateful components advance consistently.
type Composite []LossModel

// Lose implements LossModel.
func (c Composite) Lose(now core.Time, r *rand.Rand) bool {
	lost := false
	for _, m := range c {
		if m.Lose(now, r) {
			lost = true
		}
	}
	return lost
}

// SharedFate makes one loss decision per virtual timestamp and replays it
// to every link that asks at that same instant. It models a shared first
// mile: when a sender emits the direct copy and the cloud copy of a packet
// in the same event, an access-link drop kills both (the paper's finding
// that unrecoverable losses concentrate on source access paths).
//
// The cache holds a single timestamp, so all queries for one packet must
// happen before the next packet is offered — true for J-QoS senders, which
// fan out all copies synchronously.
type SharedFate struct {
	Model    LossModel
	lastTime core.Time
	lastLose bool
	primed   bool
}

// NewSharedFate wraps a model for shared-fate evaluation.
func NewSharedFate(m LossModel) *SharedFate { return &SharedFate{Model: m} }

// Lose implements LossModel.
func (s *SharedFate) Lose(now core.Time, r *rand.Rand) bool {
	if s.primed && now == s.lastTime {
		return s.lastLose
	}
	s.primed = true
	s.lastTime = now
	s.lastLose = s.Model.Lose(now, r)
	return s.lastLose
}
