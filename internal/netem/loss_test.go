package netem

import (
	"math"
	"math/rand"
	"testing"
)

// sampleGE drives n packets through a fresh chain and returns the
// realized loss fraction plus every loss-burst length (runs of
// consecutive lost packets). Seeded, so the statistics are exact and
// repeatable — no flake tolerance games.
func sampleGE(t *testing.T, lossRate, meanBurst float64, n int, seed int64) (rate float64, bursts []int) {
	t.Helper()
	g := NewGilbertElliott(lossRate, meanBurst)
	r := rand.New(rand.NewSource(seed))
	losses, run := 0, 0
	for i := 0; i < n; i++ {
		if g.Lose(0, r) {
			losses++
			run++
		} else if run > 0 {
			bursts = append(bursts, run)
			run = 0
		}
	}
	if run > 0 {
		bursts = append(bursts, run)
	}
	return float64(losses) / float64(n), bursts
}

// TestGilbertElliottDerivedParameters checks the operator-target
// constructor: the chain's transition probabilities must realize the
// requested stationary loss rate and mean burst length, with out-of-
// range targets clamped rather than producing a degenerate chain.
func TestGilbertElliottDerivedParameters(t *testing.T) {
	g := NewGilbertElliott(0.02, 4)
	if got, want := g.PBadToGood, 0.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("PBadToGood = %v, want %v", got, want)
	}
	if got, want := g.PGoodToBad, 0.25*0.02/0.98; math.Abs(got-want) > 1e-12 {
		t.Errorf("PGoodToBad = %v, want %v", got, want)
	}
	if g.LossBad != 1 || g.LossGood != 0 {
		t.Errorf("loss probabilities = (%v, %v), want (0, 1)", g.LossGood, g.LossBad)
	}
	// Stationary Bad probability pGB/(pGB+pBG) must equal the target rate.
	if pi := g.PGoodToBad / (g.PGoodToBad + g.PBadToGood); math.Abs(pi-0.02) > 1e-12 {
		t.Errorf("stationary Bad probability = %v, want 0.02", pi)
	}

	// Clamps: negative rate → lossless; sub-packet bursts floor at 1;
	// extreme rate/burst combinations cap PGoodToBad at 1.
	if g := NewGilbertElliott(-0.5, 0.2); g.PGoodToBad != 0 || g.PBadToGood != 1 {
		t.Errorf("clamped chain = %+v, want PGoodToBad 0 PBadToGood 1", g)
	}
	if g := NewGilbertElliott(0.99, 2); g.PGoodToBad != 1 {
		t.Errorf("PGoodToBad = %v, want capped at 1", g.PGoodToBad)
	}
}

// TestGilbertElliottStationaryLossRate: over a long seeded sample the
// realized loss fraction must sit within 15% of the requested
// stationary rate, across a spread of rate/burst combinations.
func TestGilbertElliottStationaryLossRate(t *testing.T) {
	const n = 300_000
	for _, tc := range []struct {
		rate, burst float64
	}{
		{0.01, 3},
		{0.02, 4},
		{0.05, 2},
		{0.10, 6},
	} {
		got, _ := sampleGE(t, tc.rate, tc.burst, n, 42)
		if math.Abs(got-tc.rate) > 0.15*tc.rate {
			t.Errorf("rate %.3f burst %.1f: realized loss %.5f, want %.3f ±15%%",
				tc.rate, tc.burst, got, tc.rate)
		}
	}
}

// TestGilbertElliottBurstLengths: loss bursts are the Bad-state dwell
// times, geometric with the requested mean. The sample mean must land
// within 10% of the target, and the geometric shape must show — the
// fraction of bursts longer than one packet is 1 − 1/meanBurst.
func TestGilbertElliottBurstLengths(t *testing.T) {
	const (
		rate  = 0.03
		burst = 5.0
		n     = 500_000
	)
	_, bursts := sampleGE(t, rate, burst, n, 7)
	if len(bursts) < 1000 {
		t.Fatalf("only %d bursts observed — sample too small to judge", len(bursts))
	}
	var sum, multi float64
	for _, b := range bursts {
		sum += float64(b)
		if b > 1 {
			multi++
		}
	}
	if mean := sum / float64(len(bursts)); math.Abs(mean-burst) > 0.1*burst {
		t.Errorf("mean burst length = %.3f over %d bursts, want %.1f ±10%%", mean, len(bursts), burst)
	}
	wantMulti := 1 - 1/burst
	if gotMulti := multi / float64(len(bursts)); math.Abs(gotMulti-wantMulti) > 0.05 {
		t.Errorf("multi-packet burst fraction = %.3f, want %.3f ±0.05 (geometric tail)", gotMulti, wantMulti)
	}
}
