package netem

import (
	"math/rand"

	"jqos/internal/core"
)

// LinkStats counts what a link did to traffic, for experiment accounting.
type LinkStats struct {
	Sent      uint64 // packets offered to the link
	Delivered uint64 // packets that arrived
	Lost      uint64 // packets dropped by the loss process
	TailDrop  uint64 // packets dropped by queue overflow
	Bytes     uint64 // bytes delivered
}

// LossRate returns the fraction of offered packets that did not arrive.
func (s LinkStats) LossRate() float64 {
	if s.Sent == 0 {
		return 0
	}
	return float64(s.Sent-s.Delivered) / float64(s.Sent)
}

// Link is a unidirectional emulated path: FIFO serialization at Rate
// bytes/sec (0 = infinite), a bounded queue, a propagation DelayModel, and
// a LossModel. Loss is evaluated at enqueue time (ingress drop), which is
// how both tail loss and path outages manifest to endpoints.
type Link struct {
	sim   *Simulator
	rng   *rand.Rand
	delay DelayModel
	loss  LossModel

	// Rate is the serialization rate in bytes/second. Zero disables
	// bandwidth emulation.
	Rate int64
	// MaxQueue bounds queueing delay; packets that would wait longer are
	// tail-dropped. Zero means an unbounded queue.
	MaxQueue core.Time

	busyUntil core.Time
	stats     LinkStats
}

// NewLink builds a link on sim with the given models. A nil delay means
// zero propagation; a nil loss means lossless.
func NewLink(sim *Simulator, delay DelayModel, loss LossModel) *Link {
	if delay == nil {
		delay = FixedDelay(0)
	}
	if loss == nil {
		loss = NoLoss{}
	}
	return &Link{sim: sim, rng: sim.Fork(), delay: delay, loss: loss}
}

// Stats returns a copy of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// SetLoss swaps the loss process (used by tests and scenario scripts to
// inject outages mid-run).
func (l *Link) SetLoss(m LossModel) {
	if m == nil {
		m = NoLoss{}
	}
	l.loss = m
}

// SetDelay swaps the propagation delay process (used by scenario scripts
// to degrade or repair a path mid-run). In-flight packets keep the arrival
// times they were assigned at send.
func (l *Link) SetDelay(m DelayModel) {
	if m == nil {
		m = FixedDelay(0)
	}
	l.delay = m
}

// Delay returns the link's current propagation delay model — used to seed
// latency estimates from explicitly constructed links.
func (l *Link) Delay() DelayModel { return l.delay }

// Send offers a packet of size bytes to the link. If the packet survives
// loss and queueing, deliver runs at its arrival time. Send reports whether
// the packet was accepted (false = dropped); the result is for accounting
// only — callers must not branch protocol behaviour on it, since a real
// sender cannot observe drops.
func (l *Link) Send(size int, deliver func(arrived core.Time)) bool {
	now := l.sim.Now()
	l.stats.Sent++
	if l.loss.Lose(now, l.rng) {
		l.stats.Lost++
		return false
	}
	depart := now
	if l.Rate > 0 {
		if l.busyUntil > depart {
			depart = l.busyUntil
		}
		if l.MaxQueue > 0 && depart-now > l.MaxQueue {
			l.stats.TailDrop++
			return false
		}
		tx := core.Time(float64(size) / float64(l.Rate) * 1e9)
		depart += tx
		l.busyUntil = depart
	}
	arrive := depart + l.delay.Delay(now, l.rng)
	l.stats.Delivered++
	l.stats.Bytes += uint64(size)
	l.sim.At(arrive, func() { deliver(arrive) })
	return true
}
