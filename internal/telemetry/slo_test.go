package telemetry

import (
	"testing"
	"time"
)

func TestSLOConfigDefaults(t *testing.T) {
	if (SLOConfig{}).Enabled() {
		t.Fatal("zero config reads enabled")
	}
	c := SLOConfig{Objective: 0.99}.WithDefaults()
	if !c.Enabled() {
		t.Fatal("objective 0.99 reads disabled")
	}
	if c.FastWindow != time.Second || c.SlowWindow != 5*time.Second {
		t.Fatalf("window defaults = %v / %v", c.FastWindow, c.SlowWindow)
	}
	if c.AtRiskBurn != 2 || c.ViolatedBurn != 4 || c.MinSamples != 20 {
		t.Fatalf("threshold defaults = %v / %v / %d", c.AtRiskBurn, c.ViolatedBurn, c.MinSamples)
	}
	if c.ClearHold != c.FastWindow {
		t.Fatalf("ClearHold default = %v, want FastWindow", c.ClearHold)
	}
	// SlowWindow may never undercut FastWindow.
	c2 := SLOConfig{Objective: 0.9, FastWindow: 2 * time.Second, SlowWindow: time.Second}.WithDefaults()
	if c2.SlowWindow != c2.FastWindow {
		t.Fatalf("slow window %v < fast %v survived defaults", c2.SlowWindow, c2.FastWindow)
	}
}

// sloTestConfig: error budget 0.5, so burn = 2×miss-fraction. All-miss
// burn 2.0 trips Violated (≥1.8); 70%-miss burn 1.4 trips AtRisk
// (≥1.2); 25%-miss burn 0.5 reads Met.
func sloTestConfig() SLOConfig {
	return SLOConfig{
		Objective:    0.5,
		FastWindow:   800 * time.Millisecond,
		SlowWindow:   800 * time.Millisecond,
		AtRiskBurn:   1.2,
		ViolatedBurn: 1.8,
		MinSamples:   4,
		ClearHold:    400 * time.Millisecond,
	}.WithDefaults()
}

func TestSLOTrackerDegradeImmediately(t *testing.T) {
	tr := NewSLOTracker(sloTestConfig())
	if tr.State() != SLOMet {
		t.Fatalf("initial state = %v", tr.State())
	}
	for i := 0; i < 10; i++ {
		tr.Observe(100*time.Millisecond, false)
	}
	trans, ok := tr.Eval(100 * time.Millisecond)
	if !ok || trans.From != SLOMet || trans.To != SLOViolated {
		t.Fatalf("eval = %+v, %v; want Met→Violated", trans, ok)
	}
	if tr.State() != SLOViolated {
		t.Fatalf("state = %v, want violated", tr.State())
	}
	if trans.BurnFast < 1.9 || trans.BurnSlow < 1.9 {
		t.Fatalf("all-miss burns = %v/%v, want ~2.0", trans.BurnFast, trans.BurnSlow)
	}
	// A second eval at the same state is not a transition.
	if _, ok := tr.Eval(150 * time.Millisecond); ok {
		t.Fatal("repeat eval produced a transition")
	}
}

func TestSLOTrackerClearHold(t *testing.T) {
	tr := NewSLOTracker(sloTestConfig())
	for i := 0; i < 10; i++ {
		tr.Observe(100*time.Millisecond, false)
	}
	if _, ok := tr.Eval(100 * time.Millisecond); !ok {
		t.Fatal("never degraded")
	}
	// Flood with oks: target drops to Met, but the state must hold until
	// ClearHold elapses.
	for i := 0; i < 40; i++ {
		tr.Observe(200*time.Millisecond, true)
	}
	if _, ok := tr.Eval(200 * time.Millisecond); ok {
		t.Fatal("recovered instantly — ClearHold ignored")
	}
	if tr.State() != SLOViolated {
		t.Fatalf("state = %v before hold elapsed", tr.State())
	}
	if _, ok := tr.Eval(500 * time.Millisecond); ok {
		t.Fatal("recovered 100ms early")
	}
	trans, ok := tr.Eval(600 * time.Millisecond)
	if !ok || trans.From != SLOViolated || trans.To != SLOMet {
		t.Fatalf("eval after hold = %+v, %v; want Violated→Met", trans, ok)
	}
}

func TestSLOTrackerHoldRestartsWhenCandidateChanges(t *testing.T) {
	tr := NewSLOTracker(sloTestConfig())
	// t=100ms: 10 misses → Violated.
	for i := 0; i < 10; i++ {
		tr.Observe(100*time.Millisecond, false)
	}
	if _, ok := tr.Eval(100 * time.Millisecond); !ok {
		t.Fatal("never degraded")
	}
	// t=200ms: +4 oks → 10/14 miss, burn ~1.43 → candidate AtRisk; hold
	// clock starts.
	for i := 0; i < 4; i++ {
		tr.Observe(200*time.Millisecond, true)
	}
	if _, ok := tr.Eval(200 * time.Millisecond); ok {
		t.Fatal("stepped down without holding")
	}
	// t=300ms: +30 oks → 10/44 miss, burn ~0.45 → candidate changes to
	// Met; the hold clock must RESTART, not inherit AtRisk's 100ms.
	for i := 0; i < 30; i++ {
		tr.Observe(300*time.Millisecond, true)
	}
	if _, ok := tr.Eval(300 * time.Millisecond); ok {
		t.Fatal("stepped down on candidate change")
	}
	// 350ms after the AtRisk candidate appeared but only 250ms after Met
	// did: still held.
	if _, ok := tr.Eval(550 * time.Millisecond); ok {
		t.Fatal("hold clock did not restart on candidate change")
	}
	trans, ok := tr.Eval(700 * time.Millisecond)
	if !ok || trans.To != SLOMet {
		t.Fatalf("eval = %+v, %v; want recovery to Met", trans, ok)
	}
	if tr.State() != SLOMet {
		t.Fatalf("state = %v", tr.State())
	}
}

func TestSLOTrackerMinSamplesGuards(t *testing.T) {
	cfg := sloTestConfig()
	cfg.MinSamples = 20
	tr := NewSLOTracker(cfg)
	// 10 misses — every one a miss, but under MinSamples.
	for i := 0; i < 10; i++ {
		tr.Observe(100*time.Millisecond, false)
	}
	if fast, slow := tr.Burns(100 * time.Millisecond); fast != 0 || slow != 0 {
		t.Fatalf("burns under MinSamples = %v/%v, want 0/0", fast, slow)
	}
	if _, ok := tr.Eval(100 * time.Millisecond); ok || tr.State() != SLOMet {
		t.Fatalf("tripped under MinSamples (state %v)", tr.State())
	}
}

func TestSLOTrackerObserveMisses(t *testing.T) {
	tr := NewSLOTracker(sloTestConfig())
	// Synthetic blackhole misses alone must trip the tracker — there are
	// no deliveries to observe.
	tr.ObserveMisses(100*time.Millisecond, 10)
	tr.ObserveMisses(100*time.Millisecond, 0)  // no-op
	tr.ObserveMisses(100*time.Millisecond, -3) // no-op
	fastOK, fastMiss, _, slowMiss := tr.Windows(100 * time.Millisecond)
	if fastOK != 0 || fastMiss != 10 || slowMiss != 10 {
		t.Fatalf("windows = %d ok / %d miss (slow %d)", fastOK, fastMiss, slowMiss)
	}
	if trans, ok := tr.Eval(100 * time.Millisecond); !ok || trans.To != SLOViolated {
		t.Fatalf("blackhole eval = %+v, %v", trans, ok)
	}
}

func TestSLOWindowAgesOut(t *testing.T) {
	tr := NewSLOTracker(sloTestConfig())
	for i := 0; i < 10; i++ {
		tr.Observe(100*time.Millisecond, false)
	}
	// 900ms later the 800ms windows have fully rotated: the misses are
	// gone and burns read zero.
	if _, miss, _, _ := tr.Windows(time.Second); miss != 0 {
		t.Fatalf("fast window still holds %d misses after expiry", miss)
	}
	if fast, _ := tr.Burns(time.Second); fast != 0 {
		t.Fatalf("aged-out burn = %v", fast)
	}
}

func TestSLOStateString(t *testing.T) {
	for s, want := range map[SLOState]string{
		SLOMet: "met", SLOAtRisk: "at-risk", SLOViolated: "violated", SLOState(9): "slostate(9)",
	} {
		if got := s.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestSLOSnapshotAccessors(t *testing.T) {
	s := SLOSnapshot{
		Flows:   []SLOEntry{{Flow: 3, State: SLOAtRisk}},
		Classes: []SLOEntry{{Class: 2, State: SLOMet}},
		Tenants: []SLOEntry{{Tenant: 7, State: SLOViolated}},
	}
	if e, ok := s.Flow(3); !ok || e.State != SLOAtRisk {
		t.Fatalf("Flow(3) = %+v, %v", e, ok)
	}
	if _, ok := s.Flow(4); ok {
		t.Fatal("Flow(4) found")
	}
	if e, ok := s.Class(2); !ok || e.State != SLOMet {
		t.Fatalf("Class(2) = %+v, %v", e, ok)
	}
	if e, ok := s.Tenant(7); !ok || e.State != SLOViolated {
		t.Fatalf("Tenant(7) = %+v, %v", e, ok)
	}
	if w := s.Worst(); w != SLOViolated {
		t.Fatalf("Worst = %v", w)
	}
	if w := (&SLOSnapshot{}).Worst(); w != SLOMet {
		t.Fatalf("empty Worst = %v", w)
	}
}

// BenchmarkSLOUpdate measures the per-delivery SLO path: one Observe
// into both windows plus a periodic Eval. Steady state must not
// allocate — it runs on the simulator goroutine for every delivery of
// every budgeted flow.
func BenchmarkSLOUpdate(b *testing.B) {
	tr := NewSLOTracker(SLOConfig{Objective: 0.99}.WithDefaults())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := time.Duration(i) * 100 * time.Microsecond
		tr.Observe(at, i%10 != 0)
		if i%8 == 0 {
			tr.Eval(at)
		}
	}
}
