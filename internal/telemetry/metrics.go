// Package telemetry is the deployment-wide observability layer: an
// allocation-free metrics registry (counters, gauges, fixed-bucket
// histograms), a bounded control-loop event trace, one coherent
// JSON-serializable Snapshot aggregating every stat surface, and an HTTP
// exposition server (Prometheus text format, JSON snapshot, pprof).
//
// The package is deliberately engine-agnostic: the hosting runtime
// (package jqos) builds Snapshots from its own stat surfaces and records
// Events at its control-loop choke points; telemetry owns only the
// concurrency-safe primitives and the wire formats. All timestamps are
// SIMULATED time (core.Time from the event simulator) — never wall
// clock — so snapshots and traces are bit-stable across same-seed runs.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Add/Inc are lock-free and
// allocation-free; Load is safe concurrently with writers.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a metric that can move both ways. Set/Add are lock-free and
// allocation-free; Load is safe concurrently with writers.
type Gauge struct{ v atomic.Int64 }

// Set overwrites the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: bounds are the ascending bucket
// upper limits, with an implicit +Inf overflow bucket at the end. Observe
// is lock-free and allocation-free (the hot-path requirement); Snapshot
// is safe concurrently with observers.
type Histogram struct {
	name   string
	unit   string
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram creates a histogram named name (a Prometheus-compatible
// metric name) over the given ascending bucket upper bounds. unit is
// documentation ("ms", "bytes", "ratio"); it rides the snapshot.
func NewHistogram(name, unit string, bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must ascend")
		}
	}
	return &Histogram{
		name:   name,
		unit:   unit,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Name returns the histogram's metric name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value. Allocation-free: a linear scan over the
// (small, fixed) bound set plus three atomic ops.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is one histogram's point-in-time state. Counts has
// len(Bounds)+1 entries; the last is the +Inf overflow bucket.
type HistogramSnapshot struct {
	Name   string    `json:"name"`
	Unit   string    `json:"unit,omitempty"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram's current state. Concurrent Observes may
// straddle the copy (the per-bucket counts are each atomic; the total is
// re-derived from them so Counts always sums to Count).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Name:   h.name,
		Unit:   h.unit,
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts by
// attributing each bucket's mass to its upper bound (the conservative
// Prometheus-style read). The overflow bucket reports the highest finite
// bound. Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Bounds[len(s.Bounds)-1]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// CounterSnapshot / GaugeSnapshot are named point-in-time values.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnapshot is one gauge's point-in-time value.
type GaugeSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Registry is a named metric registry. Get-or-create accessors hand out
// stable pointers — callers fetch their metric once at setup and write to
// it lock-free thereafter; the registry lock guards only creation and
// collection. Applications can register their own metrics alongside the
// runtime's (Deployment.MetricsRegistry) and they ride the same snapshot
// and exposition surface.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given unit
// and bounds on first use (later calls ignore both and return the
// existing instance).
func (r *Registry) Histogram(name, unit string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(name, unit, bounds...)
		r.hists[name] = h
	}
	return h
}

// Collect snapshots every registered metric, each family sorted by name
// for deterministic output.
func (r *Registry) Collect() (counters []CounterSnapshot, gauges []GaugeSnapshot, hists []HistogramSnapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		counters = append(counters, CounterSnapshot{Name: name, Value: c.Load()})
	}
	for name, g := range r.gauges {
		gauges = append(gauges, GaugeSnapshot{Name: name, Value: g.Load()})
	}
	for _, h := range r.hists {
		hists = append(hists, h.Snapshot())
	}
	sort.Slice(counters, func(i, j int) bool { return counters[i].Name < counters[j].Name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].Name < gauges[j].Name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].Name < hists[j].Name })
	return counters, gauges, hists
}
