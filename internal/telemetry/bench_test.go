package telemetry

import "testing"

// BenchmarkTraceRecord is the trace plane's hot-path guarantee: recording
// one control-loop event must not allocate (the ring preallocates and
// Event is a fixed-size value). Gated at 0 allocs/op in
// BENCH_BASELINE.json.
func BenchmarkTraceRecord(b *testing.B) {
	r := NewRing(4096)
	e := Event{Kind: KindEgressDrop, Flow: 7, LinkA: 1, LinkB: 2, Class: 3, V1: 1200}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(e)
	}
}

// BenchmarkHistogramObserve measures the fixed-bucket histogram's
// observe path (atomic adds + a CAS float sum; allocation-free).
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram("bench_latency_ms", "ms", 5, 10, 20, 40, 80, 160, 320)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 400))
	}
}
