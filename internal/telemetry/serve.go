package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Source is what the exposition server reads: the most recently
// PUBLISHED snapshot (never built on demand — snapshot building walks
// simulator-owned state and must stay on the simulator goroutine) and
// the trace ring, whose own lock makes tailing safe from any goroutine.
// *jqos.Deployment implements it.
type Source interface {
	// LatestSnapshot returns the newest published snapshot, or nil when
	// none has been published yet.
	LatestSnapshot() *Snapshot
	// TraceSince returns up to max buffered trace events with Seq > seq,
	// oldest first (max ≤ 0 means all).
	TraceSince(seq uint64, max int) []Event
}

// Server is a running exposition endpoint (see Serve).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP exposition server on addr (e.g. "127.0.0.1:0")
// serving:
//
//	/metrics   Prometheus text format of the latest published snapshot
//	/snapshot  the same snapshot as indented JSON
//	/slo       the snapshot's SLO section (states, burn rates) as JSON
//	/trace     the buffered control-loop trace as JSON
//	           (?since=SEQ to tail, ?max=N to bound)
//	/debug/pprof/...  the standard net/http/pprof handlers
//
// The server reads only published state, so it is safe to run while the
// simulation advances on its own goroutine. Close it with Server.Close.
func Serve(addr string, src Source) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s := src.LatestSnapshot()
		if s == nil {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			fmt.Fprintln(w, "# no snapshot published yet")
			fmt.Fprintln(w, "jqos_snapshot_published 0")
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = WriteMetrics(w, s)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		s := src.LatestSnapshot()
		if s == nil {
			http.Error(w, `{"error":"no snapshot published yet"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s)
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		s := src.LatestSnapshot()
		if s == nil {
			http.Error(w, `{"error":"no snapshot published yet"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.SLO)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		var since uint64
		var max int
		if v := r.URL.Query().Get("since"); v != "" {
			since, _ = strconv.ParseUint(v, 10, 64)
		}
		if v := r.URL.Query().Get("max"); v != "" {
			max, _ = strconv.Atoi(v)
		}
		events := src.TraceSince(since, max)
		if events == nil {
			events = []Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(events)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address (resolves ":0" picks).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
