package telemetry

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"jqos/internal/core"
)

func pid(flow, seq int) core.PacketID {
	return core.PacketID{Flow: core.FlowID(flow), Seq: core.Seq(seq)}
}

// TestSpanLifecycle walks one traced packet through every choke point
// and checks the invariant the whole attribution surface rests on: the
// components of a finished record sum exactly to its Total, with
// SpanRelay absorbing the unmeasured remainder.
func TestSpanLifecycle(t *testing.T) {
	c := NewSpanCollector()
	id := pid(1, 1)

	c.Begin(id, 10*time.Millisecond)
	c.NoteWait(id, SpanAdmission, 2*time.Millisecond)
	c.NoteWait(id, SpanPacer, 3*time.Millisecond)
	// Host → DC leg.
	c.NoteTx(id, 15*time.Millisecond)
	c.NoteRx(id, 20*time.Millisecond) // 5ms propagation
	// DC egress queue, then DC → DC leg.
	c.NoteQueue(id, 1, 2, 3, 4*time.Millisecond)
	c.NoteTx(id, 24*time.Millisecond)
	c.NoteRx(id, 30*time.Millisecond) // 6ms propagation
	// Final DC → host leg stays open: Finish turns it into the tail.
	c.NoteTx(id, 31*time.Millisecond)

	rec, ok := c.Finish(id, 40*time.Millisecond, 1*time.Millisecond, 25*time.Millisecond, 3)
	if !ok {
		t.Fatal("finish failed")
	}
	if rec.Total != 30*time.Millisecond {
		t.Fatalf("total = %v, want 30ms", rec.Total)
	}
	if got := rec.Comp[SpanAdmission]; got != 2*time.Millisecond {
		t.Fatalf("admission = %v", got)
	}
	if got := rec.Comp[SpanPacer]; got != 3*time.Millisecond {
		t.Fatalf("pacer = %v", got)
	}
	if got := rec.Comp[SpanQueue]; got != 4*time.Millisecond {
		t.Fatalf("queue = %v", got)
	}
	// 5 + 6 measured, plus the 9ms open tail minus 1ms recovery = 8ms.
	if got := rec.Comp[SpanPropagation]; got != 19*time.Millisecond {
		t.Fatalf("propagation = %v, want 19ms", got)
	}
	if got := rec.Comp[SpanRecovery]; got != 1*time.Millisecond {
		t.Fatalf("recovery = %v", got)
	}
	var sum time.Duration
	for _, d := range rec.Comp {
		sum += d
	}
	if sum != rec.Total {
		t.Fatalf("components sum to %v != total %v (%+v)", sum, rec.Total, rec.Comp)
	}
	if !rec.Late() || rec.Excess() != 5*time.Millisecond {
		t.Fatalf("late = %v excess = %v (budget 25ms, total 30ms)", rec.Late(), rec.Excess())
	}
	if rec.NQueues != 1 || rec.Queues[0] != (QueueSpan{From: 1, To: 2, Class: 3, Wait: 4 * time.Millisecond}) {
		t.Fatalf("queues = %+v", rec.Queues[:rec.NQueues])
	}
	if c.Pending() != 0 || c.Finished() != 1 {
		t.Fatalf("pending %d finished %d", c.Pending(), c.Finished())
	}

	// The finish fed the aggregates.
	snap := c.Snapshot()
	fp, ok := snap.Flow(1)
	if !ok || fp.Profile.Samples != 1 || fp.Profile.Late != 1 {
		t.Fatalf("flow profile = %+v, %v", fp, ok)
	}
	if fp.Profile.LateExcessNs != int64(5*time.Millisecond) {
		t.Fatalf("late excess = %d", fp.Profile.LateExcessNs)
	}
	qs, ok := snap.Queue(1, 2, 3)
	if !ok || qs.Spend.Samples != 1 || qs.Spend.WaitNs != int64(4*time.Millisecond) {
		t.Fatalf("queue spend = %+v, %v", qs, ok)
	}
	// A second finish of the same id is a no-op.
	if _, ok := c.Finish(id, 50*time.Millisecond, 0, 0, 3); ok {
		t.Fatal("double finish succeeded")
	}
}

func TestSpanDropAbandonsTrace(t *testing.T) {
	c := NewSpanCollector()
	c.Begin(pid(1, 1), 0)
	c.Drop(pid(1, 1))
	if c.Pending() != 0 || c.Dropped() != 1 {
		t.Fatalf("pending %d dropped %d", c.Pending(), c.Dropped())
	}
	c.Drop(pid(1, 1)) // unknown id: no-op
	if c.Dropped() != 1 {
		t.Fatalf("double drop counted: %d", c.Dropped())
	}
	if _, ok := c.Finish(pid(1, 1), time.Second, 0, 0, 3); ok {
		t.Fatal("finished a dropped trace")
	}
}

func TestSpanEvictionUnderPressure(t *testing.T) {
	c := NewSpanCollector()
	for i := 0; i < spanTableCap+3; i++ {
		c.Begin(pid(1, i), time.Duration(i))
	}
	if c.Pending() != spanTableCap {
		t.Fatalf("pending = %d, want %d", c.Pending(), spanTableCap)
	}
	if c.Evicted() != 3 {
		t.Fatalf("evicted = %d, want 3", c.Evicted())
	}
	// The oldest three were evicted; the fourth is still live.
	if _, ok := c.Finish(pid(1, 2), time.Second, 0, 0, 3); ok {
		t.Fatal("evicted trace finished")
	}
	if _, ok := c.Finish(pid(1, 3), time.Second, 0, 0, 3); !ok {
		t.Fatal("live trace missing after eviction churn")
	}
}

func TestSpanQueueOverflowFolds(t *testing.T) {
	c := NewSpanCollector()
	id := pid(2, 1)
	c.Begin(id, 0)
	for i := 0; i < MaxHopQueues+2; i++ {
		c.NoteQueue(id, core.NodeID(i), core.NodeID(i+1), 3, time.Millisecond)
	}
	rec, ok := c.Finish(id, 100*time.Millisecond, 0, 0, 3)
	if !ok {
		t.Fatal("finish failed")
	}
	if rec.NQueues != MaxHopQueues {
		t.Fatalf("nqueues = %d", rec.NQueues)
	}
	want := time.Duration(MaxHopQueues+2) * time.Millisecond
	if rec.Comp[SpanQueue] != want {
		t.Fatalf("queue sum = %v, want %v", rec.Comp[SpanQueue], want)
	}
	// Overflow folded into the last slot.
	if rec.Queues[MaxHopQueues-1].Wait != 3*time.Millisecond {
		t.Fatalf("last slot = %v, want 3ms", rec.Queues[MaxHopQueues-1].Wait)
	}
}

func TestSpanReservoirWraps(t *testing.T) {
	c := NewSpanCollector()
	for i := 0; i < lateReservoirCap+5; i++ {
		c.NoteLate(HopRecord{Flow: 1, Seq: core.Seq(i)})
	}
	if c.LateSeen() != lateReservoirCap+5 {
		t.Fatalf("late seen = %d", c.LateSeen())
	}
	recs := c.Reservoir(nil)
	if len(recs) != lateReservoirCap {
		t.Fatalf("reservoir len = %d", len(recs))
	}
	// Oldest first, holding the most recent lateReservoirCap records.
	if recs[0].Seq != 5 || recs[len(recs)-1].Seq != lateReservoirCap+4 {
		t.Fatalf("reservoir order: first %d last %d", recs[0].Seq, recs[len(recs)-1].Seq)
	}
}

func TestSpanForgetFlow(t *testing.T) {
	c := NewSpanCollector()
	for f := 1; f <= 2; f++ {
		id := pid(f, 1)
		c.Begin(id, 0)
		if _, ok := c.Finish(id, time.Millisecond, 0, 0, 3); !ok {
			t.Fatal("finish failed")
		}
	}
	c.ForgetFlow(1)
	snap := c.Snapshot()
	if _, ok := snap.Flow(1); ok {
		t.Fatal("forgotten flow still in snapshot")
	}
	if _, ok := snap.Flow(2); !ok {
		t.Fatal("unrelated flow forgotten")
	}
	// Lifetime counters survive the forget.
	if snap.Finished != 2 {
		t.Fatalf("finished = %d", snap.Finished)
	}
}

// TestSpanSnapshotDeterministic inserts aggregates in scrambled orders
// and requires identical, key-sorted snapshots — map iteration must
// never leak into the exposition surface.
func TestSpanSnapshotDeterministic(t *testing.T) {
	build := func(order []int) AttributionSnapshot {
		c := NewSpanCollector()
		for _, f := range order {
			id := pid(f, 1)
			c.Begin(id, 0)
			c.NoteQueue(id, core.NodeID(f), core.NodeID(f+1), 3, time.Millisecond)
			if _, ok := c.Finish(id, 10*time.Millisecond, 0, 0, 3); !ok {
				t.Fatal("finish failed")
			}
		}
		return c.Snapshot()
	}
	a := build([]int{5, 2, 9, 1})
	b := build([]int{9, 1, 5, 2})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshots differ by insertion order:\n%+v\nvs\n%+v", a, b)
	}
	for i := 1; i < len(a.Flows); i++ {
		if a.Flows[i].Flow <= a.Flows[i-1].Flow {
			t.Fatalf("flows not sorted: %+v", a.Flows)
		}
	}
	for i := 1; i < len(a.Queues); i++ {
		if a.Queues[i].Key.From <= a.Queues[i-1].Key.From {
			t.Fatalf("queues not sorted: %+v", a.Queues)
		}
	}
}

func TestSpanComponentStrings(t *testing.T) {
	for c := 0; c < NumSpanComponents; c++ {
		if s := SpanComponent(c).String(); s == "" || s == fmt.Sprintf("component(%d)", c) {
			t.Fatalf("component %d has no String arm: %q", c, s)
		}
	}
}

func TestSpendProfileShares(t *testing.T) {
	var p SpendProfile
	rec := HopRecord{Budget: time.Millisecond, Total: 10 * time.Millisecond, Sampled: true}
	rec.Comp[SpanQueue] = 8 * time.Millisecond
	rec.Comp[SpanPropagation] = 2 * time.Millisecond
	p.observe(&rec)
	if got := p.Share(SpanQueue); got != 0.8 {
		t.Fatalf("queue share = %v", got)
	}
	if got := p.LateShare(SpanQueue); got != 0.8 {
		t.Fatalf("late queue share = %v", got)
	}
	if got := (&SpendProfile{}).Share(SpanQueue); got != 0 {
		t.Fatalf("empty share = %v", got)
	}
}

// BenchmarkHopRecord measures one full trace lifecycle — Begin, the
// choke-point notes, Finish, and the late-reservoir write — the cost a
// sampled packet adds end to end. Steady state must not allocate.
func BenchmarkHopRecord(b *testing.B) {
	c := NewSpanCollector()
	id := core.PacketID{Flow: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id.Seq = core.Seq(i)
		at := time.Duration(i) * 10 * time.Microsecond
		c.Begin(id, at)
		c.NoteWait(id, SpanAdmission, 100*time.Microsecond)
		c.NoteTx(id, at+200*time.Microsecond)
		c.NoteRx(id, at+400*time.Microsecond)
		c.NoteQueue(id, 1, 2, 3, 50*time.Microsecond)
		c.NoteTx(id, at+500*time.Microsecond)
		rec, ok := c.Finish(id, at+time.Millisecond, 0, 500*time.Microsecond, 3)
		if !ok {
			b.Fatal("finish failed")
		}
		if rec.Late() {
			c.NoteLate(rec)
		}
	}
}
