package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram("lat_ms", "ms", 10, 20, 40)
	for _, v := range []float64{1, 9, 10, 11, 25, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	// Buckets are ≤10, ≤20, ≤40, +Inf.
	want := []uint64{3, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Sum != 156 {
		t.Fatalf("sum = %v, want 156", s.Sum)
	}
	if q := s.Quantile(0.5); q != 10 {
		t.Fatalf("p50 = %v, want 10", q)
	}
	// p95 lands in the overflow bucket, which reports the top finite bound.
	if q := s.Quantile(0.95); q != 40 {
		t.Fatalf("p95 = %v, want 40", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"no-bounds":         func() { NewHistogram("x", "") },
		"unordered-bounds":  func() { NewHistogram("x", "", 10, 10) },
		"descending-bounds": func() { NewHistogram("x", "", 20, 10) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestRegistryCollect(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Inc()
	if r.Counter("a_total") != r.Counter("a_total") {
		t.Fatal("counter pointer not stable")
	}
	r.Gauge("depth").Set(9)
	h := r.Histogram("lat", "ms", 10, 20)
	h.Observe(5)
	if r.Histogram("lat", "ms", 99) != h {
		t.Fatal("histogram not deduplicated by name")
	}

	counters, gauges, hists := r.Collect()
	if len(counters) != 2 || counters[0].Name != "a_total" || counters[1].Name != "b_total" {
		t.Fatalf("counters not name-sorted: %+v", counters)
	}
	if counters[0].Value != 1 || counters[1].Value != 2 {
		t.Fatalf("counter values wrong: %+v", counters)
	}
	if len(gauges) != 1 || gauges[0].Value != 9 {
		t.Fatalf("gauges wrong: %+v", gauges)
	}
	if len(hists) != 1 || hists[0].Count != 1 {
		t.Fatalf("hists wrong: %+v", hists)
	}
}

func TestRingRecordAndSince(t *testing.T) {
	r := NewRing(4)
	var seqs []uint64
	for i := 0; i < 3; i++ {
		seqs = append(seqs, r.Record(Event{Kind: KindReroute, Flow: 1, V1: int64(i)}))
	}
	if seqs[0] != 1 || seqs[2] != 3 {
		t.Fatalf("seqs = %v, want 1..3", seqs)
	}
	all := r.Events(nil)
	if len(all) != 3 || all[0].V1 != 0 || all[2].V1 != 2 {
		t.Fatalf("events = %+v", all)
	}
	// Reading does not consume.
	if again := r.Events(nil); len(again) != 3 {
		t.Fatalf("second read = %d events, want 3", len(again))
	}
	since := r.Since(nil, seqs[1], 0)
	if len(since) != 1 || since[0].Seq != seqs[2] {
		t.Fatalf("since = %+v", since)
	}
	if capped := r.Since(nil, 0, 2); len(capped) != 2 {
		t.Fatalf("max=2 returned %d events", len(capped))
	}
}

func TestRingOverwrite(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Record(Event{Kind: KindEgressDrop, V1: int64(i)})
	}
	st := r.Stats()
	if st.Recorded != 5 || st.Dropped != 2 || st.Buffered != 3 || st.Capacity != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ByKind[KindEgressDrop] != 5 {
		t.Fatalf("ByKind = %v", st.ByKind)
	}
	if got := r.CountOf(KindEgressDrop); got != 5 {
		t.Fatalf("CountOf = %d, want 5", got)
	}
	// The oldest two events were overwritten; V1 2..4 remain in order.
	ev := r.Events(nil)
	if len(ev) != 3 || ev[0].V1 != 2 || ev[2].V1 != 4 {
		t.Fatalf("events after wrap = %+v", ev)
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq != ev[i-1].Seq+1 {
			t.Fatalf("seq gap after wrap: %+v", ev)
		}
	}
}

func TestRingConcurrentRecord(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(Event{Kind: KindPacerCut})
				r.Since(nil, 0, 8)
			}
		}()
	}
	wg.Wait()
	if st := r.Stats(); st.Recorded != 4000 {
		t.Fatalf("recorded = %d, want 4000", st.Recorded)
	}
}

func TestEventDescribeCoversAllKinds(t *testing.T) {
	for k := 0; k < NumKinds; k++ {
		e := Event{Kind: Kind(k), Flow: 3, At: time.Second}
		if d := e.Describe(); d == "" || strings.Contains(d, "kind(") {
			t.Fatalf("kind %v has no Describe arm: %q", Kind(k), d)
		}
		if Kind(k).String() == "" || strings.HasPrefix(Kind(k).String(), "kind(") {
			t.Fatalf("kind %d has no String arm", k)
		}
	}
}

// testSnapshot builds a small but fully populated snapshot.
func testSnapshot() *Snapshot {
	reg := NewRegistry()
	reg.Counter("app_ticks_total").Add(7)
	reg.Gauge("app_depth").Set(-2)
	h := reg.Histogram("app_lat_ms", "ms", 10, 20)
	h.Observe(5)
	h.Observe(50)
	counters, gauges, hists := reg.Collect()

	s := &Snapshot{
		At: 3 * time.Second,
		Links: []LinkSnapshot{{
			A: 1, B: 2, Capacity: 1_000_000, Utilization: 0.5,
			AB: DirSnapshot{Bytes: 1000, Packets: 2, ClassBytes: [NumClasses]uint64{0, 0, 400, 600}},
		}},
		Queues: []QueueSnapshot{{From: 1, To: 2, Rounds: 9}},
		Flows: []FlowSnapshot{{
			ID: 1, Service: 3, ServiceName: "forwarding", Sent: 10, Delivered: 8, OnTime: 8,
		}},
		Totals:     Totals{Flows: 1, Sent: 10, Delivered: 8, OnTime: 8, EgressBytes: 1000},
		Counters:   counters,
		Gauges:     gauges,
		Histograms: hists,
	}
	s.Queues[0].PerClass[3] = ClassQueueSnapshot{EnqueuedPackets: 5, DequeuedPackets: 4, DroppedPackets: 1}
	s.Trace.Recorded = 4
	s.Trace.ByKind[KindReroute] = 4

	// Continuous SLO engine and hop-level attribution surfaces.
	s.SLO = SLOSnapshot{
		Enabled: true, Objective: 0.95,
		FastWin: time.Second, SlowWin: 5 * time.Second,
		Degrades: 2, Recovers: 1,
		Flows:   []SLOEntry{{Flow: 1, Class: 3, State: SLOAtRisk, StateName: "at-risk", BurnFast: 2.5, BurnSlow: 1.0}},
		Classes: []SLOEntry{{Class: 3, State: SLOMet, StateName: "met"}},
		Tenants: []SLOEntry{{Tenant: 4, Class: 3, State: SLOViolated, StateName: "violated", BurnFast: 6, BurnSlow: 5}},
	}
	var prof SpendProfile
	lateRec := HopRecord{
		Flow: 1, Seq: 9, SentAt: time.Second, DeliveredAt: 2 * time.Second,
		Total: time.Second, Budget: 100 * time.Millisecond, Via: 3, Sampled: true,
	}
	lateRec.Comp[SpanQueue] = 900 * time.Millisecond
	lateRec.Comp[SpanPropagation] = 100 * time.Millisecond
	prof.observe(&lateRec)
	s.Attribution = AttributionSnapshot{
		Enabled: true, Traced: 3, Finished: 1, Dropped: 1, Pending: 1, LateDeliveries: 1,
		Flows: []FlowSpendSnapshot{{Flow: 1, Profile: prof}},
		Queues: []QueueSpendSnapshot{{
			Key:   QueueKey{From: 1, To: 2, Class: 3},
			Spend: QueueSpend{Samples: 1, Late: 1, WaitNs: int64(900 * time.Millisecond), LateWaitNs: int64(900 * time.Millisecond)},
		}},
		Reservoir: []HopRecord{lateRec},
	}
	return s
}

func TestWriteMetricsParses(t *testing.T) {
	var b strings.Builder
	if err := WriteMetrics(&b, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	n, err := ParseMetrics(strings.NewReader(out))
	if err != nil {
		t.Fatalf("own output does not parse: %v\n%s", err, out)
	}
	if n < 20 {
		t.Fatalf("only %d samples", n)
	}
	for _, want := range []string{
		"jqos_flows 1\n",
		`jqos_link_bytes_total{from="1",to="2",class="forwarding"} 600`,
		`jqos_queue_dropped_packets_total{from="1",to="2",class="forwarding"} 1`,
		`jqos_trace_events_total{kind="reroute"} 4`,
		"app_ticks_total 7\n",
		`app_lat_ms_bucket{le="+Inf"} 2`,
		"app_lat_ms_count 2\n",
		"jqos_slo_objective 0.95\n",
		"jqos_slo_degrades_total 2\n",
		`jqos_slo_state{flow="1"} 1`,
		`jqos_slo_state{tenant="4"} 2`,
		`jqos_slo_burn_rate{flow="1",window="fast"} 2.5`,
		"jqos_attribution_traced_total 3\n",
		"jqos_attribution_late_deliveries_total 1\n",
		`jqos_attribution_spend_ns_total{flow="1",component="queue"} 900000000`,
		`jqos_attribution_queue_wait_ns_total{from="1",to="2",class="forwarding"} 900000000`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Deterministic: a second render is byte-identical.
	var b2 strings.Builder
	if err := WriteMetrics(&b2, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Fatal("WriteMetrics output is not deterministic")
	}
}

func TestParseMetricsRejectsGarbage(t *testing.T) {
	for name, in := range map[string]string{
		"empty":        "",
		"comment-only": "# HELP x y\n",
		"bad-name":     "9bad 1\n",
		"no-value":     "jqos_flows\n",
		"bad-value":    "jqos_flows x\n",
		"open-brace":   "jqos_flows{a=\"1\" 1\n",
		"unquoted":     "jqos_flows{a=1} 1\n",
	} {
		if _, err := ParseMetrics(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	s := testSnapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("snapshot does not round-trip through JSON:\n%s\nvs\n%s", data, data2)
	}
}

func TestSummaryMentionsEverySurface(t *testing.T) {
	sum := testSnapshot().Summary()
	for _, want := range []string{"1 flows", "link", "queue", "flow 1", "routing:", "trace:", "slo:", "attribution:"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}

// fakeSource serves a fixed snapshot and ring.
type fakeSource struct {
	snap *Snapshot
	ring *Ring
}

func (f *fakeSource) LatestSnapshot() *Snapshot { return f.snap }
func (f *fakeSource) TraceSince(seq uint64, max int) []Event {
	return f.ring.Since(nil, seq, max)
}

func TestServeEndpoints(t *testing.T) {
	ring := NewRing(8)
	for i := 0; i < 3; i++ {
		ring.Record(Event{Kind: KindPacerCut, Flow: 1, V1: int64(i)})
	}
	src := &fakeSource{snap: testSnapshot(), ring: ring}
	srv, err := Serve("127.0.0.1:0", src)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	if n, err := ParseMetrics(strings.NewReader(string(get("/metrics")))); err != nil || n == 0 {
		t.Fatalf("/metrics: %d samples, %v", n, err)
	}
	var snap Snapshot
	if err := json.Unmarshal(get("/snapshot"), &snap); err != nil {
		t.Fatalf("/snapshot: %v", err)
	}
	if snap.Totals.Flows != 1 {
		t.Fatalf("/snapshot totals = %+v", snap.Totals)
	}
	var events []Event
	if err := json.Unmarshal(get("/trace?since=1&max=1"), &events); err != nil {
		t.Fatalf("/trace: %v", err)
	}
	if len(events) != 1 || events[0].Seq != 2 {
		t.Fatalf("/trace?since=1&max=1 = %+v", events)
	}

	// The SLO section has its own endpoint.
	var slo SLOSnapshot
	if err := json.Unmarshal(get("/slo"), &slo); err != nil {
		t.Fatalf("/slo: %v", err)
	}
	if !slo.Enabled || slo.Degrades != 2 || len(slo.Flows) != 1 {
		t.Fatalf("/slo = %+v", slo)
	}

	// No snapshot published yet: /metrics degrades, /snapshot and /slo 503.
	empty := &fakeSource{ring: NewRing(1)}
	srv2, err := Serve("127.0.0.1:0", empty)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	for _, path := range []string{"/snapshot", "/slo"} {
		resp, err := http.Get(srv2.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s without publish = %s, want 503", path, resp.Status)
		}
	}
}

// TestServeTracePagination drives /trace?since&max through its edges:
// a cursor at the head, a cursor that aged out of the ring, max=0 (all),
// and a max larger than what is buffered.
func TestServeTracePagination(t *testing.T) {
	ring := NewRing(4)
	var head uint64
	for i := 0; i < 7; i++ { // seqs 1..7; ring keeps 4..7
		head = ring.Record(Event{Kind: KindReroute, V1: int64(i)})
	}
	src := &fakeSource{snap: testSnapshot(), ring: ring}
	srv, err := Serve("127.0.0.1:0", src)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	fetch := func(query string) []Event {
		t.Helper()
		resp, err := http.Get(srv.URL() + "/trace" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /trace%s: %s", query, resp.Status)
		}
		var events []Event
		if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
			t.Fatalf("/trace%s: %v", query, err)
		}
		return events
	}

	// Cursor at the newest event: empty JSON array, not null.
	if ev := fetch(fmt.Sprintf("?since=%d", head)); len(ev) != 0 {
		t.Fatalf("since=head returned %d events", len(ev))
	}
	// Cursor beyond the head behaves the same.
	if ev := fetch(fmt.Sprintf("?since=%d", head+100)); len(ev) != 0 {
		t.Fatalf("since>head returned %d events", len(ev))
	}
	// A cursor that aged out of the ring resumes from the oldest
	// buffered event (overwritten events are gone, not an error).
	ev := fetch("?since=1")
	if len(ev) != 4 || ev[0].Seq != 4 || ev[3].Seq != 7 {
		t.Fatalf("since=1 after overwrite = %+v", ev)
	}
	// max=0 means everything buffered; so does an oversized max.
	if ev := fetch("?max=0"); len(ev) != 4 {
		t.Fatalf("max=0 returned %d events", len(ev))
	}
	if ev := fetch("?max=100"); len(ev) != 4 {
		t.Fatalf("max=100 returned %d events", len(ev))
	}
	// max bounds a tail read; the page picks up where the cursor left off.
	page := fetch("?since=4&max=2")
	if len(page) != 2 || page[0].Seq != 5 || page[1].Seq != 6 {
		t.Fatalf("since=4&max=2 = %+v", page)
	}
	next := fetch(fmt.Sprintf("?since=%d&max=2", page[1].Seq))
	if len(next) != 1 || next[0].Seq != 7 {
		t.Fatalf("second page = %+v", next)
	}
}
