package telemetry

import (
	"fmt"
	"strings"
	"time"

	"jqos/internal/core"
)

// NumClasses is the number of service classes in per-class rollups —
// one per J-QoS service, indexed by core.Service.
const NumClasses = core.NumServices

// Snapshot is one coherent, JSON-serializable view of a whole deployment
// at a single instant of SIMULATED time: per-link load, per-queue
// scheduler state, per-flow delivery metrics, routing and feedback
// counters, aggregate totals, the registered metrics, and the trace
// ring's occupancy. It replaces polling LinkLoad / SchedStats /
// FeedbackStats / RoutingStats one call at a time.
//
// Snapshots are immutable once built: the builder publishes them behind
// an atomic pointer and the HTTP exposition layer only ever reads.
type Snapshot struct {
	// At is the simulated capture time.
	At time.Duration `json:"at"`
	// Links are the tracked inter-DC links in ascending (A, B) order.
	Links []LinkSnapshot `json:"links,omitempty"`
	// Queues are the instantiated egress schedulers in ascending
	// (From, To) order. Empty with scheduling disabled.
	Queues []QueueSnapshot `json:"queues,omitempty"`
	// Flows are the open flows in ascending ID order.
	Flows []FlowSnapshot `json:"flows,omitempty"`
	// Tenants are the registered tenants in ascending ID order (empty
	// when no tenant was ever registered). Per-flow rollups sum over the
	// tenant's member rows in Flows.
	Tenants []TenantSnapshot `json:"tenants,omitempty"`
	// Routing / Feedback mirror the control planes' counters.
	Routing  RoutingSnapshot  `json:"routing"`
	Feedback FeedbackSnapshot `json:"feedback"`
	// Totals are deployment-wide rollups across flows and links.
	Totals Totals `json:"totals"`
	// Counters / Gauges / Histograms are the metric registry's contents,
	// sorted by name.
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
	// SLO is the continuous SLO engine's view: per-flow, per-class, and
	// per-tenant burn rates and states. Enabled is false when no
	// SLOConfig was set.
	SLO SLOSnapshot `json:"slo"`
	// Attribution is the hop-level latency attribution surface: budget
	// spend profiles per flow and per (link, class) queue, plus the
	// late-delivery reservoir. Enabled is false when no open flow
	// samples traces.
	Attribution AttributionSnapshot `json:"attribution"`
	// Trace is the control-loop event ring's occupancy and per-kind
	// lifetime counts.
	Trace TraceStats `json:"trace"`
}

// Link returns the snapshot row for the inter-DC link a↔b (order
// agnostic). ok is false when the pair was not tracked at capture time —
// the migration target for callers polling Deployment.LinkLoad.
func (s *Snapshot) Link(a, b core.NodeID) (LinkSnapshot, bool) {
	if a > b {
		a, b = b, a
	}
	for i := range s.Links {
		if s.Links[i].A == a && s.Links[i].B == b {
			return s.Links[i], true
		}
	}
	return LinkSnapshot{}, false
}

// Queue returns the snapshot row for the directed egress scheduler
// from→to. ok is false when no scheduler was instantiated for that
// direction — the migration target for callers polling
// Deployment.SchedStats.
func (s *Snapshot) Queue(from, to core.NodeID) (QueueSnapshot, bool) {
	for i := range s.Queues {
		if s.Queues[i].From == from && s.Queues[i].To == to {
			return s.Queues[i], true
		}
	}
	return QueueSnapshot{}, false
}

// DirSnapshot is one link direction's load rollup.
type DirSnapshot struct {
	// Rate / Smoothed / Peak are windowed bytes-per-second readings.
	Rate     float64 `json:"rate"`
	Smoothed float64 `json:"smoothed"`
	Peak     float64 `json:"peak"`
	// Bytes / Packets are lifetime totals, with per-class breakdowns.
	// The class arrays are indexed by core.Service, and their sums equal
	// the direction totals (the rollup invariant tests assert it).
	Bytes        uint64              `json:"bytes"`
	Packets      uint64              `json:"packets"`
	ClassRate    [NumClasses]float64 `json:"class_rate"`
	ClassBytes   [NumClasses]uint64  `json:"class_bytes"`
	ClassPackets [NumClasses]uint64  `json:"class_packets"`
}

// LinkSnapshot is one tracked inter-DC link (A < B as normalized by the
// load registry; AB and BA are the A→B and B→A directions).
type LinkSnapshot struct {
	A           core.NodeID `json:"a"`
	B           core.NodeID `json:"b"`
	Capacity    int64       `json:"capacity"`
	Utilization float64     `json:"utilization"`
	AB          DirSnapshot `json:"ab"`
	BA          DirSnapshot `json:"ba"`
}

// ClassQueueSnapshot is one egress class queue's counters.
type ClassQueueSnapshot struct {
	EnqueuedBytes   uint64 `json:"enqueued_bytes"`
	EnqueuedPackets uint64 `json:"enqueued_packets"`
	DequeuedBytes   uint64 `json:"dequeued_bytes"`
	DequeuedPackets uint64 `json:"dequeued_packets"`
	DroppedBytes    uint64 `json:"dropped_bytes"`
	DroppedPackets  uint64 `json:"dropped_packets"`
	QueuedBytes     int64  `json:"queued_bytes"`
	QueuedPackets   int    `json:"queued_packets"`
	// State is the queue's congestion classification (0 clear, 1 warm,
	// 2 hot); StateChanges counts watermark transitions.
	State        uint8  `json:"state"`
	StateChanges uint64 `json:"state_changes"`
	// FlowQueues is the live per-flow sub-queue count (0 unless per-flow
	// queueing is configured); VictimDrops counts longest-queue victim
	// evictions (a subset of DroppedPackets).
	FlowQueues  int    `json:"flow_queues,omitempty"`
	VictimDrops uint64 `json:"victim_drops,omitempty"`
}

// QueueSnapshot is one directed inter-DC egress scheduler.
type QueueSnapshot struct {
	From          core.NodeID                    `json:"from"`
	To            core.NodeID                    `json:"to"`
	PerClass      [NumClasses]ClassQueueSnapshot `json:"per_class"`
	Rounds        uint64                         `json:"rounds"`
	QueuedBytes   int64                          `json:"queued_bytes"`
	QueuedPackets int                            `json:"queued_packets"`
}

// FlowSnapshot is one open flow's delivery and policing rollup.
type FlowSnapshot struct {
	ID core.FlowID `json:"id"`
	// Tenant is the owning tenant's ID (0 = untenanted).
	Tenant      core.TenantID `json:"tenant,omitempty"`
	Src         core.NodeID   `json:"src"`
	Dsts        []core.NodeID `json:"dsts"`
	Service     core.Service  `json:"service"`
	ServiceName string        `json:"service_name"`
	Budget      time.Duration `json:"budget"`
	Path        []core.NodeID `json:"path,omitempty"`

	Sent             uint64 `json:"sent"`
	SentBytes        uint64 `json:"sent_bytes"`
	Delivered        uint64 `json:"delivered"`
	Recovered        uint64 `json:"recovered"`
	OnTime           uint64 `json:"on_time"`
	AdmissionDropped uint64 `json:"admission_dropped"`
	AdmissionShaped  uint64 `json:"admission_shaped"`
	EgressDropped    uint64 `json:"egress_dropped"`
	PacedBytes       uint64 `json:"paced_bytes"`
	// ByService counts deliveries by the service that produced them.
	ByService [NumClasses]uint64 `json:"by_service"`
	// CostPerGB is the flow's live egress price under the default cost
	// model — its CURRENT service priced at its observed loss, the same
	// figure the cost-ceiling loops check. EstCostUSD prices the flow's
	// lifetime application volume at it (SentBytes / 1e9 × CostPerGB) —
	// what the tenant cost budget is enforced against.
	CostPerGB  float64 `json:"cost_per_gb,omitempty"`
	EstCostUSD float64 `json:"est_cost_usd,omitempty"`

	// AdmissionRate is the live bucket refill rate (0 without a
	// contract); Throttled reports an active pacer cut.
	AdmissionRate int64 `json:"admission_rate"`
	Throttled     bool  `json:"throttled"`
	// ServiceChanges counts adaptation transitions so far.
	ServiceChanges int `json:"service_changes"`

	// Delivery-latency summary in milliseconds (zero when nothing
	// delivered yet).
	LatencyMsMean float64 `json:"latency_ms_mean"`
	LatencyMsP50  float64 `json:"latency_ms_p50"`
	LatencyMsP95  float64 `json:"latency_ms_p95"`
}

// OnTimeFraction returns OnTime/Delivered. With nothing delivered it
// returns 0 when packets were sent (a blackholed flow is NOT meeting
// its budget) and 1 only when nothing was sent either (vacuous truth).
func (f FlowSnapshot) OnTimeFraction() float64 {
	if f.Delivered == 0 {
		if f.Sent > 0 {
			return 0
		}
		return 1
	}
	return float64(f.OnTime) / float64(f.Delivered)
}

// TenantSnapshot is one tenant's contract state and the rollup of its
// member flows. The per-flow sums (Sent … PacedBytes, EstCostUSD) are
// computed by summing the tenant's member rows from
// Snapshot.Flows in ascending flow-ID order, so an auditor holding the
// same snapshot reproduces them exactly; the remaining fields mirror
// the live tenant runtime (quota bucket, aggregate pacer, violation
// counters).
type TenantSnapshot struct {
	ID   core.TenantID `json:"id"`
	Name string        `json:"name,omitempty"`
	// Flows is the tenant's open member-flow count.
	Flows int `json:"flows"`

	// Member-flow rollups (sums over Snapshot.Flows rows with this
	// tenant ID; EstCostUSD sums the members' EstCostUSD in the same
	// ascending flow-ID order, so recomputation is bit-exact).
	Sent             uint64  `json:"sent"`
	SentBytes        uint64  `json:"sent_bytes"`
	Delivered        uint64  `json:"delivered"`
	OnTime           uint64  `json:"on_time"`
	AdmissionDropped uint64  `json:"admission_dropped"`
	EgressDropped    uint64  `json:"egress_dropped"`
	PacedBytes       uint64  `json:"paced_bytes"`
	EstCostUSD       float64 `json:"est_cost_usd"`

	// Aggregate admission quota: the contract rate (0 = unmetered) and
	// the copies it refused tenant-wide.
	QuotaRate         int64  `json:"quota_rate"`
	QuotaDropped      uint64 `json:"quota_dropped"`
	QuotaDroppedBytes uint64 `json:"quota_dropped_bytes"`

	// Aggregate pacer: the applied rate (== the contract when
	// unthrottled), whether any bottleneck is currently tracked, and the
	// lifetime cut/recovery counts — one cut per delivered signal, NOT
	// one per member flow.
	PacerRate       int64  `json:"pacer_rate,omitempty"`
	Throttled       bool   `json:"throttled"`
	HotLinks        int    `json:"hot_links,omitempty"`
	PacerCuts       uint64 `json:"pacer_cuts"`
	PacerRecoveries uint64 `json:"pacer_recoveries"`

	// Cost budget: the contract ceiling ($/GB, 0 = unbudgeted), the
	// observed volume-weighted aggregate price, and how many times the
	// budget tick forced a member downgrade.
	CostCeilingPerGB float64 `json:"cost_ceiling_per_gb,omitempty"`
	CostPerGB        float64 `json:"cost_per_gb,omitempty"`
	CostViolations   uint64  `json:"cost_violations"`
}

// OnTimeFraction returns OnTime/Delivered. With nothing delivered it
// returns 0 when member flows sent packets (a tenant whose traffic all
// vanished is NOT meeting budgets) and 1 only when nothing was sent.
func (t TenantSnapshot) OnTimeFraction() float64 {
	if t.Delivered == 0 {
		if t.Sent > 0 {
			return 0
		}
		return 1
	}
	return float64(t.OnTime) / float64(t.Delivered)
}

// RoutingSnapshot mirrors the routing controller's counters.
type RoutingSnapshot struct {
	Recomputes uint64 `json:"recomputes"`
	// IncrementalRecomputes counts recomputes served by the delta engine
	// (affected sources only); SourcesRecomputed sums the per-source
	// Dijkstra runs those performed — together they expose how much work
	// incremental SPF saved over full recomputation.
	IncrementalRecomputes uint64 `json:"incremental_recomputes"`
	SourcesRecomputed     uint64 `json:"sources_recomputed"`
	Pushes                uint64 `json:"pushes"`
	RouteChanges          uint64 `json:"route_changes"`
	Reroutes              uint64 `json:"reroutes"`
	LinkFailures          uint64 `json:"link_failures"`
	LinkRecoveries        uint64 `json:"link_recoveries"`
	LinkDegrades          uint64 `json:"link_degrades"`
	UtilizationUpdates    uint64 `json:"utilization_updates"`
	CongestionReroutes    uint64 `json:"congestion_reroutes"`
	Unreachable           int    `json:"unreachable"`
	// EpochAdvances / EpochRetires count make-before-break table versions
	// opened and drained (an advance without a matching retire yet means
	// a drain window is in flight).
	EpochAdvances uint64 `json:"epoch_advances"`
	EpochRetires  uint64 `json:"epoch_retires"`
}

// FeedbackSnapshot mirrors the congestion-feedback plane's counters.
type FeedbackSnapshot struct {
	Enabled        bool   `json:"enabled"`
	Transitions    uint64 `json:"transitions"`
	Batches        uint64 `json:"batches"`
	SignalsSent    uint64 `json:"signals_sent"`
	SignalsLocal   uint64 `json:"signals_local"`
	SignalsDropped uint64 `json:"signals_dropped"`
	FlowSignals    uint64 `json:"flow_signals"`
	HotRefreshes   uint64 `json:"hot_refreshes"`
	RateCuts       uint64 `json:"rate_cuts"`
	RateRecoveries uint64 `json:"rate_recoveries"`
	// Aggregate tenant-pacer actions: one cut per delivered signal per
	// tenant, not per member flow.
	TenantCuts       uint64 `json:"tenant_cuts,omitempty"`
	TenantRecoveries uint64 `json:"tenant_recoveries,omitempty"`
	PreemptiveMoves  uint64 `json:"preemptive_moves"`
	SubscribedFlows  int    `json:"subscribed_flows"`
}

// Totals are deployment-wide rollups.
type Totals struct {
	// Flows is the open-flow count (closed flows leave the snapshot).
	Flows int `json:"flows"`
	// Per-flow metric sums across open flows.
	Sent             uint64 `json:"sent"`
	SentBytes        uint64 `json:"sent_bytes"`
	Delivered        uint64 `json:"delivered"`
	Recovered        uint64 `json:"recovered"`
	OnTime           uint64 `json:"on_time"`
	AdmissionDropped uint64 `json:"admission_dropped"`
	AdmissionShaped  uint64 `json:"admission_shaped"`
	EgressDropped    uint64 `json:"egress_dropped"`
	PacedBytes       uint64 `json:"paced_bytes"`
	// LinkBytes sums lifetime bytes across every tracked link direction,
	// with ClassBytes the per-class breakdown (sums match: the load
	// meters account total and class together).
	LinkBytes  uint64             `json:"link_bytes"`
	ClassBytes [NumClasses]uint64 `json:"class_bytes"`
	// EgressBytes is billable cloud egress; CloudCostUSD prices it under
	// the default cost model.
	EgressBytes  uint64  `json:"egress_bytes"`
	CloudCostUSD float64 `json:"cloud_cost_usd"`
}

// humanBytes renders a byte count compactly (binary-ish, base 1000 —
// operator eyeballs, not accounting).
func humanBytes(b float64) string {
	switch {
	case b >= 1e9:
		return fmt.Sprintf("%.2f GB", b/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.2f MB", b/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.1f kB", b/1e3)
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}

// Summary renders the snapshot as a compact operator report — the
// examples' exit report and jqos-stat's default output.
func (s *Snapshot) Summary() string {
	var b strings.Builder
	t := s.Totals
	fmt.Fprintf(&b, "jqos @ %v: %d flows, %d sent / %d delivered (%s), cloud egress %s ($%.4f)\n",
		s.At, t.Flows, t.Sent, t.Delivered, onTimeText(t.Sent, t.Delivered, t.OnTime),
		humanBytes(float64(t.EgressBytes)), t.CloudCostUSD)
	for _, l := range s.Links {
		fmt.Fprintf(&b, "  link %v↔%v: cap %s/s, util %.0f%%, %v→%v %s%s, %v→%v %s%s\n",
			l.A, l.B, humanBytes(float64(l.Capacity)), 100*l.Utilization,
			l.A, l.B, humanBytes(float64(l.AB.Bytes)), classBreakdown(l.AB.ClassBytes),
			l.B, l.A, humanBytes(float64(l.BA.Bytes)), classBreakdown(l.BA.ClassBytes))
	}
	for _, q := range s.Queues {
		fmt.Fprintf(&b, "  queue %v→%v: depth %s, %d rounds", q.From, q.To, humanBytes(float64(q.QueuedBytes)), q.Rounds)
		for c := range q.PerClass {
			cs := q.PerClass[c]
			if cs.EnqueuedPackets == 0 && cs.DroppedPackets == 0 {
				continue
			}
			fmt.Fprintf(&b, ", %v %d out / %d dropped", core.Service(c), cs.DequeuedPackets, cs.DroppedPackets)
		}
		b.WriteByte('\n')
	}
	for _, tn := range s.Tenants {
		fmt.Fprintf(&b, "  tenant %d", tn.ID)
		if tn.Name != "" {
			fmt.Fprintf(&b, " (%s)", tn.Name)
		}
		fmt.Fprintf(&b, ": %d flows, %d sent, %s, %s sent ($%.4f est)",
			tn.Flows, tn.Sent, onTimeText(tn.Sent, tn.Delivered, tn.OnTime),
			humanBytes(float64(tn.SentBytes)), tn.EstCostUSD)
		if tn.QuotaRate > 0 {
			fmt.Fprintf(&b, ", quota %s/s", humanBytes(float64(tn.QuotaRate)))
			if tn.QuotaDropped > 0 {
				fmt.Fprintf(&b, " (%d refused)", tn.QuotaDropped)
			}
		}
		if tn.Throttled {
			fmt.Fprintf(&b, ", PACED to %s/s over %d hot", humanBytes(float64(tn.PacerRate)), tn.HotLinks)
		}
		if tn.PacerCuts > 0 {
			fmt.Fprintf(&b, ", %d cuts / %d recoveries", tn.PacerCuts, tn.PacerRecoveries)
		}
		if tn.CostCeilingPerGB > 0 {
			fmt.Fprintf(&b, ", $%.4f/GB of $%.4f/GB cap", tn.CostPerGB, tn.CostCeilingPerGB)
			if tn.CostViolations > 0 {
				fmt.Fprintf(&b, " (%d violations)", tn.CostViolations)
			}
		}
		b.WriteByte('\n')
	}
	for _, f := range s.Flows {
		fmt.Fprintf(&b, "  flow %d (%s): %d sent, %s, p95 %.1f ms", f.ID, f.ServiceName, f.Sent, onTimeText(f.Sent, f.Delivered, f.OnTime), f.LatencyMsP95)
		if f.AdmissionDropped > 0 || f.AdmissionShaped > 0 {
			fmt.Fprintf(&b, ", adm-drop %d / shaped %d", f.AdmissionDropped, f.AdmissionShaped)
		}
		if f.EgressDropped > 0 {
			fmt.Fprintf(&b, ", egress-drop %d", f.EgressDropped)
		}
		if f.PacedBytes > 0 {
			fmt.Fprintf(&b, ", paced %s", humanBytes(float64(f.PacedBytes)))
		}
		if f.ServiceChanges > 0 {
			fmt.Fprintf(&b, ", %d service changes", f.ServiceChanges)
		}
		b.WriteByte('\n')
	}
	r := s.Routing
	fmt.Fprintf(&b, "  routing: %d recomputes, %d reroutes, %d failures / %d recoveries, %d congestion reroutes\n",
		r.Recomputes, r.Reroutes, r.LinkFailures, r.LinkRecoveries, r.CongestionReroutes)
	if s.Feedback.Enabled {
		fb := s.Feedback
		fmt.Fprintf(&b, "  feedback: %d transitions → %d batches, %d flow signals, %d cuts / %d recoveries, %d preemptive moves\n",
			fb.Transitions, fb.Batches, fb.FlowSignals, fb.RateCuts, fb.RateRecoveries, fb.PreemptiveMoves)
	}
	if s.SLO.Enabled {
		fmt.Fprintf(&b, "  slo: objective %.1f%% (fast %v / slow %v), %d degrades / %d recovers\n",
			100*s.SLO.Objective, s.SLO.FastWin, s.SLO.SlowWin, s.SLO.Degrades, s.SLO.Recovers)
		for _, e := range s.SLO.Flows {
			fmt.Fprintf(&b, "    flow %d: %s, burn fast %.2f slow %.2f (%d/%d miss fast, %d/%d slow)\n",
				e.Flow, e.StateName, e.BurnFast, e.BurnSlow,
				e.FastMiss, e.FastOK+e.FastMiss, e.SlowMiss, e.SlowOK+e.SlowMiss)
		}
		for _, e := range s.SLO.Classes {
			fmt.Fprintf(&b, "    class %v: %s, burn fast %.2f slow %.2f\n", e.Class, e.StateName, e.BurnFast, e.BurnSlow)
		}
		for _, e := range s.SLO.Tenants {
			fmt.Fprintf(&b, "    tenant %d: %s, burn fast %.2f slow %.2f\n", e.Tenant, e.StateName, e.BurnFast, e.BurnSlow)
		}
	}
	if a := &s.Attribution; a.Enabled || a.LateDeliveries > 0 {
		fmt.Fprintf(&b, "  attribution: %d traced / %d finished / %d dropped / %d evicted, %d pending, %d late\n",
			a.Traced, a.Finished, a.Dropped, a.Evicted, a.Pending, a.LateDeliveries)
		for _, fsp := range a.Flows {
			p := fsp.Profile
			fmt.Fprintf(&b, "    flow %d spend (%d samples, %d late):", fsp.Flow, p.Samples, p.Late)
			for c := 0; c < NumSpanComponents; c++ {
				if p.Ns[c] == 0 {
					continue
				}
				fmt.Fprintf(&b, " %v %.0f%%", SpanComponent(c), 100*p.Share(SpanComponent(c)))
			}
			b.WriteByte('\n')
		}
		for _, qs := range a.Queues {
			mean := time.Duration(0)
			if qs.Spend.Samples > 0 {
				mean = time.Duration(qs.Spend.WaitNs / int64(qs.Spend.Samples))
			}
			fmt.Fprintf(&b, "    queue %v→%v %v: %d waits, mean %v, %d late\n",
				qs.Key.From, qs.Key.To, qs.Key.Class, qs.Spend.Samples, mean.Round(time.Microsecond), qs.Spend.Late)
		}
	}
	if s.Trace.Recorded > 0 {
		fmt.Fprintf(&b, "  trace: %d events (%d buffered of %d cap)", s.Trace.Recorded, s.Trace.Buffered, s.Trace.Capacity)
		for k := 0; k < NumKinds; k++ {
			if n := s.Trace.ByKind[k]; n > 0 {
				fmt.Fprintf(&b, ", %v %d", Kind(k), n)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// onTimeText renders a delivery set's on-time share, distinguishing "no
// deliveries" (sent but nothing surfaced — NOT a healthy 100%) from a
// true on-time fraction.
func onTimeText(sent, delivered, onTime uint64) string {
	if delivered == 0 {
		if sent > 0 {
			return "no deliveries"
		}
		return "idle"
	}
	return fmt.Sprintf("%.1f%% on time", 100*float64(onTime)/float64(delivered))
}

// classBreakdown renders nonzero per-class byte totals as a bracketed
// suffix (empty when the direction carried nothing).
func classBreakdown(bytes [NumClasses]uint64) string {
	var parts []string
	for c, n := range bytes {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%v %s", core.Service(c), humanBytes(float64(n))))
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return " [" + strings.Join(parts, " | ") + "]"
}
