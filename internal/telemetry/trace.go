package telemetry

import (
	"fmt"
	"sync"
	"time"

	"jqos/internal/core"
)

// Kind classifies one control-loop trace event.
type Kind uint8

// Event kinds. Each documents how the Event's generic V1/V2 payload
// fields are used.
const (
	// KindServiceChange: the adaptation loop moved a flow. Class is the
	// NEW service, V1 the old one, Reason the ServiceChangeReason.
	KindServiceChange Kind = iota
	// KindReroute: a flow's overlay path changed. LinkA/LinkB are the
	// new path's endpoint DCs (zero when no path remains), V1/V2 the
	// old/new path lengths in nodes.
	KindReroute
	// KindCongestionSignal: the feedback plane delivered a watermark
	// transition to a flow. LinkA→LinkB is the congested direction,
	// Class the queue's class, Reason the congestion state
	// (Clear/Warm/Hot), V1 the queued bytes at the transition.
	KindCongestionSignal
	// KindPacerCut: a Hot signal cut a flow's AIMD pacer. V1 is the new
	// admission rate (B/s), V2 the contracted rate.
	KindPacerCut
	// KindPacerRecover: an additive-recovery tick raised a throttled
	// pacer. V1 is the new admission rate (B/s), V2 the contract.
	KindPacerRecover
	// KindAdmissionDrop: the ingress token bucket refused a cloud copy.
	// Class is the flow's service, V1 the copy's wire size in bytes.
	KindAdmissionDrop
	// KindEgressDrop: a DC egress scheduler tail-dropped a copy. Class
	// is the dropped copy's class, V1 its wire size in bytes.
	KindEgressDrop
	// KindCostViolation: the flow's current service, priced at observed
	// loss, broke the spec's cost ceiling. Class is that service, V1 the
	// offending price in micro-dollars per GB.
	KindCostViolation
	// KindBudgetViolation: a delivery window missed the on-time target.
	// V1 is the window's on-time fraction in parts-per-million, V2 the
	// window's delivered count.
	KindBudgetViolation
	// KindTenantQuotaDrop: the tenant's aggregate admission quota refused
	// a cloud copy. Tenant is the tenant, Flow the member flow whose copy
	// dropped, Class its service, V1 the copy's wire size in bytes.
	KindTenantQuotaDrop
	// KindTenantPacerCut: a Hot signal cut a tenant's AGGREGATE pacer —
	// exactly once per delivered signal however many member flows
	// subscribe to the bottleneck. Tenant is the tenant, LinkA→LinkB the
	// congested direction, Class the queue's class, V1 the new aggregate
	// rate (B/s), V2 the quota contract.
	KindTenantPacerCut
	// KindTenantPacerRecover: an additive-recovery tick raised a
	// throttled tenant pacer. Tenant is the tenant, V1 the new aggregate
	// rate (B/s), V2 the quota contract.
	KindTenantPacerRecover
	// KindTenantCostViolation: the tenant's volume-weighted aggregate
	// $/GB broke its contract ceiling; the runtime forced the most
	// expensive adaptive member flow down a tier. Tenant is the tenant,
	// Flow the downgraded member, Class that member's OLD service, V1 the
	// aggregate price in micro-dollars per GB, V2 the ceiling likewise.
	KindTenantCostViolation
	// KindSLODegrade: the continuous SLO engine stepped a tracker's state
	// DOWN (Met→AtRisk, Met→Violated, or AtRisk→Violated). Flow/Tenant/
	// Class identify the tracker (exactly one is meaningful; class
	// trackers set Class with Flow and Tenant zero — data flows are never
	// flow 0). Reason is the NEW SLOState, V1 the fast-window burn rate
	// in parts-per-million, V2 the slow-window burn rate likewise.
	KindSLODegrade
	// KindSLORecover: the SLO engine stepped a tracker's state UP after
	// its ClearHold hysteresis. Same payload as KindSLODegrade; Reason is
	// the NEW (improved) SLOState.
	KindSLORecover

	// NumKinds sizes per-kind count arrays.
	NumKinds = int(KindSLORecover) + 1
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindServiceChange:
		return "service-change"
	case KindReroute:
		return "reroute"
	case KindCongestionSignal:
		return "congestion-signal"
	case KindPacerCut:
		return "pacer-cut"
	case KindPacerRecover:
		return "pacer-recover"
	case KindAdmissionDrop:
		return "admission-drop"
	case KindEgressDrop:
		return "egress-drop"
	case KindCostViolation:
		return "cost-violation"
	case KindBudgetViolation:
		return "budget-violation"
	case KindTenantQuotaDrop:
		return "tenant-quota-drop"
	case KindTenantPacerCut:
		return "tenant-pacer-cut"
	case KindTenantPacerRecover:
		return "tenant-pacer-recover"
	case KindTenantCostViolation:
		return "tenant-cost-violation"
	case KindSLODegrade:
		return "slo-degrade"
	case KindSLORecover:
		return "slo-recover"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one structured control-loop trace record. It is a fixed-size
// value type with no heap references, so recording one into the ring
// allocates nothing. At is SIMULATED time. V1/V2 are kind-specific
// payloads (see the Kind constants); Reason is the kind-specific cause
// code (ServiceChangeReason for service changes, congestion state for
// signals).
type Event struct {
	Seq    uint64        `json:"seq"`
	At     time.Duration `json:"at"`
	Kind   Kind          `json:"kind"`
	Flow   core.FlowID   `json:"flow,omitempty"`
	Tenant core.TenantID `json:"tenant,omitempty"`
	LinkA  core.NodeID   `json:"link_a,omitempty"`
	LinkB  core.NodeID   `json:"link_b,omitempty"`
	Class  core.Service  `json:"class"`
	Reason uint8         `json:"reason,omitempty"`
	V1     int64         `json:"v1,omitempty"`
	V2     int64         `json:"v2,omitempty"`
}

// Describe renders the event for humans (jqos-stat's trace tail).
func (e Event) Describe() string {
	at := e.At.Round(time.Microsecond)
	switch e.Kind {
	case KindServiceChange:
		return fmt.Sprintf("%-12v flow %d service-change %v→%v (reason %d)", at, e.Flow, core.Service(e.V1), e.Class, e.Reason)
	case KindReroute:
		return fmt.Sprintf("%-12v flow %d reroute %v→%v (path %d→%d nodes)", at, e.Flow, e.LinkA, e.LinkB, e.V1, e.V2)
	case KindCongestionSignal:
		return fmt.Sprintf("%-12v flow %d congestion-signal link %v→%v class %v state %d depth %dB", at, e.Flow, e.LinkA, e.LinkB, e.Class, e.Reason, e.V1)
	case KindPacerCut:
		return fmt.Sprintf("%-12v flow %d pacer-cut rate %dB/s of %dB/s", at, e.Flow, e.V1, e.V2)
	case KindPacerRecover:
		return fmt.Sprintf("%-12v flow %d pacer-recover rate %dB/s of %dB/s", at, e.Flow, e.V1, e.V2)
	case KindAdmissionDrop:
		return fmt.Sprintf("%-12v flow %d admission-drop class %v %dB", at, e.Flow, e.Class, e.V1)
	case KindEgressDrop:
		return fmt.Sprintf("%-12v flow %d egress-drop class %v %dB", at, e.Flow, e.Class, e.V1)
	case KindCostViolation:
		return fmt.Sprintf("%-12v flow %d cost-violation class %v $%.4f/GB", at, e.Flow, e.Class, float64(e.V1)/1e6)
	case KindBudgetViolation:
		return fmt.Sprintf("%-12v flow %d budget-violation on-time %.1f%% over %d delivered", at, e.Flow, float64(e.V1)/1e4, e.V2)
	case KindTenantQuotaDrop:
		return fmt.Sprintf("%-12v %v flow %d tenant-quota-drop class %v %dB", at, e.Tenant, e.Flow, e.Class, e.V1)
	case KindTenantPacerCut:
		return fmt.Sprintf("%-12v %v tenant-pacer-cut link %v→%v class %v rate %dB/s of %dB/s", at, e.Tenant, e.LinkA, e.LinkB, e.Class, e.V1, e.V2)
	case KindTenantPacerRecover:
		return fmt.Sprintf("%-12v %v tenant-pacer-recover rate %dB/s of %dB/s", at, e.Tenant, e.V1, e.V2)
	case KindTenantCostViolation:
		return fmt.Sprintf("%-12v %v tenant-cost-violation flow %d class %v $%.4f/GB over $%.4f/GB", at, e.Tenant, e.Flow, e.Class, float64(e.V1)/1e6, float64(e.V2)/1e6)
	case KindSLODegrade, KindSLORecover:
		return fmt.Sprintf("%-12v %s %v→%v burn fast %.2f slow %.2f", at, sloSubject(e), e.Kind, SLOState(e.Reason), float64(e.V1)/1e6, float64(e.V2)/1e6)
	default:
		return fmt.Sprintf("%-12v flow %d %v", at, e.Flow, e.Kind)
	}
}

// TraceStats summarizes a Ring's activity.
type TraceStats struct {
	// Recorded is the lifetime event count; Dropped of those were
	// overwritten by newer events before being read (Recorded − Dropped
	// ≥ Buffered because readers do not consume).
	Recorded uint64 `json:"recorded"`
	Dropped  uint64 `json:"dropped"`
	// Buffered / Capacity describe the ring's current occupancy.
	Buffered int `json:"buffered"`
	Capacity int `json:"capacity"`
	// ByKind counts lifetime events per Kind (index = Kind).
	ByKind [NumKinds]uint64 `json:"by_kind"`
}

// Ring is a bounded control-loop event buffer: fixed capacity, overwrite-
// oldest, mutex-protected (lock-light: Record is a few stores under an
// uncontended lock, 0 allocs/op). Events get a monotonically increasing
// Seq at record time, so readers can tail with Since across overwrites.
type Ring struct {
	mu     sync.Mutex
	buf    []Event
	start  int // index of the oldest buffered event
	n      int // buffered count
	seq    uint64
	byKind [NumKinds]uint64
}

// NewRing creates a ring holding up to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest when full, and
// returns the sequence number assigned to it. Allocation-free.
func (r *Ring) Record(e Event) uint64 {
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	if int(e.Kind) < NumKinds {
		r.byKind[e.Kind]++
	}
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = e
		r.n++
	} else {
		r.buf[r.start] = e
		r.start = (r.start + 1) % len(r.buf)
	}
	r.mu.Unlock()
	return e.Seq
}

// Events appends every buffered event (oldest first) to dst and returns
// the extended slice. Reading does not consume.
func (r *Ring) Events(dst []Event) []Event {
	return r.Since(dst, 0, 0)
}

// Since appends the buffered events with Seq > seq (oldest first, up to
// max; max ≤ 0 means all) to dst and returns the extended slice.
func (r *Ring) Since(dst []Event, seq uint64, max int) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < r.n; i++ {
		e := r.buf[(r.start+i)%len(r.buf)]
		if e.Seq <= seq {
			continue
		}
		dst = append(dst, e)
		if max > 0 && len(dst) >= max {
			break
		}
	}
	return dst
}

// Stats returns the ring's counters.
func (r *Ring) Stats() TraceStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return TraceStats{
		Recorded: r.seq,
		Dropped:  r.seq - uint64(r.n),
		Buffered: r.n,
		Capacity: len(r.buf),
		ByKind:   r.byKind,
	}
}

// CountOf returns the lifetime count of one event kind.
func (r *Ring) CountOf(k Kind) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(k) >= NumKinds {
		return 0
	}
	return r.byKind[k]
}
