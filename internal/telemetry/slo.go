package telemetry

import (
	"fmt"
	"time"

	"jqos/internal/core"
)

// SLOState is a tracker's current compliance classification.
type SLOState uint8

const (
	// SLOMet: both burn-rate windows are under their thresholds.
	SLOMet SLOState = iota
	// SLOAtRisk: the fast window's burn rate crossed AtRiskBurn — the
	// objective is being spent too fast, though the slow window may
	// still absorb it.
	SLOAtRisk
	// SLOViolated: BOTH windows crossed ViolatedBurn — sustained
	// overspend, the page-worthy state.
	SLOViolated
)

// String implements fmt.Stringer.
func (s SLOState) String() string {
	switch s {
	case SLOMet:
		return "met"
	case SLOAtRisk:
		return "at-risk"
	case SLOViolated:
		return "violated"
	default:
		return fmt.Sprintf("slostate(%d)", uint8(s))
	}
}

// sloSubject renders the tracker identity an SLO trace event is about.
func sloSubject(e Event) string {
	switch {
	case e.Flow != 0:
		return fmt.Sprintf("flow %d", e.Flow)
	case e.Tenant != 0:
		return fmt.Sprintf("tenant %d", e.Tenant)
	default:
		return fmt.Sprintf("class %v", e.Class)
	}
}

// SLOConfig tunes the continuous SLO engine (multi-window burn-rate
// alerting over per-delivery on-time observations). The zero value
// disables the engine; any positive Objective enables it with defaults
// for the rest.
type SLOConfig struct {
	// Objective is the target on-time fraction (e.g. 0.99 = 99% of
	// deliveries within budget). 0 disables the engine.
	Objective float64
	// FastWindow / SlowWindow are the two burn-rate windows: the fast
	// one trips quickly on sharp degradation, the slow one confirms it
	// is sustained. Defaults 1s / 5s of simulated time.
	FastWindow time.Duration
	SlowWindow time.Duration
	// AtRiskBurn / ViolatedBurn are burn-rate thresholds (burn =
	// miss-fraction / (1 − Objective); burn 1.0 spends the error budget
	// exactly). Fast ≥ AtRiskBurn → AtRisk; fast AND slow ≥
	// ViolatedBurn → Violated. Defaults 2 / 4.
	AtRiskBurn   float64
	ViolatedBurn float64
	// MinSamples is the minimum observations a window needs before its
	// burn rate counts (prevents one early miss from paging). Default 20.
	MinSamples int
	// ClearHold is how long the computed state must stay improved before
	// the tracker steps back up (hysteresis). Default = FastWindow.
	ClearHold time.Duration
}

// Enabled reports whether the config turns the engine on.
func (c SLOConfig) Enabled() bool { return c.Objective > 0 }

// WithDefaults returns the config with zero fields defaulted (Objective
// is left alone — it is the enable switch).
func (c SLOConfig) WithDefaults() SLOConfig {
	if c.FastWindow <= 0 {
		c.FastWindow = time.Second
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 5 * time.Second
	}
	if c.SlowWindow < c.FastWindow {
		c.SlowWindow = c.FastWindow
	}
	if c.AtRiskBurn <= 0 {
		c.AtRiskBurn = 2
	}
	if c.ViolatedBurn <= 0 {
		c.ViolatedBurn = 4
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 20
	}
	if c.ClearHold <= 0 {
		c.ClearHold = c.FastWindow
	}
	return c
}

// sloBuckets is the sliding-window resolution: each window is split
// into this many rotating buckets, so observations age out in
// window/sloBuckets quanta without per-observation timestamps.
const sloBuckets = 8

// sloWindow is a bucketed sliding count of ok/miss observations over a
// fixed span of simulated time. Observe and totals are allocation-free.
type sloWindow struct {
	width time.Duration // bucket width = window / sloBuckets
	ok    [sloBuckets]uint32
	miss  [sloBuckets]uint32
	last  int64 // absolute bucket index of the most recent advance
}

func newSLOWindow(span time.Duration) sloWindow {
	w := span / sloBuckets
	if w <= 0 {
		w = time.Millisecond
	}
	return sloWindow{width: w}
}

// advance rotates out buckets older than the window, given the current
// simulated time.
func (w *sloWindow) advance(at time.Duration) {
	cur := int64(at / w.width)
	if cur <= w.last {
		return
	}
	steps := cur - w.last
	if steps > sloBuckets {
		steps = sloBuckets
	}
	for i := int64(0); i < steps; i++ {
		slot := int((w.last + 1 + i) % sloBuckets)
		w.ok[slot], w.miss[slot] = 0, 0
	}
	w.last = cur
}

// observe counts n ok or miss observations at time at.
func (w *sloWindow) observe(at time.Duration, okObs bool, n uint32) {
	w.advance(at)
	slot := int(w.last % sloBuckets)
	if okObs {
		w.ok[slot] += n
	} else {
		w.miss[slot] += n
	}
}

// totals returns the windowed ok/miss counts as of time at.
func (w *sloWindow) totals(at time.Duration) (okN, missN uint64) {
	w.advance(at)
	for i := 0; i < sloBuckets; i++ {
		okN += uint64(w.ok[i])
		missN += uint64(w.miss[i])
	}
	return okN, missN
}

// SLOTransition is one state change an Eval produced.
type SLOTransition struct {
	From, To SLOState
	// BurnFast / BurnSlow are the burn rates at the transition.
	BurnFast, BurnSlow float64
}

// SLOTracker is one subject's (flow, class, or tenant) continuous SLO
// state: two burn-rate windows, the hysteresis clock, and the current
// classification. All methods run on the simulator goroutine and
// allocate nothing.
type SLOTracker struct {
	cfg   SLOConfig
	fast  sloWindow
	slow  sloWindow
	state SLOState

	// Step-up hysteresis: the improved state Eval keeps computing, and
	// since when. A degrade resets it.
	upTo    SLOState
	upSince time.Duration
	upValid bool
}

// NewSLOTracker creates a tracker; cfg must already carry defaults
// (SLOConfig.WithDefaults).
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	return &SLOTracker{
		cfg:  cfg,
		fast: newSLOWindow(cfg.FastWindow),
		slow: newSLOWindow(cfg.SlowWindow),
	}
}

// State returns the current classification.
func (t *SLOTracker) State() SLOState { return t.state }

// Observe feeds one delivery's on-time verdict at simulated time at.
func (t *SLOTracker) Observe(at time.Duration, onTime bool) {
	t.fast.observe(at, onTime, 1)
	t.slow.observe(at, onTime, 1)
}

// ObserveMisses feeds n synthetic misses (packets sent into a blackhole
// that will never deliver — without these, a fully-blackholed subject
// would read as compliant because on-time fractions only count
// deliveries).
func (t *SLOTracker) ObserveMisses(at time.Duration, n int) {
	if n <= 0 {
		return
	}
	t.fast.observe(at, false, uint32(n))
	t.slow.observe(at, false, uint32(n))
}

// burn converts windowed counts into a burn rate; windows below
// MinSamples read as 0 (insufficient signal never trips an alert).
func (t *SLOTracker) burn(okN, missN uint64) float64 {
	total := okN + missN
	if total < uint64(t.cfg.MinSamples) {
		return 0
	}
	missFrac := float64(missN) / float64(total)
	return missFrac / (1 - t.cfg.Objective)
}

// Burns returns the current fast and slow burn rates as of time at.
func (t *SLOTracker) Burns(at time.Duration) (fast, slow float64) {
	fo, fm := t.fast.totals(at)
	so, sm := t.slow.totals(at)
	return t.burn(fo, fm), t.burn(so, sm)
}

// Windows returns the raw windowed counts as of time at.
func (t *SLOTracker) Windows(at time.Duration) (fastOK, fastMiss, slowOK, slowMiss uint64) {
	fo, fm := t.fast.totals(at)
	so, sm := t.slow.totals(at)
	return fo, fm, so, sm
}

// Eval advances the state machine to simulated time at. Degrades apply
// immediately; recoveries only after the improved state held for
// ClearHold. The returned transition (when ok) is what happened.
func (t *SLOTracker) Eval(at time.Duration) (SLOTransition, bool) {
	burnFast, burnSlow := t.Burns(at)
	target := SLOMet
	switch {
	case burnFast >= t.cfg.ViolatedBurn && burnSlow >= t.cfg.ViolatedBurn:
		target = SLOViolated
	case burnFast >= t.cfg.AtRiskBurn:
		target = SLOAtRisk
	}
	switch {
	case target > t.state:
		tr := SLOTransition{From: t.state, To: target, BurnFast: burnFast, BurnSlow: burnSlow}
		t.state = target
		t.upValid = false
		return tr, true
	case target < t.state:
		if !t.upValid || target != t.upTo {
			// Start (or restart, when the candidate changed) the hold
			// clock for the improved state.
			t.upTo, t.upSince, t.upValid = target, at, true
			return SLOTransition{}, false
		}
		if at-t.upSince >= t.cfg.ClearHold {
			tr := SLOTransition{From: t.state, To: t.upTo, BurnFast: burnFast, BurnSlow: burnSlow}
			t.state = t.upTo
			t.upValid = false
			return tr, true
		}
		return SLOTransition{}, false
	default:
		t.upValid = false
		return SLOTransition{}, false
	}
}

// SLOEntry is one tracker's state in a snapshot. Exactly one of Flow /
// Tenant / the class identity is meaningful, by which slice it is in.
type SLOEntry struct {
	Flow   core.FlowID   `json:"flow,omitempty"`
	Tenant core.TenantID `json:"tenant,omitempty"`
	Class  core.Service  `json:"class"`

	State     SLOState `json:"state"`
	StateName string   `json:"state_name"`
	BurnFast  float64  `json:"burn_fast"`
	BurnSlow  float64  `json:"burn_slow"`
	// Windowed counts backing the burn rates.
	FastOK   uint64 `json:"fast_ok"`
	FastMiss uint64 `json:"fast_miss"`
	SlowOK   uint64 `json:"slow_ok"`
	SlowMiss uint64 `json:"slow_miss"`
}

// SLOSnapshot is the continuous SLO engine's surface in one Snapshot.
type SLOSnapshot struct {
	Enabled   bool          `json:"enabled"`
	Objective float64       `json:"objective,omitempty"`
	FastWin   time.Duration `json:"fast_window,omitempty"`
	SlowWin   time.Duration `json:"slow_window,omitempty"`
	// Degrades / Recovers are lifetime transition counts — they match
	// the trace ring's KindSLODegrade / KindSLORecover counts exactly
	// (the chaos accounting invariant).
	Degrades uint64 `json:"degrades"`
	Recovers uint64 `json:"recovers"`
	// Flows / Classes / Tenants list the live trackers in ascending key
	// order.
	Flows   []SLOEntry `json:"flows,omitempty"`
	Classes []SLOEntry `json:"classes,omitempty"`
	Tenants []SLOEntry `json:"tenants,omitempty"`
}

// Flow returns the entry for one flow's tracker; ok false when the flow
// has no budget or the engine is off.
func (s *SLOSnapshot) Flow(id core.FlowID) (SLOEntry, bool) {
	for i := range s.Flows {
		if s.Flows[i].Flow == id {
			return s.Flows[i], true
		}
	}
	return SLOEntry{}, false
}

// Class returns the entry for one service class's tracker.
func (s *SLOSnapshot) Class(class core.Service) (SLOEntry, bool) {
	for i := range s.Classes {
		if s.Classes[i].Class == class {
			return s.Classes[i], true
		}
	}
	return SLOEntry{}, false
}

// Tenant returns the entry for one tenant's tracker.
func (s *SLOSnapshot) Tenant(id core.TenantID) (SLOEntry, bool) {
	for i := range s.Tenants {
		if s.Tenants[i].Tenant == id {
			return s.Tenants[i], true
		}
	}
	return SLOEntry{}, false
}

// Worst returns the worst state across every tracker in the snapshot.
func (s *SLOSnapshot) Worst() SLOState {
	worst := SLOMet
	for _, list := range [][]SLOEntry{s.Flows, s.Classes, s.Tenants} {
		for i := range list {
			if list[i].State > worst {
				worst = list[i].State
			}
		}
	}
	return worst
}
