package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"jqos/internal/core"
)

// WriteMetrics renders the snapshot in Prometheus text exposition format
// (version 0.0.4): # HELP / # TYPE headers per family, one sample per
// line. Output order is deterministic — links, queues, and flows are
// already sorted in the snapshot.
func WriteMetrics(w io.Writer, s *Snapshot) error {
	bw := bufio.NewWriter(w)

	gauge := func(name, help string) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	counter := func(name, help string) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}

	gauge("jqos_snapshot_time_seconds", "Simulated capture time of this snapshot.")
	fmt.Fprintf(bw, "jqos_snapshot_time_seconds %v\n", s.At.Seconds())
	gauge("jqos_flows", "Open flows.")
	fmt.Fprintf(bw, "jqos_flows %d\n", s.Totals.Flows)

	// Deployment totals.
	counter("jqos_sent_packets_total", "Application packets sent across open flows.")
	fmt.Fprintf(bw, "jqos_sent_packets_total %d\n", s.Totals.Sent)
	counter("jqos_delivered_packets_total", "Packets delivered across open flows.")
	fmt.Fprintf(bw, "jqos_delivered_packets_total %d\n", s.Totals.Delivered)
	counter("jqos_on_time_packets_total", "Deliveries within their flow's budget.")
	fmt.Fprintf(bw, "jqos_on_time_packets_total %d\n", s.Totals.OnTime)
	counter("jqos_recovered_packets_total", "Deliveries repaired by a recovery service.")
	fmt.Fprintf(bw, "jqos_recovered_packets_total %d\n", s.Totals.Recovered)
	counter("jqos_admission_dropped_total", "Cloud copies refused by admission contracts.")
	fmt.Fprintf(bw, "jqos_admission_dropped_total %d\n", s.Totals.AdmissionDropped)
	counter("jqos_egress_dropped_total", "Copies tail-dropped by egress schedulers.")
	fmt.Fprintf(bw, "jqos_egress_dropped_total %d\n", s.Totals.EgressDropped)
	counter("jqos_cloud_egress_bytes_total", "Billable cloud egress bytes.")
	fmt.Fprintf(bw, "jqos_cloud_egress_bytes_total %d\n", s.Totals.EgressBytes)
	gauge("jqos_cloud_cost_usd", "Accumulated egress cost under the default price model.")
	fmt.Fprintf(bw, "jqos_cloud_cost_usd %v\n", s.Totals.CloudCostUSD)

	// Per-link load.
	if len(s.Links) > 0 {
		gauge("jqos_link_capacity_bytes", "Accounting capacity of the inter-DC link (B/s).")
		for _, l := range s.Links {
			fmt.Fprintf(bw, "jqos_link_capacity_bytes{a=\"%d\",b=\"%d\"} %d\n", l.A, l.B, l.Capacity)
		}
		gauge("jqos_link_utilization", "Hotter direction's windowed rate over capacity, 0-1.")
		for _, l := range s.Links {
			fmt.Fprintf(bw, "jqos_link_utilization{a=\"%d\",b=\"%d\"} %v\n", l.A, l.B, l.Utilization)
		}
		gauge("jqos_link_rate_bytes", "Windowed mean rate per link direction (B/s).")
		for _, l := range s.Links {
			fmt.Fprintf(bw, "jqos_link_rate_bytes{from=\"%d\",to=\"%d\"} %v\n", l.A, l.B, l.AB.Rate)
			fmt.Fprintf(bw, "jqos_link_rate_bytes{from=\"%d\",to=\"%d\"} %v\n", l.B, l.A, l.BA.Rate)
		}
		counter("jqos_link_bytes_total", "Lifetime bytes per link direction and service class.")
		for _, l := range s.Links {
			for c := 0; c < NumClasses; c++ {
				if l.AB.ClassBytes[c] > 0 {
					fmt.Fprintf(bw, "jqos_link_bytes_total{from=\"%d\",to=\"%d\",class=%q} %d\n", l.A, l.B, core.Service(c).String(), l.AB.ClassBytes[c])
				}
				if l.BA.ClassBytes[c] > 0 {
					fmt.Fprintf(bw, "jqos_link_bytes_total{from=\"%d\",to=\"%d\",class=%q} %d\n", l.B, l.A, core.Service(c).String(), l.BA.ClassBytes[c])
				}
			}
		}
	}

	// Per-queue scheduler state.
	if len(s.Queues) > 0 {
		gauge("jqos_queue_depth_bytes", "Live egress class-queue depth.")
		counterLines := &strings.Builder{}
		stateLines := &strings.Builder{}
		for _, q := range s.Queues {
			for c := 0; c < NumClasses; c++ {
				cs := q.PerClass[c]
				if cs.EnqueuedPackets == 0 && cs.QueuedPackets == 0 && cs.DroppedPackets == 0 {
					continue
				}
				cls := core.Service(c).String()
				fmt.Fprintf(bw, "jqos_queue_depth_bytes{from=\"%d\",to=\"%d\",class=%q} %d\n", q.From, q.To, cls, cs.QueuedBytes)
				fmt.Fprintf(counterLines, "jqos_queue_dequeued_packets_total{from=\"%d\",to=\"%d\",class=%q} %d\n", q.From, q.To, cls, cs.DequeuedPackets)
				fmt.Fprintf(counterLines, "jqos_queue_dropped_packets_total{from=\"%d\",to=\"%d\",class=%q} %d\n", q.From, q.To, cls, cs.DroppedPackets)
				fmt.Fprintf(stateLines, "jqos_queue_state{from=\"%d\",to=\"%d\",class=%q} %d\n", q.From, q.To, cls, cs.State)
			}
		}
		counter("jqos_queue_dequeued_packets_total", "Packets released by the egress scheduler.")
		counter("jqos_queue_dropped_packets_total", "Packets tail-dropped at the class byte cap.")
		bw.WriteString(counterLines.String())
		gauge("jqos_queue_state", "Class-queue congestion state: 0 clear, 1 warm, 2 hot.")
		bw.WriteString(stateLines.String())
	}

	// Per-flow delivery metrics.
	if len(s.Flows) > 0 {
		counter("jqos_flow_sent_packets_total", "Packets sent per flow.")
		for _, f := range s.Flows {
			fmt.Fprintf(bw, "jqos_flow_sent_packets_total{flow=\"%d\",service=%q} %d\n", f.ID, f.ServiceName, f.Sent)
		}
		counter("jqos_flow_delivered_packets_total", "Packets delivered per flow.")
		for _, f := range s.Flows {
			fmt.Fprintf(bw, "jqos_flow_delivered_packets_total{flow=\"%d\",service=%q} %d\n", f.ID, f.ServiceName, f.Delivered)
		}
		counter("jqos_flow_on_time_packets_total", "Deliveries within budget per flow.")
		for _, f := range s.Flows {
			fmt.Fprintf(bw, "jqos_flow_on_time_packets_total{flow=\"%d\",service=%q} %d\n", f.ID, f.ServiceName, f.OnTime)
		}
		gauge("jqos_flow_admission_rate_bytes", "Live admission bucket refill rate (B/s; 0 without a contract).")
		for _, f := range s.Flows {
			fmt.Fprintf(bw, "jqos_flow_admission_rate_bytes{flow=\"%d\"} %d\n", f.ID, f.AdmissionRate)
		}
	}

	// Control planes.
	counter("jqos_routing_recomputes_total", "Full route-table computations.")
	fmt.Fprintf(bw, "jqos_routing_recomputes_total %d\n", s.Routing.Recomputes)
	counter("jqos_routing_reroutes_total", "Recomputes that moved installed routes.")
	fmt.Fprintf(bw, "jqos_routing_reroutes_total %d\n", s.Routing.Reroutes)
	counter("jqos_routing_link_failures_total", "Link failures observed by the health monitor.")
	fmt.Fprintf(bw, "jqos_routing_link_failures_total %d\n", s.Routing.LinkFailures)
	counter("jqos_routing_congestion_reroutes_total", "Utilization-triggered reroutes.")
	fmt.Fprintf(bw, "jqos_routing_congestion_reroutes_total %d\n", s.Routing.CongestionReroutes)
	counter("jqos_feedback_flow_signals_total", "Congestion signals delivered to flows.")
	fmt.Fprintf(bw, "jqos_feedback_flow_signals_total %d\n", s.Feedback.FlowSignals)
	counter("jqos_feedback_rate_cuts_total", "AIMD pacer cuts.")
	fmt.Fprintf(bw, "jqos_feedback_rate_cuts_total %d\n", s.Feedback.RateCuts)
	counter("jqos_feedback_rate_recoveries_total", "AIMD pacer recovery steps.")
	fmt.Fprintf(bw, "jqos_feedback_rate_recoveries_total %d\n", s.Feedback.RateRecoveries)

	// SLO engine.
	if s.SLO.Enabled {
		gauge("jqos_slo_objective", "Configured on-time objective, 0-1.")
		fmt.Fprintf(bw, "jqos_slo_objective %v\n", s.SLO.Objective)
		counter("jqos_slo_degrades_total", "SLO state degradations (met→at-risk→violated).")
		fmt.Fprintf(bw, "jqos_slo_degrades_total %d\n", s.SLO.Degrades)
		counter("jqos_slo_recovers_total", "SLO state recoveries after the hysteresis hold.")
		fmt.Fprintf(bw, "jqos_slo_recovers_total %d\n", s.SLO.Recovers)
		if len(s.SLO.Flows)+len(s.SLO.Classes)+len(s.SLO.Tenants) > 0 {
			gauge("jqos_slo_state", "SLO state: 0 met, 1 at-risk, 2 violated.")
			for _, e := range s.SLO.Flows {
				fmt.Fprintf(bw, "jqos_slo_state{flow=\"%d\"} %d\n", e.Flow, e.State)
			}
			for _, e := range s.SLO.Classes {
				fmt.Fprintf(bw, "jqos_slo_state{class=%q} %d\n", e.Class.String(), e.State)
			}
			for _, e := range s.SLO.Tenants {
				fmt.Fprintf(bw, "jqos_slo_state{tenant=\"%d\"} %d\n", e.Tenant, e.State)
			}
			gauge("jqos_slo_burn_rate", "Error-budget burn rate per window (1.0 = exactly on objective).")
			for _, e := range s.SLO.Flows {
				fmt.Fprintf(bw, "jqos_slo_burn_rate{flow=\"%d\",window=\"fast\"} %v\n", e.Flow, e.BurnFast)
				fmt.Fprintf(bw, "jqos_slo_burn_rate{flow=\"%d\",window=\"slow\"} %v\n", e.Flow, e.BurnSlow)
			}
			for _, e := range s.SLO.Classes {
				fmt.Fprintf(bw, "jqos_slo_burn_rate{class=%q,window=\"fast\"} %v\n", e.Class.String(), e.BurnFast)
				fmt.Fprintf(bw, "jqos_slo_burn_rate{class=%q,window=\"slow\"} %v\n", e.Class.String(), e.BurnSlow)
			}
			for _, e := range s.SLO.Tenants {
				fmt.Fprintf(bw, "jqos_slo_burn_rate{tenant=\"%d\",window=\"fast\"} %v\n", e.Tenant, e.BurnFast)
				fmt.Fprintf(bw, "jqos_slo_burn_rate{tenant=\"%d\",window=\"slow\"} %v\n", e.Tenant, e.BurnSlow)
			}
		}
	}

	// Hop-level latency attribution.
	if a := &s.Attribution; a.Enabled || a.LateDeliveries > 0 {
		counter("jqos_attribution_traced_total", "Cloud copies sampled for hop-level attribution.")
		fmt.Fprintf(bw, "jqos_attribution_traced_total %d\n", a.Traced)
		counter("jqos_attribution_finished_total", "Sampled traces closed by a delivery.")
		fmt.Fprintf(bw, "jqos_attribution_finished_total %d\n", a.Finished)
		counter("jqos_attribution_dropped_total", "Sampled traces abandoned by an ingress or egress drop.")
		fmt.Fprintf(bw, "jqos_attribution_dropped_total %d\n", a.Dropped)
		counter("jqos_attribution_late_deliveries_total", "Budget-violating deliveries offered to the reservoir.")
		fmt.Fprintf(bw, "jqos_attribution_late_deliveries_total %d\n", a.LateDeliveries)
		if len(a.Flows) > 0 {
			counter("jqos_attribution_spend_ns_total", "Attributed latency per flow and budget component (ns).")
			for _, fs := range a.Flows {
				for c := 0; c < NumSpanComponents; c++ {
					if fs.Profile.Ns[c] == 0 {
						continue
					}
					fmt.Fprintf(bw, "jqos_attribution_spend_ns_total{flow=\"%d\",component=%q} %d\n",
						fs.Flow, SpanComponent(c).String(), fs.Profile.Ns[c])
				}
			}
		}
		if len(a.Queues) > 0 {
			counter("jqos_attribution_queue_wait_ns_total", "Attributed DRR queue wait per (link, class) (ns).")
			for _, qs := range a.Queues {
				fmt.Fprintf(bw, "jqos_attribution_queue_wait_ns_total{from=\"%d\",to=\"%d\",class=%q} %d\n",
					qs.Key.From, qs.Key.To, qs.Key.Class.String(), qs.Spend.WaitNs)
			}
		}
	}

	// Trace occupancy.
	counter("jqos_trace_events_total", "Control-loop trace events recorded, per kind.")
	for k := 0; k < NumKinds; k++ {
		fmt.Fprintf(bw, "jqos_trace_events_total{kind=%q} %d\n", Kind(k).String(), s.Trace.ByKind[k])
	}
	counter("jqos_trace_overwritten_total", "Trace events overwritten before being read.")
	fmt.Fprintf(bw, "jqos_trace_overwritten_total %d\n", s.Trace.Dropped)

	// Registered application metrics.
	for _, c := range s.Counters {
		counter(c.Name, "Registered counter.")
		fmt.Fprintf(bw, "%s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		gauge(g.Name, "Registered gauge.")
		fmt.Fprintf(bw, "%s %d\n", g.Name, g.Value)
	}

	// Histograms, Prometheus-style: cumulative buckets + _sum + _count.
	for _, h := range s.Histograms {
		fmt.Fprintf(bw, "# HELP %s Registered histogram (%s).\n# TYPE %s histogram\n", h.Name, h.Unit, h.Name)
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=\"%v\"} %d\n", h.Name, bound, cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, h.Count)
		fmt.Fprintf(bw, "%s_sum %v\n", h.Name, h.Sum)
		fmt.Fprintf(bw, "%s_count %d\n", h.Name, h.Count)
	}

	return bw.Flush()
}

// ParseMetrics validates Prometheus text exposition format and returns
// the number of samples (non-comment lines). It checks metric-name
// syntax, balanced label braces, quoted label values, and a parseable
// float value — the round-trip check CI's endpoint smoke test and
// jqos-stat -checkmetrics rely on.
func ParseMetrics(r io.Reader) (samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := parseSample(line); err != nil {
			return samples, fmt.Errorf("line %d: %w (%q)", lineNo, err, line)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	if samples == 0 {
		return 0, fmt.Errorf("no samples found")
	}
	return samples, nil
}

// parseSample validates one `name{labels} value` line.
func parseSample(line string) error {
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return fmt.Errorf("missing metric name")
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return fmt.Errorf("unbalanced label braces")
		}
		if err := parseLabels(rest[1:end]); err != nil {
			return err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return fmt.Errorf("missing value")
	}
	// An optional timestamp may follow the value.
	fields := strings.Fields(rest)
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return fmt.Errorf("bad value %q", fields[0])
	}
	return nil
}

// parseLabels validates a comma-separated `name="value"` list (values may
// not contain embedded quotes — the writer never emits them).
func parseLabels(s string) error {
	if s == "" {
		return nil
	}
	for _, pair := range strings.Split(s, ",") {
		eq := strings.Index(pair, "=")
		if eq <= 0 {
			return fmt.Errorf("bad label pair %q", pair)
		}
		name, val := pair[:eq], pair[eq+1:]
		for j := 0; j < len(name); j++ {
			if !isNameChar(name[j], j == 0) {
				return fmt.Errorf("bad label name %q", name)
			}
		}
		if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
			return fmt.Errorf("unquoted label value %q", val)
		}
	}
	return nil
}

func isNameChar(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
		return true
	}
	return !first && c >= '0' && c <= '9'
}
