package telemetry

import (
	"fmt"
	"sort"
	"time"

	"jqos/internal/core"
)

// SpanComponent names one slice of a traced packet's latency budget. The
// components partition the end-to-end delivery latency: every traced
// choke point charges its wait to exactly one component, and the
// correlator assigns whatever remains to SpanRelay, so the components of
// a finished HopRecord sum exactly to its Total.
type SpanComponent uint8

const (
	// SpanAdmission is time spent waiting for the ingress admission
	// contract (token-bucket shaping into conformance) while the flow's
	// pacer was NOT cut — the contract's own smoothing.
	SpanAdmission SpanComponent = iota
	// SpanPacer is the same ingress wait measured while congestion
	// feedback held the flow below its contract — budget spent on an
	// active backpressure cut rather than the contract itself.
	SpanPacer
	// SpanQueue is DRR egress queue wait, enqueue→dequeue, summed over
	// every scheduled hop (the per-(link, class) breakdown is kept
	// alongside in HopRecord.Queues).
	SpanQueue
	// SpanPropagation is wire time: the sum over hops of departure→
	// arrival, including the final DC→host leg.
	SpanPropagation
	// SpanRelay is DC processing: the remainder after every measured
	// component, clamped at zero.
	SpanRelay
	// SpanRecovery is loss-repair time (core.Delivery.RecoveryDelay) for
	// recovered deliveries.
	SpanRecovery

	// NumSpanComponents sizes per-component arrays.
	NumSpanComponents = int(SpanRecovery) + 1
)

// String implements fmt.Stringer.
func (c SpanComponent) String() string {
	switch c {
	case SpanAdmission:
		return "admission"
	case SpanPacer:
		return "pacer"
	case SpanQueue:
		return "queue"
	case SpanPropagation:
		return "propagation"
	case SpanRelay:
		return "relay"
	case SpanRecovery:
		return "recovery"
	default:
		return fmt.Sprintf("component(%d)", uint8(c))
	}
}

// MaxHopQueues bounds the per-(link, class) queue waits a HopRecord
// keeps individually; deeper paths fold the overflow into the last slot
// (SpanQueue still carries the full sum).
const MaxHopQueues = 4

// QueueSpan is one egress scheduler wait on a traced packet's path.
type QueueSpan struct {
	From  core.NodeID   `json:"from"`
	To    core.NodeID   `json:"to"`
	Class core.Service  `json:"class"`
	Wait  time.Duration `json:"wait"`
}

// HopRecord is one delivery's correlated latency attribution: where the
// packet's budget was spent, component by component. It is a fixed-size
// value type (no heap references), so recording one into the
// late-delivery reservoir allocates nothing. Records for deliveries
// whose cloud copy was not sampled carry only the identity, timing, and
// budget fields — the components stay zero.
type HopRecord struct {
	Flow core.FlowID `json:"flow"`
	Seq  core.Seq    `json:"seq"`
	// SentAt/DeliveredAt are SIMULATED times; Total their difference.
	SentAt      time.Duration `json:"sent_at"`
	DeliveredAt time.Duration `json:"delivered_at"`
	Total       time.Duration `json:"total"`
	Budget      time.Duration `json:"budget,omitempty"`
	// Via is the service that produced the delivery; Sampled reports
	// whether the cloud copy carried the trace tag (components valid).
	Via     core.Service `json:"via"`
	Sampled bool         `json:"sampled"`
	// Comp is the per-component spend; for sampled overlay deliveries
	// the components sum exactly to Total (SpanRelay absorbs the
	// remainder). Queues breaks SpanQueue down per (link, class).
	Comp    [NumSpanComponents]time.Duration `json:"comp"`
	Queues  [MaxHopQueues]QueueSpan          `json:"queues"`
	NQueues int                              `json:"n_queues"`
}

// Late reports whether the delivery missed its budget.
func (h *HopRecord) Late() bool { return h.Budget > 0 && h.Total > h.Budget }

// Excess returns how far past the budget the delivery landed (0 when on
// time or unbudgeted).
func (h *HopRecord) Excess() time.Duration {
	if !h.Late() {
		return 0
	}
	return h.Total - h.Budget
}

// Spend-profile histogram buckets (upper bounds per component duration;
// the last bucket is the overflow). Fixed so observing is allocation-free.
var spendBounds = [...]time.Duration{
	time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond,
}

// NumSpendBuckets is the spend-histogram bucket count (bounds + overflow).
const NumSpendBuckets = len(spendBounds) + 1

// SpendBucketBounds returns the histogram's upper bounds (the final
// overflow bucket has none).
func SpendBucketBounds() []time.Duration { return append([]time.Duration(nil), spendBounds[:]...) }

func spendBucket(d time.Duration) int {
	for i, b := range spendBounds {
		if d <= b {
			return i
		}
	}
	return NumSpendBuckets - 1
}

// SpendProfile is one flow's aggregated budget spend: per-component
// totals and fixed-bucket histograms over its sampled deliveries, split
// into all-delivery and late-delivery views. The headline ratio —
// "flow 7 is late because 83% of its budget is queue wait" — is
// LateNs[SpanQueue] / LateExcessNs-and-budget arithmetic on this.
type SpendProfile struct {
	// Samples counts finished sampled deliveries; Late those past budget.
	Samples uint64 `json:"samples"`
	Late    uint64 `json:"late"`
	// Ns / LateNs total each component's spend in nanoseconds over all /
	// late sampled deliveries.
	Ns     [NumSpanComponents]int64 `json:"ns"`
	LateNs [NumSpanComponents]int64 `json:"late_ns"`
	// LateExcessNs sums (Total − Budget) over late sampled deliveries —
	// the denominator attribution shares are judged against.
	LateExcessNs int64 `json:"late_excess_ns"`
	// Buckets histograms each component's per-delivery spend.
	Buckets [NumSpanComponents][NumSpendBuckets]uint64 `json:"buckets"`
}

func (p *SpendProfile) observe(h *HopRecord) {
	p.Samples++
	late := h.Late()
	if late {
		p.Late++
		p.LateExcessNs += int64(h.Excess())
	}
	for c := 0; c < NumSpanComponents; c++ {
		d := h.Comp[c]
		p.Ns[c] += int64(d)
		if late {
			p.LateNs[c] += int64(d)
		}
		p.Buckets[c][spendBucket(d)]++
	}
}

// Share returns component c's fraction of the profile's total spend
// (0 with no samples).
func (p *SpendProfile) Share(c SpanComponent) float64 {
	var sum int64
	for i := 0; i < NumSpanComponents; i++ {
		sum += p.Ns[i]
	}
	if sum <= 0 {
		return 0
	}
	return float64(p.Ns[c]) / float64(sum)
}

// LateShare returns component c's fraction of the spend over LATE
// deliveries only.
func (p *SpendProfile) LateShare(c SpanComponent) float64 {
	var sum int64
	for i := 0; i < NumSpanComponents; i++ {
		sum += p.LateNs[i]
	}
	if sum <= 0 {
		return 0
	}
	return float64(p.LateNs[c]) / float64(sum)
}

// QueueKey names one directed egress class queue.
type QueueKey struct {
	From  core.NodeID  `json:"from"`
	To    core.NodeID  `json:"to"`
	Class core.Service `json:"class"`
}

// QueueSpend aggregates sampled queue waits for one (link, class).
type QueueSpend struct {
	Samples uint64 `json:"samples"`
	Late    uint64 `json:"late"` // waits belonging to late deliveries
	// WaitNs / LateWaitNs total the queue's wait contribution in
	// nanoseconds over all / late sampled deliveries.
	WaitNs     int64                   `json:"wait_ns"`
	LateWaitNs int64                   `json:"late_wait_ns"`
	Buckets    [NumSpendBuckets]uint64 `json:"buckets"`
}

// pendingSpan is one in-flight traced packet's accumulating spans.
type pendingSpan struct {
	id      core.PacketID
	sentAt  time.Duration
	txAt    time.Duration
	txValid bool
	comp    [NumSpanComponents]time.Duration
	queues  [MaxHopQueues]QueueSpan
	nq      int
}

// spanTableCap bounds concurrently in-flight traced packets; the oldest
// pending trace is evicted (and counted) when a new Begin needs a slot.
const spanTableCap = 1024

// lateReservoirCap sizes the always-on late-delivery reservoir.
const lateReservoirCap = 64

// SpanCollector correlates per-choke-point spans into HopRecords and
// aggregates them into budget spend profiles. It is owned by the
// simulator goroutine — no locks — and preallocates everything on first
// use, so the per-packet paths allocate nothing in steady state. The
// untraced fast path is Pending() == 0, one integer compare.
type SpanCollector struct {
	slots []pendingSpan
	free  []int32
	idx   map[core.PacketID]int32
	// FIFO eviction ring over live ids (lazily cleaned: entries whose id
	// already finished are skipped on pop).
	order []core.PacketID
	head  int
	olen  int
	live  int

	traced   uint64
	finished uint64
	dropped  uint64
	evicted  uint64

	flows  map[core.FlowID]*SpendProfile
	queues map[QueueKey]*QueueSpend

	// Always-on reservoir of the most recent budget-violating
	// deliveries, sampled or not (value writes — 0 allocs).
	resv     [lateReservoirCap]HopRecord
	resvHead int
	resvLen  int
	lateSeen uint64
}

// NewSpanCollector creates an empty collector; the pending table is
// allocated on the first Begin.
func NewSpanCollector() *SpanCollector { return &SpanCollector{} }

// Pending returns the number of in-flight traced packets — the hot
// paths' "anything to do?" guard.
func (c *SpanCollector) Pending() int { return c.live }

// Traced / Finished / Dropped / Evicted return lifetime counters.
func (c *SpanCollector) Traced() uint64   { return c.traced }
func (c *SpanCollector) Finished() uint64 { return c.finished }
func (c *SpanCollector) Dropped() uint64  { return c.dropped }
func (c *SpanCollector) Evicted() uint64  { return c.evicted }

// Begin opens a trace for packet id sent at the given simulated time.
func (c *SpanCollector) Begin(id core.PacketID, at time.Duration) {
	if c.slots == nil {
		c.slots = make([]pendingSpan, spanTableCap)
		c.free = make([]int32, 0, spanTableCap)
		for i := spanTableCap - 1; i >= 0; i-- {
			c.free = append(c.free, int32(i))
		}
		c.idx = make(map[core.PacketID]int32, spanTableCap)
		c.order = make([]core.PacketID, spanTableCap)
	}
	if old, ok := c.idx[id]; ok {
		// Re-begun identity (sender reuse): restart the trace in place.
		c.slots[old] = pendingSpan{id: id, sentAt: at}
		c.traced++
		return
	}
	// Make room: pop stale ring heads, evicting the oldest live trace
	// when the ring is genuinely full.
	for c.olen == len(c.order) {
		victim := c.order[c.head]
		c.head = (c.head + 1) % len(c.order)
		c.olen--
		if si, ok := c.idx[victim]; ok && c.slots[si].id == victim {
			c.remove(victim, si)
			c.evicted++
		}
	}
	si := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.slots[si] = pendingSpan{id: id, sentAt: at}
	c.idx[id] = si
	c.order[(c.head+c.olen)%len(c.order)] = id
	c.olen++
	c.live++
	c.traced++
}

func (c *SpanCollector) remove(id core.PacketID, si int32) {
	delete(c.idx, id)
	c.free = append(c.free, si)
	c.live--
}

func (c *SpanCollector) lookup(id core.PacketID) *pendingSpan {
	si, ok := c.idx[id]
	if !ok {
		return nil
	}
	return &c.slots[si]
}

// NoteWait charges a measured wait to one component.
func (c *SpanCollector) NoteWait(id core.PacketID, comp SpanComponent, d time.Duration) {
	if p := c.lookup(id); p != nil && d > 0 {
		p.comp[comp] += d
	}
}

// NoteTx marks a wire departure (host uplink or DC egress).
func (c *SpanCollector) NoteTx(id core.PacketID, at time.Duration) {
	if p := c.lookup(id); p != nil {
		p.txAt, p.txValid = at, true
	}
}

// NoteRx marks a wire arrival at a DC, closing the open departure into
// propagation time.
func (c *SpanCollector) NoteRx(id core.PacketID, at time.Duration) {
	p := c.lookup(id)
	if p == nil || !p.txValid {
		return
	}
	if d := at - p.txAt; d > 0 {
		p.comp[SpanPropagation] += d
	}
	p.txValid = false
}

// NoteQueue charges one egress scheduler wait (enqueue→dequeue) on the
// directed (from, to) link for the given class.
func (c *SpanCollector) NoteQueue(id core.PacketID, from, to core.NodeID, class core.Service, wait time.Duration) {
	p := c.lookup(id)
	if p == nil || wait < 0 {
		return
	}
	p.comp[SpanQueue] += wait
	if p.nq < MaxHopQueues {
		p.queues[p.nq] = QueueSpan{From: from, To: to, Class: class, Wait: wait}
		p.nq++
	} else {
		// Deeper paths fold overflow into the last slot.
		p.queues[MaxHopQueues-1].Wait += wait
	}
}

// Drop abandons a trace whose packet was dropped before delivery.
func (c *SpanCollector) Drop(id core.PacketID) {
	si, ok := c.idx[id]
	if !ok {
		return
	}
	c.remove(id, si)
	c.dropped++
}

// Finish closes a trace on delivery: the open wire leg becomes the
// propagation tail, RecoveryDelay becomes SpanRecovery, and the
// remainder after every measured component becomes SpanRelay — so the
// components sum exactly to Total. The finished record feeds the per-
// flow and per-(link, class) spend aggregates. ok is false when the
// packet was never traced (or its trace was already evicted).
func (c *SpanCollector) Finish(id core.PacketID, deliveredAt, recovery, budget time.Duration, via core.Service) (HopRecord, bool) {
	si, ok := c.idx[id]
	if !ok {
		return HopRecord{}, false
	}
	p := &c.slots[si]
	h := HopRecord{
		Flow: id.Flow, Seq: id.Seq,
		SentAt: p.sentAt, DeliveredAt: deliveredAt,
		Budget: budget, Via: via, Sampled: true,
		Comp: p.comp, Queues: p.queues, NQueues: p.nq,
	}
	h.Total = deliveredAt - p.sentAt
	if h.Total < 0 {
		h.Total = 0
	}
	if recovery > 0 {
		h.Comp[SpanRecovery] += recovery
	}
	if p.txValid {
		// The final wire leg (last DC → receiving host) never saw a DC
		// arrival; it is propagation, minus any recovery delay already
		// charged to SpanRecovery.
		if tail := deliveredAt - p.txAt - recovery; tail > 0 {
			h.Comp[SpanPropagation] += tail
		}
	}
	var measured time.Duration
	for comp, d := range h.Comp {
		if SpanComponent(comp) != SpanRelay {
			measured += d
		}
	}
	if rest := h.Total - measured; rest > 0 {
		h.Comp[SpanRelay] = rest
	} else {
		h.Comp[SpanRelay] = 0
	}
	c.remove(id, si)
	c.finished++
	c.aggregate(&h)
	return h, true
}

// aggregate folds one finished record into the spend profiles.
func (c *SpanCollector) aggregate(h *HopRecord) {
	if c.flows == nil {
		c.flows = make(map[core.FlowID]*SpendProfile)
		c.queues = make(map[QueueKey]*QueueSpend)
	}
	fp := c.flows[h.Flow]
	if fp == nil {
		fp = &SpendProfile{}
		c.flows[h.Flow] = fp
	}
	fp.observe(h)
	late := h.Late()
	for i := 0; i < h.NQueues; i++ {
		qs := h.Queues[i]
		k := QueueKey{From: qs.From, To: qs.To, Class: qs.Class}
		q := c.queues[k]
		if q == nil {
			q = &QueueSpend{}
			c.queues[k] = q
		}
		q.Samples++
		q.WaitNs += int64(qs.Wait)
		if late {
			q.Late++
			q.LateWaitNs += int64(qs.Wait)
		}
		q.Buckets[spendBucket(qs.Wait)]++
	}
}

// NoteLate records one budget-violating delivery into the always-on
// reservoir (rec may be sampled or not). Value write — 0 allocs.
func (c *SpanCollector) NoteLate(rec HopRecord) {
	c.lateSeen++
	if c.resvLen < lateReservoirCap {
		c.resv[(c.resvHead+c.resvLen)%lateReservoirCap] = rec
		c.resvLen++
		return
	}
	c.resv[c.resvHead] = rec
	c.resvHead = (c.resvHead + 1) % lateReservoirCap
}

// LateSeen returns the lifetime count of budget-violating deliveries
// offered to the reservoir.
func (c *SpanCollector) LateSeen() uint64 { return c.lateSeen }

// Reservoir appends the buffered late-delivery records, oldest first.
func (c *SpanCollector) Reservoir(dst []HopRecord) []HopRecord {
	for i := 0; i < c.resvLen; i++ {
		dst = append(dst, c.resv[(c.resvHead+i)%lateReservoirCap])
	}
	return dst
}

// ForgetFlow drops a closed flow's spend profile (its queue
// contributions remain — link aggregates outlive flows).
func (c *SpanCollector) ForgetFlow(id core.FlowID) { delete(c.flows, id) }

// FlowSpendSnapshot is one flow's spend profile in a snapshot.
type FlowSpendSnapshot struct {
	Flow    core.FlowID  `json:"flow"`
	Profile SpendProfile `json:"profile"`
}

// QueueSpendSnapshot is one (link, class) queue-wait aggregate in a
// snapshot.
type QueueSpendSnapshot struct {
	Key   QueueKey   `json:"key"`
	Spend QueueSpend `json:"spend"`
}

// AttributionSnapshot is the hop-level latency attribution surface of
// one Snapshot: collector counters, per-flow budget spend profiles,
// per-(link, class) queue-wait aggregates, and the late-delivery
// reservoir.
type AttributionSnapshot struct {
	// Enabled reports whether any open flow samples traces.
	Enabled bool `json:"enabled"`
	// Traced / Finished / Dropped / Evicted / Pending count trace
	// lifecycles; LateDeliveries counts budget violations offered to the
	// reservoir (sampled or not).
	Traced         uint64 `json:"traced"`
	Finished       uint64 `json:"finished"`
	Dropped        uint64 `json:"dropped"`
	Evicted        uint64 `json:"evicted"`
	Pending        int    `json:"pending"`
	LateDeliveries uint64 `json:"late_deliveries"`
	// Flows / Queues are the spend aggregates in ascending key order.
	Flows  []FlowSpendSnapshot  `json:"flows,omitempty"`
	Queues []QueueSpendSnapshot `json:"queues,omitempty"`
	// Reservoir is the late-delivery ring, oldest first.
	Reservoir []HopRecord `json:"reservoir,omitempty"`
}

// Flow returns the spend profile for one flow; ok false when it never
// finished a sampled delivery.
func (a *AttributionSnapshot) Flow(id core.FlowID) (FlowSpendSnapshot, bool) {
	for i := range a.Flows {
		if a.Flows[i].Flow == id {
			return a.Flows[i], true
		}
	}
	return FlowSpendSnapshot{}, false
}

// Queue returns the queue-wait aggregate for one (from, to, class); ok
// false when no sampled delivery waited there.
func (a *AttributionSnapshot) Queue(from, to core.NodeID, class core.Service) (QueueSpendSnapshot, bool) {
	k := QueueKey{From: from, To: to, Class: class}
	for i := range a.Queues {
		if a.Queues[i].Key == k {
			return a.Queues[i], true
		}
	}
	return QueueSpendSnapshot{}, false
}

// Snapshot assembles the collector's current state into an immutable
// AttributionSnapshot: counters copied, aggregates deep-copied in
// deterministic ascending key order (flow ID; then (from, to, class)),
// reservoir oldest first. The caller sets Enabled — the collector does
// not know whether any flow samples.
func (c *SpanCollector) Snapshot() AttributionSnapshot {
	a := AttributionSnapshot{
		Traced:         c.traced,
		Finished:       c.finished,
		Dropped:        c.dropped,
		Evicted:        c.evicted,
		Pending:        c.live,
		LateDeliveries: c.lateSeen,
	}
	if len(c.flows) > 0 {
		a.Flows = make([]FlowSpendSnapshot, 0, len(c.flows))
		for id, p := range c.flows {
			a.Flows = append(a.Flows, FlowSpendSnapshot{Flow: id, Profile: *p})
		}
		sort.Slice(a.Flows, func(i, j int) bool { return a.Flows[i].Flow < a.Flows[j].Flow })
	}
	if len(c.queues) > 0 {
		a.Queues = make([]QueueSpendSnapshot, 0, len(c.queues))
		for k, q := range c.queues {
			a.Queues = append(a.Queues, QueueSpendSnapshot{Key: k, Spend: *q})
		}
		sort.Slice(a.Queues, func(i, j int) bool {
			ki, kj := a.Queues[i].Key, a.Queues[j].Key
			if ki.From != kj.From {
				return ki.From < kj.From
			}
			if ki.To != kj.To {
				return ki.To < kj.To
			}
			return ki.Class < kj.Class
		})
	}
	if c.resvLen > 0 {
		a.Reservoir = c.Reservoir(make([]HopRecord, 0, c.resvLen))
	}
	return a
}
