// Package tenant is the multi-tenant control plane above FlowSpec: the
// registry of customer contracts that admission quotas, egress-cost
// budgets, and aggregate congestion pacing are enforced against.
//
// The paper's judicious QoS spends cloud $/GB only where it buys
// outcome — but enforced per flow, every limit is trivially evaded by
// splitting one workload into many small flows. This package makes the
// CUSTOMER the enforcement unit:
//
//   - an aggregate admission quota: one shared token bucket
//     (load.Bucket) across all the tenant's flows, consulted before any
//     per-flow contract, so a thousand small flows and one big flow hit
//     the same ceiling;
//   - an egress-cost budget in $/GB, checked by the hosting runtime
//     against the tenant's volume-weighted aggregate spend (violation →
//     forced downgrade of the tenant's most expensive adaptive flow,
//     mirroring the per-flow cost loop);
//   - one AIMD pacer state per (tenant, bottleneck link-class), so
//     sibling flows crossing the same Hot queue back off as ONE — a
//     single multiplicative cut of the shared quota bucket instead of N
//     independent per-flow cuts fighting each other.
//
// Like the protocol engines the package is sans-IO and deterministic:
// the hosting runtime drives it with virtual time and delivers
// congestion signals; iteration orders are fixed (ascending tenant ID,
// signal-arrival order for pacer states) so same-seed runs reproduce
// byte-identical traces.
package tenant

import (
	"fmt"
	"sort"

	"jqos/internal/core"
	"jqos/internal/feedback"
	"jqos/internal/load"
)

// LinkClass keys one directed inter-DC link's class queue — the
// bottleneck unit the aggregate pacer keeps AIMD state per.
type LinkClass struct {
	From, To core.NodeID
	Class    core.Service
}

// Contract is one tenant's resource envelope.
type Contract struct {
	// ID is the operator-assigned tenant identity. 0 is reserved as
	// "untenanted" and is rejected by Register.
	ID core.TenantID
	// Name labels the tenant in telemetry.
	Name string
	// Rate is the aggregate admission quota in bytes/second shared by
	// ALL the tenant's flows' cloud copies (0 = unmetered: no quota, and
	// therefore no aggregate pacer — there is no bucket to pace).
	Rate int64
	// Burst is the quota bucket's depth in bytes (0 defaults like
	// load.NewBucket: a quarter second of Rate, floored at one MTU).
	Burst int64
	// CostCeilingPerGB caps the tenant's aggregate egress spend in $/GB
	// across all member flows (0 = unbounded). The hosting runtime
	// enforces it by forcing the most expensive adaptive member flow
	// down a tier while the volume-weighted aggregate sits above the
	// ceiling.
	CostCeilingPerGB float64
}

// Tenant is one registered customer: the contract, the shared quota
// bucket, the aggregate pacer, and the tenant-level counters that the
// per-tenant telemetry slice and the chaos accounting invariant read.
type Tenant struct {
	contract Contract
	bucket   *load.Bucket // nil when Contract.Rate == 0
	pacer    *Pacer       // nil when bucket is nil

	flows int // live member flows (registry leak invariant)

	quotaDrops     uint64
	quotaDropBytes uint64
	costViolations uint64
}

// ID returns the tenant's identity.
func (t *Tenant) ID() core.TenantID { return t.contract.ID }

// Name returns the tenant's telemetry label.
func (t *Tenant) Name() string { return t.contract.Name }

// Contract returns the registered envelope.
func (t *Tenant) Contract() Contract { return t.contract }

// Admit consumes n bytes from the aggregate quota bucket and reports
// whether the cloud copy conforms. An unmetered tenant admits
// everything. A false return consumed nothing and was counted as a
// quota drop — the caller drops the cloud copy (the direct best-effort
// path is unaffected, exactly like per-flow policing).
func (t *Tenant) Admit(now core.Time, n int) bool {
	if t.bucket == nil {
		return true
	}
	if t.bucket.Admit(now, n) {
		return true
	}
	t.quotaDrops++
	t.quotaDropBytes += uint64(n)
	return false
}

// QuotaDrops returns the lifetime count and byte volume of cloud copies
// refused by the aggregate quota.
func (t *Tenant) QuotaDrops() (drops, bytes uint64) {
	return t.quotaDrops, t.quotaDropBytes
}

// QuotaRate returns the quota bucket's CONTRACTED rate (0 = unmetered).
// Under an aggregate pacer cut the bucket's live rate is lower; see
// Pacer.Rate.
func (t *Tenant) QuotaRate() int64 { return t.contract.Rate }

// Pacer returns the tenant's aggregate pacer (nil for unmetered
// tenants — no bucket, nothing to pace).
func (t *Tenant) Pacer() *Pacer { return t.pacer }

// AddFlow notes a member flow registration.
func (t *Tenant) AddFlow() { t.flows++ }

// RemoveFlow notes a member flow close.
func (t *Tenant) RemoveFlow() {
	if t.flows == 0 {
		panic(fmt.Sprintf("tenant: %v flow count underflow", t.contract.ID))
	}
	t.flows--
}

// FlowCount returns the live member-flow count.
func (t *Tenant) FlowCount() int { return t.flows }

// NoteCostViolation counts one budget-driven forced downgrade.
func (t *Tenant) NoteCostViolation() { t.costViolations++ }

// CostViolations returns the lifetime count of budget-driven forced
// downgrades.
func (t *Tenant) CostViolations() uint64 { return t.costViolations }

// Registry holds a deployment's tenants. Iteration is ascending by
// tenant ID (deterministic enforcement and telemetry order).
type Registry struct {
	tenants map[core.TenantID]*Tenant
	ids     []core.TenantID // ascending
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tenants: make(map[core.TenantID]*Tenant)}
}

// Register creates a tenant under the contract. The pacer config is the
// AIMD reaction of the aggregate pacer (zero value = the feedback
// plane's defaults). Errors on a reserved or duplicate ID or a negative
// rate.
func (r *Registry) Register(c Contract, pcfg feedback.PacerConfig) (*Tenant, error) {
	if c.ID == 0 {
		return nil, fmt.Errorf("tenant: ID 0 is reserved for untenanted flows")
	}
	if _, dup := r.tenants[c.ID]; dup {
		return nil, fmt.Errorf("tenant: %v already registered", c.ID)
	}
	if c.Rate < 0 {
		return nil, fmt.Errorf("tenant: %v: negative quota rate %d", c.ID, c.Rate)
	}
	if c.CostCeilingPerGB < 0 {
		return nil, fmt.Errorf("tenant: %v: negative cost ceiling %g", c.ID, c.CostCeilingPerGB)
	}
	t := &Tenant{contract: c}
	if c.Rate > 0 {
		t.bucket = load.NewBucket(c.Rate, c.Burst)
		t.pacer = NewPacer(t.bucket, pcfg)
	}
	r.tenants[c.ID] = t
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= c.ID })
	r.ids = append(r.ids, 0)
	copy(r.ids[i+1:], r.ids[i:])
	r.ids[i] = c.ID
	return t, nil
}

// Get returns the tenant by ID.
func (r *Registry) Get(id core.TenantID) (*Tenant, bool) {
	t, ok := r.tenants[id]
	return t, ok
}

// Len returns the number of registered tenants.
func (r *Registry) Len() int { return len(r.tenants) }

// Each calls fn for every tenant in ascending ID order.
func (r *Registry) Each(fn func(*Tenant)) {
	for _, id := range r.ids {
		fn(r.tenants[id])
	}
}

// aimd is the pacer's per-bottleneck state: the rate this link-class
// alone would allow, cut multiplicatively while Hot and recovered
// additively once cool. A state that recovers back to the contract is
// dropped — steady state carries no memory of healed congestion.
type aimd struct {
	key  LinkClass
	rate int64
	hot  bool
}

// Pacer applies AIMD rate control to the tenant's shared quota bucket,
// with ONE state per congested (link, class) bottleneck. The applied
// rate is the MINIMUM across live states (a tenant crossing two hot
// links paces to the tighter one), and the contract rate is the
// ceiling. Unlike N per-flow pacers over one bucket — which would fight
// (one flow's additive recovery raising the rate another flow's Hot
// freeze is holding down) — the per-bottleneck states compose: each
// link's congestion owns exactly one rate, and the bucket follows the
// tightest.
type Pacer struct {
	bucket  *load.Bucket
	base    int64 // contract (ceiling)
	floor   int64
	step    int64
	backoff float64
	cur     int64 // applied rate = min over states, capped at base

	// states in signal-arrival order — deterministic under the
	// simulator, linear-scanned (a tenant's working set of congested
	// bottlenecks is small).
	states []aimd

	cuts       uint64
	recoveries uint64
}

// NewPacer wraps the tenant's quota bucket. The bucket's current rate
// is the contract (the AIMD ceiling); cfg's zero fields take the
// feedback plane's defaults.
func NewPacer(bucket *load.Bucket, cfg feedback.PacerConfig) *Pacer {
	floor := cfg.Floor
	if floor <= 0 || floor > 1 {
		floor = feedback.DefaultPacerFloor
	}
	backoff := cfg.Backoff
	if backoff <= 0 || backoff >= 1 {
		backoff = feedback.DefaultPacerBackoff
	}
	recover := cfg.Recover
	if recover <= 0 || recover > 1 {
		recover = feedback.DefaultPacerRecover
	}
	base := bucket.Rate()
	p := &Pacer{
		bucket:  bucket,
		base:    base,
		backoff: backoff,
		cur:     base,
	}
	p.floor = int64(float64(base) * floor)
	if p.floor < 1 {
		p.floor = 1
	}
	p.step = int64(float64(base) * recover)
	if p.step < 1 {
		p.step = 1
	}
	return p
}

func (p *Pacer) find(key LinkClass) int {
	for i := range p.states {
		if p.states[i].key == key {
			return i
		}
	}
	return -1
}

// OnSignal applies one congestion signal for the bottleneck key,
// returning whether the applied rate was cut. hot=true cuts that
// bottleneck's state multiplicatively toward the floor (creating it at
// the contract rate on first sight) and freezes its recovery; a cooler
// signal unfreezes it. The hosting runtime calls this ONCE per tenant
// per delivered signal, however many member flows subscribe to the
// bottleneck — that is the whole point.
func (p *Pacer) OnSignal(now core.Time, key LinkClass, hot bool) bool {
	i := p.find(key)
	if !hot {
		if i >= 0 {
			p.states[i].hot = false
		}
		return false
	}
	if i < 0 {
		p.states = append(p.states, aimd{key: key, rate: p.base})
		i = len(p.states) - 1
	}
	st := &p.states[i]
	st.hot = true
	next := int64(float64(st.rate) * p.backoff)
	if next < p.floor {
		next = p.floor
	}
	if next == st.rate {
		return false
	}
	st.rate = next
	p.cuts++
	before := p.cur
	p.apply(now)
	return p.cur < before
}

// Tick is one additive-recovery step across every unfrozen state; a
// state reaching the contract is dropped. Returns whether anything
// recovered (the caller keeps ticking while Throttled reports true).
func (p *Pacer) Tick(now core.Time) bool {
	changed := false
	w := 0
	for i := range p.states {
		st := p.states[i]
		if !st.hot && st.rate < p.base {
			st.rate += p.step
			changed = true
			if st.rate >= p.base {
				continue // fully recovered: forget the bottleneck
			}
		}
		p.states[w] = st
		w++
	}
	p.states = p.states[:w]
	if !changed {
		return false
	}
	p.recoveries++
	p.apply(now)
	return true
}

// apply recomputes the applied rate (min across states, ceiling base)
// and pushes it to the bucket when it moved.
func (p *Pacer) apply(now core.Time) {
	cur := p.base
	for i := range p.states {
		if p.states[i].rate < cur {
			cur = p.states[i].rate
		}
	}
	if cur != p.cur {
		p.cur = cur
		p.bucket.SetRate(now, cur)
	}
}

// UnfreezeAll clears every state's hot-freeze without touching rates.
// The hosting runtime calls it when a member flow's (path, class)
// subscription changes or a member closes: a frozen state may describe
// a queue whose cooling transition will never be delivered to this
// tenant again, and recovery must not wedge. A still-congested queue
// re-freezes (and re-cuts) on its next Hot refresh.
func (p *Pacer) UnfreezeAll() {
	for i := range p.states {
		p.states[i].hot = false
	}
}

// Rate returns the applied pacing rate in bytes/second.
func (p *Pacer) Rate() int64 { return p.cur }

// Contract returns the quota contract (the AIMD ceiling).
func (p *Pacer) Contract() int64 { return p.base }

// Throttled reports whether any bottleneck currently holds the tenant
// below its contract.
func (p *Pacer) Throttled() bool { return len(p.states) > 0 }

// HotLinks returns how many tracked bottlenecks are currently frozen
// Hot.
func (p *Pacer) HotLinks() int {
	n := 0
	for i := range p.states {
		if p.states[i].hot {
			n++
		}
	}
	return n
}

// Tracking returns how many bottleneck states are live (hot or
// recovering).
func (p *Pacer) Tracking() int { return len(p.states) }

// Cuts returns the lifetime count of multiplicative cuts.
func (p *Pacer) Cuts() uint64 { return p.cuts }

// Recoveries returns the lifetime count of additive recovery ticks that
// moved a rate.
func (p *Pacer) Recoveries() uint64 { return p.recoveries }
