package tenant

import (
	"testing"
	"time"

	"jqos/internal/core"
	"jqos/internal/feedback"
)

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register(Contract{ID: 0, Rate: 1000}, feedback.PacerConfig{}); err == nil {
		t.Fatal("ID 0 must be rejected")
	}
	if _, err := r.Register(Contract{ID: 7, Rate: -1}, feedback.PacerConfig{}); err == nil {
		t.Fatal("negative rate must be rejected")
	}
	if _, err := r.Register(Contract{ID: 7, CostCeilingPerGB: -0.01}, feedback.PacerConfig{}); err == nil {
		t.Fatal("negative cost ceiling must be rejected")
	}
	if _, err := r.Register(Contract{ID: 7, Rate: 1000}, feedback.PacerConfig{}); err != nil {
		t.Fatalf("register: %v", err)
	}
	if _, err := r.Register(Contract{ID: 7, Rate: 2000}, feedback.PacerConfig{}); err == nil {
		t.Fatal("duplicate ID must be rejected")
	}
}

func TestRegistryAscendingIteration(t *testing.T) {
	r := NewRegistry()
	for _, id := range []core.TenantID{9, 2, 5} {
		if _, err := r.Register(Contract{ID: id}, feedback.PacerConfig{}); err != nil {
			t.Fatalf("register %v: %v", id, err)
		}
	}
	var got []core.TenantID
	r.Each(func(tn *Tenant) { got = append(got, tn.ID()) })
	want := []core.TenantID{2, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iteration order %v, want %v", got, want)
		}
	}
}

func TestAdmitSharedQuota(t *testing.T) {
	r := NewRegistry()
	tn, err := r.Register(Contract{ID: 1, Rate: 10_000, Burst: 3000}, feedback.PacerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Burst admits exactly 3000 bytes at t=0, shared across any number
	// of callers (the flows): the fourth 1000-byte copy is refused.
	for i := 0; i < 3; i++ {
		if !tn.Admit(0, 1000) {
			t.Fatalf("copy %d within burst refused", i)
		}
	}
	if tn.Admit(0, 1000) {
		t.Fatal("copy beyond shared burst admitted")
	}
	if drops, bytes := tn.QuotaDrops(); drops != 1 || bytes != 1000 {
		t.Fatalf("quota drops = %d/%d, want 1/1000", drops, bytes)
	}
	// After one second the bucket refilled min(rate, burst) worth.
	if !tn.Admit(time.Second, 3000) {
		t.Fatal("refilled burst refused")
	}
}

func TestUnmeteredTenantAdmitsEverything(t *testing.T) {
	r := NewRegistry()
	tn, err := r.Register(Contract{ID: 1}, feedback.PacerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if tn.Pacer() != nil {
		t.Fatal("unmetered tenant must not have a pacer")
	}
	for i := 0; i < 1000; i++ {
		if !tn.Admit(0, 1<<20) {
			t.Fatal("unmetered tenant refused a copy")
		}
	}
	if drops, _ := tn.QuotaDrops(); drops != 0 {
		t.Fatalf("unmetered tenant counted %d quota drops", drops)
	}
}

func TestPacerMinAcrossBottlenecks(t *testing.T) {
	r := NewRegistry()
	tn, err := r.Register(Contract{ID: 1, Rate: 100_000}, feedback.PacerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p := tn.Pacer()
	k1 := LinkClass{From: 1, To: 2, Class: core.ServiceForwarding}
	k2 := LinkClass{From: 2, To: 3, Class: core.ServiceForwarding}

	if !p.OnSignal(0, k1, true) {
		t.Fatal("first Hot on k1 must cut")
	}
	if p.Rate() != 50_000 {
		t.Fatalf("rate after one cut = %d, want 50000", p.Rate())
	}
	// A second bottleneck going Hot cuts from ITS own base — the applied
	// rate is already below it, so the bucket does not move yet.
	if p.OnSignal(0, k2, true) {
		t.Fatal("k2's first cut (to 50k) must not lower the applied rate below k1's")
	}
	if p.Rate() != 50_000 || p.Tracking() != 2 {
		t.Fatalf("rate %d tracking %d, want 50000/2", p.Rate(), p.Tracking())
	}
	// k1 cools and recovers past k2; the min must hold at k2's rate.
	p.OnSignal(0, k1, false)
	for i := 0; i < 20 && p.Tracking() == 2; i++ {
		p.Tick(0)
	}
	if p.Tracking() != 1 {
		t.Fatalf("k1 did not recover out; tracking %d", p.Tracking())
	}
	if p.Rate() != 50_000 {
		t.Fatalf("applied rate %d, want k2's 50000", p.Rate())
	}
	// k2 cools too; full recovery must clear all state and restore the
	// contract.
	p.OnSignal(0, k2, false)
	for i := 0; i < 20 && p.Throttled(); i++ {
		p.Tick(0)
	}
	if p.Throttled() || p.Rate() != 100_000 {
		t.Fatalf("pacer did not recover: throttled=%v rate=%d", p.Throttled(), p.Rate())
	}
	if p.Cuts() == 0 || p.Recoveries() == 0 {
		t.Fatalf("counters cuts=%d recoveries=%d", p.Cuts(), p.Recoveries())
	}
}

func TestPacerHotFreezeAndUnfreeze(t *testing.T) {
	r := NewRegistry()
	tn, err := r.Register(Contract{ID: 1, Rate: 80_000}, feedback.PacerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p := tn.Pacer()
	k := LinkClass{From: 1, To: 2, Class: core.ServiceCaching}
	p.OnSignal(0, k, true)
	got := p.Rate()
	if p.Tick(0) {
		t.Fatal("frozen state must not recover")
	}
	if p.Rate() != got {
		t.Fatalf("rate moved under freeze: %d -> %d", got, p.Rate())
	}
	if p.HotLinks() != 1 {
		t.Fatalf("hot links %d, want 1", p.HotLinks())
	}
	// UnfreezeAll lets recovery proceed even though no cool signal ever
	// arrived (the subscription-change path).
	p.UnfreezeAll()
	if p.HotLinks() != 0 {
		t.Fatal("UnfreezeAll left a hot state")
	}
	if !p.Tick(0) {
		t.Fatal("unfrozen state must recover")
	}
}

func TestPacerFloor(t *testing.T) {
	r := NewRegistry()
	tn, err := r.Register(Contract{ID: 1, Rate: 1000}, feedback.PacerConfig{Floor: 0.25, Backoff: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	p := tn.Pacer()
	k := LinkClass{From: 1, To: 2, Class: core.ServiceForwarding}
	for i := 0; i < 10; i++ {
		p.OnSignal(0, k, true)
	}
	if p.Rate() != 250 {
		t.Fatalf("rate %d, want the 250 floor", p.Rate())
	}
}

func TestFlowCountUnderflowPanics(t *testing.T) {
	r := NewRegistry()
	tn, _ := r.Register(Contract{ID: 1}, feedback.PacerConfig{})
	tn.AddFlow()
	tn.RemoveFlow()
	defer func() {
		if recover() == nil {
			t.Fatal("expected underflow panic")
		}
	}()
	tn.RemoveFlow()
}

// BenchmarkTenantAdmit gates the aggregate-quota hot path: every cloud
// copy of every tenanted flow pays one Admit, so it must stay
// allocation-free like the per-flow bucket it wraps.
func BenchmarkTenantAdmit(b *testing.B) {
	r := NewRegistry()
	tn, err := r.Register(Contract{ID: 1, Rate: 1 << 30, Burst: 1 << 20}, feedback.PacerConfig{})
	if err != nil {
		b.Fatal(err)
	}
	now := core.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += time.Microsecond
		tn.Admit(now, 1200)
	}
}
