package mobile

import (
	"math/rand"
	"testing"
	"time"
)

func TestUplinkSurveyRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		u := SampleUplink(rng)
		if u.Mbps < 2 || u.Mbps > 5 {
			t.Fatalf("uplink %v outside survey range", u.Mbps)
		}
	}
}

func TestFitsDuplication(t *testing.T) {
	u := Uplink{Mbps: 5}
	// Paper: duplicating a 1.5 Mb/s Skype stream (→3.0) fits a 5 Mb/s
	// uplink…
	if !u.FitsDuplication(1.5) {
		t.Error("1.5 Mb/s duplication should fit 5 Mb/s uplink")
	}
	// …but could exhaust tighter links.
	if (Uplink{Mbps: 2.5}).FitsDuplication(1.5) {
		t.Error("3.0 Mb/s should not fit a 2.5 Mb/s uplink")
	}
	if h := u.Headroom(1.5); h != 0.6 {
		t.Errorf("headroom = %v", h)
	}
	if (Uplink{}).Headroom(1) != 0 {
		t.Error("zero uplink headroom")
	}
}

func TestEnergyNegligibleDuplicationCost(t *testing.T) {
	e := DefaultEnergy()
	call := 20 * time.Minute
	plain := e.Drain(call, 1.5)
	dup := e.Drain(call, 3.0)
	// Paper: ~20 mAh either way; the delta is noise-level (<10%).
	if plain < 15 || plain > 25 {
		t.Errorf("baseline drain = %v mAh", plain)
	}
	if rel := (dup - plain) / plain; rel < 0 || rel > 0.10 {
		t.Errorf("duplication energy delta = %.1f%%", rel*100)
	}
}

func TestPingCloudDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, p := range Providers {
		s := PingCloud(rng, p, 1000)
		med := s.Median()
		if med < 45 || med > 70 {
			t.Errorf("%s median RTT = %v", p, med)
		}
		if p90 := s.Quantile(0.9); p90 < med || p90 > 130 {
			t.Errorf("%s p90 RTT = %v", p, p90)
		}
		if s.Min() < 40 {
			t.Errorf("%s implausibly low RTT %v", p, s.Min())
		}
	}
}

func TestRecoveryFeasible(t *testing.T) {
	// 55 ms cloud RTT, 25 ms detection → ~135 ms: fine for a 250 ms
	// budget, hopeless for 100 ms.
	if !RecoveryFeasible(55, 25*time.Millisecond, 250*time.Millisecond) {
		t.Error("recovery should fit 250 ms budget")
	}
	if RecoveryFeasible(55, 25*time.Millisecond, 100*time.Millisecond) {
		t.Error("recovery should not fit 100 ms budget")
	}
}
