// Package mobile models the cellular-access case study (§6.5): LTE uplink
// capacity against stream duplication, battery-drain accounting, and the
// cellular latency distributions the paper measured toward the three major
// cloud providers. The paper's findings are thresholds (does 2× the stream
// fit the uplink? is the battery delta measurable? are DC RTTs low
// enough?), which these models expose directly.
package mobile

import (
	"math/rand"
	"time"

	"jqos/internal/stats"
)

// Uplink models an LTE uplink.
type Uplink struct {
	// Mbps is the available uplink bandwidth (paper survey: 2–5 Mb/s
	// for major US carriers).
	Mbps float64
}

// SampleUplink draws a carrier uplink from the survey range.
func SampleUplink(rng *rand.Rand) Uplink {
	return Uplink{Mbps: 2 + rng.Float64()*3}
}

// FitsDuplication reports whether duplicating a stream of streamMbps
// (i.e. carrying 2× its rate) fits the uplink.
func (u Uplink) FitsDuplication(streamMbps float64) bool {
	return 2*streamMbps <= u.Mbps
}

// Headroom returns the uplink share consumed by a duplicated stream.
func (u Uplink) Headroom(streamMbps float64) float64 {
	if u.Mbps == 0 {
		return 0
	}
	return 2 * streamMbps / u.Mbps
}

// Energy models battery drain for a video call. The paper measured ~20 mAh
// per 20-minute call with or without duplication — radio power is dominated
// by being active, not by the marginal bytes.
type Energy struct {
	// BaseMAhPerMin is drain while on a call.
	BaseMAhPerMin float64
	// PerMbpsMAhPerMin is the marginal drain per Mb/s transmitted.
	PerMbpsMAhPerMin float64
}

// DefaultEnergy calibrates to the paper's 20 mAh / 20 min observation.
func DefaultEnergy() Energy {
	return Energy{BaseMAhPerMin: 0.93, PerMbpsMAhPerMin: 0.045}
}

// Drain returns mAh consumed by a call of the given duration carrying
// txMbps of uplink traffic.
func (e Energy) Drain(d time.Duration, txMbps float64) float64 {
	min := d.Minutes()
	return min * (e.BaseMAhPerMin + e.PerMbpsMAhPerMin*txMbps)
}

// Provider labels the surveyed cloud providers.
type Provider string

// Surveyed providers.
const (
	Amazon    Provider = "amazon"
	Microsoft Provider = "microsoft"
	Google    Provider = "google"
)

// Providers lists all surveyed providers.
var Providers = []Provider{Amazon, Microsoft, Google}

// PingCloud synthesizes n RTT samples (in ms) from an LTE device to a
// provider's nearest DC, matching the paper's measurement: medians of
// 50–60 ms with a 50–100 ms body through the 90th percentile, plus an
// occasional jitter tail.
func PingCloud(rng *rand.Rand, p Provider, n int) *stats.Sample {
	// Small per-provider offsets keep the three curves distinct.
	base := map[Provider]float64{Amazon: 50, Microsoft: 54, Google: 57}[p]
	s := stats.NewSample(n)
	for i := 0; i < n; i++ {
		v := base + rng.ExpFloat64()*14
		if rng.Float64() < 0.05 { // cellular jitter spikes
			v += 40 + rng.ExpFloat64()*60
		}
		s.Add(v)
	}
	return s
}

// RecoveryFeasible reports whether CR-WAN cooperative recovery fits an
// application latency budget from a mobile receiver: detection plus two
// cloud round trips (NACK→DC and coop exchange) must fit.
func RecoveryFeasible(cloudRTTms float64, detect time.Duration, budget time.Duration) bool {
	total := detect + time.Duration(2*cloudRTTms*float64(time.Millisecond))
	return total <= budget
}
