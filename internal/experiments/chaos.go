package experiments

import (
	"time"

	"jqos/internal/chaos"
	"jqos/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "chaos",
		Title: "Invariant-checked chaos soak: per-run control-loop activity under fuzzed fault timelines",
		Run:   runChaos,
	})
}

// runChaos runs a short seeded chaos soak (the same harness
// cmd/jqos-chaos drives at scale) and plots per-run control-plane
// activity: how many reroutes, congestion signals, and pacer cuts each
// fuzzed fault timeline provoked. The headline is the invariant
// verdict — every run must reconverge, drain, balance its accounting,
// and tear down leak-free.
func runChaos(o Options) (Result, error) {
	runs := 12
	if o.Quick {
		runs = 4
	}

	reroutes := stats.Series{Name: "reroutes"}
	cuts := stats.Series{Name: "pacer cuts"}
	signals := stats.Series{Name: "flow signals (x0.1)"}
	var delivered, violations uint64
	failSeeds := []int64{}

	for i := 0; i < runs; i++ {
		seed := o.Seed + int64(i)
		v, err := chaos.RunOne(seed, chaos.Profile{})
		if err != nil {
			return Result{}, err
		}
		x := float64(i)
		reroutes.Append(x, float64(v.Reroutes))
		cuts.Append(x, float64(v.RateCuts))
		signals.Append(x, float64(v.FlowSignals)/10)
		delivered += v.Delivered
		if !v.OK() {
			violations += uint64(len(v.Violations))
			failSeeds = append(failSeeds, v.Seed)
		}
	}

	// Featured run for the snapshot artifact: rebuild the first seed's
	// world, replay its timeline, and save the pre-teardown snapshot.
	if o.SnapshotDir != "" {
		w, err := chaos.BuildWorld(o.Seed)
		if err != nil {
			return Result{}, err
		}
		sc := chaos.Fuzz(o.Seed, chaos.Profile{}, w.DCs, w.Links)
		eng, err := chaos.Bind(w.D, sc)
		if err != nil {
			return Result{}, err
		}
		eng.Schedule()
		horizon := sc.Horizon() + time.Second
		w.ScheduleTraffic(horizon)
		w.D.Run(horizon + 30*time.Second)
		if err := o.saveSnapshot("chaos", w.D); err != nil {
			return Result{}, err
		}
		for _, f := range w.Flows {
			f.Close()
		}
	}

	fig := stats.Figure{
		ID:     "chaos",
		Title:  "Control-loop activity per fuzzed chaos run (invariants checked each run)",
		XLabel: "run index",
		YLabel: "events",
	}
	fig.AddSeries(reroutes)
	fig.AddSeries(cuts)
	fig.AddSeries(signals)
	fig.AddNote("%d seeded runs (seeds %d..%d): %d packets delivered, %d invariant violations",
		runs, o.Seed, o.Seed+int64(runs)-1, delivered, violations)
	if len(failSeeds) > 0 {
		fig.AddNote("FAILING SEEDS %v — reproduce with: jqos-chaos -runs 1 -seed <s> -v", failSeeds)
	} else {
		fig.AddNote("all runs reconverged, drained, balanced accounting, and tore down leak-free")
	}
	return Result{Figures: []stats.Figure{fig}}, nil
}
