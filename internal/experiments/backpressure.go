package experiments

import (
	"time"

	"jqos"
	"jqos/internal/core"
	"jqos/internal/dataset"
	"jqos/internal/stats"
	"jqos/internal/telemetry"
)

func init() {
	register(Experiment{
		ID:    "backpressure",
		Title: "Congestion feedback paces greedy senders before the egress queue drops",
		Run:   runBackpressure,
	})
}

// runBackpressure demonstrates the congestion-feedback plane — the case
// PR 4's scheduler alone cannot fix: the contention is INSIDE one
// class. One 1 MB/s inter-DC link; two greedy forwarding-class flows,
// each with an individually honorable 600 kB/s admission contract,
// together oversubscribe the forwarding class's share, so with the
// scheduler alone their shared class queue sits pinned at its byte cap
// — every arrival (the interactive flow's packets included) risks a
// tail-drop, and the standing backlog eats the interactive budget.
// With Config.Feedback the queue's watermark transitions reach the
// ingress within ~10 ms, the greedy flows' AIMD pacers cut toward the
// class share and recover additively, and the queue oscillates in the
// watermark band: the interactive budget holds and the class's egress
// drops all but vanish — losses move to the ingress (admission drops),
// where they cost neither queue space nor billable egress.
func runBackpressure(o Options) (Result, error) {
	span := 6 * time.Second
	if o.Quick {
		span = 3 * time.Second
	}
	const (
		capacity = 1_000_000 // 1 MB/s shared inter-DC link
		budget   = 80 * time.Millisecond
		bucket   = 200 * time.Millisecond
		rate     = 600_000 // per-greedy-flow admission contract
	)

	type outcome struct {
		latency    stats.Series
		sent       uint64
		onTime     uint64
		worst      time.Duration
		classDrops uint64 // forwarding-class egress tail-drops
		admDrops   uint64 // greedy ingress admission drops
		pacedKB    uint64
		fb         telemetry.FeedbackSnapshot
	}

	run := func(name string, withFeedback bool) (outcome, error) {
		var out outcome
		cfg := jqos.DefaultConfig()
		cfg.UpgradeInterval = 0
		cfg.LinkCapacity = capacity
		cfg.Scheduler = jqos.SchedulerConfig{
			Weights: map[jqos.Service]int{
				jqos.ServiceForwarding: 8,
				jqos.ServiceCaching:    1,
			},
			QueueBytes: 64 << 10,
			// A low watermark band keeps the paced queue shallow: Hot
			// fires at 32 kB (~36 ms of link time), well before the cap.
			LowWatermark:  0.125,
			HighWatermark: 0.5,
		}
		cfg.Feedback.Enabled = withFeedback
		d := jqos.NewDeploymentWithConfig(o.Seed, cfg)
		dc1 := d.AddDC("us-east", dataset.RegionUSEast)
		dc2 := d.AddDC("eu-west", dataset.RegionEU)
		d.ConnectDCs(dc1, dc2, 20*time.Millisecond)
		d.Network().LinkBetween(dc1, dc2).Rate = capacity
		d.Network().LinkBetween(dc2, dc1).Rate = capacity

		// Two greedy forwarding-class flows with Rate contracts. Each
		// contract fits the class's weighted share (8/10 of 1 MB/s =
		// 800 kB/s), so scheduler-aware admission accepts both — but
		// their sum oversubscribes the class.
		var greedy []*jqos.Flow
		for i := 0; i < 2; i++ {
			gs := d.AddHost(dc1, 5*time.Millisecond)
			gd := d.AddHost(dc2, 8*time.Millisecond)
			gf, err := d.RegisterFlow(jqos.FlowSpec{
				Src: gs, Dst: gd, Budget: 500 * time.Millisecond,
				Service: jqos.ServiceForwarding, ServiceFixed: true,
				// Burst stays under the class queue cap (64 kB), or
				// scheduler-aware admission would reject the contract.
				Rate: rate, Burst: 16 << 10,
			})
			if err != nil {
				return out, err
			}
			greedy = append(greedy, gf)
		}
		is := d.AddHost(dc1, 5*time.Millisecond)
		id := d.AddHost(dc2, 8*time.Millisecond)
		inter, err := d.RegisterFlow(jqos.FlowSpec{
			Src: is, Dst: id, Budget: budget,
			Service: jqos.ServiceForwarding, ServiceFixed: true,
		})
		if err != nil {
			return out, err
		}

		nBuckets := int(span / bucket)
		sums := make([]time.Duration, nBuckets)
		counts := make([]int, nBuckets)
		d.Host(id).SetDeliveryHandler(func(del core.Delivery) {
			lat := del.At - del.Packet.Sent
			if lat > out.worst {
				out.worst = lat
			}
			if b := int(del.Packet.Sent / bucket); b >= 0 && b < nBuckets {
				sums[b] += lat
				counts[b]++
			}
		})

		for i := 0; i < int(span/time.Millisecond); i++ {
			at := time.Duration(i) * time.Millisecond
			d.Sim().At(at, func() {
				greedy[0].Send(make([]byte, 1000))
				greedy[1].Send(make([]byte, 1000))
			})
			if i%5 == 0 {
				d.Sim().At(at, func() { inter.Send(make([]byte, 200)) })
			}
		}
		d.Run(2*span + 5*time.Second)

		m := inter.Metrics()
		out.sent, out.onTime = m.Sent, m.OnTime
		snap := d.Snapshot()
		if st, ok := snap.Queue(dc1, dc2); ok {
			out.classDrops = st.PerClass[jqos.ServiceForwarding].DroppedPackets
		}
		for _, gf := range greedy {
			gm := gf.Metrics()
			out.admDrops += gm.AdmissionDropped
			out.pacedKB += gm.PacedBytes / 1000
		}
		out.fb = snap.Feedback
		out.latency = stats.Series{Name: name}
		for b := 0; b < nBuckets; b++ {
			if counts[b] > 0 {
				mean := sums[b] / time.Duration(counts[b])
				out.latency.Append((time.Duration(b) * bucket).Seconds(),
					float64(mean)/float64(time.Millisecond))
			}
		}
		// The feedback run is the experiment's featured configuration:
		// persist its final snapshot (open flows included) before teardown.
		if withFeedback {
			if err := o.saveSnapshot("backpressure", d); err != nil {
				return out, err
			}
		}
		inter.Close()
		for _, gf := range greedy {
			gf.Close()
		}
		return out, nil
	}

	off, err := run("interactive latency, scheduler only (ms)", false)
	if err != nil {
		return Result{}, err
	}
	on, err := run("interactive latency, scheduler + feedback (ms)", true)
	if err != nil {
		return Result{}, err
	}

	fig := stats.Figure{
		ID:     "backpressure",
		Title:  "ECN-style backpressure holds an interactive budget with near-zero egress drops",
		XLabel: "send time (s)",
		YLabel: "mean delivery latency (ms)",
	}
	fig.AddSeries(on.latency)
	fig.AddSeries(off.latency)
	fig.AddNote("one 1 MB/s link; 2 greedy forwarding flows (600 kB/s contracts each) + interactive 40 kB/s, budget %v", budget)
	fig.AddNote("feedback ON:  interactive %d/%d on time (worst %.1f ms); forwarding-class egress drops %d; greedy admission drops %d; %d kB paced under cuts",
		on.onTime, on.sent, float64(on.worst)/float64(time.Millisecond), on.classDrops, on.admDrops, on.pacedKB)
	fig.AddNote("feedback OFF: interactive %d/%d on time (worst %.1f ms); forwarding-class egress drops %d — the class queue sat at its cap",
		off.onTime, off.sent, float64(off.worst)/float64(time.Millisecond), off.classDrops)
	fig.AddNote("signal plane: %d watermark flips in %d batches; %d rate cuts, %d recoveries; %d flow signals",
		on.fb.Transitions, on.fb.Batches, on.fb.RateCuts, on.fb.RateRecoveries, on.fb.FlowSignals)
	return Result{Figures: []stats.Figure{fig}}, nil
}
