package experiments

import (
	"math/rand"
	"time"

	"jqos"
	"jqos/internal/core"
	"jqos/internal/dataset"
	"jqos/internal/mobile"
	"jqos/internal/netem"
	"jqos/internal/overlay"
	"jqos/internal/stats"
)

func init() {
	register(Experiment{ID: "cost", Title: "Deployment cost: forwarding vs coding (§6.6)", Run: runCost})
	register(Experiment{ID: "k20", Title: "Coding overhead at k=20 concurrent streams (§6.6)", Run: runK20})
	register(Experiment{ID: "mobile", Title: "Mobile feasibility: uplink, energy, cloud RTT (§6.5)", Run: runMobile})
}

// runCost reproduces the §6.6 back-of-the-envelope: 150 concurrent Skype
// calls through a 2-node overlay, forwarding vs coding at r = 1/16.
func runCost(o Options) (Result, error) {
	m := overlay.DefaultCostModel
	users := stats.Series{Name: "forwarding $/h"}
	codingSeries := stats.Series{Name: "coding r=1/16 $/h"}
	for _, n := range []int{10, 50, 100, 150, 300, 600} {
		fwd, cod := m.DeploymentCost(n, 1.0/16)
		users.Append(float64(n), fwd)
		codingSeries.Append(float64(n), cod)
	}
	fig := stats.Figure{
		ID:     "cost",
		Title:  "Hourly bandwidth cost vs concurrent calls",
		XLabel: "concurrent calls",
		YLabel: "$/hour",
	}
	fig.AddSeries(users)
	fig.AddSeries(codingSeries)
	fwd150, cod150 := m.DeploymentCost(150, 1.0/16)
	fig.AddNote("paper: forwarding $17.60/h vs coding $1.10/h for 150 calls (16x)")
	fig.AddNote("measured: forwarding $%.2f/h vs coding $%.2f/h (%.0fx)", fwd150, cod150, fwd150/cod150)
	return Result{Figures: []stats.Figure{fig}}, nil
}

// runK20 reproduces the §6.6 Emulab check: 20 concurrent streams with
// r = 2/20 recover >92% of losses under the Google loss model at ~10%
// overhead.
func runK20(o Options) (Result, error) {
	cfg := jqos.DefaultConfig()
	cfg.Encoder.K = 20
	cfg.Encoder.CrossParity = 2
	cfg.Encoder.InBlock = 0
	cfg.Encoder.CrossQueues = 2
	cfg.Encoder.CrossTimeout = 150 * time.Millisecond // let k=20 batches fill
	cfg.UpgradeInterval = 0
	d := jqos.NewDeploymentWithConfig(o.Seed, cfg)
	dc1 := d.AddDC("dc1", dataset.RegionUSEast)
	dc2 := d.AddDC("dc2", dataset.RegionEU)
	d.ConnectDCs(dc1, dc2, 40*time.Millisecond)

	packets := 2000
	if o.Quick {
		packets = 400
	}
	type state struct {
		direct    []bool
		recovered []bool
	}
	states := make([]*state, 20)
	for i := 0; i < 20; i++ {
		st := &state{direct: make([]bool, packets+1), recovered: make([]bool, packets+1)}
		states[i] = st
		src := d.AddHost(dc1, 5*time.Millisecond)
		dst := d.AddHost(dc2, 8*time.Millisecond)
		d.SetDirectPath(src, dst,
			netem.NormalJitter{Base: 50 * time.Millisecond, Sigma: time.Millisecond, Floor: 40 * time.Millisecond},
			netem.NewGoogleBurst())
		f, err := d.RegisterFlow(jqos.FlowSpec{
			Src: src, Dst: dst, Budget: time.Hour,
			Service: jqos.ServiceCoding, ServiceFixed: true,
		})
		if err != nil {
			return Result{}, err
		}
		d.Host(dst).SetDeliveryHandler(func(del core.Delivery) {
			seq := int(del.Packet.ID.Seq)
			if seq < 1 || seq > packets {
				return
			}
			if del.Recovered {
				st.recovered[seq] = true
			} else {
				st.direct[seq] = true
			}
		})
		for k := 0; k < packets; k++ {
			at := time.Duration(i)*2*time.Millisecond + time.Duration(k)*40*time.Millisecond
			d.Sim().At(at, func() { f.Send(make([]byte, 512)) })
		}
	}
	d.Run(time.Duration(packets)*40*time.Millisecond + 20*time.Second)

	lost, recovered := 0, 0
	for _, st := range states {
		for seq := 1; seq <= packets; seq++ {
			if !st.direct[seq] {
				lost++
				if st.recovered[seq] {
					recovered++
				}
			}
		}
	}
	encStats := d.DC(dc1).Encoder().Stats()
	pktOverhead := float64(encStats.CrossCoded) / float64(encStats.DataPackets)
	rate := 0.0
	if lost > 0 {
		rate = 100 * float64(recovered) / float64(lost)
	}
	var bar stats.Series
	bar.Name = "recovery %"
	bar.Append(20, rate)
	fig := stats.Figure{
		ID:     "k20",
		Title:  "k=20, r=2/20 under the Google loss model",
		XLabel: "concurrent streams",
		YLabel: "recovery (%)",
	}
	fig.AddSeries(bar)
	fig.AddNote("paper: >92%% of lost packets recovered at ~10%% coding overhead")
	fig.AddNote("measured: %.0f%% of %d losses recovered; packet overhead %.0f%% (bytes %.0f%%)",
		rate, lost, 100*pktOverhead, 100*encStats.Overhead())
	return Result{Figures: []stats.Figure{fig}}, nil
}

// runMobile reproduces the §6.5 feasibility checks.
func runMobile(o Options) (Result, error) {
	rng := rand.New(rand.NewSource(o.Seed))
	n := 1000
	if o.Quick {
		n = 300
	}
	fig := stats.Figure{
		ID:     "mobile",
		Title:  "LTE RTT to cloud providers",
		XLabel: "RTT (ms)",
		YLabel: "CDF",
	}
	feasibleAt250 := 0
	samples := 0
	for _, p := range mobile.Providers {
		s := mobile.PingCloud(rng, p, n)
		fig.AddSeries(s.CDF(string(p)))
		for _, v := range s.Values() {
			samples++
			if mobile.RecoveryFeasible(v, 25*time.Millisecond, 250*time.Millisecond) {
				feasibleAt250++
			}
		}
	}
	// Uplink feasibility for duplicating an HD call.
	fits := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		if mobile.SampleUplink(rng).FitsDuplication(1.5) {
			fits++
		}
	}
	e := mobile.DefaultEnergy()
	plain := e.Drain(20*time.Minute, 1.5)
	dup := e.Drain(20*time.Minute, 3.0)
	fig.AddNote("paper: median RTT 50–60 ms, 50–100 ms through p90; duplication fits most uplinks; battery delta negligible")
	fig.AddNote("measured: recovery fits a 250 ms budget for %.0f%% of samples", 100*float64(feasibleAt250)/float64(samples))
	fig.AddNote("measured: duplicating 1.5 Mb/s fits %.0f%% of surveyed uplinks", 100*float64(fits)/trials)
	fig.AddNote("measured: 20-min call battery %.1f mAh vs %.1f mAh duplicated (+%.0f%%)",
		plain, dup, 100*(dup-plain)/plain)
	return Result{Figures: []stats.Figure{fig}}, nil
}
