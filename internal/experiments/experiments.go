// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each experiment is a named, seeded function returning
// one or more figures (CDF/CCDF series plus headline notes); the
// cmd/jqos-figures binary renders them as CSV and ASCII plots, and
// EXPERIMENTS.md records paper-reported vs measured values.
package experiments

import (
	"fmt"
	"sort"

	"jqos/internal/stats"
)

// Options controls an experiment run.
type Options struct {
	// Seed drives every random process; same seed → identical output.
	Seed int64
	// Quick shrinks workloads for CI/tests (fewer paths, shorter calls,
	// fewer requests). Figures keep their shape but with more noise.
	Quick bool
	// SnapshotDir, when set, makes deployment-based experiments write
	// their featured run's final telemetry snapshot (indented JSON, as
	// served by telemetry.Serve's /snapshot) to <dir>/<id>.json — the
	// artifacts CI uploads alongside the figures.
	SnapshotDir string
}

// Result is one experiment's output.
type Result struct {
	Figures []stats.Figure
}

// Experiment is a registered, runnable reproduction of one paper artifact.
type Experiment struct {
	ID    string // e.g. "7a", "8c", "cost"
	Title string
	Run   func(Options) (Result, error)
}

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns registered experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// msOf converts a duration-valued sample to milliseconds.
func msOf(d float64) float64 { return d / 1e6 }
