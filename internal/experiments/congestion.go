package experiments

import (
	"time"

	"jqos"
	"jqos/internal/core"
	"jqos/internal/dataset"
	"jqos/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "congestion",
		Title: "Interactive latency under bulk load with load-aware routing and admission (traffic engineering)",
		Run:   runCongestion,
	})
}

// runCongestion demonstrates the load-aware traffic-engineering layer:
// two equal-latency overlay branches; two bulk flows (one with a
// token-bucket admission contract) saturate the primary; the per-link
// meters report utilization, the controller inflates the hot branch's
// weight past the knee, and an interactive flow registered mid-run is
// steered onto the idle branch — its tight budget survives. The figure
// tracks the hot link's utilization over time plus the interactive
// flow's per-bucket latency.
func runCongestion(o Options) (Result, error) {
	cfg := jqos.DefaultConfig()
	cfg.UpgradeInterval = 0
	cfg.LinkCapacity = 1_000_000 // 1 MB/s accounting capacity per link
	d := jqos.NewDeploymentWithConfig(o.Seed, cfg)
	dc1 := d.AddDC("us-east", dataset.RegionUSEast)
	dc2 := d.AddDC("us-west", dataset.RegionUSWest)
	dc3 := d.AddDC("eu-west", dataset.RegionEU)
	dc4 := d.AddDC("ap-south", dataset.RegionAsia)
	d.ConnectDCs(dc1, dc2, 20*time.Millisecond)
	d.ConnectDCs(dc2, dc4, 20*time.Millisecond)
	d.ConnectDCs(dc1, dc3, 20*time.Millisecond)
	d.ConnectDCs(dc3, dc4, 20*time.Millisecond)

	span := 6 * time.Second
	if o.Quick {
		span = 4 * time.Second
	}
	interAt := span / 3

	// Bulk pair: pinned to the primary branch so they keep loading it
	// after the shared tables move away. The second carries a 200 kB/s
	// admission contract — its excess never leaves the ingress.
	mkBulk := func(rate int64) (*jqos.Flow, error) {
		bs := d.AddHost(dc1, 5*time.Millisecond)
		bd := d.AddHost(dc4, 8*time.Millisecond)
		return d.RegisterFlow(jqos.FlowSpec{
			Src: bs, Dst: bd, Budget: 500 * time.Millisecond,
			Service: jqos.ServiceForwarding, ServiceFixed: true,
			Path: jqos.PathPolicy{Kind: jqos.PathPinned, Alternate: 0},
			Rate: rate,
		})
	}
	bulk1, err := mkBulk(0)
	if err != nil {
		return Result{}, err
	}
	bulk2, err := mkBulk(200_000)
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < int(span/time.Millisecond); i++ {
		at := time.Duration(i) * time.Millisecond
		d.Sim().At(at, func() { bulk1.Send(make([]byte, 1000)) })
		d.Sim().At(at, func() { bulk2.Send(make([]byte, 1000)) })
	}

	// Sample the hot link's utilization and weight inflation over time.
	util := stats.Series{Name: "dc1–dc2 utilization (%)"}
	const sample = 200 * time.Millisecond
	for at := sample; at <= span; at += sample {
		at := at
		d.Sim().At(at, func() {
			if ll, ok := d.Snapshot().Link(dc1, dc2); ok {
				util.Append(at.Seconds(), 100*ll.Utilization)
			}
		})
	}

	// The interactive flow registers after the bulk load is established.
	// Snapshot the congestion state at that moment: after the run drains
	// the bulk is gone, utilization has decayed, and the weights have
	// (correctly) deflated again — the end-state numbers would hide the
	// very mechanism under test.
	var inter *jqos.Flow
	var regPath []jqos.NodeID
	var regCongest, regUtil float64
	var regStats int
	is := d.AddHost(dc1, 5*time.Millisecond)
	id := d.AddHost(dc4, 8*time.Millisecond)
	const bucket = 200 * time.Millisecond
	nBuckets := int(span / bucket)
	sums := make([]time.Duration, nBuckets)
	counts := make([]int, nBuckets)
	d.Host(id).SetDeliveryHandler(func(del core.Delivery) {
		b := int(del.Packet.Sent / bucket)
		if b >= 0 && b < nBuckets {
			sums[b] += del.At - del.Packet.Sent
			counts[b]++
		}
	})
	d.Sim().At(interAt, func() {
		f, ferr := d.RegisterFlow(jqos.FlowSpec{
			Src: is, Dst: id, Budget: 100 * time.Millisecond,
		})
		if ferr != nil {
			err = ferr
			return
		}
		inter = f
		regPath = f.Path()
		hot := d.Routing().Graph().Link(dc1, dc2)
		regCongest, regUtil = hot.Congest, hot.Util
		regStats = int(d.Snapshot().Routing.CongestionReroutes)
		for i := 0; int(interAt)+i*int(5*time.Millisecond) < int(span); i++ {
			at := interAt + time.Duration(i)*5*time.Millisecond
			d.Sim().At(at, func() { f.Send(make([]byte, 200)) })
		}
	})
	d.Run(span + 5*time.Second)
	if err != nil {
		return Result{}, err
	}

	latency := stats.Series{Name: "interactive mean latency (ms)"}
	for b := 0; b < nBuckets; b++ {
		if counts[b] > 0 {
			mean := sums[b] / time.Duration(counts[b])
			latency.Append((time.Duration(b) * bucket).Seconds(), float64(mean)/float64(time.Millisecond))
		}
	}

	fig := stats.Figure{
		ID:     "congestion",
		Title:  "Load-aware spreading keeps an interactive budget under bulk load",
		XLabel: "time (s)",
		YLabel: "ms / %",
	}
	fig.AddSeries(latency)
	fig.AddSeries(util)
	st := d.Snapshot().Routing
	im := inter.Metrics()
	fig.AddNote("bulk saturates dc1–dc2–dc4 from t=0; interactive flow registers at %.1fs with a 100ms budget",
		interAt.Seconds())
	fig.AddNote("at registration: hot link weight ×%.1f at util %.2f, %d congestion reroutes so far "+
		"(run total %d, incl. post-bulk deflation; %d load reports accepted)",
		regCongest, regUtil, regStats, st.CongestionReroutes, st.UtilizationUpdates)
	fig.AddNote("interactive placed on %v (idle branch via node%d); delivered %d/%d within budget",
		regPath, dc3, im.OnTime, im.Sent)
	fig.AddNote("bulk2 contract 200kB/s: %d cloud copies dropped at ingress (bulk1 uncontracted: %d)",
		bulk2.Metrics().AdmissionDropped, bulk1.Metrics().AdmissionDropped)
	inter.Close()
	bulk1.Close()
	bulk2.Close()
	return Result{Figures: []stats.Figure{fig}}, nil
}
