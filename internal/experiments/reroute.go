package experiments

import (
	"time"

	"jqos"
	"jqos/internal/core"
	"jqos/internal/dataset"
	"jqos/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "reroute",
		Title: "Delivery latency across a mid-flow inter-DC link failure (routing control plane)",
		Run:   runReroute,
	})
}

// runReroute streams a forwarding flow over a sparse diamond overlay
// (primary 2-hop path 30 ms, alternate 50 ms; no direct sender↔receiver
// DC link), kills the primary's second link mid-flow, and measures
// per-bucket delivery latency and delivered fraction as the link-health
// monitor detects the failure and the controller re-pushes routes. This
// is the scenario the seed's full-mesh overlay could not express at all.
func runReroute(o Options) (Result, error) {
	cfg := jqos.DefaultConfig()
	cfg.UpgradeInterval = 0
	cfg.Monitor.ProbeInterval = 100 * time.Millisecond
	d := jqos.NewDeploymentWithConfig(o.Seed, cfg)
	dc1 := d.AddDC("us-east", dataset.RegionUSEast)
	dc2 := d.AddDC("us-west", dataset.RegionUSWest)
	dc3 := d.AddDC("eu-west", dataset.RegionEU)
	dc4 := d.AddDC("ap-south", dataset.RegionAsia)
	d.ConnectDCs(dc1, dc2, 15*time.Millisecond)
	d.ConnectDCs(dc2, dc4, 15*time.Millisecond)
	d.ConnectDCs(dc1, dc3, 25*time.Millisecond)
	d.ConnectDCs(dc3, dc4, 25*time.Millisecond)
	src := d.AddHost(dc1, 5*time.Millisecond)
	dst := d.AddHost(dc4, 8*time.Millisecond)

	span := 6 * time.Second
	spacing := 5 * time.Millisecond
	if o.Quick {
		span = 4 * time.Second
	}
	failAt := span / 3
	healAt := 2 * span / 3

	flow, err := d.RegisterFlow(jqos.FlowSpec{
		Src: src, Dst: dst, Budget: 300 * time.Millisecond,
		Service: jqos.ServiceForwarding, ServiceFixed: true,
	})
	if err != nil {
		return Result{}, err
	}

	const bucket = 200 * time.Millisecond
	nBuckets := int(span / bucket)
	sums := make([]time.Duration, nBuckets)
	counts := make([]int, nBuckets)
	d.Host(dst).SetDeliveryHandler(func(del core.Delivery) {
		b := int(del.Packet.Sent / bucket)
		if b >= 0 && b < nBuckets {
			sums[b] += del.At - del.Packet.Sent
			counts[b]++
		}
	})
	n := int(span / spacing)
	for i := 0; i < n; i++ {
		at := time.Duration(i) * spacing
		d.Sim().At(at, func() { flow.Send(make([]byte, 200)) })
	}
	d.Sim().At(failAt, func() { d.Link(dc2, dc4).Disconnect() })
	d.Sim().At(healAt, func() { d.Link(dc2, dc4).Set(15*time.Millisecond, 0) })
	d.Run(span + 5*time.Second)

	latency := stats.Series{Name: "mean delivery latency (ms)"}
	delivered := stats.Series{Name: "delivered (%)"}
	perBucket := int(bucket / spacing)
	for b := 0; b < nBuckets; b++ {
		x := (time.Duration(b) * bucket).Seconds()
		if counts[b] > 0 {
			mean := sums[b] / time.Duration(counts[b])
			latency.Append(x, float64(mean)/float64(time.Millisecond))
		}
		// Percent, so the outage dip shares an axis with the ms series.
		delivered.Append(x, 100*float64(counts[b])/float64(perBucket))
	}

	fig := stats.Figure{
		ID:     "reroute",
		Title:  "Forwarding-service latency across an inter-DC link failure",
		XLabel: "send time (s)",
		YLabel: "ms / %",
	}
	fig.AddSeries(latency)
	fig.AddSeries(delivered)
	st := d.Snapshot().Routing
	h, _ := d.LinkHealth(dc2, dc4)
	m := flow.Metrics()
	fig.AddNote("link dc2—dc4 fails at %.1fs, heals at %.1fs; probe interval %v",
		failAt.Seconds(), healAt.Seconds(), cfg.Monitor.ProbeInterval)
	fig.AddNote("control plane: %d recomputes, %d reroutes, %d failures, %d recoveries",
		st.Recomputes, st.Reroutes, st.LinkFailures, st.LinkRecoveries)
	fig.AddNote("delivered %d/%d (%.1f%% lost in the detection gap), %d/%d within the 300ms budget",
		m.Delivered, m.Sent, 100*m.LossRate(), m.OnTime, m.Delivered)
	fig.AddNote("final link health: state=%v, %d probes (%d lost)", h.State, h.ProbesSent, h.ProbesLost)
	return Result{Figures: []stats.Figure{fig}}, nil
}
