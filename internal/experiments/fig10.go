package experiments

import (
	"runtime"
	"time"

	"jqos/internal/coding"
	"jqos/internal/core"
	"jqos/internal/stats"
)

func init() {
	register(Experiment{ID: "10", Title: "Encoder throughput vs encoding threads (Kpps)", Run: runFig10})
}

// measurePipeline pushes packets through a coding.Pipeline with n workers
// and returns sustained throughput in Kpps. This is a real wall-clock
// measurement (the only experiment that is hardware-dependent): absolute
// numbers vary by machine, but the scaling shape is the paper's claim.
func measurePipeline(workers int, packets int, payload []byte) float64 {
	cfg := coding.DefaultEncoderConfig()
	cfg.K = 6
	cfg.InBlock = 5 // one coded packet per five data packets (§6.6)
	// Discard emits but walk them so the encode work is not elided.
	sink := func(es []core.Emit) {
		for range es {
		}
	}
	p, err := coding.NewPipeline(1, cfg, workers, 4096, sink)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	flows := workers * 8 // plenty of flows per worker to fill batches
	start := time.Now()
	for i := 0; i < packets; i++ {
		flow := core.FlowID(i%flows + 1)
		p.Submit(core.Time(i)*time.Microsecond, 2, 100, flow, core.Seq(i/flows+1), payload)
	}
	p.Close()
	elapsed := time.Since(start)
	return float64(packets) / elapsed.Seconds() / 1000
}

// MeasurePipeline exposes the Figure-10 throughput probe to the root
// benchmark harness (bench_test.go's BenchmarkFig10EncoderScaling).
func MeasurePipeline(workers, packets int, payload []byte) float64 {
	return measurePipeline(workers, packets, payload)
}

func runFig10(o Options) (Result, error) {
	packets := 400000
	maxWorkers := 8
	if o.Quick {
		packets = 40000
		maxWorkers = 4
	}
	payload := make([]byte, 512) // paper's accounting uses 512 B packets
	ingress := stats.Series{Name: "Ingress"}
	egress := stats.Series{Name: "Egress"}
	var rates []float64
	for w := 1; w <= maxWorkers; w++ {
		kpps := measurePipeline(w, packets, payload)
		rates = append(rates, kpps)
		ingress.Append(float64(w), kpps)
		// Egress = parity output rate ≈ ingress × α.
		alpha := coding.EncoderConfig{K: 6, CrossParity: 2, InBlock: 5, InParity: 1}.Alpha()
		egress.Append(float64(w), kpps*alpha)
	}
	fig := stats.Figure{
		ID:     "fig10",
		Title:  "Encoder throughput scaling",
		XLabel: "encoding threads",
		YLabel: "throughput (Kpps)",
	}
	fig.AddSeries(ingress)
	fig.AddSeries(egress)
	fig.AddNote("paper: ~65 Kpps per thread, linear to ~500 Kpps at 8 threads (Emulab: 32 hw threads)")
	fig.AddNote("measured on %d-CPU host: 1 thread %.0f Kpps, %d threads %.0f Kpps (%.1fx)",
		runtime.NumCPU(), rates[0], maxWorkers, rates[len(rates)-1], rates[len(rates)-1]/rates[0])
	if runtime.NumCPU() < maxWorkers {
		fig.AddNote("host has fewer CPUs than workers — wall-clock scaling saturates at %d; "+
			"the shared-nothing pipeline (flows pinned to workers) is what the paper's claim rests on",
			runtime.NumCPU())
	}
	return Result{Figures: []stats.Figure{fig}}, nil
}
