package experiments

import (
	"time"

	"jqos"
	"jqos/internal/core"
	"jqos/internal/dataset"
	"jqos/internal/stats"
	"jqos/internal/telemetry"
)

func init() {
	register(Experiment{
		ID:    "fairshare",
		Title: "Per-class weighted fair queueing protects interactive latency inside a saturated link",
		Run:   runFairshare,
	})
}

// runFairshare demonstrates intra-link scheduling — the case PR 3's
// admission and congestion-aware rerouting cannot help: ONE inter-DC
// link, shared by an interactive flow (forwarding class) and two bulk
// flows (caching class) that together offer 2× the link capacity. There
// is no alternate path to spread to and no per-flow contract to police,
// so with the legacy FIFO the bulk backlog queues ahead of every
// interactive packet and the budget dies. With Config.Scheduler's DRR
// the interactive class preempts bulk inside the link: its queue stays
// empty, its budget holds, and the bulk classes absorb the loss as
// tail-drops surfaced via FlowObserver.OnEgressDrop.
func runFairshare(o Options) (Result, error) {
	span := 6 * time.Second
	if o.Quick {
		span = 3 * time.Second
	}
	const (
		capacity = 1_000_000 // 1 MB/s shared inter-DC link
		budget   = 100 * time.Millisecond
		bucket   = 200 * time.Millisecond
	)

	type outcome struct {
		latency  stats.Series
		sent     uint64
		onTime   uint64
		worst    time.Duration
		dropped  uint64 // bulk egress tail-drops
		sched    telemetry.QueueSnapshot
		schedOK  bool
		linkUtil float64
	}

	run := func(name string, weights map[jqos.Service]int) (outcome, error) {
		var out outcome
		cfg := jqos.DefaultConfig()
		cfg.UpgradeInterval = 0
		cfg.LinkCapacity = capacity
		if weights != nil {
			cfg.Scheduler = jqos.SchedulerConfig{
				Weights:    weights,
				QueueBytes: 64 << 10, // ~64 ms of link time per class queue
			}
		}
		d := jqos.NewDeploymentWithConfig(o.Seed, cfg)
		dc1 := d.AddDC("us-east", dataset.RegionUSEast)
		dc2 := d.AddDC("eu-west", dataset.RegionEU)
		d.ConnectDCs(dc1, dc2, 20*time.Millisecond)
		// The emulated link serializes at the same rate the accounting
		// capacity declares, so the legacy FIFO run queues for real.
		d.Network().LinkBetween(dc1, dc2).Rate = capacity
		d.Network().LinkBetween(dc2, dc1).Rate = capacity

		// Two bulk senders, caching class, no direct Internet path: all
		// their bytes cross dc1→dc2. Together they offer ~2 MB/s.
		var bulks []*jqos.Flow
		for i := 0; i < 2; i++ {
			bs := d.AddHost(dc1, 5*time.Millisecond)
			bd := d.AddHost(dc2, 8*time.Millisecond)
			bf, err := d.RegisterFlow(jqos.FlowSpec{
				Src: bs, Dst: bd, Budget: 500 * time.Millisecond,
				Service: jqos.ServiceCaching, ServiceFixed: true,
			})
			if err != nil {
				return out, err
			}
			bulks = append(bulks, bf)
		}
		// Interactive flow, forwarding class, overlay-only delivery.
		is := d.AddHost(dc1, 5*time.Millisecond)
		id := d.AddHost(dc2, 8*time.Millisecond)
		inter, err := d.RegisterFlow(jqos.FlowSpec{
			Src: is, Dst: id, Budget: budget,
			Service: jqos.ServiceForwarding, ServiceFixed: true,
		})
		if err != nil {
			return out, err
		}

		nBuckets := int(span / bucket)
		sums := make([]time.Duration, nBuckets)
		counts := make([]int, nBuckets)
		d.Host(id).SetDeliveryHandler(func(del core.Delivery) {
			lat := del.At - del.Packet.Sent
			if lat > out.worst {
				out.worst = lat
			}
			if b := int(del.Packet.Sent / bucket); b >= 0 && b < nBuckets {
				sums[b] += lat
				counts[b]++
			}
		})

		for i := 0; i < int(span/time.Millisecond); i++ {
			at := time.Duration(i) * time.Millisecond
			d.Sim().At(at, func() {
				bulks[0].Send(make([]byte, 1000))
				bulks[1].Send(make([]byte, 1000))
			})
			if i%5 == 0 {
				d.Sim().At(at, func() { inter.Send(make([]byte, 200)) })
			}
		}
		// Sample the shared link's utilization mid-run (dequeue-side
		// metering: never above capacity even at 2× offered load).
		d.Sim().At(span/2, func() {
			if ll, ok := d.Snapshot().Link(dc1, dc2); ok {
				out.linkUtil = ll.Utilization
			}
		})
		// Generous drain: the FIFO run's link backlog is span-sized.
		d.Run(2*span + 5*time.Second)

		m := inter.Metrics()
		out.sent, out.onTime = m.Sent, m.OnTime
		for _, bf := range bulks {
			out.dropped += bf.Metrics().EgressDropped
		}
		out.sched, out.schedOK = d.Snapshot().Queue(dc1, dc2)
		out.latency = stats.Series{Name: name}
		for b := 0; b < nBuckets; b++ {
			if counts[b] > 0 {
				mean := sums[b] / time.Duration(counts[b])
				out.latency.Append((time.Duration(b) * bucket).Seconds(),
					float64(mean)/float64(time.Millisecond))
			}
		}
		// The scheduled run is the experiment's featured configuration:
		// persist its final snapshot (open flows included) before teardown.
		if weights != nil {
			if err := o.saveSnapshot("fairshare", d); err != nil {
				return out, err
			}
		}
		inter.Close()
		for _, bf := range bulks {
			bf.Close()
		}
		return out, nil
	}

	fifo, err := run("interactive latency, legacy FIFO (ms)", nil)
	if err != nil {
		return Result{}, err
	}
	wfq, err := run("interactive latency, DRR 8:1 (ms)", map[jqos.Service]int{
		jqos.ServiceForwarding: 8,
		jqos.ServiceCaching:    1,
	})
	if err != nil {
		return Result{}, err
	}

	fig := stats.Figure{
		ID:     "fairshare",
		Title:  "DRR egress scheduling keeps an interactive budget inside a 2×-saturated link",
		XLabel: "send time (s)",
		YLabel: "mean delivery latency (ms)",
	}
	fig.AddSeries(wfq.latency)
	fig.AddSeries(fifo.latency)
	fig.AddNote("one 1 MB/s inter-DC link; 2 bulk flows offer 2 MB/s (caching class); interactive 40 kB/s (forwarding class), budget %v", budget)
	fig.AddNote("scheduler ON:  interactive %d/%d on time (worst %.1f ms); bulk egress tail-drops %d; link util %.2f",
		wfq.onTime, wfq.sent, float64(wfq.worst)/float64(time.Millisecond), wfq.dropped, wfq.linkUtil)
	fig.AddNote("scheduler OFF: interactive %d/%d on time (worst %.1f ms) — FIFO queueing eats the budget; link util %.2f",
		fifo.onTime, fifo.sent, float64(fifo.worst)/float64(time.Millisecond), fifo.linkUtil)
	if wfq.schedOK {
		fwd := wfq.sched.PerClass[jqos.ServiceForwarding]
		cch := wfq.sched.PerClass[jqos.ServiceCaching]
		fig.AddNote("dc1→dc2 scheduler: forwarding %d pkts out / %d dropped; caching %d out / %d dropped; %d deficit rounds",
			fwd.DequeuedPackets, fwd.DroppedPackets, cch.DequeuedPackets, cch.DroppedPackets, wfq.sched.Rounds)
	}
	return Result{Figures: []stats.Figure{fig}}, nil
}
