package experiments

import (
	"time"

	"jqos/internal/netem"
	"jqos/internal/stats"
	"jqos/internal/tcpsim"
)

func init() {
	register(Experiment{ID: "9b", Title: "TCP case study: flow completion time tail", Run: runFig9b})
}

// runTCPBatch executes n request/response exchanges and returns FCTs (s).
func runTCPBatch(seed int64, n int, shim tcpsim.Recovery) *stats.Sample {
	out := stats.NewSample(n)
	for i := 0; i < n; i++ {
		sim := netem.NewSimulator(seed + int64(i)*7919)
		cfg := tcpsim.DefaultConfig()
		// The Google study's loss model on the data direction (the
		// study measured server→client web-response loss; §6.4).
		cfg.DataLoss = netem.NewGoogleBurst()
		cfg.Shim = shim
		var fct time.Duration
		conn := tcpsim.New(sim, cfg, func(r tcpsim.Result) { fct = r.FCT })
		conn.Start()
		sim.Run()
		out.Add(fct.Seconds())
	}
	return out
}

func runFig9b(o Options) (Result, error) {
	n := 10000 // paper: 10 k requests per variant
	if o.Quick {
		n = 600
	}
	overlayExtra := 6 * time.Millisecond // overlay detour vs direct path

	internet := runTCPBatch(o.Seed, n, tcpsim.NoRecovery{})
	crwan := runTCPBatch(o.Seed, n, tcpsim.DefaultCRWAN())
	synack := runTCPBatch(o.Seed, n, tcpsim.SelectiveDup{
		Kinds: map[tcpsim.SegmentKind]bool{tcpsim.KindSYNACK: true},
		Extra: overlayExtra,
	})
	fullDup := runTCPBatch(o.Seed, n, tcpsim.SelectiveDup{
		Kinds: map[tcpsim.SegmentKind]bool{
			tcpsim.KindSYN: true, tcpsim.KindSYNACK: true, tcpsim.KindRequest: true,
			tcpsim.KindData: true, tcpsim.KindACK: true,
		},
		Extra: overlayExtra,
	})

	fig := stats.Figure{
		ID:     "fig9b",
		Title:  "TCP flow completion time (tail, y ≥ 0.90)",
		XLabel: "flow completion time (s)",
		YLabel: "CDF",
	}
	// The paper plots only the tail; emit full CDFs (CSV consumers can
	// zoom) but report tail headlines.
	fig.AddSeries(internet.CDF("Internet"))
	fig.AddSeries(crwan.CDF("CR-WAN"))
	fig.AddNote("paper: Internet tail stretches to ~9 s; J-QoS removes it by hiding losses from TCP")
	fig.AddNote("measured: p99.5 Internet %.2f s vs CR-WAN %.2f s; max %.2f s vs %.2f s",
		internet.Quantile(0.995), crwan.Quantile(0.995), internet.Max(), crwan.Max())

	// Selective-duplication ablation (§6.4): tail latency reduction at
	// the paper's tail point.
	tail := func(s *stats.Sample) float64 { return s.Quantile(0.995) }
	base := tail(internet)
	redSYN := 100 * (base - tail(synack)) / base
	redFull := 100 * (base - tail(fullDup)) / base
	fig.AddNote("paper: duplicating only SYN-ACKs cuts the tail ~33%%; full duplication ~83%%")
	fig.AddNote("measured tail reduction at p99.5: SYN-ACK-only %.0f%%, full duplication %.0f%%",
		redSYN, redFull)
	return Result{Figures: []stats.Figure{fig}}, nil
}
