package experiments

import (
	"math/rand"
	"time"

	"jqos"
	"jqos/internal/core"
	"jqos/internal/dataset"
	"jqos/internal/netem"
	"jqos/internal/stats"
	"jqos/internal/video"
)

func init() {
	register(Experiment{ID: "9a", Title: "Skype case study: PSNR CDFs under a 30 s outage", Run: runFig9a})
}

// videoScenario runs one conference call through a J-QoS deployment and
// scores per-frame PSNR.
type videoScenario struct {
	name string
	// service and options for the video flow.
	service    core.Service
	pathSwitch bool
	// mobileDelta inflates the receiver's δ (the CR-WAN-Mobile variant).
	mobileDelta bool
	// protect enables the 30 s outage on the direct path (all scenarios
	// use it; a lossless baseline is added separately).
	outage bool
}

type videoOutcome struct {
	psnr *stats.Sample
	// cloud accounting for the bandwidth-comparison headline
	cloudPackets uint64
	cloudBytes   uint64
	goodFrames   float64
}

// runVideoScenarioDebug is runVideoScenario with component logging.
func runVideoScenarioDebug(seed int64, sc videoScenario, quick bool, t interface{ Logf(string, ...any) }) videoOutcome {
	return runVideoScenarioInner(seed, sc, quick, t)
}

func runVideoScenario(seed int64, sc videoScenario, quick bool) videoOutcome {
	return runVideoScenarioInner(seed, sc, quick, nil)
}

func runVideoScenarioInner(seed int64, sc videoScenario, quick bool, t interface{ Logf(string, ...any) }) videoOutcome {
	vcfg := video.DefaultConfig()
	callDur := 5 * time.Minute
	outageAt := 2 * time.Minute
	outageDur := 30 * time.Second
	if quick {
		callDur = 80 * time.Second
		outageAt = 30 * time.Second
		outageDur = 15 * time.Second
	}

	cfg := jqos.DefaultConfig()
	// §6.3: in-stream coding disabled (Skype has its own FEC); cross-
	// stream r = 1/4 with k = 4 (the Skype flow + three background
	// flows).
	cfg.Encoder.InBlock = 0
	cfg.Encoder.K = 4
	cfg.Encoder.CrossParity = 1
	// Per-application tuning (§5): a video frame bursts 2–5 packets of
	// one flow at once, so enough queues must be open to hold a whole
	// frame, and the batch timer must span the fill time of a frame's
	// worth of batches.
	cfg.Encoder.CrossQueues = 6
	cfg.Encoder.CrossTimeout = 80 * time.Millisecond
	cfg.UpgradeInterval = 0
	d := jqos.NewDeploymentWithConfig(seed, cfg)
	dc1 := d.AddDC("dc1", dataset.RegionUSEast)
	dc2 := d.AddDC("dc2", dataset.RegionEU)
	d.ConnectDCs(dc1, dc2, 40*time.Millisecond)

	src := d.AddHost(dc1, 5*time.Millisecond)
	deltaR := 8 * time.Millisecond
	if sc.mobileDelta {
		// Mobile receivers sit 50–100 ms RTT from the cloud (§6.5).
		deltaR = 35 * time.Millisecond
	}
	dst := d.AddHost(dc2, deltaR)

	var loss netem.LossModel
	if sc.outage {
		o := &netem.OutageSchedule{}
		o.AddOutage(outageAt, outageDur)
		loss = o
	}
	jitter := netem.DelayModel(netem.NormalJitter{
		Base: 50 * time.Millisecond, Sigma: 2 * time.Millisecond, Floor: 40 * time.Millisecond})
	if sc.mobileDelta {
		jitter = netem.NormalJitter{Base: 60 * time.Millisecond, Sigma: 8 * time.Millisecond, Floor: 45 * time.Millisecond}
	}
	d.SetDirectPath(src, dst, jitter, loss)

	flow, err := d.RegisterFlow(jqos.FlowSpec{
		Src: src, Dst: dst, Budget: time.Hour,
		Service: sc.service, ServiceFixed: true,
		// The baseline scenario pins plain best-effort Internet, which
		// a fixed spec must opt into explicitly.
		AllowInternet: sc.service == core.ServiceInternet,
		PathSwitch:    sc.pathSwitch,
	})
	if err != nil {
		panic("experiments: " + err.Error())
	}

	// Three ~200 Kb/s background UDP flows share the overlay so cross-
	// stream batches fill (paper's methodology).
	if sc.service == core.ServiceCoding {
		for b := 0; b < 3; b++ {
			bs := d.AddHost(dc1, 5*time.Millisecond)
			bd := d.AddHost(dc2, 8*time.Millisecond)
			d.SetDirectPath(bs, bd, netem.FixedDelay(50*time.Millisecond), nil)
			bg, err := d.RegisterFlow(jqos.FlowSpec{
				Src: bs, Dst: bd, Budget: time.Hour,
				Service: jqos.ServiceCoding, ServiceFixed: true,
			})
			if err != nil {
				panic("experiments: " + err.Error())
			}
			// Background rate ≈ the video stream's packet rate, so each
			// cross-stream batch carries one video packet and three
			// background packets (k = 4, Skype share = 1/4).
			n := int(callDur / (16 * time.Millisecond))
			for k := 0; k < n; k++ {
				at := time.Duration(b)*3*time.Millisecond + time.Duration(k)*16*time.Millisecond
				d.Sim().At(at, func() { bg.Send(make([]byte, 300)) })
			}
		}
	}

	// Generate the call and map flow seqs onto (frame, packet) pairs.
	vrng := rand.New(rand.NewSource(seed ^ 0x77))
	frames := vcfg.GenerateFrames(vrng, callDur)
	scorer := video.NewScorer(vcfg, frames)
	frameOf := make(map[jqos.Seq]int)
	frameIval := time.Second / time.Duration(vcfg.FPS)
	for _, f := range frames {
		f := f
		// Real conferencing senders pace a frame's packets across the
		// frame interval (the paper's measured Skype inter-arrivals sit
		// under the 25 ms NACK timer).
		pace := frameIval / time.Duration(f.Packets+1)
		for p := 0; p < f.Packets; p++ {
			d.Sim().At(f.SendAt+time.Duration(p)*pace, func() {
				seq := flow.Send(make([]byte, vcfg.PacketSize))
				frameOf[seq] = f.ID
			})
		}
	}
	d.Host(dst).SetDeliveryHandler(func(del core.Delivery) {
		if fid, ok := frameOf[del.Packet.ID.Seq]; ok {
			scorer.OnPacket(fid, del.Packet.Sent, del.At)
		}
	})

	// Cloud accounting, per the paper's method: the inter-DC leg is
	// shared by all coded flows (attributed by the video stream's share
	// of encoded data), while DC2 egress toward the video receiver is
	// attributed in full.
	var interPkts, interBytes, toRcvrPkts, toRcvrBytes uint64
	d.Network().Tap = func(from, to core.NodeID, size int) {
		switch {
		case from == dc1 && to == dc2:
			interPkts++
			interBytes += uint64(size)
		case from == dc2 && to == dst:
			toRcvrPkts++
			toRcvrBytes += uint64(size)
		}
	}

	d.Run(callDur + 20*time.Second)
	share := 1.0
	if sc.service == core.ServiceCoding {
		if enc := d.DC(dc1).Encoder().Stats(); enc.DataPackets > 0 {
			share = float64(flow.Metrics().Sent) / float64(enc.DataPackets)
		}
	}
	if t != nil {
		enc := d.DC(dc1).Encoder().Stats()
		t.Logf("%s: inter=%d/%dB toRcvr=%d/%dB share=%.3f videoSent=%d encData=%d batches=%d parity=%d evicted=%d timerFlush=%d",
			sc.name, interPkts, interBytes, toRcvrPkts, toRcvrBytes, share,
			flow.Metrics().Sent, enc.DataPackets, enc.CrossBatches, enc.CrossCoded, enc.Evicted, enc.TimerFlushes)
	}
	return videoOutcome{
		psnr:         scorer.PSNRs(rand.New(rand.NewSource(seed ^ 0x99))),
		cloudPackets: uint64(float64(interPkts)*share) + toRcvrPkts,
		cloudBytes:   uint64(float64(interBytes)*share) + toRcvrBytes,
		goodFrames:   scorer.GoodFrameFraction(),
	}
}

func runFig9a(o Options) (Result, error) {
	scenarios := []videoScenario{
		{name: "Internet", service: core.ServiceInternet, outage: true},
		{name: "Fwd", service: core.ServiceForwarding, outage: true},
		{name: "CR-WAN", service: core.ServiceCoding, outage: true},
		{name: "CR-WAN-Mobile", service: core.ServiceCoding, outage: true, mobileDelta: true},
	}
	fig := stats.Figure{
		ID:     "fig9a",
		Title:  "Skype QoE under a 30 s outage",
		XLabel: "PSNR (dB)",
		YLabel: "CDF",
	}
	outcomes := map[string]videoOutcome{}
	for _, sc := range scenarios {
		out := runVideoScenario(o.Seed, sc, o.Quick)
		outcomes[sc.name] = out
		fig.AddSeries(out.psnr.CDF(sc.name))
	}
	fig.AddNote("paper: forwarding preserves QoE through the outage; CR-WAN matches it; Internet degrades")
	fig.AddNote("measured good-frame fraction: Internet %.2f, Fwd %.2f, CR-WAN %.2f, Mobile %.2f",
		outcomes["Internet"].goodFrames, outcomes["Fwd"].goodFrames,
		outcomes["CR-WAN"].goodFrames, outcomes["CR-WAN-Mobile"].goodFrames)
	fwd, cr := outcomes["Fwd"], outcomes["CR-WAN"]
	if fwd.cloudPackets > 0 && fwd.cloudBytes > 0 {
		fig.AddNote("paper: CR-WAN used 13.4%% of the packets and 13.6%% of the bytes of forwarding")
		fig.AddNote("measured cloud usage, CR-WAN/forwarding (Skype-attributed): %.1f%% packets, %.1f%% bytes",
			100*float64(cr.cloudPackets)/float64(fwd.cloudPackets),
			100*float64(cr.cloudBytes)/float64(fwd.cloudBytes))
	}
	return Result{Figures: []stats.Figure{fig}}, nil
}
