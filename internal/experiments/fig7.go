package experiments

import (
	"jqos/internal/dataset"
	"jqos/internal/stats"
)

func init() {
	register(Experiment{ID: "7a", Title: "End-to-end packet delivery latency by service (CDF)", Run: runFig7a})
	register(Experiment{ID: "7b", Title: "Recovery delay as a fraction of RTT (CDF)", Run: runFig7b})
	register(Experiment{ID: "7c", Title: "End host to DC latency δ, EU receivers (CDF)", Run: runFig7c})
	register(Experiment{ID: "7d", Title: "North-EU latency to nearest DC across eras (CDF)", Run: runFig7d})
}

func feasibilityPaths(o Options) []dataset.FeasibilityPath {
	n := 6250 // paper's path count
	if o.Quick {
		n = 500
	}
	return dataset.GenerateFeasibility(o.Seed, n)
}

// runFig7a computes the §6.1 feasibility CDFs: Internet y, forwarding
// x+δS+δR, caching y+2δR+Δ, coding y+2δR+2δmed+Δ.
func runFig7a(o Options) (Result, error) {
	paths := feasibilityPaths(o)
	var internet, fwd, cch, cod stats.Sample
	for _, p := range paths {
		internet.Add(msOf(float64(p.Direct)))
		fwd.Add(msOf(float64(p.ForwardingDelay())))
		cch.Add(msOf(float64(p.CachingDelay())))
		cod.Add(msOf(float64(p.CodingDelay())))
	}
	fig := stats.Figure{
		ID:     "fig7a",
		Title:  "End-to-end delivery latency by service",
		XLabel: "source to destination delay (ms)",
		YLabel: "CDF",
	}
	fig.AddSeries(internet.CDF("Internet"))
	fig.AddSeries(fwd.CDF("Fwd"))
	fig.AddSeries(cch.CDF("Cache"))
	fig.AddSeries(cod.CDF("Coding"))
	fig.AddNote("paper: coding/caching deliver within 150 ms for 95%% of paths")
	fig.AddNote("measured: caching p95 = %.0f ms, coding p95 = %.0f ms",
		cch.Quantile(0.95), cod.Quantile(0.95))
	fig.AddNote("measured: internet p99 = %.0f ms vs forwarding p99 = %.0f ms (tail cut)",
		internet.Quantile(0.99), fwd.Quantile(0.99))
	return Result{Figures: []stats.Figure{fig}}, nil
}

// runFig7b compares on-demand recovery delay (pull = 2δR for caching,
// 2δR+2δmed for coding) against the path RTT.
func runFig7b(o Options) (Result, error) {
	paths := feasibilityPaths(o)
	var cch, cod stats.Sample
	for _, p := range paths {
		rtt := float64(p.RTT())
		cch.Add(float64(2*p.DeltaR+p.WaitDelta()) / rtt)
		cod.Add(float64(2*p.DeltaR+2*p.DeltaRMedian+p.WaitDelta()) / rtt)
	}
	fig := stats.Figure{
		ID:     "fig7b",
		Title:  "Recovery delay / RTT",
		XLabel: "recovery delay / RTT",
		YLabel: "CDF",
	}
	fig.AddSeries(cch.CDF("Caching"))
	fig.AddSeries(cod.CDF("Coding"))
	fig.AddNote("paper: 95%% of recoveries within 0.5×RTT; caching ~70%% within 0.25×RTT, coding ~10%%")
	fig.AddNote("measured: caching ≤0.25×RTT for %.0f%%, coding ≤0.25×RTT for %.0f%%",
		100*cch.FractionBelow(0.25), 100*cod.FractionBelow(0.25))
	fig.AddNote("measured: within 0.5×RTT — caching %.0f%%, coding %.0f%%",
		100*cch.FractionBelow(0.5), 100*cod.FractionBelow(0.5))
	return Result{Figures: []stats.Figure{fig}}, nil
}

// runFig7c plots the δ distribution for EU receivers.
func runFig7c(o Options) (Result, error) {
	paths := feasibilityPaths(o)
	var delta stats.Sample
	for _, p := range paths {
		delta.Add(msOf(float64(p.DeltaR)))
	}
	fig := stats.Figure{
		ID:     "fig7c",
		Title:  "End host to DC latency (EU)",
		XLabel: "δ (ms)",
		YLabel: "CDF",
	}
	fig.AddSeries(delta.CDF("Europe"))
	fig.AddNote("paper: 55%% of paths below 10 ms, 15%% above 20 ms")
	fig.AddNote("measured: %.0f%% below 10 ms, %.0f%% above 20 ms",
		100*delta.FractionBelow(10), 100*(1-delta.FractionBelow(20)))
	return Result{Figures: []stats.Figure{fig}}, nil
}

// runFig7d plots δ for North-EU hosts against each DC era.
func runFig7d(o Options) (Result, error) {
	hosts := 2000
	if o.Quick {
		hosts = 300
	}
	eras := dataset.GenerateEras(o.Seed, hosts)
	fig := stats.Figure{
		ID:     "fig7d",
		Title:  "North EU latency to nearest DC over DC generations",
		XLabel: "δ (ms)",
		YLabel: "CDF",
	}
	var medians []float64
	// Plot newest first to match the paper's legend order.
	for i := len(eras) - 1; i >= 0; i-- {
		var s stats.Sample
		for _, d := range eras[i].Deltas {
			s.Add(msOf(float64(d)))
		}
		fig.AddSeries(s.CDF(eras[i].Name))
		medians = append(medians, s.Median())
	}
	fig.AddNote("paper: δ decreases with each nearer DC generation")
	fig.AddNote("measured medians: Now %.0f ms, Frankfurt %.0f ms, Ireland %.0f ms",
		medians[0], medians[1], medians[2])
	return Result{Figures: []stats.Figure{fig}}, nil
}
