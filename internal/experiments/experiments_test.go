package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"jqos/internal/tcpsim"
)

func tcpsimNoRecovery() tcpsim.Recovery { return tcpsim.NoRecovery{} }
func tcpsimCRWAN() tcpsim.Recovery      { return tcpsim.DefaultCRWAN() }

func TestRegistryComplete(t *testing.T) {
	want := []string{"10", "7a", "7b", "7c", "7d", "8a", "8b", "8c", "8d", "8e",
		"9a", "9b", "backpressure", "chaos", "congestion", "cost", "fairshare", "k20", "mobile", "reroute", "tenancy"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, err := Find("8a"); err != nil {
		t.Error(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Error("unknown experiment found")
	}
}

// TestAllExperimentsQuick runs every experiment in quick mode and checks
// structural health: non-empty figures with sane series and notes.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep still takes a few seconds")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(Options{Seed: 7, Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Figures) == 0 {
				t.Fatal("no figures")
			}
			for _, fig := range res.Figures {
				if fig.ID == "" || fig.Title == "" {
					t.Errorf("figure missing metadata: %+v", fig.ID)
				}
				if len(fig.Series) == 0 {
					t.Error("figure has no series")
				}
				for _, s := range fig.Series {
					if len(s.Points) == 0 {
						t.Errorf("series %q empty", s.Name)
					}
				}
				if len(fig.Notes) == 0 {
					t.Error("figure has no headline notes")
				}
				var buf bytes.Buffer
				if err := fig.WriteCSV(&buf); err != nil {
					t.Errorf("CSV: %v", err)
				}
				if out := fig.ASCII(60, 12); !strings.Contains(out, fig.ID) {
					t.Errorf("ASCII render broken for %s", fig.ID)
				}
			}
		})
	}
}

func TestFig7aShape(t *testing.T) {
	res, err := runFig7a(Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	fig := res.Figures[0]
	series := map[string]int{}
	for i, s := range fig.Series {
		series[s.Name] = i
	}
	cache := fig.Series[series["Cache"]]
	coding := fig.Series[series["Coding"]]
	internet := fig.Series[series["Internet"]]
	// Paper headline: 95% of paths ≤150 ms for cache and coding.
	if x := cache.XAtY(0.95); x > 160 {
		t.Errorf("cache p95 = %.0f ms", x)
	}
	if x := coding.XAtY(0.95); x > 175 {
		t.Errorf("coding p95 = %.0f ms", x)
	}
	// Internet has a heavier tail than forwarding.
	fwd := fig.Series[series["Fwd"]]
	if internet.XAtY(0.99) <= fwd.XAtY(0.99) {
		t.Error("internet tail not heavier than forwarding")
	}
}

func TestFig7bShape(t *testing.T) {
	res, err := runFig7b(Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	fig := res.Figures[0]
	caching, coding := fig.Series[0], fig.Series[1]
	// Caching recovers strictly faster than coding; both mostly ≤0.5 RTT.
	if caching.YAt(0.25) <= coding.YAt(0.25) {
		t.Error("caching not faster than coding at 0.25 RTT")
	}
	if y := caching.YAt(0.5); y < 0.85 {
		t.Errorf("caching within 0.5 RTT = %.2f", y)
	}
}

func TestFig8aHeadline(t *testing.T) {
	outs := runFig8Deployment(3, fig8Defaults(true))
	lost, rec := 0, 0
	for _, po := range outs {
		lost += po.directLost
		rec += po.recoveredInT
	}
	if lost == 0 {
		t.Fatal("no losses simulated")
	}
	// Quick mode rarely samples outages, so recovery is near-complete
	// minus shared-fate access losses; anything below 60% means the
	// recovery machinery regressed.
	if rate := float64(rec) / float64(lost); rate < 0.6 {
		t.Errorf("recovery rate = %.2f (%d/%d)", rate, rec, lost)
	}
}

func TestFig9aOrdering(t *testing.T) {
	res, err := runFig9a(Options{Seed: 2, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	fig := res.Figures[0]
	// Compare the mass of bad frames (PSNR ≤ 30 dB): the outage freezes
	// a block of frames on the Internet curve, while forwarding and
	// CR-WAN ride it out.
	bad := map[string]float64{}
	for _, s := range fig.Series {
		bad[s.Name] = s.YAt(30)
	}
	if bad["Internet"] < 0.08 {
		t.Errorf("Internet bad-frame mass %.2f — outage invisible", bad["Internet"])
	}
	if bad["Fwd"] > bad["Internet"]/3 {
		t.Errorf("Fwd bad-frame mass %.2f vs Internet %.2f", bad["Fwd"], bad["Internet"])
	}
	// Quick mode's short outage keeps more boundary noise; demand a
	// clear improvement rather than the full-scale near-elimination.
	if bad["CR-WAN"] > bad["Internet"]*0.7 {
		t.Errorf("CR-WAN bad-frame mass %.2f vs Internet %.2f", bad["CR-WAN"], bad["Internet"])
	}
}

func TestFig9bTailReduction(t *testing.T) {
	internet := runTCPBatch(5, 400, tcpsimNoRecovery())
	crwan := runTCPBatch(5, 400, tcpsimCRWAN())
	if crwan.Quantile(0.995) >= internet.Quantile(0.995) {
		t.Errorf("no tail reduction: internet p99.5 %.2fs vs crwan %.2fs",
			internet.Quantile(0.995), crwan.Quantile(0.995))
	}
}

// TestFairshareHeadline asserts the experiment's acceptance contract:
// under 2× bulk saturation of a single shared link, the interactive
// class meets its delivery budget with the DRR scheduler on and misses
// it with the legacy FIFO.
func TestFairshareHeadline(t *testing.T) {
	res, err := runFairshare(Options{Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	fig := res.Figures[0]
	if len(fig.Series) != 2 {
		t.Fatalf("fairshare has %d series, want 2", len(fig.Series))
	}
	// Series 0 is the scheduled run, series 1 the FIFO run; compare
	// mean-latency tails: the FIFO run's last bucket must be far past
	// the 100 ms budget, the scheduled run's under it.
	wfq, fifo := fig.Series[0], fig.Series[1]
	wfqLast := wfq.Points[len(wfq.Points)-1].Y
	fifoLast := fifo.Points[len(fifo.Points)-1].Y
	if wfqLast > 100 {
		t.Errorf("scheduled run's late-bucket latency %.1f ms blows the 100 ms budget", wfqLast)
	}
	if fifoLast < 200 {
		t.Errorf("FIFO run's late-bucket latency %.1f ms — contention invisible", fifoLast)
	}
}

// TestBackpressureHeadline asserts the feedback acceptance contract on
// the shared saturated link: with congestion feedback the interactive
// flow meets ≥95% of its budget and its class's egress drops fall at
// least 10× versus the scheduler-only run.
func TestBackpressureHeadline(t *testing.T) {
	res, err := runBackpressure(Options{Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	notes := strings.Join(res.Figures[0].Notes, "\n")
	var onTime, sent, onDrops uint64
	var offOnTime, offSent, offDrops uint64
	var worst float64
	var admDrops, pacedKB uint64
	if _, err := fmt.Sscanf(findNote(t, notes, "feedback ON"),
		"feedback ON:  interactive %d/%d on time (worst %f ms); forwarding-class egress drops %d; greedy admission drops %d; %d kB paced under cuts",
		&onTime, &sent, &worst, &onDrops, &admDrops, &pacedKB); err != nil {
		t.Fatalf("ON note malformed: %v\n%s", err, notes)
	}
	if _, err := fmt.Sscanf(findNote(t, notes, "feedback OFF"),
		"feedback OFF: interactive %d/%d on time (worst %f ms); forwarding-class egress drops %d",
		&offOnTime, &offSent, &worst, &offDrops); err != nil {
		t.Fatalf("OFF note malformed: %v\n%s", err, notes)
	}
	if sent == 0 || offSent == 0 {
		t.Fatal("no interactive traffic")
	}
	if frac := float64(onTime) / float64(sent); frac < 0.95 {
		t.Errorf("feedback run on-time fraction %.2f (%d/%d), want ≥0.95", frac, onTime, sent)
	}
	if offDrops == 0 {
		t.Fatal("scheduler-only run saw no forwarding-class drops — contention invisible")
	}
	if onDrops*10 > offDrops {
		t.Errorf("class drops %d with feedback vs %d without — not a 10× reduction", onDrops, offDrops)
	}
	// The pressure moved to the ingress: the greedy flows were paced and
	// their excess died as admission drops, not egress drops.
	if admDrops == 0 || pacedKB == 0 {
		t.Errorf("no pacing visible: admission drops %d, paced %d kB", admDrops, pacedKB)
	}
}

// findNote returns the first note line containing marker.
func findNote(t *testing.T, notes, marker string) string {
	t.Helper()
	for _, line := range strings.Split(notes, "\n") {
		if strings.Contains(line, marker) {
			return line
		}
	}
	t.Fatalf("no note contains %q:\n%s", marker, notes)
	return ""
}

func TestCostHeadline(t *testing.T) {
	res, err := runCost(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Figures[0].Notes, "\n")
	if !strings.Contains(joined, "16x") {
		t.Errorf("cost ratio missing from notes:\n%s", joined)
	}
}

func TestK20Recovery(t *testing.T) {
	res, err := runK20(Options{Seed: 4, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	notes := strings.Join(res.Figures[0].Notes, "\n")
	if !strings.Contains(notes, "recovered") {
		t.Errorf("k20 notes: %s", notes)
	}
	// Recovery percentage lives in the single bar point.
	rate := res.Figures[0].Series[0].Points[0].Y
	if rate < 85 {
		t.Errorf("k=20 recovery = %.0f%%, want >85%%", rate)
	}
}
