package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"

	"jqos"
)

// saveSnapshot writes the deployment's final telemetry snapshot to
// <SnapshotDir>/<name>.json. A no-op without a SnapshotDir, so
// experiments call it unconditionally at the end of their featured run.
// The file holds exactly what telemetry.Serve's /snapshot endpoint
// serves, so jqos-stat -file reads it back.
func (o Options) saveSnapshot(name string, d *jqos.Deployment) error {
	if o.SnapshotDir == "" {
		return nil
	}
	data, err := json.MarshalIndent(d.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(o.SnapshotDir, name+".json"), append(data, '\n'), 0o644)
}
