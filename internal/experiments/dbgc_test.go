package experiments

import (
	"testing"

	"jqos/internal/core"
)

func TestDebug9aComponents(t *testing.T) {
	for _, sc := range []videoScenario{
		{name: "Fwd", service: core.ServiceForwarding, outage: true},
		{name: "CR-WAN", service: core.ServiceCoding, outage: true},
	} {
		out := runVideoScenarioDebug(2, sc, true, t)
		_ = out
	}
}
