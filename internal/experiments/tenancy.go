package experiments

import (
	"fmt"
	"time"

	"jqos"
	"jqos/internal/core"
	"jqos/internal/dataset"
	"jqos/internal/stats"
	"jqos/internal/telemetry"
)

func init() {
	register(Experiment{
		ID:    "tenancy",
		Title: "Tenant contracts: aggregate quotas, one backoff per customer, and intra-tenant sub-queue isolation",
		Run:   runTenancy,
	})
}

// runTenancy demonstrates the three tenancy guarantees, each verifiable
// from the snapshot's per-tenant slice:
//
//	a) a tenant of 1000 small flows is held to exactly the same
//	   aggregate admission quota (and cost basis) as a tenant pushing
//	   the same bytes through ONE flow — flow count is not a loophole;
//	b) on a shared Hot bottleneck a tenant's AIMD pacer is cut ONCE per
//	   delivered signal, however many member flows heard it — siblings
//	   back off as one sender, not N independent ones;
//	c) per-flow sub-queues (Scheduler.PerFlowQueues) keep a tenant's
//	   interactive flow on budget while the SAME tenant's bulk flow
//	   saturates their shared class queue.
func runTenancy(o Options) (Result, error) {
	fig := stats.Figure{
		ID:     "tenancy",
		Title:  "Tenant contracts: quota parity, per-tenant backoff, sub-queue isolation",
		XLabel: "send time (s)",
		YLabel: "interactive mean delivery latency (ms)",
	}

	if err := runQuotaParity(o, &fig); err != nil {
		return Result{}, err
	}
	if err := runSingleCut(o, &fig); err != nil {
		return Result{}, err
	}
	if err := runSubqueueIsolation(o, &fig); err != nil {
		return Result{}, err
	}
	return Result{Figures: []stats.Figure{fig}}, nil
}

// runQuotaParity (part a): two tenants with IDENTICAL contracts offer
// the same aggregate load — one through a swarm of small flows, one
// through a single flow — and the quota admits the same byte volume
// from each.
func runQuotaParity(o Options, fig *stats.Figure) error {
	span := 2 * time.Second
	nSwarm := 1000
	if o.Quick {
		nSwarm = 200
	}
	const (
		quota = 300_000 // B/s aggregate admission quota, per tenant
		burst = 16 << 10
	)

	cfg := jqos.DefaultConfig()
	cfg.UpgradeInterval = 0
	d := jqos.NewDeploymentWithConfig(o.Seed, cfg)
	dc1 := d.AddDC("us-east", dataset.RegionUSEast)
	dc2 := d.AddDC("eu-west", dataset.RegionEU)
	d.ConnectDCs(dc1, dc2, 20*time.Millisecond)

	contract := func(id jqos.TenantID, name string) error {
		return d.RegisterTenant(jqos.TenantContract{
			ID: id, Name: name, Rate: quota, Burst: burst,
			CostCeilingPerGB: 1.0,
		})
	}
	if err := contract(1, "swarm"); err != nil {
		return err
	}
	if err := contract(2, "solo"); err != nil {
		return err
	}

	// A few shared host pairs carry the whole swarm — the tenant model,
	// not the endpoint count, is what's under test.
	var pairs [][2]jqos.NodeID
	for i := 0; i < 4; i++ {
		pairs = append(pairs, [2]jqos.NodeID{
			d.AddHost(dc1, 5*time.Millisecond),
			d.AddHost(dc2, 8*time.Millisecond),
		})
	}
	mkFlow := func(tid jqos.TenantID, pair [2]jqos.NodeID) (*jqos.Flow, error) {
		return d.RegisterFlow(jqos.FlowSpec{
			Src: pair[0], Dst: pair[1], Budget: 500 * time.Millisecond,
			Service: jqos.ServiceForwarding, ServiceFixed: true,
			Tenant: tid,
		})
	}
	swarm := make([]*jqos.Flow, nSwarm)
	for i := range swarm {
		f, err := mkFlow(1, pairs[i%len(pairs)])
		if err != nil {
			return err
		}
		swarm[i] = f
	}
	solo, err := mkFlow(2, pairs[0])
	if err != nil {
		return err
	}

	// Identical offered load, ~600 kB/s per tenant against the 300 kB/s
	// quota: each swarm flow sends one 600 B packet per second (phase
	// spread across the swarm), the solo flow sends the same aggregate
	// by itself.
	pktBytes := 600 * 1000 / nSwarm // keeps the swarm's offered load fixed as nSwarm shrinks under -quick
	for t := time.Duration(0); t < span; t += time.Second {
		for i, f := range swarm {
			f := f
			// Phase-spread the swarm across the WHOLE second: clumping it
			// into the first nSwarm ms would turn identical offered load
			// into a burst the quota (fairly) refuses more of.
			at := t + time.Duration(i*1000/nSwarm)*time.Millisecond
			d.Sim().At(at, func() { f.Send(make([]byte, pktBytes)) })
		}
	}
	for i := 0; i < int(span/time.Millisecond); i++ {
		d.Sim().At(time.Duration(i)*time.Millisecond, func() { solo.Send(make([]byte, 600)) })
	}
	d.Run(span + 5*time.Second)

	s := d.Snapshot()
	if len(s.Tenants) != 2 {
		return fmt.Errorf("tenancy: snapshot carries %d tenants, want 2", len(s.Tenants))
	}
	admitted := func(ts telemetry.TenantSnapshot) uint64 {
		return ts.SentBytes - ts.QuotaDroppedBytes
	}
	sw, so := s.Tenants[0], s.Tenants[1]
	if sw.QuotaDropped == 0 || so.QuotaDropped == 0 {
		return fmt.Errorf("tenancy: a tenant never hit its quota (swarm %d, solo %d drops)",
			sw.QuotaDropped, so.QuotaDropped)
	}
	fig.AddNote("quota parity: swarm (%d flows) admitted %d kB of %d kB offered at $%.4f/GB; solo (1 flow) admitted %d kB of %d kB at $%.4f/GB — same %d kB/s contract binds both",
		sw.Flows, admitted(sw)/1000, sw.SentBytes/1000, sw.CostPerGB,
		admitted(so)/1000, so.SentBytes/1000, so.CostPerGB, quota/1000)
	for _, f := range swarm {
		f.Close()
	}
	solo.Close()
	return nil
}

// runSingleCut (part b): two contracted sibling flows share one tenant
// and one Hot bottleneck; the trace shows per-flow signal fan-out but
// exactly ONE tenant pacer cut per delivered signal.
func runSingleCut(o Options, fig *stats.Figure) error {
	span := 3 * time.Second
	if o.Quick {
		span = 2 * time.Second
	}
	const capacity = 1_000_000

	cfg := jqos.DefaultConfig()
	cfg.UpgradeInterval = 0
	cfg.LinkCapacity = capacity
	cfg.Scheduler = jqos.SchedulerConfig{
		Weights: map[jqos.Service]int{
			jqos.ServiceForwarding: 8,
			jqos.ServiceCaching:    1,
		},
		QueueBytes:    64 << 10,
		LowWatermark:  0.125,
		HighWatermark: 0.5,
	}
	cfg.Feedback.Enabled = true
	d := jqos.NewDeploymentWithConfig(o.Seed, cfg)
	dc1 := d.AddDC("us-east", dataset.RegionUSEast)
	dc2 := d.AddDC("eu-west", dataset.RegionEU)
	d.ConnectDCs(dc1, dc2, 20*time.Millisecond)
	d.Network().LinkBetween(dc1, dc2).Rate = capacity
	d.Network().LinkBetween(dc2, dc1).Rate = capacity

	// The aggregate quota (1.3 MB/s) admits everything the members'
	// individually-honorable 600 kB/s contracts pass — until the Hot
	// signal cuts the TENANT pacer and the pair backs off as one.
	if err := d.RegisterTenant(jqos.TenantContract{
		ID: 1, Name: "pair", Rate: 1_300_000, Burst: 32 << 10,
	}); err != nil {
		return err
	}
	var flows []*jqos.Flow
	for i := 0; i < 2; i++ {
		gs := d.AddHost(dc1, 5*time.Millisecond)
		gd := d.AddHost(dc2, 8*time.Millisecond)
		f, err := d.RegisterFlow(jqos.FlowSpec{
			Src: gs, Dst: gd, Budget: 500 * time.Millisecond,
			Service: jqos.ServiceForwarding, ServiceFixed: true,
			Rate: 600_000, Burst: 16 << 10,
			Tenant: 1,
		})
		if err != nil {
			return err
		}
		flows = append(flows, f)
	}
	for i := 0; i < int(span/time.Millisecond); i++ {
		at := time.Duration(i) * time.Millisecond
		d.Sim().At(at, func() {
			flows[0].Send(make([]byte, 1000))
			flows[1].Send(make([]byte, 1000))
		})
	}
	d.Run(span + 8*time.Second)

	// The per-(tenant, instant) cut count must be exactly one even
	// though both members heard the same signal.
	perInstant := map[time.Duration]int{}
	var signalEvents int
	for _, e := range d.TraceEvents() {
		switch e.Kind {
		case telemetry.KindTenantPacerCut:
			perInstant[e.At]++
		case telemetry.KindCongestionSignal:
			signalEvents++
		}
	}
	for at, n := range perInstant {
		if n > 1 {
			return fmt.Errorf("tenancy: %d tenant pacer cuts at %v — want one per tenant per signal", n, at)
		}
	}
	fb := d.Snapshot().Feedback
	if fb.TenantCuts == 0 {
		return fmt.Errorf("tenancy: shared Hot bottleneck never cut the tenant pacer")
	}
	fig.AddNote("per-tenant backoff: %d congestion signals fanned out to %d member-flow deliveries but %d tenant pacer cuts — one per signal, never one per member (per-flow cuts: %d, recoveries: %d+%d)",
		fb.Transitions, signalEvents, fb.TenantCuts, fb.RateCuts, fb.RateRecoveries, fb.TenantRecoveries)
	for _, f := range flows {
		f.Close()
	}
	return nil
}

// runSubqueueIsolation (part c): one tenant, one class, two flows — a
// saturating bulk flow and a 40 kB/s interactive flow. Run twice, with
// and without per-flow sub-queues; only the nested DRR keeps the
// interactive budget while the sibling fills the class queue.
func runSubqueueIsolation(o Options, fig *stats.Figure) error {
	span := 4 * time.Second
	if o.Quick {
		span = 2 * time.Second
	}
	const (
		capacity = 1_000_000
		budget   = 80 * time.Millisecond
		bucket   = 200 * time.Millisecond
	)

	type outcome struct {
		latency stats.Series
		tenant  telemetry.TenantSnapshot
		sent    uint64
		onTime  uint64
		worst   time.Duration
		victims uint64
	}
	run := func(name string, perFlow bool) (outcome, error) {
		var out outcome
		cfg := jqos.DefaultConfig()
		cfg.UpgradeInterval = 0
		cfg.LinkCapacity = capacity
		cfg.Scheduler = jqos.SchedulerConfig{
			Weights: map[jqos.Service]int{
				jqos.ServiceForwarding: 8,
				jqos.ServiceCaching:    1,
			},
			QueueBytes:    64 << 10,
			PerFlowQueues: perFlow,
		}
		d := jqos.NewDeploymentWithConfig(o.Seed, cfg)
		dc1 := d.AddDC("us-east", dataset.RegionUSEast)
		dc2 := d.AddDC("eu-west", dataset.RegionEU)
		d.ConnectDCs(dc1, dc2, 20*time.Millisecond)
		d.Network().LinkBetween(dc1, dc2).Rate = capacity
		d.Network().LinkBetween(dc2, dc1).Rate = capacity

		// One tenant, unmetered: the contention here is INSIDE the
		// tenant's own class share, where only the scheduler can help.
		if err := d.RegisterTenant(jqos.TenantContract{ID: 1, Name: "acme"}); err != nil {
			return out, err
		}
		bs := d.AddHost(dc1, 5*time.Millisecond)
		bd := d.AddHost(dc2, 8*time.Millisecond)
		bulk, err := d.RegisterFlow(jqos.FlowSpec{
			Src: bs, Dst: bd, Budget: 2 * time.Second,
			Service: jqos.ServiceForwarding, ServiceFixed: true,
			Tenant: 1,
		})
		if err != nil {
			return out, err
		}
		is := d.AddHost(dc1, 5*time.Millisecond)
		id := d.AddHost(dc2, 8*time.Millisecond)
		inter, err := d.RegisterFlow(jqos.FlowSpec{
			Src: is, Dst: id, Budget: budget,
			Service: jqos.ServiceForwarding, ServiceFixed: true,
			Tenant: 1,
		})
		if err != nil {
			return out, err
		}

		nBuckets := int(span / bucket)
		sums := make([]time.Duration, nBuckets)
		counts := make([]int, nBuckets)
		d.Host(id).SetDeliveryHandler(func(del core.Delivery) {
			lat := del.At - del.Packet.Sent
			if lat > out.worst {
				out.worst = lat
			}
			if b := int(del.Packet.Sent / bucket); b >= 0 && b < nBuckets {
				sums[b] += lat
				counts[b]++
			}
		})
		for i := 0; i < int(span/time.Millisecond); i++ {
			at := time.Duration(i) * time.Millisecond
			d.Sim().At(at, func() { bulk.Send(make([]byte, 1100)) })
			if i%5 == 0 {
				d.Sim().At(at, func() { inter.Send(make([]byte, 200)) })
			}
		}
		d.Run(span + 8*time.Second)

		m := inter.Metrics()
		out.sent, out.onTime = m.Sent, m.OnTime
		s := d.Snapshot()
		if st, ok := s.Queue(dc1, dc2); ok {
			out.victims = st.PerClass[jqos.ServiceForwarding].VictimDrops
		}
		if len(s.Tenants) == 1 {
			out.tenant = s.Tenants[0]
		}
		out.latency = stats.Series{Name: name}
		for b := 0; b < nBuckets; b++ {
			if counts[b] > 0 {
				mean := sums[b] / time.Duration(counts[b])
				out.latency.Append((time.Duration(b) * bucket).Seconds(),
					float64(mean)/float64(time.Millisecond))
			}
		}
		if perFlow {
			if err := o.saveSnapshot("tenancy", d); err != nil {
				return out, err
			}
		}
		bulk.Close()
		inter.Close()
		return out, nil
	}

	on, err := run("interactive latency, per-flow sub-queues (ms)", true)
	if err != nil {
		return err
	}
	off, err := run("interactive latency, single class FIFO (ms)", false)
	if err != nil {
		return err
	}
	fig.AddSeries(on.latency)
	fig.AddSeries(off.latency)
	fig.AddNote("sub-queue isolation: tenant 'acme' runs bulk ~1.1 MB/s + interactive 40 kB/s in one forwarding class (budget %v)", budget)
	fig.AddNote("  sub-queues ON:  interactive %d/%d on time (worst %.1f ms); %d victim-evicted packets came from the fat sibling's tail; tenant rollup %d/%d delivered",
		on.onTime, on.sent, float64(on.worst)/float64(time.Millisecond), on.victims,
		on.tenant.Delivered, on.tenant.Sent)
	fig.AddNote("  sub-queues OFF: interactive %d/%d on time (worst %.1f ms) — the shared FIFO's backlog ate the budget",
		off.onTime, off.sent, float64(off.worst)/float64(time.Millisecond))
	return nil
}
