package experiments

import (
	"math/rand"
	"time"

	"jqos"
	"jqos/internal/core"
	"jqos/internal/dataset"
	"jqos/internal/netem"
	"jqos/internal/stats"
)

func init() {
	register(Experiment{ID: "8a", Title: "CCDF of per-path recovery success (CR-WAN deployment)", Run: runFig8a})
	register(Experiment{ID: "8b", Title: "Loss-episode contribution by class (CDF)", Run: runFig8b})
	register(Experiment{ID: "8c", Title: "CR-WAN vs on-path FEC recovery increase (CDF)", Run: runFig8c})
	register(Experiment{ID: "8d", Title: "Recovery time / RTT by region (CDF)", Run: runFig8d})
	register(Experiment{ID: "8e", Title: "Recovery increase: 2 vs 1 cross-stream coded packets (CDF)", Run: runFig8e})
}

// pathOutcome is the measured record of one PlanetLab-like path after a
// deployment run.
type pathOutcome struct {
	path dataset.PLPath

	sent          int
	directLost    int       // packets that never arrived on the direct path
	recoveredInT  int       // recovered with recovery delay ≤ 1×RTT
	recoveredAll  int       // recovered at any delay
	recoveryRatio []float64 // recovery delay / RTT, per recovered packet
	episodes      []int     // direct-path loss episode lengths (packets)
	unrecovered   []int     // 0-based seq indices of losses never repaired in time
}

// successRate is the Fig 8a metric: lost packets recovered within one RTT.
func (p *pathOutcome) successRate() (float64, bool) {
	if p.directLost == 0 {
		return 0, false
	}
	return float64(p.recoveredInT) / float64(p.directLost), true
}

// fig8Params scales the deployment.
type fig8Params struct {
	paths       int
	onIntervals int
	onDur       time.Duration
	offDur      time.Duration
	spacing     time.Duration // packet spacing within ON (20 pps default)
	crossParity int
}

func fig8Defaults(quick bool) fig8Params {
	p := fig8Params{
		paths:       45,
		onIntervals: 4,
		onDur:       30 * time.Second,
		offDur:      10 * time.Second,
		spacing:     50 * time.Millisecond,
		crossParity: 2,
	}
	if quick {
		p.paths = 16
		p.onIntervals = 2
		p.onDur = 10 * time.Second
	}
	return p
}

// runFig8Deployment executes the CR-WAN deployment: paths grouped by
// region pair, each group one emulated 2-DC overlay with k concurrent
// flows (§6.2.1: r = 2/k, s = 1/5, loosely synchronized ON/OFF CBR).
func runFig8Deployment(seed int64, prm fig8Params) []*pathOutcome {
	paths := dataset.GeneratePlanetLab(seed, prm.paths)
	groups := map[string][]dataset.PLPath{}
	var order []string
	for _, p := range paths {
		key := p.PairName()
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], p)
	}
	var out []*pathOutcome
	for gi, key := range order {
		out = append(out, runFig8Group(seed+int64(gi)*101, prm, groups[key])...)
	}
	return out
}

// runFig8Group simulates one region-pair group sharing a DC1→DC2 overlay.
func runFig8Group(seed int64, prm fig8Params, group []dataset.PLPath) []*pathOutcome {
	cfg := jqos.DefaultConfig()
	cfg.Encoder.K = 6
	cfg.Encoder.CrossParity = prm.crossParity
	cfg.Encoder.InBlock = 5
	cfg.Encoder.InParity = 1
	cfg.UpgradeInterval = 0 // pin the coding service
	d := jqos.NewDeploymentWithConfig(seed, cfg)
	first := group[0]
	dc1 := d.AddDC("dc1-"+first.SrcRegion.String(), first.SrcRegion)
	dc2 := d.AddDC("dc2-"+first.DstRegion.String(), first.DstRegion)
	d.ConnectDCs(dc1, dc2, time.Duration(first.InterDC))

	rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
	horizon := time.Duration(prm.onIntervals) * (prm.onDur + prm.offDur)

	outs := make([]*pathOutcome, len(group))
	type runtimeState struct {
		sentAt    []core.Time
		direct    []bool
		recovered []core.Time // recovery delay per seq (−1 = none)
	}
	states := make([]*runtimeState, len(group))

	for i, p := range group {
		p := p
		po := &pathOutcome{path: p}
		outs[i] = po
		st := &runtimeState{}
		states[i] = st

		// The sender's first mile is shared by the direct packet and its
		// cloud copy: one decision kills both (shared fate).
		access := netem.NewSharedFate(netem.Bernoulli{P: p.AccessLoss})
		src := d.AddHost(dc1, time.Duration(p.DeltaS), jqos.WithAccessLossModel(access))
		// Receivers are PlanetLab-like: overloaded nodes straggle, so a
		// slice of their responses (cooperative replies included) carry
		// heavy-tail delays. This is what the second cross-stream coded
		// packet protects against (Figure 8e).
		dst := d.AddHost(dc2, time.Duration(p.DeltaR), jqos.WithAccessDelay(netem.HeavyTailJitter{
			Base:   time.Duration(p.DeltaR),
			Sigma:  time.Duration(p.DeltaR) / 10,
			PTail:  0.10,
			TailLo: 250 * time.Millisecond,
			Alpha:  1.5,
		}))
		loss := netem.Composite{
			access,
			netem.Bernoulli{P: p.Loss.PRandom},
			&netem.GilbertElliott{
				PGoodToBad: p.Loss.PBurstStart,
				PBadToGood: 1 / p.Loss.BurstMean,
				LossGood:   0,
				LossBad:    1,
			},
		}
		if p.Loss.HasOutages() {
			// The paper's campaign spans weeks; ours spans minutes.
			// Compress time so outage-prone paths see roughly the
			// per-sample outage exposure the deployment saw.
			const outageCompression = 25
			loss = append(loss, netem.RandomOutages(rng, horizon,
				p.Loss.OutagesPerHour/3600*outageCompression, p.Loss.OutageMin, p.Loss.OutageMax))
		}
		d.SetDirectPath(src, dst,
			netem.NormalJitter{Base: time.Duration(p.OneWay), Sigma: time.Duration(p.Jitter), Floor: time.Duration(p.OneWay) / 2},
			loss)
		flow, err := d.RegisterFlow(jqos.FlowSpec{
			Src: src, Dst: dst, Budget: time.Hour,
			Service: jqos.ServiceCoding, ServiceFixed: true,
		})
		if err != nil {
			panic("experiments: " + err.Error())
		}
		rtt := p.RTT()
		d.Host(dst).SetDeliveryHandler(func(del core.Delivery) {
			seq := int(del.Packet.ID.Seq) - 1
			if seq < 0 || seq >= len(st.direct) {
				return
			}
			if del.Recovered {
				if st.recovered[seq] < 0 {
					st.recovered[seq] = del.RecoveryDelay
					po.recoveryRatio = append(po.recoveryRatio,
						float64(del.RecoveryDelay)/float64(rtt))
				}
			} else {
				st.direct[seq] = true
			}
		})

		// ON/OFF CBR schedule, loosely synchronized across the group
		// (per-flow phase offsets).
		phase := time.Duration(i) * 7 * time.Millisecond
		total := int(prm.onDur / prm.spacing)
		for iv := 0; iv < prm.onIntervals; iv++ {
			base := time.Duration(iv)*(prm.onDur+prm.offDur) + phase
			for k := 0; k < total; k++ {
				at := base + time.Duration(k)*prm.spacing
				d.Sim().At(at, func() {
					flow.Send([]byte("cbr-probe-payload-200bytes-padding-padding-pad"))
					st.sentAt = append(st.sentAt, at)
					st.direct = append(st.direct, false)
					st.recovered = append(st.recovered, -1)
				})
			}
		}
	}

	d.Run(horizon + 10*time.Second)

	for i := range group {
		st, po := states[i], outs[i]
		rtt := po.path.RTT()
		po.sent = len(st.sentAt)
		run := 0
		for seq := 0; seq < po.sent; seq++ {
			if st.direct[seq] {
				if run > 0 {
					po.episodes = append(po.episodes, run)
					run = 0
				}
				continue
			}
			po.directLost++
			run++
			if st.recovered[seq] >= 0 {
				po.recoveredAll++
				if st.recovered[seq] <= rtt {
					po.recoveredInT++
				} else {
					po.unrecovered = append(po.unrecovered, seq)
				}
			} else {
				po.unrecovered = append(po.unrecovered, seq)
			}
		}
		if run > 0 {
			po.episodes = append(po.episodes, run)
		}
	}
	return outs
}

func runFig8a(o Options) (Result, error) {
	outs := runFig8Deployment(o.Seed, fig8Defaults(o.Quick))
	var perPath stats.Sample
	totalLost, totalRec := 0, 0
	pathsOver80 := 0
	counted := 0
	for _, po := range outs {
		rate, ok := po.successRate()
		if !ok {
			continue
		}
		counted++
		perPath.Add(rate * 100)
		totalLost += po.directLost
		totalRec += po.recoveredInT
		if rate > 0.8 {
			pathsOver80++
		}
	}
	fig := stats.Figure{
		ID:     "fig8a",
		Title:  "Per-path recovery success rate",
		XLabel: "recovery success rate (%)",
		YLabel: "CCDF",
	}
	fig.AddSeries(perPath.CCDF("PlanetLab-like paths"))
	overall := 0.0
	if totalLost > 0 {
		overall = 100 * float64(totalRec) / float64(totalLost)
	}
	fig.AddNote("paper: CR-WAN recovers 78%% of lost packets; 82%% of paths recover >80%%")
	fig.AddNote("measured: overall recovery %.0f%% (%d/%d losses); %.0f%% of %d lossy paths >80%%",
		overall, totalRec, totalLost, 100*float64(pathsOver80)/float64(max(counted, 1)), counted)
	return Result{Figures: []stats.Figure{fig}}, nil
}

// classifyEpisode buckets an episode length per the paper: random (1),
// multi-packet (2–14), outage (>14).
func classifyEpisode(n int) int {
	switch {
	case n <= 1:
		return 0
	case n <= 14:
		return 1
	default:
		return 2
	}
}

func runFig8b(o Options) (Result, error) {
	outs := runFig8Deployment(o.Seed, fig8Defaults(o.Quick))
	classes := [3]stats.Sample{}
	names := [3]string{"Random", "Multi", "Outage"}
	outagePaths, lossy := 0, 0
	for _, po := range outs {
		rate, ok := po.successRate()
		if !ok || rate <= 0.8 {
			continue // paper plots paths with >80% recovery
		}
		lossy++
		var byClass [3]int
		total := 0
		sawOutage := false
		for _, ep := range po.episodes {
			c := classifyEpisode(ep)
			byClass[c] += ep
			total += ep
			if c == 2 {
				sawOutage = true
			}
		}
		if sawOutage {
			outagePaths++
		}
		if total == 0 {
			continue
		}
		for c := 0; c < 3; c++ {
			classes[c].Add(100 * float64(byClass[c]) / float64(total))
		}
	}
	fig := stats.Figure{
		ID:     "fig8b",
		Title:  "Loss-episode contribution to loss rate (paths with >80% recovery)",
		XLabel: "loss rate contribution (%)",
		YLabel: "CDF",
	}
	for c := 0; c < 3; c++ {
		fig.AddSeries(classes[c].CDF(names[c]))
	}
	fig.AddNote("paper: all three classes present; 45%% of paths see 1–3 s outages")
	if lossy > 0 {
		fig.AddNote("measured: %.0f%% of plotted paths experienced outages", 100*float64(outagePaths)/float64(lossy))
	}
	return Result{Figures: []stats.Figure{fig}}, nil
}

// fecWhatIf estimates an on-path FEC scheme's recovery rate for a path:
// blocks of 5 data packets followed by `parity` parity packets, all subject
// to the path's own loss process (the paper's probe-replay analysis).
func fecWhatIf(seed int64, p dataset.PLPath, parity int, blocks int, spacing time.Duration) float64 {
	rng := rand.New(rand.NewSource(seed))
	loss := netem.Composite{
		netem.Bernoulli{P: p.Loss.PRandom},
		&netem.GilbertElliott{
			PGoodToBad: p.Loss.PBurstStart,
			PBadToGood: 1 / p.Loss.BurstMean,
			LossGood:   0,
			LossBad:    1,
		},
	}
	horizon := time.Duration(blocks*(5+parity)) * spacing
	if p.Loss.HasOutages() {
		loss = append(loss, netem.RandomOutages(rng, horizon,
			p.Loss.OutagesPerHour/3600, p.Loss.OutageMin, p.Loss.OutageMax))
	}
	now := core.Time(0)
	lost, recovered := 0, 0
	for b := 0; b < blocks; b++ {
		dataLost, paritySurvived := 0, 0
		for i := 0; i < 5; i++ {
			if loss.Lose(now, rng) {
				dataLost++
			}
			now += core.Time(spacing)
		}
		for i := 0; i < parity; i++ {
			if !loss.Lose(now, rng) {
				paritySurvived++
			}
			now += core.Time(spacing)
		}
		lost += dataLost
		if dataLost > 0 && dataLost <= paritySurvived {
			recovered += dataLost
		}
	}
	if lost == 0 {
		return 1
	}
	return float64(recovered) / float64(lost)
}

func runFig8c(o Options) (Result, error) {
	prm := fig8Defaults(o.Quick)
	outs := runFig8Deployment(o.Seed, prm)
	blocks := 40000
	if o.Quick {
		blocks = 5000
	}
	levels := []struct {
		name   string
		parity int
	}{{"20%", 1}, {"40%", 2}, {"100%", 5}}
	fig := stats.Figure{
		ID:     "fig8c",
		Title:  "Recovery-rate increase: CR-WAN vs on-path FEC",
		XLabel: "percentage increase in recovery",
		YLabel: "CDF",
		LogX:   true,
	}
	beaten := map[string]int{}
	lossy := 0
	for li, lv := range levels {
		var inc stats.Sample
		for pi, po := range outs {
			cr, ok := po.successRate()
			if !ok {
				continue
			}
			if li == 0 {
				lossy++
			}
			fec := fecWhatIf(o.Seed+int64(pi)*13+int64(li), po.path, lv.parity, blocks, prm.spacing)
			if fec < 0.005 {
				fec = 0.005 // avoid division blow-up on all-outage paths
			}
			pct := (cr - fec) / fec * 100
			if pct < 1 {
				pct = 1 // log-x floor (the paper's axis starts at 10¹)
			}
			inc.Add(pct)
			if cr > fec {
				beaten[lv.name]++
			}
		}
		fig.AddSeries(inc.CDF(lv.name))
	}
	fig.AddNote("paper: even vs 100%% overhead FEC, 90%% of paths have episodes only CR-WAN recovers")
	for _, lv := range levels {
		fig.AddNote("measured: CR-WAN beats %s-overhead FEC on %d paths", lv.name, beaten[lv.name])
	}
	return Result{Figures: []stats.Figure{fig}}, nil
}

func runFig8d(o Options) (Result, error) {
	outs := runFig8Deployment(o.Seed, fig8Defaults(o.Quick))
	groups := map[string]*stats.Sample{
		"US-EU": {}, "US-OC": {}, "EU-OC": {}, "Agg": {},
	}
	for _, po := range outs {
		g := po.path.RegionGroup()
		for _, ratio := range po.recoveryRatio {
			groups["Agg"].Add(ratio)
			if s, ok := groups[g]; ok {
				s.Add(ratio)
			}
		}
	}
	fig := stats.Figure{
		ID:     "fig8d",
		Title:  "Packet recovery time as a fraction of direct-path RTT",
		XLabel: "recovery time / RTT",
		YLabel: "CDF",
	}
	for _, name := range []string{"US-EU", "US-OC", "EU-OC", "Agg"} {
		if groups[name].Len() > 0 {
			fig.AddSeries(groups[name].CDF(name))
		}
	}
	agg := groups["Agg"]
	fig.AddNote("paper: 95%% of packets recovered within 0.5×RTT")
	if agg.Len() > 0 {
		fig.AddNote("measured: %.0f%% of recoveries within 0.5×RTT (n=%d)",
			100*agg.FractionBelow(0.5), agg.Len())
	}
	return Result{Figures: []stats.Figure{fig}}, nil
}

func runFig8e(o Options) (Result, error) {
	prm1 := fig8Defaults(o.Quick)
	prm1.crossParity = 1
	prm2 := fig8Defaults(o.Quick)
	prm2.crossParity = 2
	one := runFig8Deployment(o.Seed, prm1)
	two := runFig8Deployment(o.Seed, prm2)
	var inc stats.Sample
	improved := 0
	counted := 0
	for i := range one {
		r1, ok1 := one[i].successRate()
		r2, ok2 := two[i].successRate()
		if !ok1 || !ok2 {
			continue
		}
		counted++
		if r1 < 0.01 {
			r1 = 0.01
		}
		pct := (r2 - r1) / r1 * 100
		if pct < 0 {
			pct = 0
		}
		inc.Add(pct)
		if pct > 10 {
			improved++
		}
	}
	fig := stats.Figure{
		ID:     "fig8e",
		Title:  "Recovery increase with 2 vs 1 cross-stream coded packets",
		XLabel: "percentage increase in recovery",
		YLabel: "CDF",
	}
	fig.AddSeries(inc.CDF("PlanetLab-like paths"))
	fig.AddNote("paper: 60%% of paths gain >10%% recovery from the second coded packet")
	if counted > 0 {
		fig.AddNote("measured: %.0f%% of %d paths gain >10%%", 100*float64(improved)/float64(counted), counted)
	}
	return Result{Figures: []stats.Figure{fig}}, nil
}
