// Package tcpsim is an event-driven TCP model for the paper's web-transfer
// case study (§6.4): short request/response flows (12 B request, 50 KB
// response) over a 200 ms-RTT path with the Google study's bursty loss
// model. It reproduces the mechanisms that create the paper's latency tail
// — handshake retransmission timers, slow start, fast retransmit/SACK-style
// recovery, and RTO exponential backoff — and hosts a pluggable J-QoS shim
// that repairs lost segments below the transport (the prototype's "client
// ACKs recovered packets, hiding the loss from TCP").
package tcpsim

import (
	"math/rand"
	"time"

	"jqos/internal/core"
	"jqos/internal/netem"
)

// SegmentKind classifies packets for the recovery shim: selective
// duplication policies act on kinds (§6.4 duplicates only SYN-ACKs).
type SegmentKind uint8

// Segment kinds.
const (
	KindSYN SegmentKind = iota
	KindSYNACK
	KindRequest
	KindData
	KindACK
)

// String implements fmt.Stringer.
func (k SegmentKind) String() string {
	switch k {
	case KindSYN:
		return "SYN"
	case KindSYNACK:
		return "SYN-ACK"
	case KindRequest:
		return "request"
	case KindData:
		return "data"
	case KindACK:
		return "ack"
	default:
		return "segment?"
	}
}

// Recovery is the J-QoS shim consulted when a segment is lost on the
// direct path. It reports the extra delay after which J-QoS delivers the
// segment anyway, or ok=false when the loss stands (Internet baseline,
// or a kind outside the duplication policy).
type Recovery interface {
	Recover(now core.Time, kind SegmentKind, r *rand.Rand) (extra core.Time, ok bool)
}

// NoRecovery is the plain-Internet baseline.
type NoRecovery struct{}

// Recover implements Recovery.
func (NoRecovery) Recover(core.Time, SegmentKind, *rand.Rand) (core.Time, bool) { return 0, false }

// CRWAN models full J-QoS coding-service protection: every lost segment is
// repaired PRecover of the time, Detect+Repair after it would have arrived
// (detection via the receiver's timers plus cooperative recovery around
// the nearby DC — §6.4 uses 30 ms host↔DC RTTs).
type CRWAN struct {
	Detect   core.Time // loss-detection latency (small timer / gap)
	Repair   core.Time // NACK + cooperative recovery + delivery
	PRecover float64   // fraction of losses repaired (paper: ~0.92–0.99)
}

// DefaultCRWAN returns the §6.4 testbed parameters: 25 ms detection and a
// repair round over 15 ms host↔DC one-way latency (NACK + coop request +
// response + delivery ≈ 4δ).
func DefaultCRWAN() CRWAN {
	return CRWAN{Detect: 25 * time.Millisecond, Repair: 60 * time.Millisecond, PRecover: 0.97}
}

// Recover implements Recovery.
func (c CRWAN) Recover(_ core.Time, _ SegmentKind, r *rand.Rand) (core.Time, bool) {
	if r.Float64() >= c.PRecover {
		return 0, false
	}
	return c.Detect + c.Repair, true
}

// SelectiveDup models duplication of selected segment kinds over the cloud
// path: duplicated kinds are never lost, only delayed by the overlay detour
// (§6.4's SYN-ACK-only experiment).
type SelectiveDup struct {
	Kinds map[SegmentKind]bool
	// Extra is the overlay detour cost relative to the direct path.
	Extra core.Time
}

// Recover implements Recovery.
func (s SelectiveDup) Recover(_ core.Time, kind SegmentKind, _ *rand.Rand) (core.Time, bool) {
	if !s.Kinds[kind] {
		return 0, false
	}
	return s.Extra, true
}

// Config parameterizes one connection.
type Config struct {
	// OneWay is the client↔server one-way latency (paper: 100 ms).
	OneWay core.Time
	// MSS is the segment payload size.
	MSS int
	// RespBytes is the response size (paper: 50 KB).
	RespBytes int
	// InitCwnd is the initial congestion window in segments.
	InitCwnd int
	// MinRTO / HandshakeRTO clamp the retransmission timers.
	MinRTO       core.Time
	HandshakeRTO core.Time
	// MaxRTO caps exponential backoff.
	MaxRTO core.Time
	// DataLoss and AckLoss shape each direction (nil = lossless). The
	// models are owned by the connection (stateful burst processes).
	DataLoss netem.LossModel
	AckLoss  netem.LossModel
	// Shim is the J-QoS recovery model (nil = NoRecovery).
	Shim Recovery
	// GiveUp aborts the connection (counted as a tail event at that
	// FCT) if it has not completed by this time.
	GiveUp core.Time
}

// DefaultConfig returns the §6.4 testbed parameters.
func DefaultConfig() Config {
	return Config{
		OneWay:       100 * time.Millisecond,
		MSS:          1460,
		RespBytes:    50 * 1024,
		InitCwnd:     10,
		MinRTO:       200 * time.Millisecond,
		HandshakeRTO: time.Second,
		MaxRTO:       16 * time.Second,
		GiveUp:       30 * time.Second,
	}
}

// Result summarizes one request/response exchange.
type Result struct {
	FCT             core.Time // request start → last response byte
	Timeouts        int       // RTO firings (handshake + data)
	FastRetransmits int
	Retransmits     int
	Recovered       int // segments repaired by the J-QoS shim
	Completed       bool
}

// Conn simulates one connection on a netem.Simulator. Create with New,
// call Start, then run the simulator; the callback receives the Result.
type Conn struct {
	sim *netem.Simulator
	cfg Config
	rng *rand.Rand

	totalSegs int
	received  []bool
	cumRcvd   int // first index not yet received (receiver view)
	acked     int // first index not yet cumulatively acked (sender view)
	sacked    []bool
	nextSend  int
	cwnd      float64
	ssthresh  float64
	dupacks   int
	inFastRec bool

	srtt, rttvar core.Time
	rto          core.Time
	rtoGen       uint64
	hsGen        uint64

	start  core.Time
	res    Result
	onDone func(Result)
	done   bool
}

// New builds a connection. onDone fires exactly once.
func New(sim *netem.Simulator, cfg Config, onDone func(Result)) *Conn {
	if cfg.Shim == nil {
		cfg.Shim = NoRecovery{}
	}
	if cfg.MSS <= 0 {
		cfg.MSS = 1460
	}
	total := (cfg.RespBytes + cfg.MSS - 1) / cfg.MSS
	if total < 1 {
		total = 1
	}
	return &Conn{
		sim:       sim,
		cfg:       cfg,
		rng:       sim.Fork(),
		totalSegs: total,
		received:  make([]bool, total),
		sacked:    make([]bool, total),
		cwnd:      float64(cfg.InitCwnd),
		ssthresh:  1e9,
		rto:       cfg.HandshakeRTO,
		onDone:    onDone,
	}
}

// Start begins the exchange (SYN → SYN-ACK → request → response).
func (c *Conn) Start() {
	c.start = c.sim.Now()
	if c.cfg.GiveUp > 0 {
		c.sim.At(c.start+c.cfg.GiveUp, func() { c.finish(false) })
	}
	c.sendSYN(c.cfg.HandshakeRTO)
}

func (c *Conn) finish(completed bool) {
	if c.done {
		return
	}
	c.done = true
	c.res.FCT = c.sim.Now() - c.start
	c.res.Completed = completed
	if c.onDone != nil {
		c.onDone(c.res)
	}
}

// transit models one direction: loss model, then the J-QoS shim, then
// propagation. Returns false if the segment truly vanished.
func (c *Conn) transit(kind SegmentKind, lm netem.LossModel, deliver func()) bool {
	extra := core.Time(0)
	if lm != nil && lm.Lose(c.sim.Now(), c.rng) {
		e, ok := c.cfg.Shim.Recover(c.sim.Now(), kind, c.rng)
		if !ok {
			return false
		}
		c.res.Recovered++
		extra = e
	}
	c.sim.After(c.cfg.OneWay+extra, deliver)
	return true
}

// --- handshake ---

func (c *Conn) sendSYN(rto core.Time) {
	if c.done {
		return
	}
	c.hsGen++
	gen := c.hsGen
	c.transit(KindSYN, c.cfg.AckLoss, func() { c.onServerSYN() })
	c.sim.After(rto, func() {
		if c.hsGen == gen && !c.done && c.acked == 0 && c.nextSend == 0 {
			c.res.Timeouts++
			next := rto * 2
			if next > c.cfg.MaxRTO {
				next = c.cfg.MaxRTO
			}
			c.sendSYN(next)
		}
	})
}

func (c *Conn) onServerSYN() {
	if c.done {
		return
	}
	// SYN-ACK back; the client answers with the request. Handshake
	// losses are retried by the client's SYN timer above.
	c.transit(KindSYNACK, c.cfg.DataLoss, func() { c.onClientSYNACK() })
}

func (c *Conn) onClientSYNACK() {
	if c.done || c.nextSend > 0 {
		return // request already in flight (duplicate SYN-ACK)
	}
	c.transit(KindRequest, c.cfg.AckLoss, func() { c.onServerRequest() })
}

func (c *Conn) onServerRequest() {
	if c.done || c.nextSend > 0 {
		return // duplicate request
	}
	// Handshake done: seed the RTT estimator with the true RTT (the
	// server measured SYN→request).
	c.updateRTT(2 * c.cfg.OneWay)
	c.hsGen++ // cancel handshake timer
	c.sendWindow()
	c.armRTO()
}

// --- server data transfer ---

func (c *Conn) inflight() int {
	n := c.nextSend - c.acked
	for i := c.acked; i < c.nextSend && i < c.totalSegs; i++ {
		if c.sacked[i] {
			n--
		}
	}
	if n < 0 {
		n = 0
	}
	return n
}

func (c *Conn) sendWindow() {
	for c.nextSend < c.totalSegs && c.inflight() < int(c.cwnd) {
		c.sendSegment(c.nextSend)
		c.nextSend++
	}
}

func (c *Conn) sendSegment(idx int) {
	if c.done {
		return
	}
	c.transit(KindData, c.cfg.DataLoss, func() { c.onClientData(idx) })
}

// --- client receive / ACK ---

func (c *Conn) onClientData(idx int) {
	if c.done {
		return
	}
	if !c.received[idx] {
		c.received[idx] = true
		for c.cumRcvd < c.totalSegs && c.received[c.cumRcvd] {
			c.cumRcvd++
		}
	}
	if c.cumRcvd >= c.totalSegs {
		c.finish(true)
		return
	}
	// Cumulative ACK with a SACK snapshot (copied: the ACK is a packet
	// in flight, not a view of live state).
	cum := c.cumRcvd
	sack := append([]bool(nil), c.received...)
	c.transit(KindACK, c.cfg.AckLoss, func() { c.onServerACK(cum, sack) })
}

// --- server ACK processing / congestion control ---

func (c *Conn) updateRTT(sample core.Time) {
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		d := c.srtt - sample
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < c.cfg.MinRTO {
		c.rto = c.cfg.MinRTO
	}
	if c.rto > c.cfg.MaxRTO {
		c.rto = c.cfg.MaxRTO
	}
}

func (c *Conn) onServerACK(cum int, sack []bool) {
	if c.done {
		return
	}
	copy(c.sacked, sack)
	if cum > c.acked {
		c.acked = cum
		c.dupacks = 0
		c.updateRTT(2 * c.cfg.OneWay)
		if c.inFastRec && c.acked >= c.nextSend {
			c.inFastRec = false
		}
		// cwnd growth: slow start below ssthresh, else AIMD.
		if c.cwnd < c.ssthresh {
			c.cwnd++
		} else {
			c.cwnd += 1 / c.cwnd
		}
		c.armRTO()
		c.sendWindow()
		return
	}
	// Duplicate ACK.
	c.dupacks++
	if c.dupacks >= 3 && !c.inFastRec {
		c.inFastRec = true
		c.res.FastRetransmits++
		c.ssthresh = c.cwnd / 2
		if c.ssthresh < 2 {
			c.ssthresh = 2
		}
		c.cwnd = c.ssthresh
		// SACK-based recovery: retransmit every hole below nextSend.
		for i := c.acked; i < c.nextSend; i++ {
			if !c.sacked[i] {
				c.res.Retransmits++
				c.sendSegment(i)
			}
		}
		c.armRTO()
	}
}

func (c *Conn) armRTO() {
	c.rtoGen++
	gen := c.rtoGen
	c.sim.After(c.rto, func() { c.onRTO(gen) })
}

func (c *Conn) onRTO(gen uint64) {
	if c.done || gen != c.rtoGen || c.acked >= c.totalSegs {
		return
	}
	if c.nextSend == 0 {
		return // handshake phase; its own timer rules
	}
	c.res.Timeouts++
	c.ssthresh = c.cwnd / 2
	if c.ssthresh < 2 {
		c.ssthresh = 2
	}
	c.cwnd = 1
	c.dupacks = 0
	c.inFastRec = false
	// Go-back: retransmit the first hole.
	for i := c.acked; i < c.nextSend; i++ {
		if !c.sacked[i] {
			c.res.Retransmits++
			c.sendSegment(i)
			break
		}
	}
	c.rto *= 2
	if c.rto > c.cfg.MaxRTO {
		c.rto = c.cfg.MaxRTO
	}
	c.armRTO()
}
