package tcpsim

import (
	"testing"
	"time"

	"jqos/internal/core"
	"jqos/internal/netem"
	"jqos/internal/stats"
)

// runOne executes a single exchange and returns its result.
func runOne(t *testing.T, seed int64, mutate func(*Config)) Result {
	t.Helper()
	sim := netem.NewSimulator(seed)
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	var got Result
	fired := 0
	conn := New(sim, cfg, func(r Result) { got = r; fired++ })
	conn.Start()
	sim.Run()
	if fired != 1 {
		t.Fatalf("onDone fired %d times", fired)
	}
	return got
}

// runMany collects FCTs (in ms) over n independent connections.
func runMany(t *testing.T, n int, seed int64, mutate func(*Config)) *stats.Sample {
	t.Helper()
	s := stats.NewSample(n)
	for i := 0; i < n; i++ {
		r := runOne(t, seed+int64(i)*7919, mutate)
		s.Add(float64(r.FCT) / float64(time.Millisecond))
	}
	return s
}

func TestLosslessFCT(t *testing.T) {
	r := runOne(t, 1, nil)
	if !r.Completed {
		t.Fatal("lossless exchange did not complete")
	}
	// Handshake (1.5 RTT to first data send) + 2–3 slow-start rounds for
	// 35 segments at initcwnd 10: FCT lands in (0.5s, 1.5s).
	if r.FCT < 500*time.Millisecond || r.FCT > 1500*time.Millisecond {
		t.Errorf("FCT = %v", r.FCT)
	}
	if r.Timeouts != 0 || r.Retransmits != 0 || r.Recovered != 0 {
		t.Errorf("spurious recovery on lossless path: %+v", r)
	}
}

func TestDeterminism(t *testing.T) {
	mutate := func(c *Config) { c.DataLoss = netem.NewGoogleBurst() }
	a := runOne(t, 42, mutate)
	b := runOne(t, 42, mutate)
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestLossCausesTimeoutsAndTail(t *testing.T) {
	// Harsh loss, no recovery: some connections must hit RTO backoff.
	heavy := func(c *Config) {
		c.DataLoss = &netem.GoogleBurst{PFirst: 0.05, PNext: 0.5}
		c.AckLoss = &netem.GoogleBurst{PFirst: 0.05, PNext: 0.5}
	}
	sample := runMany(t, 100, 10, heavy)
	clean := runMany(t, 100, 10, nil)
	if sample.Quantile(0.99) <= clean.Quantile(0.99) {
		t.Errorf("lossy p99 %vms not above lossless %vms",
			sample.Quantile(0.99), clean.Quantile(0.99))
	}
	anyTimeouts := false
	for i := 0; i < 50; i++ {
		if r := runOne(t, 1000+int64(i), heavy); r.Timeouts > 0 {
			anyTimeouts = true
			break
		}
	}
	if !anyTimeouts {
		t.Error("no RTO events under heavy loss")
	}
}

func TestCRWANShimCutsTail(t *testing.T) {
	lossy := func(c *Config) {
		c.DataLoss = netem.NewGoogleBurst()
		c.AckLoss = netem.NewGoogleBurst()
	}
	withJQ := func(c *Config) {
		lossy(c)
		c.Shim = DefaultCRWAN()
	}
	internet := runMany(t, 300, 20, lossy)
	jq := runMany(t, 300, 20, withJQ)
	// The medians stay close (losses are rare)…
	if ratio := jq.Median() / internet.Median(); ratio > 1.2 {
		t.Errorf("J-QoS median inflated: %v vs %v", jq.Median(), internet.Median())
	}
	// …but the tail shrinks dramatically (Fig 9b).
	pI, pJ := internet.Quantile(0.99), jq.Quantile(0.99)
	if pJ >= pI {
		t.Errorf("p99: internet %vms vs jqos %vms — no tail reduction", pI, pJ)
	}
	maxI, maxJ := internet.Max(), jq.Max()
	if maxJ >= maxI {
		t.Errorf("max FCT: internet %vms vs jqos %vms", maxI, maxJ)
	}
}

func TestCRWANRecoversSegments(t *testing.T) {
	r := runOne(t, 77, func(c *Config) {
		c.DataLoss = netem.Bernoulli{P: 0.2}
		c.Shim = CRWAN{Detect: 25 * time.Millisecond, Repair: 60 * time.Millisecond, PRecover: 1}
	})
	if !r.Completed || r.Recovered == 0 {
		t.Errorf("result: %+v", r)
	}
	if r.Timeouts > 1 {
		t.Errorf("timeouts = %d with full recovery", r.Timeouts)
	}
}

func TestSelectiveDupProtectsHandshake(t *testing.T) {
	// Lose every SYN-ACK candidate: without duplication the handshake
	// needs timer retries; with SYN-ACK duplication it never stalls.
	mutate := func(dup bool) func(*Config) {
		return func(c *Config) {
			c.DataLoss = netem.Bernoulli{P: 1} // kills SYN-ACK + data
			if dup {
				c.Shim = SelectiveDup{
					Kinds: map[SegmentKind]bool{KindSYNACK: true, KindData: true},
					Extra: 6 * time.Millisecond,
				}
			}
			c.GiveUp = 5 * time.Second
		}
	}
	without := runOne(t, 5, mutate(false))
	if without.Completed {
		t.Error("completed through a fully dead path without recovery")
	}
	with := runOne(t, 5, mutate(true))
	if !with.Completed {
		t.Fatalf("duplication did not save the exchange: %+v", with)
	}
	if with.FCT > 2*time.Second {
		t.Errorf("FCT with dup = %v", with.FCT)
	}
}

func TestSelectiveDupOnlySYNACK(t *testing.T) {
	// Duplicating only SYN-ACKs leaves data losses to TCP.
	r := runOne(t, 6, func(c *Config) {
		c.DataLoss = netem.Bernoulli{P: 0.1}
		c.Shim = SelectiveDup{Kinds: map[SegmentKind]bool{KindSYNACK: true}, Extra: 6 * time.Millisecond}
	})
	if !r.Completed {
		t.Fatal("did not complete")
	}
	if r.Retransmits == 0 {
		t.Error("data losses should still cost TCP retransmissions")
	}
}

func TestGiveUpHorizon(t *testing.T) {
	r := runOne(t, 7, func(c *Config) {
		c.DataLoss = netem.Bernoulli{P: 1}
		c.AckLoss = netem.Bernoulli{P: 1}
		c.GiveUp = 3 * time.Second
	})
	if r.Completed {
		t.Error("completed through dead path")
	}
	if r.FCT != 3*time.Second {
		t.Errorf("give-up FCT = %v", r.FCT)
	}
}

func TestSegmentKindStrings(t *testing.T) {
	for _, k := range []SegmentKind{KindSYN, KindSYNACK, KindRequest, KindData, KindACK} {
		if k.String() == "segment?" {
			t.Errorf("kind %d unnamed", k)
		}
	}
	if SegmentKind(99).String() != "segment?" {
		t.Error("unknown kind string")
	}
}

func TestTotalSegmentsRounding(t *testing.T) {
	sim := netem.NewSimulator(1)
	cfg := DefaultConfig()
	cfg.RespBytes = 1 // one tiny segment
	c := New(sim, cfg, nil)
	if c.totalSegs != 1 {
		t.Errorf("totalSegs = %d", c.totalSegs)
	}
	cfg.RespBytes = 1461
	if c := New(sim, cfg, nil); c.totalSegs != 2 {
		t.Errorf("totalSegs = %d", c.totalSegs)
	}
}

func TestRTTEstimator(t *testing.T) {
	sim := netem.NewSimulator(1)
	c := New(sim, DefaultConfig(), nil)
	c.updateRTT(200 * time.Millisecond)
	if c.srtt != 200*time.Millisecond {
		t.Errorf("initial srtt = %v", c.srtt)
	}
	if c.rto < c.cfg.MinRTO {
		t.Errorf("rto below floor: %v", c.rto)
	}
	c.updateRTT(100 * time.Millisecond)
	if c.srtt >= 200*time.Millisecond || c.srtt <= 100*time.Millisecond {
		t.Errorf("smoothed srtt = %v", c.srtt)
	}
}

func BenchmarkExchange(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := netem.NewSimulator(int64(i))
		cfg := DefaultConfig()
		cfg.DataLoss = netem.NewGoogleBurst()
		conn := New(sim, cfg, nil)
		conn.Start()
		sim.RunUntil(core.Time(cfg.GiveUp))
	}
}
