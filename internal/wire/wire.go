// Package wire defines the J-QoS binary message formats: the fixed
// encapsulation header that logically sits between transport and network
// (§5 of the paper), plus the sub-messages used by the caching and coding
// services (coded batches, NACK/pull, cooperative recovery).
//
// Encoding follows the gopacket DecodingLayerParser discipline: callers
// decode into preallocated structs and marshal into caller-provided
// buffers, so the hot path performs no allocation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"jqos/internal/core"
)

// Magic identifies J-QoS datagrams ("JQ").
const Magic = 0x4A51

// Version is the current wire version.
const Version = 1

// HeaderLen is the fixed size of the common header.
const HeaderLen = 40

// Compile-time check that the accounting constant in core matches the real
// header size.
var _ [0]struct{} = [HeaderLen - core.HeaderOverhead]struct{}{}

// MsgType enumerates J-QoS message kinds.
type MsgType uint8

const (
	// TypeData carries one application segment.
	TypeData MsgType = iota + 1
	// TypeCoded carries one coded (parity) packet and its batch metadata.
	TypeCoded
	// TypeNACK is the receiver's loss report to its nearby DC (§3.4).
	TypeNACK
	// TypePull asks the caching service for a stored packet (§3.2).
	TypePull
	// TypePullResp returns a cached packet to the receiver.
	TypePullResp
	// TypeCoopReq asks a helper receiver for a data packet needed to
	// decode a batch (§4.4 step 2).
	TypeCoopReq
	// TypeCoopResp returns a helper's data packet to DC2 (§4.4 step 3).
	TypeCoopResp
	// TypeRecovered delivers a decoded packet to the requesting receiver
	// (§4.4 step 4).
	TypeRecovered
	// TypeVerify asks the receiver whether a NACK is still wanted —
	// DC2's spurious-recovery check at burst boundaries (§3.4).
	TypeVerify
	// TypeVerifyResp answers a TypeVerify probe.
	TypeVerifyResp
	// TypeCtrl carries JSON control-channel payloads (registration,
	// delivery stats, service selection) — the TCP channel in §5.
	TypeCtrl
	// TypeProbe is a routing-control-plane link probe: sent one hop over
	// an inter-DC link, answered with TypeProbeAck. Seq carries the probe
	// sequence number; TS the send time, echoed back for RTT measurement.
	TypeProbe
	// TypeProbeAck answers a TypeProbe.
	TypeProbeAck
	// TypeCongestion carries one egress-queue watermark transition from
	// the DC that observed it back to an ingress DC whose flows traverse
	// the congested link — the feedback plane's ECN-style backpressure
	// signal. The body is a fixed-size Congestion record; the message
	// rides the control channel (hop-by-hop, scheduler-bypassing), like
	// probes.
	TypeCongestion
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case TypeData:
		return "data"
	case TypeCoded:
		return "coded"
	case TypeNACK:
		return "nack"
	case TypePull:
		return "pull"
	case TypePullResp:
		return "pullresp"
	case TypeCoopReq:
		return "coopreq"
	case TypeCoopResp:
		return "coopresp"
	case TypeRecovered:
		return "recovered"
	case TypeVerify:
		return "verify"
	case TypeVerifyResp:
		return "verifyresp"
	case TypeCtrl:
		return "ctrl"
	case TypeProbe:
		return "probe"
	case TypeProbeAck:
		return "probeack"
	case TypeCongestion:
		return "congestion"
	default:
		return fmt.Sprintf("msgtype(%d)", uint8(t))
	}
}

// Header flag bits.
const (
	// FlagDup marks a duplicated copy sent on the cloud path while the
	// original used the Internet path (selective duplication, §6.4).
	FlagDup uint16 = 1 << iota
	// FlagWantVerify on a NACK asks DC2 to verify before recovering.
	FlagWantVerify
	// FlagStillWanted on a VerifyResp confirms the recovery should run.
	FlagStillWanted
	// FlagEndOfBurst marks the last packet of an application burst, a
	// hint the receiver's Markov timer uses to switch states early.
	FlagEndOfBurst
	// FlagDrain on a TypePull asks the caching service for every cached
	// packet of the flow with sequence greater than Seq — the mobility
	// rendezvous pull (Figure 3e).
	FlagDrain
	// FlagTraced marks a cloud copy selected for hop-level latency
	// attribution: every choke point it traverses (admission, pacer,
	// egress queue, wire, relay) records a span keyed by (Flow, Seq)
	// into the telemetry plane's span collector. The bit rides the wire
	// so transit DCs know to record spans without any per-flow lookup;
	// untraced packets pay only this flag test. Set deterministically by
	// the sender from FlowSpec.TraceSampling (every Nth sequence).
	FlagTraced
)

// Routing-epoch tag: data packets carry the 2-bit table version they
// entered the overlay under (bits 13–14, validity bit 15), so transit DCs
// resolve them against that version across a make-before-break reroute.
// Two bits suffice — forwarders hold at most two live versions, and a
// tag older than both falls back to the current table.
const (
	// FlagEpochValid marks Flags bits 13–14 as carrying an epoch tag.
	FlagEpochValid uint16 = 1 << 15
	epochShift            = 13
	epochMask      uint16 = 3 << epochShift
)

// EpochFlags encodes a routing-table epoch as header flag bits.
func EpochFlags(epoch uint64) uint16 {
	return FlagEpochValid | uint16(epoch&3)<<epochShift
}

// EpochTag extracts a packet's routing-epoch tag; ok is false for
// packets sent without one (pre-epoch senders, control traffic).
func EpochTag(flags uint16) (tag uint8, ok bool) {
	if flags&FlagEpochValid == 0 {
		return 0, false
	}
	return uint8(flags & epochMask >> epochShift), true
}

// Errors returned by decoding.
var (
	ErrShort      = errors.New("wire: buffer too short")
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrBadCount   = errors.New("wire: entry count out of range")
)

// Header is the fixed J-QoS encapsulation header. Src and Dst are overlay
// node IDs, not IP addresses; the transport runtime maps them to sockets.
type Header struct {
	Type    MsgType
	Flags   uint16
	Service core.Service
	Flow    core.FlowID
	Seq     core.Seq
	TS      core.Time
	Src     core.NodeID
	Dst     core.NodeID
}

// ID returns the packet identity named by the header.
func (h *Header) ID() core.PacketID { return core.PacketID{Flow: h.Flow, Seq: h.Seq} }

// Marshal writes the header into buf, which must be at least HeaderLen
// bytes, and returns HeaderLen.
func (h *Header) Marshal(buf []byte) int {
	_ = buf[HeaderLen-1] // bounds hint
	binary.BigEndian.PutUint16(buf[0:], Magic)
	buf[2] = Version
	buf[3] = byte(h.Type)
	binary.BigEndian.PutUint16(buf[4:], h.Flags)
	buf[6] = byte(h.Service)
	buf[7] = 0
	binary.BigEndian.PutUint64(buf[8:], uint64(h.Flow))
	binary.BigEndian.PutUint64(buf[16:], uint64(h.Seq))
	binary.BigEndian.PutUint64(buf[24:], uint64(h.TS))
	binary.BigEndian.PutUint32(buf[32:], uint32(h.Src))
	binary.BigEndian.PutUint32(buf[36:], uint32(h.Dst))
	return HeaderLen
}

// Unmarshal parses the header from buf and returns the number of bytes
// consumed (HeaderLen).
func (h *Header) Unmarshal(buf []byte) (int, error) {
	if len(buf) < HeaderLen {
		return 0, fmt.Errorf("%w: header needs %d bytes, have %d", ErrShort, HeaderLen, len(buf))
	}
	if binary.BigEndian.Uint16(buf[0:]) != Magic {
		return 0, ErrBadMagic
	}
	if buf[2] != Version {
		return 0, fmt.Errorf("%w: %d", ErrBadVersion, buf[2])
	}
	h.Type = MsgType(buf[3])
	h.Flags = binary.BigEndian.Uint16(buf[4:])
	h.Service = core.Service(buf[6])
	h.Flow = core.FlowID(binary.BigEndian.Uint64(buf[8:]))
	h.Seq = core.Seq(binary.BigEndian.Uint64(buf[16:]))
	h.TS = core.Time(binary.BigEndian.Uint64(buf[24:]))
	h.Src = core.NodeID(binary.BigEndian.Uint32(buf[32:]))
	h.Dst = core.NodeID(binary.BigEndian.Uint32(buf[36:]))
	return HeaderLen, nil
}

// AppendMessage marshals header+payload onto dst and returns the extended
// slice. This is the single send-side entry point used by both runtimes.
func AppendMessage(dst []byte, h *Header, payload []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, HeaderLen)...)
	h.Marshal(dst[off:])
	return append(dst, payload...)
}

// SplitMessage parses one datagram into header and payload. The payload
// slice aliases buf (NoCopy); callers that retain it must copy.
func SplitMessage(h *Header, buf []byte) ([]byte, error) {
	n, err := h.Unmarshal(buf)
	if err != nil {
		return nil, err
	}
	return buf[n:], nil
}

// RewriteDst patches the destination field of an already-marshaled message
// in place. Multicast fan-out uses it to address each member copy without
// re-encoding the whole datagram.
func RewriteDst(msg []byte, dst core.NodeID) error {
	if len(msg) < HeaderLen {
		return ErrShort
	}
	binary.BigEndian.PutUint32(msg[36:], uint32(dst))
	return nil
}

// RewriteFlags patches the flags field of an already-marshaled message in
// place. Senders reuse one encoded buffer across the direct and cloud
// copies of a packet, rewriting Dst and Flags instead of re-marshaling.
func RewriteFlags(msg []byte, flags uint16) error {
	if len(msg) < HeaderLen {
		return ErrShort
	}
	binary.BigEndian.PutUint16(msg[4:], flags)
	return nil
}

// PeekService reads a marshaled message's service class without decoding
// the rest of the header. DC egress accounting classifies every departing
// packet per (link, service class) on the hot path; unknown classes (or
// non-J-QoS bytes) report ok=false and go unaccounted rather than
// polluting a class bucket.
func PeekService(msg []byte) (core.Service, bool) {
	if len(msg) < HeaderLen ||
		binary.BigEndian.Uint16(msg[0:]) != Magic || msg[2] != Version {
		return 0, false
	}
	s := core.Service(msg[6])
	if s > core.ServiceForwarding {
		return 0, false
	}
	return s, true
}

// CongestionLen is the fixed size of a TypeCongestion body.
const CongestionLen = 16

// Congestion is the body of a TypeCongestion control message: one
// (directed link, service class) watermark transition. LinkA→LinkB is
// the congested egress direction; State is the new
// feedback classification (sched.QueueState's raw value); Depth the
// queued bytes at the flip, clamped to 32 bits.
type Congestion struct {
	LinkA, LinkB core.NodeID
	Class        core.Service
	State        uint8
	Depth        uint32
}

// Marshal writes the body into buf, which must be at least
// CongestionLen bytes, and returns CongestionLen.
func (c *Congestion) Marshal(buf []byte) int {
	_ = buf[CongestionLen-1] // bounds hint
	binary.BigEndian.PutUint32(buf[0:], uint32(c.LinkA))
	binary.BigEndian.PutUint32(buf[4:], uint32(c.LinkB))
	buf[8] = byte(c.Class)
	buf[9] = c.State
	buf[10] = 0
	buf[11] = 0
	binary.BigEndian.PutUint32(buf[12:], c.Depth)
	return CongestionLen
}

// Unmarshal parses the body from buf.
func (c *Congestion) Unmarshal(buf []byte) error {
	if len(buf) < CongestionLen {
		return fmt.Errorf("%w: congestion body needs %d bytes, have %d", ErrShort, CongestionLen, len(buf))
	}
	c.LinkA = core.NodeID(binary.BigEndian.Uint32(buf[0:]))
	c.LinkB = core.NodeID(binary.BigEndian.Uint32(buf[4:]))
	c.Class = core.Service(buf[8])
	c.State = buf[9]
	c.Depth = binary.BigEndian.Uint32(buf[12:])
	return nil
}

// PeekCongestion reads a whole marshaled TypeCongestion message's body
// with fixed-offset loads — no header decode. Ingress DCs dispatch
// every arriving signal through this on the control path, where a full
// Unmarshal of the 40-byte header they do not need would dominate the
// work. ok is false for short, non-J-QoS, or non-congestion messages.
func PeekCongestion(msg []byte) (Congestion, bool) {
	if len(msg) < HeaderLen+CongestionLen ||
		binary.BigEndian.Uint16(msg[0:]) != Magic || msg[2] != Version ||
		MsgType(msg[3]) != TypeCongestion {
		return Congestion{}, false
	}
	var c Congestion
	if err := c.Unmarshal(msg[HeaderLen:]); err != nil {
		return Congestion{}, false
	}
	return c, true
}

// PeekFlow reads a marshaled message's type and flow without decoding
// the rest of the header — the egress scheduler attributes every
// departing packet to a flow on the hot path, and a full Unmarshal
// would double the header work PeekService already did. Coded packets
// carry their source flows in the body, not the header; callers seeing
// TypeCoded follow up with PeekCodedFlow on msg[HeaderLen:].
func PeekFlow(msg []byte) (core.FlowID, MsgType, bool) {
	if len(msg) < HeaderLen ||
		binary.BigEndian.Uint16(msg[0:]) != Magic || msg[2] != Version {
		return 0, 0, false
	}
	return core.FlowID(binary.BigEndian.Uint64(msg[8:])), MsgType(msg[3]), true
}

// PeekTrace reads a marshaled data message's packet identity when (and
// only when) the message carries FlagTraced — the hop-attribution tag.
// Every wire-departure and wire-arrival point tests its packets with
// this on the hot path; for the untraced majority the cost is the bounds
// check plus one flag load, with no header decode. ok is false for
// short, non-J-QoS, non-data, or untraced messages.
func PeekTrace(msg []byte) (core.PacketID, bool) {
	if len(msg) < HeaderLen ||
		binary.BigEndian.Uint16(msg[0:]) != Magic || msg[2] != Version ||
		MsgType(msg[3]) != TypeData ||
		binary.BigEndian.Uint16(msg[4:])&FlagTraced == 0 {
		return core.PacketID{}, false
	}
	return core.PacketID{
		Flow: core.FlowID(binary.BigEndian.Uint64(msg[8:])),
		Seq:  core.Seq(binary.BigEndian.Uint64(msg[16:])),
	}, true
}
