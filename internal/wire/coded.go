package wire

import (
	"encoding/binary"
	"fmt"

	"jqos/internal/core"
)

// SourceRef names one data packet that participates in a coded batch: its
// identity plus the receiver that holds it (needed for cooperative
// recovery, where DC2 contacts the holders directly).
type SourceRef struct {
	Flow     core.FlowID
	Seq      core.Seq
	Receiver core.NodeID
}

const sourceRefLen = 8 + 8 + 4

// CodedKind distinguishes the two coding dimensions of §4.2.
type CodedKind uint8

const (
	// CrossStream parity combines packets from different flows.
	CrossStream CodedKind = iota
	// InStream parity is classic FEC within one flow.
	InStream
)

// String implements fmt.Stringer.
func (k CodedKind) String() string {
	if k == InStream {
		return "in-stream"
	}
	return "cross-stream"
}

// Coded is the metadata carried by a TypeCoded message ahead of the parity
// shard bytes. DC1 "must also include information in the coded packets
// about which flows and sequence numbers are represented" (§4.2) — that is
// the Sources list.
type Coded struct {
	Batch    uint64    // batch identifier, unique per DC1
	Kind     CodedKind // cross-stream or in-stream
	K        uint8     // data shards in the batch
	R        uint8     // parity shards generated for the batch
	Index    uint8     // which parity shard this is (0..R-1)
	ShardLen uint16    // length of the parity shard that follows
	Sources  []SourceRef
}

const codedFixedLen = 8 + 1 + 1 + 1 + 1 + 2 + 2 // batch,kind,k,r,index,shardlen,count

// MarshaledLen returns the encoded size of the metadata (not the shard).
func (c *Coded) MarshaledLen() int { return codedFixedLen + len(c.Sources)*sourceRefLen }

// AppendMarshal appends the coded metadata followed by shard to dst.
func (c *Coded) AppendMarshal(dst, shard []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, c.MarshaledLen())...)
	b := dst[off:]
	binary.BigEndian.PutUint64(b[0:], c.Batch)
	b[8] = byte(c.Kind)
	b[9] = c.K
	b[10] = c.R
	b[11] = c.Index
	binary.BigEndian.PutUint16(b[12:], c.ShardLen)
	binary.BigEndian.PutUint16(b[14:], uint16(len(c.Sources)))
	p := codedFixedLen
	for _, s := range c.Sources {
		binary.BigEndian.PutUint64(b[p:], uint64(s.Flow))
		binary.BigEndian.PutUint64(b[p+8:], uint64(s.Seq))
		binary.BigEndian.PutUint32(b[p+16:], uint32(s.Receiver))
		p += sourceRefLen
	}
	return append(dst, shard...)
}

// Unmarshal parses coded metadata from buf, reusing c.Sources capacity, and
// returns the remaining bytes (the parity shard).
func (c *Coded) Unmarshal(buf []byte) ([]byte, error) {
	if len(buf) < codedFixedLen {
		return nil, fmt.Errorf("%w: coded metadata", ErrShort)
	}
	c.Batch = binary.BigEndian.Uint64(buf[0:])
	c.Kind = CodedKind(buf[8])
	c.K = buf[9]
	c.R = buf[10]
	c.Index = buf[11]
	c.ShardLen = binary.BigEndian.Uint16(buf[12:])
	count := int(binary.BigEndian.Uint16(buf[14:]))
	if count > 256 {
		return nil, fmt.Errorf("%w: %d sources", ErrBadCount, count)
	}
	need := codedFixedLen + count*sourceRefLen
	if len(buf) < need {
		return nil, fmt.Errorf("%w: %d sources need %d bytes, have %d", ErrShort, count, need, len(buf))
	}
	c.Sources = c.Sources[:0]
	p := codedFixedLen
	for i := 0; i < count; i++ {
		c.Sources = append(c.Sources, SourceRef{
			Flow:     core.FlowID(binary.BigEndian.Uint64(buf[p:])),
			Seq:      core.Seq(binary.BigEndian.Uint64(buf[p+8:])),
			Receiver: core.NodeID(binary.BigEndian.Uint32(buf[p+16:])),
		})
		p += sourceRefLen
	}
	shard := buf[need:]
	if len(shard) < int(c.ShardLen) {
		return nil, fmt.Errorf("%w: shard %d < declared %d", ErrShort, len(shard), c.ShardLen)
	}
	return shard[:c.ShardLen], nil
}

// PeekCodedFlow reads the first source flow of coded metadata without a
// full unmarshal. Transit DCs relaying parity use it to honor per-flow
// pinned paths: the batch's first source stands in for the whole batch
// (cross-stream batches mix flows; any one of them decides the route).
func PeekCodedFlow(body []byte) (core.FlowID, bool) {
	if len(body) < codedFixedLen+sourceRefLen {
		return 0, false
	}
	if binary.BigEndian.Uint16(body[14:]) == 0 {
		return 0, false
	}
	return core.FlowID(binary.BigEndian.Uint64(body[codedFixedLen:])), true
}

// CoopRef identifies one batch recovery in flight; it rides in CoopReq and
// CoopResp payloads so responses can be matched to pending recoveries.
type CoopRef struct {
	Batch uint64
	// Want is the packet the original NACK asked for — echoed so helpers
	// and the DC agree on which recovery event a response serves.
	Want core.PacketID
}

const coopRefLen = 8 + 8 + 8

// AppendMarshal appends the reference (and for responses, the helper's data
// payload) to dst.
func (c *CoopRef) AppendMarshal(dst, payload []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, coopRefLen)...)
	b := dst[off:]
	binary.BigEndian.PutUint64(b[0:], c.Batch)
	binary.BigEndian.PutUint64(b[8:], uint64(c.Want.Flow))
	binary.BigEndian.PutUint64(b[16:], uint64(c.Want.Seq))
	return append(dst, payload...)
}

// Unmarshal parses the reference and returns the trailing payload.
func (c *CoopRef) Unmarshal(buf []byte) ([]byte, error) {
	if len(buf) < coopRefLen {
		return nil, fmt.Errorf("%w: coop ref", ErrShort)
	}
	c.Batch = binary.BigEndian.Uint64(buf[0:])
	c.Want.Flow = core.FlowID(binary.BigEndian.Uint64(buf[8:]))
	c.Want.Seq = core.Seq(binary.BigEndian.Uint64(buf[16:]))
	return buf[coopRefLen:], nil
}
