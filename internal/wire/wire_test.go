package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"jqos/internal/core"
)

func sampleHeader() Header {
	return Header{
		Type:    TypeData,
		Flags:   FlagDup | FlagEndOfBurst,
		Service: core.ServiceCoding,
		Flow:    0xDEADBEEF01,
		Seq:     42,
		TS:      1500 * time.Millisecond,
		Src:     7,
		Dst:     9,
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := sampleHeader()
	buf := make([]byte, HeaderLen)
	if n := h.Marshal(buf); n != HeaderLen {
		t.Fatalf("Marshal = %d, want %d", n, HeaderLen)
	}
	var got Header
	n, err := got.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != HeaderLen {
		t.Fatalf("Unmarshal consumed %d", n)
	}
	if got != h {
		t.Errorf("round trip: got %+v, want %+v", got, h)
	}
	if got.ID() != (core.PacketID{Flow: h.Flow, Seq: h.Seq}) {
		t.Errorf("ID() = %v", got.ID())
	}
}

func TestHeaderQuickRoundTrip(t *testing.T) {
	f := func(typ uint8, flags uint16, svc uint8, flow, seq, ts uint64, src, dst uint32) bool {
		h := Header{
			Type:    MsgType(typ),
			Flags:   flags,
			Service: core.Service(svc),
			Flow:    core.FlowID(flow),
			Seq:     core.Seq(seq),
			TS:      core.Time(ts),
			Src:     core.NodeID(src),
			Dst:     core.NodeID(dst),
		}
		buf := make([]byte, HeaderLen)
		h.Marshal(buf)
		var got Header
		if _, err := got.Unmarshal(buf); err != nil {
			return false
		}
		return got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeaderUnmarshalErrors(t *testing.T) {
	var h Header
	if _, err := h.Unmarshal(make([]byte, HeaderLen-1)); !errors.Is(err, ErrShort) {
		t.Errorf("short: %v", err)
	}
	buf := make([]byte, HeaderLen)
	sample := sampleHeader()
	sample.Marshal(buf)
	buf[0] = 0xFF
	if _, err := h.Unmarshal(buf); !errors.Is(err, ErrBadMagic) {
		t.Errorf("magic: %v", err)
	}
	sample.Marshal(buf)
	buf[2] = 99
	if _, err := h.Unmarshal(buf); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version: %v", err)
	}
}

func TestAppendSplitMessage(t *testing.T) {
	h := sampleHeader()
	payload := []byte("the payload")
	msg := AppendMessage(nil, &h, payload)
	if len(msg) != HeaderLen+len(payload) {
		t.Fatalf("message len = %d", len(msg))
	}
	var got Header
	body, err := SplitMessage(&got, msg)
	if err != nil {
		t.Fatal(err)
	}
	if got != h || !bytes.Equal(body, payload) {
		t.Errorf("split: %+v %q", got, body)
	}
	// Append onto existing buffer.
	prefix := []byte{1, 2, 3}
	msg2 := AppendMessage(prefix, &h, payload)
	if !bytes.Equal(msg2[:3], prefix[:3]) || len(msg2) != 3+HeaderLen+len(payload) {
		t.Errorf("append onto prefix: len=%d", len(msg2))
	}
}

func TestMsgTypeStrings(t *testing.T) {
	types := []MsgType{TypeData, TypeCoded, TypeNACK, TypePull, TypePullResp,
		TypeCoopReq, TypeCoopResp, TypeRecovered, TypeVerify, TypeVerifyResp,
		TypeCtrl, TypeProbe, TypeProbeAck, TypeCongestion}
	seen := map[string]bool{}
	for _, typ := range types {
		s := typ.String()
		if s == "" || seen[s] {
			t.Errorf("MsgType %d string %q duplicated or empty", typ, s)
		}
		seen[s] = true
	}
	if MsgType(200).String() != "msgtype(200)" {
		t.Errorf("unknown type string: %s", MsgType(200))
	}
}

func TestCodedRoundTrip(t *testing.T) {
	c := Coded{
		Batch:    991,
		Kind:     CrossStream,
		K:        4,
		R:        2,
		Index:    1,
		ShardLen: 10,
		Sources: []SourceRef{
			{Flow: 1, Seq: 11, Receiver: 100},
			{Flow: 2, Seq: 22, Receiver: 200},
			{Flow: 3, Seq: 33, Receiver: 100},
			{Flow: 4, Seq: 44, Receiver: 300},
		},
	}
	shard := []byte("0123456789")
	buf := c.AppendMarshal(nil, shard)
	if len(buf) != c.MarshaledLen()+len(shard) {
		t.Fatalf("marshaled %d bytes, want %d", len(buf), c.MarshaledLen()+len(shard))
	}
	var got Coded
	gotShard, err := got.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotShard, shard) {
		t.Errorf("shard = %q", gotShard)
	}
	if got.Batch != c.Batch || got.Kind != c.Kind || got.K != c.K || got.R != c.R ||
		got.Index != c.Index || got.ShardLen != c.ShardLen || len(got.Sources) != 4 {
		t.Errorf("metadata: %+v", got)
	}
	for i := range c.Sources {
		if got.Sources[i] != c.Sources[i] {
			t.Errorf("source %d = %+v", i, got.Sources[i])
		}
	}
}

func TestCodedUnmarshalReusesSources(t *testing.T) {
	c := Coded{Batch: 1, K: 1, R: 1, ShardLen: 0,
		Sources: []SourceRef{{Flow: 9, Seq: 9, Receiver: 9}}}
	buf := c.AppendMarshal(nil, nil)
	got := Coded{Sources: make([]SourceRef, 0, 8)}
	keep := &got.Sources[:1][0] // capture backing array
	_ = keep
	if _, err := got.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if cap(got.Sources) != 8 {
		t.Errorf("Sources capacity not reused: %d", cap(got.Sources))
	}
}

func TestCodedUnmarshalErrors(t *testing.T) {
	var c Coded
	if _, err := c.Unmarshal(make([]byte, 3)); !errors.Is(err, ErrShort) {
		t.Errorf("short fixed: %v", err)
	}
	good := Coded{Batch: 1, K: 2, R: 1, ShardLen: 4,
		Sources: []SourceRef{{1, 1, 1}, {2, 2, 2}}}
	buf := good.AppendMarshal(nil, []byte("abcd"))
	// Truncate inside the source list.
	if _, err := c.Unmarshal(buf[:codedFixedLen+5]); !errors.Is(err, ErrShort) {
		t.Errorf("short sources: %v", err)
	}
	// Truncate the shard.
	if _, err := c.Unmarshal(buf[:len(buf)-2]); !errors.Is(err, ErrShort) {
		t.Errorf("short shard: %v", err)
	}
	// Absurd count.
	bad := append([]byte(nil), buf...)
	bad[14], bad[15] = 0xFF, 0xFF
	if _, err := c.Unmarshal(bad); !errors.Is(err, ErrBadCount) {
		t.Errorf("bad count: %v", err)
	}
}

func TestCodedKindString(t *testing.T) {
	if CrossStream.String() != "cross-stream" || InStream.String() != "in-stream" {
		t.Error("kind strings wrong")
	}
}

func TestCoopRefRoundTrip(t *testing.T) {
	ref := CoopRef{Batch: 77, Want: core.PacketID{Flow: 5, Seq: 50}}
	payload := []byte("helper data")
	buf := ref.AppendMarshal(nil, payload)
	var got CoopRef
	body, err := got.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != ref || !bytes.Equal(body, payload) {
		t.Errorf("got %+v body %q", got, body)
	}
	if _, err := got.Unmarshal(buf[:10]); !errors.Is(err, ErrShort) {
		t.Errorf("short coop ref: %v", err)
	}
}

func TestMessageNesting(t *testing.T) {
	// A full coded message as DC1 would emit it: header + coded meta + shard.
	h := Header{Type: TypeCoded, Service: core.ServiceCoding, Src: 1, Dst: 2}
	c := Coded{Batch: 5, Kind: InStream, K: 5, R: 1, ShardLen: 3,
		Sources: []SourceRef{{1, 1, 9}, {1, 2, 9}, {1, 3, 9}, {1, 4, 9}, {1, 5, 9}}}
	payload := c.AppendMarshal(nil, []byte{0xA, 0xB, 0xC})
	msg := AppendMessage(nil, &h, payload)

	var gh Header
	body, err := SplitMessage(&gh, msg)
	if err != nil {
		t.Fatal(err)
	}
	if gh.Type != TypeCoded {
		t.Fatalf("type = %v", gh.Type)
	}
	var gc Coded
	shard, err := gc.Unmarshal(body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shard, []byte{0xA, 0xB, 0xC}) || gc.Kind != InStream {
		t.Errorf("nested decode: %+v shard=%v", gc, shard)
	}
}

func BenchmarkHeaderMarshal(b *testing.B) {
	h := sampleHeader()
	buf := make([]byte, HeaderLen)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Marshal(buf)
	}
}

func BenchmarkHeaderUnmarshal(b *testing.B) {
	h := sampleHeader()
	buf := make([]byte, HeaderLen)
	h.Marshal(buf)
	var got Header
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := got.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodedUnmarshal(b *testing.B) {
	c := Coded{Batch: 991, Kind: CrossStream, K: 6, R: 2, Index: 1, ShardLen: 512}
	for i := 0; i < 6; i++ {
		c.Sources = append(c.Sources, SourceRef{Flow: core.FlowID(i), Seq: 100, Receiver: 5})
	}
	buf := c.AppendMarshal(nil, make([]byte, 512))
	got := Coded{Sources: make([]SourceRef, 0, 16)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := got.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPeekFlow(t *testing.T) {
	h := Header{Type: TypeData, Service: core.ServiceCaching, Flow: 77,
		Seq: 9, Src: 1, Dst: 2}
	msg := AppendMessage(nil, &h, []byte("payload"))
	flow, typ, ok := PeekFlow(msg)
	if !ok || flow != 77 || typ != TypeData {
		t.Fatalf("PeekFlow = (%d, %v, %v), want (77, data, true)", flow, typ, ok)
	}
	// Agrees with the full decode.
	var back Header
	if _, err := SplitMessage(&back, msg); err != nil || back.Flow != flow {
		t.Fatalf("PeekFlow disagrees with Unmarshal: %d vs %d (%v)", flow, back.Flow, err)
	}
	// Garbage and short buffers peek as not-ok, never panic.
	if _, _, ok := PeekFlow(msg[:HeaderLen-1]); ok {
		t.Error("short buffer peeked ok")
	}
	bad := append([]byte(nil), msg...)
	bad[0] = 0xFF
	if _, _, ok := PeekFlow(bad); ok {
		t.Error("bad magic peeked ok")
	}
}

func TestCongestionRoundTrip(t *testing.T) {
	c := Congestion{LinkA: 3, LinkB: 9, Class: core.ServiceForwarding,
		State: 2, Depth: 48 << 10}
	buf := make([]byte, CongestionLen)
	if n := c.Marshal(buf); n != CongestionLen {
		t.Fatalf("Marshal wrote %d bytes", n)
	}
	var back Congestion
	if err := back.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if back != c {
		t.Fatalf("round trip: %+v != %+v", back, c)
	}
	if err := back.Unmarshal(buf[:CongestionLen-1]); err == nil {
		t.Fatal("short body unmarshaled")
	}
}

func TestPeekCongestion(t *testing.T) {
	c := Congestion{LinkA: 5, LinkB: 6, Class: core.ServiceCaching,
		State: 1, Depth: 1234}
	body := make([]byte, CongestionLen)
	c.Marshal(body)
	h := Header{Type: TypeCongestion, Src: 5, Dst: 8}
	msg := AppendMessage(nil, &h, body)

	got, ok := PeekCongestion(msg)
	if !ok || got != c {
		t.Fatalf("PeekCongestion = (%+v, %v), want %+v", got, ok, c)
	}
	// Non-congestion messages, short buffers and garbage peek not-ok.
	if _, ok := PeekCongestion(msg[:HeaderLen+CongestionLen-1]); ok {
		t.Error("short message peeked ok")
	}
	data := AppendMessage(nil, &Header{Type: TypeData, Dst: 8}, body)
	if _, ok := PeekCongestion(data); ok {
		t.Error("data message peeked as congestion")
	}
	bad := append([]byte(nil), msg...)
	bad[0] = 0xFF
	if _, ok := PeekCongestion(bad); ok {
		t.Error("bad magic peeked ok")
	}
}
