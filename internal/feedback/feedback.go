// Package feedback is the congestion-feedback plane of the overlay: it
// turns egress-scheduler queue depth (internal/sched watermark states)
// into per-(link, service-class) congestion signals and carries them
// back to the ingress DCs whose flows are causing the pressure — the
// ECN idea applied inside the overlay, with queue STATE rather than
// loss as the control signal (CASPR; Singh & Modiano). The paper's
// judicious QoS needs exactly this: reacting when a queue starts
// building, seconds before the byte cap tail-drops, keeps interactive
// budgets intact without permanently paying for the expensive tier.
//
// Three pieces, all sans-IO like the protocol engines:
//
//   - Broadcaster batches watermark transitions noted on the scheduler
//     hot path (allocation-free) until the hosting runtime flushes them
//     as control messages;
//   - Registry maps each directed (inter-DC link, class) to the flows —
//     and their ingress DCs — currently routed across it, maintained on
//     register/pin/reroute/close;
//   - Pacer applies AIMD rate control to a flow's admission token
//     bucket: multiplicative cut toward a floor on Hot, additive
//     recovery once the queue cools.
package feedback

import (
	"slices"
	"sort"

	"jqos/internal/core"
	"jqos/internal/sched"
)

// State is a link-class congestion classification — the scheduler's
// watermark state, re-exported as the signal vocabulary.
type State = sched.QueueState

// Signal states, cheapest reaction first.
const (
	Clear = sched.QueueClear
	Warm  = sched.QueueWarm
	Hot   = sched.QueueHot
)

// Transition is one link-class watermark flip: the directed egress link
// From→To whose Class queue entered State at Depth queued bytes.
type Transition struct {
	From, To core.NodeID
	Class    core.Service
	State    State
	Depth    int64
}

// linkClass keys one directed link's class queue.
type linkClass struct {
	from, to core.NodeID
	class    core.Service
}

// Broadcaster batches watermark transitions between flushes. Note runs
// on the scheduler hot path — every enqueue/dequeue that crosses a
// watermark pays it — and is allocation-free in steady state: repeated
// flips of the same link-class coalesce in place (latest state wins,
// so a flip-and-back pair collapses to the final state), and the
// pending slice and index are reused across flushes.
type Broadcaster struct {
	pending []Transition
	index   map[linkClass]int

	noted   uint64
	flushes uint64
}

// NewBroadcaster returns an empty broadcaster.
func NewBroadcaster() *Broadcaster {
	return &Broadcaster{index: make(map[linkClass]int)}
}

// Note records one transition for the next flush, coalescing repeated
// flips of the same (link, class) within the batch.
func (b *Broadcaster) Note(from, to core.NodeID, class core.Service, st State, depth int64) {
	b.noted++
	k := linkClass{from, to, class}
	if i, ok := b.index[k]; ok {
		b.pending[i].State = st
		b.pending[i].Depth = depth
		return
	}
	b.index[k] = len(b.pending)
	b.pending = append(b.pending, Transition{From: from, To: to, Class: class, State: st, Depth: depth})
}

// Pending returns how many coalesced transitions await the next flush.
func (b *Broadcaster) Pending() int { return len(b.pending) }

// Flush hands the batch to fn and resets it. The slice is reused by
// later Notes — fn must not retain it. A no-op when nothing is pending.
func (b *Broadcaster) Flush(fn func([]Transition)) {
	if len(b.pending) == 0 {
		return
	}
	b.flushes++
	fn(b.pending)
	clear(b.index)
	b.pending = b.pending[:0]
}

// Noted returns the lifetime count of transitions recorded.
func (b *Broadcaster) Noted() uint64 { return b.noted }

// Flushes returns the lifetime count of non-empty flushes.
func (b *Broadcaster) Flushes() uint64 { return b.flushes }

// Registry maps each directed (inter-DC link, class) to the subscribed
// flows and their ingress DCs, so a congestion signal fans out to
// exactly the DCs whose flows load the queue. The hosting runtime
// updates a flow's subscription whenever its path or service class
// changes and removes it on close.
type Registry struct {
	subs  map[linkClass]map[core.FlowID]core.NodeID // flow → ingress DC
	flows map[core.FlowID]flowSub                   // reverse index for update/remove
	// keyFree / mapFree recycle key slices and emptied fan-out maps so
	// subscription churn (every flow open, close, and reroute) settles at
	// zero allocations per update.
	keyFree [][]linkClass
	mapFree []map[core.FlowID]core.NodeID
}

// flowSub is one flow's stored subscription: its ingress plus the
// directed link-class keys its path covers.
type flowSub struct {
	ingress core.NodeID
	keys    []linkClass
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		subs:  make(map[linkClass]map[core.FlowID]core.NodeID),
		flows: make(map[core.FlowID]flowSub),
	}
}

// Update (re)subscribes a flow: its class traffic enters the overlay at
// ingress and traverses every consecutive directed link of path (a DC
// path, endpoints included). A previous subscription is replaced; a
// path shorter than one link just unsubscribes. It reports whether the
// subscription actually changed — callers use an unchanged update as
// "nothing moved" (a re-resolution that picked the same path must not
// reset per-flow reaction state).
func (r *Registry) Update(flow core.FlowID, ingress core.NodeID, class core.Service, path []core.NodeID) bool {
	if len(path) < 2 {
		return r.Remove(flow)
	}
	keys := r.getKeys()
	for i := 0; i+1 < len(path); i++ {
		keys = append(keys, linkClass{path[i], path[i+1], class})
	}
	if prev, ok := r.flows[flow]; ok && prev.ingress == ingress && slices.Equal(prev.keys, keys) {
		r.keyFree = append(r.keyFree, keys)
		return false
	}
	r.Remove(flow)
	for _, k := range keys {
		m, ok := r.subs[k]
		if !ok {
			m = r.getMap()
			r.subs[k] = m
		}
		m[flow] = ingress
	}
	r.flows[flow] = flowSub{ingress: ingress, keys: keys}
	return true
}

// Remove unsubscribes a flow everywhere, reporting whether a
// subscription existed.
func (r *Registry) Remove(flow core.FlowID) bool {
	sub, had := r.flows[flow]
	for _, k := range sub.keys {
		if m, ok := r.subs[k]; ok {
			delete(m, flow)
			if len(m) == 0 {
				delete(r.subs, k)
				r.mapFree = append(r.mapFree, m)
			}
		}
	}
	if had {
		delete(r.flows, flow)
		r.keyFree = append(r.keyFree, sub.keys)
	}
	return had
}

// getKeys pops a recycled key slice (empty, capacity retained) or
// returns nil for append to grow — the amortized cost of a new path
// length, paid once.
func (r *Registry) getKeys() []linkClass {
	if n := len(r.keyFree); n > 0 {
		keys := r.keyFree[n-1]
		r.keyFree = r.keyFree[:n-1]
		return keys[:0]
	}
	return nil
}

// getMap pops a recycled fan-out map (emptied by Remove, buckets
// retained) or makes a fresh one.
func (r *Registry) getMap() map[core.FlowID]core.NodeID {
	if n := len(r.mapFree); n > 0 {
		m := r.mapFree[n-1]
		r.mapFree = r.mapFree[:n-1]
		return m
	}
	return make(map[core.FlowID]core.NodeID)
}

// Subscribed returns how many flows currently hold subscriptions.
func (r *Registry) Subscribed() int { return len(r.flows) }

// Ingresses appends to buf the distinct ingress DCs subscribed to the
// directed link from→to for class, in ascending order (deterministic
// fan-out). Pass buf[:0] to reuse a scratch slice.
func (r *Registry) Ingresses(buf []core.NodeID, from, to core.NodeID, class core.Service) []core.NodeID {
	m := r.subs[linkClass{from, to, class}]
	if len(m) == 0 {
		return buf
	}
	start := len(buf)
	for _, ing := range m {
		seen := false
		for _, have := range buf[start:] {
			if have == ing {
				seen = true
				break
			}
		}
		if !seen {
			buf = append(buf, ing)
		}
	}
	sort.Slice(buf[start:], func(i, j int) bool { return buf[start+i] < buf[start+j] })
	return buf
}

// FlowsAt appends to buf the flows subscribed at ingress for the
// directed link from→to and class, in ascending flow order
// (deterministic delivery). Pass buf[:0] to reuse a scratch slice.
func (r *Registry) FlowsAt(buf []core.FlowID, ingress, from, to core.NodeID, class core.Service) []core.FlowID {
	m := r.subs[linkClass{from, to, class}]
	if len(m) == 0 {
		return buf
	}
	start := len(buf)
	for flow, ing := range m {
		if ing == ingress {
			buf = append(buf, flow)
		}
	}
	sort.Slice(buf[start:], func(i, j int) bool { return buf[start+i] < buf[start+j] })
	return buf
}
