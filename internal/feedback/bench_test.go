package feedback

import (
	"testing"

	"jqos/internal/core"
	"jqos/internal/load"
	"jqos/internal/sched"
)

// BenchmarkFeedbackSignal is the congestion-signal hot path: a scheduler
// whose class queue oscillates across both watermarks, every transition
// noted into the broadcaster and periodically flushed. Every scheduled
// packet near a watermark pays Note via the DRR's OnStateChange hook, so
// the path must be allocation-free in steady state (the CI bench gate
// holds it at 0 allocs/op).
func BenchmarkFeedbackSignal(b *testing.B) {
	s := sched.New(sched.Config{
		Weights:    map[core.Service]int{core.ServiceForwarding: 8},
		QueueBytes: 10_000,
	})
	bc := NewBroadcaster()
	s.OnStateChange = func(class core.Service, st sched.QueueState, depth int64) {
		bc.Note(1, 2, class, st, depth)
	}
	payload := make([]byte, 1000)
	// Warm-up: one full oscillation grows the ring, the pending slice,
	// and the coalescing index to steady-state size.
	cycle := func() {
		for i := 0; i < 9; i++ { // 9 kB > high watermark (7.5 kB): Hot
			s.Enqueue(core.ServiceForwarding, 1, payload)
		}
		for { // full drain: Clear
			if _, ok := s.Dequeue(); !ok {
				break
			}
		}
	}
	cycle()
	bc.Flush(func([]Transition) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
		bc.Flush(func([]Transition) {})
	}
	if bc.Noted() == 0 || s.Len() != 0 {
		b.Fatal("benchmark did not exercise the signal path")
	}
}

// BenchmarkPacerAdmit is the paced-admission hot path: every cloud copy
// of a Rate-contracted flow under backpressure pays one bucket Admit at
// the pacer's current rate, with periodic signals and recovery ticks
// mixed in. Must stay allocation-free.
func BenchmarkPacerAdmit(b *testing.B) {
	bucket := load.NewBucket(1_000_000, 64_000)
	p := NewPacer(bucket, PacerConfig{})
	now := core.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 1_000_000 // 1 ms per packet
		bucket.Admit(now, 1000)
		switch i & 1023 {
		case 0:
			p.OnSignal(now, Hot)
		case 512:
			p.OnSignal(now, Clear)
		case 513, 600, 700:
			p.Tick(now)
		}
	}
	if p.Cuts() == 0 {
		b.Fatal("pacer never cut")
	}
}

// BenchmarkRegistryChurn is the subscription-mutation hot path: every
// flow open, close, and reroute rewrites the fan-out registry. The
// key-slice and fan-out-map freelists must hold steady-state churn at
// 0 allocs/op (the CI bench gate enforces it).
func BenchmarkRegistryChurn(b *testing.B) {
	r := NewRegistry()
	path := []core.NodeID{1, 2, 3, 4}
	alt := []core.NodeID{1, 5, 6, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Update(7, 1, core.ServiceForwarding, path)
		r.Update(7, 1, core.ServiceForwarding, alt) // reroute rewrite
		r.Remove(7)
	}
	b.StopTimer()
	if r.Subscribed() != 0 {
		b.Fatal("subscription leaked")
	}
}
