package feedback

import (
	"testing"
	"time"

	"jqos/internal/core"
	"jqos/internal/load"
)

func TestBroadcasterCoalesces(t *testing.T) {
	b := NewBroadcaster()
	b.Note(1, 2, core.ServiceForwarding, Hot, 800)
	b.Note(1, 2, core.ServiceCaching, Warm, 300)
	// Same link-class flips again before the flush: latest state wins.
	b.Note(1, 2, core.ServiceForwarding, Warm, 200)
	if b.Pending() != 2 {
		t.Fatalf("pending = %d, want 2 (coalesced)", b.Pending())
	}
	var got []Transition
	b.Flush(func(batch []Transition) { got = append(got, batch...) })
	if len(got) != 2 {
		t.Fatalf("flushed %d transitions", len(got))
	}
	if got[0].State != Warm || got[0].Depth != 200 {
		t.Fatalf("coalesced transition = %+v, want latest state warm/200", got[0])
	}
	if got[1].Class != core.ServiceCaching || got[1].State != Warm {
		t.Fatalf("second transition = %+v", got[1])
	}
	if b.Pending() != 0 {
		t.Fatal("flush did not reset")
	}
	// An empty flush is a no-op and does not count.
	b.Flush(func([]Transition) { t.Fatal("empty flush invoked fn") })
	if b.Noted() != 3 || b.Flushes() != 1 {
		t.Fatalf("counters noted=%d flushes=%d", b.Noted(), b.Flushes())
	}
	// The batch state is reusable after a flush.
	b.Note(2, 1, core.ServiceForwarding, Clear, 0)
	if b.Pending() != 1 {
		t.Fatalf("pending after reuse = %d", b.Pending())
	}
}

func TestRegistrySubscriptions(t *testing.T) {
	r := NewRegistry()
	// Flow 1: ingress 10, path 10→11→12, forwarding.
	r.Update(1, 10, core.ServiceForwarding, []core.NodeID{10, 11, 12})
	// Flow 2: same path, same class, same ingress.
	r.Update(2, 10, core.ServiceForwarding, []core.NodeID{10, 11, 12})
	// Flow 3: different ingress, shares only the second link.
	r.Update(3, 11, core.ServiceForwarding, []core.NodeID{11, 12})

	if got := r.Ingresses(nil, 10, 11, core.ServiceForwarding); len(got) != 1 || got[0] != 10 {
		t.Fatalf("ingresses(10→11) = %v", got)
	}
	if got := r.Ingresses(nil, 11, 12, core.ServiceForwarding); len(got) != 2 || got[0] != 10 || got[1] != 11 {
		t.Fatalf("ingresses(11→12) = %v, want [10 11]", got)
	}
	// Class is part of the key.
	if got := r.Ingresses(nil, 11, 12, core.ServiceCaching); len(got) != 0 {
		t.Fatalf("caching ingresses = %v, want none", got)
	}
	// Direction is part of the key.
	if got := r.Ingresses(nil, 12, 11, core.ServiceForwarding); len(got) != 0 {
		t.Fatalf("reverse ingresses = %v, want none", got)
	}
	if got := r.FlowsAt(nil, 10, 11, 12, core.ServiceForwarding); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("flows at ingress 10 = %v, want [1 2]", got)
	}

	// Reroute: flow 1 moves to 10→13→12; the old links forget it.
	r.Update(1, 10, core.ServiceForwarding, []core.NodeID{10, 13, 12})
	if got := r.FlowsAt(nil, 10, 10, 11, core.ServiceForwarding); len(got) != 1 || got[0] != 2 {
		t.Fatalf("flows on old path = %v, want [2]", got)
	}
	if got := r.FlowsAt(nil, 10, 10, 13, core.ServiceForwarding); len(got) != 1 || got[0] != 1 {
		t.Fatalf("flows on new path = %v, want [1]", got)
	}

	// Class change re-keys the subscription.
	r.Update(2, 10, core.ServiceCaching, []core.NodeID{10, 11, 12})
	if got := r.FlowsAt(nil, 10, 10, 11, core.ServiceForwarding); len(got) != 0 {
		t.Fatalf("forwarding flows after class change = %v", got)
	}
	if got := r.FlowsAt(nil, 10, 10, 11, core.ServiceCaching); len(got) != 1 || got[0] != 2 {
		t.Fatalf("caching flows after class change = %v", got)
	}

	// Removal frees everything; a short path is an unsubscribe.
	r.Remove(1)
	r.Update(2, 10, core.ServiceCaching, nil)
	r.Remove(3)
	if r.Subscribed() != 0 {
		t.Fatalf("subscribed = %d after removals", r.Subscribed())
	}
	if got := r.Ingresses(nil, 11, 12, core.ServiceForwarding); len(got) != 0 {
		t.Fatalf("stale ingresses = %v", got)
	}
}

func TestPacerAIMD(t *testing.T) {
	const rate, burst = 800_000, 10_000
	b := load.NewBucket(rate, burst)
	p := NewPacer(b, PacerConfig{}) // defaults: floor 1/8, backoff 1/2, recover 1/10
	now := core.Time(0)

	if p.Throttled() || p.Rate() != rate || p.Contract() != rate {
		t.Fatalf("fresh pacer: rate=%d throttled=%v", p.Rate(), p.Throttled())
	}
	// Warm/Clear without a prior cut: no change.
	if p.OnSignal(now, Warm) || p.Tick(now) {
		t.Fatal("uncut pacer moved")
	}

	// Hot: halve. Repeated Hots keep halving down to the floor.
	if !p.OnSignal(now, Hot) || p.Rate() != rate/2 {
		t.Fatalf("after one cut rate=%d, want %d", p.Rate(), rate/2)
	}
	for i := 0; i < 10; i++ {
		p.OnSignal(now, Hot)
	}
	if p.Rate() != rate/8 {
		t.Fatalf("floor = %d, want %d", p.Rate(), rate/8)
	}
	if p.Cuts() < 3 {
		t.Fatalf("cuts = %d", p.Cuts())
	}
	// The bucket's refill follows the cut; burst depth is untouched.
	if b.Rate() != rate/8 || b.Burst() != burst {
		t.Fatalf("bucket rate=%d burst=%d", b.Rate(), b.Burst())
	}

	// Recovery is frozen while Hot...
	if p.Tick(now) {
		t.Fatal("recovered while hot")
	}
	// ...and resumes additively after a cooler signal.
	p.OnSignal(now, Warm)
	if !p.Tick(now) || p.Rate() != rate/8+rate/10 {
		t.Fatalf("after one recovery rate=%d", p.Rate())
	}
	for i := 0; i < 20; i++ {
		p.Tick(now)
	}
	if p.Rate() != rate || p.Throttled() {
		t.Fatalf("recovery overshot or stalled: rate=%d", p.Rate())
	}
	if p.Tick(now) {
		t.Fatal("ticked past the contract")
	}
	if p.Recoveries() == 0 {
		t.Fatal("no recoveries counted")
	}
}

// TestPacerUnfreeze: a rerouted flow's pacer must not stay wedged on a
// Hot signal from a queue it no longer traverses — Unfreeze lets the
// additive recovery resume without waiting for a cooling transition
// that will never be delivered.
func TestPacerUnfreeze(t *testing.T) {
	const rate = 800_000
	b := load.NewBucket(rate, 10_000)
	p := NewPacer(b, PacerConfig{})
	now := core.Time(0)
	p.OnSignal(now, Hot)
	if p.Tick(now) {
		t.Fatal("recovered while frozen hot")
	}
	p.Unfreeze()
	if !p.Tick(now) {
		t.Fatal("unfrozen pacer did not recover")
	}
	if p.Rate() >= rate {
		t.Fatalf("one recovery step reached the contract: %d", p.Rate())
	}
	// A Hot signal from the new path re-freezes and re-cuts as usual.
	if !p.OnSignal(now, Hot) || p.Tick(now) {
		t.Fatal("re-freeze after Unfreeze broken")
	}
}

func TestPacerGovernsAdmission(t *testing.T) {
	const rate = 100_000
	b := load.NewBucket(rate, 1500)
	p := NewPacer(b, PacerConfig{Floor: 0.25, Backoff: 0.5})
	now := core.Time(0)
	// Drain the initial burst.
	for b.Admit(now, 1500) {
	}
	// One second of 1000-byte packets offered every 10 ms: the contract
	// admits ~100 (one per step at 100 kB/s)...
	admitSecond := func() int {
		count := 0
		for i := 0; i < 100; i++ {
			now += core.Time(10 * time.Millisecond)
			if b.Admit(now, 1000) {
				count++
			}
		}
		return count
	}
	if got := admitSecond(); got < 95 || got > 100 {
		t.Fatalf("full-rate second admitted %d packets, want ~100", got)
	}
	// ...and the halved pacing rate admits ~50.
	p.OnSignal(now, Hot)
	if got := admitSecond(); got < 45 || got > 55 {
		t.Fatalf("paced second admitted %d packets, want ~50", got)
	}
}

// TestPacerSetContract: a service move resizes the honorable envelope;
// the pacer's ceiling, floor, and step follow, and the current rate
// clamps into the new range.
func TestPacerSetContract(t *testing.T) {
	const rate = 800_000
	b := load.NewBucket(rate, 10_000)
	p := NewPacer(b, PacerConfig{}) // floor 1/8, recover 1/10
	now := core.Time(0)

	// Shrink: the current (uncut) rate clamps down to the new contract.
	p.SetContract(now, 100_000)
	if p.Contract() != 100_000 || p.Rate() != 100_000 || b.Rate() != 100_000 {
		t.Fatalf("shrunk: contract=%d rate=%d bucket=%d", p.Contract(), p.Rate(), b.Rate())
	}
	if p.Throttled() {
		t.Fatal("rate at the new contract reads as throttled")
	}
	// Cuts and recovery now work in the new range.
	p.OnSignal(now, Hot)
	if p.Rate() != 50_000 {
		t.Fatalf("cut after resize = %d, want 50000", p.Rate())
	}
	p.Unfreeze()
	if !p.Tick(now) || p.Rate() != 60_000 {
		t.Fatalf("recovery step after resize = %d, want 60000", p.Rate())
	}

	// Widen: the ceiling rises, the current rate stays put and reads as
	// throttled so additive recovery climbs toward the new contract.
	p.SetContract(now, 400_000)
	if p.Contract() != 400_000 || p.Rate() != 60_000 || !p.Throttled() {
		t.Fatalf("widened: contract=%d rate=%d", p.Contract(), p.Rate())
	}
	for i := 0; i < 20; i++ {
		p.Tick(now)
	}
	if p.Rate() != 400_000 {
		t.Fatalf("recovery stalled at %d", p.Rate())
	}
}

// TestRegistryUpdateReportsChange: an identical re-subscription is a
// no-op (callers key pacer unfreezing off the return value).
func TestRegistryUpdateReportsChange(t *testing.T) {
	r := NewRegistry()
	path := []core.NodeID{10, 11, 12}
	if !r.Update(1, 10, core.ServiceForwarding, path) {
		t.Fatal("first subscription not reported as a change")
	}
	if r.Update(1, 10, core.ServiceForwarding, path) {
		t.Fatal("identical re-subscription reported as a change")
	}
	if !r.Update(1, 10, core.ServiceCaching, path) {
		t.Fatal("class change not reported")
	}
	if !r.Update(1, 10, core.ServiceCaching, []core.NodeID{10, 13, 12}) {
		t.Fatal("path change not reported")
	}
	if !r.Remove(1) || r.Remove(1) {
		t.Fatal("Remove existence reporting wrong")
	}
	if r.Update(2, 10, core.ServiceCaching, nil) {
		t.Fatal("empty-path subscribe of an unknown flow reported as a change")
	}
}
