package feedback

import (
	"jqos/internal/core"
	"jqos/internal/load"
)

// PacerConfig tunes the AIMD reaction of a Rate-contracted flow to
// congestion signals. The zero value takes the defaults below.
type PacerConfig struct {
	// Floor is the fraction of the contract rate the multiplicative cut
	// never goes below — a paced flow keeps a trickle so recovery has a
	// base to grow from. Default 0.125 (one eighth of the contract).
	Floor float64
	// Backoff is the multiplicative factor applied per Hot signal
	// (0 < Backoff < 1). Default 0.5 — the classic halving.
	Backoff float64
	// Recover is the additive step per recovery tick, as a fraction of
	// the contract rate. Default 0.1.
	Recover float64
}

// Pacer defaults.
const (
	DefaultPacerFloor   = 0.125
	DefaultPacerBackoff = 0.5
	DefaultPacerRecover = 0.1
)

func (c PacerConfig) withDefaults() PacerConfig {
	if c.Floor <= 0 || c.Floor > 1 {
		c.Floor = DefaultPacerFloor
	}
	if c.Backoff <= 0 || c.Backoff >= 1 {
		c.Backoff = DefaultPacerBackoff
	}
	if c.Recover <= 0 || c.Recover > 1 {
		c.Recover = DefaultPacerRecover
	}
	return c
}

// Pacer throttles one flow's admission token bucket under backpressure:
// a Hot signal cuts the refill rate multiplicatively toward the floor,
// and once the queue cools, periodic Ticks recover it additively back
// to the contract — AIMD, with the contract rate as the ceiling. The
// pacer owns only the bucket's RATE; its burst depth and token balance
// are untouched, so pacing composes with both policing and shaping
// admission.
type Pacer struct {
	bucket *load.Bucket
	cfg    PacerConfig // resolved (withDefaults applied)
	base   int64       // contract rate (ceiling)
	floor  int64
	step   int64
	cur    int64
	// hot pauses additive recovery between a Hot signal and the next
	// cooler one: growing while the queue is still past the high
	// watermark would fight the cut.
	hot bool

	cuts       uint64
	recoveries uint64
}

// NewPacer wraps a flow's admission bucket. The bucket's current rate
// is taken as the contract (the AIMD ceiling).
func NewPacer(bucket *load.Bucket, cfg PacerConfig) *Pacer {
	cfg = cfg.withDefaults()
	base := bucket.Rate()
	p := &Pacer{
		bucket: bucket,
		cfg:    cfg,
		cur:    base,
	}
	p.rebase(base)
	return p
}

// rebase derives the floor and recovery step from a contract rate.
func (p *Pacer) rebase(contract int64) {
	p.base = contract
	p.floor = int64(float64(contract) * p.cfg.Floor)
	if p.floor < 1 {
		p.floor = 1
	}
	p.step = int64(float64(contract) * p.cfg.Recover)
	if p.step < 1 {
		p.step = 1
	}
}

// SetContract re-bases the AIMD ceiling when the flow's honorable
// envelope changes mid-flight — a service-class move resizes the class
// share the contract was validated against. Floor and recovery step
// re-derive from the new contract; the current rate clamps into
// [floor, contract] (and the bucket follows when it moves). The
// frozen/hot state is untouched.
func (p *Pacer) SetContract(now core.Time, contract int64) {
	if contract <= 0 || contract == p.base {
		return
	}
	p.rebase(contract)
	cur := p.cur
	if cur > contract {
		cur = contract
	}
	if cur < p.floor {
		cur = p.floor
	}
	if cur != p.cur {
		p.cur = cur
		p.bucket.SetRate(now, cur)
	}
}

// OnSignal applies one congestion signal for the flow's path, returning
// whether the pacing rate changed (a multiplicative cut). Warm and
// Clear signals do not change the rate directly — they unfreeze the
// additive recovery that Tick performs.
func (p *Pacer) OnSignal(now core.Time, st State) bool {
	if st != Hot {
		p.hot = false
		return false
	}
	p.hot = true
	next := int64(float64(p.cur) * p.cfg.Backoff)
	if next < p.floor {
		next = p.floor
	}
	if next == p.cur {
		return false
	}
	p.cur = next
	p.cuts++
	p.bucket.SetRate(now, next)
	return true
}

// Unfreeze clears the hot-freeze without touching the rate. The
// hosting runtime calls it when the flow's (path, class) subscription
// changes: the frozen state described the OLD queue, whose cooling
// transition will never be delivered to this flow again, so leaving
// the freeze in place would wedge the pacer at its cut rate forever on
// an uncongested new path. If the new path IS congested, its own Hot
// signal re-freezes (and re-cuts) on arrival.
func (p *Pacer) Unfreeze() { p.hot = false }

// Tick is one additive-recovery step: while the last signal was cooler
// than Hot and the rate sits below the contract, add one step (capped
// at the contract). Returns whether the rate changed.
func (p *Pacer) Tick(now core.Time) bool {
	if p.hot || p.cur >= p.base {
		return false
	}
	next := p.cur + p.step
	if next > p.base {
		next = p.base
	}
	p.cur = next
	p.recoveries++
	p.bucket.SetRate(now, next)
	return true
}

// Rate returns the current pacing rate in bytes/second.
func (p *Pacer) Rate() int64 { return p.cur }

// Contract returns the contracted (ceiling) rate in bytes/second.
func (p *Pacer) Contract() int64 { return p.base }

// Throttled reports whether the pacer currently holds the flow below
// its contract.
func (p *Pacer) Throttled() bool { return p.cur < p.base }

// Cuts returns the lifetime count of multiplicative cuts.
func (p *Pacer) Cuts() uint64 { return p.cuts }

// Recoveries returns the lifetime count of additive recovery steps.
func (p *Pacer) Recoveries() uint64 { return p.recoveries }
