package recovery

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"jqos/internal/core"
	"jqos/internal/rs"
	"jqos/internal/wire"
)

const (
	self   core.NodeID = 100
	dcNode core.NodeID = 2
	sender core.NodeID = 50
)

func testReceiver() *Receiver {
	cfg := DefaultConfig(self, dcNode, 100*time.Millisecond)
	return New(cfg)
}

func dataHdr(flow, seq uint64, ts core.Time) wire.Header {
	return wire.Header{
		Type: wire.TypeData, Flow: core.FlowID(flow), Seq: core.Seq(seq),
		TS: ts, Src: sender, Dst: self,
	}
}

func pay(seq uint64) []byte { return []byte{byte(seq), 0xAB, byte(seq >> 8)} }

// feed pushes seq with default payload at time now.
func feed(r *Receiver, now core.Time, flow, seq uint64) Result {
	h := dataHdr(flow, seq, now)
	return r.OnData(now, &h, pay(seq))
}

func emitTypes(t *testing.T, emits []core.Emit) []wire.MsgType {
	t.Helper()
	var ts []wire.MsgType
	for _, em := range emits {
		var h wire.Header
		if _, err := wire.SplitMessage(&h, em.Msg); err != nil {
			t.Fatal(err)
		}
		ts = append(ts, h.Type)
	}
	return ts
}

func TestInOrderDelivery(t *testing.T) {
	r := testReceiver()
	var delivered []core.Seq
	for seq := uint64(1); seq <= 5; seq++ {
		res := feed(r, core.Time(seq)*time.Millisecond, 1, seq)
		if len(res.Emits) != 0 {
			t.Fatalf("seq %d emitted %v", seq, emitTypes(t, res.Emits))
		}
		for _, d := range res.Deliveries {
			delivered = append(delivered, d.Packet.ID.Seq)
			if d.Recovered || d.Via != core.ServiceInternet {
				t.Errorf("direct delivery marked recovered: %+v", d)
			}
		}
	}
	if len(delivered) != 5 {
		t.Fatalf("delivered %v", delivered)
	}
	if r.Stats().DataReceived != 5 || r.Stats().LossesSeen != 0 {
		t.Errorf("stats: %+v", r.Stats())
	}
}

func TestGapTriggersNACK(t *testing.T) {
	r := testReceiver()
	feed(r, 0, 1, 1)
	res := feed(r, time.Millisecond, 1, 4) // 2,3 missing
	nacks := 0
	for i, typ := range emitTypes(t, res.Emits) {
		if typ != wire.TypeNACK {
			t.Errorf("emit %d = %v", i, typ)
		}
		nacks++
	}
	if nacks != 2 {
		t.Fatalf("NACKs = %d, want 2", nacks)
	}
	var h wire.Header
	if _, err := wire.SplitMessage(&h, res.Emits[0].Msg); err != nil {
		t.Fatal(err)
	}
	if h.Dst != dcNode || res.Emits[0].To != dcNode {
		t.Error("NACK not addressed to the DC")
	}
	if h.Seq != 2 {
		t.Errorf("first NACK seq = %d", h.Seq)
	}
	st := r.Stats()
	if st.GapNACKs != 2 || st.LossesSeen != 2 {
		t.Errorf("stats: %+v", st)
	}
	if r.OutstandingLosses() != 2 {
		t.Errorf("outstanding = %d", r.OutstandingLosses())
	}
}

func TestMidJoinDoesNotNACKHistory(t *testing.T) {
	r := testReceiver()
	res := feed(r, 0, 1, 500)
	if len(res.Emits) != 0 {
		t.Fatalf("join emitted %v", emitTypes(t, res.Emits))
	}
	if len(res.Deliveries) != 1 {
		t.Fatal("join packet not delivered")
	}
}

func TestLateArrivalResolvesLoss(t *testing.T) {
	r := testReceiver()
	feed(r, 0, 1, 1)
	feed(r, time.Millisecond, 1, 3) // 2 missing
	res := feed(r, 2*time.Millisecond, 1, 2)
	if len(res.Deliveries) != 1 || res.Deliveries[0].Recovered {
		t.Fatalf("late arrival mishandled: %+v", res.Deliveries)
	}
	if r.OutstandingLosses() != 0 {
		t.Error("loss not resolved")
	}
	if r.Stats().LateArrivals != 1 {
		t.Errorf("stats: %+v", r.Stats())
	}
}

func TestDuplicateDropped(t *testing.T) {
	r := testReceiver()
	feed(r, 0, 1, 1)
	res := feed(r, time.Millisecond, 1, 1)
	if len(res.Deliveries) != 0 {
		t.Fatal("duplicate delivered")
	}
	if r.Stats().Duplicates != 1 {
		t.Errorf("stats: %+v", r.Stats())
	}
}

func TestFirstPacketArmsLongTimer(t *testing.T) {
	// A lone packet gives no inter-arrival evidence of a burst, so the
	// long (RTT) timer applies — this is what keeps CBR streams with
	// spacing above the small timeout from NACK-storming.
	r := testReceiver()
	feed(r, 0, 1, 1)
	dl, ok := r.NextDeadline()
	if !ok || dl != 100*time.Millisecond {
		t.Fatalf("deadline = %v %v, want RTT", dl, ok)
	}
}

func TestSmallTimeoutNACKsAndGoesIdle(t *testing.T) {
	r := testReceiver()
	feed(r, 0, 1, 1)
	feed(r, 5*time.Millisecond, 1, 2) // 5ms inter-arrival → burst state
	dl, ok := r.NextDeadline()
	if !ok || dl != 30*time.Millisecond {
		t.Fatalf("deadline = %v %v, want 5ms+small", dl, ok)
	}
	res := r.OnTimer(30 * time.Millisecond)
	types := emitTypes(t, res.Emits)
	if len(types) != 1 || types[0] != wire.TypeNACK {
		t.Fatalf("timer emits = %v", types)
	}
	var h wire.Header
	wire.SplitMessage(&h, res.Emits[0].Msg)
	if h.Seq != 3 || h.Flags&wire.FlagWantVerify == 0 {
		t.Errorf("timer NACK: seq=%d flags=%x", h.Seq, h.Flags)
	}
	if r.Stats().TimerNACKs != 1 {
		t.Errorf("stats: %+v", r.Stats())
	}
	// Now idle: long timer (RTT = 100ms) armed.
	dl, ok = r.NextDeadline()
	if !ok || dl > 30*time.Millisecond+100*time.Millisecond {
		t.Fatalf("idle deadline = %v", dl)
	}
}

func TestIdleTimeoutFiresOnceThenDisarms(t *testing.T) {
	cfg := DefaultConfig(self, dcNode, 100*time.Millisecond)
	cfg.NACKRetry = 0 // isolate the state machine
	cfg.GiveUpAfter = time.Hour
	r := New(cfg)
	feed(r, 0, 1, 1)
	r.OnTimer(25 * time.Millisecond) // burst → NACK seq2, idle
	res := r.OnTimer(time.Second)    // idle fires: NACK seq3
	if n := len(res.Emits); n != 1 {
		t.Fatalf("idle emits = %d", n)
	}
	if r.Stats().IdleNACKs != 1 {
		t.Errorf("stats: %+v", r.Stats())
	}
	// After the single idle NACK the flow timer disarms.
	r.OnTimer(2 * time.Second)
	res = r.OnTimer(3 * time.Second)
	if len(res.Emits) != 0 {
		t.Error("idle NACK repeated")
	}
	// New data re-arms everything.
	feed(r, 4*time.Second, 1, 4)
	if _, ok := r.NextDeadline(); !ok {
		t.Error("timer not re-armed by data")
	}
}

func TestSingleTimerModeKeepsFiring(t *testing.T) {
	cfg := DefaultConfig(self, dcNode, 100*time.Millisecond)
	cfg.SingleTimer = true
	cfg.NACKRetry = 0
	cfg.GiveUpAfter = time.Hour
	r := New(cfg)
	feed(r, 0, 1, 1)
	fired := 0
	now := core.Time(0)
	for i := 0; i < 10; i++ {
		dl, ok := r.NextDeadline()
		if !ok {
			break
		}
		now = dl
		res := r.OnTimer(now)
		fired += len(res.Emits)
	}
	// Single-timer mode keeps NACKing every small timeout — the NACK
	// storm the two-state model avoids (§6.4: 5× fewer NACKs).
	if fired < 5 {
		t.Errorf("single-timer fired only %d NACKs", fired)
	}
}

func TestTwoStateVsSingleTimerNACKReduction(t *testing.T) {
	// Bursty sender: 10 bursts of 5 packets at 5ms spacing, 2s gaps.
	run := func(single bool) uint64 {
		cfg := DefaultConfig(self, dcNode, 200*time.Millisecond)
		cfg.SingleTimer = single
		cfg.NACKRetry = 0
		cfg.GiveUpAfter = time.Hour
		r := New(cfg)
		now := core.Time(0)
		seq := uint64(1)
		for burst := 0; burst < 10; burst++ {
			for p := 0; p < 5; p++ {
				feed(r, now, 1, seq)
				seq++
				now += 5 * time.Millisecond
			}
			// Silence between bursts: drive timers to quiescence.
			end := now + 2*time.Second
			for {
				dl, ok := r.NextDeadline()
				if !ok || dl > end {
					break
				}
				r.OnTimer(dl)
			}
			now = end
		}
		return r.Stats().NACKsSent()
	}
	two := run(false)
	single := run(true)
	if two == 0 || single == 0 {
		t.Fatalf("no NACKs at all: two=%d single=%d", two, single)
	}
	ratio := float64(single) / float64(two)
	if ratio < 3 {
		t.Errorf("single/two NACK ratio = %.1f (%d vs %d), want ≥3 (paper: ~5x)",
			ratio, single, two)
	}
}

func TestNACKRetryEscalation(t *testing.T) {
	cfg := DefaultConfig(self, dcNode, 100*time.Millisecond)
	cfg.NACKRetry = 20 * time.Millisecond
	cfg.MaxNACKs = 3
	cfg.GiveUpAfter = time.Hour
	cfg.SmallTimeout = 10 * time.Second // keep the burst timer out of the way
	r := New(cfg)
	feed(r, 0, 1, 1)
	feed(r, time.Millisecond, 1, 3) // seq 2 missing, first NACK sent
	res := r.OnTimer(21 * time.Millisecond)
	if got := len(res.Emits); got < 1 {
		t.Fatalf("no retry NACK: %d", got)
	}
	r.OnTimer(41 * time.Millisecond)
	// MaxNACKs=3 reached; no further retries.
	res = r.OnTimer(61 * time.Millisecond)
	for _, typ := range emitTypes(t, res.Emits) {
		if typ == wire.TypeNACK {
			t.Error("retry beyond MaxNACKs")
		}
	}
	if r.Stats().RetryNACKs != 2 {
		t.Errorf("retries = %d", r.Stats().RetryNACKs)
	}
}

func TestGiveUpAfterHorizon(t *testing.T) {
	cfg := DefaultConfig(self, dcNode, 50*time.Millisecond)
	cfg.GiveUpAfter = 100 * time.Millisecond
	cfg.NACKRetry = 0
	cfg.SmallTimeout = 10 * time.Second // keep the burst timer out of the way
	r := New(cfg)
	feed(r, 0, 1, 1)
	feed(r, time.Millisecond, 1, 3)
	r.OnTimer(200 * time.Millisecond)
	if r.OutstandingLosses() != 0 {
		t.Error("loss not abandoned")
	}
	if r.Stats().GaveUp != 1 {
		t.Errorf("stats: %+v", r.Stats())
	}
}

func TestOnRecoveredDelivers(t *testing.T) {
	r := testReceiver()
	feed(r, 0, 1, 1)
	feed(r, time.Millisecond, 1, 3) // 2 missing
	h := wire.Header{Type: wire.TypeRecovered, Service: core.ServiceCoding,
		Flow: 1, Seq: 2, TS: 0, Src: dcNode, Dst: self}
	res := r.OnRecovered(10*time.Millisecond, &h, pay(2))
	if len(res.Deliveries) != 1 {
		t.Fatal("no delivery")
	}
	d := res.Deliveries[0]
	if !d.Recovered || d.Via != core.ServiceCoding || !bytes.Equal(d.Packet.Payload, pay(2)) {
		t.Errorf("delivery: %+v", d)
	}
	if r.OutstandingLosses() != 0 || r.Stats().Recovered != 1 {
		t.Errorf("stats: %+v", r.Stats())
	}
	// A second copy of the same recovery is a duplicate.
	if res := r.OnRecovered(11*time.Millisecond, &h, pay(2)); len(res.Deliveries) != 0 {
		t.Error("duplicate recovery delivered")
	}
}

func TestInStreamLocalDecode(t *testing.T) {
	r := testReceiver()
	// Build a 3-packet block with 1 parity, lose seq 2.
	payloads := [][]byte{pay(1), pay(2), pay(3)}
	shards, shardLen, err := rs.PackBatch(payloads)
	if err != nil {
		t.Fatal(err)
	}
	codec, _ := rs.NewCodec(3, 1)
	all := append(shards, make([]byte, shardLen))
	if err := codec.Encode(all); err != nil {
		t.Fatal(err)
	}
	feed(r, 0, 1, 1)
	feed(r, time.Millisecond, 1, 3) // seq2 missing → NACK
	meta := wire.Coded{Batch: 9, Kind: wire.InStream, K: 3, R: 1, Index: 0,
		ShardLen: uint16(shardLen),
		Sources: []wire.SourceRef{
			{Flow: 1, Seq: 1, Receiver: self},
			{Flow: 1, Seq: 2, Receiver: self},
			{Flow: 1, Seq: 3, Receiver: self},
		}}
	h := wire.Header{Type: wire.TypeCoded, Service: core.ServiceCoding, Src: dcNode, Dst: self}
	res := r.OnCoded(2*time.Millisecond, &h, &meta, all[3])
	if len(res.Deliveries) != 1 {
		t.Fatalf("deliveries = %d", len(res.Deliveries))
	}
	d := res.Deliveries[0]
	if d.Packet.ID.Seq != 2 || !bytes.Equal(d.Packet.Payload, pay(2)) || !d.Recovered {
		t.Errorf("decoded delivery: %+v seq payload %q", d, d.Packet.Payload)
	}
	if r.Stats().InStreamLocal != 1 {
		t.Errorf("stats: %+v", r.Stats())
	}
	if r.OutstandingLosses() != 0 {
		t.Error("loss still tracked after decode")
	}
}

func TestInStreamDecodeInsufficient(t *testing.T) {
	r := testReceiver()
	// Two of three packets missing with only one parity: cannot decode.
	payloads := [][]byte{pay(1), pay(2), pay(3)}
	shards, shardLen, _ := rs.PackBatch(payloads)
	codec, _ := rs.NewCodec(3, 1)
	all := append(shards, make([]byte, shardLen))
	codec.Encode(all)
	feed(r, 0, 1, 1) // only seq 1 received
	meta := wire.Coded{Batch: 9, Kind: wire.InStream, K: 3, R: 1, Index: 0,
		ShardLen: uint16(shardLen),
		Sources: []wire.SourceRef{
			{Flow: 1, Seq: 1, Receiver: self},
			{Flow: 1, Seq: 2, Receiver: self},
			{Flow: 1, Seq: 3, Receiver: self},
		}}
	h := wire.Header{Type: wire.TypeCoded, Src: dcNode, Dst: self}
	res := r.OnCoded(time.Millisecond, &h, &meta, all[3])
	if len(res.Deliveries) != 0 {
		t.Fatal("decoded from insufficient shards")
	}
	// The pending decode state expires via OnTimer.
	r.OnTimer(time.Hour)
	if len(r.inDec) != 0 {
		t.Error("in-stream decode state leaked")
	}
}

func TestCrossStreamCodedIgnoredLocally(t *testing.T) {
	r := testReceiver()
	meta := wire.Coded{Batch: 9, Kind: wire.CrossStream, K: 2, R: 1,
		Sources: []wire.SourceRef{{Flow: 1, Seq: 1, Receiver: self}, {Flow: 2, Seq: 1, Receiver: 7}}}
	h := wire.Header{Type: wire.TypeCoded, Src: dcNode, Dst: self}
	if res := r.OnCoded(0, &h, &meta, []byte{1, 2}); len(res.Deliveries) != 0 || len(res.Emits) != 0 {
		t.Error("cross-stream parity processed by receiver")
	}
}

func TestCoopReqAnswered(t *testing.T) {
	r := testReceiver()
	feed(r, 0, 1, 7)
	ref := wire.CoopRef{Batch: 3, Want: core.PacketID{Flow: 9, Seq: 1}}
	h := wire.Header{Type: wire.TypeCoopReq, Flow: 1, Seq: 7, Src: dcNode, Dst: self}
	res := r.OnCoopReq(time.Millisecond, &h, &ref)
	if len(res.Emits) != 1 || res.Emits[0].To != dcNode {
		t.Fatalf("coop response: %+v", res.Emits)
	}
	var rh wire.Header
	body, _ := wire.SplitMessage(&rh, res.Emits[0].Msg)
	if rh.Type != wire.TypeCoopResp || rh.Flow != 1 || rh.Seq != 7 {
		t.Errorf("resp header: %+v", rh)
	}
	var gotRef wire.CoopRef
	payload, err := gotRef.Unmarshal(body)
	if err != nil || gotRef != ref || !bytes.Equal(payload, pay(7)) {
		t.Errorf("resp body: %+v %q %v", gotRef, payload, err)
	}
	if r.Stats().CoopResponses != 1 {
		t.Errorf("stats: %+v", r.Stats())
	}
}

func TestCoopReqForUnknownPacketIgnored(t *testing.T) {
	r := testReceiver()
	ref := wire.CoopRef{Batch: 3}
	h := wire.Header{Type: wire.TypeCoopReq, Flow: 1, Seq: 7, Src: dcNode, Dst: self}
	if res := r.OnCoopReq(0, &h, &ref); len(res.Emits) != 0 {
		t.Error("responded without the packet")
	}
	feed(r, 0, 2, 1)
	h.Flow = 2
	h.Seq = 99
	if res := r.OnCoopReq(0, &h, &ref); len(res.Emits) != 0 {
		t.Error("responded for unseen seq")
	}
}

func TestVerifyResponses(t *testing.T) {
	r := testReceiver()
	feed(r, 0, 1, 1)
	feed(r, time.Millisecond, 1, 3) // seq 2 missing
	h := wire.Header{Type: wire.TypeVerify, Flow: 1, Seq: 2, Src: dcNode, Dst: self}
	res := r.OnVerify(2*time.Millisecond, &h)
	var rh wire.Header
	wire.SplitMessage(&rh, res.Emits[0].Msg)
	if rh.Type != wire.TypeVerifyResp || rh.Flags&wire.FlagStillWanted == 0 {
		t.Errorf("verify resp: %+v", rh)
	}
	// After the packet shows up, verification reports not-wanted.
	feed(r, 3*time.Millisecond, 1, 2)
	res = r.OnVerify(4*time.Millisecond, &h)
	wire.SplitMessage(&rh, res.Emits[0].Msg)
	if rh.Flags&wire.FlagStillWanted != 0 {
		t.Error("verify still wanted after arrival")
	}
	if r.Stats().VerifyReplies != 2 {
		t.Errorf("stats: %+v", r.Stats())
	}
}

func TestRecentWindowEviction(t *testing.T) {
	cfg := DefaultConfig(self, dcNode, 100*time.Millisecond)
	cfg.RecentWindow = 4
	r := New(cfg)
	for seq := uint64(1); seq <= 10; seq++ {
		feed(r, core.Time(seq)*time.Millisecond, 1, seq)
	}
	fs := r.flows[1]
	if len(fs.recent) != 4 || len(fs.delivered) != 4 {
		t.Errorf("window sizes: recent=%d delivered=%d", len(fs.recent), len(fs.delivered))
	}
	if _, ok := fs.recent[10]; !ok {
		t.Error("newest packet evicted")
	}
	if _, ok := fs.recent[1]; ok {
		t.Error("oldest packet retained")
	}
}

func TestMultipleFlowsIndependent(t *testing.T) {
	r := testReceiver()
	feed(r, 0, 1, 1)
	feed(r, 0, 2, 1)
	res := feed(r, time.Millisecond, 1, 3) // flow 1 gap
	if len(res.Emits) != 1 {
		t.Fatal("flow 1 gap NACK missing")
	}
	if res := feed(r, time.Millisecond, 2, 2); len(res.Emits) != 0 {
		t.Error("flow 2 affected by flow 1 gap")
	}
}

func TestDeliveryCarriesTimestamps(t *testing.T) {
	r := testReceiver()
	h := dataHdr(1, 1, 5*time.Millisecond) // sender stamped 5ms
	res := r.OnData(9*time.Millisecond, &h, pay(1))
	d := res.Deliveries[0]
	if d.Packet.Sent != 5*time.Millisecond || d.At != 9*time.Millisecond {
		t.Errorf("timestamps: sent=%v at=%v", d.Packet.Sent, d.At)
	}
}

func TestDefaultsFilled(t *testing.T) {
	r := New(Config{Self: self, DC: dcNode})
	cfg := r.Config()
	if cfg.SmallTimeout != 25*time.Millisecond || cfg.RTT <= 0 || cfg.MaxNACKs <= 0 ||
		cfg.GiveUpAfter <= 0 || cfg.RecentWindow <= 0 {
		t.Errorf("defaults not filled: %+v", cfg)
	}
}

func TestStringer(t *testing.T) {
	r := testReceiver()
	if s := r.String(); !strings.Contains(s, "0 flows") {
		t.Errorf("String = %q", s)
	}
}

func BenchmarkOnDataInOrder(b *testing.B) {
	r := testReceiver()
	payload := make([]byte, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := dataHdr(1, uint64(i+1), core.Time(i))
		r.OnData(core.Time(i), &h, payload)
	}
}
