// Package recovery implements the receiver-side J-QoS reliability layer
// (§3.4): loss detection via sequence gaps and a two-state Markov timeout
// model, NACK generation toward the nearby DC, local decoding of in-stream
// parity, cooperative-recovery helper duties, and spurious-recovery
// verification. Like the DC engines it is sans-IO: events in, Emits and
// Deliveries out.
package recovery

import (
	"fmt"

	"jqos/internal/core"
	"jqos/internal/rs"
	"jqos/internal/wire"
)

// Config tunes one receiving endpoint.
type Config struct {
	// Self is this receiver's node ID; DC is its nearby data center
	// (DC2), the target of NACKs and pulls.
	Self core.NodeID
	DC   core.NodeID
	// Service selects what recovery the NACKs request; it is stamped
	// into emitted headers (caching and coding share this layer).
	Service core.Service
	// SmallTimeout is the in-burst loss-detection timer (paper: 25 ms).
	SmallTimeout core.Time
	// RTT is the direct-path round trip; the long (cross-burst) timer
	// and the give-up horizon derive from it.
	RTT core.Time
	// NACKRetry is the re-NACK interval for an outstanding loss
	// (a repeat NACK escalates DC2 from in-stream to cooperative
	// recovery). Zero disables retries.
	NACKRetry core.Time
	// MaxNACKs bounds NACKs per missing packet.
	MaxNACKs int
	// GiveUpAfter abandons a missing packet (the paper counts recovery
	// slower than one RTT as a loss; we keep trying a little longer and
	// let the experiment apply the one-RTT rule). Default 4×RTT.
	GiveUpAfter core.Time
	// RecentWindow is how many delivered packets per flow are retained
	// for cooperative responses and in-stream decoding.
	RecentWindow int
	// SingleTimer disables the two-state model: the small timeout runs
	// across bursts too (the ablation behind the paper's "5× fewer
	// NACKs" claim).
	SingleTimer bool
	// PumpWindow sizes the sustained-recovery pump: when recoveries
	// arrive while the direct path is silent (an outage), the receiver
	// keeps up to this many speculative NACKs outstanding ahead of the
	// last recovered packet, letting recovery proceed at the parity
	// arrival rate ("repeatedly applying this cooperative recovery
	// process … recovers an indefinite series of losses", §4.4).
	// 0 = default (16); negative disables the pump.
	PumpWindow int
}

// DefaultConfig returns deployment defaults for a path with the given RTT.
func DefaultConfig(self, dc core.NodeID, rtt core.Time) Config {
	return Config{
		Self:         self,
		DC:           dc,
		Service:      core.ServiceCoding,
		SmallTimeout: 25e6, // 25ms
		RTT:          rtt,
		NACKRetry:    rtt / 4,
		MaxNACKs:     3,
		GiveUpAfter:  4 * rtt,
		RecentWindow: 128,
	}
}

func (c *Config) fillDefaults() {
	if c.SmallTimeout <= 0 {
		c.SmallTimeout = 25e6
	}
	if c.RTT <= 0 {
		c.RTT = 100e6
	}
	if c.MaxNACKs <= 0 {
		c.MaxNACKs = 3
	}
	if c.GiveUpAfter <= 0 {
		c.GiveUpAfter = 4 * c.RTT
	}
	if c.RecentWindow <= 0 {
		c.RecentWindow = 128
	}
	if c.NACKRetry < 0 {
		c.NACKRetry = 0
	}
	if c.PumpWindow == 0 {
		c.PumpWindow = 16
	}
}

// Stats counts receiver-side protocol activity.
type Stats struct {
	DataReceived uint64
	// DirectArrivals counts data copies that arrived over the direct
	// Internet path (no FlagDup), whether they were delivered or
	// deduplicated — the unbiased direct-path loss signal: an
	// overlay-duplicated copy winning the arrival race must not make
	// the direct path look lossy.
	DirectArrivals uint64
	Duplicates     uint64
	LossesSeen     uint64 // distinct missing packets detected
	GapNACKs       uint64 // NACKs from sequence gaps
	TimerNACKs     uint64 // NACKs from small-timeout expiry (burst tail)
	IdleNACKs      uint64 // NACKs from long-timeout expiry
	PumpNACKs      uint64 // speculative NACKs from the outage pump
	RetryNACKs     uint64
	Recovered      uint64 // packets restored by any cloud service
	InStreamLocal  uint64 // of those, decoded locally from in-stream parity
	LateArrivals   uint64 // missing packets that showed up on their own
	GaveUp         uint64
	CoopResponses  uint64
	VerifyReplies  uint64
}

// NACKsSent totals every NACK category.
func (s Stats) NACKsSent() uint64 {
	return s.GapNACKs + s.TimerNACKs + s.IdleNACKs + s.PumpNACKs + s.RetryNACKs
}

// Result is the outcome of one event: messages to transmit and packets to
// hand to the application.
type Result struct {
	Emits      []core.Emit
	Deliveries []core.Delivery
}

func (r *Result) merge(o Result) {
	r.Emits = append(r.Emits, o.Emits...)
	r.Deliveries = append(r.Deliveries, o.Deliveries...)
}

type markovState uint8

const (
	stateIdle markovState = iota
	stateBurst
)

type missState struct {
	firstMiss core.Time
	nacks     int
	nextNACK  core.Time
	hasNACK   bool // at least one NACK actually sent
}

type flowState struct {
	id          core.FlowID
	started     bool
	next        core.Seq
	state       markovState
	deadline    core.Time // 0 = timer disarmed
	idleFired   bool      // one idle NACK per silence period
	everArrived bool
	lastArrival core.Time
	lastDirect  core.Time // last arrival on the direct path
	pumpHigh    core.Seq  // highest seq the pump has NACKed
	missing     map[core.Seq]*missState
	delivered   map[core.Seq]bool
	recent      map[core.Seq][]byte
	order       []core.Seq // recent-window eviction order
	src         core.NodeID
}

// inDecode accumulates in-stream parity for local decoding.
type inDecode struct {
	meta    wire.Coded
	parity  map[int][]byte
	expires core.Time
}

// Receiver is the endpoint reliability engine. Not safe for concurrent use.
type Receiver struct {
	cfg   Config
	flows map[core.FlowID]*flowState
	inDec map[uint64]*inDecode
	stats Stats
}

// New builds a receiver engine.
func New(cfg Config) *Receiver {
	cfg.fillDefaults()
	return &Receiver{
		cfg:   cfg,
		flows: make(map[core.FlowID]*flowState),
		inDec: make(map[uint64]*inDecode),
	}
}

// Stats returns a copy of the counters.
func (r *Receiver) Stats() Stats { return r.stats }

// Config returns the receiver's configuration.
func (r *Receiver) Config() Config { return r.cfg }

// SetService changes the service stamped on future NACKs — used when the
// framework upgrades a flow to a more expensive service (§3.5).
func (r *Receiver) SetService(s core.Service) { r.cfg.Service = s }

func (r *Receiver) flow(id core.FlowID) *flowState {
	fs := r.flows[id]
	if fs == nil {
		fs = &flowState{
			id:        id,
			missing:   make(map[core.Seq]*missState),
			delivered: make(map[core.Seq]bool),
			recent:    make(map[core.Seq][]byte),
		}
		r.flows[id] = fs
	}
	return fs
}

// OnData processes a data packet from the direct path.
func (r *Receiver) OnData(now core.Time, hdr *wire.Header, payload []byte) Result {
	var res Result
	fs := r.flow(hdr.Flow)
	fs.src = hdr.Src
	r.stats.DataReceived++
	fs.lastDirect = now

	// Attribute overlay-duplicated copies to their service so multipath
	// and path-switched forwarding show up in delivery accounting.
	via := core.ServiceInternet
	if hdr.Flags&wire.FlagDup != 0 {
		via = hdr.Service
	} else {
		r.stats.DirectArrivals++
	}
	seq := hdr.Seq
	switch {
	case !fs.started:
		// Join at the first observed packet; earlier history is not
		// ours to recover.
		fs.started = true
		fs.next = seq + 1
		res.merge(r.accept(now, fs, hdr, payload, false, via, 0))
	case fs.delivered[seq]:
		r.stats.Duplicates++
	case seq < fs.next:
		// Late arrival: a tracked loss, a given-up loss, or a packet
		// the idle timer speculatively NACKed before it was even sent
		// (session boundary). The duplicate case was handled above, so
		// anything undelivered is surfaced.
		r.stats.LateArrivals++
		r.resolve(fs, seq)
		res.merge(r.accept(now, fs, hdr, payload, false, via, 0))
	case seq == fs.next:
		fs.next = seq + 1
		res.merge(r.accept(now, fs, hdr, payload, false, via, 0))
	default: // gap: [next, seq) missing
		for s := fs.next; s < seq; s++ {
			res.Emits = append(res.Emits, r.noteMissing(now, fs, s, false)...)
			r.stats.GapNACKs++
		}
		fs.next = seq + 1
		res.merge(r.accept(now, fs, hdr, payload, false, via, 0))
	}

	// Markov model (§3.4): the small timer applies only to packets
	// "arriving within a burst (sub-RTT scale)" — enter burst state when
	// the observed inter-arrival is short, otherwise arm the long timer.
	// SingleTimer mode (the ablation) always uses the small timer.
	delta := now - fs.lastArrival
	if r.cfg.SingleTimer || (fs.everArrived && delta <= r.cfg.SmallTimeout) {
		fs.state = stateBurst
		fs.deadline = now + r.cfg.SmallTimeout
	} else {
		fs.state = stateIdle
		fs.deadline = now + r.cfg.RTT
	}
	fs.everArrived = true
	fs.lastArrival = now
	fs.idleFired = false
	return res
}

// accept delivers a packet and records it in the recent window.
func (r *Receiver) accept(now core.Time, fs *flowState, hdr *wire.Header, payload []byte, recovered bool, via core.Service, recDelay core.Time) Result {
	fs.delivered[hdr.Seq] = true
	cp := append([]byte(nil), payload...)
	fs.recent[hdr.Seq] = cp
	fs.order = append(fs.order, hdr.Seq)
	for len(fs.order) > r.cfg.RecentWindow {
		old := fs.order[0]
		fs.order = fs.order[1:]
		delete(fs.recent, old)
		delete(fs.delivered, old)
	}
	pkt := &core.Packet{
		ID:      core.PacketID{Flow: hdr.Flow, Seq: hdr.Seq},
		Src:     fs.src,
		Dst:     r.cfg.Self,
		Sent:    hdr.TS,
		Payload: cp,
	}
	return Result{Deliveries: []core.Delivery{{
		Packet: pkt, At: now, Recovered: recovered, Via: via, RecoveryDelay: recDelay,
	}}}
}

// noteMissing registers a loss and emits its first NACK.
func (r *Receiver) noteMissing(now core.Time, fs *flowState, seq core.Seq, wantVerify bool) []core.Emit {
	if _, ok := fs.missing[seq]; ok {
		return nil
	}
	r.stats.LossesSeen++
	ms := &missState{firstMiss: now, nacks: 1, hasNACK: true}
	if r.cfg.NACKRetry > 0 {
		ms.nextNACK = now + r.cfg.NACKRetry
	}
	fs.missing[seq] = ms
	return []core.Emit{r.nack(now, fs.id, seq, wantVerify)}
}

func (r *Receiver) nack(now core.Time, flow core.FlowID, seq core.Seq, wantVerify bool) core.Emit {
	hdr := wire.Header{
		Type:    wire.TypeNACK,
		Service: r.cfg.Service,
		Flow:    flow,
		Seq:     seq,
		TS:      now,
		Src:     r.cfg.Self,
		Dst:     r.cfg.DC,
	}
	if wantVerify {
		hdr.Flags |= wire.FlagWantVerify
	}
	return core.Emit{To: r.cfg.DC, Msg: wire.AppendMessage(nil, &hdr, nil)}
}

// resolve clears a tracked loss.
func (r *Receiver) resolve(fs *flowState, seq core.Seq) {
	delete(fs.missing, seq)
}

// OnRecovered processes a repaired packet from the DC (TypeRecovered from
// coding, TypePullResp from caching).
func (r *Receiver) OnRecovered(now core.Time, hdr *wire.Header, payload []byte) Result {
	fs := r.flow(hdr.Flow)
	if fs.delivered[hdr.Seq] {
		r.stats.Duplicates++
		return Result{}
	}
	if _, miss := fs.missing[hdr.Seq]; !miss && fs.started && hdr.Seq < fs.next {
		// Recovery for something we never tracked (already gave up or
		// spurious); deliver anyway if unseen.
		r.stats.Duplicates++
		return Result{}
	}
	var recDelay core.Time
	tracked := false
	var detectedAt core.Time
	if ms, ok := fs.missing[hdr.Seq]; ok {
		recDelay = now - ms.firstMiss
		detectedAt = ms.firstMiss
		tracked = true
	}
	r.resolve(fs, hdr.Seq)
	r.stats.Recovered++
	var res Result
	if !fs.started {
		fs.started = true
		fs.next = hdr.Seq + 1
	} else if hdr.Seq >= fs.next {
		// A recovered packet beyond the expectation proves everything
		// in between existed: NACK the gap.
		for s := fs.next; s < hdr.Seq; s++ {
			res.Emits = append(res.Emits, r.noteMissing(now, fs, s, false)...)
			r.stats.GapNACKs++
		}
		fs.next = hdr.Seq + 1
	}
	via := hdr.Service
	if via == 0 {
		via = r.cfg.Service
	}
	res.merge(r.accept(now, fs, hdr, payload, true, via, recDelay))
	// Sustained-recovery pump: recoveries flowing while the direct path
	// has been silent since this loss was detected indicate an outage —
	// keep speculative NACKs outstanding so the next losses are already
	// in recovery when their parity reaches the DC.
	if r.cfg.PumpWindow > 0 && tracked && fs.lastDirect < detectedAt {
		high := hdr.Seq + core.Seq(r.cfg.PumpWindow)
		start := fs.next
		if fs.pumpHigh+1 > start {
			start = fs.pumpHigh + 1
		}
		for s := start; s <= high; s++ {
			emits := r.noteMissing(now, fs, s, false)
			if len(emits) > 0 {
				r.stats.PumpNACKs++
				res.Emits = append(res.Emits, emits...)
			}
		}
		if high > fs.pumpHigh {
			fs.pumpHigh = high
		}
	}
	return res
}

// OnCoded performs local in-stream decoding: combine the parity shard with
// the flow's recent packets to reconstruct whatever is missing (§4.2 —
// "packet YA can recover from the loss of A3").
func (r *Receiver) OnCoded(now core.Time, hdr *wire.Header, meta *wire.Coded, shard []byte) Result {
	var res Result
	if meta.Kind != wire.InStream || len(meta.Sources) == 0 {
		return res
	}
	dec := r.inDec[meta.Batch]
	if dec == nil {
		dec = &inDecode{meta: *meta, parity: make(map[int][]byte)}
		dec.meta.Sources = append([]wire.SourceRef(nil), meta.Sources...)
		r.inDec[meta.Batch] = dec
	}
	dec.expires = now + 2*r.cfg.RTT
	if _, dup := dec.parity[int(meta.Index)]; !dup {
		dec.parity[int(meta.Index)] = append([]byte(nil), shard...)
	}

	flow := dec.meta.Sources[0].Flow
	fs := r.flow(flow)
	k := int(dec.meta.K)
	shardLen := len(shard)
	shards := make([][]byte, k+int(dec.meta.R))
	present := 0
	var wanted []int
	for i, src := range dec.meta.Sources {
		if p, ok := fs.recent[src.Seq]; ok {
			buf := make([]byte, shardLen)
			if _, err := rs.Pack(p, buf); err != nil {
				continue
			}
			shards[i] = buf
			present++
		} else {
			wanted = append(wanted, i)
		}
	}
	for idx, p := range dec.parity {
		if k+idx < len(shards) && len(p) == shardLen {
			shards[k+idx] = p
			present++
		}
	}
	if len(wanted) == 0 || present < k {
		return res // nothing to do, or not decodable yet
	}
	codec, err := rs.NewCodec(k, int(dec.meta.R))
	if err != nil {
		return res
	}
	if err := codec.Reconstruct(shards); err != nil {
		return res
	}
	for _, i := range wanted {
		payload, err := rs.Unpack(shards[i])
		if err != nil {
			continue
		}
		src := dec.meta.Sources[i]
		if fs.delivered[src.Seq] {
			continue
		}
		var recDelay core.Time
		if ms, ok := fs.missing[src.Seq]; ok {
			recDelay = now - ms.firstMiss
		}
		r.resolve(fs, src.Seq)
		r.stats.Recovered++
		r.stats.InStreamLocal++
		if fs.started && src.Seq >= fs.next {
			fs.next = src.Seq + 1
		}
		ph := wire.Header{Flow: src.Flow, Seq: src.Seq, TS: hdr.TS, Src: fs.src, Dst: r.cfg.Self}
		res.merge(r.accept(now, fs, &ph, payload, true, core.ServiceCoding, recDelay))
	}
	delete(r.inDec, meta.Batch)
	return res
}

// OnCoopReq answers a cooperative-recovery request (§4.4 step 2→3): if the
// requested packet is in the recent window, return it to the DC. Ingress to
// the DC is free, so helpers answer unconditionally.
func (r *Receiver) OnCoopReq(now core.Time, hdr *wire.Header, ref *wire.CoopRef) Result {
	fs := r.flows[hdr.Flow]
	if fs == nil {
		return Result{}
	}
	payload, ok := fs.recent[hdr.Seq]
	if !ok {
		return Result{} // we lost it too; DC treats us as a straggler
	}
	r.stats.CoopResponses++
	respHdr := wire.Header{
		Type:    wire.TypeCoopResp,
		Service: core.ServiceCoding,
		Flow:    hdr.Flow,
		Seq:     hdr.Seq,
		TS:      now,
		Src:     r.cfg.Self,
		Dst:     hdr.Src,
	}
	msg := wire.AppendMessage(nil, &respHdr, ref.AppendMarshal(nil, payload))
	return Result{Emits: []core.Emit{{To: hdr.Src, Msg: msg}}}
}

// OnVerify answers DC2's spurious-recovery probe: still wanted only if the
// packet remains missing.
func (r *Receiver) OnVerify(now core.Time, hdr *wire.Header) Result {
	r.stats.VerifyReplies++
	fs := r.flows[hdr.Flow]
	still := false
	if fs != nil {
		_, still = fs.missing[hdr.Seq]
	}
	respHdr := wire.Header{
		Type:    wire.TypeVerifyResp,
		Service: r.cfg.Service,
		Flow:    hdr.Flow,
		Seq:     hdr.Seq,
		TS:      now,
		Src:     r.cfg.Self,
		Dst:     hdr.Src,
	}
	if still {
		respHdr.Flags |= wire.FlagStillWanted
	}
	return Result{Emits: []core.Emit{{To: hdr.Src, Msg: wire.AppendMessage(nil, &respHdr, nil)}}}
}

// NextDeadline reports the earliest timer the runtime should schedule.
func (r *Receiver) NextDeadline() (core.Time, bool) {
	var min core.Time
	found := false
	consider := func(d core.Time) {
		if d == 0 {
			return
		}
		if !found || d < min {
			min, found = d, true
		}
	}
	for _, fs := range r.flows {
		consider(fs.deadline)
		for _, ms := range fs.missing {
			consider(ms.firstMiss + r.cfg.GiveUpAfter)
			if r.cfg.NACKRetry > 0 && ms.nacks < r.cfg.MaxNACKs {
				consider(ms.nextNACK)
			}
		}
	}
	for _, dec := range r.inDec {
		consider(dec.expires)
	}
	return min, found
}

// OnTimer advances the Markov model and retry/give-up bookkeeping.
func (r *Receiver) OnTimer(now core.Time) Result {
	var res Result
	for _, fs := range r.flows {
		if fs.deadline != 0 && fs.deadline <= now {
			switch fs.state {
			case stateBurst:
				// Small timeout expired mid-burst: the next expected
				// packet is overdue → NACK and fall back to the long
				// timer (§3.4).
				if fs.started {
					if emits := r.noteMissing(now, fs, fs.next, true); len(emits) > 0 {
						r.stats.TimerNACKs++
						res.Emits = append(res.Emits, emits...)
						fs.next++
					}
				}
				if r.cfg.SingleTimer {
					fs.deadline = now + r.cfg.SmallTimeout
				} else {
					fs.state = stateIdle
					fs.deadline = now + r.cfg.RTT
				}
			case stateIdle:
				// Long timeout: one speculative NACK per silence
				// period, then disarm until traffic resumes.
				if fs.started && !fs.idleFired {
					fs.idleFired = true
					if emits := r.noteMissing(now, fs, fs.next, true); len(emits) > 0 {
						r.stats.IdleNACKs++
						res.Emits = append(res.Emits, emits...)
						fs.next++
					}
					fs.deadline = now + r.cfg.RTT
				} else {
					fs.deadline = 0
				}
			}
		}
		// NACK retries and give-ups.
		for seq, ms := range fs.missing {
			if now-ms.firstMiss >= r.cfg.GiveUpAfter {
				delete(fs.missing, seq)
				r.stats.GaveUp++
				continue
			}
			if r.cfg.NACKRetry > 0 && ms.hasNACK && ms.nacks < r.cfg.MaxNACKs && ms.nextNACK <= now {
				ms.nacks++
				ms.nextNACK = now + r.cfg.NACKRetry
				r.stats.RetryNACKs++
				res.Emits = append(res.Emits, r.nack(now, fs.id, seq, false))
			}
		}
	}
	for batch, dec := range r.inDec {
		if dec.expires <= now {
			delete(r.inDec, batch)
		}
	}
	return res
}

// OutstandingLosses reports currently tracked missing packets (tests and
// metrics).
func (r *Receiver) OutstandingLosses() int {
	n := 0
	for _, fs := range r.flows {
		n += len(fs.missing)
	}
	return n
}

// String implements fmt.Stringer.
func (r *Receiver) String() string {
	return fmt.Sprintf("receiver(%v→dc%v: %d flows, %d missing)",
		r.cfg.Self, r.cfg.DC, len(r.flows), r.OutstandingLosses())
}
