package routing

import (
	"testing"
	"time"

	"jqos/internal/core"
)

// benchController builds a 50-DC random sparse graph (ring + 25 chords)
// with 100 attached hosts — the control-plane cost profile of a real
// deployment rather than a toy mesh.
func benchController() *Controller {
	c := NewController(2)
	randomSparseGraph(c, 50, 25, 42)
	for h := 0; h < 100; h++ {
		c.AttachHost(core.NodeID(1000+h), core.NodeID(h%50+1))
	}
	c.Recompute()
	return c
}

// BenchmarkRouteCompute measures one full all-pairs recomputation + push
// reconciliation over the 50-DC sparse graph.
func BenchmarkRouteCompute(b *testing.B) {
	c := benchController()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Recompute()
	}
}

// BenchmarkReroute measures failure→converged tables: each iteration
// fails a link on the busiest path and then restores it (two health
// transitions, each a recompute plus delta push).
func BenchmarkReroute(b *testing.B) {
	c := benchController()
	// Pick a link actually on 1→26's primary path so the failure moves
	// routes rather than recomputing a no-op.
	ps := c.Paths(1, 26, 1)
	if len(ps) == 0 || len(ps[0].Nodes) < 2 {
		b.Fatal("no path to exercise")
	}
	la, lb := ps[0].Nodes[0], ps[0].Nodes[1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SetLinkHealth(la, lb, LinkDown, 0)
		c.SetLinkHealth(la, lb, LinkUp, 0)
	}
	b.StopTimer()
	if c.Stats().Reroutes == 0 {
		b.Fatal("bench never rerouted")
	}
}

// BenchmarkKShortestPaths measures alternate-path computation (k=3) on
// the sparse graph.
func BenchmarkKShortestPaths(b *testing.B) {
	c := benchController()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ps := c.Paths(1, 26, 3); len(ps) == 0 {
			b.Fatal("no paths")
		}
	}
}

// nullFlowSink counts per-flow pushes without storing them, so the churn
// benchmark measures the controller's own pin-table mutation path — the
// one RegisterFlow/Close ride — and not a fake's map bookkeeping.
type nullFlowSink struct{ sets, dels int }

func (s *nullFlowSink) SetRoute(dst, via core.NodeID)                       {}
func (s *nullFlowSink) DeleteRoute(dst core.NodeID)                         {}
func (s *nullFlowSink) SetFlowRoute(flow core.FlowID, dst, via core.NodeID) { s.sets++ }
func (s *nullFlowSink) DeleteFlowRoute(flow core.FlowID, dst core.NodeID)   { s.dels++ }

// BenchmarkPinChurn measures one pin + unpin cycle along a 7-hop path —
// the flow open/close hot path. Must stay at 0 allocs/op: the pin
// freelist and entry-slice reuse make churn steady-state allocation-free.
func BenchmarkPinChurn(b *testing.B) {
	c := NewController(2)
	for id := core.NodeID(1); id <= 8; id++ {
		c.AddDC(id, &nullFlowSink{})
	}
	for id := core.NodeID(1); id < 8; id++ {
		c.SetLink(id, id+1, 10*time.Millisecond)
	}
	c.AttachHost(100, 8)
	c.Recompute()
	ps := c.Paths(1, 8, 1)
	if len(ps) == 0 {
		b.Fatal("no path to pin")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.PinFlow(7, 100, ps[0])
		c.UnpinFlow(7)
	}
	b.StopTimer()
	if c.PinnedCount() != 0 {
		b.Fatal("pin leaked")
	}
}

// BenchmarkIncrementalRecompute measures a scoped recompute: one link's
// utilization swings past the hysteresis (inflate, then back to
// baseline), so only the sources whose trees actually cross that link
// re-run Dijkstra — the delta path BenchmarkRouteCompute's full
// all-pairs pass is the ceiling for.
func BenchmarkIncrementalRecompute(b *testing.B) {
	c := benchController()
	ps := c.Paths(1, 26, 1)
	if len(ps) == 0 || len(ps[0].Nodes) < 2 {
		b.Fatal("no path to exercise")
	}
	la, lb := ps[0].Nodes[0], ps[0].Nodes[1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SetLinkUtilization(la, lb, 0.95)
		c.SetLinkUtilization(la, lb, 0)
	}
	b.StopTimer()
	if c.Stats().IncrementalRecomputes == 0 {
		b.Fatal("bench never took the incremental path")
	}
}

// BenchmarkMonitorProbe measures the per-probe bookkeeping cost (sent +
// acked + state evaluation) on a healthy link.
func BenchmarkMonitorProbe(b *testing.B) {
	c := NewController(2)
	c.AddDC(1, newFakeSink())
	c.AddDC(2, newFakeSink())
	c.SetLink(1, 2, 10*time.Millisecond)
	m := NewMonitor(c, DefaultMonitorConfig())
	m.Track(1, 2, 10*time.Millisecond)
	now := core.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint64(i + 1)
		m.ProbeSent(1, 2, seq, now)
		now += 20 * time.Millisecond
		m.ProbeAcked(1, 2, seq, now)
	}
}
