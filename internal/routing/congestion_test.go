package routing

import (
	"math"
	"testing"
	"time"

	"jqos/internal/core"
)

// aboutDur tolerates the sub-microsecond float error of weight inflation.
func aboutDur(got, want core.Time) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= time.Microsecond
}

func TestCongestionMultiplier(t *testing.T) {
	cfg := DefaultCongestionConfig()
	if m := cfg.Multiplier(0); m != 1 {
		t.Fatalf("idle multiplier = %v", m)
	}
	if m := cfg.Multiplier(cfg.Knee); m != 1 {
		t.Fatalf("knee multiplier = %v", m)
	}
	// M/M/1 shape above the knee: 1 + (u-knee)/(1-u).
	if m := cfg.Multiplier(0.8); math.Abs(m-2) > 1e-9 {
		t.Fatalf("multiplier(0.8) = %v, want 2", m)
	}
	// Saturation clamps at MaxUtil: 1 + 0.35/0.05 = 8.
	if m := cfg.Multiplier(1); math.Abs(m-8) > 1e-9 {
		t.Fatalf("multiplier(1) = %v, want 8", m)
	}
	if hi, lo := cfg.Multiplier(1), cfg.Multiplier(0.99); hi != lo {
		t.Fatalf("multiplier not clamped: %v vs %v", hi, lo)
	}
}

func TestCongestionConfigNormalized(t *testing.T) {
	var zero CongestionConfig
	n := zero.normalized()
	if n != DefaultCongestionConfig() {
		t.Fatalf("zero config normalized to %+v", n)
	}
	// A MaxUtil at or below the knee would make the penalty negative.
	bad := CongestionConfig{Knee: 0.96, MaxUtil: 0.5, Gamma: 1, Hysteresis: 0.1}.normalized()
	if bad.MaxUtil <= bad.Knee || bad.MaxUtil >= 1 {
		t.Fatalf("normalized MaxUtil = %v (knee %v)", bad.MaxUtil, bad.Knee)
	}
}

// buildSquare wires the 4-DC square 1—2—4 / 1—3—4 with equal 20 ms links:
// two equal-cost two-hop paths between 1 and 4, primary via the lower
// node ID (2).
func buildSquare() (*Controller, map[core.NodeID]*fakeSink) {
	c := NewController(2)
	sinks := make(map[core.NodeID]*fakeSink)
	for id := core.NodeID(1); id <= 4; id++ {
		s := newFakeSink()
		sinks[id] = s
		c.AddDC(id, s)
	}
	w := 20 * time.Millisecond
	c.SetLink(1, 2, w)
	c.SetLink(2, 4, w)
	c.SetLink(1, 3, w)
	c.SetLink(3, 4, w)
	return c, sinks
}

func TestUtilizationInflatesWeightAndShiftsRoutes(t *testing.T) {
	c, sinks := buildSquare()
	if via := sinks[1].routes[4]; via != 2 {
		t.Fatalf("primary 1→4 via %v, want 2 (deterministic tie-break)", via)
	}

	// Saturate 1—2: its weight inflates 8× and both the installed route
	// and the path oracle move to the idle branch.
	c.SetLinkUtilization(1, 2, 1)
	l := c.Graph().Link(1, 2)
	if l.Util != 1 || l.Congest <= 1 {
		t.Fatalf("link telemetry not applied: util=%v congest=%v", l.Util, l.Congest)
	}
	if w, up := l.Cost(); !up || !aboutDur(w, 160*time.Millisecond) {
		t.Fatalf("inflated cost = %v %v, want ~160ms", w, up)
	}
	if via := sinks[1].routes[4]; via != 3 {
		t.Fatalf("congested 1→4 via %v, want 3", via)
	}
	if d, ok := c.PathLatency(1, 4); !ok || d != 40*time.Millisecond {
		t.Fatalf("routed latency = %v %v, want 40ms via the idle branch", d, ok)
	}
	st := c.Stats()
	if st.UtilizationUpdates == 0 || st.CongestionReroutes == 0 {
		t.Fatalf("congestion counters did not move: %+v", st)
	}

	// Cooling back below the knee restores the tie-broken primary.
	c.SetLinkUtilization(1, 2, 0)
	if via := sinks[1].routes[4]; via != 2 {
		t.Fatalf("cooled 1→4 via %v, want 2", via)
	}
	if c.Stats().CongestionReroutes != 2 {
		t.Fatalf("cooling reroute not counted: %+v", c.Stats())
	}
}

func TestUtilizationHysteresisAbsorbsBreathing(t *testing.T) {
	c, _ := buildSquare()
	pre := c.Stats()

	// Reports below the knee derive multiplier 1 — never a recompute.
	for _, u := range []float64{0.1, 0.3, 0.55, 0.6} {
		c.SetLinkUtilization(1, 2, u)
	}
	st := c.Stats()
	if st.Recomputes != pre.Recomputes || st.UtilizationUpdates != 0 {
		t.Fatalf("sub-knee reports recomputed: %+v", st)
	}
	// The raw reading is still recorded for observability.
	if got := c.Graph().Link(1, 2).Util; got != 0.6 {
		t.Fatalf("raw utilization = %v, want 0.6", got)
	}

	// A hot report reweights once...
	c.SetLinkUtilization(1, 2, 0.9)
	st = c.Stats()
	if st.UtilizationUpdates != 1 {
		t.Fatalf("hot report not applied: %+v", st)
	}
	// ...and breathing around the same level is absorbed: 0.9 → mult 4,
	// 0.88 → mult ~3.33 (dev ~17% < 25% hysteresis).
	c.SetLinkUtilization(1, 2, 0.88)
	if got := c.Stats(); got.UtilizationUpdates != 1 || got.Recomputes != st.Recomputes {
		t.Fatalf("hysteresis failed to absorb breathing: %+v", got)
	}
	// A real swing (back below the knee) is applied.
	c.SetLinkUtilization(1, 2, 0.2)
	if got := c.Stats(); got.UtilizationUpdates != 2 {
		t.Fatalf("cooling swing absorbed: %+v", got)
	}
}

// TestCongestionWeightsDoNotPoisonLatency: the multiplier steers routing
// (weights), but latency predictions — PathLatency for the oracle,
// PathCost for pinned flows — must report the honest figures: capacity
// is a traffic-engineering input, and the penalty does not actually
// delay packets.
func TestCongestionWeightsDoNotPoisonLatency(t *testing.T) {
	c, _ := buildSquare()
	// Saturate BOTH branches: routing has nowhere better to go, but the
	// predicted 1→4 latency must stay the honest 40 ms, not 8×.
	c.SetLinkUtilizations([]UtilizationReport{
		{1, 2, 1}, {2, 4, 1}, {1, 3, 1}, {3, 4, 1},
	})
	if d, ok := c.PathLatency(1, 4); !ok || d != 40*time.Millisecond {
		t.Fatalf("routed latency = %v %v, want honest 40ms", d, ok)
	}
	if d, ok := c.PathCost([]core.NodeID{1, 2, 4}); !ok || d != 40*time.Millisecond {
		t.Fatalf("pinned-path latency = %v %v, want honest 40ms", d, ok)
	}
	// The weights DID inflate — that is what routing minimizes.
	if w, up := c.Graph().Link(1, 2).Cost(); !up || w <= 40*time.Millisecond {
		t.Fatalf("weight not inflated: %v %v", w, up)
	}
	// One hot branch only: the oracle prices the idle branch the SPF
	// actually picked.
	c.SetLinkUtilizations([]UtilizationReport{
		{1, 2, 1}, {2, 4, 1}, {1, 3, 0}, {3, 4, 0},
	})
	if via, ok := c.NextHop(1, 4); !ok || via != 3 {
		t.Fatalf("1→4 via %v, want idle branch", via)
	}
	if d, ok := c.PathLatency(1, 4); !ok || d != 40*time.Millisecond {
		t.Fatalf("routed latency = %v %v, want 40ms via idle branch", d, ok)
	}
}

// TestBatchedUtilizationSingleRecompute: one reporting round that heats
// several links recomputes once, not once per link.
func TestBatchedUtilizationSingleRecompute(t *testing.T) {
	c, sinks := buildSquare()
	pre := c.Stats()
	c.SetLinkUtilizations([]UtilizationReport{
		{1, 2, 1}, {2, 4, 1}, {1, 3, 0.1}, {3, 4, 0.1},
	})
	st := c.Stats()
	if got := st.Recomputes - pre.Recomputes; got != 1 {
		t.Fatalf("batch ran %d recomputes, want 1", got)
	}
	if st.UtilizationUpdates != 2 {
		t.Fatalf("accepted %d updates, want 2 (idle links absorbed)", st.UtilizationUpdates)
	}
	if st.CongestionReroutes != 1 {
		t.Fatalf("congestion reroutes = %d, want 1", st.CongestionReroutes)
	}
	if via := sinks[1].routes[4]; via != 3 {
		t.Fatalf("1→4 via %v after batch, want 3", via)
	}
	// An all-idle round is a no-op.
	pre = c.Stats()
	c.SetLinkUtilizations([]UtilizationReport{{1, 3, 0.1}, {3, 4, 0.1}})
	if got := c.Stats(); got.Recomputes != pre.Recomputes {
		t.Fatalf("idle batch recomputed: %+v", got)
	}
}

// TestSmallInflationDecaysToBaseline: an inflation whose removal falls
// inside the hysteresis band (×1.33 → ×1 is exactly a 25% deviation)
// must still clear once utilization returns below the knee — otherwise
// an idle link stays penalized forever.
func TestSmallInflationDecaysToBaseline(t *testing.T) {
	c, _ := buildSquare()
	c.SetLinkUtilization(1, 2, 0.7) // multiplier 1.333: accepted
	l := c.Graph().Link(1, 2)
	if l.Congest <= 1 {
		t.Fatalf("small inflation not applied: %v", l.Congest)
	}
	c.SetLinkUtilization(1, 2, 0)
	if l.Congest != 1 {
		t.Fatalf("idle link still inflated ×%v", l.Congest)
	}
	if w, up := l.Cost(); !up || w != 20*time.Millisecond {
		t.Fatalf("idle link cost = %v %v, want base 20ms", w, up)
	}
}

// TestZeroLatencyLinkNoPrevCycle: a 0 ms link between two equal-distance
// nodes used to let the equal-cost tie-break rewrite two finalized nodes
// into each other's predecessor, hanging path reconstruction. SPF must
// terminate and produce a sane path.
func TestZeroLatencyLinkNoPrevCycle(t *testing.T) {
	c := NewController(2)
	for _, id := range []core.NodeID{1, 2, 5} {
		c.AddDC(id, newFakeSink())
	}
	c.SetLink(5, 1, 10*time.Millisecond)
	c.SetLink(5, 2, 10*time.Millisecond)
	c.SetLink(1, 2, 0)
	p, ok := c.Graph().ShortestPath(5, 2)
	if !ok || len(p.Nodes) < 2 || p.Nodes[0] != 5 || p.Nodes[len(p.Nodes)-1] != 2 {
		t.Fatalf("path 5→2 = %+v %v", p, ok)
	}
	if p.Cost != 10*time.Millisecond {
		t.Fatalf("path cost = %v, want 10ms", p.Cost)
	}
}

func TestUtilizationUnknownLinkIgnored(t *testing.T) {
	c, _ := buildSquare()
	pre := c.Stats()
	c.SetLinkUtilization(1, 4, 1) // no such link
	if got := c.Stats(); got.Recomputes != pre.Recomputes {
		t.Fatalf("unknown link recomputed: %+v", got)
	}
}

// TestCongestionComposesWithHealth: inflation applies on top of the
// monitor's refreshed latency estimate, and a down link stays down.
func TestCongestionComposesWithHealth(t *testing.T) {
	c, _ := buildSquare()
	c.SetLinkHealth(1, 2, LinkUp, 30*time.Millisecond) // monitor re-priced
	c.SetLinkUtilization(1, 2, 1)
	if w, up := c.Graph().Link(1, 2).Cost(); !up || !aboutDur(w, 240*time.Millisecond) {
		t.Fatalf("cost = %v %v, want ~8×30ms", w, up)
	}
	c.SetLinkHealth(1, 2, LinkDown, 0)
	if _, up := c.Graph().Link(1, 2).Cost(); up {
		t.Fatal("down link still carries traffic")
	}
	// SetLink re-bases and clears telemetry.
	c.SetLink(1, 2, 20*time.Millisecond)
	l := c.Graph().Link(1, 2)
	if l.Util != 0 || l.Congest != 0 {
		t.Fatalf("re-based link kept telemetry: %+v", l)
	}
}
