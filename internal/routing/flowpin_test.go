package routing

import (
	"reflect"
	"testing"
	"time"

	"jqos/internal/core"
)

// flowSink extends fakeSink with the per-flow pin surface.
type flowSink struct {
	fakeSink
	flows map[[2]uint64]core.NodeID // (flow, dst) → via
}

func newFlowSink() *flowSink {
	return &flowSink{
		fakeSink: fakeSink{routes: make(map[core.NodeID]core.NodeID)},
		flows:    make(map[[2]uint64]core.NodeID),
	}
}

func (s *flowSink) SetFlowRoute(flow core.FlowID, dst, via core.NodeID) {
	s.flows[[2]uint64{uint64(flow), uint64(dst)}] = via
}
func (s *flowSink) DeleteFlowRoute(flow core.FlowID, dst core.NodeID) {
	delete(s.flows, [2]uint64{uint64(flow), uint64(dst)})
}

// buildFlowDiamond wires 1—2—4 (20 ms) and 1—3—4 (40 ms) with flow-aware
// sinks and a host 100 at DC 4.
func buildFlowDiamond() (*Controller, map[core.NodeID]*flowSink) {
	c := NewController(2)
	sinks := make(map[core.NodeID]*flowSink)
	for id := core.NodeID(1); id <= 4; id++ {
		s := newFlowSink()
		sinks[id] = s
		c.AddDC(id, s)
	}
	c.SetLink(1, 2, 10*time.Millisecond)
	c.SetLink(2, 4, 10*time.Millisecond)
	c.SetLink(1, 3, 20*time.Millisecond)
	c.SetLink(3, 4, 20*time.Millisecond)
	c.AttachHost(100, 4)
	return c, sinks
}

func TestPinFlowInstallsAndRemovesEntries(t *testing.T) {
	c, sinks := buildFlowDiamond()
	alts := c.Paths(1, 4, 2)
	if len(alts) != 2 {
		t.Fatalf("alternates = %d, want 2", len(alts))
	}
	// Pin flow 7 to the backup path 1→3→4 toward host 100.
	c.PinFlow(7, 100, alts[1])
	if got, ok := c.PinnedPath(7); !ok || !reflect.DeepEqual(got, []core.NodeID{1, 3, 4}) {
		t.Fatalf("PinnedPath = %v %v", got, ok)
	}
	// DC1 and DC3 carry entries for the host AND the egress DC; DC2 has
	// none; the egress DC itself has none.
	if via := sinks[1].flows[[2]uint64{7, 100}]; via != 3 {
		t.Errorf("dc1 pin via %v, want 3", via)
	}
	if via := sinks[1].flows[[2]uint64{7, 4}]; via != 3 {
		t.Errorf("dc1 egress pin via %v, want 3", via)
	}
	if via := sinks[3].flows[[2]uint64{7, 100}]; via != 4 {
		t.Errorf("dc3 pin via %v, want 4", via)
	}
	if len(sinks[2].flows) != 0 {
		t.Errorf("dc2 got pin entries: %v", sinks[2].flows)
	}
	if len(sinks[4].flows) != 0 {
		t.Errorf("egress DC got pin entries: %v", sinks[4].flows)
	}
	// Re-pinning to the primary replaces the old entries.
	c.PinFlow(7, 100, alts[0])
	if len(sinks[3].flows) != 0 {
		t.Errorf("stale entries after re-pin: %v", sinks[3].flows)
	}
	if via := sinks[2].flows[[2]uint64{7, 100}]; via != 4 {
		t.Errorf("dc2 pin after re-pin via %v, want 4", via)
	}
	c.UnpinFlow(7)
	if len(sinks[1].flows)+len(sinks[2].flows) != 0 {
		t.Error("entries survived UnpinFlow")
	}
	if _, ok := c.PinnedPath(7); ok {
		t.Error("PinnedPath after UnpinFlow")
	}
}

func TestBrokenPinNotifies(t *testing.T) {
	c, _ := buildFlowDiamond()
	alts := c.Paths(1, 4, 2)
	c.PinFlow(7, 100, alts[1]) // 1→3→4

	type event struct {
		flow   core.FlowID
		old    []core.NodeID
		broken bool
	}
	var events []event
	c.OnFlowPath = func(flow core.FlowID, old, next []core.NodeID, broken bool) {
		events = append(events, event{flow, old, broken})
		// Handlers may re-pin from inside the callback.
		if broken {
			if ps := c.Paths(1, 4, 2); len(ps) > 0 {
				c.PinFlow(flow, 100, ps[0])
			}
		}
	}
	// Killing the unused primary link does not break the pin.
	c.SetLinkHealth(1, 2, LinkDown, 0)
	if len(events) != 0 {
		t.Fatalf("unrelated failure notified: %+v", events)
	}
	c.SetLinkHealth(1, 2, LinkUp, 0)
	// Killing a pinned link does.
	c.SetLinkHealth(3, 4, LinkDown, 0)
	if len(events) != 1 || !events[0].broken || events[0].flow != 7 {
		t.Fatalf("broken-pin events = %+v", events)
	}
	if !reflect.DeepEqual(events[0].old, []core.NodeID{1, 3, 4}) {
		t.Errorf("old path = %v", events[0].old)
	}
	// The handler re-pinned onto the surviving primary.
	if got, ok := c.PinnedPath(7); !ok || !reflect.DeepEqual(got, []core.NodeID{1, 2, 4}) {
		t.Errorf("re-pinned path = %v %v", got, ok)
	}
}

func TestWatchFlowNotifiesPrimaryMoves(t *testing.T) {
	c, _ := buildFlowDiamond()
	c.WatchFlow(9, 1, 4)
	var moves [][2][]core.NodeID
	c.OnFlowPath = func(flow core.FlowID, old, next []core.NodeID, broken bool) {
		if broken {
			t.Fatalf("watch reported broken")
		}
		moves = append(moves, [2][]core.NodeID{old, next})
	}
	c.SetLinkHealth(2, 4, LinkDown, 0)
	if len(moves) != 1 {
		t.Fatalf("moves = %d, want 1", len(moves))
	}
	if !reflect.DeepEqual(moves[0][0], []core.NodeID{1, 2, 4}) ||
		!reflect.DeepEqual(moves[0][1], []core.NodeID{1, 3, 4}) {
		t.Errorf("move = %v → %v", moves[0][0], moves[0][1])
	}
	// A recompute that does not move the primary stays silent.
	c.SetLinkHealth(1, 3, LinkDegraded, 25*time.Millisecond)
	if len(moves) != 1 {
		t.Fatalf("silent recompute notified: %d", len(moves))
	}
	c.UnwatchFlow(9)
	c.SetLinkHealth(2, 4, LinkUp, 0)
	if len(moves) != 1 {
		t.Error("unwatched flow still notified")
	}
}
