package routing

import "jqos/internal/core"

// CongestionConfig tunes how reported link utilization inflates path
// weights — the control plane's load-aware costs. The inflation is
// M/M/1-shaped: negligible below the knee, growing like 1/(1-u) above it,
// so a link approaching saturation prices itself out of new paths long
// before it actually saturates.
type CongestionConfig struct {
	// Knee is the utilization above which weights start inflating.
	Knee float64
	// MaxUtil caps utilization in the penalty denominator so a fully
	// saturated link gets a large finite weight instead of an infinite
	// one (it can still carry traffic when it is the only path).
	MaxUtil float64
	// Gamma scales the penalty term.
	Gamma float64
	// Hysteresis is the minimum relative change of the inflation
	// multiplier that triggers a reweight-and-recompute. Smaller changes
	// are recorded (Link.Util) but do not move routes — utilization
	// breathes constantly, and without damping routes would flap between
	// equal-cost paths on every report.
	Hysteresis float64
}

// DefaultCongestionConfig returns production defaults: inflation starts
// at 60% utilization, a saturated link costs 8× its latency, and routes
// move only on ≥25% multiplier swings.
func DefaultCongestionConfig() CongestionConfig {
	return CongestionConfig{Knee: 0.6, MaxUtil: 0.95, Gamma: 1, Hysteresis: 0.25}
}

// normalized fills zero fields with defaults, so a partially specified
// (or zero-value) config behaves sanely.
func (c CongestionConfig) normalized() CongestionConfig {
	d := DefaultCongestionConfig()
	if c.Knee <= 0 || c.Knee >= 1 {
		c.Knee = d.Knee
	}
	if c.MaxUtil <= c.Knee || c.MaxUtil >= 1 {
		c.MaxUtil = d.MaxUtil
		if c.MaxUtil <= c.Knee {
			c.MaxUtil = (1 + c.Knee) / 2
		}
	}
	if c.Gamma <= 0 {
		c.Gamma = d.Gamma
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = d.Hysteresis
	}
	return c
}

// Multiplier converts a utilization reading into the link-weight
// inflation factor (≥ 1): 1 at or below the knee, then
// 1 + Gamma·(u−Knee)/(1−u) with u capped at MaxUtil.
func (c CongestionConfig) Multiplier(util float64) float64 {
	if util <= c.Knee {
		return 1
	}
	u := util
	if u > c.MaxUtil {
		u = c.MaxUtil
	}
	return 1 + c.Gamma*(u-c.Knee)/(1-u)
}

// SetCongestionConfig replaces the controller's congestion model (zero
// fields fall back to defaults). Existing inflation multipliers are kept
// until the next utilization report re-derives them.
func (c *Controller) SetCongestionConfig(cfg CongestionConfig) {
	c.congestion = cfg.normalized()
}

// CongestionConfig returns the active (normalized) congestion model.
func (c *Controller) CongestionConfig() CongestionConfig { return c.congestion }

// applyLinkUtilization records one utilization report (0..1, clamped)
// for the link a↔b and reports whether the link's effective weight
// multiplier moved. The raw reading is always recorded on the link for
// inspection; the multiplier only moves when it differs from the
// current one by more than the configured hysteresis — routes spread
// away from hot links without flapping on every report. Exception: a
// return to baseline (multiplier 1) always applies, otherwise a small
// inflation whose removal sits inside the hysteresis band would
// penalize an idle link forever.
func (c *Controller) applyLinkUtilization(a, b core.NodeID, util float64) bool {
	l := c.g.Link(a, b)
	if l == nil {
		return false
	}
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	l.Util = util
	mult := c.congestion.Multiplier(util)
	cur := l.Congest
	if cur < 1 {
		cur = 1
	}
	dev := (mult - cur) / cur
	if dev < 0 {
		dev = -dev
	}
	if dev <= c.congestion.Hysteresis && !(mult == 1 && cur > 1) {
		return false
	}
	l.Congest = mult
	return true
}

// congestionRecompute recomputes after accepted utilization changes —
// incrementally, scoped to the reweighted links — and counts a congestion
// reroute when routes actually moved.
func (c *Controller) congestionRecompute(links ...[2]core.NodeID) {
	pre := c.stats.Reroutes
	c.recomputeLinks(links...)
	if c.stats.Reroutes > pre {
		c.stats.CongestionReroutes++
	}
}

// SetLinkUtilization applies one utilization report; an accepted change
// (past the hysteresis) triggers a recompute + re-push.
func (c *Controller) SetLinkUtilization(a, b core.NodeID, util float64) {
	if !c.applyLinkUtilization(a, b, util) {
		return
	}
	c.stats.UtilizationUpdates++
	c.congestionRecompute([2]core.NodeID{a, b})
}

// UtilizationReport is one link's utilization reading in a batch.
type UtilizationReport struct {
	A, B core.NodeID
	Util float64
}

// SetLinkUtilizations applies a whole reporting round at once: all
// accepted multiplier changes are installed first, then tables recompute
// a single time. A multi-hop bulk flow moves utilization on every link
// of its path in the same round — recomputing per link would run N full
// SPF + push cycles (and count phantom intermediate reroutes) where one
// suffices.
func (c *Controller) SetLinkUtilizations(reports []UtilizationReport) {
	changed := c.utilBuf[:0]
	for _, r := range reports {
		if c.applyLinkUtilization(r.A, r.B, r.Util) {
			c.stats.UtilizationUpdates++
			changed = append(changed, linkKey(r.A, r.B))
		}
	}
	c.utilBuf = changed
	if len(changed) > 0 {
		c.congestionRecompute(changed...)
	}
}
