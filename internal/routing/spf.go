package routing

import (
	"container/heap"
	"math"

	"jqos/internal/core"
)

// Path is one loop-free route through the DC graph, endpoints included.
type Path struct {
	Nodes []core.NodeID
	Cost  core.Time
}

// pqItem is one entry of the Dijkstra frontier. Ties on dist break on node
// ID, so equal-cost multipath resolves identically on every run and
// machine — the deterministic tie-breaking the route tables rely on.
type pqItem struct {
	node core.NodeID
	dist core.Time
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].node < q[j].node
}
func (q pq) Swap(i, j int)   { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)     { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any       { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }
func (q *pq) push(it pqItem) { heap.Push(q, it) }
func (q *pq) pop() pqItem    { return heap.Pop(q).(pqItem) }

const infCost = core.Time(math.MaxInt64)

// spfResult is one single-source shortest-path tree. dist is the weight
// the tree minimized (congestion-inflated); lat is the honest latency
// accumulated along the chosen edges — what predictions report.
type spfResult struct {
	dist map[core.NodeID]core.Time
	lat  map[core.NodeID]core.Time
	prev map[core.NodeID]core.NodeID
}

// shortestFrom runs Dijkstra from src over up-links, skipping banned edges
// and vertices (nil = none). Tie-breaking is deterministic: the frontier
// orders equal distances by node ID, and an equal-cost relaxation keeps
// the lower-ID predecessor. Edges are relaxed on weight (Link.Cost, which
// congestion inflates) while the true latency of the selected tree is
// carried alongside — a route steered off a hot link must not inherit the
// hot link's phantom delay in latency predictions.
func (g *Graph) shortestFrom(src core.NodeID, bannedEdge map[[2]core.NodeID]bool, bannedNode map[core.NodeID]bool) spfResult {
	res := spfResult{
		dist: make(map[core.NodeID]core.Time, len(g.order)),
		lat:  make(map[core.NodeID]core.Time, len(g.order)),
		prev: make(map[core.NodeID]core.NodeID, len(g.order)),
	}
	if !g.nodes[src] || bannedNode[src] {
		return res
	}
	res.dist[src] = 0
	res.lat[src] = 0
	frontier := make(pq, 0, len(g.order))
	frontier.push(pqItem{node: src, dist: 0})
	done := make(map[core.NodeID]bool, len(g.order))
	for len(frontier) > 0 {
		it := frontier.pop()
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, nb := range g.Neighbors(it.node) {
			// Finalized nodes must not be relaxed again: with positive
			// weights they can never improve, and on a zero-weight link
			// the equal-cost tie-break below could otherwise rewrite two
			// settled nodes into each other's predecessor — a prev-cycle
			// that hangs path reconstruction.
			if done[nb] || bannedNode[nb] || bannedEdge[linkKey(it.node, nb)] {
				continue
			}
			l := g.Link(it.node, nb)
			w, up := l.Cost()
			if !up {
				continue
			}
			lt, _ := l.Latency() // up implies ok
			nd := it.dist + w
			old, seen := res.dist[nb]
			switch {
			case !seen || nd < old:
				res.dist[nb] = nd
				res.lat[nb] = res.lat[it.node] + lt
				res.prev[nb] = it.node
				frontier.push(pqItem{node: nb, dist: nd})
			case nd == old && it.node < res.prev[nb]:
				res.prev[nb] = it.node
				res.lat[nb] = res.lat[it.node] + lt
			}
		}
	}
	return res
}

// pathTo reconstructs src→dst from a shortest-path tree (nil if dst is
// unreachable).
func (r spfResult) pathTo(src, dst core.NodeID) []core.NodeID {
	if _, ok := r.dist[dst]; !ok {
		return nil
	}
	var rev []core.NodeID
	for at := dst; ; {
		rev = append(rev, at)
		if at == src {
			break
		}
		at = r.prev[at]
	}
	out := make([]core.NodeID, len(rev))
	for i, n := range rev {
		out[len(rev)-1-i] = n
	}
	return out
}

// nextHopFrom extracts the first hop of src→dst (0, false if unreachable
// or dst == src).
func (r spfResult) nextHopFrom(src, dst core.NodeID) (core.NodeID, bool) {
	if dst == src {
		return 0, false
	}
	if _, ok := r.dist[dst]; !ok {
		return 0, false
	}
	at := dst
	for r.prev[at] != src {
		at = r.prev[at]
	}
	return at, true
}

// ShortestPath returns the (deterministic) least-latency path src→dst over
// up-links, or ok=false when none exists.
func (g *Graph) ShortestPath(src, dst core.NodeID) (Path, bool) {
	res := g.shortestFrom(src, nil, nil)
	nodes := res.pathTo(src, dst)
	if nodes == nil {
		return Path{}, false
	}
	return Path{Nodes: nodes, Cost: res.dist[dst]}, true
}

// KShortestPaths returns up to k loop-free paths src→dst in ascending cost
// order (Yen's algorithm over the health-filtered graph). The first path
// is the primary route; the rest are the alternates a failure would fall
// back to. Equal-cost candidates order by path length then lexicographic
// node IDs, keeping the result deterministic.
func (g *Graph) KShortestPaths(src, dst core.NodeID, k int) []Path {
	if k <= 0 {
		return nil
	}
	first, ok := g.ShortestPath(src, dst)
	if !ok {
		return nil
	}
	paths := []Path{first}
	var candidates []Path
	for len(paths) < k {
		prev := paths[len(paths)-1].Nodes
		// Spur from every node of the previously found path.
		for i := 0; i < len(prev)-1; i++ {
			spur := prev[i]
			rootNodes := prev[:i+1]
			rootCost := g.pathCost(rootNodes)
			bannedEdge := make(map[[2]core.NodeID]bool)
			for _, p := range paths {
				if len(p.Nodes) > i && samePrefix(p.Nodes, rootNodes) {
					bannedEdge[linkKey(p.Nodes[i], p.Nodes[i+1])] = true
				}
			}
			bannedNode := make(map[core.NodeID]bool)
			for _, n := range rootNodes[:len(rootNodes)-1] {
				bannedNode[n] = true
			}
			res := g.shortestFrom(spur, bannedEdge, bannedNode)
			spurNodes := res.pathTo(spur, dst)
			if spurNodes == nil {
				continue
			}
			total := append(append([]core.NodeID(nil), rootNodes[:len(rootNodes)-1]...), spurNodes...)
			cand := Path{Nodes: total, Cost: rootCost + res.dist[dst]}
			if !containsPath(paths, cand) && !containsPath(candidates, cand) {
				candidates = append(candidates, cand)
			}
		}
		if len(candidates) == 0 {
			break
		}
		best := 0
		for i := 1; i < len(candidates); i++ {
			if pathLess(candidates[i], candidates[best]) {
				best = i
			}
		}
		paths = append(paths, candidates[best])
		candidates = append(candidates[:best], candidates[best+1:]...)
	}
	return paths
}

// pathCost sums link costs along nodes (assumes all links up).
func (g *Graph) pathCost(nodes []core.NodeID) core.Time {
	var c core.Time
	for i := 0; i+1 < len(nodes); i++ {
		if w, up := g.Link(nodes[i], nodes[i+1]).Cost(); up {
			c += w
		}
	}
	return c
}

func samePrefix(p, prefix []core.NodeID) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i, n := range prefix {
		if p[i] != n {
			return false
		}
	}
	return true
}

func containsPath(ps []Path, q Path) bool {
	for _, p := range ps {
		if sameNodes(p.Nodes, q.Nodes) {
			return true
		}
	}
	return false
}

func sameNodes(a, b []core.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pathLess orders candidate paths: cost, then hop count, then node IDs.
func pathLess(a, b Path) bool {
	if a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	if len(a.Nodes) != len(b.Nodes) {
		return len(a.Nodes) < len(b.Nodes)
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return a.Nodes[i] < b.Nodes[i]
		}
	}
	return false
}
