package routing

import (
	"time"

	"jqos/internal/core"
)

// MonitorConfig tunes the link-health state machine.
type MonitorConfig struct {
	// ProbeInterval is the per-link probe period. Zero disables active
	// monitoring entirely (the hosting runtime checks this before
	// scheduling probes).
	ProbeInterval time.Duration
	// ProbeTimeout is the floor for declaring a probe lost; the effective
	// per-link timeout is max(ProbeTimeout, 3× the link's base RTT).
	ProbeTimeout time.Duration
	// FastProbeInterval, when nonzero, is the probe period for SUSPICIOUS
	// links — links that are down or degraded, just lost a probe, or
	// still carry meaningful window loss. Healthy links amble along at
	// ProbeInterval (probing is overhead); the first hint of trouble
	// drops the link to the fast cadence so failure detection completes
	// in FailAfter fast rounds instead of FailAfter slow ones. Zero
	// disables adaptation (every link probes at ProbeInterval).
	FastProbeInterval time.Duration
	// FastProbeTimeout, when nonzero, replaces ProbeTimeout as the
	// timeout floor for suspicious links (the 3×RTT terms still apply) —
	// a link under suspicion is declared lost on the RTT evidence, not
	// the conservative healthy-path floor.
	FastProbeTimeout time.Duration
	// FailAfter consecutive probe losses mark the link down.
	FailAfter int
	// RecoverAfter consecutive probe answers bring a down link back up.
	RecoverAfter int
	// DegradeLoss / ClearLoss bound the windowed probe-loss fraction for
	// the degraded state. RTT shifts do not change health state — they
	// re-price the link via RefreshFraction, so a link that legitimately
	// got slower converges to its new cost instead of sticking in a
	// degraded state it can never clear.
	DegradeLoss float64
	ClearLoss   float64
	// LossWindow is the probe-outcome window size for the loss estimate.
	LossWindow int
	// EWMAAlpha weights the newest RTT sample in the estimate.
	EWMAAlpha float64
	// RefreshFraction re-prices a link when the RTT estimate deviates
	// from the advertised cost by more than this fraction (keeps routed
	// latencies honest without reacting to jitter).
	RefreshFraction float64
}

// DefaultMonitorConfig returns production defaults: 500 ms probes on
// healthy links dropping to 25 ms on suspicious ones (sub-100 ms failure
// detection on short links: FailAfter fast rounds plus the adaptive
// timeout), three strikes down, three answers up, 25% probe loss =
// degraded.
func DefaultMonitorConfig() MonitorConfig {
	return MonitorConfig{
		ProbeInterval:     500 * time.Millisecond,
		ProbeTimeout:      200 * time.Millisecond,
		FastProbeInterval: 25 * time.Millisecond,
		FastProbeTimeout:  25 * time.Millisecond,
		FailAfter:         3,
		RecoverAfter:      3,
		DegradeLoss:       0.25,
		ClearLoss:         0.10,
		LossWindow:        16,
		EWMAAlpha:         0.3,
		RefreshFraction:   0.25,
	}
}

// Health is a read-only snapshot of one link's monitor state.
type Health struct {
	State      LinkState
	RTT        core.Time // EWMA round-trip estimate (0 until first answer)
	Loss       float64   // probe-loss fraction over the window
	ProbesSent uint64
	ProbesLost uint64
}

// linkHealth is the per-link estimator + state machine.
type linkHealth struct {
	a, b        core.NodeID
	base        core.Time // configured one-way latency
	state       LinkState
	ewmaRTT     core.Time
	window      []bool // ring of recent outcomes (true = lost)
	windowAt    int
	windowFill  int
	consecLoss  int
	consecOK    int
	outstanding map[uint64]core.Time // in-flight probe seq → sent-at
	timedOut    map[uint64]core.Time // counted-lost probes, kept so a late answer can still teach RTT
	sent, lost  uint64
	advertised  core.Time // cost last pushed to the controller (0 = base)
}

func (h *linkHealth) lossFrac() float64 {
	if h.windowFill == 0 {
		return 0
	}
	lost := 0
	for i := 0; i < h.windowFill; i++ {
		if h.window[i] {
			lost++
		}
	}
	return float64(lost) / float64(h.windowFill)
}

func (h *linkHealth) record(lost bool, window int) {
	if len(h.window) != window {
		h.window = make([]bool, window)
		h.windowAt, h.windowFill = 0, 0
	}
	h.window[h.windowAt] = lost
	h.windowAt = (h.windowAt + 1) % window
	if h.windowFill < window {
		h.windowFill++
	}
}

// Monitor tracks probe outcomes per inter-DC link and reports health
// transitions to the controller. It is sans-IO: the hosting runtime sends
// the probes, times them out, and calls ProbeSent / ProbeAcked /
// ProbeTimedOut.
type Monitor struct {
	c     *Controller
	cfg   MonitorConfig
	links map[[2]core.NodeID]*linkHealth
}

// NewMonitor creates a monitor feeding verdicts into c.
func NewMonitor(c *Controller, cfg MonitorConfig) *Monitor {
	if cfg.LossWindow <= 0 {
		cfg.LossWindow = 16
	}
	if cfg.EWMAAlpha <= 0 || cfg.EWMAAlpha > 1 {
		cfg.EWMAAlpha = 0.3
	}
	return &Monitor{c: c, cfg: cfg, links: make(map[[2]core.NodeID]*linkHealth)}
}

// Config returns the monitor's configuration.
func (m *Monitor) Config() MonitorConfig { return m.cfg }

// Track starts monitoring the link a↔b with configured one-way latency
// base. Re-tracking re-bases the estimators.
func (m *Monitor) Track(a, b core.NodeID, base core.Time) {
	k := linkKey(a, b)
	m.links[k] = &linkHealth{
		a: k[0], b: k[1], base: base,
		window:      make([]bool, m.cfg.LossWindow),
		outstanding: make(map[uint64]core.Time),
		timedOut:    make(map[uint64]core.Time),
	}
}

// CurrentTimeout returns the effective probe timeout for the link a↔b:
// the configured floor, 3× the configured RTT, or 3× the measured RTT
// estimate — whichever is largest. Adapting to the estimate matters: a
// link that legitimately slowed past the static timeout would otherwise
// read as lossy forever (late answers re-teach the estimate, which
// stretches the timeout back over the real RTT).
// Suspicious links swap the ProbeTimeout floor for FastProbeTimeout (when
// configured): once a link is under suspicion the RTT-derived terms carry
// the timeout, not the conservative healthy-path floor.
func (m *Monitor) CurrentTimeout(a, b core.NodeID) core.Time {
	t := m.cfg.ProbeTimeout
	if h, ok := m.links[linkKey(a, b)]; ok {
		if m.cfg.FastProbeTimeout > 0 && h.suspicious(m.cfg) {
			t = m.cfg.FastProbeTimeout
		}
		if c := 3 * 2 * h.base; c > t {
			t = c
		}
		if c := 3 * h.ewmaRTT; c > t {
			t = c
		}
	}
	return t
}

// suspicious reports whether this link deserves the fast probe cadence:
// anything short of a clean bill of health — not Up, a loss streak in
// progress, or window loss still above the degrade-clear threshold.
func (h *linkHealth) suspicious(cfg MonitorConfig) bool {
	if h.state != LinkUp || h.consecLoss > 0 {
		return true
	}
	return cfg.ClearLoss > 0 && h.lossFrac() >= cfg.ClearLoss
}

// Suspicious reports whether the link a↔b is currently probing (or should
// probe) at the fast cadence. Untracked links are never suspicious.
func (m *Monitor) Suspicious(a, b core.NodeID) bool {
	h, ok := m.links[linkKey(a, b)]
	return ok && h.suspicious(m.cfg)
}

// ProbeIntervalFor returns the probe period the hosting runtime should use
// for the link a↔b right now: FastProbeInterval while the link is
// suspicious (failure detection then completes in FailAfter fast rounds),
// ProbeInterval otherwise or when adaptation is disabled.
func (m *Monitor) ProbeIntervalFor(a, b core.NodeID) time.Duration {
	if m.cfg.FastProbeInterval > 0 {
		if h, ok := m.links[linkKey(a, b)]; ok && h.suspicious(m.cfg) {
			return m.cfg.FastProbeInterval
		}
	}
	return m.cfg.ProbeInterval
}

// Health returns the current snapshot for a link.
func (m *Monitor) Health(a, b core.NodeID) (Health, bool) {
	h, ok := m.links[linkKey(a, b)]
	if !ok {
		return Health{}, false
	}
	return Health{State: h.state, RTT: h.ewmaRTT, Loss: h.lossFrac(),
		ProbesSent: h.sent, ProbesLost: h.lost}, true
}

// ProbeSent records an in-flight probe.
func (m *Monitor) ProbeSent(a, b core.NodeID, seq uint64, now core.Time) {
	h, ok := m.links[linkKey(a, b)]
	if !ok {
		return
	}
	h.outstanding[seq] = now
	h.sent++
	// Prune stale timed-out entries whose answers never came.
	for s := range h.timedOut {
		if s+64 < seq {
			delete(h.timedOut, s)
		}
	}
}

// ProbeAcked records an answered probe and re-evaluates link health. An
// answer that arrives after its timeout stays counted as a loss (it WAS
// too late) but still teaches the RTT estimator — which stretches
// CurrentTimeout over the link's real RTT so subsequent probes succeed.
func (m *Monitor) ProbeAcked(a, b core.NodeID, seq uint64, now core.Time) {
	h, ok := m.links[linkKey(a, b)]
	if !ok {
		return
	}
	sentAt, out := h.outstanding[seq]
	if !out {
		if lateSent, late := h.timedOut[seq]; late {
			delete(h.timedOut, seq)
			h.learnRTT(now-lateSent, m.cfg.EWMAAlpha)
			m.evaluate(h)
		}
		return
	}
	delete(h.outstanding, seq)
	h.learnRTT(now-sentAt, m.cfg.EWMAAlpha)
	h.record(false, m.cfg.LossWindow)
	h.consecLoss = 0
	h.consecOK++
	m.evaluate(h)
}

func (h *linkHealth) learnRTT(rtt core.Time, alpha float64) {
	if h.ewmaRTT == 0 {
		h.ewmaRTT = rtt
		return
	}
	h.ewmaRTT = core.Time(alpha*float64(rtt) + (1-alpha)*float64(h.ewmaRTT))
}

// ProbeTimedOut records a lost probe (no-op if it was answered in time)
// and re-evaluates link health.
func (m *Monitor) ProbeTimedOut(a, b core.NodeID, seq uint64) {
	h, ok := m.links[linkKey(a, b)]
	if !ok {
		return
	}
	sentAt, out := h.outstanding[seq]
	if !out {
		return
	}
	delete(h.outstanding, seq)
	h.timedOut[seq] = sentAt
	h.lost++
	h.record(true, m.cfg.LossWindow)
	h.consecOK = 0
	h.consecLoss++
	m.evaluate(h)
}

// evaluate runs the fail / degrade / recover state machine and pushes the
// verdict (state + effective one-way cost) into the controller. Probe
// loss drives the health state; RTT drift re-prices the link (a link that
// merely got slower stays healthy at its new, honest cost).
func (m *Monitor) evaluate(h *linkHealth) {
	loss := h.lossFrac()
	switch h.state {
	case LinkDown:
		if h.consecOK >= m.cfg.RecoverAfter {
			h.state = LinkUp
			// Fresh estimates: the outage polluted the window.
			for i := range h.window {
				h.window[i] = false
			}
			m.push(h, LinkUp, h.refreshedCost(m.cfg.RefreshFraction))
		}
	case LinkUp, LinkDegraded:
		if h.consecLoss >= m.cfg.FailAfter {
			h.state = LinkDown
			m.push(h, LinkDown, 0)
			return
		}
		lossHigh := h.windowFill >= m.cfg.LossWindow/2 && loss >= m.cfg.DegradeLoss
		if h.state == LinkUp && lossHigh {
			h.state = LinkDegraded
			m.push(h, LinkDegraded, h.degradedCost(loss))
			return
		}
		if h.state == LinkDegraded {
			if loss <= m.cfg.ClearLoss {
				h.state = LinkUp
				m.push(h, LinkUp, h.refreshedCost(m.cfg.RefreshFraction))
				return
			}
			// Still degraded: keep the advertised cost roughly current,
			// but only re-push when it moved materially (damping).
			if c := h.degradedCost(loss); m.deviates(h, c) {
				m.push(h, LinkDegraded, c)
			}
			return
		}
		// Healthy link: re-price when the measured latency drifts well
		// past the advertised cost (e.g. after SetLinkQuality slowed the
		// link — routes shift to the now-cheaper alternates).
		if h.ewmaRTT > 0 && m.cfg.RefreshFraction > 0 {
			if est := h.ewmaRTT / 2; m.deviates(h, est) {
				m.push(h, LinkUp, est)
			}
		}
	}
}

// refreshedCost is the cost to advertise when a link returns to healthy:
// the measured estimate if it deviates materially from the configured
// base, 0 (= base) otherwise.
func (h *linkHealth) refreshedCost(frac float64) core.Time {
	if h.ewmaRTT == 0 || frac <= 0 || h.base == 0 {
		return 0
	}
	est := h.ewmaRTT / 2
	dev := float64(est-h.base) / float64(h.base)
	if dev < 0 {
		dev = -dev
	}
	if dev > frac {
		return est
	}
	return 0
}

// push records the advertised cost and forwards the verdict.
func (m *Monitor) push(h *linkHealth, state LinkState, est core.Time) {
	h.advertised = est
	m.c.SetLinkHealth(h.a, h.b, state, est)
}

// deviates reports whether cost differs from the currently advertised cost
// by more than RefreshFraction — the recompute damping threshold.
func (m *Monitor) deviates(h *linkHealth, cost core.Time) bool {
	cur := h.advertised
	if cur == 0 {
		cur = h.base
	}
	if cur == 0 {
		return cost != 0
	}
	dev := float64(cost-cur) / float64(cur)
	if dev < 0 {
		dev = -dev
	}
	return dev > m.cfg.RefreshFraction
}

// degradedCost converts the RTT/loss estimates into an effective one-way
// path cost: measured latency inflated by expected retransmission burden,
// never below the configured base and capped at 10× base.
func (h *linkHealth) degradedCost(loss float64) core.Time {
	est := h.ewmaRTT / 2
	if est < h.base {
		est = h.base
	}
	if loss > 0.9 {
		loss = 0.9
	}
	est = core.Time(float64(est) / (1 - loss))
	if limit := 10 * h.base; h.base > 0 && est > limit {
		est = limit
	}
	return est
}
