package routing

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"jqos/internal/core"
)

// fakeSink records pushed routes for one DC.
type fakeSink struct {
	routes map[core.NodeID]core.NodeID
}

func newFakeSink() *fakeSink { return &fakeSink{routes: make(map[core.NodeID]core.NodeID)} }

func (s *fakeSink) SetRoute(dst, via core.NodeID) { s.routes[dst] = via }
func (s *fakeSink) DeleteRoute(dst core.NodeID)   { delete(s.routes, dst) }

// buildLine wires 1—2—3—4 with 10 ms links and returns the controller and
// sinks.
func buildLine() (*Controller, map[core.NodeID]*fakeSink) {
	c := NewController(2)
	sinks := make(map[core.NodeID]*fakeSink)
	for id := core.NodeID(1); id <= 4; id++ {
		s := newFakeSink()
		sinks[id] = s
		c.AddDC(id, s)
	}
	c.SetLink(1, 2, 10*time.Millisecond)
	c.SetLink(2, 3, 10*time.Millisecond)
	c.SetLink(3, 4, 10*time.Millisecond)
	return c, sinks
}

func TestLinePathsAndNextHops(t *testing.T) {
	c, sinks := buildLine()
	// 1→4 must go via 2, then 3.
	if via, ok := c.NextHop(1, 4); !ok || via != 2 {
		t.Errorf("NextHop(1,4) = %v %v, want 2", via, ok)
	}
	if via, ok := c.NextHop(2, 4); !ok || via != 3 {
		t.Errorf("NextHop(2,4) = %v %v, want 3", via, ok)
	}
	if lat, ok := c.PathLatency(1, 4); !ok || lat != 30*time.Millisecond {
		t.Errorf("PathLatency(1,4) = %v %v, want 30ms", lat, ok)
	}
	if lat, ok := c.PathLatency(4, 4); !ok || lat != 0 {
		t.Errorf("PathLatency(4,4) = %v %v", lat, ok)
	}
	if _, ok := c.PathLatency(1, 99); ok {
		t.Error("unknown DC resolved")
	}
	// Sinks saw the DC entries.
	if sinks[1].routes[4] != 2 || sinks[4].routes[1] != 3 {
		t.Errorf("sink tables wrong: %v / %v", sinks[1].routes, sinks[4].routes)
	}
}

func TestHostRoutesPushed(t *testing.T) {
	c, sinks := buildLine()
	c.AttachHost(100, 4) // host near DC 4
	// Every DC routes host 100 toward DC 4's next hop; DC 4 delivers
	// directly (no entry).
	if sinks[1].routes[100] != 2 || sinks[2].routes[100] != 3 || sinks[3].routes[100] != 4 {
		t.Errorf("host routes wrong: %v %v %v",
			sinks[1].routes[100], sinks[2].routes[100], sinks[3].routes[100])
	}
	if _, ok := sinks[4].routes[100]; ok {
		t.Error("home DC got a route entry for its own host")
	}
}

func TestLinkDownReroutesAndCounts(t *testing.T) {
	// Diamond: 1—2—4 (primary, 20 ms) and 1—3—4 (backup, 40 ms).
	c := NewController(2)
	sinks := make(map[core.NodeID]*fakeSink)
	for id := core.NodeID(1); id <= 4; id++ {
		s := newFakeSink()
		sinks[id] = s
		c.AddDC(id, s)
	}
	c.SetLink(1, 2, 10*time.Millisecond)
	c.SetLink(2, 4, 10*time.Millisecond)
	c.SetLink(1, 3, 20*time.Millisecond)
	c.SetLink(3, 4, 20*time.Millisecond)
	c.AttachHost(100, 4)
	if sinks[1].routes[4] != 2 || sinks[1].routes[100] != 2 {
		t.Fatalf("primary path not via 2: %v", sinks[1].routes)
	}
	pre := c.Stats()

	c.SetLinkHealth(2, 4, LinkDown, 0)
	if sinks[1].routes[4] != 3 || sinks[1].routes[100] != 3 {
		t.Errorf("after failure, 1's routes = %v, want via 3", sinks[1].routes)
	}
	if lat, ok := c.PathLatency(1, 4); !ok || lat != 40*time.Millisecond {
		t.Errorf("failed-over latency = %v %v, want 40ms", lat, ok)
	}
	st := c.Stats()
	if st.LinkFailures != pre.LinkFailures+1 {
		t.Errorf("LinkFailures = %d", st.LinkFailures)
	}
	if st.Reroutes != pre.Reroutes+1 || st.RouteChanges == pre.RouteChanges {
		t.Errorf("reroute not counted: %+v", st)
	}

	// Recovery restores the primary.
	c.SetLinkHealth(2, 4, LinkUp, 0)
	if sinks[1].routes[4] != 2 {
		t.Errorf("after recovery, 1→4 via %v, want 2", sinks[1].routes[4])
	}
	if c.Stats().LinkRecoveries != pre.LinkRecoveries+1 {
		t.Errorf("LinkRecoveries = %d", c.Stats().LinkRecoveries)
	}
}

func TestDegradedLinkCostShiftsPath(t *testing.T) {
	// Two parallel two-hop paths; degrading the cheaper one's first link
	// past the alternative's cost moves traffic over.
	c := NewController(2)
	for id := core.NodeID(1); id <= 4; id++ {
		c.AddDC(id, newFakeSink())
	}
	c.SetLink(1, 2, 10*time.Millisecond)
	c.SetLink(2, 4, 10*time.Millisecond)
	c.SetLink(1, 3, 25*time.Millisecond)
	c.SetLink(3, 4, 25*time.Millisecond)
	c.SetLinkHealth(1, 2, LinkDegraded, 60*time.Millisecond)
	if via, _ := c.NextHop(1, 4); via != 3 {
		t.Errorf("degraded path still primary: via %v", via)
	}
	if c.Stats().LinkDegrades != 1 {
		t.Errorf("LinkDegrades = %d", c.Stats().LinkDegrades)
	}
}

func TestPartitionDeletesRoutes(t *testing.T) {
	c, sinks := buildLine()
	c.AttachHost(100, 4)
	c.SetLinkHealth(3, 4, LinkDown, 0)
	if _, ok := sinks[1].routes[4]; ok {
		t.Error("unreachable DC still routed")
	}
	if _, ok := sinks[1].routes[100]; ok {
		t.Error("unreachable host still routed")
	}
	if c.Stats().Unreachable == 0 {
		t.Error("unreachable not counted")
	}
	if _, ok := c.PathLatency(1, 4); ok {
		t.Error("partitioned pair has a path latency")
	}
}

func TestKShortestPaths(t *testing.T) {
	c, _ := buildLine()
	// Add a chord 1—4 at 50 ms: primary is the 30 ms line, alternate the
	// direct chord.
	c.SetLink(1, 4, 50*time.Millisecond)
	ps := c.Paths(1, 4, 2)
	if len(ps) != 2 {
		t.Fatalf("got %d paths", len(ps))
	}
	want0 := []core.NodeID{1, 2, 3, 4}
	want1 := []core.NodeID{1, 4}
	if !reflect.DeepEqual(ps[0].Nodes, want0) || ps[0].Cost != 30*time.Millisecond {
		t.Errorf("primary = %v (%v)", ps[0].Nodes, ps[0].Cost)
	}
	if !reflect.DeepEqual(ps[1].Nodes, want1) || ps[1].Cost != 50*time.Millisecond {
		t.Errorf("alternate = %v (%v)", ps[1].Nodes, ps[1].Cost)
	}
	// k beyond the number of distinct loop-free paths just stops.
	if ps := c.Paths(1, 4, 10); len(ps) < 2 {
		t.Errorf("k=10 returned %d paths", len(ps))
	}
}

// randomSparseGraph builds an n-DC ring plus m random chords — connected,
// sparse, seeded.
func randomSparseGraph(c *Controller, n, m int, seed int64) {
	for id := core.NodeID(1); id <= core.NodeID(n); id++ {
		c.AddDC(id, newFakeSink())
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		a := core.NodeID(i + 1)
		b := core.NodeID((i+1)%n + 1)
		c.SetLink(a, b, time.Duration(5+rng.Intn(50))*time.Millisecond)
	}
	for i := 0; i < m; i++ {
		a := core.NodeID(rng.Intn(n) + 1)
		b := core.NodeID(rng.Intn(n) + 1)
		if a == b {
			continue
		}
		c.SetLink(a, b, time.Duration(5+rng.Intn(80))*time.Millisecond)
	}
}

// TestRoutingTablesDeterministic: same graph + seed → identical tables
// (the determinism the emulator's bit-stable runs depend on).
func TestRoutingTablesDeterministic(t *testing.T) {
	build := func() map[string]core.NodeID {
		c := NewController(3)
		randomSparseGraph(c, 30, 15, 77)
		for h := 0; h < 10; h++ {
			c.AttachHost(core.NodeID(1000+h), core.NodeID(h%30+1))
		}
		c.Recompute()
		out := make(map[string]core.NodeID)
		for _, dc := range c.Graph().Nodes() {
			for _, dst := range c.Graph().Nodes() {
				if via, ok := c.NextHop(dc, dst); ok {
					out[fmt.Sprintf("%v->%v", dc, dst)] = via
				}
			}
		}
		return out
	}
	t1, t2 := build(), build()
	if len(t1) == 0 {
		t.Fatal("empty tables")
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Error("routing tables diverged across identical builds")
	}
}

// --- monitor ---

// monWorld pairs a monitor with a 2-link controller for state-machine
// tests driven by hand-fed probe outcomes.
func monWorld(t *testing.T, cfg MonitorConfig) (*Controller, *Monitor) {
	t.Helper()
	c := NewController(2)
	for id := core.NodeID(1); id <= 3; id++ {
		c.AddDC(id, newFakeSink())
	}
	c.SetLink(1, 2, 10*time.Millisecond)
	c.SetLink(2, 3, 10*time.Millisecond)
	c.SetLink(1, 3, 40*time.Millisecond)
	m := NewMonitor(c, cfg)
	m.Track(1, 2, 10*time.Millisecond)
	return c, m
}

func TestMonitorFailAndRecover(t *testing.T) {
	cfg := DefaultMonitorConfig()
	c, m := monWorld(t, cfg)
	now := core.Time(0)
	seq := uint64(0)
	lose := func(n int) {
		for i := 0; i < n; i++ {
			seq++
			m.ProbeSent(1, 2, seq, now)
			now += 100 * time.Millisecond
			m.ProbeTimedOut(1, 2, seq)
		}
	}
	answer := func(n int, rtt core.Time) {
		for i := 0; i < n; i++ {
			seq++
			m.ProbeSent(1, 2, seq, now)
			now += rtt
			m.ProbeAcked(1, 2, seq, now)
		}
	}
	answer(4, 20*time.Millisecond)
	if h, _ := m.Health(1, 2); h.State != LinkUp || h.RTT == 0 {
		t.Fatalf("healthy link state = %+v", h)
	}
	lose(cfg.FailAfter)
	if h, _ := m.Health(1, 2); h.State != LinkDown {
		t.Fatalf("state after %d losses = %v", cfg.FailAfter, h.State)
	}
	if c.Stats().LinkFailures != 1 {
		t.Errorf("controller failures = %d", c.Stats().LinkFailures)
	}
	// 1→3 traffic must avoid the dead link now.
	if via, ok := c.NextHop(1, 3); !ok || via != 3 {
		t.Errorf("NextHop(1,3) after failure = %v %v", via, ok)
	}
	answer(cfg.RecoverAfter, 20*time.Millisecond)
	if h, _ := m.Health(1, 2); h.State != LinkUp {
		t.Fatalf("state after recovery = %v", h.State)
	}
	if c.Stats().LinkRecoveries != 1 {
		t.Errorf("controller recoveries = %d", c.Stats().LinkRecoveries)
	}
}

func TestMonitorRTTDriftRepricesLink(t *testing.T) {
	// RTT drift is a cost problem, not a health problem: the link stays
	// up but its advertised cost tracks the measurement, so routes shift
	// to now-cheaper alternates and PredictDelay stays honest.
	cfg := DefaultMonitorConfig()
	c, m := monWorld(t, cfg)
	now := core.Time(0)
	// Base RTT 20 ms; feed sustained 80 ms RTTs (4× base).
	for seq := uint64(1); seq <= 20; seq++ {
		m.ProbeSent(1, 2, seq, now)
		now += 80 * time.Millisecond
		m.ProbeAcked(1, 2, seq, now)
	}
	h, _ := m.Health(1, 2)
	if h.State != LinkUp {
		t.Fatalf("state = %v, want up (slow ≠ sick)", h.State)
	}
	// Cost must have risen toward ~40 ms one-way.
	if lat, ok := c.PathLatency(1, 2); !ok || lat <= 20*time.Millisecond {
		t.Errorf("re-priced latency = %v %v, want >20ms", lat, ok)
	}
	// 1→3 used to ride 1—2—3 (20 ms); at ~50 ms routed it must now use
	// the direct 40 ms link.
	if via, ok := c.NextHop(1, 3); !ok || via != 3 {
		t.Errorf("NextHop(1,3) after drift = %v %v, want direct", via, ok)
	}
	// Adaptive timeout follows the estimate.
	if to := m.CurrentTimeout(1, 2); to <= cfg.ProbeTimeout {
		t.Errorf("timeout did not adapt: %v", to)
	}
	// Drifting back down re-prices again.
	for seq := uint64(21); seq <= 60; seq++ {
		m.ProbeSent(1, 2, seq, now)
		now += 20 * time.Millisecond
		m.ProbeAcked(1, 2, seq, now)
	}
	if via, ok := c.NextHop(1, 3); !ok || via != 2 {
		t.Errorf("NextHop(1,3) after recovery = %v %v, want via 2", via, ok)
	}
}

func TestMonitorLateAckTeachesRTT(t *testing.T) {
	cfg := DefaultMonitorConfig()
	_, m := monWorld(t, cfg)
	m.ProbeSent(1, 2, 1, 0)
	m.ProbeTimedOut(1, 2, 1)
	h1, _ := m.Health(1, 2)
	m.ProbeAcked(1, 2, 1, 500*time.Millisecond) // late answer
	h2, _ := m.Health(1, 2)
	// The probe stays counted as lost (it WAS too late for the data
	// plane), but the answer still teaches the RTT estimator — that is
	// what lets the adaptive timeout stretch over a slowed link.
	if h1.Loss != h2.Loss {
		t.Errorf("late ack rewrote the loss window: %v -> %v", h1.Loss, h2.Loss)
	}
	if h2.RTT != 500*time.Millisecond {
		t.Errorf("late ack did not teach RTT: %v", h2.RTT)
	}
	if to := m.CurrentTimeout(1, 2); to != 1500*time.Millisecond {
		t.Errorf("timeout after late ack = %v, want 3×RTT", to)
	}
	// A duplicate of the same late ack changes nothing further.
	m.ProbeAcked(1, 2, 1, 600*time.Millisecond)
	if h3, _ := m.Health(1, 2); h3.RTT != h2.RTT {
		t.Errorf("duplicate late ack re-learned: %v", h3.RTT)
	}
}
