package routing

import (
	"sort"

	"jqos/internal/core"
)

// RouteSink receives next-hop pushes for one DC. forward.Forwarder
// satisfies it; tests use map-backed fakes.
type RouteSink interface {
	SetRoute(dst, via core.NodeID)
	DeleteRoute(dst core.NodeID)
}

// FlowRouteSink is the optional per-flow extension of RouteSink: sinks
// that implement it (forward.Forwarder does) receive pinned next-hop
// entries for flows with an explicit path policy. Sinks without it simply
// never see pins — pinned flows there fall back to the shared tables.
type FlowRouteSink interface {
	SetFlowRoute(flow core.FlowID, dst, via core.NodeID)
	DeleteFlowRoute(flow core.FlowID, dst core.NodeID)
}

// Stats counts control-plane activity.
type Stats struct {
	// Recomputes is the number of full table computations.
	Recomputes uint64
	// Pushes counts route entries written to sinks (sets + deletes).
	Pushes uint64
	// RouteChanges counts installed entries whose next hop moved to a
	// different, still-valid hop.
	RouteChanges uint64
	// Reroutes counts recompute events that moved at least one existing
	// destination onto a new next hop — i.e. traffic actually shifted.
	Reroutes uint64
	// Link health transitions reported by the monitor.
	LinkFailures   uint64
	LinkRecoveries uint64
	LinkDegrades   uint64
	// UtilizationUpdates counts accepted load reports — those whose
	// derived weight multiplier moved past the congestion hysteresis and
	// triggered a recompute (sub-hysteresis reports are absorbed).
	UtilizationUpdates uint64
	// CongestionReroutes counts utilization-triggered recomputes that
	// moved at least one installed route — traffic actually spread away
	// from (or back onto) a hot link.
	CongestionReroutes uint64
	// Unreachable is the number of (DC, destination) pairs with no path
	// after the last recompute.
	Unreachable int
}

// Controller is the centralized routing control plane: it owns the link
// graph, recomputes all-pairs shortest paths when the graph or link health
// changes, and pushes per-DC next-hop tables (for DC and host/group
// destinations alike) to the registered RouteSinks.
type Controller struct {
	g     *Graph
	k     int // alternate paths kept per pair (KShortestPaths default)
	sinks map[core.NodeID]RouteSink
	// homes maps host (or multicast-group) IDs to their home DC; hosts
	// are routed toward their home DC's next hop.
	homes     map[core.NodeID]core.NodeID
	hostOrder []core.NodeID // sorted host IDs for deterministic pushes

	// dist holds the routed DC-pair latency: the honest latency of the
	// weight-selected path (congestion inflates the selection weight,
	// never this figure — see Link.Cost vs Link.Latency).
	dist      map[[2]core.NodeID]core.Time
	nextHop   map[[2]core.NodeID]core.NodeID
	installed map[core.NodeID]map[core.NodeID]core.NodeID // per-DC pushed entries

	// pins holds per-flow pinned paths; watches tracks flows that follow
	// the shared tables but asked to hear about primary-path moves.
	pins    map[core.FlowID]*flowPin
	watches map[core.FlowID]*flowWatch

	// congestion is the utilization → weight-inflation model applied by
	// SetLinkUtilization (always normalized).
	congestion CongestionConfig

	// OnFlowPath, when set, is invoked after each recompute for every
	// pinned flow whose path died (next == nil, broken == true) and every
	// watched flow whose primary path moved (broken == false). Handlers
	// may re-pin or unpin from inside the callback.
	OnFlowPath func(flow core.FlowID, old, next []core.NodeID, broken bool)

	// OnRecompute, when set, fires at the end of every Recompute, after
	// the per-flow OnFlowPath notifications. Hosting runtimes use it for
	// policies that watch GRAPH state rather than one flow's path — e.g.
	// returning a failed-over flow to its preferred path once that
	// path's links are all up again (FlowSpec.RepinOnHeal). Handlers may
	// pin/unpin/watch but must not mutate links (no recursive
	// recompute).
	OnRecompute func()

	stats Stats
}

// flowPin is one flow's pinned path and the sink entries installed for it.
type flowPin struct {
	dst     core.NodeID   // the flow's cloud destination (host or group)
	path    []core.NodeID // DC path, endpoints included
	entries []pinEntry    // what was pushed, for clean removal
}

type pinEntry struct {
	dc, dst core.NodeID
}

// flowWatch tracks the primary path of an unpinned flow between its DCs.
type flowWatch struct {
	a, b core.NodeID
	last []core.NodeID
}

// NewController creates an empty control plane keeping k alternate paths
// per DC pair (k < 1 is treated as 1).
func NewController(k int) *Controller {
	if k < 1 {
		k = 1
	}
	return &Controller{
		g:          NewGraph(),
		k:          k,
		sinks:      make(map[core.NodeID]RouteSink),
		homes:      make(map[core.NodeID]core.NodeID),
		dist:       make(map[[2]core.NodeID]core.Time),
		nextHop:    make(map[[2]core.NodeID]core.NodeID),
		installed:  make(map[core.NodeID]map[core.NodeID]core.NodeID),
		pins:       make(map[core.FlowID]*flowPin),
		watches:    make(map[core.FlowID]*flowWatch),
		congestion: DefaultCongestionConfig(),
	}
}

// Graph exposes the link graph (read-mostly; mutate via the controller so
// tables stay in sync).
func (c *Controller) Graph() *Graph { return c.g }

// Stats returns a copy of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// AddDC registers a DC vertex and the sink its routes are pushed to.
func (c *Controller) AddDC(id core.NodeID, sink RouteSink) {
	c.g.AddNode(id)
	c.sinks[id] = sink
	if c.installed[id] == nil {
		c.installed[id] = make(map[core.NodeID]core.NodeID)
	}
}

// AttachHost binds a host (or multicast-group) destination to its home DC
// and pushes its routes to every DC immediately.
func (c *Controller) AttachHost(host, home core.NodeID) {
	c.hostOrder = insortID(c.hostOrder, host)
	c.homes[host] = home
	for _, dc := range c.g.Nodes() {
		c.pushEntry(dc, host, c.desiredVia(dc, host))
	}
}

// SetLink installs or re-bases the inter-DC link a↔b (one-way latency)
// and recomputes tables.
func (c *Controller) SetLink(a, b core.NodeID, base core.Time) {
	c.g.SetLink(a, b, base)
	c.Recompute()
}

// RemoveLink deletes the link a↔b and recomputes tables.
func (c *Controller) RemoveLink(a, b core.NodeID) {
	c.g.RemoveLink(a, b)
	c.Recompute()
}

// SetLinkHealth applies a monitor verdict: the link's state and (for
// degraded or refreshed links) its estimated one-way cost (0 keeps the
// configured base). A change triggers incremental recomputation and a
// route re-push.
func (c *Controller) SetLinkHealth(a, b core.NodeID, state LinkState, est core.Time) {
	l := c.g.Link(a, b)
	if l == nil || (l.State == state && l.Est == est) {
		return
	}
	switch {
	case state == LinkDown && l.State != LinkDown:
		c.stats.LinkFailures++
	case state == LinkUp && l.State == LinkDown:
		c.stats.LinkRecoveries++
	case state == LinkDegraded && l.State != LinkDegraded:
		c.stats.LinkDegrades++
	}
	l.State = state
	l.Est = est
	c.Recompute()
}

// NextHop returns the installed next hop at dc toward dst (a DC, host, or
// group destination).
func (c *Controller) NextHop(dc, dst core.NodeID) (core.NodeID, bool) {
	via, ok := c.installed[dc][dst]
	return via, ok
}

// PathLatency returns the routed one-way latency between two DCs, or
// ok=false when no path exists. overlay.Topology uses it as its
// inter-DC oracle, which makes service selection work on sparse graphs.
func (c *Controller) PathLatency(a, b core.NodeID) (core.Time, bool) {
	if a == b {
		if c.g.HasNode(a) {
			return 0, true
		}
		return 0, false
	}
	d, ok := c.dist[[2]core.NodeID{a, b}]
	return d, ok
}

// Paths returns up to k alternate paths a→b (k ≤ 0 uses the controller's
// configured alternate count).
func (c *Controller) Paths(a, b core.NodeID, k int) []Path {
	if k <= 0 {
		k = c.k
	}
	return c.g.KShortestPaths(a, b, k)
}

// Home returns the home DC a host or group was attached to.
func (c *Controller) Home(host core.NodeID) (core.NodeID, bool) {
	home, ok := c.homes[host]
	return home, ok
}

// PinFlow installs per-flow next-hop entries for flow along path, so its
// traffic toward dst (its cloud destination — receiver host or multicast
// group) rides exactly that DC path regardless of the shared tables. An
// extra entry per transit DC keys on the egress DC itself, so service
// traffic addressed to the DC (coded parity, for example) follows the pin
// too. Re-pinning replaces the previous path's entries.
func (c *Controller) PinFlow(flow core.FlowID, dst core.NodeID, path Path) {
	c.UnpinFlow(flow)
	if len(path.Nodes) < 2 {
		return
	}
	pin := &flowPin{dst: dst, path: append([]core.NodeID(nil), path.Nodes...)}
	egress := path.Nodes[len(path.Nodes)-1]
	for i := 0; i+1 < len(path.Nodes); i++ {
		sink, ok := c.sinks[path.Nodes[i]].(FlowRouteSink)
		if !ok {
			continue
		}
		via := path.Nodes[i+1]
		sink.SetFlowRoute(flow, dst, via)
		pin.entries = append(pin.entries, pinEntry{path.Nodes[i], dst})
		c.stats.Pushes++
		if egress != dst {
			sink.SetFlowRoute(flow, egress, via)
			pin.entries = append(pin.entries, pinEntry{path.Nodes[i], egress})
			c.stats.Pushes++
		}
	}
	c.pins[flow] = pin
}

// UnpinFlow removes a flow's pinned entries (no-op when not pinned).
func (c *Controller) UnpinFlow(flow core.FlowID) {
	pin, ok := c.pins[flow]
	if !ok {
		return
	}
	for _, e := range pin.entries {
		if sink, ok := c.sinks[e.dc].(FlowRouteSink); ok {
			sink.DeleteFlowRoute(flow, e.dst)
			c.stats.Pushes++
		}
	}
	delete(c.pins, flow)
}

// PinnedPath returns a flow's pinned DC path, if any (copied — callers
// must not be able to corrupt the controller's path-death detection).
func (c *Controller) PinnedPath(flow core.FlowID) ([]core.NodeID, bool) {
	pin, ok := c.pins[flow]
	if !ok {
		return nil, false
	}
	return append([]core.NodeID(nil), pin.path...), true
}

// WatchFlow subscribes an unpinned flow to primary-path changes between
// its two DCs: after any recompute that moves the shortest a→b path,
// OnFlowPath fires with the old and new paths. Returns the current
// primary (nil when none exists) so callers seed their own path state
// without a second SPF.
func (c *Controller) WatchFlow(flow core.FlowID, a, b core.NodeID) []core.NodeID {
	// Seed from the same table walk the change detector uses — a
	// source-rooted SPF can disagree with the installed hop-by-hop route
	// on equal-cost topologies, which would mislabel the first recompute
	// as a reroute.
	w := &flowWatch{a: a, b: b, last: c.primaryFromTables(a, b)}
	c.watches[flow] = w
	// Copy: a caller mutating the result must not corrupt the watch's
	// change detection.
	return append([]core.NodeID(nil), w.last...)
}

// UnwatchFlow cancels a WatchFlow subscription.
func (c *Controller) UnwatchFlow(flow core.FlowID) { delete(c.watches, flow) }

// PinnedCount reports how many flows currently hold pinned paths.
// Together with WatchedCount it is the chaos harness's leak check:
// after every flow closes, both must read zero.
func (c *Controller) PinnedCount() int { return len(c.pins) }

// WatchedCount reports how many flows currently hold primary-path
// watches (WatchFlow subscriptions not yet cancelled).
func (c *Controller) WatchedCount() int { return len(c.watches) }

// IsWatched reports whether the flow holds a live WatchFlow
// subscription. A flow must never be pinned and watched at once — the
// resolver installs exactly one of the two — and the chaos harness's
// flap invariant asserts it.
func (c *Controller) IsWatched(flow core.FlowID) bool {
	_, ok := c.watches[flow]
	return ok
}

// pathDead reports whether any link of a pinned path is missing or down.
func (c *Controller) pathDead(path []core.NodeID) bool {
	for i := 0; i+1 < len(path); i++ {
		l := c.g.Link(path[i], path[i+1])
		if l == nil || l.State == LinkDown {
			return true
		}
	}
	return false
}

// PathCost returns the current one-way latency along an explicit DC path
// (endpoints included), or ok=false when any link is missing or down.
// Pinned flows price their predictions on this, not the primary path.
// It sums honest latencies (Link.Latency), not congestion-inflated
// weights: a pinned flow on a hot link is steered-around by routing but
// does not actually get slower in proportion to the penalty.
func (c *Controller) PathCost(path []core.NodeID) (core.Time, bool) {
	if len(path) < 2 {
		return 0, len(path) == 1
	}
	var sum core.Time
	for i := 0; i+1 < len(path); i++ {
		l := c.g.Link(path[i], path[i+1])
		if l == nil {
			return 0, false
		}
		w, up := l.Latency()
		if !up {
			return 0, false
		}
		sum += w
	}
	return sum, true
}

// notifyFlowPaths runs after a recompute: it collects every pinned flow
// whose path died and every watched flow whose primary moved, then fires
// OnFlowPath for each (outside the iteration, so handlers may re-pin).
func (c *Controller) notifyFlowPaths() {
	if c.OnFlowPath == nil {
		return
	}
	type note struct {
		flow      core.FlowID
		old, next []core.NodeID
		broken    bool
	}
	var notes []note
	for _, flow := range sortedFlowIDs(c.pins) {
		if pin := c.pins[flow]; c.pathDead(pin.path) {
			notes = append(notes, note{flow, pin.path, nil, true})
		}
	}
	// Many flows often watch the same DC pair; walk the freshly built
	// next-hop tables (O(hops) per pair) instead of re-running SPF.
	primaries := make(map[[2]core.NodeID][]core.NodeID)
	for _, flow := range sortedFlowIDs(c.watches) {
		w := c.watches[flow]
		pair := [2]core.NodeID{w.a, w.b}
		cur, seen := primaries[pair]
		if !seen {
			cur = c.primaryFromTables(w.a, w.b)
			primaries[pair] = cur
		}
		if !sameNodes(cur, w.last) {
			old := w.last
			w.last = append([]core.NodeID(nil), cur...)
			notes = append(notes, note{flow, old, cur, false})
		}
	}
	for _, n := range notes {
		c.OnFlowPath(n.flow, n.old, n.next, n.broken)
	}
}

// primaryFromTables reconstructs the primary a→b path by walking the
// next-hop tables Recompute just rebuilt — O(hops), no extra SPF. Nil
// when no route exists (or the tables are inconsistent mid-walk).
func (c *Controller) primaryFromTables(a, b core.NodeID) []core.NodeID {
	if a == b {
		return nil
	}
	path := []core.NodeID{a}
	for at := a; at != b; {
		via, ok := c.nextHop[[2]core.NodeID{at, b}]
		if !ok || len(path) > len(c.g.order) {
			return nil
		}
		path = append(path, via)
		at = via
	}
	return path
}

// sortedFlowIDs returns map keys in ascending order, for deterministic
// notification order.
func sortedFlowIDs[V any](m map[core.FlowID]V) []core.FlowID {
	out := make([]core.FlowID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Recompute rebuilds the all-pairs tables from current link health and
// pushes the deltas to every sink. Unchanged entries are not re-pushed.
func (c *Controller) Recompute() {
	c.stats.Recomputes++
	dist := make(map[[2]core.NodeID]core.Time, len(c.dist))
	nh := make(map[[2]core.NodeID]core.NodeID, len(c.nextHop))
	for _, src := range c.g.Nodes() {
		res := c.g.shortestFrom(src, nil, nil)
		for _, dst := range c.g.Nodes() {
			if dst == src {
				continue
			}
			if _, ok := res.dist[dst]; ok {
				// The route minimized weight; the latency recorded is
				// the selected path's honest figure.
				dist[[2]core.NodeID{src, dst}] = res.lat[dst]
				if via, ok := res.nextHopFrom(src, dst); ok {
					nh[[2]core.NodeID{src, dst}] = via
				}
			}
		}
	}
	c.dist, c.nextHop = dist, nh

	changed := 0
	unreachable := 0
	for _, dc := range c.g.Nodes() {
		// DC destinations first, then hosts — both in ascending ID order.
		for _, dst := range c.g.Nodes() {
			if dst == dc {
				continue
			}
			via, ok := c.desired(dc, dst)
			if !ok {
				unreachable++
			}
			changed += c.pushEntry(dc, dst, viaOrNone(via, ok))
		}
		for _, h := range c.hostOrder {
			via := c.desiredVia(dc, h)
			if via == 0 && c.homes[h] != dc {
				unreachable++
			}
			changed += c.pushEntry(dc, h, via)
		}
	}
	c.stats.Unreachable = unreachable
	if changed > 0 {
		c.stats.Reroutes++
	}
	c.notifyFlowPaths()
	if c.OnRecompute != nil {
		c.OnRecompute()
	}
}

// desired returns the next hop dc→dst for a DC destination.
func (c *Controller) desired(dc, dst core.NodeID) (core.NodeID, bool) {
	via, ok := c.nextHop[[2]core.NodeID{dc, dst}]
	return via, ok
}

// desiredVia resolves a host destination to its next hop at dc: none when
// dc is the host's home (direct delivery), otherwise the hop toward the
// home DC. Returns 0 for "no entry".
func (c *Controller) desiredVia(dc, host core.NodeID) core.NodeID {
	home := c.homes[host]
	if home == dc {
		return 0
	}
	via, ok := c.nextHop[[2]core.NodeID{dc, home}]
	if !ok {
		return 0
	}
	return via
}

func viaOrNone(via core.NodeID, ok bool) core.NodeID {
	if !ok {
		return 0
	}
	return via
}

// pushEntry reconciles one (dc, dst) entry against what is installed,
// returning 1 when an existing next hop moved to a different valid hop.
func (c *Controller) pushEntry(dc, dst core.NodeID, via core.NodeID) int {
	sink := c.sinks[dc]
	if sink == nil {
		return 0
	}
	tbl := c.installed[dc]
	old, had := tbl[dst]
	if via == 0 {
		if had {
			sink.DeleteRoute(dst)
			delete(tbl, dst)
			c.stats.Pushes++
		}
		return 0
	}
	if had && old == via {
		return 0
	}
	sink.SetRoute(dst, via)
	tbl[dst] = via
	c.stats.Pushes++
	if had {
		c.stats.RouteChanges++
		return 1
	}
	return 0
}
