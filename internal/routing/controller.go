package routing

import (
	"jqos/internal/core"
)

// RouteSink receives next-hop pushes for one DC. forward.Forwarder
// satisfies it; tests use map-backed fakes.
type RouteSink interface {
	SetRoute(dst, via core.NodeID)
	DeleteRoute(dst core.NodeID)
}

// Stats counts control-plane activity.
type Stats struct {
	// Recomputes is the number of full table computations.
	Recomputes uint64
	// Pushes counts route entries written to sinks (sets + deletes).
	Pushes uint64
	// RouteChanges counts installed entries whose next hop moved to a
	// different, still-valid hop.
	RouteChanges uint64
	// Reroutes counts recompute events that moved at least one existing
	// destination onto a new next hop — i.e. traffic actually shifted.
	Reroutes uint64
	// Link health transitions reported by the monitor.
	LinkFailures   uint64
	LinkRecoveries uint64
	LinkDegrades   uint64
	// Unreachable is the number of (DC, destination) pairs with no path
	// after the last recompute.
	Unreachable int
}

// Controller is the centralized routing control plane: it owns the link
// graph, recomputes all-pairs shortest paths when the graph or link health
// changes, and pushes per-DC next-hop tables (for DC and host/group
// destinations alike) to the registered RouteSinks.
type Controller struct {
	g     *Graph
	k     int // alternate paths kept per pair (KShortestPaths default)
	sinks map[core.NodeID]RouteSink
	// homes maps host (or multicast-group) IDs to their home DC; hosts
	// are routed toward their home DC's next hop.
	homes     map[core.NodeID]core.NodeID
	hostOrder []core.NodeID // sorted host IDs for deterministic pushes

	dist      map[[2]core.NodeID]core.Time  // routed DC-pair latency
	nextHop   map[[2]core.NodeID]core.NodeID
	installed map[core.NodeID]map[core.NodeID]core.NodeID // per-DC pushed entries

	stats Stats
}

// NewController creates an empty control plane keeping k alternate paths
// per DC pair (k < 1 is treated as 1).
func NewController(k int) *Controller {
	if k < 1 {
		k = 1
	}
	return &Controller{
		g:         NewGraph(),
		k:         k,
		sinks:     make(map[core.NodeID]RouteSink),
		homes:     make(map[core.NodeID]core.NodeID),
		dist:      make(map[[2]core.NodeID]core.Time),
		nextHop:   make(map[[2]core.NodeID]core.NodeID),
		installed: make(map[core.NodeID]map[core.NodeID]core.NodeID),
	}
}

// Graph exposes the link graph (read-mostly; mutate via the controller so
// tables stay in sync).
func (c *Controller) Graph() *Graph { return c.g }

// Stats returns a copy of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// AddDC registers a DC vertex and the sink its routes are pushed to.
func (c *Controller) AddDC(id core.NodeID, sink RouteSink) {
	c.g.AddNode(id)
	c.sinks[id] = sink
	if c.installed[id] == nil {
		c.installed[id] = make(map[core.NodeID]core.NodeID)
	}
}

// AttachHost binds a host (or multicast-group) destination to its home DC
// and pushes its routes to every DC immediately.
func (c *Controller) AttachHost(host, home core.NodeID) {
	c.hostOrder = insortID(c.hostOrder, host)
	c.homes[host] = home
	for _, dc := range c.g.Nodes() {
		c.pushEntry(dc, host, c.desiredVia(dc, host))
	}
}

// SetLink installs or re-bases the inter-DC link a↔b (one-way latency)
// and recomputes tables.
func (c *Controller) SetLink(a, b core.NodeID, base core.Time) {
	c.g.SetLink(a, b, base)
	c.Recompute()
}

// RemoveLink deletes the link a↔b and recomputes tables.
func (c *Controller) RemoveLink(a, b core.NodeID) {
	c.g.RemoveLink(a, b)
	c.Recompute()
}

// SetLinkHealth applies a monitor verdict: the link's state and (for
// degraded or refreshed links) its estimated one-way cost (0 keeps the
// configured base). A change triggers incremental recomputation and a
// route re-push.
func (c *Controller) SetLinkHealth(a, b core.NodeID, state LinkState, est core.Time) {
	l := c.g.Link(a, b)
	if l == nil || (l.State == state && l.Est == est) {
		return
	}
	switch {
	case state == LinkDown && l.State != LinkDown:
		c.stats.LinkFailures++
	case state == LinkUp && l.State == LinkDown:
		c.stats.LinkRecoveries++
	case state == LinkDegraded && l.State != LinkDegraded:
		c.stats.LinkDegrades++
	}
	l.State = state
	l.Est = est
	c.Recompute()
}

// NextHop returns the installed next hop at dc toward dst (a DC, host, or
// group destination).
func (c *Controller) NextHop(dc, dst core.NodeID) (core.NodeID, bool) {
	via, ok := c.installed[dc][dst]
	return via, ok
}

// PathLatency returns the routed one-way latency between two DCs, or
// ok=false when no path exists. overlay.Topology uses it as its
// inter-DC oracle, which makes service selection work on sparse graphs.
func (c *Controller) PathLatency(a, b core.NodeID) (core.Time, bool) {
	if a == b {
		if c.g.HasNode(a) {
			return 0, true
		}
		return 0, false
	}
	d, ok := c.dist[[2]core.NodeID{a, b}]
	return d, ok
}

// Paths returns up to k alternate paths a→b (k ≤ 0 uses the controller's
// configured alternate count).
func (c *Controller) Paths(a, b core.NodeID, k int) []Path {
	if k <= 0 {
		k = c.k
	}
	return c.g.KShortestPaths(a, b, k)
}

// Recompute rebuilds the all-pairs tables from current link health and
// pushes the deltas to every sink. Unchanged entries are not re-pushed.
func (c *Controller) Recompute() {
	c.stats.Recomputes++
	dist := make(map[[2]core.NodeID]core.Time, len(c.dist))
	nh := make(map[[2]core.NodeID]core.NodeID, len(c.nextHop))
	for _, src := range c.g.Nodes() {
		res := c.g.shortestFrom(src, nil, nil)
		for _, dst := range c.g.Nodes() {
			if dst == src {
				continue
			}
			if d, ok := res.dist[dst]; ok {
				dist[[2]core.NodeID{src, dst}] = d
				if via, ok := res.nextHopFrom(src, dst); ok {
					nh[[2]core.NodeID{src, dst}] = via
				}
			}
		}
	}
	c.dist, c.nextHop = dist, nh

	changed := 0
	unreachable := 0
	for _, dc := range c.g.Nodes() {
		// DC destinations first, then hosts — both in ascending ID order.
		for _, dst := range c.g.Nodes() {
			if dst == dc {
				continue
			}
			via, ok := c.desired(dc, dst)
			if !ok {
				unreachable++
			}
			changed += c.pushEntry(dc, dst, viaOrNone(via, ok))
		}
		for _, h := range c.hostOrder {
			via := c.desiredVia(dc, h)
			if via == 0 && c.homes[h] != dc {
				unreachable++
			}
			changed += c.pushEntry(dc, h, via)
		}
	}
	c.stats.Unreachable = unreachable
	if changed > 0 {
		c.stats.Reroutes++
	}
}

// desired returns the next hop dc→dst for a DC destination.
func (c *Controller) desired(dc, dst core.NodeID) (core.NodeID, bool) {
	via, ok := c.nextHop[[2]core.NodeID{dc, dst}]
	return via, ok
}

// desiredVia resolves a host destination to its next hop at dc: none when
// dc is the host's home (direct delivery), otherwise the hop toward the
// home DC. Returns 0 for "no entry".
func (c *Controller) desiredVia(dc, host core.NodeID) core.NodeID {
	home := c.homes[host]
	if home == dc {
		return 0
	}
	via, ok := c.nextHop[[2]core.NodeID{dc, home}]
	if !ok {
		return 0
	}
	return via
}

func viaOrNone(via core.NodeID, ok bool) core.NodeID {
	if !ok {
		return 0
	}
	return via
}

// pushEntry reconciles one (dc, dst) entry against what is installed,
// returning 1 when an existing next hop moved to a different valid hop.
func (c *Controller) pushEntry(dc, dst core.NodeID, via core.NodeID) int {
	sink := c.sinks[dc]
	if sink == nil {
		return 0
	}
	tbl := c.installed[dc]
	old, had := tbl[dst]
	if via == 0 {
		if had {
			sink.DeleteRoute(dst)
			delete(tbl, dst)
			c.stats.Pushes++
		}
		return 0
	}
	if had && old == via {
		return 0
	}
	sink.SetRoute(dst, via)
	tbl[dst] = via
	c.stats.Pushes++
	if had {
		c.stats.RouteChanges++
		return 1
	}
	return 0
}
