package routing

import (
	"runtime"
	"sort"

	"jqos/internal/core"
)

// RouteSink receives next-hop pushes for one DC. forward.Forwarder
// satisfies it; tests use map-backed fakes.
type RouteSink interface {
	SetRoute(dst, via core.NodeID)
	DeleteRoute(dst core.NodeID)
}

// FlowRouteSink is the optional per-flow extension of RouteSink: sinks
// that implement it (forward.Forwarder does) receive pinned next-hop
// entries for flows with an explicit path policy. Sinks without it simply
// never see pins — pinned flows there fall back to the shared tables.
type FlowRouteSink interface {
	SetFlowRoute(flow core.FlowID, dst, via core.NodeID)
	DeleteFlowRoute(flow core.FlowID, dst core.NodeID)
}

// EpochSink is the optional table-versioning extension of RouteSink:
// sinks that implement it (forward.Forwarder does) are told when a new
// table epoch begins — just before the first route write of that epoch —
// and when an old epoch's routes may be retired. Between the two calls
// the sink answers lookups for both epochs, which is what makes reroutes
// make-before-break: in-flight packets tagged with the old epoch keep
// resolving the old next hops while new traffic rides the new table.
type EpochSink interface {
	BeginEpoch(epoch uint64)
	RetireEpoch(epoch uint64)
}

// Stats counts control-plane activity.
type Stats struct {
	// Recomputes is the number of table computation events (full or
	// incremental).
	Recomputes uint64
	// IncrementalRecomputes counts the subset of Recomputes served by the
	// delta engine (affected sources only).
	IncrementalRecomputes uint64
	// SourcesRecomputed totals the per-source Dijkstra runs performed by
	// incremental recomputes; SourcesRecomputed/IncrementalRecomputes is
	// the mean cut size.
	SourcesRecomputed uint64
	// EpochAdvances counts table epochs opened (recomputes that modified
	// at least one pushed entry); EpochRetires counts old epochs drained
	// and retired by the hosting runtime.
	EpochAdvances uint64
	EpochRetires  uint64
	// Pushes counts route entries written to sinks (sets + deletes).
	Pushes uint64
	// RouteChanges counts installed entries whose next hop moved to a
	// different, still-valid hop.
	RouteChanges uint64
	// Reroutes counts recompute events that moved at least one existing
	// destination onto a new next hop — i.e. traffic actually shifted.
	Reroutes uint64
	// Link health transitions reported by the monitor.
	LinkFailures   uint64
	LinkRecoveries uint64
	LinkDegrades   uint64
	// UtilizationUpdates counts accepted load reports — those whose
	// derived weight multiplier moved past the congestion hysteresis and
	// triggered a recompute (sub-hysteresis reports are absorbed).
	UtilizationUpdates uint64
	// CongestionReroutes counts utilization-triggered recomputes that
	// moved at least one installed route — traffic actually spread away
	// from (or back onto) a hot link.
	CongestionReroutes uint64
	// Unreachable is the number of (DC, destination) pairs with no path
	// after the last recompute.
	Unreachable int
}

// dcTables is one registered DC's push state: its sink (with the
// optional per-flow and epoch extensions pre-asserted, so the hot path
// never type-switches) and the installed next hops in index space —
// instDC by destination-DC index, instHost by host slot, 0 = no entry.
type dcTables struct {
	sink      RouteSink
	fsink     FlowRouteSink // nil when the sink has no per-flow extension
	esink     EpochSink     // nil when the sink is not epoch-aware
	sinkEpoch uint64        // last epoch announced to esink
	instDC    []core.NodeID
	instHost  []core.NodeID
}

// Controller is the centralized routing control plane: it owns the link
// graph, recomputes all-pairs shortest paths when the graph or link health
// changes, and pushes per-DC next-hop tables (for DC and host/group
// destinations alike) to the registered RouteSinks.
type Controller struct {
	g   *Graph
	k   int // alternate paths kept per pair (KShortestPaths default)
	dcs map[core.NodeID]*dcTables
	// homes maps host (or multicast-group) IDs to their home DC; hosts
	// are routed toward their home DC's next hop.
	homes     map[core.NodeID]core.NodeID
	hostOrder []core.NodeID // sorted host IDs for deterministic pushes
	// Host slots: each attached host gets a permanent slot (append
	// order), so per-DC install rows and home caches never shift when
	// later hosts sort lower. hostIter lists slots in ascending host-ID
	// order — the deterministic push order; hostHomeIdx caches each
	// slot's home-DC index (-1 = home not in graph).
	hostSlot    map[core.NodeID]int32
	hostID      []core.NodeID
	hostHomeIdx []int32
	hostIter    []int32

	// distM/nhM are the routed tables in index space (row = source DC,
	// column = destination DC; distM infCost / nhM 0 = no path). distM
	// holds the honest latency of the weight-selected path (congestion
	// inflates the selection weight, never this figure — see Link.Cost
	// vs Link.Latency).
	distM []core.Time
	nhM   []core.NodeID

	// pins holds per-flow pinned paths; watches tracks flows that follow
	// the shared tables but asked to hear about primary-path moves.
	pins    map[core.FlowID]*flowPin
	watches map[core.FlowID]*flowWatch

	// congestion is the utilization → weight-inflation model applied by
	// SetLinkUtilization (always normalized).
	congestion CongestionConfig

	// OnFlowPath, when set, is invoked after each recompute for every
	// pinned flow whose path died (next == nil, broken == true) and every
	// watched flow whose primary path moved (broken == false). Handlers
	// may re-pin or unpin from inside the callback.
	OnFlowPath func(flow core.FlowID, old, next []core.NodeID, broken bool)

	// OnRecompute, when set, fires at the end of every Recompute, after
	// the per-flow OnFlowPath notifications. Hosting runtimes use it for
	// policies that watch GRAPH state rather than one flow's path — e.g.
	// returning a failed-over flow to its preferred path once that
	// path's links are all up again (FlowSpec.RepinOnHeal). Handlers may
	// pin/unpin/watch but must not mutate links (no recursive
	// recompute).
	OnRecompute func()

	// OnEpochAdvance, when set, fires after any recompute that opened a
	// new table epoch (i.e. actually modified pushed routes). The hosting
	// runtime schedules the drain of in-flight old-epoch traffic and then
	// calls RetireEpoch.
	OnEpochAdvance func(epoch uint64)

	// Index-space delta engine state (incremental.go). nodeList/idxOf/adj
	// mirror the graph in index space and rebuild only on structural
	// changes (topoGen vs Graph.gen); trees caches one shortest-path tree
	// per source; unreachBySrc keeps Stats.Unreachable exact under
	// per-source refreshes.
	incremental  bool
	nodeList     []core.NodeID
	listBuf      []core.NodeID // previous nodeList, for install-row remaps
	idxOf        map[core.NodeID]int32
	adj          [][]adjEdge
	topoGen      uint64
	trees        map[core.NodeID]*srcTree
	unreachBySrc map[core.NodeID]int
	affBuf       []int32
	utilBuf      [][2]core.NodeID
	treeBuf      []*srcTree
	works        []*spfWork
	parMin       int
	parWorkers   int

	// Table-epoch state: epoch is the current table version; epochBumped
	// marks whether the in-progress update already opened a new epoch
	// (per-sink announcement is tracked in dcTables.sinkEpoch).
	epoch       uint64
	epochBumped bool
	inUpdate    bool

	// Freelists and notification buffers: pin/watch churn and recompute
	// notification sweeps run allocation-free in steady state. notifying
	// suppresses recycling while OnFlowPath handlers run — notes alias
	// pin/watch path slices, so a handler unpinning (then re-pinning)
	// must not hand a later note's backing array to a new owner.
	pinFree   []*flowPin
	watchFree []*flowWatch
	notifying bool
	noteBuf   []pathNote
	idBuf     []core.FlowID
	primBuf   map[[2]core.NodeID][]core.NodeID

	stats Stats
}

// flowPin is one flow's pinned path and the sink entries installed for it.
type flowPin struct {
	dst     core.NodeID   // the flow's cloud destination (host or group)
	path    []core.NodeID // DC path, endpoints included
	entries []pinEntry    // what was pushed, for clean removal
}

type pinEntry struct {
	dc, dst core.NodeID
}

// flowWatch tracks the primary path of an unpinned flow between its DCs.
type flowWatch struct {
	a, b core.NodeID
	last []core.NodeID
}

// NewController creates an empty control plane keeping k alternate paths
// per DC pair (k < 1 is treated as 1).
func NewController(k int) *Controller {
	if k < 1 {
		k = 1
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	return &Controller{
		g:            NewGraph(),
		k:            k,
		dcs:          make(map[core.NodeID]*dcTables),
		homes:        make(map[core.NodeID]core.NodeID),
		hostSlot:     make(map[core.NodeID]int32),
		pins:         make(map[core.FlowID]*flowPin),
		watches:      make(map[core.FlowID]*flowWatch),
		congestion:   DefaultCongestionConfig(),
		incremental:  true,
		trees:        make(map[core.NodeID]*srcTree),
		unreachBySrc: make(map[core.NodeID]int),
		idxOf:        make(map[core.NodeID]int32),
		primBuf:      make(map[[2]core.NodeID][]core.NodeID),
		parMin:       16,
		parWorkers:   workers,
	}
}

// Graph exposes the link graph (read-mostly; mutate via the controller so
// tables stay in sync).
func (c *Controller) Graph() *Graph { return c.g }

// Stats returns a copy of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// AddDC registers a DC vertex and the sink its routes are pushed to.
func (c *Controller) AddDC(id core.NodeID, sink RouteSink) {
	c.g.AddNode(id)
	dt := c.dcs[id]
	if dt == nil {
		dt = &dcTables{}
		c.dcs[id] = dt
	}
	dt.sink = sink
	dt.fsink, _ = sink.(FlowRouteSink)
	dt.esink, _ = sink.(EpochSink)
}

// AttachHost binds a host (or multicast-group) destination to its home DC
// and pushes its routes to every DC immediately.
func (c *Controller) AttachHost(host, home core.NodeID) {
	slot, known := c.hostSlot[host]
	if !known {
		slot = int32(len(c.hostID))
		c.hostSlot[host] = slot
		c.hostID = append(c.hostID, host)
		c.hostHomeIdx = append(c.hostHomeIdx, -1)
		c.hostOrder = insortID(c.hostOrder, host)
		c.hostIter = c.hostIter[:0]
		for _, h := range c.hostOrder {
			c.hostIter = append(c.hostIter, c.hostSlot[h])
		}
	}
	c.homes[host] = home
	if hi, ok := c.idxOf[home]; ok {
		c.hostHomeIdx[slot] = hi
	} else {
		c.hostHomeIdx[slot] = -1
	}
	for _, dc := range c.g.Nodes() {
		dt := c.dcs[dc]
		if dt == nil {
			continue
		}
		for len(dt.instHost) < len(c.hostID) {
			dt.instHost = append(dt.instHost, 0)
		}
		c.pushHost(dt, slot, host, c.desiredVia(dc, host))
	}
}

// SetLink installs or re-bases the inter-DC link a↔b (one-way latency)
// and recomputes tables.
func (c *Controller) SetLink(a, b core.NodeID, base core.Time) {
	c.g.SetLink(a, b, base)
	c.Recompute()
}

// RemoveLink deletes the link a↔b and recomputes tables.
func (c *Controller) RemoveLink(a, b core.NodeID) {
	c.g.RemoveLink(a, b)
	c.Recompute()
}

// SetLinkHealth applies a monitor verdict: the link's state and (for
// degraded or refreshed links) its estimated one-way cost (0 keeps the
// configured base). A change triggers incremental recomputation and a
// route re-push.
func (c *Controller) SetLinkHealth(a, b core.NodeID, state LinkState, est core.Time) {
	l := c.g.Link(a, b)
	if l == nil || (l.State == state && l.Est == est) {
		return
	}
	switch {
	case state == LinkDown && l.State != LinkDown:
		c.stats.LinkFailures++
	case state == LinkUp && l.State == LinkDown:
		c.stats.LinkRecoveries++
	case state == LinkDegraded && l.State != LinkDegraded:
		c.stats.LinkDegrades++
	}
	l.State = state
	l.Est = est
	c.recomputeLinks([2]core.NodeID{a, b})
}

// NextHop returns the installed next hop at dc toward dst (a DC, host, or
// group destination).
func (c *Controller) NextHop(dc, dst core.NodeID) (core.NodeID, bool) {
	dt := c.dcs[dc]
	if dt == nil {
		return 0, false
	}
	var via core.NodeID
	if di, ok := c.idxOf[dst]; ok && int(di) < len(dt.instDC) {
		via = dt.instDC[di]
	} else if slot, ok := c.hostSlot[dst]; ok && int(slot) < len(dt.instHost) {
		via = dt.instHost[slot]
	}
	return via, via != 0
}

// PathLatency returns the routed one-way latency between two DCs, or
// ok=false when no path exists. overlay.Topology uses it as its
// inter-DC oracle, which makes service selection work on sparse graphs.
func (c *Controller) PathLatency(a, b core.NodeID) (core.Time, bool) {
	if a == b {
		if c.g.HasNode(a) {
			return 0, true
		}
		return 0, false
	}
	ai, ok1 := c.idxOf[a]
	bi, ok2 := c.idxOf[b]
	if !ok1 || !ok2 || c.distM == nil {
		return 0, false
	}
	d := c.distM[int(ai)*len(c.nodeList)+int(bi)]
	if d == infCost {
		return 0, false
	}
	return d, true
}

// Paths returns up to k alternate paths a→b (k ≤ 0 uses the controller's
// configured alternate count).
func (c *Controller) Paths(a, b core.NodeID, k int) []Path {
	if k <= 0 {
		k = c.k
	}
	return c.g.KShortestPaths(a, b, k)
}

// Home returns the home DC a host or group was attached to.
func (c *Controller) Home(host core.NodeID) (core.NodeID, bool) {
	home, ok := c.homes[host]
	return home, ok
}

// PinFlow installs per-flow next-hop entries for flow along path, so its
// traffic toward dst (its cloud destination — receiver host or multicast
// group) rides exactly that DC path regardless of the shared tables. An
// extra entry per transit DC keys on the egress DC itself, so service
// traffic addressed to the DC (coded parity, for example) follows the pin
// too. Re-pinning replaces the previous path's entries.
func (c *Controller) PinFlow(flow core.FlowID, dst core.NodeID, path Path) {
	c.UnpinFlow(flow)
	if len(path.Nodes) < 2 {
		return
	}
	var pin *flowPin
	if n := len(c.pinFree); n > 0 {
		pin = c.pinFree[n-1]
		c.pinFree = c.pinFree[:n-1]
	} else {
		pin = &flowPin{}
	}
	pin.dst = dst
	pin.path = append(pin.path[:0], path.Nodes...)
	pin.entries = pin.entries[:0]
	egress := path.Nodes[len(path.Nodes)-1]
	for i := 0; i+1 < len(path.Nodes); i++ {
		dt := c.dcs[path.Nodes[i]]
		if dt == nil || dt.fsink == nil {
			continue
		}
		via := path.Nodes[i+1]
		dt.fsink.SetFlowRoute(flow, dst, via)
		pin.entries = append(pin.entries, pinEntry{path.Nodes[i], dst})
		c.stats.Pushes++
		if egress != dst {
			dt.fsink.SetFlowRoute(flow, egress, via)
			pin.entries = append(pin.entries, pinEntry{path.Nodes[i], egress})
			c.stats.Pushes++
		}
	}
	c.pins[flow] = pin
}

// UnpinFlow removes a flow's pinned entries (no-op when not pinned).
func (c *Controller) UnpinFlow(flow core.FlowID) {
	pin, ok := c.pins[flow]
	if !ok {
		return
	}
	for _, e := range pin.entries {
		if dt := c.dcs[e.dc]; dt != nil && dt.fsink != nil {
			dt.fsink.DeleteFlowRoute(flow, e.dst)
			c.stats.Pushes++
		}
	}
	delete(c.pins, flow)
	// Recycle — except while notifications run, where pending notes may
	// still alias this pin's path slice.
	if !c.notifying {
		c.pinFree = append(c.pinFree, pin)
	}
}

// PinnedPath returns a flow's pinned DC path, if any (copied — callers
// must not be able to corrupt the controller's path-death detection).
func (c *Controller) PinnedPath(flow core.FlowID) ([]core.NodeID, bool) {
	pin, ok := c.pins[flow]
	if !ok {
		return nil, false
	}
	return append([]core.NodeID(nil), pin.path...), true
}

// WatchFlow subscribes an unpinned flow to primary-path changes between
// its two DCs: after any recompute that moves the shortest a→b path,
// OnFlowPath fires with the old and new paths. Returns the current
// primary (nil when none exists) so callers seed their own path state
// without a second SPF.
func (c *Controller) WatchFlow(flow core.FlowID, a, b core.NodeID) []core.NodeID {
	// Seed from the same table walk the change detector uses — a
	// source-rooted SPF can disagree with the installed hop-by-hop route
	// on equal-cost topologies, which would mislabel the first recompute
	// as a reroute.
	var w *flowWatch
	if n := len(c.watchFree); n > 0 {
		w = c.watchFree[n-1]
		c.watchFree = c.watchFree[:n-1]
	} else {
		w = &flowWatch{}
	}
	w.a, w.b = a, b
	w.last = c.appendPrimary(w.last[:0], a, b)
	c.watches[flow] = w
	// Copy: a caller mutating the result must not corrupt the watch's
	// change detection.
	return append([]core.NodeID(nil), w.last...)
}

// UnwatchFlow cancels a WatchFlow subscription.
func (c *Controller) UnwatchFlow(flow core.FlowID) {
	w, ok := c.watches[flow]
	if !ok {
		return
	}
	delete(c.watches, flow)
	// Recycle — except while notifications run, where pending notes may
	// still alias this watch's last-path slice.
	if !c.notifying {
		c.watchFree = append(c.watchFree, w)
	}
}

// PinnedCount reports how many flows currently hold pinned paths.
// Together with WatchedCount it is the chaos harness's leak check:
// after every flow closes, both must read zero.
func (c *Controller) PinnedCount() int { return len(c.pins) }

// WatchedCount reports how many flows currently hold primary-path
// watches (WatchFlow subscriptions not yet cancelled).
func (c *Controller) WatchedCount() int { return len(c.watches) }

// IsWatched reports whether the flow holds a live WatchFlow
// subscription. A flow must never be pinned and watched at once — the
// resolver installs exactly one of the two — and the chaos harness's
// flap invariant asserts it.
func (c *Controller) IsWatched(flow core.FlowID) bool {
	_, ok := c.watches[flow]
	return ok
}

// pathDead reports whether any link of a pinned path is missing or down.
func (c *Controller) pathDead(path []core.NodeID) bool {
	for i := 0; i+1 < len(path); i++ {
		l := c.g.Link(path[i], path[i+1])
		if l == nil || l.State == LinkDown {
			return true
		}
	}
	return false
}

// PathCost returns the current one-way latency along an explicit DC path
// (endpoints included), or ok=false when any link is missing or down.
// Pinned flows price their predictions on this, not the primary path.
// It sums honest latencies (Link.Latency), not congestion-inflated
// weights: a pinned flow on a hot link is steered-around by routing but
// does not actually get slower in proportion to the penalty.
func (c *Controller) PathCost(path []core.NodeID) (core.Time, bool) {
	if len(path) < 2 {
		return 0, len(path) == 1
	}
	var sum core.Time
	for i := 0; i+1 < len(path); i++ {
		l := c.g.Link(path[i], path[i+1])
		if l == nil {
			return 0, false
		}
		w, up := l.Latency()
		if !up {
			return 0, false
		}
		sum += w
	}
	return sum, true
}

// pathNote is one pending OnFlowPath notification.
type pathNote struct {
	flow      core.FlowID
	old, next []core.NodeID
	broken    bool
}

// notifyFlowPaths runs after a recompute: it collects every pinned flow
// whose path died and every watched flow whose primary moved, then fires
// OnFlowPath for each (outside the iteration, so handlers may re-pin).
// Buffers are controller-owned and reused; an idle sweep (no notes)
// allocates nothing.
func (c *Controller) notifyFlowPaths() {
	if c.OnFlowPath == nil {
		return
	}
	notes := c.noteBuf[:0]
	ids := sortedFlowIDsInto(c.idBuf[:0], c.pins)
	for _, flow := range ids {
		if pin := c.pins[flow]; c.pathDead(pin.path) {
			notes = append(notes, pathNote{flow, pin.path, nil, true})
		}
	}
	// Many flows often watch the same DC pair; walk the freshly built
	// next-hop tables (O(hops) per pair) instead of re-running SPF.
	ids = sortedFlowIDsInto(ids[:0], c.watches)
	clear(c.primBuf)
	for _, flow := range ids {
		w := c.watches[flow]
		pair := [2]core.NodeID{w.a, w.b}
		cur, seen := c.primBuf[pair]
		if !seen {
			cur = c.primaryFromTables(w.a, w.b)
			c.primBuf[pair] = cur
		}
		if !sameNodes(cur, w.last) {
			old := w.last
			w.last = append([]core.NodeID(nil), cur...)
			notes = append(notes, pathNote{flow, old, cur, false})
		}
	}
	c.idBuf = ids
	c.noteBuf = notes
	c.notifying = true
	for _, n := range notes {
		c.OnFlowPath(n.flow, n.old, n.next, n.broken)
	}
	c.notifying = false
}

// primaryFromTables reconstructs the primary a→b path by walking the
// next-hop tables Recompute just rebuilt — O(hops), no extra SPF. Nil
// when no route exists (or the tables are inconsistent mid-walk).
func (c *Controller) primaryFromTables(a, b core.NodeID) []core.NodeID {
	p := c.appendPrimary(nil, a, b)
	if len(p) == 0 {
		return nil
	}
	return p
}

// appendPrimary is primaryFromTables into a caller-owned buffer; the
// result is buf[:0] when no route exists.
func (c *Controller) appendPrimary(buf []core.NodeID, a, b core.NodeID) []core.NodeID {
	buf = buf[:0]
	if a == b || c.nhM == nil {
		return buf
	}
	ai, ok1 := c.idxOf[a]
	bi, ok2 := c.idxOf[b]
	if !ok1 || !ok2 {
		return buf
	}
	n := len(c.nodeList)
	buf = append(buf, a)
	for at := ai; at != bi; {
		via := c.nhM[int(at)*n+int(bi)]
		if via == 0 || len(buf) > n {
			return buf[:0]
		}
		buf = append(buf, via)
		at = c.idxOf[via]
	}
	return buf
}

// sortedFlowIDsInto appends map keys to buf in ascending order, for
// deterministic notification sweeps without per-recompute allocation.
func sortedFlowIDsInto[V any](buf []core.FlowID, m map[core.FlowID]V) []core.FlowID {
	for id := range m {
		buf = append(buf, id)
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf
}

// Recompute rebuilds the all-pairs tables from current link health and
// pushes the deltas to every sink. Unchanged entries are not re-pushed.
// Link-scoped events go through recomputeLinks (incremental.go) instead,
// which recomputes only the affected sources; this full form remains the
// entry point for structural changes and the legacy fallback.
func (c *Controller) Recompute() {
	c.stats.Recomputes++
	c.ensureTopo()
	c.beginUpdate()
	aff := c.affBuf[:0]
	for i := range c.nodeList {
		aff = append(aff, int32(i))
	}
	c.affBuf = aff
	c.computeTrees(aff)
	changed := 0
	for _, i := range aff {
		s := c.nodeList[i]
		changed += c.refreshSource(s, c.trees[s], i)
	}
	c.endUpdate(changed)
}

// beginUpdate opens a table-update session: the first modifying push of
// the session advances the table epoch (lazily, so no-op recomputes never
// burn an epoch).
func (c *Controller) beginUpdate() {
	c.inUpdate = true
	c.epochBumped = false
}

// endUpdate closes the session: reroute accounting, flow-path
// notifications, the OnRecompute hook, and — when routes actually moved —
// the epoch-advance hook that triggers the hosting runtime's
// drain-then-retire of the previous table version.
func (c *Controller) endUpdate(changed int) {
	c.inUpdate = false
	if changed > 0 {
		c.stats.Reroutes++
	}
	c.notifyFlowPaths()
	if c.OnRecompute != nil {
		c.OnRecompute()
	}
	if c.epochBumped && c.OnEpochAdvance != nil {
		c.OnEpochAdvance(c.epoch)
	}
}

// epochWrite runs before a modifying table push: it opens the session's
// new epoch on first use and announces it to the written sink, which
// snapshots its pre-write state for old-epoch lookups (make-before-break).
func (c *Controller) epochWrite(dt *dcTables) {
	if !c.inUpdate {
		return
	}
	if !c.epochBumped {
		c.epoch++
		c.epochBumped = true
		c.stats.EpochAdvances++
	}
	if dt.esink != nil && dt.sinkEpoch != c.epoch {
		dt.esink.BeginEpoch(c.epoch)
		dt.sinkEpoch = c.epoch
	}
}

// CurrentEpoch returns the current table version. Packets entering the
// overlay are tagged with it so forwarders can keep resolving their
// routes against that version mid-flight across a reroute.
func (c *Controller) CurrentEpoch() uint64 { return c.epoch }

// RetireEpoch drops every sink's previous-epoch routes. The hosting
// runtime calls it (per OnEpochAdvance) once in-flight traffic tagged
// with the older epoch has drained; epoch names the epoch whose
// PREDECESSOR is being retired — i.e. pass the value OnEpochAdvance
// delivered. Stale retires (the tables have advanced again since) are
// no-ops at the sinks.
func (c *Controller) RetireEpoch(epoch uint64) {
	for _, dc := range c.g.Nodes() {
		if dt := c.dcs[dc]; dt != nil && dt.esink != nil {
			dt.esink.RetireEpoch(epoch)
		}
	}
	c.stats.EpochRetires++
}

// desiredVia resolves a host destination to its next hop at dc: none when
// dc is the host's home (direct delivery), otherwise the hop toward the
// home DC. Returns 0 for "no entry".
func (c *Controller) desiredVia(dc, host core.NodeID) core.NodeID {
	home, ok := c.homes[host]
	if !ok || home == dc {
		return 0
	}
	return c.nhLookup(dc, home)
}

// nhLookup reads the routed next hop a→b from the index-space table
// (0 = no route, or tables not yet computed).
func (c *Controller) nhLookup(a, b core.NodeID) core.NodeID {
	ai, ok1 := c.idxOf[a]
	bi, ok2 := c.idxOf[b]
	if !ok1 || !ok2 || c.nhM == nil {
		return 0
	}
	return c.nhM[int(ai)*len(c.nodeList)+int(bi)]
}

// pushDC reconciles the (dc, destination-DC) entry at dstIdx against
// dt's installed row, returning 1 when an existing next hop moved to a
// different valid hop. Modifying pushes inside a recompute session
// advance the table epoch first (epochWrite), so the sink snapshots the
// old version before the write lands.
func (c *Controller) pushDC(dt *dcTables, dstIdx int32, dst, via core.NodeID) int {
	if dt == nil || dt.sink == nil {
		return 0
	}
	for int(dstIdx) >= len(dt.instDC) {
		// Sink registered after the last topology rebuild: its row starts
		// empty and grows here (the index assignment is current).
		dt.instDC = append(dt.instDC, 0)
	}
	old := dt.instDC[dstIdx]
	if via == 0 {
		if old != 0 {
			c.epochWrite(dt)
			dt.sink.DeleteRoute(dst)
			dt.instDC[dstIdx] = 0
			c.stats.Pushes++
		}
		return 0
	}
	if old == via {
		return 0
	}
	c.epochWrite(dt)
	dt.sink.SetRoute(dst, via)
	dt.instDC[dstIdx] = via
	c.stats.Pushes++
	if old != 0 {
		c.stats.RouteChanges++
		return 1
	}
	return 0
}

// pushHost is pushDC for a host-slot entry.
func (c *Controller) pushHost(dt *dcTables, slot int32, host, via core.NodeID) int {
	if dt == nil || dt.sink == nil {
		return 0
	}
	old := dt.instHost[slot]
	if via == 0 {
		if old != 0 {
			c.epochWrite(dt)
			dt.sink.DeleteRoute(host)
			dt.instHost[slot] = 0
			c.stats.Pushes++
		}
		return 0
	}
	if old == via {
		return 0
	}
	c.epochWrite(dt)
	dt.sink.SetRoute(host, via)
	dt.instHost[slot] = via
	c.stats.Pushes++
	if old != 0 {
		c.stats.RouteChanges++
		return 1
	}
	return 0
}
