// Package routing is the J-QoS overlay control plane: it holds the
// inter-DC link graph, computes all-pairs shortest paths (and k-alternate
// paths) over it, and pushes next-hop tables to every DC's forwarder —
// the paper's "centrally computed routes pushed to each DC" (§3.1,
// Figure 3) done properly, so sparse, large, failure-prone overlays work.
//
// The package has three layers:
//
//   - Graph: the weighted inter-DC link graph with per-link health state.
//   - Controller: table computation (deterministic Dijkstra, Yen's
//     k-shortest paths) and incremental route pushes to RouteSinks.
//   - Monitor: per-link probe bookkeeping (RTT/loss estimators, fail /
//     degrade / recover state machine) that feeds the controller.
//
// Like the protocol engines, everything here is sans-IO: probes are sent
// and timed by the hosting runtime (the emulated deployment or a real
// transport), which reports outcomes to the Monitor.
package routing

import (
	"sort"

	"jqos/internal/core"
)

// LinkState is the health of one inter-DC link as seen by the monitor.
type LinkState uint8

const (
	// LinkUp is a healthy link; path cost is its base (or refreshed)
	// one-way latency.
	LinkUp LinkState = iota
	// LinkDegraded is a usable but impaired link; path cost is the
	// estimated latency inflated by the observed loss.
	LinkDegraded
	// LinkDown removes the link from path computation entirely.
	LinkDown
)

// String implements fmt.Stringer.
func (s LinkState) String() string {
	switch s {
	case LinkUp:
		return "up"
	case LinkDegraded:
		return "degraded"
	case LinkDown:
		return "down"
	default:
		return "unknown"
	}
}

// Link is one bidirectional inter-DC edge. Base is the configured one-way
// latency; Est, when nonzero, is a monitor-refreshed estimate that
// overrides Base in path costs (both are one-way). Util and Congest are
// the load-telemetry layer: Util is the last reported utilization (raw,
// for inspection) and Congest the effective weight multiplier the
// controller derived from it under its CongestionConfig (0 or 1 = no
// inflation).
type Link struct {
	A, B    core.NodeID
	Base    core.Time
	State   LinkState
	Est     core.Time
	Util    float64
	Congest float64
}

// Latency returns the link's current one-way latency estimate — the
// monitor's refreshed figure (Est) or the configured base — WITHOUT
// congestion inflation: the honest number latency predictions must sum.
// ok is false when the link is down.
func (l *Link) Latency() (core.Time, bool) {
	if l.State == LinkDown {
		return 0, false
	}
	if l.Est > 0 {
		return l.Est, true
	}
	return l.Base, true
}

// Cost returns the link's current path WEIGHT: its latency inflated by
// the congestion multiplier when utilization telemetry marked the link
// hot. Route computation minimizes this; latency predictions must use
// Latency instead — the inflation steers traffic, it does not delay it.
// ok is false when the link is down and must not carry traffic.
func (l *Link) Cost() (core.Time, bool) {
	w, up := l.Latency()
	if !up {
		return 0, false
	}
	if l.Congest > 1 {
		w = core.Time(float64(w) * l.Congest)
	}
	return w, true
}

// Graph is the inter-DC link graph. Nodes are DC IDs; edges are symmetric
// Links. All iteration orders are deterministic (sorted by node ID).
type Graph struct {
	nodes map[core.NodeID]bool
	order []core.NodeID // sorted node IDs
	links map[[2]core.NodeID]*Link
	nbrs  map[core.NodeID][]core.NodeID // sorted adjacency
	// gen counts structural changes (nodes or links added/removed) so the
	// controller's index-space adjacency cache knows when it is stale.
	// Weight and health changes mutate Link fields in place and do not
	// bump it.
	gen uint64
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		nodes: make(map[core.NodeID]bool),
		links: make(map[[2]core.NodeID]*Link),
		nbrs:  make(map[core.NodeID][]core.NodeID),
	}
}

// linkKey normalizes an undirected pair.
func linkKey(a, b core.NodeID) [2]core.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]core.NodeID{a, b}
}

// insortID inserts v into the ascending slice s if absent, returning the
// (possibly grown) slice. The package keeps every node collection sorted
// so iteration — and therefore route computation — is deterministic.
func insortID(s []core.NodeID, v core.NodeID) []core.NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// AddNode registers a DC vertex (idempotent).
func (g *Graph) AddNode(id core.NodeID) {
	if g.nodes[id] {
		return
	}
	g.nodes[id] = true
	g.order = insortID(g.order, id)
	g.gen++
}

// HasNode reports whether id is a registered vertex.
func (g *Graph) HasNode(id core.NodeID) bool { return g.nodes[id] }

// Nodes returns the vertices in ascending ID order (shared slice; callers
// must not mutate).
func (g *Graph) Nodes() []core.NodeID { return g.order }

// SetLink installs (or re-bases) the symmetric edge a↔b with one-way
// latency base, registering the endpoints as needed. Re-basing resets the
// health state to LinkUp.
func (g *Graph) SetLink(a, b core.NodeID, base core.Time) *Link {
	if a == b {
		panic("routing: self-loop link")
	}
	g.AddNode(a)
	g.AddNode(b)
	k := linkKey(a, b)
	l, ok := g.links[k]
	if !ok {
		l = &Link{A: k[0], B: k[1]}
		g.links[k] = l
		g.addNeighbor(a, b)
		g.addNeighbor(b, a)
		g.gen++
	}
	l.Base = base
	l.State = LinkUp
	l.Est = 0
	l.Util = 0
	l.Congest = 0
	return l
}

func (g *Graph) addNeighbor(a, b core.NodeID) {
	g.nbrs[a] = insortID(g.nbrs[a], b)
}

// RemoveLink deletes the edge a↔b (no-op if absent).
func (g *Graph) RemoveLink(a, b core.NodeID) {
	k := linkKey(a, b)
	if _, ok := g.links[k]; !ok {
		return
	}
	delete(g.links, k)
	g.dropNeighbor(a, b)
	g.dropNeighbor(b, a)
	g.gen++
}

func (g *Graph) dropNeighbor(a, b core.NodeID) {
	ns := g.nbrs[a]
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= b })
	if i < len(ns) && ns[i] == b {
		g.nbrs[a] = append(ns[:i], ns[i+1:]...)
	}
}

// Link returns the edge a↔b, or nil.
func (g *Graph) Link(a, b core.NodeID) *Link { return g.links[linkKey(a, b)] }

// Neighbors returns a's adjacent vertices in ascending ID order (shared
// slice; callers must not mutate).
func (g *Graph) Neighbors(a core.NodeID) []core.NodeID { return g.nbrs[a] }

// LinkCount returns the number of edges.
func (g *Graph) LinkCount() int { return len(g.links) }
