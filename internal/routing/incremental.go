package routing

import (
	"sync"

	"jqos/internal/core"
)

// This file is the delta engine behind the controller's table updates:
// per-source shortest-path trees cached in index space, an affected-source
// cut that limits a link event's recompute to the sources whose routing
// can actually change, and a sharded parallel Dijkstra for the sources
// that do. The map-based shortestFrom in spf.go remains the engine for
// Yen's k-alternates, where banned-edge filtering dominates; table
// (re)computation runs exclusively through the index-space core below.

// srcTree is one source DC's cached shortest-path tree over the graph's
// index space (positions in Controller.nodeList). dist is the weight the
// tree minimized (congestion-inflated; infCost = unreachable), lat the
// honest latency accumulated along the chosen edges, prev the tree parent
// (-1 = none), and first a lazily filled first-hop memo (-2 = unknown,
// -1 = unreachable/self).
type srcTree struct {
	src     int32
	dist    []core.Time
	lat     []core.Time
	prev    []int32
	first   []int32
	unreach int  // (src, dst) pairs charged to Stats.Unreachable
	valid   bool // false until the tree reflects the current topology
}

// adjEdge is one directed adjacency entry of the index-space graph: the
// neighbor's index, the shared undirected Link, and a per-recompute-event
// snapshot of its weight/latency/health (refreshWeights) so the Dijkstra
// inner loop reads flat fields instead of re-deriving congestion-inflated
// costs per relaxation. Only structural changes rebuild the adjacency.
type adjEdge struct {
	to   int32
	up   bool
	w    core.Time // selection weight (Link.Cost)
	lat  core.Time // honest latency (Link.Latency)
	link *Link
}

// refreshWeights snapshots every edge's current cost/latency/state. It
// runs once per recompute event, before any tree computation — the
// parallel shards then share an immutable view.
func (c *Controller) refreshWeights() {
	for i := range c.adj {
		row := c.adj[i]
		for j := range row {
			e := &row[j]
			e.w, e.up = e.link.Cost()
			if e.up {
				e.lat, _ = e.link.Latency()
			}
		}
	}
}

// spfWork is one worker's reusable Dijkstra state: the binary-heap
// frontier and the settled marks. Each parallel shard owns exactly one,
// so recomputes allocate nothing in steady state.
type spfWork struct {
	frontier []heapItem
	done     []bool
}

// heapItem is one frontier entry. Ties on dist break on index, which —
// because nodeList is sorted ascending — is exactly the node-ID
// tie-break the map-based engine uses.
type heapItem struct {
	dist core.Time
	idx  int32
}

func heapLess(a, b heapItem) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.idx < b.idx
}

func (w *spfWork) push(it heapItem) {
	w.frontier = append(w.frontier, it)
	i := len(w.frontier) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !heapLess(w.frontier[i], w.frontier[p]) {
			break
		}
		w.frontier[i], w.frontier[p] = w.frontier[p], w.frontier[i]
		i = p
	}
}

func (w *spfWork) pop() heapItem {
	h := w.frontier
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	w.frontier = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && heapLess(h[l], h[small]) {
			small = l
		}
		if r < n && heapLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

// ensureTopo refreshes the index-space view after structural graph
// changes: nodeList/idxOf/adjacency, the routed distM/nhM tables (cleared
// — the full recompute this rebuild forces rewrites every row), each DC's
// installed rows (remapped to the new index assignment), the host home
// caches, and every cached tree (invalidated). Pure weight/health changes
// leave the structure generation alone, so the common case is a cheap
// generation compare.
func (c *Controller) ensureTopo() {
	if c.adj != nil && c.topoGen == c.g.gen {
		return
	}
	c.topoGen = c.g.gen
	prev := append(c.listBuf[:0], c.nodeList...)
	c.listBuf = prev
	c.nodeList = append(c.nodeList[:0], c.g.order...)
	if c.idxOf == nil {
		c.idxOf = make(map[core.NodeID]int32, len(c.nodeList))
	}
	clear(c.idxOf)
	for i, id := range c.nodeList {
		c.idxOf[id] = int32(i)
	}
	n := len(c.nodeList)
	if cap(c.adj) < n {
		c.adj = make([][]adjEdge, n)
	}
	c.adj = c.adj[:n]
	for i, id := range c.nodeList {
		row := c.adj[i][:0]
		for _, nb := range c.g.nbrs[id] {
			row = append(row, adjEdge{to: c.idxOf[nb], link: c.g.links[linkKey(id, nb)]})
		}
		c.adj[i] = row
	}
	if cap(c.distM) < n*n {
		c.distM = make([]core.Time, n*n)
		c.nhM = make([]core.NodeID, n*n)
	}
	c.distM = c.distM[:n*n]
	c.nhM = c.nhM[:n*n]
	for i := range c.distM {
		c.distM[i] = infCost
		c.nhM[i] = 0
	}
	// Remap installed DC rows onto the new index assignment (nodes are
	// never removed, so every previous ID still has an index) and make
	// sure host rows cover every slot.
	for _, dt := range c.dcs {
		row := make([]core.NodeID, n)
		for oldIdx, id := range prev {
			if oldIdx < len(dt.instDC) && dt.instDC[oldIdx] != 0 {
				row[c.idxOf[id]] = dt.instDC[oldIdx]
			}
		}
		dt.instDC = row
		for len(dt.instHost) < len(c.hostID) {
			dt.instHost = append(dt.instHost, 0)
		}
	}
	for slot, h := range c.hostID {
		if hi, ok := c.idxOf[c.homes[h]]; ok {
			c.hostHomeIdx[slot] = hi
		} else {
			c.hostHomeIdx[slot] = -1
		}
	}
	for _, t := range c.trees {
		t.valid = false
	}
}

// tree returns (building as needed) the cached tree for source s, with
// its slices sized to the current node count.
func (c *Controller) tree(s core.NodeID) *srcTree {
	t := c.trees[s]
	if t == nil {
		t = &srcTree{}
		c.trees[s] = t
	}
	n := len(c.nodeList)
	if cap(t.dist) < n {
		t.dist = make([]core.Time, n)
		t.lat = make([]core.Time, n)
		t.prev = make([]int32, n)
		t.first = make([]int32, n)
	}
	t.dist, t.lat = t.dist[:n], t.lat[:n]
	t.prev, t.first = t.prev[:n], t.first[:n]
	return t
}

// spfInto runs one deterministic index-space Dijkstra from srcIdx into t,
// reusing t's slices and w's frontier. Semantics mirror shortestFrom:
// relax on Link.Cost (congestion-inflated weight), carry Link.Latency
// (the honest figure) alongside, break frontier ties on index, and keep
// the lower-index predecessor on equal-cost relaxations.
func (c *Controller) spfInto(t *srcTree, srcIdx int32, w *spfWork) {
	n := len(c.nodeList)
	for i := 0; i < n; i++ {
		t.dist[i] = infCost
		t.lat[i] = 0
		t.prev[i] = -1
		t.first[i] = -2
	}
	if cap(w.done) < n {
		w.done = make([]bool, n)
	}
	w.done = w.done[:n]
	for i := range w.done {
		w.done[i] = false
	}
	t.src = srcIdx
	t.dist[srcIdx] = 0
	t.first[srcIdx] = -1
	w.frontier = w.frontier[:0]
	w.push(heapItem{dist: 0, idx: srcIdx})
	for len(w.frontier) > 0 {
		it := w.pop()
		if w.done[it.idx] {
			continue
		}
		w.done[it.idx] = true
		for _, e := range c.adj[it.idx] {
			if !e.up || w.done[e.to] {
				continue
			}
			nd := it.dist + e.w
			switch {
			case nd < t.dist[e.to]:
				t.dist[e.to] = nd
				t.lat[e.to] = t.lat[it.idx] + e.lat
				t.prev[e.to] = it.idx
				w.push(heapItem{dist: nd, idx: e.to})
			case nd == t.dist[e.to] && it.idx < t.prev[e.to]:
				t.prev[e.to] = it.idx
				t.lat[e.to] = t.lat[it.idx] + e.lat
			}
		}
	}
	t.valid = true
}

// firstHop resolves the first hop from the tree's source toward dstIdx,
// memoized with path compression (-1 = unreachable or self).
func (t *srcTree) firstHop(dstIdx int32) int32 {
	f := t.first[dstIdx]
	if f != -2 {
		return f
	}
	p := t.prev[dstIdx]
	var res int32
	switch {
	case p == -1:
		res = -1
	case p == t.src:
		res = dstIdx
	default:
		res = t.firstHop(p)
	}
	t.first[dstIdx] = res
	return res
}

// satAdd adds a weight to a tree distance, saturating at infCost so an
// unreachable endpoint can never look improvable via overflow.
func satAdd(d, w core.Time) core.Time {
	if d >= infCost-w {
		return infCost
	}
	return d + w
}

// affectedSources computes, into c.affBuf, the sorted index set of
// sources whose routing a change on the given links can alter: sources
// whose current tree uses a changed link (a tree edge is exactly a
// (parent, child) pair), plus — when the link is up — sources for which
// the link's new weight would shorten a path (dist[a]+w < dist[b] or the
// converse, the classic dynamic-SPF improvement cut). Sources with no
// valid cached tree are always affected.
func (c *Controller) affectedSources(links [][2]core.NodeID) []int32 {
	buf := c.affBuf[:0]
	for i, s := range c.nodeList {
		t := c.trees[s]
		if t == nil || !t.valid {
			buf = append(buf, int32(i))
			continue
		}
		for _, lk := range links {
			ai, aok := c.idxOf[lk[0]]
			bi, bok := c.idxOf[lk[1]]
			if !aok || !bok {
				continue
			}
			if t.prev[ai] == bi || t.prev[bi] == ai {
				buf = append(buf, int32(i))
				break
			}
			l := c.g.links[linkKey(lk[0], lk[1])]
			if l == nil {
				continue
			}
			w, up := l.Cost()
			if up && (satAdd(t.dist[ai], w) < t.dist[bi] || satAdd(t.dist[bi], w) < t.dist[ai]) {
				buf = append(buf, int32(i))
				break
			}
		}
	}
	c.affBuf = buf
	return buf
}

// computeTrees runs the per-source Dijkstras for the given source
// indices, sharding across workers when the set is large enough to pay
// for the fan-out. Shards use a deterministic stride assignment and each
// source's tree is written by exactly one goroutine, so results are
// byte-identical to the serial path regardless of scheduling.
func (c *Controller) computeTrees(idxs []int32) {
	c.refreshWeights()
	trees := c.treeBuf[:0]
	for _, i := range idxs {
		trees = append(trees, c.tree(c.nodeList[i]))
	}
	c.treeBuf = trees
	nw := c.parWorkers
	if nw > len(idxs) {
		nw = len(idxs)
	}
	if len(idxs) < c.parMin || nw < 2 {
		w := c.work(0)
		for k, i := range idxs {
			c.spfInto(trees[k], i, w)
		}
		return
	}
	var wg sync.WaitGroup
	for wi := 0; wi < nw; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := c.work(wi)
			for k := wi; k < len(idxs); k += nw {
				c.spfInto(trees[k], idxs[k], w)
			}
		}(wi)
	}
	wg.Wait()
}

// work returns worker wi's reusable Dijkstra state.
func (c *Controller) work(wi int) *spfWork {
	for len(c.works) <= wi {
		c.works = append(c.works, &spfWork{})
	}
	return c.works[wi]
}

// SetRecomputeParallelism tunes the sharded recompute: minAffected is the
// affected-source count below which the recompute stays serial (the
// fan-out costs more than it saves on small cuts), workers the maximum
// shard count. Zero values keep the current setting.
func (c *Controller) SetRecomputeParallelism(minAffected, workers int) {
	if minAffected > 0 {
		c.parMin = minAffected
	}
	if workers > 0 {
		c.parWorkers = workers
	}
}

// SetIncrementalRecompute toggles the delta engine. Enabled (the
// default), link-health and utilization events recompute only affected
// sources; disabled, every event runs the full all-pairs rebuild —
// the legacy path, kept selectable until it is deleted.
func (c *Controller) SetIncrementalRecompute(enabled bool) {
	c.incremental = enabled
}

// refreshSource folds source s's freshly computed tree into the routed
// distM/nhM rows and reconciles s's pushed entries (DC destinations
// first, then hosts — both in ascending ID order), returning the number
// of installed next hops that moved. Unreachable accounting is
// per-source so incremental updates keep Stats.Unreachable exact.
func (c *Controller) refreshSource(s core.NodeID, t *srcTree, sIdx int32) int {
	dt := c.dcs[s]
	n := len(c.nodeList)
	base := int(sIdx) * n
	changed := 0
	unreach := 0
	for j := 0; j < n; j++ {
		if int32(j) == sIdx {
			continue
		}
		if t.dist[j] == infCost {
			c.distM[base+j] = infCost
			c.nhM[base+j] = 0
			unreach++
			c.pushDC(dt, int32(j), c.nodeList[j], 0)
			continue
		}
		c.distM[base+j] = t.lat[j]
		via := c.nodeList[t.firstHop(int32(j))]
		c.nhM[base+j] = via
		changed += c.pushDC(dt, int32(j), c.nodeList[j], via)
	}
	for _, slot := range c.hostIter {
		home := c.hostHomeIdx[slot]
		var via core.NodeID
		if home >= 0 && home != sIdx {
			via = c.nhM[base+int(home)]
		}
		if via == 0 && home != sIdx {
			unreach++
		}
		changed += c.pushHost(dt, slot, c.hostID[slot], via)
	}
	c.stats.Unreachable += unreach - c.unreachBySrc[s]
	c.unreachBySrc[s] = unreach
	return changed
}

// recomputeLinks is the delta entry point for link-scoped events (health
// verdicts, utilization reweights): recompute only the affected sources,
// falling back to the full rebuild when the delta engine is disabled or
// the topology changed structurally since the trees were built. The
// notification tail (flow-path notes, OnRecompute, epoch advance) runs
// identically to Recompute — incremental is an optimization, never a
// behavior change.
func (c *Controller) recomputeLinks(links ...[2]core.NodeID) {
	if !c.incremental || c.adj == nil || c.topoGen != c.g.gen {
		c.Recompute()
		return
	}
	c.stats.Recomputes++
	c.stats.IncrementalRecomputes++
	c.beginUpdate()
	aff := c.affectedSources(links)
	c.stats.SourcesRecomputed += uint64(len(aff))
	c.computeTrees(aff)
	changed := 0
	for _, i := range aff {
		s := c.nodeList[i]
		changed += c.refreshSource(s, c.trees[s], i)
	}
	c.endUpdate(changed)
}
