package load

import "jqos/internal/core"

// Bucket is a token bucket policing one flow's admission contract: it
// refills at rate bytes/second up to burst bytes of depth. Admit and
// ReserveWithin are allocation-free; callers drive it with the hosting
// runtime's virtual clock.
type Bucket struct {
	rate   float64 // bytes per second
	burst  float64
	tokens float64
	last   core.Time
}

// NewBucket creates a full bucket. rate must be positive (a contract of
// zero admits nothing and should be expressed by not policing at all);
// burst <= 0 defaults to a quarter second of rate, floored at one
// 1500-byte MTU. Note the classic token-bucket property: a packet larger
// than the burst depth can NEVER conform — Admit refuses it forever and
// ReserveWithin's wait never fits — so callers must size burst to at
// least their largest packet.
func NewBucket(rate, burst int64) *Bucket {
	if rate <= 0 {
		panic("load: token bucket needs a positive rate")
	}
	if burst <= 0 {
		burst = rate / 4
		if burst < 1500 {
			burst = 1500
		}
	}
	return &Bucket{rate: float64(rate), burst: float64(burst), tokens: float64(burst)}
}

// Rate returns the contracted refill rate in bytes/second.
func (b *Bucket) Rate() int64 { return int64(b.rate) }

// SetRate re-bases the refill rate in bytes/second, settling tokens
// accumulated so far at the OLD rate first, so a rate change never
// retroactively re-prices elapsed time. The burst depth is unchanged —
// a pacer throttles how fast the bucket refills, not how large a
// conformant burst may be. rate must be positive, like NewBucket's.
func (b *Bucket) SetRate(now core.Time, rate int64) {
	if rate <= 0 {
		panic("load: token bucket needs a positive rate")
	}
	b.refill(now)
	b.rate = float64(rate)
}

// Burst returns the bucket depth in bytes.
func (b *Bucket) Burst() int64 { return int64(b.burst) }

// Tokens returns the tokens available at now (diagnostics).
func (b *Bucket) Tokens(now core.Time) float64 {
	b.refill(now)
	return b.tokens
}

func (b *Bucket) refill(now core.Time) {
	if now <= b.last {
		return
	}
	b.tokens += seconds(now-b.last) * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
}

// Admit consumes n tokens if available and reports whether the packet
// conforms to the contract. A false return consumes nothing — the caller
// drops the packet's cloud copy (policing mode).
func (b *Bucket) Admit(now core.Time, n int) bool {
	b.refill(now)
	if b.tokens < float64(n) {
		return false
	}
	b.tokens -= float64(n)
	return true
}

// ReserveWithin admits n tokens even when the bucket is empty, letting the
// balance go negative, and returns how long a shaper must hold the packet
// until it conforms. When conformance is further away than max, nothing is
// consumed and ok is false — the packet is too late to be worth shaping
// and should be dropped like a policed excess. A packet larger than the
// burst depth never conforms (same contract as Admit), whatever the wait.
func (b *Bucket) ReserveWithin(now core.Time, n int, max core.Time) (wait core.Time, ok bool) {
	if float64(n) > b.burst {
		return 0, false
	}
	b.refill(now)
	need := float64(n) - b.tokens
	if need <= 0 {
		b.tokens -= float64(n)
		return 0, true
	}
	wait = core.Time(need / b.rate * 1e9)
	if wait > max {
		return 0, false
	}
	b.tokens -= float64(n)
	return wait, true
}
