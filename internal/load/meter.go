// Package load is the J-QoS traffic-engineering substrate: sliding-window
// rate meters for per-link utilization telemetry, token buckets for
// per-flow admission contracts, and a registry that aggregates egress
// accounting per (inter-DC link, service class) into the utilization
// snapshots the routing control plane turns into congestion-aware path
// weights.
//
// The paper's core claim is *judicious* use of cloud overlay resources —
// meeting latency budgets without over-provisioning. That requires knowing
// where the overlay's bytes actually go (the meters), refusing to let one
// greedy flow take more than it contracted for (the buckets), and steering
// new traffic away from links that are already hot (the registry feeding
// the controller). Everything here is sans-IO and allocation-free on the
// hot paths: the hosting runtime reports sends, the meters do fixed-size
// ring arithmetic, and snapshots are only built on demand.
package load

import (
	"math"

	"jqos/internal/core"
)

// meterSlots is the fixed ring size of a Meter: the window is divided into
// this many slots, so the windowed rate slides in window/meterSlots steps.
const meterSlots = 8

// ewmaAlpha weights the newest completed slot in the smoothed rate.
const ewmaAlpha = 0.25

// Meter is a sliding-window byte/packet rate estimator: a fixed ring of
// time slots plus an EWMA folded once per completed slot. Add and the
// readers are allocation-free; a Meter is a plain value and can be
// embedded in per-link tables.
type Meter struct {
	slotW core.Time
	slot  int64 // absolute index (now / slotW) of the accumulating slot
	bytes [meterSlots]uint64
	pkts  [meterSlots]uint64
	ewma  float64 // bytes/sec, smoothed across completed slots
	total uint64  // lifetime bytes
	count uint64  // lifetime packets
}

// NewMeter returns a meter averaging over the given window (window <= 0
// defaults to one second).
func NewMeter(window core.Time) Meter {
	if window <= 0 {
		window = 1e9
	}
	return Meter{slotW: window / meterSlots}
}

// seconds converts a virtual duration to float seconds.
func seconds(d core.Time) float64 { return float64(d) / 1e9 }

// advance rotates the ring to now, folding each completed slot's rate into
// the EWMA and zeroing the slots the new head reuses.
func (m *Meter) advance(now core.Time) {
	if m.slotW == 0 { // zero-value meter: behave as 1 s window
		*m = NewMeter(0)
	}
	target := int64(now / m.slotW)
	steps := target - m.slot
	if steps <= 0 {
		return
	}
	sw := seconds(m.slotW)
	if steps >= meterSlots {
		// Long idle gap: fold the head, decay through the empty slots in
		// one pow, and start from a clean ring.
		i := int(m.slot % meterSlots)
		m.ewma = ewmaAlpha*float64(m.bytes[i])/sw + (1-ewmaAlpha)*m.ewma
		m.ewma *= math.Pow(1-ewmaAlpha, float64(steps-1))
		for k := range m.bytes {
			m.bytes[k], m.pkts[k] = 0, 0
		}
		m.slot = target
		return
	}
	for m.slot < target {
		i := int(m.slot % meterSlots)
		m.ewma = ewmaAlpha*float64(m.bytes[i])/sw + (1-ewmaAlpha)*m.ewma
		m.slot++
		j := int(m.slot % meterSlots)
		m.bytes[j], m.pkts[j] = 0, 0
	}
}

// Add records one packet of n bytes at virtual time now. Calls must use
// non-decreasing timestamps (the hosting simulator's clock).
func (m *Meter) Add(now core.Time, n int) {
	m.advance(now)
	i := int(m.slot % meterSlots)
	m.bytes[i] += uint64(n)
	m.pkts[i]++
	m.total += uint64(n)
	m.count++
}

// Rate returns the windowed mean rate in bytes/second: all bytes
// currently in the ring over the span the ring actually covers — the
// complete slots plus the partial head, not the nominal window. A fixed
// full-window divisor would under-report sustained load by up to
// 1/meterSlots depending on slot phase, enough to flap a link back and
// forth across the congestion knee under constant offered load. The
// rate still decays to zero within one window of traffic stopping,
// which makes it the utilization input — a hot link must stop reading
// as hot once the load is gone.
func (m *Meter) Rate(now core.Time) float64 {
	m.advance(now)
	var sum uint64
	for _, b := range m.bytes {
		sum += b
	}
	oldest := m.slot - (meterSlots - 1)
	if oldest < 0 {
		oldest = 0
	}
	span := now - core.Time(oldest)*m.slotW
	if span <= 0 {
		return 0
	}
	return float64(sum) / seconds(span)
}

// Smoothed returns the EWMA rate in bytes/second — slower-moving than
// Rate, for display and trend detection rather than control.
func (m *Meter) Smoothed(now core.Time) float64 {
	m.advance(now)
	return m.ewma
}

// Peak returns the highest single-slot rate within the current window in
// bytes/second — the burstiness the windowed mean averages away.
func (m *Meter) Peak(now core.Time) float64 {
	m.advance(now)
	var max uint64
	for _, b := range m.bytes {
		if b > max {
			max = b
		}
	}
	return float64(max) / seconds(m.slotW)
}

// Totals returns lifetime bytes and packets.
func (m *Meter) Totals() (bytes, packets uint64) { return m.total, m.count }
