package load

import (
	"math"
	"testing"
	"time"

	"jqos/internal/core"
)

func ms(n int) core.Time { return core.Time(n) * time.Millisecond }

func TestMeterWindowedRate(t *testing.T) {
	m := NewMeter(time.Second)
	// 1000 bytes/ms sustained: rate must read 1 MB/s.
	for i := 0; i < 938; i++ {
		m.Add(ms(i), 1000)
	}
	// Mid-slot phase must not bias the reading: the divisor is the
	// covered span, so sustained load reads ~R at any sample instant
	// (a fixed full-window divisor would dip toward 0.875·R here).
	if r := m.Rate(ms(938)); math.Abs(r-1e6) > 0.02e6 {
		t.Fatalf("mid-slot rate = %.0f B/s, want ~1e6 at any phase", r)
	}
	for i := 938; i < 1000; i++ {
		m.Add(ms(i), 1000)
	}
	if r := m.Rate(ms(999)); math.Abs(r-1e6) > 0.01e6 {
		t.Fatalf("windowed rate = %.0f B/s, want ~1e6", r)
	}
	// One full idle window later the rate must have decayed to zero.
	if r := m.Rate(ms(2100)); r != 0 {
		t.Fatalf("rate after idle window = %.0f, want 0", r)
	}
	if b, p := m.Totals(); b != 1000*1000 || p != 1000 {
		t.Fatalf("totals = %d bytes / %d pkts", b, p)
	}
}

func TestMeterPartialWindow(t *testing.T) {
	m := NewMeter(time.Second)
	// Traffic only in the first quarter of the window: the windowed mean
	// averages it down, the peak keeps the hot slot visible.
	for i := 0; i < 250; i++ {
		m.Add(ms(i), 1000)
	}
	r := m.Rate(ms(999))
	if math.Abs(r-250e3) > 10e3 {
		t.Fatalf("quarter-window rate = %.0f B/s, want ~250e3", r)
	}
	if p := m.Peak(ms(999)); math.Abs(p-1e6) > 0.05e6 {
		t.Fatalf("peak = %.0f B/s, want ~1e6", p)
	}
}

func TestMeterEWMADecays(t *testing.T) {
	m := NewMeter(time.Second)
	for i := 0; i < 1000; i++ {
		m.Add(ms(i), 1000)
	}
	hot := m.Smoothed(ms(1000))
	if hot < 0.5e6 {
		t.Fatalf("smoothed rate after sustained load = %.0f, want ≥ 0.5e6", hot)
	}
	// The EWMA outlives the window but must still decay toward zero.
	cool := m.Smoothed(ms(3000))
	if cool >= hot/2 {
		t.Fatalf("smoothed rate did not decay: %.0f → %.0f", hot, cool)
	}
	if frozen := m.Smoothed(ms(60_000)); frozen > 1 {
		t.Fatalf("smoothed rate after long idle = %.0f, want ~0", frozen)
	}
}

func TestMeterLongGapFastPath(t *testing.T) {
	m := NewMeter(time.Second)
	m.Add(0, 4000)
	// A gap of hours must not leave stale slots behind.
	if r := m.Rate(3 * core.Time(time.Hour)); r != 0 {
		t.Fatalf("rate after 3h gap = %.0f", r)
	}
	m.Add(3*core.Time(time.Hour), 2000)
	if b, _ := m.Totals(); b != 6000 {
		t.Fatalf("totals lost bytes across gap: %d", b)
	}
}

func TestBucketBurstAndRefill(t *testing.T) {
	b := NewBucket(10_000, 5000) // 10 kB/s, 5 kB burst
	// The full burst conforms immediately...
	if !b.Admit(0, 5000) {
		t.Fatal("full burst rejected")
	}
	// ...and the very next byte does not.
	if b.Admit(0, 1) {
		t.Fatal("over-burst packet admitted")
	}
	// 100 ms refills 1000 bytes.
	if !b.Admit(ms(100), 1000) {
		t.Fatal("refilled tokens rejected")
	}
	if b.Admit(ms(100), 1) {
		t.Fatal("tokens over-refilled")
	}
	// Refill caps at the burst depth.
	if got := b.Tokens(ms(10_000)); got != 5000 {
		t.Fatalf("tokens after long idle = %.0f, want burst 5000", got)
	}
}

func TestBucketDefaults(t *testing.T) {
	b := NewBucket(100_000, 0)
	if b.Burst() != 25_000 {
		t.Fatalf("default burst = %d, want rate/4", b.Burst())
	}
	if tiny := NewBucket(100, 0); tiny.Burst() != 1500 {
		t.Fatalf("default burst floor = %d, want 1500", tiny.Burst())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero-rate bucket did not panic")
		}
	}()
	NewBucket(0, 0)
}

func TestBucketReserveWithin(t *testing.T) {
	b := NewBucket(10_000, 2000)
	if wait, ok := b.ReserveWithin(0, 2000, ms(500)); !ok || wait != 0 {
		t.Fatalf("conformant reserve = %v %v", wait, ok)
	}
	// The bucket is empty; 1000 bytes conform 100 ms out.
	wait, ok := b.ReserveWithin(0, 1000, ms(500))
	if !ok || wait != ms(100) {
		t.Fatalf("shaped reserve = %v %v, want 100ms", wait, ok)
	}
	// Debt accumulates: the next 1000 bytes are 200 ms out, and a cap
	// below that refuses without consuming.
	if _, ok := b.ReserveWithin(0, 1000, ms(150)); ok {
		t.Fatal("reserve beyond cap admitted")
	}
	if wait, ok := b.ReserveWithin(0, 1000, ms(500)); !ok || wait != ms(200) {
		t.Fatalf("post-refusal reserve = %v %v, want 200ms (refusal must not consume)", wait, ok)
	}
	// Over-burst packets never conform, in shaping mode just like in
	// policing mode — however generous the cap.
	if _, ok := b.ReserveWithin(ms(10_000), 2001, ms(60_000)); ok {
		t.Fatal("over-burst packet admitted by shaper")
	}
}

func TestRegistryUtilization(t *testing.T) {
	r := NewRegistry(time.Second)
	a, b := core.NodeID(1), core.NodeID(2)
	r.Track(a, b, 1_000_000) // 1 MB/s capacity
	// Untracked links are silently ignored.
	r.Record(0, 7, 8, core.ServiceForwarding, 10_000)

	// 500 kB over one window in the a→b direction: utilization 0.5.
	for i := 0; i < 500; i++ {
		r.Record(ms(2*i), a, b, core.ServiceForwarding, 1000)
	}
	u := r.Utilization(ms(999), a, b)
	if math.Abs(u-0.5) > 0.05 {
		t.Fatalf("utilization = %.3f, want ~0.5", u)
	}
	// Key order must not matter.
	if u2 := r.Utilization(ms(999), b, a); u2 != u {
		t.Fatalf("utilization asymmetric: %v vs %v", u, u2)
	}

	ll, ok := r.Load(ms(999), a, b)
	if !ok {
		t.Fatal("tracked link has no load")
	}
	if ll.AB.Rate == 0 || ll.BA.Rate != 0 {
		t.Fatalf("direction mixup: AB=%.0f BA=%.0f", ll.AB.Rate, ll.BA.Rate)
	}
	if ll.AB.ByClass[core.ServiceForwarding] != ll.AB.Rate {
		t.Fatalf("class breakdown: %v vs total %v", ll.AB.ByClass, ll.AB.Rate)
	}
	// Peak is the aggregate across classes, not the max of per-class
	// peaks: two classes bursting together must read as one burst.
	r.Record(ms(998), a, b, core.ServiceCaching, 50_000)
	r.Record(ms(998), a, b, core.ServiceCoding, 50_000)
	if ll2, _ := r.Load(ms(999), a, b); ll2.AB.Peak < 800_000 {
		t.Fatalf("cross-class peak = %.0f B/s, want ≥ 8e5 (aggregate slot)", ll2.AB.Peak)
	}
	if ll.AB.Packets != 500 || ll.AB.Bytes != 500_000 {
		t.Fatalf("totals = %d pkts / %d bytes", ll.AB.Packets, ll.AB.Bytes)
	}

	// Utilization clamps at 1 even when demand exceeds capacity (2 MB/s
	// against 1 MB/s).
	for i := 0; i < 3000; i++ {
		r.Record(ms(1000+i), a, b, core.ServiceCoding, 2000)
	}
	if u := r.Utilization(ms(3999), a, b); u != 1 {
		t.Fatalf("over-capacity utilization = %.3f, want clamp at 1", u)
	}

	// Uncapacitated links never read as congested.
	r.SetCapacity(a, b, 0)
	if u := r.Utilization(ms(3999), a, b); u != 0 {
		t.Fatalf("uncapacitated utilization = %.3f", u)
	}
	if r.SetCapacity(7, 8, 5) {
		t.Fatal("SetCapacity invented a link")
	}
}

func TestRegistryPairsSorted(t *testing.T) {
	r := NewRegistry(time.Second)
	r.Track(5, 4, 0)
	r.Track(2, 9, 0)
	r.Track(1, 3, 0)
	got := r.Pairs()
	want := [][2]core.NodeID{{1, 3}, {2, 9}, {4, 5}}
	if len(got) != len(want) {
		t.Fatalf("pairs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pairs = %v, want %v", got, want)
		}
	}
}
