package load

import (
	"sort"

	"jqos/internal/core"
)

// NumClasses is the number of service classes accounted per link —
// one per J-QoS service, indexed by core.Service.
const NumClasses = core.NumServices

// DirLoad is the read-only load snapshot of one link direction.
type DirLoad struct {
	// Rate is the windowed mean rate in bytes/second, all classes.
	Rate float64
	// Smoothed is the EWMA rate in bytes/second, all classes.
	Smoothed float64
	// Peak is the highest single-slot rate within the window.
	Peak float64
	// Bytes / Packets are lifetime totals.
	Bytes, Packets uint64
	// ByClass breaks the windowed rate down per service class.
	ByClass [NumClasses]float64
	// ClassBytes / ClassPackets break the lifetime totals down per
	// service class. Their sums equal Bytes / Packets: the meters
	// account the direction total and the class together on every
	// Record (telemetry rollups assert this invariant).
	ClassBytes   [NumClasses]uint64
	ClassPackets [NumClasses]uint64
}

// LinkLoad is the read-only load snapshot of one inter-DC link pair.
type LinkLoad struct {
	A, B core.NodeID
	// Capacity is the accounting capacity in bytes/second (0 means
	// uncapacitated: Utilization is always 0).
	Capacity int64
	// Utilization is the hotter direction's windowed rate over Capacity,
	// clamped to [0, 1].
	Utilization float64
	// AB and BA are the per-direction snapshots (A→B and B→A, with
	// A < B as normalized by the registry).
	AB, BA DirLoad
}

// dirMeters is one direction's meter bank: an aggregate meter for the
// direction's totals (rate, peak, utilization — a peak must see bursts
// that SPAN classes, which max-ing per-class peaks would halve) plus a
// per-class bank for the breakdown.
type dirMeters struct {
	total Meter
	class [NumClasses]Meter
}

func (d *dirMeters) add(now core.Time, class core.Service, n int) {
	if int(class) >= NumClasses {
		return // unknown classes go unaccounted, never into a real bucket
	}
	d.total.Add(now, n)
	d.class[class].Add(now, n)
}

func (d *dirMeters) rate(now core.Time) float64 {
	return d.total.Rate(now)
}

func (d *dirMeters) snapshot(now core.Time) DirLoad {
	var out DirLoad
	out.Rate = d.total.Rate(now)
	out.Smoothed = d.total.Smoothed(now)
	out.Peak = d.total.Peak(now)
	out.Bytes, out.Packets = d.total.Totals()
	for i := range d.class {
		out.ByClass[i] = d.class[i].Rate(now)
		out.ClassBytes[i], out.ClassPackets[i] = d.class[i].Totals()
	}
	return out
}

// pairLoad is the meter state of one tracked inter-DC link.
type pairLoad struct {
	ab, ba   dirMeters // key[0]→key[1] and key[1]→key[0]
	capacity int64
}

// Registry aggregates egress accounting per (inter-DC link, service
// class). The hosting runtime Tracks each link at wiring time, Records
// every data-plane send, and periodically converts Utilization readings
// into the routing controller's congestion weights. Record on an
// untracked link is a deliberate no-op, so callers need not distinguish
// DC↔DC hops from DC↔host egress.
type Registry struct {
	window core.Time
	pairs  map[[2]core.NodeID]*pairLoad
	order  [][2]core.NodeID // sorted keys, for deterministic iteration
}

// NewRegistry creates an empty registry whose meters average over window
// (<= 0 defaults to one second).
func NewRegistry(window core.Time) *Registry {
	if window <= 0 {
		window = 1e9
	}
	return &Registry{window: window, pairs: make(map[[2]core.NodeID]*pairLoad)}
}

func pairKey(a, b core.NodeID) [2]core.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]core.NodeID{a, b}
}

// Track starts accounting the link a↔b with the given capacity in
// bytes/second (0 = uncapacitated). Re-tracking resets the meters.
func (r *Registry) Track(a, b core.NodeID, capacity int64) {
	k := pairKey(a, b)
	if _, ok := r.pairs[k]; !ok {
		r.order = append(r.order, k)
		sort.Slice(r.order, func(i, j int) bool {
			if r.order[i][0] != r.order[j][0] {
				return r.order[i][0] < r.order[j][0]
			}
			return r.order[i][1] < r.order[j][1]
		})
	}
	p := &pairLoad{capacity: capacity}
	p.ab.total = NewMeter(r.window)
	p.ba.total = NewMeter(r.window)
	for i := range p.ab.class {
		p.ab.class[i] = NewMeter(r.window)
		p.ba.class[i] = NewMeter(r.window)
	}
	r.pairs[k] = p
}

// Tracked reports whether the link a↔b is being accounted.
func (r *Registry) Tracked(a, b core.NodeID) bool {
	_, ok := r.pairs[pairKey(a, b)]
	return ok
}

// AnyCapacity reports whether any tracked link has a nonzero accounting
// capacity — without one, no utilization reading can ever be nonzero.
func (r *Registry) AnyCapacity() bool {
	for _, p := range r.pairs {
		if p.capacity > 0 {
			return true
		}
	}
	return false
}

// Capacity returns the accounting capacity of the link a↔b in
// bytes/second (0 for uncapacitated or untracked links). Egress
// schedulers pace their dequeues at this rate, so the same figure drives
// utilization telemetry and intra-link scheduling.
func (r *Registry) Capacity(a, b core.NodeID) int64 {
	p, ok := r.pairs[pairKey(a, b)]
	if !ok {
		return 0
	}
	return p.capacity
}

// SetCapacity re-bases the accounting capacity of a tracked link,
// reporting whether the link was known.
func (r *Registry) SetCapacity(a, b core.NodeID, capacity int64) bool {
	p, ok := r.pairs[pairKey(a, b)]
	if !ok {
		return false
	}
	p.capacity = capacity
	return true
}

// Record accounts one packet of n bytes sent from→to in the given service
// class. Untracked links are ignored. Allocation-free.
func (r *Registry) Record(now core.Time, from, to core.NodeID, class core.Service, n int) {
	p, ok := r.pairs[pairKey(from, to)]
	if !ok {
		return
	}
	if from < to {
		p.ab.add(now, class, n)
	} else {
		p.ba.add(now, class, n)
	}
}

// Utilization returns the hotter direction's windowed rate over the
// link's capacity, clamped to [0, 1]. Uncapacitated or untracked links
// read as 0 — they can never look congested.
func (r *Registry) Utilization(now core.Time, a, b core.NodeID) float64 {
	p, ok := r.pairs[pairKey(a, b)]
	if !ok || p.capacity <= 0 {
		return 0
	}
	rate := p.ab.rate(now)
	if rev := p.ba.rate(now); rev > rate {
		rate = rev
	}
	u := rate / float64(p.capacity)
	if u > 1 {
		u = 1
	}
	return u
}

// Load returns the full snapshot for a tracked link. Utilization is
// derived from the snapshots just built, not a second meter walk.
func (r *Registry) Load(now core.Time, a, b core.NodeID) (LinkLoad, bool) {
	k := pairKey(a, b)
	p, ok := r.pairs[k]
	if !ok {
		return LinkLoad{}, false
	}
	ll := LinkLoad{
		A: k[0], B: k[1],
		Capacity: p.capacity,
		AB:       p.ab.snapshot(now),
		BA:       p.ba.snapshot(now),
	}
	if p.capacity > 0 {
		hot := ll.AB.Rate
		if ll.BA.Rate > hot {
			hot = ll.BA.Rate
		}
		ll.Utilization = hot / float64(p.capacity)
		if ll.Utilization > 1 {
			ll.Utilization = 1
		}
	}
	return ll, true
}

// Pairs returns the tracked link keys in ascending order (shared slice;
// callers must not mutate).
func (r *Registry) Pairs() [][2]core.NodeID { return r.order }
