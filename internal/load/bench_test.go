package load

import (
	"testing"
	"time"

	"jqos/internal/core"
)

// BenchmarkMeter is the hot-path accounting cost of one recorded packet:
// it must stay allocation-free — every DC egress pays it.
func BenchmarkMeter(b *testing.B) {
	m := NewMeter(time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Add(core.Time(i)*time.Microsecond, 1200)
	}
	if bs, _ := m.Totals(); bs == 0 {
		b.Fatal("meter recorded nothing")
	}
}

// BenchmarkMeterRead measures the utilization read the load reporter does
// per link per tick.
func BenchmarkMeterRead(b *testing.B) {
	m := NewMeter(time.Second)
	for i := 0; i < 8000; i++ {
		m.Add(core.Time(i)*125*time.Microsecond, 1200)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.Rate(time.Second + core.Time(i)*time.Microsecond)
	}
	_ = sink
}

// BenchmarkAdmit is the per-packet admission decision at the ingress DC.
func BenchmarkAdmit(b *testing.B) {
	bk := NewBucket(1_000_000, 64_000)
	b.ReportAllocs()
	b.ResetTimer()
	admitted := 0
	for i := 0; i < b.N; i++ {
		if bk.Admit(core.Time(i)*time.Microsecond, 1200) {
			admitted++
		}
	}
	if admitted == 0 {
		b.Fatal("bucket admitted nothing")
	}
}

// BenchmarkRegistryRecord is the full per-send accounting path: pair
// lookup plus meter update.
func BenchmarkRegistryRecord(b *testing.B) {
	r := NewRegistry(time.Second)
	r.Track(1, 2, 1_000_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(core.Time(i)*time.Microsecond, 1, 2, core.ServiceForwarding, 1200)
	}
}
